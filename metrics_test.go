package asyncsyn

// Metrics contract at the facade: counters ride the context only when a
// collector is attached (nil-overhead otherwise), land as per-run deltas
// in Circuit.Counters and per-stage in Circuit.Stages, and the
// deterministic counters are identical for every Workers value.

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
)

// counterFingerprint flattens the deterministic counters — graph sizes,
// formula sizes, module counts, minimizer passes, and (under the default
// portfolio engine, whose winner is deterministic) the SAT search stats.
func counterFingerprint(c *Circuit) string {
	keys := make([]string, 0, len(c.Counters))
	for k := range c.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d\n", k, c.Counters[k])
	}
	return s
}

func TestCounterDeterminismAcrossWorkers(t *testing.T) {
	names := []string{"vbe4a", "nak-pa"}
	if !testing.Short() {
		names = append(names, "mmu1")
	}
	for _, name := range names {
		for _, method := range []Method{Modular, Direct, Lavagno} {
			t.Run(fmt.Sprintf("%s/%v", name, method), func(t *testing.T) {
				base := synthWorkers(t, name, Options{Method: method, Workers: 1, Metrics: NewMetrics()})
				want := counterFingerprint(base)
				if want == "" {
					t.Fatal("no counters recorded")
				}
				for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
					c := synthWorkers(t, name, Options{Method: method, Workers: w, Metrics: NewMetrics()})
					if got := counterFingerprint(c); got != want {
						t.Errorf("Workers=%d counters diverge from Workers=1:\n--- got ---\n%s--- want ---\n%s", w, got, want)
					}
				}
			})
		}
	}
}

func TestCountersAreRunDeltas(t *testing.T) {
	// One shared collector across two runs: each circuit still reports
	// only its own delta, while the collector accumulates the total.
	m := NewMetrics()
	c1 := synthWorkers(t, "vbe4a", Options{Metrics: m})
	c2 := synthWorkers(t, "vbe4a", Options{Metrics: m})
	if c1.Counters["sg_states"] == 0 || c1.Counters["modules"] == 0 {
		t.Fatalf("first run recorded no counters: %v", c1.Counters)
	}
	if c1.Counters["sg_states"] != c2.Counters["sg_states"] {
		t.Errorf("identical runs disagree: %v vs %v", c1.Counters, c2.Counters)
	}
	if total := m.Map()["sg_states"]; total != 2*c1.Counters["sg_states"] {
		t.Errorf("collector total %d, want twice the per-run delta %d", total, c1.Counters["sg_states"])
	}
}

func TestNoMetricsMeansNoCounters(t *testing.T) {
	c := synthWorkers(t, "vbe4a", Options{})
	if c.Counters != nil {
		t.Errorf("run without Options.Metrics has Counters %v", c.Counters)
	}
	for _, st := range c.Stages {
		if st.Counters != nil {
			t.Errorf("stage %s has counters %v without a collector", st.Name, st.Counters)
		}
	}
}

func TestStageCountersSumToRunDelta(t *testing.T) {
	c := synthWorkers(t, "mmu1", Options{Metrics: NewMetrics()})
	sum := make(map[string]int64)
	for _, st := range c.Stages {
		for k, v := range st.Counters {
			sum[k] += v
		}
	}
	for k, v := range c.Counters {
		if sum[k] != v {
			t.Errorf("counter %s: stages sum to %d, run delta %d", k, sum[k], v)
		}
	}
	for _, k := range []string{"sg_states", "sat_clauses", "modules", "espresso_expand"} {
		if c.Counters[k] == 0 {
			t.Errorf("counter %s not advanced on mmu1", k)
		}
	}
}
