package asyncsyn

// Benchmark harness for the paper's evaluation:
//
//   - BenchmarkTable1Modular / Direct / Lavagno regenerate the CPU-time
//     columns of Table 1, one sub-benchmark per STG row.
//   - BenchmarkClauseReduction measures the in-text mmu0 claim: building
//     (not solving) the direct whole-graph formula vs all modular
//     formulas.
//   - BenchmarkStateGraph isolates the reachability + coding substrate.
//   - BenchmarkAblation* quantify the design choices DESIGN.md calls
//     out: the per-output support restriction, the paper-style expanded
//     encoding, and the local-search SAT engine.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/csc"
	"asyncsyn/internal/par"
	"asyncsyn/internal/sg"
)

func benchSynth(b *testing.B, name string, opt Options) {
	src, err := bench.Source(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ParseSTGString(src)
		if err != nil {
			b.Fatal(err)
		}
		c, err := Synthesize(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(c.Area), "literals")
			b.ReportMetric(float64(c.FinalStates), "states")
			b.ReportMetric(float64(c.StateSignals), "statesigs")
			if c.Aborted {
				b.ReportMetric(1, "aborted")
			}
		}
	}
}

// fastRows are the rows every method completes quickly; bigRows need a
// meaningful budget and separate direct/lavagno handling.
var fastRows = []string{
	"sbuf-ram-write", "vbe4a", "nak-pa", "pe-rcv-ifc-fc", "ram-read-sbuf",
	"alex-nonfc", "sbuf-send-pkt2", "sbuf-send-ctl", "atod", "pa",
	"alloc-outbound", "wrdata", "fifo", "sbuf-read-ctl", "nouse",
	"vbe-ex2", "nousc-ser", "sendr-done", "vbe-ex1",
}

var bigRows = []string{"mr0", "mr1", "mmu0", "mmu1"}

func BenchmarkTable1Modular(b *testing.B) {
	for _, name := range append(append([]string{}, bigRows...), fastRows...) {
		b.Run(name, func(b *testing.B) { benchSynth(b, name, Options{Method: Modular}) })
	}
}

func BenchmarkTable1Direct(b *testing.B) {
	// The paper's direct method aborts at the backtrack limit on the
	// large rows; a bounded budget keeps the same behaviour observable.
	for _, name := range append(append([]string{}, bigRows...), fastRows...) {
		b.Run(name, func(b *testing.B) {
			benchSynth(b, name, Options{Method: Direct, MaxBacktracks: 300000})
		})
	}
}

func BenchmarkTable1Lavagno(b *testing.B) {
	for _, name := range append(append([]string{}, bigRows...), fastRows...) {
		b.Run(name, func(b *testing.B) {
			benchSynth(b, name, Options{Method: Lavagno, MaxBacktracks: 300000})
		})
	}
}

// benchRowPool synthesizes every big Table-1 row once per iteration,
// fanned out over a row-level pool of rowWorkers (the cmd/table1
// -workers layout: a row pool >1 drops each synthesis to sequential
// stages so the machine is not oversubscribed).
func benchRowPool(b *testing.B, rowWorkers int) {
	srcs := make([]string, len(bigRows))
	for i, name := range bigRows {
		src, err := bench.Source(name)
		if err != nil {
			b.Fatal(err)
		}
		srcs[i] = src
	}
	inner := 0
	if par.Workers(rowWorkers) > 1 {
		inner = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := par.Map(len(srcs), rowWorkers, func(j int) (int, error) {
			g, err := ParseSTGString(srcs[j])
			if err != nil {
				return 0, err
			}
			c, err := Synthesize(g, Options{Method: Modular, Workers: inner})
			if err != nil {
				return 0, err
			}
			return c.Area, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelTable1 measures the row-level worker pool on the big
// Table-1 rows: all four synthesized one after another vs on a
// GOMAXPROCS pool. Identical cells either way; only wall-clock moves.
func BenchmarkParallelTable1(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchRowPool(b, 1) })
	b.Run("pool", func(b *testing.B) { benchRowPool(b, 0) })
}

// BenchmarkParallelSynthesize measures the in-pipeline stage pool
// (conflict scans, CSC analysis, per-signal logic derivation) on each
// big row: Workers=1 vs Workers=GOMAXPROCS.
func BenchmarkParallelSynthesize(b *testing.B) {
	for _, name := range bigRows {
		b.Run(name+"/workers=1", func(b *testing.B) {
			benchSynth(b, name, Options{Method: Modular, Workers: 1})
		})
		b.Run(name+"/workers=max", func(b *testing.B) {
			benchSynth(b, name, Options{Method: Modular, Workers: 0})
		})
	}
}

// BenchmarkClauseReduction reproduces the in-text mmu0 claim at the
// formula level: encode (do not solve) the direct whole-graph CSC
// formula and every modular formula, reporting their sizes.
func BenchmarkClauseReduction(b *testing.B) {
	spec, err := bench.Load("mmu0")
	if err != nil {
		b.Fatal(err)
	}
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	conf := sg.Analyze(full)
	m := conf.LowerBound
	if m < 1 {
		m = 1
	}
	b.Run("direct-encode", func(b *testing.B) {
		var clauses int
		for i := 0; i < b.N; i++ {
			enc, err := csc.Encode(full, conf, m, csc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clauses = enc.F.NumClauses()
		}
		b.ReportMetric(float64(clauses), "clauses")
	})
	b.Run("modular-encode", func(b *testing.B) {
		var maxClauses int
		for i := 0; i < b.N; i++ {
			spec, _ := bench.Load("mmu0")
			c, err := Synthesize(&STG{g: spec}, Options{})
			if err != nil {
				b.Fatal(err)
			}
			maxClauses = 0
			for _, f := range c.Formulas {
				if f.Clauses > maxClauses {
					maxClauses = f.Clauses
				}
			}
		}
		b.ReportMetric(float64(maxClauses), "maxclauses")
	})
}

// BenchmarkStateGraph isolates state graph generation (reachability +
// consistent coding) on the largest benchmark.
func BenchmarkStateGraph(b *testing.B) {
	for _, name := range []string{"mr0", "mmu0", "nak-pa", "fifo"} {
		spec, err := bench.Load(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sg.FromSTG(spec, sg.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSupport compares the per-output support restriction
// (the paper's area mechanism) against full-support derivation.
func BenchmarkAblationSupport(b *testing.B) {
	b.Run("restricted", func(b *testing.B) { benchSynth(b, "sbuf-ram-write", Options{}) })
	b.Run("full", func(b *testing.B) { benchSynth(b, "sbuf-ram-write", Options{FullSupport: true}) })
}

// BenchmarkAblationEncoding compares the Tseitin separation encoding
// with the paper-style expanded CNF.
func BenchmarkAblationEncoding(b *testing.B) {
	b.Run("tseitin", func(b *testing.B) { benchSynth(b, "nak-pa", Options{}) })
	b.Run("expandxor", func(b *testing.B) { benchSynth(b, "nak-pa", Options{ExpandXor: true}) })
}

// BenchmarkAblationEngine compares the complete CDCL engine with the
// WalkSAT local-search engine on a mid-size row.
func BenchmarkAblationEngine(b *testing.B) {
	b.Run("dpll", func(b *testing.B) { benchSynth(b, "sbuf-send-ctl", Options{}) })
	b.Run("walksat", func(b *testing.B) { benchSynth(b, "sbuf-send-ctl", Options{Engine: WalkSAT}) })
}
