package asyncsyn

// Facade contract for the streaming spine: streaming the expansion in
// topological waves (the default) and materializing the whole expanded
// graph first (Options.DisableStreaming) are the same computation.
// Circuits, digests, deterministic counters and conformance verdicts
// must be bit-identical at every worker count; only the mode-specific
// telemetry (sg_states_streamed, sg_peak_frontier) may differ.

import (
	"fmt"
	"reflect"
	"testing"

	"asyncsyn/internal/bench"
)

// sharedCounters are the deterministic counters both spines must agree
// on exactly; the streamed-states and peak-frontier telemetry is
// mode-specific by construction and excluded.
var sharedCounters = []string{
	"sat_decisions", "sat_conflicts", "sat_propagations", "sat_learned",
	"sat_restarts", "sat_formulas", "sat_clauses", "sat_vars",
	"sg_states", "modules",
}

func TestStreamingMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name   string
		method Method
	}{
		{"vbe4a", Modular},
		{"nak-pa", Modular},
		{"vbe4a", Direct},
	} {
		t.Run(fmt.Sprintf("%s/%v", tc.name, tc.method), func(t *testing.T) {
			src, err := bench.Source(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ParseSTGString(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4} {
				mS, mL := NewMetrics(), NewMetrics()
				cs, err := Synthesize(g, Options{Method: tc.method, Workers: w, Metrics: mS})
				if err != nil {
					t.Fatal(err)
				}
				cl, err := Synthesize(g, Options{Method: tc.method, Workers: w, Metrics: mL, DisableStreaming: true})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := fingerprint(cs), fingerprint(cl); got != want {
					t.Fatalf("workers=%d: streaming circuit diverges from legacy:\nstreaming:\n%s\nlegacy:\n%s", w, got, want)
				}
				if got, want := circuitDigest(cs), circuitDigest(cl); got != want {
					t.Fatalf("workers=%d: digest %s != %s", w, got, want)
				}
				for _, k := range sharedCounters {
					if gs, gl := cs.Counters[k], cl.Counters[k]; gs != gl {
						t.Errorf("workers=%d: counter %s: streaming %d, legacy %d", w, k, gs, gl)
					}
				}
				if cs.Counters["sg_states_streamed"] == 0 {
					t.Errorf("workers=%d: streaming run streamed no states", w)
				}
				if n := cl.Counters["sg_states_streamed"]; n != 0 {
					t.Errorf("workers=%d: legacy run reported %d streamed states", w, n)
				}
				// Conformance verification must agree too: the bit-sliced
				// and scalar closed-loop runners see the same circuit and
				// report the same canonical violations (none, here).
				vs := cs.Verify(g, 20000, 0)
				vl := cl.Verify(g, 20000, 0)
				if !reflect.DeepEqual(vs, vl) {
					t.Fatalf("workers=%d: verify diverges: streaming %v, legacy %v", w, vs, vl)
				}
				if len(vs) != 0 {
					t.Fatalf("workers=%d: conformance violations: %v", w, vs)
				}
			}
		})
	}
}
