package asyncsyn

import "asyncsyn/internal/stg"

// Builder constructs STGs programmatically, as an alternative to the ".g"
// text format. Methods chain; errors are collected and reported by Build.
//
//	g, err := asyncsyn.NewSTG("latch").
//	    Inputs("r").Outputs("a").
//	    Cycle("r+", "a+", "r-", "a-").
//	    Token("a-", "r+").
//	    Build()
type Builder struct {
	b *stg.Builder
}

// NewSTG starts building an STG with the given model name.
func NewSTG(name string) *Builder { return &Builder{b: stg.NewBuilder(name)} }

// Inputs declares input signals.
func (b *Builder) Inputs(names ...string) *Builder { b.b.Inputs(names...); return b }

// Outputs declares output signals.
func (b *Builder) Outputs(names ...string) *Builder { b.b.Outputs(names...); return b }

// Internals declares internal (non-observable, non-input) signals.
func (b *Builder) Internals(names ...string) *Builder { b.b.Internals(names...); return b }

// Arc adds a causal arc from transition `from` (e.g. "req+") to each
// transition in `to`.
func (b *Builder) Arc(from string, to ...string) *Builder { b.b.Arc(from, to...); return b }

// Chain adds the arc sequence e1→e2→…→en.
func (b *Builder) Chain(edges ...string) *Builder { b.b.Chain(edges...); return b }

// Cycle adds the arcs e1→e2→…→en→e1.
func (b *Builder) Cycle(edges ...string) *Builder { b.b.Cycle(edges...); return b }

// Place adds an explicit place with the given fanin and fanout
// transitions (used for choice and merge structures).
func (b *Builder) Place(name string, from, to []string) *Builder {
	b.b.Place(name, from, to)
	return b
}

// Token marks the implicit place on the arc from→to with an initial token.
func (b *Builder) Token(from, to string) *Builder { b.b.Token(from, to); return b }

// TokenAt marks the named explicit place with an initial token.
func (b *Builder) TokenAt(place string) *Builder { b.b.TokenAt(place); return b }

// Build validates the STG and returns it.
func (b *Builder) Build() (*STG, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &STG{g: g}, nil
}
