package asyncsyn_test

import (
	"fmt"
	"log"

	"asyncsyn"
)

// The canonical two-pulse converter: output b pulses twice per input
// cycle, which violates complete state coding and forces the insertion
// of a state signal.
const twoPulse = `
.model twopulse
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func ExampleSynthesize() {
	g, err := asyncsyn.ParseSTGString(twoPulse)
	if err != nil {
		log.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signals %d -> %d\n", c.InitialSignals, c.FinalSignals)
	for _, f := range c.Functions {
		fmt.Println(f)
	}
	// Output:
	// signals 2 -> 3
	// b = a' csc0' + a csc0
	// csc0 = b' csc0 + a' b
}

func ExampleNewSTG() {
	g, err := asyncsyn.NewSTG("latch").
		Inputs("r").Outputs("a").
		Cycle("r+", "a+", "r-", "a-").
		Token("a-", "r+").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Functions[0])
	// Output:
	// a = r
}

func ExampleCircuit_Verify() {
	g, _ := asyncsyn.ParseSTGString(twoPulse)
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	violations := c.Verify(g, 10000, 0)
	fmt.Printf("violations: %d\n", len(violations))
	// Output:
	// violations: 0
}

func ExampleFunction_Eval() {
	g, _ := asyncsyn.ParseSTGString(twoPulse)
	c, _ := asyncsyn.Synthesize(g, asyncsyn.Options{})
	f, _ := c.Function("b")
	fmt.Println(f.Eval(map[string]bool{"a": false, "csc0": false}))
	fmt.Println(f.Eval(map[string]bool{"a": true, "csc0": false}))
	// Output:
	// true
	// false
}
