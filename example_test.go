package asyncsyn_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"asyncsyn"
)

// The canonical two-pulse converter: output b pulses twice per input
// cycle, which violates complete state coding and forces the insertion
// of a state signal.
const twoPulse = `
.model twopulse
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func ExampleSynthesize() {
	g, err := asyncsyn.ParseSTGString(twoPulse)
	if err != nil {
		log.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signals %d -> %d\n", c.InitialSignals, c.FinalSignals)
	for _, f := range c.Functions {
		fmt.Println(f)
	}
	// Output:
	// signals 2 -> 3
	// b = a' csc0' + a csc0
	// csc0 = b' csc0 + a' b
}

func ExampleNewSTG() {
	g, err := asyncsyn.NewSTG("latch").
		Inputs("r").Outputs("a").
		Cycle("r+", "a+", "r-", "a-").
		Token("a-", "r+").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Functions[0])
	// Output:
	// a = r
}

func ExampleCircuit_Verify() {
	g, _ := asyncsyn.ParseSTGString(twoPulse)
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	violations := c.Verify(g, 10000, 0)
	fmt.Printf("violations: %d\n", len(violations))
	// Output:
	// violations: 0
}

// SynthesizeContext obeys deadlines: an expired context stops the run
// at the next cancellation poll, and the error matches both the
// package's ErrCanceled sentinel and the underlying context error.
func ExampleSynthesizeContext() {
	g, err := asyncsyn.ParseSTGString(twoPulse)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err = asyncsyn.SynthesizeContext(ctx, g, asyncsyn.Options{})
	fmt.Println(errors.Is(err, asyncsyn.ErrCanceled))
	fmt.Println(errors.Is(err, context.DeadlineExceeded))
	// Output:
	// true
	// true
}

// With Options.Metrics attached, Circuit.Stages reports each pipeline
// stage with the counters it advanced, and Circuit.Counters holds the
// whole run's deltas under their stable schema names.
func ExampleSynthesize_stages() {
	g, err := asyncsyn.ParseSTGString(twoPulse)
	if err != nil {
		log.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{Metrics: asyncsyn.NewMetrics()})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range c.Stages {
		fmt.Println(st.Name)
	}
	fmt.Println("modules:", c.Counters["modules"])
	// Output:
	// elaborate
	// modules
	// residual
	// expand
	// logic
	// modules: 1
}

func ExampleFunction_Eval() {
	g, _ := asyncsyn.ParseSTGString(twoPulse)
	c, _ := asyncsyn.Synthesize(g, asyncsyn.Options{})
	f, _ := c.Function("b")
	fmt.Println(f.Eval(map[string]bool{"a": false, "csc0": false}))
	fmt.Println(f.Eval(map[string]bool{"a": true, "csc0": false}))
	// Output:
	// true
	// false
}
