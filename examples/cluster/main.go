// Example: run a 3-shard synthesis cluster in-process — shards
// exchanging cache records peer-to-peer behind a consistent-hashing
// router — and show signature routing, peer cache warming, and
// failover, all with bit-identical digests. A real deployment runs
// cmd/modsynd once per shard plus once with -shards; the handlers are
// identical.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"asyncsyn/internal/server"
)

const shardCount = 3

var benches = []string{"fifo", "nak-pa", "vbe4a", "sbuf-send-ctl", "alloc-outbound"}

func main() {
	// Start the shards. Each one lists the others as cache peers: on a
	// solve miss it first asks them for the content-addressed record.
	// Peer URLs are only dialed on miss, so the two-pass construction
	// (listeners first, peer wiring after) is not needed — but URLs are
	// assigned by httptest at start, so shards learn their peers late.
	shards := make([]*server.Server, shardCount)
	listeners := make([]*httptest.Server, shardCount)
	urls := make([]string, shardCount)
	for i := range shards {
		// Peers of shard i = every shard that already has a listener.
		// For the demo a ring of "everyone before me" is enough: shard 0
		// is the sweep's cold start, later shards can pull from it.
		s, err := server.New(server.Config{MaxInFlight: 2, Peers: urls[:i]})
		if err != nil {
			log.Fatal(err)
		}
		shards[i] = s
		listeners[i] = httptest.NewServer(s.Handler())
		defer listeners[i].Close()
		urls[i] = listeners[i].URL
	}

	rt, err := server.NewRouter(server.RouterConfig{Shards: urls})
	if err != nil {
		log.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Sweep the benchmarks through the router: each specification's
	// canonical signature picks its shard, so repeats always land on a
	// warm cache.
	fmt.Println("routed sweep:")
	digests := map[string]string{}
	for _, name := range benches {
		resp := synthesize(front.URL, name)
		digests[name] = resp.Digest
		fmt.Printf("  %-14s %4d states  digest %s...\n", name, resp.FinalStates, resp.Digest[:12])
	}

	// The same suite as one batch: per-entry results in request order.
	var batch server.BatchRequest
	for _, name := range benches {
		batch.Requests = append(batch.Requests, server.Request{Bench: name})
	}
	b, _ := json.Marshal(batch)
	httpResp, err := http.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	var bresp server.BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&bresp); err != nil {
		log.Fatal(err)
	}
	httpResp.Body.Close()
	fmt.Println("\nbatched sweep (digests must match the routed sweep):")
	for i, e := range bresp.Responses {
		match := "=="
		if e.Digest != digests[benches[i]] {
			match = "!! MISMATCH"
		}
		fmt.Printf("  %-14s status %d  %s\n", benches[i], e.Status, match)
	}

	// Kill one shard mid-flight: requests it owned fail over to the
	// next shard on the ring — same digests, no client-visible error.
	listeners[1].Close()
	fmt.Println("\nshard 1 killed; re-running the sweep through the router:")
	for _, name := range benches {
		resp := synthesize(front.URL, name)
		match := "=="
		if resp.Digest != digests[name] {
			match = "!! MISMATCH"
		}
		fmt.Printf("  %-14s digest %s... %s\n", name, resp.Digest[:12], match)
	}

	fmt.Println("\npool health after the kill:")
	h, err := http.Get(front.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health struct {
		Shards  map[string]string `json:"shards"`
		Healthy int               `json:"healthy"`
	}
	json.NewDecoder(h.Body).Decode(&health)
	h.Body.Close()
	for i, u := range urls {
		fmt.Printf("  shard %d: %s\n", i, health.Shards[u])
	}
	fmt.Printf("  healthy: %d/%d\n", health.Healthy, shardCount)
}

func synthesize(base, name string) *server.Response {
	body, _ := json.Marshal(server.Request{Bench: name})
	httpResp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp server.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s (%s)", name, resp.Error, resp.Class)
	}
	return &resp
}
