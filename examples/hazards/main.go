// Hazards: run the hazard cleanup step the paper's §3.5 points to —
// check every synthesized cover for static-1 hazards across the state
// graph's single-signal transitions and repair them by cube insertion.
// This example drives the lower-level packages directly to get at the
// covers and the expanded state graph.
//
//	go run ./examples/hazards
package main

import (
	"context"
	"fmt"
	"log"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/core"
	"asyncsyn/internal/hazard"
)

func main() {
	spec, err := bench.Load("sbuf-read-ctl")
	if err != nil {
		log.Fatal(err)
	}
	// Hazard checking walks the expanded graph's edge structure, which
	// only the materializing expansion builds.
	res, err := core.Synthesize(context.Background(), spec, core.Options{DisableStreaming: true})
	if err != nil {
		log.Fatal(err)
	}
	ex := res.Expanded

	fmt.Printf("model %s: %d functions, area %d literals\n\n", res.Name, len(res.Functions), res.Area)
	totalViolations, totalAdded := 0, 0
	for _, fn := range res.Functions {
		// Project every state-graph edge onto the function's support.
		varIdx := make([]int, len(fn.Vars))
		for i, v := range fn.Vars {
			vi, ok := ex.SignalIndex(v)
			if !ok {
				log.Fatalf("missing signal %s", v)
			}
			varIdx[i] = vi
		}
		project := func(code uint64) uint64 {
			var m uint64
			for i, vi := range varIdx {
				if code&(1<<vi) != 0 {
					m |= 1 << i
				}
			}
			return m
		}
		codes := make([]uint64, ex.NumStates())
		for s := range ex.States {
			codes[s] = project(ex.States[s].Code)
		}
		var edges [][2]int
		for _, e := range ex.Edges {
			edges = append(edges, [2]int{e.From, e.To})
		}
		trans := hazard.AdjacentOnTransitions(codes, edges)

		violations := hazard.Check(fn.Cover, trans)
		totalViolations += len(violations)
		fmt.Printf("%-8s %3d transitions, %d static-1 hazards", fn.Name, len(trans), len(violations))
		if len(violations) > 0 {
			// OFF-set over the support: implied-0 projected codes.
			sigIdx, _ := ex.SignalIndex(fn.Name)
			offSeen := map[uint64]bool{}
			var off []uint64
			for s := range ex.States {
				if ex.ImpliedValue(s, sigIdx) == 0 && !offSeen[codes[s]] {
					offSeen[codes[s]] = true
					off = append(off, codes[s])
				}
			}
			fixed, err := hazard.Repair(fn.Cover, trans, off, len(fn.Vars))
			if err != nil {
				log.Fatalf("repair %s: %v", fn.Name, err)
			}
			added := len(fixed) - len(fn.Cover)
			totalAdded += added
			fmt.Printf(" → repaired with %d extra cube(s), area %d → %d literals",
				added, fn.Cover.Literals(), fixed.Literals())
			if left := hazard.Check(fixed, trans); len(left) != 0 {
				log.Fatalf("hazards survived repair: %v", left)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal: %d hazards found, %d cover cubes added\n", totalViolations, totalAdded)
}
