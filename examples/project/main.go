// Example: incremental project re-synthesis against the persistent
// run database (internal/rundb) — the same machinery behind
// `modsyn -project dir/` and the daemon's GET /v1/runs history.
//
// The demo copies three specifications into a project directory, runs
// the suite cold (everything synthesized and recorded), runs it again
// (everything skipped — zero solves, witnessed by the metrics
// collector), edits one specification and shows exactly one entry
// re-synthesized, then queries the accumulated run history the way
// the daemon's /v1/runs endpoint does.
//
//	go run ./examples/project
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/rundb"
)

func main() {
	dir, err := os.MkdirTemp("", "rundb-project-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A three-entry project: small Table 1 specifications copied out of
	// the embedded suite.
	for _, name := range []string{"fifo", "nak-pa", "wrdata"} {
		src, err := bench.Source(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".g"), []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	db, err := rundb.Open(filepath.Join(dir, ".rundb"))
	if err != nil {
		log.Fatal(err)
	}
	opt := asyncsyn.Options{Method: asyncsyn.Modular, Workers: 1}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	pass := func(title string, o asyncsyn.Options) *rundb.ProjectResult {
		fmt.Printf("\n== %s\n", title)
		res, err := rundb.RunProject(context.Background(), db, dir, o, false, logf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("project: %d entries, %d skipped, %d resynthesized\n",
			len(res.Entries), res.Skipped, res.Resynthesized)
		return res
	}

	// Cold: every entry is synthesized and banked.
	pass("cold pass", opt)

	// Unchanged: every entry skips. The metrics collector proves the
	// skip performs no synthesis work at all — zero modules solved.
	m := asyncsyn.NewMetrics()
	warm := opt
	warm.Metrics = m
	pass("unchanged re-run", warm)
	fmt.Printf("modules solved during the re-run: %d\n", m.Map()["modules"])

	// Edit one specification (swap fifo's STG for a different one):
	// exactly that entry re-synthesizes, the others still skip.
	src, err := bench.Source("atod")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fifo.g"), []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	pass("after editing fifo.g", opt)

	// The run history accumulated across the passes — what the daemon
	// serves on GET /v1/runs.
	fmt.Printf("\n== run history (newest first)\n")
	page, total := db.List(rundb.Filter{})
	fmt.Printf("%d recorded runs:\n", total)
	for _, rec := range page {
		fmt.Printf("  %s  %-10s %-10s area %3d  digest %.12s\n",
			rec.ID, rec.Model, rec.File, rec.Area, rec.Digest)
	}
}
