# Reconstruction of fifo: a one-place FIFO controller coupling an input
# handshake (ri/ai) to an output handshake (ro/ao); the output handshake
# overlaps the release phase of the input handshake.
.model fifo
.inputs ri ao
.outputs ai ro
.graph
ri+ ai+
ai+ ri-
ri- ai- ro+
ai- ri+
ro+ ao+
ao+ ro-
ro- ao-
ao- ai+
.marking { <ai-,ri+> <ao-,ai+> }
.end
