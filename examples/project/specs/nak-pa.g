# Reconstruction of nak-pa: positive/negative acknowledge protocol; two
# concurrent data-latch handshakes run for the first attempt and again
# for the retry, separated by strobe and NAK pulses.
.model nak-pa
.inputs req d1 d2
.outputs lat1 lat2 stb ack nak y
.graph
req+ lat1+ lat2+
lat1+ d1+
d1+ lat1-
lat1- d1-
lat2+ d2+
d2+ lat2-
lat2- d2-
d1- stb+
d2- stb+
stb+ y+
y+ stb-
stb- lat1+/2 lat2+/2
lat1+/2 d1+/2
d1+/2 lat1-/2
lat1-/2 d1-/2
lat2+/2 d2+/2
d2+/2 lat2-/2
lat2-/2 d2-/2
d1-/2 nak+
d2-/2 nak+
nak+ y-
y- nak-
nak- ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
