# Reconstruction of wrdata: two write rounds whose internal strobes fire
# in opposite orders, re-using codes with different enabled outputs.
.model wrdata
.inputs r
.outputs a x y
.graph
r+ x+
x+ y+
y+ a+
a+ r-
r- x-
x- y-
y- a-
a- r+/2
r+/2 y+/2
y+/2 x+/2
x+/2 a+/2
a+/2 r-/2
r-/2 x-/2
x-/2 y-/2
y-/2 a-/2
a-/2 r+
.marking { <a-/2,r+> }
.end
