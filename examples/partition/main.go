// Partition: demonstrate the paper's core idea (its Figure 1) on the
// mmu0 benchmark — the direct method must satisfy one huge whole-graph
// SAT formula, while the modular method solves several small per-output
// formulas. This reproduces the paper's in-text claim that mmu0's
// 35,386-clause direct formula decomposes into three small modular ones.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"

	"asyncsyn"
	"asyncsyn/internal/bench"
)

func main() {
	src, err := bench.Source("mmu0")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== direct formulation (Vanbekbergen et al., no decomposition)")
	g, _ := asyncsyn.ParseSTGString(src)
	direct, err := asyncsyn.Synthesize(g, asyncsyn.Options{Method: asyncsyn.Direct})
	if err != nil {
		log.Fatal(err)
	}
	var directMax asyncsyn.FormulaStat
	for _, f := range direct.Formulas {
		fmt.Printf("  whole-graph formula: m=%d  %6d vars  %8d clauses  %s  (%v)\n",
			f.Signals, f.Vars, f.Clauses, f.Status, f.Time)
		if f.Clauses > directMax.Clauses {
			directMax = f
		}
	}

	fmt.Println("\n== modular partitioning (this paper)")
	g2, _ := asyncsyn.ParseSTGString(src)
	modular, err := asyncsyn.Synthesize(g2, asyncsyn.Options{Method: asyncsyn.Modular})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range modular.Modules {
		fmt.Printf("  output %-4s input set %v\n", m.Output, m.InputSet)
		fmt.Printf("    modular graph: %d states (full graph: %d), %d conflicts, +%d signals\n",
			m.MergedStates, modular.InitialStates, m.Conflicts, m.NewSignals)
	}
	var modTotal, modMax int
	for _, f := range modular.Formulas {
		out := f.Output
		if out == "" {
			out = "(global)"
		}
		fmt.Printf("  formula for %-8s m=%d  %5d vars  %6d clauses  %s\n",
			out, f.Signals, f.Vars, f.Clauses, f.Status)
		modTotal += f.Clauses
		if f.Clauses > modMax {
			modMax = f.Clauses
		}
	}

	fmt.Printf("\nsummary: largest direct formula %d clauses; largest modular formula %d clauses (%.0fx smaller)\n",
		directMax.Clauses, modMax, float64(directMax.Clauses)/float64(modMax))
	fmt.Printf("         direct cpu %v vs modular cpu %v\n", direct.CPU, modular.CPU)
	fmt.Printf("         direct area %d vs modular area %d literals\n", direct.Area, modular.Area)
}
