// Quickstart: parse an STG specification in the ".g" format, synthesize a
// speed-independent circuit with the modular partitioning method, and
// print the next-state logic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"asyncsyn"
)

// A two-pulse converter: the output b must pulse twice per input cycle.
// The codes 10 and 00 recur with different required behaviour, so the
// specification violates complete state coding and the synthesizer has
// to invent a state signal.
const spec = `
.model twopulse
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func main() {
	g, err := asyncsyn.ParseSTGString(spec)
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %s\n", circuit.Name)
	fmt.Printf("  %d states / %d signals  →  %d states / %d signals (%d state signals inserted)\n",
		circuit.InitialStates, circuit.InitialSignals,
		circuit.FinalStates, circuit.FinalSignals, circuit.StateSignals)
	fmt.Printf("  two-level area: %d literals, synthesized in %v\n\n", circuit.Area, circuit.CPU)

	fmt.Println("next-state logic:")
	for _, f := range circuit.Functions {
		fmt.Printf("  %s\n", f)
	}

	// Evaluate the output's function on a concrete input assignment.
	if fb, ok := circuit.Function("b"); ok {
		vals := map[string]bool{}
		for _, in := range fb.Inputs {
			vals[in] = false
		}
		fmt.Printf("\nb(all-zero inputs) = %v\n", fb.Eval(vals))
	}
}
