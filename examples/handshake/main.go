// Handshake: build a realistic controller programmatically with the
// Builder API — a one-place FIFO stage coupling an input handshake
// (ri/ai) to an output handshake (ro/ao) — then synthesize it with all
// three methods and compare signals, area and time, the comparison the
// paper's Table 1 makes.
//
//	go run ./examples/handshake
package main

import (
	"fmt"
	"log"

	"asyncsyn"
)

func build() (*asyncsyn.STG, error) {
	return asyncsyn.NewSTG("fifo-stage").
		Inputs("ri", "ao").
		Outputs("ai", "ro").
		// Input handshake: ri+ → ai+ → ri- → ai- …
		Chain("ri+", "ai+", "ri-").
		Arc("ri-", "ai-", "ro+"). // data accepted: release input, start output
		Arc("ai-", "ri+").
		// Output handshake runs concurrently with the input release.
		Chain("ro+", "ao+", "ro-", "ao-").
		// The next input acknowledge waits for the output to drain.
		Arc("ao-", "ai+").
		Token("ai-", "ri+").
		Token("ao-", "ai+").
		Build()
}

func main() {
	g, err := build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specification:")
	fmt.Println(g.Format())

	for _, method := range []asyncsyn.Method{asyncsyn.Modular, asyncsyn.Direct, asyncsyn.Lavagno} {
		g, err := build() // fresh graph per run
		if err != nil {
			log.Fatal(err)
		}
		c, err := asyncsyn.Synthesize(g, asyncsyn.Options{Method: method})
		if err != nil {
			log.Fatalf("%v: %v", method, err)
		}
		if c.Aborted {
			fmt.Printf("%-8s ABORTED (backtrack limit)\n", method)
			continue
		}
		fmt.Printf("%-8s %2d→%2d states, %d→%d signals, area %2d literals, %v\n",
			method, c.InitialStates, c.FinalStates,
			c.InitialSignals, c.FinalSignals, c.Area, c.CPU)
		for _, f := range c.Functions {
			fmt.Printf("         %s\n", f)
		}
	}
}
