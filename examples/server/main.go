// Example: run the synthesis daemon in-process, post a specification
// over HTTP, and print the returned circuit and counters — the
// serving path of cmd/modsynd without a separate process.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"asyncsyn/internal/server"
)

// The quickstart two-pulse converter: output b must pulse twice per
// input cycle, forcing the synthesizer to invent a state signal.
const spec = `
.model twopulse
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func main() {
	// Start the daemon in-process behind a test listener. A real
	// deployment runs cmd/modsynd; the handler is identical.
	srv, err := server.New(server.Config{MaxInFlight: 2})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body, _ := json.Marshal(server.Request{STG: spec})
	httpResp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()

	var resp server.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		log.Fatalf("synthesize: %s (%s)", resp.Error, resp.Class)
	}

	fmt.Printf("model %s  (method %s, digest %s)\n", resp.Model, resp.Method, resp.Digest)
	fmt.Printf("  %d states / %d signals  →  %d states / %d signals (%d state signals inserted)\n",
		resp.InitialStates, resp.InitialSignals,
		resp.FinalStates, resp.FinalSignals, resp.StateSignals)
	fmt.Printf("  two-level area: %d literals\n\n", resp.Area)

	fmt.Println("next-state logic:")
	for _, f := range resp.Functions {
		fmt.Printf("  %s = %s\n", f.Name, f.SOP)
	}

	fmt.Println("\nrun counters:")
	keys := make([]string, 0, len(resp.Counters))
	for k := range resp.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-20s %d\n", k, resp.Counters[k])
	}
}
