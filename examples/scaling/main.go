// Scaling: sweep the parametric handshake family (k concurrent slave
// handshakes re-run in two phases — the structure of the mr/mmu
// benchmarks) and watch the three methods diverge as the state graph
// grows. This regenerates the paper's central "orders of magnitude"
// trend as a curve rather than a table.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"asyncsyn"
	"asyncsyn/internal/stg"
)

func main() {
	fmt.Printf("%3s %8s | %12s %12s | %12s %12s | %12s\n",
		"k", "states", "modular-cpu", "mod-area", "direct-cpu", "dir-area", "lavagno-cpu")
	for k := 1; k <= 4; k++ {
		spec, err := stg.Handshakes("", k, 2)
		if err != nil {
			log.Fatal(err)
		}
		src := stg.Format(spec)

		parse := func() *asyncsyn.STG {
			g, err := asyncsyn.ParseSTGString(src)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}
		mod, err := asyncsyn.Synthesize(parse(), asyncsyn.Options{MaxBacktracks: 300000})
		if err != nil {
			log.Fatal(err)
		}
		dir, err := asyncsyn.Synthesize(parse(), asyncsyn.Options{Method: asyncsyn.Direct, MaxBacktracks: 300000})
		if err != nil {
			log.Fatal(err)
		}
		lav, err := asyncsyn.Synthesize(parse(), asyncsyn.Options{Method: asyncsyn.Lavagno, MaxBacktracks: 300000})
		if err != nil {
			log.Fatal(err)
		}

		cell := func(c *asyncsyn.Circuit) (string, string) {
			if c.Aborted {
				return "abort", "-"
			}
			return fmt.Sprintf("%v", c.CPU.Round(1000*1000)), fmt.Sprint(c.Area)
		}
		mc, ma := cell(mod)
		dc, da := cell(dir)
		lc, _ := cell(lav)
		fmt.Printf("%3d %8d | %12s %12s | %12s %12s | %12s\n",
			k, mod.InitialStates, mc, ma, dc, da, lc)
	}
}
