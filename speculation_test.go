package asyncsyn

// Speculation contract at the facade (DESIGN.md §3.15): the speculative
// partition-parallel module scheduler is an invisible optimisation.
// Every externally visible artifact — module reports, inserted signal
// names, function covers, digests, and the deterministic counters — is
// bit-identical across worker counts and across the speculation /
// no-speculation ablation. The only trace it leaves is in the raw
// collector (modspec_* counters), which Circuit.Counters filters out.

import (
	"fmt"
	"strings"
	"testing"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/stg"
)

// TestSpeculationParity pins bit-identical results for speculative runs
// at several worker counts against the sequential baseline, plus the
// DisableSpeculation ablation, on the Table-1 benchmarks.
func TestSpeculationParity(t *testing.T) {
	names := []string{"vbe4a", "nak-pa", "sbuf-ram-write"}
	if !testing.Short() {
		names = append(names, "mmu1")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			seq := synthWorkers(t, name, Options{Workers: 1, Metrics: NewMetrics()})
			want := fingerprint(seq) + counterFingerprint(seq)
			wantDigest := seq.Digest()
			variants := []Options{
				{Workers: 4},
				{Workers: 8},
				{Workers: 4, DisableSpeculation: true},
			}
			for _, opt := range variants {
				opt.Metrics = NewMetrics()
				c := synthWorkers(t, name, opt)
				label := fmt.Sprintf("Workers=%d nospec=%v", opt.Workers, opt.DisableSpeculation)
				if got := fingerprint(c) + counterFingerprint(c); got != want {
					t.Errorf("%s diverges from sequential:\n--- got ---\n%s--- want ---\n%s", label, got, want)
				}
				if got := c.Digest(); got != wantDigest {
					t.Errorf("%s digest = %s, want %s", label, got, wantDigest)
				}
				// The scheduling-dependent modspec counters must never
				// leak into the deterministic Circuit.Counters view.
				for k := range c.Counters {
					if strings.HasPrefix(k, "modspec_") {
						t.Errorf("%s: scheduling-dependent counter %q in Circuit.Counters", label, k)
					}
				}
			}
		})
	}
}

// TestSpeculationCounters checks the raw collector's accounting: every
// module either committed as speculated or was re-solved inline, and
// sequential or ablated runs never speculate at all.
func TestSpeculationCounters(t *testing.T) {
	m := NewMetrics()
	c := synthWorkers(t, "nak-pa", Options{Workers: 4, Metrics: m})
	commits := m.Value(metrics.ModspecCommits)
	resolves := m.Value(metrics.ModspecResolves)
	if got, want := commits+resolves, int64(len(c.Modules)); got != want {
		t.Errorf("commits(%d)+resolves(%d) = %d, want modules = %d", commits, resolves, got, want)
	}
	if commits == 0 {
		t.Error("speculative run committed nothing — scheduler not engaged")
	}

	for _, opt := range []Options{{Workers: 1}, {Workers: 4, DisableSpeculation: true}} {
		m := NewMetrics()
		opt.Metrics = m
		synthWorkers(t, "nak-pa", opt)
		for _, k := range []metrics.Kind{metrics.ModspecCommits, metrics.ModspecAborts, metrics.ModspecResolves} {
			if v := m.Value(k); v != 0 {
				t.Errorf("Workers=%d nospec=%v: %s = %d, want 0", opt.Workers, opt.DisableSpeculation, k, v)
			}
		}
	}
}

// TestSpeculationRandomSTGParity extends the parity contract beyond the
// curated benchmarks: seeded random STGs, round-tripped through the
// text format, synthesized at Workers 1 and 8.
func TestSpeculationRandomSTGParity(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := ParseSTGString(stg.Format(spec))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq, err := Synthesize(g, Options{Workers: 1, Metrics: NewMetrics()})
		if err != nil {
			t.Logf("seed %d: sequential synthesis failed (%v), skipping", seed, err)
			continue
		}
		par, err := Synthesize(g, Options{Workers: 8, Metrics: NewMetrics()})
		if err != nil {
			t.Errorf("seed %d: parallel synthesis failed where sequential succeeded: %v", seed, err)
			continue
		}
		if got, want := fingerprint(par)+counterFingerprint(par), fingerprint(seq)+counterFingerprint(seq); got != want {
			t.Errorf("seed %d: Workers=8 diverges from Workers=1:\n--- got ---\n%s--- want ---\n%s", seed, got, want)
		}
		if par.Digest() != seq.Digest() {
			t.Errorf("seed %d: digest %s != %s", seed, par.Digest(), seq.Digest())
		}
	}
}
