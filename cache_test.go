package asyncsyn

// Facade contract for the module solve cache: caching is a pure
// performance layer. Every cache configuration — disabled, the default
// per-run cache, a shared in-memory cache serving its second run
// entirely from hits, and an on-disk cache re-read by a fresh process
// stand-in — must synthesize the bit-identical circuit, at every worker
// count. This is the acceptance test the cache subsystem is gated on.

import (
	"fmt"
	"testing"

	"asyncsyn/internal/benchrec"
)

// circuitDigest mirrors cmd/bench digestOf: the machine-independent
// outputs of a run, hashed order-independently.
func circuitDigest(c *Circuit) string {
	parts := []string{fmt.Sprintf("shape %d/%d/%d/%d", c.FinalStates, c.FinalSignals, c.StateSignals, c.Area)}
	for _, f := range c.Functions {
		parts = append(parts, f.String())
	}
	return benchrec.Digest(parts)
}

func TestCacheBitIdentical(t *testing.T) {
	for _, name := range []string{"vbe4a", "nak-pa"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				run := func(opt Options) *Circuit {
					opt.Workers = workers
					opt.Metrics = NewMetrics()
					return synthWorkers(t, name, opt)
				}

				ref := run(Options{DisableSolveCache: true})
				want := circuitDigest(ref)
				if ref.Counters["modcache_hits"]+ref.Counters["modcache_misses"] != 0 {
					t.Fatalf("DisableSolveCache still touched the cache: %v", ref.Counters)
				}

				if got := circuitDigest(run(Options{})); got != want {
					t.Errorf("default per-run cache changed the circuit: %s vs %s", got, want)
				}

				shared := NewSolveCache()
				first := run(Options{Cache: shared})
				if got := circuitDigest(first); got != want {
					t.Errorf("shared cache cold run changed the circuit: %s vs %s", got, want)
				}
				second := run(Options{Cache: shared})
				if got := circuitDigest(second); got != want {
					t.Errorf("shared cache warm run changed the circuit: %s vs %s", got, want)
				}
				if second.Counters["modcache_hits"] == 0 {
					t.Errorf("warm run served no cache hits: %v", second.Counters)
				}

				dir := t.TempDir()
				if got := circuitDigest(run(Options{CacheDir: dir})); got != want {
					t.Errorf("disk cache cold run changed the circuit: %s vs %s", got, want)
				}
				// A fresh Options.CacheDir run builds a new Cache over the
				// same directory — the cross-process reuse path.
				warmDisk := run(Options{CacheDir: dir})
				if got := circuitDigest(warmDisk); got != want {
					t.Errorf("disk cache warm run changed the circuit: %s vs %s", got, want)
				}
				if warmDisk.Counters["modcache_hits"] == 0 {
					t.Errorf("disk warm run served no cache hits: %v", warmDisk.Counters)
				}
			})
		}
	}
}
