package asyncsyn

import (
	"fmt"

	"asyncsyn/internal/netlist"
	"asyncsyn/internal/sim"
)

// Verify closed-loop-simulates the circuit against its specification:
// the environment plays the STG's input transitions in every order while
// the synthesized functions drive the non-input signals; every output
// the circuit produces must be enabled by the specification and the loop
// must never deadlock. With walks == 0 the product is explored
// exhaustively up to maxStates; otherwise `walks` random trajectories
// are sampled. The returned slice describes violations (empty = the
// circuit conforms).
func (c *Circuit) Verify(s *STG, maxStates, walks int) []string {
	circuit := &sim.Circuit{}
	for _, f := range c.Functions {
		circuit.Gates = append(circuit.Gates, sim.Gate{Name: f.Name, Inputs: f.Inputs, Cover: f.cover})
	}
	opt := sim.Options{MaxDepth: maxStates, Scalar: c.scalarSim}
	if walks > 0 {
		opt.RandomWalks = walks
		opt.RandomSteps = 400
	}
	violations := sim.Run(s.g, circuit, c.initialLevels, opt)
	out := make([]string, len(violations))
	for i, v := range violations {
		out[i] = v.String()
	}
	return out
}

// PLA renders one synthesized function in the Berkeley PLA format
// consumed by espresso and SIS (.i/.o/.ilb/.ob header, one cube per
// row).
func (f Function) PLA() string {
	s := fmt.Sprintf(".i %d\n.o 1\n.ilb", len(f.Inputs))
	for _, in := range f.Inputs {
		s += " " + in
	}
	s += fmt.Sprintf("\n.ob %s\n.p %d\n", f.Name, len(f.cover))
	for _, row := range f.Cubes() {
		s += row + " 1\n"
	}
	return s + ".e\n"
}

// Verilog renders the whole circuit as a structural Verilog module: one
// inverter per complemented input, one AND per cube, one OR per
// function, with feedback wired by name.
func (c *Circuit) Verilog() string {
	fns := make([]netlist.Function, 0, len(c.Functions))
	for _, f := range c.Functions {
		fns = append(fns, netlist.Function{Name: f.Name, Inputs: f.Inputs, Cover: f.cover})
	}
	return netlist.Build(c.Name, fns).Verilog()
}
