package asyncsyn

import (
	"testing"

	"asyncsyn/internal/bench"
)

// TestModularSuite runs modular synthesis over every reconstructed
// benchmark and checks the invariants every successful run must satisfy.
func TestModularSuite(t *testing.T) {
	for _, name := range bench.Available() {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := bench.Source(name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ParseSTGString(src)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Synthesize(g, Options{Method: Modular})
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			if c.Aborted {
				t.Fatalf("aborted (backtrack limit)")
			}
			if c.StateSignals < 1 {
				t.Errorf("no state signals inserted")
			}
			if c.FinalStates < c.InitialStates {
				t.Errorf("final states %d < initial %d", c.FinalStates, c.InitialStates)
			}
			if c.Area <= 0 {
				t.Errorf("area %d", c.Area)
			}
			t.Logf("%s: %d→%d states, %d→%d signals, area %d, cpu %v",
				name, c.InitialStates, c.FinalStates, c.InitialSignals, c.FinalSignals, c.Area, c.CPU)
		})
	}
}
