module asyncsyn

go 1.22
