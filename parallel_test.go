package asyncsyn

// Determinism contract of the parallel pipeline (DESIGN.md §3.8): the
// synthesized circuit is bit-for-bit identical for every Workers value,
// and the portfolio engine agrees with plain DPLL whenever DPLL decides
// within its budget.

import (
	"fmt"
	"runtime"
	"testing"

	"asyncsyn/internal/bench"
)

// fingerprint flattens every externally visible synthesis result into a
// single comparable string: counts, area, inserted-signal names, and
// the full SOP cover of every function.
func fingerprint(c *Circuit) string {
	s := fmt.Sprintf("states=%d->%d signals=%d->%d statesigs=%d area=%d aborted=%v\n",
		c.InitialStates, c.FinalStates, c.InitialSignals, c.FinalSignals,
		c.StateSignals, c.Area, c.Aborted)
	for _, f := range c.Functions {
		s += f.String() + "\n"
	}
	for _, m := range c.Modules {
		s += fmt.Sprintf("module %s merged=%d conflicts=%d new=%d inputs=%v\n",
			m.Output, m.MergedStates, m.Conflicts, m.NewSignals, m.InputSet)
	}
	return s
}

func synthWorkers(t *testing.T, name string, opt Options) *Circuit {
	t.Helper()
	src, err := bench.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseSTGString(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Synthesize(g, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	names := []string{"vbe4a", "nak-pa", "sbuf-ram-write"}
	if !testing.Short() {
		names = append(names, "mmu1")
	}
	workerSet := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			want := fingerprint(synthWorkers(t, name, Options{Workers: 1}))
			for _, w := range workerSet {
				got := fingerprint(synthWorkers(t, name, Options{Workers: w}))
				if got != want {
					t.Errorf("Workers=%d diverges from Workers=1:\n--- got ---\n%s--- want ---\n%s", w, got, want)
				}
			}
		})
	}
}

// TestPortfolioDeterminism pins the racing engine's contract: repeated
// portfolio runs are identical to each other, and — because the DPLL
// verdict is always preferred when it decides within budget — identical
// to a plain DPLL run.
func TestPortfolioDeterminism(t *testing.T) {
	for _, name := range []string{"vbe4a", "nak-pa", "sbuf-send-ctl"} {
		t.Run(name, func(t *testing.T) {
			dpll := fingerprint(synthWorkers(t, name, Options{Engine: DPLL}))
			p1 := synthWorkers(t, name, Options{Engine: Portfolio})
			p2 := fingerprint(synthWorkers(t, name, Options{Engine: Portfolio}))
			if got := fingerprint(p1); got != p2 {
				t.Errorf("portfolio is not self-consistent:\n--- run1 ---\n%s--- run2 ---\n%s", got, p2)
			}
			if got := fingerprint(p1); got != dpll {
				t.Errorf("portfolio diverges from dpll:\n--- portfolio ---\n%s--- dpll ---\n%s", got, dpll)
			}
			for _, f := range p1.Formulas {
				if f.Engine != "portfolio:dpll" && f.Engine != "portfolio:walksat" {
					t.Errorf("formula %q engine = %q, want portfolio:*", f.Output, f.Engine)
				}
			}
		})
	}
}
