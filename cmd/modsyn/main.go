// Command modsyn synthesizes a speed-independent circuit from an STG
// specification in the astg ".g" format.
//
// Usage:
//
//	modsyn [-method modular|direct|lavagno] [-engine dpll|walksat|bdd|portfolio]
//	       [-workers N] [-timeout D] [-trace file] [-cachedir dir] [-nocache]
//	       [-expandxor] [-fullsupport] [-v] file.g
//	modsyn -bench name        # synthesize an embedded benchmark
//	modsyn -project dir/      # incremental suite mode over a directory
//	       [-rundb dir] [-recheck]
//
// Project suite mode walks the .g files of a directory against a
// persistent run database (internal/rundb; default <dir>/.rundb, or
// -rundb to share one): entries whose content/options hash matches a
// banked record are skipped without a single solve, everything else is
// re-synthesized and recorded. -recheck re-synthesizes banked entries
// too and hard-fails if any digest diverges from the bank — the
// incremental contract is that an unchanged key reproduces a
// bit-identical circuit.
//
// -workers N bounds the worker pool for the pipeline's parallel stages
// (0 = GOMAXPROCS, 1 = sequential); the synthesized circuit is
// identical for every value. -engine portfolio races DPLL against
// WalkSAT per SAT formula with a deterministic winner. -timeout bounds
// the run's wall-clock time (e.g. -timeout 30s). -trace writes one JSON
// line per pipeline stage and per SAT formula to the given file ("-"
// for stderr).
//
// It prints the synthesized logic equations and the statistics the
// paper's Table 1 reports: initial/final state and signal counts, the
// two-level implementation area in literals, and the CPU time.
//
// Exit codes distinguish the failure classes of the synerr taxonomy
// (shared with the internal/server daemon's HTTP status mapping):
// 0 = success, 2 = parse/usage error, 3 = timeout, 4 = unsolvable or
// budget exhausted (including SAT backtrack-limit aborts), 1 = any
// other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/rundb"
	"asyncsyn/internal/synerr"
)

func main() {
	method := flag.String("method", "modular", "synthesis method: modular, direct or lavagno")
	engine := flag.String("engine", "dpll", "constraint engine: dpll, walksat, bdd or portfolio (dpll raced against walksat, deterministic winner)")
	workers := flag.Int("workers", 0, "worker pool for the parallel pipeline stages (0 = GOMAXPROCS, 1 = sequential; output is identical for any value)")
	expandXor := flag.Bool("expandxor", false, "use the paper-style expanded CNF for separation constraints")
	fullSupport := flag.Bool("fullsupport", false, "derive logic over all signals (disable input-set support restriction)")
	benchName := flag.String("bench", "", "synthesize the named embedded benchmark instead of a file")
	maxBT := flag.Int64("maxbacktracks", 0, "SAT backtrack budget per formula (0 = default)")
	verbose := flag.Bool("v", false, "print per-output module reports and SAT formula statistics")
	exact := flag.Bool("exact", false, "exact minimum-literal two-level minimization")
	pla := flag.Bool("pla", false, "print each function in Berkeley PLA format")
	verilog := flag.Bool("verilog", false, "print the circuit as a structural Verilog module")
	dotSTG := flag.Bool("dot", false, "print the STG in Graphviz DOT format and exit")
	verify := flag.Bool("verify", false, "closed-loop-simulate the circuit against the specification")
	cacheDir := flag.String("cachedir", "", "back the module solve cache with JSON records under this directory (persists solves across runs)")
	noCache := flag.Bool("nocache", false, "disable the module solve cache entirely")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the run (0 = none; e.g. 30s)")
	tracePath := flag.String("trace", "", "write JSON-lines trace events (stage and formula) to this file (\"-\" = stderr)")
	project := flag.String("project", "", "incremental suite mode: synthesize every .g file under this directory, skipping entries banked in the run database")
	runDBDir := flag.String("rundb", "", "run database directory for -project (default <project>/.rundb)")
	recheck := flag.Bool("recheck", false, "with -project: re-synthesize banked entries too and hard-fail on digest divergence")
	flag.Parse()

	opt := asyncsyn.Options{
		ExpandXor:     *expandXor,
		FullSupport:   *fullSupport,
		ExactMinimize: *exact,
		MaxBacktracks: *maxBT,
		Workers:       *workers,
		Timeout:       *timeout,

		CacheDir:          *cacheDir,
		DisableSolveCache: *noCache,
	}
	if *tracePath != "" {
		w := os.Stderr
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatalf("trace: %v", err)
			}
			defer f.Close()
			w = f
		}
		opt.Tracer = asyncsyn.NewJSONTracer(w)
	}
	var err error
	if opt.Method, err = asyncsyn.ParseMethod(*method); err != nil {
		fatalClass(synerr.ClassParse, "%v", err)
	}
	if opt.Engine, err = asyncsyn.ParseEngine(*engine); err != nil {
		fatalClass(synerr.ClassParse, "%v", err)
	}

	if *project != "" {
		if flag.NArg() != 0 || *benchName != "" {
			fatalClass(synerr.ClassParse, "-project is exclusive with a file argument or -bench")
		}
		runProject(*project, *runDBDir, opt, *recheck)
		return
	}

	var g *asyncsyn.STG
	switch {
	case *benchName != "":
		src, serr := bench.Source(*benchName)
		if serr != nil {
			fatalClass(synerr.ClassParse, "%v (available: %v)", serr, bench.Available())
		}
		g, err = asyncsyn.ParseSTGString(src)
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatalClass(synerr.ClassParse, "%v", ferr)
		}
		defer f.Close()
		g, err = asyncsyn.ParseSTG(f)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatalErr("parse", err)
	}
	if *dotSTG {
		fmt.Print(g.DOT())
		return
	}

	c, err := asyncsyn.Synthesize(g, opt)
	if errors.Is(err, asyncsyn.ErrCanceled) && *timeout > 0 {
		fatalClass(synerr.ClassTimeout, "synthesize: timed out after %v: %v", *timeout, err)
	}
	if err != nil {
		fatalErr("synthesize", err)
	}
	fmt.Printf("model %s  (method %s)\n", c.Name, c.Method)
	if c.Aborted {
		// Budget exhaustion is reported via Circuit.Aborted rather than
		// an error; it exits with the unsolvable/budget class all the
		// same.
		fmt.Printf("ABORTED: SAT backtrack limit exceeded after %v\n", c.CPU)
		os.Exit(synerr.ClassUnsolvable.ExitCode())
	}
	fmt.Printf("states  %4d -> %4d\n", c.InitialStates, c.FinalStates)
	fmt.Printf("signals %4d -> %4d  (%d state signals inserted)\n",
		c.InitialSignals, c.FinalSignals, c.StateSignals)
	fmt.Printf("area    %4d literals (prime-irredundant two-level covers)\n", c.Area)
	fmt.Printf("cpu     %v\n\n", c.CPU)
	for _, f := range c.Functions {
		fmt.Printf("  %s\n", f)
	}
	if *pla {
		fmt.Println()
		for _, f := range c.Functions {
			fmt.Print(f.PLA())
		}
	}
	if *verilog {
		fmt.Println()
		fmt.Print(c.Verilog())
	}
	if *verify {
		if bad := c.Verify(g, 200000, 0); len(bad) != 0 {
			fmt.Println("\nconformance VIOLATIONS:")
			for _, v := range bad {
				fmt.Printf("  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("\nconformance check passed (exhaustive closed-loop simulation)")
	}
	if *verbose {
		if len(c.Modules) > 0 {
			fmt.Println("\nper-output modules:")
			for _, m := range c.Modules {
				fmt.Printf("  %-10s merged %4d states, %3d conflicts, +%d signals, inputs %v\n",
					m.Output, m.MergedStates, m.Conflicts, m.NewSignals, m.InputSet)
			}
		}
		fmt.Println("\nSAT formulas:")
		for _, f := range c.Formulas {
			out := f.Output
			if out == "" {
				out = "(global)"
			}
			eng := f.Engine
			if eng == "" {
				eng = "dpll"
			}
			fmt.Printf("  %-10s m=%d  %5d vars %7d clauses  %s  %s  %v\n",
				out, f.Signals, f.Vars, f.Clauses, f.Status, eng, f.Time)
		}
	}
}

// runProject drives the incremental suite mode and prints the
// per-entry report plus the summary line CI greps
// ("project: N entries, S skipped, R resynthesized").
func runProject(dir, dbDir string, opt asyncsyn.Options, recheck bool) {
	if dbDir == "" {
		dbDir = filepath.Join(dir, ".rundb")
	}
	db, err := rundb.Open(dbDir)
	if err != nil {
		fatalErr("rundb", err)
	}
	fmt.Printf("project %s  (rundb %s, method %s)\n", dir, dbDir, opt.Method)
	res, err := rundb.RunProject(context.Background(), db, dir, opt, recheck, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if res != nil {
		fmt.Printf("project: %d entries, %d skipped, %d resynthesized\n",
			len(res.Entries), res.Skipped, res.Resynthesized)
	}
	if errors.Is(err, rundb.ErrDivergence) {
		fatalClass(synerr.ClassInternal, "%v", err)
	}
	if err != nil {
		fatalErr("project", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "modsyn: "+format+"\n", args...)
	os.Exit(1)
}

// fatalClass exits with the class's exit code (2 = parse/usage,
// 3 = timeout, 4 = unsolvable/budget, 1 = internal).
func fatalClass(class synerr.Class, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "modsyn: "+format+"\n", args...)
	os.Exit(class.ExitCode())
}

// fatalErr classifies err through the shared taxonomy and exits with
// the class's code.
func fatalErr(stage string, err error) {
	fatalClass(synerr.ClassOf(err), "%s: %v", stage, err)
}
