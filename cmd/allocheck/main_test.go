package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: asyncsyn/internal/sg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExpand-4       	    6980	    151784 ns/op	  209011 B/op	    1498 allocs/op
BenchmarkExpandStream-4 	    8123	    140002 ns/op	  8388608 peak-B	  101011 B/op	     912 allocs/op
BenchmarkConflictScan   	   56866	     23548 ns/op	   31505 B/op	     150 allocs/op
BenchmarkSolveChain/incremental-4     	     436	   2794718 ns/op	  614585 B/op	    3422 allocs/op
PASS
ok  	asyncsyn/internal/sg	3.827s
`

func TestParse(t *testing.T) {
	got, peaks, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Ref{
		"BenchmarkExpand":                 {BytesPerOp: 209011, AllocsPerOp: 1498},
		"BenchmarkExpandStream":           {BytesPerOp: 101011, AllocsPerOp: 912},
		"BenchmarkConflictScan":           {BytesPerOp: 31505, AllocsPerOp: 150},
		"BenchmarkSolveChain/incremental": {BytesPerOp: 614585, AllocsPerOp: 3422},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for n, w := range want {
		if got[n] != w {
			t.Errorf("%s: got %+v, want %+v", n, got[n], w)
		}
	}
	if len(peaks) != 1 || peaks["BenchmarkExpandStream"] != 8388608 {
		t.Fatalf("peaks = %v, want BenchmarkExpandStream:8388608", peaks)
	}
}

func TestCompareHeap(t *testing.T) {
	ref := map[string]float64{
		"BenchmarkExpandStream": 8 << 20,
		"BenchmarkGone":         1 << 20,
	}
	got := map[string]float64{
		"BenchmarkExpandStream": 20 << 20, // beyond 2×
		"BenchmarkNew":          1 << 20,  // unreferenced
	}
	failures, warnings := compareHeap(ref, got, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkExpandStream") {
		t.Fatalf("failures = %v, want one for BenchmarkExpandStream", failures)
	}
	if len(warnings) != 2 {
		t.Fatalf("warnings = %v, want 2 (unreferenced + unmeasured)", warnings)
	}
}

func TestCompare(t *testing.T) {
	ref := map[string]Ref{
		"BenchmarkA":    {BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB":    {BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkGone": {BytesPerOp: 10, AllocsPerOp: 1},
	}
	got := map[string]Ref{
		"BenchmarkA":   {BytesPerOp: 1500, AllocsPerOp: 150}, // within 2×
		"BenchmarkB":   {BytesPerOp: 2500, AllocsPerOp: 250}, // both beyond 2×
		"BenchmarkNew": {BytesPerOp: 5, AllocsPerOp: 1},      // unreferenced
	}
	failures, warnings := compare(ref, got, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkB") {
		t.Fatalf("failures = %v, want one for BenchmarkB", failures)
	}
	// Warnings: BenchmarkB bytes, BenchmarkNew unreferenced, BenchmarkGone unmeasured.
	if len(warnings) != 3 {
		t.Fatalf("warnings = %v, want 3", warnings)
	}
}
