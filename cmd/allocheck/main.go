// Command allocheck gates allocation regressions on the hot-path
// microbenchmarks. It parses `go test -bench -benchmem` output and
// compares each benchmark's allocs/op against a committed reference
// (ALLOCS_0.json), failing when any benchmark allocates more than
// -maxratio times its reference — the coarse gate that catches a pooled
// path quietly reverting to per-call allocation without tripping on
// machine-to-machine noise. Bytes/op drift beyond the ratio only warns:
// byte counts move with allocator size classes and struct layout, while
// allocation counts are a property of the code path.
//
// Benchmarks of the streaming paths additionally report a sampled
// HeapInuse high-water mark as a peak-B metric (b.ReportMetric); those
// peaks gate against a sibling reference (HEAP_0.json) with the same
// ratio discipline. A peak-heap failure is the microbenchmark-scale
// symptom of a streaming path re-materializing its input.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./internal/sg | allocheck -ref ALLOCS_0.json
//	allocheck -ref ALLOCS_0.json -heapref HEAP_0.json bench-output.txt
//	allocheck -ref ALLOCS_0.json -write bench-output.txt   # (re)write both references
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Ref is one benchmark's reference point.
type Ref struct {
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one -benchmem result line, with an optional peak-B
// custom metric (testing prints custom metrics between ns/op and the
// -benchmem columns), e.g.
//
//	BenchmarkExpand-4         6980   151784 ns/op                    209011 B/op   1498 allocs/op
//	BenchmarkExpandStream-4   6980   142001 ns/op   8388608 peak-B   101011 B/op    912 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op(?:\s+([\d.eE+]+) peak-B)?\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

func main() {
	refPath := flag.String("ref", "ALLOCS_0.json", "committed reference file")
	heapRefPath := flag.String("heapref", "HEAP_0.json", "committed peak-heap reference for benchmarks reporting peak-B")
	write := flag.Bool("write", false, "write the parsed results as the new reference instead of comparing")
	maxRatio := flag.Float64("maxratio", 2.0, "fail when allocs/op exceeds reference×ratio")
	maxHeapRatio := flag.Float64("maxheapratio", 2.0, "fail when a reported peak-B exceeds its reference×ratio")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, peaks, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no -benchmem result lines found (run go test with -bench and -benchmem)"))
	}

	if *write {
		if err := writeRef(*refPath, got); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "allocheck: wrote %s (%d benchmarks)\n", *refPath, len(got))
		if len(peaks) > 0 {
			if err := writeHeapRef(*heapRefPath, peaks); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "allocheck: wrote %s (%d peak-heap benchmarks)\n", *heapRefPath, len(peaks))
		}
		return
	}

	ref, err := readRef(*refPath)
	if err != nil {
		fatal(err)
	}
	failures, warnings := compare(ref, got, *maxRatio)
	if len(peaks) > 0 {
		heapRef, err := readHeapRef(*heapRefPath)
		if err != nil {
			fatal(err)
		}
		hf, hw := compareHeap(heapRef, peaks, *maxHeapRatio)
		failures = append(failures, hf...)
		warnings = append(warnings, hw...)
	}
	for _, w := range warnings {
		fmt.Printf("warn: %s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	fmt.Printf("allocheck: %d benchmarks (%d with peak-heap) against %s: %d fail, %d warn\n",
		len(got), len(peaks), *refPath, len(failures), len(warnings))
	if len(failures) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "allocheck: %v\n", err)
	os.Exit(1)
}

// parse extracts benchmark results, keyed by name with the GOMAXPROCS
// suffix stripped (BenchmarkExpand-4 → BenchmarkExpand). Sub-benchmarks
// keep their slash path. A repeated name (e.g. -count>1) keeps the last
// measurement.
func parse(r io.Reader) (map[string]Ref, map[string]float64, error) {
	out := make(map[string]Ref)
	peaks := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		bytes, err1 := strconv.ParseFloat(m[3], 64)
		allocs, err2 := strconv.ParseFloat(m[4], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("bad benchmark line: %s", sc.Text())
		}
		out[m[1]] = Ref{BytesPerOp: bytes, AllocsPerOp: allocs}
		if m[2] != "" {
			peak, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad peak-B value: %s", sc.Text())
			}
			peaks[m[1]] = peak
		}
	}
	return out, peaks, sc.Err()
}

// compare gates got against ref: an allocs/op ratio above max fails; a
// bytes/op ratio above max, a benchmark missing from the reference, or a
// reference benchmark missing from the output warns.
func compare(ref, got map[string]Ref, max float64) (failures, warnings []string) {
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := got[n]
		r, ok := ref[n]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: not in reference (run allocheck -write to adopt)", n))
			continue
		}
		if r.AllocsPerOp > 0 && g.AllocsPerOp > r.AllocsPerOp*max {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs reference %.0f (>%.1f×)",
				n, g.AllocsPerOp, r.AllocsPerOp, max))
		}
		if r.BytesPerOp > 0 && g.BytesPerOp > r.BytesPerOp*max {
			warnings = append(warnings, fmt.Sprintf("%s: %.0f B/op vs reference %.0f (>%.1f×)",
				n, g.BytesPerOp, r.BytesPerOp, max))
		}
	}
	var missing []string
	for n := range ref {
		if _, ok := got[n]; !ok {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	for _, n := range missing {
		warnings = append(warnings, fmt.Sprintf("%s: in reference but not measured", n))
	}
	return failures, warnings
}

// compareHeap gates the reported peak-B metrics against the heap
// reference: a peak beyond reference×max fails; a benchmark missing
// from the reference (or vice versa) warns, like the alloc gate.
func compareHeap(ref, got map[string]float64, max float64) (failures, warnings []string) {
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r, ok := ref[n]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: peak-heap not in reference (run allocheck -write to adopt)", n))
			continue
		}
		if r > 0 && got[n] > r*max {
			failures = append(failures, fmt.Sprintf("%s: peak heap %.1f MiB vs reference %.1f MiB (>%.1f×)",
				n, got[n]/(1<<20), r/(1<<20), max))
		}
	}
	var missing []string
	for n := range ref {
		if _, ok := got[n]; !ok {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	for _, n := range missing {
		warnings = append(warnings, fmt.Sprintf("%s: in peak-heap reference but not measured", n))
	}
	return failures, warnings
}

func readRef(path string) (map[string]Ref, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ref map[string]Ref
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ref, nil
}

// writeRef emits the reference sorted and indented, so regeneration
// diffs cleanly.
func writeRef(path string, ref map[string]Ref) error {
	data, err := json.MarshalIndent(ref, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readHeapRef(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ref map[string]float64
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ref, nil
}

func writeHeapRef(path string, ref map[string]float64) error {
	data, err := json.MarshalIndent(ref, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
