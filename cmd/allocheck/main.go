// Command allocheck gates allocation regressions on the hot-path
// microbenchmarks. It parses `go test -bench -benchmem` output and
// compares each benchmark's allocs/op against a committed reference
// (ALLOCS_0.json), failing when any benchmark allocates more than
// -maxratio times its reference — the coarse gate that catches a pooled
// path quietly reverting to per-call allocation without tripping on
// machine-to-machine noise. Bytes/op drift beyond the ratio only warns:
// byte counts move with allocator size classes and struct layout, while
// allocation counts are a property of the code path.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./internal/sg | allocheck -ref ALLOCS_0.json
//	allocheck -ref ALLOCS_0.json bench-output.txt
//	allocheck -ref ALLOCS_0.json -write bench-output.txt   # (re)write the reference
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Ref is one benchmark's reference point.
type Ref struct {
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one -benchmem result line, e.g.
//
//	BenchmarkExpand-4   6980   151784 ns/op   209011 B/op   1498 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

func main() {
	refPath := flag.String("ref", "ALLOCS_0.json", "committed reference file")
	write := flag.Bool("write", false, "write the parsed results as the new reference instead of comparing")
	maxRatio := flag.Float64("maxratio", 2.0, "fail when allocs/op exceeds reference×ratio")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no -benchmem result lines found (run go test with -bench and -benchmem)"))
	}

	if *write {
		if err := writeRef(*refPath, got); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "allocheck: wrote %s (%d benchmarks)\n", *refPath, len(got))
		return
	}

	ref, err := readRef(*refPath)
	if err != nil {
		fatal(err)
	}
	failures, warnings := compare(ref, got, *maxRatio)
	for _, w := range warnings {
		fmt.Printf("warn: %s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	fmt.Printf("allocheck: %d benchmarks against %s: %d fail, %d warn\n",
		len(got), *refPath, len(failures), len(warnings))
	if len(failures) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "allocheck: %v\n", err)
	os.Exit(1)
}

// parse extracts benchmark results, keyed by name with the GOMAXPROCS
// suffix stripped (BenchmarkExpand-4 → BenchmarkExpand). Sub-benchmarks
// keep their slash path. A repeated name (e.g. -count>1) keeps the last
// measurement.
func parse(r io.Reader) (map[string]Ref, error) {
	out := make(map[string]Ref)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		bytes, err1 := strconv.ParseFloat(m[2], 64)
		allocs, err2 := strconv.ParseFloat(m[3], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad benchmark line: %s", sc.Text())
		}
		out[m[1]] = Ref{BytesPerOp: bytes, AllocsPerOp: allocs}
	}
	return out, sc.Err()
}

// compare gates got against ref: an allocs/op ratio above max fails; a
// bytes/op ratio above max, a benchmark missing from the reference, or a
// reference benchmark missing from the output warns.
func compare(ref, got map[string]Ref, max float64) (failures, warnings []string) {
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := got[n]
		r, ok := ref[n]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: not in reference (run allocheck -write to adopt)", n))
			continue
		}
		if r.AllocsPerOp > 0 && g.AllocsPerOp > r.AllocsPerOp*max {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs reference %.0f (>%.1f×)",
				n, g.AllocsPerOp, r.AllocsPerOp, max))
		}
		if r.BytesPerOp > 0 && g.BytesPerOp > r.BytesPerOp*max {
			warnings = append(warnings, fmt.Sprintf("%s: %.0f B/op vs reference %.0f (>%.1f×)",
				n, g.BytesPerOp, r.BytesPerOp, max))
		}
	}
	var missing []string
	for n := range ref {
		if _, ok := got[n]; !ok {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	for _, n := range missing {
		warnings = append(warnings, fmt.Sprintf("%s: in reference but not measured", n))
	}
	return failures, warnings
}

func readRef(path string) (map[string]Ref, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ref map[string]Ref
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ref, nil
}

// writeRef emits the reference sorted and indented, so regeneration
// diffs cleanly.
func writeRef(path string, ref map[string]Ref) error {
	data, err := json.MarshalIndent(ref, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
