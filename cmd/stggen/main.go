// Command stggen generates parametric STG specifications in the ".g"
// format, using the structural families the benchmark reconstruction is
// built from: serial double-handshake cycles, concurrent fork/join
// phases and free-choice branches. It is the workload generator for
// scaling experiments beyond the fixed Table 1 suite.
//
// Usage:
//
//	stggen -family handshakes -branches 3 -rounds 2   > big.g
//	stggen -family ring -stages 4                      > ring.g
//	stggen -family choice -branches 2                  > choice.g
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncsyn/internal/stg"
)

func main() {
	family := flag.String("family", "handshakes", "family: handshakes, ring or choice")
	branches := flag.Int("branches", 2, "concurrent branches (handshakes, choice)")
	rounds := flag.Int("rounds", 2, "phases that re-run the branches (handshakes)")
	stages := flag.Int("stages", 3, "pipeline stages (ring)")
	name := flag.String("name", "", "model name (default derived from parameters)")
	flag.Parse()

	var (
		g   *stg.G
		err error
	)
	switch *family {
	case "handshakes":
		g, err = stg.Handshakes(*name, *branches, *rounds)
	case "ring":
		g, err = stg.Ring(*name, *stages)
	case "choice":
		g, err = stg.Choice(*name, *branches)
	default:
		fmt.Fprintf(os.Stderr, "stggen: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stggen: %v\n", err)
		os.Exit(1)
	}
	if werr := stg.Write(os.Stdout, g); werr != nil {
		fmt.Fprintf(os.Stderr, "stggen: %v\n", werr)
		os.Exit(1)
	}
}
