// Command table1 regenerates the paper's Table 1: for every benchmark in
// the reconstructed suite it runs the modular partitioning method, the
// direct (Vanbekbergen-style, no decomposition) method and the
// Lavagno-style baseline, and prints final state/signal counts, two-level
// area in literals, and CPU time next to the numbers the paper reports.
//
// Usage:
//
//	table1                  # the full table
//	table1 -clauses         # SAT formula sizes: direct vs modular
//	table1 -summary         # area/time ratios (the paper's 12%/9% claims)
//	table1 -bench mr0       # a single row
//	table1 -workers 8       # synthesize benchmark rows on a worker pool
//	table1 -trace t.jsonl   # JSON trace of every stage and SAT formula
//
// -workers N (0 = GOMAXPROCS, 1 = sequential) fans the independent
// benchmark rows out over a bounded worker pool; rows are always
// printed in table order and every cell is identical to a sequential
// run — the pool changes wall-clock only. -trace streams one JSON line
// per pipeline stage and per SAT formula across all rows and methods
// to the given file ("-" = stderr); each line carries its model and
// method labels, so interleaved rows stay attributable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/par"
)

func main() {
	clauses := flag.Bool("clauses", false, "print SAT formula sizes (direct vs modular) instead of the table")
	summary := flag.Bool("summary", false, "print aggregate area/time comparisons")
	one := flag.String("bench", "", "run a single benchmark")
	maxBT := flag.Int64("maxbacktracks", 300000, "SAT backtrack budget per formula")
	workers := flag.Int("workers", 0, "worker pool over benchmark rows (0 = GOMAXPROCS, 1 = sequential; cells are identical for any value)")
	tracePath := flag.String("trace", "", "write JSON-lines trace events (stage and formula) to this file (\"-\" = stderr)")
	flag.Parse()

	if *tracePath != "" {
		w := os.Stderr
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "table1: trace: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		tracer = asyncsyn.NewJSONTracer(w)
	}

	names := bench.Names()
	if *one != "" {
		names = []string{*one}
	}

	switch {
	case *clauses:
		clauseTable(names, *maxBT, *workers)
	case *summary:
		summaryTable(names, *maxBT, *workers)
	default:
		fullTable(names, *maxBT, *workers)
	}
}

type run struct {
	c   *asyncsyn.Circuit
	err error
}

// tracer, when non-nil, receives stage and formula events from every
// synthesis this process runs. The JSON tracer serializes its writes,
// so the shared instance is safe under -workers fan-out.
var tracer asyncsyn.Tracer

func synth(name string, method asyncsyn.Method, maxBT int64, workers int) run {
	src, err := bench.Source(name)
	if err != nil {
		return run{err: err}
	}
	g, err := asyncsyn.ParseSTGString(src)
	if err != nil {
		return run{err: err}
	}
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{Method: method, MaxBacktracks: maxBT, Workers: workers, Tracer: tracer})
	return run{c: c, err: err}
}

// rowRuns holds the three method runs of one table row.
type rowRuns struct{ m, d, l run }

// innerWorkers picks the per-synthesis stage-pool budget: when the rows
// themselves fan out, each synthesis runs its stages sequentially (the
// row pool already saturates the cores); when rows are sequential, the
// stage pool gets the whole machine.
func innerWorkers(rowWorkers int) int {
	if par.Workers(rowWorkers) > 1 {
		return 1
	}
	return 0
}

// computeRows synthesizes every row on the worker pool; results come
// back in table order regardless of which worker finished first.
func computeRows(names []string, maxBT int64, workers int) []rowRuns {
	inner := innerWorkers(workers)
	rows, _ := par.Map(len(names), workers, func(i int) (rowRuns, error) {
		return rowRuns{
			m: synth(names[i], asyncsyn.Modular, maxBT, inner),
			d: synth(names[i], asyncsyn.Direct, maxBT, inner),
			l: synth(names[i], asyncsyn.Lavagno, maxBT, inner),
		}, nil
	})
	return rows
}

func cell(r run) (states, signals, area, cpu string) {
	switch {
	case r.err != nil:
		return "-", "-", "err", "-"
	case r.c.Aborted:
		return "-", "-", "abort", fmt.Sprintf("%.2f", r.c.CPU.Seconds())
	default:
		return fmt.Sprint(r.c.FinalStates), fmt.Sprint(r.c.FinalSignals),
			fmt.Sprint(r.c.Area), fmt.Sprintf("%.2f", r.c.CPU.Seconds())
	}
}

func fullTable(names []string, maxBT int64, workers int) {
	rows := computeRows(names, maxBT, workers)
	fmt.Println("Table 1 reproduction (reconstructed suite; paper numbers in parentheses)")
	fmt.Printf("%-16s %11s | %21s | %21s | %21s\n",
		"", "initial", "modular (ours)", "direct (Vanbekbergen)", "lavagno-style")
	fmt.Printf("%-16s %5s %5s | %5s %4s %5s %5s | %5s %4s %5s %5s | %5s %4s %5s %5s\n",
		"STG", "st", "sig",
		"st", "sig", "area", "cpu",
		"st", "sig", "area", "cpu",
		"st", "sig", "area", "cpu")
	for i, name := range names {
		e, _ := bench.Find(name)
		m, d, l := rows[i].m, rows[i].d, rows[i].l
		if m.err != nil {
			fmt.Fprintf(os.Stderr, "table1: %s modular: %v\n", name, m.err)
		}
		ini := "?"
		if m.c != nil {
			ini = fmt.Sprintf("%5d %5d", m.c.InitialStates, m.c.InitialSignals)
		}
		ms, msig, ma, mc := cell(m)
		ds, dsig, da, dc := cell(d)
		ls, lsig, la, lc := cell(l)
		fmt.Printf("%-16s %11s | %5s %4s %5s %5s | %5s %4s %5s %5s | %5s %4s %5s %5s\n",
			name, ini, ms, msig, ma, mc, ds, dsig, da, dc, ls, lsig, la, lc)
		fmt.Printf("%-16s %5d %5d | %5s %4s %5s %5s | %5s %4s %5s %5s | %5s %4s %5s %5s   (paper)\n",
			"", e.InitialStates, e.InitialSignals,
			paperCell(e.Ours), paperCell4(e.Ours), paperArea(e.Ours), paperCPU(e.Ours),
			paperCell(e.Vanbekbergen), paperCell4(e.Vanbekbergen), paperArea(e.Vanbekbergen), paperCPU(e.Vanbekbergen),
			"-", paperCell4(e.Lavagno), paperArea(e.Lavagno), paperCPU(e.Lavagno))
	}
}

func paperCell(p bench.Paper) string {
	if p.States == 0 {
		return "-"
	}
	return fmt.Sprint(p.States)
}

func paperCell4(p bench.Paper) string {
	if p.Signals == 0 {
		return "-"
	}
	return fmt.Sprint(p.Signals)
}

func paperArea(p bench.Paper) string {
	if p.Note != "" {
		return "abort"
	}
	if p.Area == 0 {
		return "-"
	}
	return fmt.Sprint(p.Area)
}

func paperCPU(p bench.Paper) string {
	if p.CPU == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", p.CPU)
}

func clauseTable(names []string, maxBT int64, workers int) {
	fmt.Println("SAT formula sizes: direct whole-graph formula vs modular formulas")
	fmt.Println("(paper-style expanded CNF — no auxiliary variables — as in the")
	fmt.Println(" mmu0 claim: a 35,386-clause direct formula vs three small ones)")
	fmt.Printf("%-16s | %10s %10s | %s\n", "STG", "direct-cls", "direct-var", "modular formulas (clauses/vars each)")
	inner := innerWorkers(workers)
	synthX := func(name string, method asyncsyn.Method) run {
		src, err := bench.Source(name)
		if err != nil {
			return run{err: err}
		}
		g, err := asyncsyn.ParseSTGString(src)
		if err != nil {
			return run{err: err}
		}
		c, err := asyncsyn.Synthesize(g, asyncsyn.Options{Method: method, MaxBacktracks: maxBT, ExpandXor: true, Workers: inner, Tracer: tracer})
		return run{c: c, err: err}
	}
	type pair struct{ d, m run }
	rows, _ := par.Map(len(names), workers, func(i int) (pair, error) {
		return pair{d: synthX(names[i], asyncsyn.Direct), m: synthX(names[i], asyncsyn.Modular)}, nil
	})
	for i, name := range names {
		d, m := rows[i].d, rows[i].m
		dc, dv := "-", "-"
		if d.err == nil && len(d.c.Formulas) > 0 {
			// Largest formula attempted by the direct method.
			best := d.c.Formulas[0]
			for _, f := range d.c.Formulas {
				if f.Clauses > best.Clauses {
					best = f
				}
			}
			dc, dv = fmt.Sprint(best.Clauses), fmt.Sprint(best.Vars)
		}
		var mods string
		if m.err == nil {
			for _, f := range m.c.Formulas {
				mods += fmt.Sprintf(" %d/%d", f.Clauses, f.Vars)
			}
		}
		fmt.Printf("%-16s | %10s %10s |%s\n", name, dc, dv, mods)
	}
}

func summaryTable(names []string, maxBT int64, workers int) {
	rows := computeRows(names, maxBT, workers)
	var areaMD, areaD, areaML, areaL int
	var cpuMD, cpuD, cpuML, cpuL time.Duration
	var nD, nL int
	for i := range names {
		m := rows[i].m
		if m.err != nil || m.c.Aborted {
			continue
		}
		if d := rows[i].d; d.err == nil && !d.c.Aborted {
			areaMD += m.c.Area
			areaD += d.c.Area
			cpuMD += m.c.CPU
			cpuD += d.c.CPU
			nD++
		}
		if l := rows[i].l; l.err == nil && !l.c.Aborted {
			areaML += m.c.Area
			areaL += l.c.Area
			cpuML += m.c.CPU
			cpuL += l.c.CPU
			nL++
		}
	}
	fmt.Printf("benchmarks where both modular and direct complete: %d\n", nD)
	if areaD > 0 {
		fmt.Printf("  area  modular %d vs direct %d  (%.1f%% reduction; paper reports 12%%)\n",
			areaMD, areaD, 100*(1-float64(areaMD)/float64(areaD)))
		fmt.Printf("  cpu   modular %v vs direct %v (%.1fx)\n", cpuMD, cpuD, float64(cpuD)/float64(cpuMD))
	}
	fmt.Printf("benchmarks where both modular and lavagno-style complete: %d\n", nL)
	if areaL > 0 {
		fmt.Printf("  area  modular %d vs lavagno %d  (%.1f%% reduction; paper reports 9%%)\n",
			areaML, areaL, 100*(1-float64(areaML)/float64(areaL)))
		fmt.Printf("  cpu   modular %v vs lavagno %v (%.1fx)\n", cpuML, cpuL, float64(cpuL)/float64(cpuML))
	}
}
