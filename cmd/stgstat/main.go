// Command stgstat prints structural and state graph statistics of an STG
// specification: signal counts, reachable states, CSC/USC conflicts and
// the state-signal lower bound — the inputs to the paper's Table 1.
//
// Usage:
//
//	stgstat file.g...
//	stgstat -bench            # all embedded benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

func main() {
	all := flag.Bool("bench", false, "report every embedded benchmark")
	flag.Parse()

	fmt.Printf("%-18s %7s %7s %7s %8s %6s %6s %4s  %-14s %s\n",
		"model", "inputs", "outputs", "places", "states", "csc", "usc", "lb", "class", "persistent")
	if *all {
		for _, name := range bench.Available() {
			g, err := bench.Load(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stgstat: %v\n", err)
				continue
			}
			report(g)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stgstat: %v\n", err)
			os.Exit(1)
		}
		g, err := stg.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "stgstat: %s: %v\n", path, err)
			os.Exit(1)
		}
		report(g)
	}
}

func report(g *stg.G) {
	st := g.Stat()
	graph, err := sg.FromSTG(g, sg.Options{})
	if err != nil {
		fmt.Printf("%-18s %7d %7d %7d  error: %v\n", g.Name, st.Inputs, st.Outputs+st.Internals, st.Places, err)
		return
	}
	conf := sg.Analyze(graph)
	persistent := "yes"
	if !graph.OutputPersistent() {
		persistent = "NO"
	}
	fmt.Printf("%-18s %7d %7d %7d %8d %6d %6d %4d  %-14s %s\n",
		g.Name, st.Inputs, st.Outputs+st.Internals, st.Places,
		graph.NumStates(), conf.N(), len(conf.USC), conf.LowerBound,
		g.Classify(), persistent)
}
