// Command modsynd is the synthesis daemon: a long-lived HTTP service
// over the asyncsyn library, sharing one solve cache and one metrics
// collector across every request.
//
// Usage:
//
//	modsynd [-addr host:port] [-cachedir dir] [-maxinflight N]
//	        [-queuedepth N] [-timeout D] [-maxtimeout D] [-workers N]
//	        [-retryafter D] [-nocache]
//
// Endpoints:
//
//	POST /v1/synthesize   synthesize an STG (JSON body; ?trace=1 adds
//	                      the run's JSON-lines trace to the response;
//	                      "async": true returns a job id immediately)
//	GET  /v1/jobs/{id}    poll an async job
//	GET  /v1/benchmarks   list the embedded benchmark names
//	GET  /metrics         Prometheus text metrics
//	GET  /healthz         liveness (503 while draining)
//
// Admission control bounds concurrent work: at most -maxinflight jobs
// run at once and at most -queuedepth wait; excess requests receive
// 429 with a Retry-After header. SIGINT/SIGTERM triggers graceful
// shutdown: admission stops, in-flight jobs drain, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asyncsyn/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8713", "listen address")
	cacheDir := flag.String("cachedir", "", "back the shared solve cache with on-disk records under this directory")
	noCache := flag.Bool("nocache", false, "disable the shared solve cache")
	maxInflight := flag.Int("maxinflight", 0, "max concurrently running synthesis jobs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queuedepth", -1, "max admitted jobs waiting for a slot (0 = reject when busy; -1 = default 64)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request synthesis deadline")
	maxTimeout := flag.Duration("maxtimeout", 10*time.Minute, "cap on the per-request deadline a client may ask for")
	retryAfter := flag.Duration("retryafter", time.Second, "Retry-After hint returned with 429 responses")
	workers := flag.Int("workers", 0, "per-job worker pool bound (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max time to drain in-flight jobs on shutdown before canceling them")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := server.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		DisableCache:   *noCache,
	}
	switch {
	case *queueDepth == 0:
		cfg.NoQueue = true
	case *queueDepth > 0:
		cfg.QueueDepth = *queueDepth
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("modsynd: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("modsynd: listening on %s (cachedir=%q)", *addr, *cacheDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("modsynd: %v", err)
	case sig := <-sigCh:
		log.Printf("modsynd: %v: draining (timeout %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first (new work is already rejected 503),
	// then close the HTTP listener once responses have gone out.
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("modsynd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("modsynd: http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "modsynd: drained, exiting")
}
