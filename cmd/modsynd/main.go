// Command modsynd is the synthesis daemon: a long-lived HTTP service
// over the asyncsyn library, sharing one solve cache and one metrics
// collector across every request. With -shards it runs instead as the
// cluster router: a stateless front that consistent-hashes requests by
// canonical problem signature onto a pool of modsynd shards.
//
// Usage:
//
//	modsynd [-addr host:port] [-cachedir dir] [-rundb dir]
//	        [-maxinflight N] [-queuedepth N] [-timeout D] [-maxtimeout D]
//	        [-workers N] [-retryafter D] [-nocache]
//	        [-peers host1,host2,...] [-peertimeout D]
//	modsynd -shards host1,host2,... [-addr host:port]
//	        [-shardtimeout D] [-replicas N]
//
// Endpoints (shard mode; see docs/API.md for the full reference):
//
//	POST /v1/synthesize   synthesize an STG (JSON body; ?trace=1 adds
//	                      the run's JSON-lines trace to the response;
//	                      "async": true returns a job id immediately)
//	POST /v1/batch        synthesize an STG suite in one admission
//	GET  /v1/jobs/{id}    poll an async job
//	GET  /v1/runs         run history from the -rundb database
//	                      (?signature=, ?model=, ?offset=, ?limit=)
//	GET  /v1/runs/{id}    one full run record
//	GET  /v1/benchmarks   list the embedded benchmark names
//	GET  /v1/cache/{key}  serve a solve-cache record to a peer
//	PUT  /v1/cache/{key}  accept a solve-cache record from a peer
//	GET  /metrics         Prometheus text metrics
//	GET  /healthz         liveness (503 while draining)
//
// Router mode serves the same /v1/synthesize, /v1/batch, /v1/jobs,
// /v1/runs, /v1/benchmarks surface plus pool-level /metrics and
// /healthz; the cache exchange stays shard-to-shard. Requests are forwarded to the
// shard owning the specification's signature on a consistent-hash
// ring, with failover to the next ring position when a shard is down,
// draining, or overloaded.
//
// Admission control bounds concurrent work: at most -maxinflight jobs
// run at once and at most -queuedepth wait; excess requests receive
// 429 with a Retry-After header. SIGINT/SIGTERM triggers graceful
// shutdown: admission stops, in-flight jobs drain, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"asyncsyn/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8713", "listen address")
	cacheDir := flag.String("cachedir", "", "back the shared solve cache with on-disk records under this directory")
	runDBDir := flag.String("rundb", "", "record every completed synthesis in a run database under this directory and serve history on /v1/runs")
	noCache := flag.Bool("nocache", false, "disable the shared solve cache")
	maxInflight := flag.Int("maxinflight", 0, "max concurrently running synthesis jobs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queuedepth", -1, "max admitted jobs waiting for a slot (0 = reject when busy; -1 = default 64)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request synthesis deadline")
	maxTimeout := flag.Duration("maxtimeout", 10*time.Minute, "cap on the per-request deadline a client may ask for")
	retryAfter := flag.Duration("retryafter", time.Second, "Retry-After hint returned with 429 responses")
	workers := flag.Int("workers", 0, "per-job worker pool bound (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max time to drain in-flight jobs on shutdown before canceling them")
	peers := flag.String("peers", "", "comma-separated sibling shard base URLs to pull cache records from on miss")
	peerTimeout := flag.Duration("peertimeout", 2*time.Second, "per-peer cache fetch timeout")
	shards := flag.String("shards", "", "comma-separated shard base URLs; non-empty switches to router mode")
	shardTimeout := flag.Duration("shardtimeout", 5*time.Minute, "router: per-attempt forward timeout")
	replicas := flag.Int("replicas", 0, "router: virtual points per shard on the hash ring (0 = default 128)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *shards != "" {
		runRouter(*addr, splitList(*shards), *shardTimeout, *replicas, *drainTimeout)
		return
	}

	cfg := server.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		DisableCache:   *noCache,
		RunDBDir:       *runDBDir,
		Peers:          splitList(*peers),
		PeerTimeout:    *peerTimeout,
	}
	switch {
	case *queueDepth == 0:
		cfg.NoQueue = true
	case *queueDepth > 0:
		cfg.QueueDepth = *queueDepth
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("modsynd: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("modsynd: listening on %s (cachedir=%q rundb=%q peers=%q)", *addr, *cacheDir, *runDBDir, *peers)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("modsynd: %v", err)
	case sig := <-sigCh:
		log.Printf("modsynd: %v: draining (timeout %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job queue first (new work is already rejected 503),
	// then close the HTTP listener once responses have gone out.
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("modsynd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("modsynd: http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "modsynd: drained, exiting")
}

// runRouter serves router mode: no jobs of its own to drain, so
// shutdown is just closing the listener.
func runRouter(addr string, shards []string, shardTimeout time.Duration, replicas int, drainTimeout time.Duration) {
	rt, err := server.NewRouter(server.RouterConfig{
		Shards:       shards,
		ShardTimeout: shardTimeout,
		Replicas:     replicas,
	})
	if err != nil {
		log.Fatalf("modsynd: %v", err)
	}
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("modsynd: router listening on %s (shards=%s)", addr, strings.Join(shards, ","))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("modsynd: %v", err)
	case sig := <-sigCh:
		log.Printf("modsynd: %v: closing router", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("modsynd: http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "modsynd: router closed, exiting")
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
