// Command bench is the metrics-instrumented benchmark harness. It runs
// the full Table-1 suite across the three synthesis methods (plus the
// formula-size and scaling sweeps), collects the per-run metrics
// counters, and emits a versioned, schema-stable JSON record
// (internal/benchrec) that later runs can be diffed against and that
// regenerates the measured sections of EXPERIMENTS.md.
//
// Usage:
//
//	bench -out BENCH_2.json             # run everything, write the record
//	bench -quick -out q.json            # small rows only, no sweeps
//	bench -against BENCH_0.json         # run, then diff against a baseline
//	bench -against baselines/           # ... against the highest-numbered
//	                                    #     BENCH_*.json in the directory
//	bench -against old.json new.json    # diff two existing records
//	bench -render BENCH_0.json          # regenerate EXPERIMENTS.md sections
//	bench -render BENCH_0.json -check   # verify the doc is in sync
//
// The comparison exits non-zero on behaviour drift — areas, state
// counts, signals, aborts, determinism digests — and prints soft
// warnings for CPU-time regressions beyond 25% and counter drift.
// Rows present in only one record are skipped, so a -quick run
// compares cleanly against a committed full baseline.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/benchrec"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/par"
	"asyncsyn/internal/stg"
)

func main() {
	out := flag.String("out", "", "write the record as JSON to this path (default: stdout when running)")
	quick := flag.Bool("quick", false, "run only the small rows (paper initial states ≤ 100) and skip the clause/scaling sweeps")
	against := flag.String("against", "", "baseline record to compare with (a directory selects its highest-numbered BENCH_*.json); fresh record is an optional positional arg, else the suite runs")
	render := flag.String("render", "", "regenerate the generated sections of -doc from this record instead of running")
	doc := flag.String("doc", "EXPERIMENTS.md", "document whose generated sections -render rewrites")
	check := flag.Bool("check", false, "with -render: verify the doc is already in sync instead of rewriting it")
	workers := flag.Int("workers", 0, "worker pool over benchmark rows (0 = GOMAXPROCS; results are identical for any value)")
	maxBT := flag.Int64("maxbacktracks", 300000, "SAT backtrack budget per formula")
	cacheDir := flag.String("cachedir", "", "back every run's module solve cache with this directory (persists solves across runs and processes)")
	requireHits := flag.Bool("requirecachehits", false, "with -against: fail unless the fresh record shows at least one solve-cache hit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the suite run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the suite run) to this path")
	noIncr := flag.Bool("noincremental", false, "ablation: re-encode every SAT formula instead of incremental solving (results are bit-identical; timings move)")
	noStream := flag.Bool("nostreaming", false, "ablation: materialize the expanded graph and use the scalar simulator (results are bit-identical; memory and timings move)")
	noSpec := flag.Bool("nospeculation", false, "ablation: disable the speculative partition-parallel module scheduler (results are bit-identical; timings move)")
	scalingPoint := flag.Int("scalingpoint", 0, "run only the modular method at this scaling-sweep point (k) and print its stage breakdown; used by the memory-ceiling CI smoke")
	flag.Parse()

	err := withProfiles(*cpuProfile, *memProfile, func() error {
		switch {
		case *scalingPoint > 0:
			return doScalingPoint(*scalingPoint, *maxBT, *noStream, *noSpec)
		case *render != "":
			return doRender(*render, *doc, *check)
		case *against != "":
			return doCompare(*against, flag.Arg(0), *out, *quick, *workers, *maxBT, *cacheDir, *noIncr, *noStream, *noSpec, *requireHits)
		default:
			return doRun(*out, *quick, *workers, *maxBT, *cacheDir, *noIncr, *noStream, *noSpec)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// withProfiles brackets run with the optional CPU and heap profiles, so
// hot-path regressions spotted in CI records are diagnosable from the
// uploaded artifacts. The profiles are finished (and the heap snapshot
// taken) even when run fails.
func withProfiles(cpuPath, memPath string, run func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memPath != "" {
		defer func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			}
		}()
	}
	return run()
}

// doScalingPoint runs the modular method alone at one point of the
// scaling sweep and prints the stage breakdown and peak heap. CI runs it
// under a GOMEMLIMIT ceiling: a materialization regression (peak heap
// proportional to total expanded states instead of frontier width) blows
// the ceiling and fails the step long before the full sweep would. The
// default arm runs at Workers=4 so the speculative module scheduler's
// lane snapshots are inside the ceiling too; -nospeculation keeps the
// Workers but ablates the scheduler, isolating its footprint.
func doScalingPoint(k int, maxBT int64, noStream, noSpec bool) error {
	spec, err := stg.Handshakes("", k, 2)
	if err != nil {
		return err
	}
	g, err := asyncsyn.ParseSTGString(stg.Format(spec))
	if err != nil {
		return err
	}
	m := asyncsyn.NewMetrics()
	watch := metrics.WatchHeap(5 * time.Millisecond)
	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{
		Method: asyncsyn.Modular, MaxBacktracks: maxBT, Workers: 4,
		DisableStreaming: noStream, DisableSpeculation: noSpec,
		Metrics: m,
	})
	peak := watch.Stop()
	if err != nil {
		return fmt.Errorf("scaling k=%d: %w", k, err)
	}
	fmt.Printf("scaling k=%d: %d -> %d states, area %d, aborted %v, %.2fs, peak heap %.1f MiB\n",
		k, c.InitialStates, c.FinalStates, c.Area, c.Aborted, c.CPU.Seconds(), float64(peak)/(1<<20))
	for _, st := range c.Stages {
		fmt.Printf("  stage %-10s %8.2fs\n", st.Name, st.Duration.Seconds())
	}
	for _, k := range []string{"sg_states", "sg_states_streamed", "sg_peak_frontier"} {
		fmt.Printf("  counter %-20s %d\n", k, c.Counters[k])
	}
	// Scheduling-dependent, so filtered from c.Counters; read them off
	// the raw collector to show whether speculation engaged.
	raw := m.Map()
	for _, k := range []string{"modspec_commits", "modspec_aborts", "modspec_resolves"} {
		fmt.Printf("  counter %-20s %d\n", k, raw[k])
	}
	if c.Aborted {
		return fmt.Errorf("scaling k=%d: aborted (backtrack budget)", k)
	}
	return nil
}

func doRun(out string, quick bool, workers int, maxBT int64, cacheDir string, noIncr, noStream, noSpec bool) error {
	rec, err := runSuite(quick, workers, maxBT, cacheDir, noIncr, noStream, noSpec)
	if err != nil {
		return err
	}
	if out == "" {
		return rec.Encode(os.Stdout)
	}
	if err := rec.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows, %d clause rows, %d scaling points, %d cache rows)\n",
		out, len(rec.Rows), len(rec.Clauses), len(rec.Scaling), len(rec.Cache))
	return nil
}

func doCompare(baseline, freshPath, out string, quick bool, workers int, maxBT int64, cacheDir string, noIncr, noStream, noSpec, requireHits bool) error {
	baseline, err := resolveBaseline(baseline)
	if err != nil {
		return err
	}
	old, err := benchrec.ReadFile(baseline)
	if err != nil {
		return err
	}
	var fresh *benchrec.Record
	if freshPath != "" {
		if fresh, err = benchrec.ReadFile(freshPath); err != nil {
			return err
		}
	} else {
		if fresh, err = runSuite(quick, workers, maxBT, cacheDir, noIncr, noStream, noSpec); err != nil {
			return err
		}
		if out != "" {
			if err := fresh.WriteFile(out); err != nil {
				return err
			}
		}
	}
	rep := benchrec.Compare(old, fresh, benchrec.CompareOptions{})
	for _, s := range rep.Soft {
		fmt.Printf("warn: %s\n", s)
	}
	for _, h := range rep.Hard {
		fmt.Printf("FAIL: %s\n", h)
	}
	fmt.Printf("bench: compared %d benchmark×method pairs against %s: %d hard, %d soft\n",
		rep.Compared, baseline, len(rep.Hard), len(rep.Soft))
	if rep.Failed() {
		return fmt.Errorf("behaviour drift against %s", baseline)
	}
	if requireHits {
		hits := cacheHits(fresh)
		if hits == 0 {
			return fmt.Errorf("-requirecachehits: fresh record shows no solve-cache hits")
		}
		fmt.Printf("bench: fresh record shows %d solve-cache hits\n", hits)
	}
	return nil
}

// resolveBaseline turns a -against directory into its highest-numbered
// BENCH_*.json record — the conventional "latest committed baseline" —
// so CI can point at the baselines directory without editing the
// workflow every time a new record lands. Numbers compare numerically
// (BENCH_10 beats BENCH_9); ties and unnumbered records fall back to
// lexical order. A file path passes through untouched.
func resolveBaseline(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return path, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("-against %s: no BENCH_*.json records in directory", path)
	}
	num := func(p string) int {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			return -1
		}
		return n
	}
	sort.Slice(matches, func(i, j int) bool {
		ni, nj := num(matches[i]), num(matches[j])
		if ni != nj {
			return ni < nj
		}
		return matches[i] < matches[j]
	})
	best := matches[len(matches)-1]
	fmt.Fprintf(os.Stderr, "bench: -against %s resolved to %s\n", path, best)
	return best, nil
}

// cacheHits totals every modcache_hits counter in a record, across the
// per-method run counters and the cache sweep's warm runs.
func cacheHits(rec *benchrec.Record) int64 {
	var hits int64
	for _, row := range rec.Rows {
		for _, m := range []benchrec.MethodResult{row.Modular, row.Direct, row.Lavagno} {
			hits += m.Counters["modcache_hits"]
		}
	}
	for _, cr := range rec.Cache {
		hits += cr.Hits
	}
	return hits
}

func doRender(recPath, docPath string, check bool) error {
	rec, err := benchrec.ReadFile(recPath)
	if err != nil {
		return err
	}
	in, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	rendered, err := benchrec.RenderDoc(in, rec)
	if err != nil {
		return err
	}
	if check {
		if !bytes.Equal(in, rendered) {
			return fmt.Errorf("%s is out of sync with %s; run: go run ./cmd/bench -render %s", docPath, recPath, recPath)
		}
		fmt.Fprintf(os.Stderr, "bench: %s is in sync with %s\n", docPath, recPath)
		return nil
	}
	if bytes.Equal(in, rendered) {
		fmt.Fprintf(os.Stderr, "bench: %s already up to date\n", docPath)
		return nil
	}
	if err := os.WriteFile(docPath, rendered, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: regenerated the generated sections of %s\n", docPath)
	return nil
}

// runSuite measures the record: every Table-1 row across the three
// methods, the cache-effectiveness sweep, then (full mode) the clause
// and scaling sweeps. noIncr ablates the incremental SAT solver and
// noStream the streaming expansion spine, on the Table-1 rows (the
// sweeps keep the default paths — they measure their own effects).
func runSuite(quick bool, workers int, maxBT int64, cacheDir string, noIncr, noStream, noSpec bool) (*benchrec.Record, error) {
	names := bench.Names()
	if quick {
		var small []string
		for _, e := range bench.Table1 {
			if e.InitialStates <= 100 {
				small = append(small, e.Name)
			}
		}
		names = small
	}

	rec := &benchrec.Record{
		Schema: benchrec.SchemaVersion,
		Env: benchrec.Env{
			GoVersion:     runtime.Version(),
			GOOS:          runtime.GOOS,
			GOARCH:        runtime.GOARCH,
			NumCPU:        runtime.NumCPU(),
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Commit:        gitCommit(),
			Workers:       workers,
			MaxBacktracks: maxBT,
			Quick:         quick,
			NoSpeculation: noSpec,
		},
	}

	// Rows fan out over the worker pool; like cmd/table1, each synthesis
	// runs its stages sequentially when the row pool already saturates
	// the cores, and gets the whole machine when rows are sequential.
	inner := 0
	if par.Workers(workers) > 1 {
		inner = 1
	}
	rows, err := par.Map(len(names), workers, func(i int) (benchrec.Row, error) {
		name := names[i]
		row := benchrec.Row{Name: name}
		for _, m := range []struct {
			method asyncsyn.Method
			dst    *benchrec.MethodResult
		}{
			{asyncsyn.Modular, &row.Modular},
			{asyncsyn.Direct, &row.Direct},
			{asyncsyn.Lavagno, &row.Lavagno},
		} {
			res, init, initSig := runOne(name, asyncsyn.Options{
				Method: m.method, MaxBacktracks: maxBT, Workers: inner,
				CacheDir: cacheDir, DisableIncrementalSAT: noIncr,
				DisableStreaming: noStream, DisableSpeculation: noSpec,
			})
			*m.dst = res
			if init > 0 {
				row.InitialStates, row.InitialSignals = init, initSig
			}
		}
		fmt.Fprintf(os.Stderr, "bench: %-16s modular %.2fs  direct %.2fs  lavagno %.2fs\n",
			name, row.Modular.Seconds, row.Direct.Seconds, row.Lavagno.Seconds)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	rec.Rows = rows

	if rec.Cache, err = cacheSweep(maxBT, workers); err != nil {
		return nil, err
	}
	if !quick {
		if rec.Clauses, err = clauseSweep(maxBT, workers); err != nil {
			return nil, err
		}
		if rec.Scaling, err = scalingSweep(workers, noSpec); err != nil {
			return nil, err
		}
	}
	return rec, rec.Validate()
}

// cacheSweep measures solve-cache effectiveness on the small rows (the
// sweep runs in both quick and full mode): each benchmark is
// synthesized twice (modular method) against one shared in-memory
// cache — cold, then warm — recording the wall-clock and module-stage
// speedup, the warm run's hit/miss counters, and whether the warm run
// reproduced the cold run's digest bit for bit.
func cacheSweep(maxBT int64, workers int) ([]benchrec.CacheRow, error) {
	var names []string
	for _, e := range bench.Table1 {
		if e.InitialStates <= 100 {
			names = append(names, e.Name)
		}
	}
	return par.Map(len(names), workers, func(i int) (benchrec.CacheRow, error) {
		name := names[i]
		src, err := bench.Source(name)
		if err != nil {
			return benchrec.CacheRow{}, err
		}
		cache := asyncsyn.NewSolveCache()
		run := func() (*asyncsyn.Circuit, error) {
			g, err := asyncsyn.ParseSTGString(src)
			if err != nil {
				return nil, err
			}
			return asyncsyn.Synthesize(g, asyncsyn.Options{
				Method: asyncsyn.Modular, MaxBacktracks: maxBT, Workers: 1,
				Cache: cache, Metrics: asyncsyn.NewMetrics(),
			})
		}
		cold, err := run()
		if err != nil {
			return benchrec.CacheRow{}, fmt.Errorf("cache %s cold: %w", name, err)
		}
		warm, err := run()
		if err != nil {
			return benchrec.CacheRow{}, fmt.Errorf("cache %s warm: %w", name, err)
		}
		row := benchrec.CacheRow{
			Name:              name,
			ColdSeconds:       cold.CPU.Seconds(),
			WarmSeconds:       warm.CPU.Seconds(),
			ColdModuleSeconds: stageSeconds(cold, "modules"),
			WarmModuleSeconds: stageSeconds(warm, "modules"),
			Hits:              warm.Counters["modcache_hits"],
			Misses:            warm.Counters["modcache_misses"],
			WarmClauses:       cold.Counters["sat_warm_clauses"],
			DigestMatch:       digestOf(cold) == digestOf(warm),
		}
		fmt.Fprintf(os.Stderr, "bench: cache %-12s modules %.3fs cold -> %.3fs warm, %d hits, digest match %v\n",
			name, row.ColdModuleSeconds, row.WarmModuleSeconds, row.Hits, row.DigestMatch)
		return row, nil
	})
}

// stageSeconds returns the duration of the named pipeline stage.
func stageSeconds(c *asyncsyn.Circuit, stage string) float64 {
	for _, st := range c.Stages {
		if st.Name == stage {
			return st.Duration.Seconds()
		}
	}
	return 0
}

// runOne synthesizes one benchmark with one method, metrics attached,
// and flattens the circuit into a MethodResult, including the run's
// heap-allocation deltas (approximate when rows run concurrently; see
// benchrec.MethodResult).
func runOne(name string, opt asyncsyn.Options) (res benchrec.MethodResult, initStates, initSignals int) {
	src, err := bench.Source(name)
	if err != nil {
		return benchrec.MethodResult{Error: err.Error()}, 0, 0
	}
	g, err := asyncsyn.ParseSTGString(src)
	if err != nil {
		return benchrec.MethodResult{Error: err.Error()}, 0, 0
	}
	opt.Metrics = asyncsyn.NewMetrics()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	watch := metrics.WatchHeap(5 * time.Millisecond)
	c, err := asyncsyn.Synthesize(g, opt)
	peak := watch.Stop()
	if err != nil {
		return benchrec.MethodResult{Error: err.Error()}, 0, 0
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	r := flatten(c)
	r.AllocBytes = after.TotalAlloc - before.TotalAlloc
	r.Allocs = after.Mallocs - before.Mallocs
	r.PeakHeapBytes = peak
	return r, c.InitialStates, c.InitialSignals
}

func flatten(c *asyncsyn.Circuit) benchrec.MethodResult {
	res := benchrec.MethodResult{
		Seconds:  c.CPU.Seconds(),
		Aborted:  c.Aborted,
		Counters: c.Counters,
	}
	for _, st := range c.Stages {
		res.Stages = append(res.Stages, benchrec.StageTiming{Name: st.Name, Seconds: st.Duration.Seconds()})
	}
	if c.Aborted {
		return res
	}
	res.States = c.FinalStates
	res.Signals = c.FinalSignals
	res.StateSignals = c.StateSignals
	res.Area = c.Area
	res.Digest = digestOf(c)
	for _, m := range c.Modules {
		ms := benchrec.ModuleStat{Output: m.Output, States: m.MergedStates, Conflicts: m.Conflicts}
		// Largest formula the module's pass attempted.
		for _, f := range c.Formulas {
			if f.Output == m.Output && f.Clauses > ms.Clauses {
				ms.Clauses, ms.Vars = f.Clauses, f.Vars
			}
		}
		res.Modules = append(res.Modules, ms)
	}
	return res
}

// digestOf hashes the machine-independent outputs of a run: the circuit
// shape and every synthesized equation. Workers, GOMAXPROCS and the
// host never move it; a code change that alters any cover does. The
// recipe lives on the facade so the daemon's responses use the same
// digest (Circuit.Digest).
func digestOf(c *asyncsyn.Circuit) string { return c.Digest() }

// clauseSweep reproduces the formula-size comparison (paper-style
// expanded CNF): the direct method's largest formula against every
// modular formula, on the rows EXPERIMENTS.md reports.
func clauseSweep(maxBT int64, workers int) ([]benchrec.ClauseRow, error) {
	names := []string{"mmu0", "mr0", "mr1", "vbe4a"}
	return par.Map(len(names), workers, func(i int) (benchrec.ClauseRow, error) {
		name := names[i]
		cl := benchrec.ClauseRow{Name: name}
		synth := func(method asyncsyn.Method) (*asyncsyn.Circuit, error) {
			src, err := bench.Source(name)
			if err != nil {
				return nil, err
			}
			g, err := asyncsyn.ParseSTGString(src)
			if err != nil {
				return nil, err
			}
			return asyncsyn.Synthesize(g, asyncsyn.Options{
				Method: method, MaxBacktracks: maxBT, ExpandXor: true, Workers: 1,
			})
		}
		d, err := synth(asyncsyn.Direct)
		if err != nil {
			return cl, fmt.Errorf("clauses %s direct: %w", name, err)
		}
		for _, f := range d.Formulas {
			if f.Clauses > cl.DirectClauses {
				cl.DirectClauses, cl.DirectVars = f.Clauses, f.Vars
			}
		}
		m, err := synth(asyncsyn.Modular)
		if err != nil {
			return cl, fmt.Errorf("clauses %s modular: %w", name, err)
		}
		for _, f := range m.Formulas {
			cl.Modular = append(cl.Modular, benchrec.ClauseFormula{Clauses: f.Clauses, Vars: f.Vars})
		}
		fmt.Fprintf(os.Stderr, "bench: clauses %-10s direct %d cls, %d modular formulas\n",
			name, cl.DirectClauses, len(cl.Modular))
		return cl, nil
	})
}

// scalingSweep runs the parametric handshake family (k concurrent slave
// handshakes in two phases — the mr/mmu structure) through all three
// methods, as examples/scaling does. The modular method runs unbounded —
// how far it scales is the sweep's whole point — while the direct and
// lavagno baselines carry a wall-clock budget per point (they exhaust
// their backtrack budgets by k=3–4 anyway); a budget expiry is recorded
// as an aborted cell with the elapsed time. The k=7 attempt is the one
// exception: even the modular method gets a wall-clock cap there, so a
// record can be produced on hosts where the ~156k-state point does not
// finish. Every cell also records its sampled peak heap (the k=6 point
// only became recordable with the frontier-bounded streaming expansion)
// and, for the modular cells, the module-stage seconds. When the
// sequential modular cell completes and noSpec is off, the point is
// re-run with the speculative module scheduler at Workers=4
// (ScalingRow.ModularSpec) — the speedup the scheduler buys on the
// stage it parallelizes.
func scalingSweep(workers int, noSpec bool) ([]benchrec.ScalingRow, error) {
	const points = 7
	const baselineBudget = 2 * time.Minute
	const attemptBudget = 10 * time.Minute
	return par.Map(points, workers, func(i int) (benchrec.ScalingRow, error) {
		k := i + 1
		row := benchrec.ScalingRow{K: k}
		spec, err := stg.Handshakes("", k, 2)
		if err != nil {
			return row, err
		}
		src := stg.Format(spec)
		runCell := func(opt asyncsyn.Options) (benchrec.ScalCell, int, error) {
			// The sweep exists to push past the library's conservative
			// default state cap; k=7 alone is ~156k states.
			opt.MaxStates = 1 << 20
			g, err := asyncsyn.ParseSTGString(src)
			if err != nil {
				return benchrec.ScalCell{}, 0, err
			}
			start := time.Now()
			watch := metrics.WatchHeap(5 * time.Millisecond)
			c, err := asyncsyn.Synthesize(g, opt)
			peak := watch.Stop()
			if err != nil {
				if errors.Is(err, asyncsyn.ErrCanceled) || errors.Is(err, asyncsyn.ErrStateLimit) {
					// Budget expiry or a point past the sweep's state cap:
					// both are honest "this method stopped here" cells,
					// not record-killing failures.
					return benchrec.ScalCell{Seconds: time.Since(start).Seconds(), Aborted: true, PeakHeapBytes: peak}, 0, nil
				}
				return benchrec.ScalCell{}, 0, err
			}
			cell := benchrec.ScalCell{Seconds: c.CPU.Seconds(), Area: c.Area, Aborted: c.Aborted,
				PeakHeapBytes: peak, ModuleSeconds: stageSeconds(c, "modules")}
			if c.Aborted {
				cell.Area = 0
			}
			return cell, c.InitialStates, nil
		}
		for _, m := range []struct {
			method asyncsyn.Method
			dst    *benchrec.ScalCell
		}{
			{asyncsyn.Modular, &row.Modular},
			{asyncsyn.Direct, &row.Direct},
			{asyncsyn.Lavagno, &row.Lavagno},
		} {
			opt := asyncsyn.Options{Method: m.method, MaxBacktracks: 300000, Workers: 1}
			if m.method != asyncsyn.Modular {
				opt.Timeout = baselineBudget
			} else if k >= 7 {
				opt.Timeout = attemptBudget
			}
			cell, init, err := runCell(opt)
			if err != nil {
				return row, fmt.Errorf("scaling k=%d %v: %w", k, m.method, err)
			}
			*m.dst = cell
			if row.States == 0 && init > 0 {
				row.States = init
			}
		}
		if !noSpec && !row.Modular.Aborted && row.Modular.Area > 0 {
			opt := asyncsyn.Options{Method: asyncsyn.Modular, MaxBacktracks: 300000, Workers: 4}
			if k >= 7 {
				opt.Timeout = attemptBudget
			}
			cell, _, err := runCell(opt)
			if err != nil {
				return row, fmt.Errorf("scaling k=%d modular-spec: %w", k, err)
			}
			row.ModularSpec = &cell
		}
		fmt.Fprintf(os.Stderr, "bench: scaling k=%d (%d states) done\n", k, row.States)
		return row, nil
	})
}

// gitCommit records the source revision, best effort.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
