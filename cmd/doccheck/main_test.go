package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Running a cluster":                 "running-a-cluster",
		"3.14 Sharded cluster: ring, peers": "314-sharded-cluster-ring-peers",
		"`POST /v1/batch`":                  "post-v1batch",
		"What **it** does":                  "what-it-does",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other Doc\n\n## Real Section\n")
	write(t, dir, "docs/deep.md", "# Deep\n")
	doc := write(t, dir, "README.md", strings.Join([]string{
		"# Title",
		"## Repeat",
		"## Repeat",
		"ok: [a](other.md) [b](other.md#real-section) [c](docs/deep.md)",
		"ok: [d](#title) [e](#repeat-1) [ext](https://example.com/x#y)",
		"bad: [f](missing.md)",
		"bad: [g](other.md#no-such)",
		"bad: [h](#absent)",
		"```",
		"[not-a-link](nowhere.md)",
		"# not a heading",
		"```",
	}, "\n"))

	problems, err := checkFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	for i, frag := range []string{"missing.md", "no-such", "absent"} {
		if !strings.Contains(problems[i], frag) {
			t.Errorf("problem %d = %q, want mention of %q", i, problems[i], frag)
		}
	}
}

// TestRepoDocsResolve runs the checker over the real operator docs —
// the same set the CI docs job gates on — so a broken link fails
// locally too.
func TestRepoDocsResolve(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md", "docs/API.md"} {
		path := filepath.Join("..", "..", doc)
		problems, err := checkFile(path)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, p := range problems {
			t.Errorf("%s", p)
		}
	}
}
