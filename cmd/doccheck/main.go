// Command doccheck validates the repository's markdown: every
// relative link must point at an existing file and every anchor
// (`#section`, in-document or cross-document) must match a heading in
// its target, using GitHub's heading-slug rules. External http(s) and
// mailto links are skipped — CI has no network and their rot is not
// this repo's to gate on.
//
// Usage:
//
//	doccheck README.md DESIGN.md docs/API.md
//
// Exit status 0 when every link resolves, 1 with one line per broken
// link otherwise. The CI docs job runs it over the operator-facing
// documents so a renamed section or moved file fails the build
// instead of rotting quietly.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck file.md ...")
		os.Exit(2)
	}
	var problems []string
	for _, path := range os.Args[1:] {
		ps, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) ok\n", len(os.Args)-1)
}

// linkRE matches inline markdown links [text](target). Images are
// links too (the leading ! is outside the match and irrelevant here).
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkFile returns one problem line per unresolvable link in path.
func checkFile(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for i, line := range stripFences(string(b)) {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if reason := resolve(path, target); reason != "" {
				problems = append(problems,
					fmt.Sprintf("%s:%d: link (%s): %s", path, i+1, target, reason))
			}
		}
	}
	return problems, nil
}

// resolve reports why target (relative to the document at docPath)
// does not resolve; "" means it does.
func resolve(docPath, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not checked
	}
	file, anchor, _ := strings.Cut(target, "#")
	dest := docPath
	if file != "" {
		dest = filepath.Join(filepath.Dir(docPath), file)
		info, err := os.Stat(dest)
		if err != nil {
			return "file does not exist"
		}
		if info.IsDir() || anchor == "" {
			if anchor != "" {
				return "anchor on a directory"
			}
			return ""
		}
	}
	if anchor == "" {
		return ""
	}
	if !strings.HasSuffix(dest, ".md") {
		return "anchor into a non-markdown file"
	}
	anchors, err := headingAnchors(dest)
	if err != nil {
		return err.Error()
	}
	if !anchors[anchor] {
		return "no such heading anchor"
	}
	return ""
}

// headingAnchors returns the GitHub-style anchor set of a markdown
// file: each ATX heading slugified, with -1, -2 ... suffixes for
// repeats.
func headingAnchors(path string) (map[string]bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	for _, line := range stripFences(string(b)) {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || (text != "" && !strings.HasPrefix(text, " ")) {
			continue // not an ATX heading (e.g. a #hashtag)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors, nil
}

// slugify applies GitHub's heading-to-anchor rules: strip markdown
// emphasis/code markers, lowercase, drop everything but letters,
// digits, spaces and hyphens, then turn spaces into hyphens.
func slugify(s string) string {
	s = strings.NewReplacer("`", "", "*", "", "_", "").Replace(s)
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// stripFences blanks out the interior of ``` fenced code blocks (and
// the fence lines themselves) so shell comments are not read as
// headings and code is not scanned for links. Line numbering is
// preserved.
func stripFences(doc string) []string {
	lines := strings.Split(doc, "\n")
	inFence := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			lines[i] = ""
			continue
		}
		if inFence {
			lines[i] = ""
		}
	}
	return lines
}
