#!/usr/bin/env bash
# server-smoke.sh — end-to-end smoke of the modsynd daemon, run by the
# CI server-smoke job and runnable locally. It pins the serving
# contract the unit tests can't see from inside the process:
#   1. a warm daemon answers the quick benchmark set with stable
#      digests and modcache_hits > 0 on /metrics, and with -rundb it
#      records every completed run and serves the history (filtered,
#      paginated, fetchable by id) on /v1/runs;
#   2. overload under -maxinflight 1 -queuedepth 0 answers 429 with a
#      Retry-After header;
#   3. SIGTERM drains a pending job (its waiter still gets 200) and
#      the process exits 0;
#   4. router mode: two peer-connected shards behind -shards answer
#      with the same digests as phase 1, peers exchange cache records,
#      /v1/runs merges the shard-local histories, and killing a shard
#      fails over without a client-visible error.
#
# MODSYND_PORT picks the base port (default 8713); the router phase
# uses the two ports above it.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${MODSYND_PORT:-8713}
ADDR=127.0.0.1:$PORT
URL="http://$ADDR"
BIN=$(mktemp -d)/modsynd
CACHEDIR=$(mktemp -d)
RUNDB=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$CACHEDIR" "$RUNDB" "$WORK" "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/modsynd

wait_healthy() { # wait_healthy [url]
  local url=${1:-$URL}
  for _ in $(seq 1 50); do
    if curl -fsS "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "daemon at $url did not become healthy" >&2
  return 1
}

metric() { # metric <name> [url] — print the value of an unlabelled metric
  curl -fsS "${2:-$URL}/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

# The quick benchmark set: the Table 1 rows the bench suite's -quick
# mode runs (paper initial state count <= 100).
QUICK="mmu1 sbuf-ram-write vbe4a nak-pa pe-rcv-ifc-fc ram-read-sbuf
alex-nonfc sbuf-send-pkt2 sbuf-send-ctl atod pa alloc-outbound wrdata
fifo sbuf-read-ctl nouse vbe-ex2 nousc-ser sendr-done vbe-ex1"

echo "=== phase 1: warm cache + digest stability + run history"
"$BIN" -addr "$ADDR" -cachedir "$CACHEDIR" -rundb "$RUNDB" &
DAEMON=$!
wait_healthy

for pass in cold warm; do
  for b in $QUICK; do
    code=$(curl -s -o "$WORK/$b.$pass.json" -w '%{http_code}' \
      -X POST "$URL/v1/synthesize" -d "{\"bench\":\"$b\"}")
    [ "$code" = 200 ] || { echo "$b ($pass): status $code" >&2; exit 1; }
    grep -q '"digest"' "$WORK/$b.$pass.json" || { echo "$b ($pass): no digest" >&2; exit 1; }
  done
done
for b in $QUICK; do
  cold=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.cold.json")
  warm=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.warm.json")
  [ "$cold" = "$warm" ] || { echo "$b: digest drift $cold -> $warm" >&2; exit 1; }
done

hits=$(metric asyncsyn_modcache_hits)
[ "${hits:-0}" -gt 0 ] || { echo "warm run reported modcache_hits=$hits" >&2; exit 1; }
echo "ok: $(echo $QUICK | wc -w) benchmarks x2, digests stable, modcache_hits=$hits"

# Run history: every completed synthesis above was recorded. The suite
# ran twice, so the history holds 2x the quick set; a one-entry page
# windows it; a recorded run resolves by id with the same digest the
# response carried; the recording counter agrees; and no run diverged.
nquick=$(echo $QUICK | wc -w)
total=$(curl -fsS "$URL/v1/runs" | grep -o '"total": *[0-9]*' | grep -o '[0-9]*')
[ "${total:-0}" -eq $((nquick * 2)) ] || { echo "/v1/runs total=$total, want $((nquick * 2))" >&2; exit 1; }
curl -fsS "$URL/v1/runs?limit=1" > "$WORK/runs-page.json"
[ "$(grep -c '"id"' "$WORK/runs-page.json")" = 1 ] || { echo "limit=1 page not one entry" >&2; exit 1; }
runid=$(grep -o '"id": *"[^"]*"' "$WORK/runs-page.json" | head -1 | sed 's/.*"\(r[^"]*\)"/\1/')
curl -fsS "$URL/v1/runs/$runid" > "$WORK/run-rec.json"
grep -q '"digest"' "$WORK/run-rec.json" || { echo "run $runid has no digest" >&2; exit 1; }
recorded=$(metric modsynd_runs_recorded_total)
[ "${recorded:-0}" -eq $((nquick * 2)) ] || { echo "runs_recorded_total=$recorded" >&2; exit 1; }
div=$(metric modsynd_run_divergences_total)
[ "${div:-1}" -eq 0 ] || { echo "run_divergences_total=$div, want 0" >&2; exit 1; }
echo "ok: /v1/runs total=$total, paginated, $runid fetchable, divergences=0"

kill -TERM "$DAEMON"
wait "$DAEMON" || { echo "daemon exited non-zero after idle SIGTERM" >&2; exit 1; }

echo "=== phase 2: overload answers 429 + Retry-After"
"$BIN" -addr "$ADDR" -maxinflight 1 -queuedepth 0 &
DAEMON=$!
wait_healthy

# Occupy the only slot with a slow job (direct method on mmu0, ~5s),
# then submit fast distinct requests that must be rejected.
curl -s -o "$WORK/blocker.json" -X POST "$URL/v1/synthesize" \
  -d '{"bench":"mmu0","method":"direct"}' &
BLOCKER=$!
until [ "$(metric modsynd_in_flight)" = 1 ]; do sleep 0.1; done

saw429=0
for b in fifo atod wrdata; do
  code=$(curl -s -D "$WORK/headers" -o /dev/null -w '%{http_code}' \
    -X POST "$URL/v1/synthesize" -d "{\"bench\":\"$b\"}")
  if [ "$code" = 429 ]; then
    saw429=1
    grep -qi '^retry-after:' "$WORK/headers" || { echo "429 without Retry-After" >&2; exit 1; }
  fi
done
[ "$saw429" = 1 ] || { echo "no 429 under maxinflight=1 queuedepth=0" >&2; exit 1; }
echo "ok: overload rejected with 429 + Retry-After (rejected_total=$(metric modsynd_rejected_total))"

echo "=== phase 3: SIGTERM drains the pending job"
kill -TERM "$DAEMON"
wait "$BLOCKER" || { echo "blocked request failed during drain" >&2; exit 1; }
grep -q '"digest"' "$WORK/blocker.json" || { echo "drained job returned no result" >&2; exit 1; }
wait "$DAEMON" || { echo "daemon exited non-zero after drain" >&2; exit 1; }
echo "ok: pending job drained to completion, daemon exited 0"

echo "=== phase 4: router mode + peer cache exchange + run merge + failover"
S1=127.0.0.1:$((PORT + 1))
S2=127.0.0.1:$((PORT + 2))
"$BIN" -addr "$S1" -peers "$S2" -rundb "$RUNDB/shard1" &
SHARD1=$!
"$BIN" -addr "$S2" -peers "$S1" -rundb "$RUNDB/shard2" &
SHARD2=$!
"$BIN" -addr "$ADDR" -shards "$S1,$S2" &
ROUTER=$!
wait_healthy "http://$S1"
wait_healthy "http://$S2"
wait_healthy

for b in $QUICK; do
  code=$(curl -s -o "$WORK/$b.routed.json" -w '%{http_code}' \
    -X POST "$URL/v1/synthesize" -d "{\"bench\":\"$b\"}")
  [ "$code" = 200 ] || { echo "$b (routed): status $code" >&2; exit 1; }
  direct=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.cold.json")
  routed=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.routed.json")
  [ "$direct" = "$routed" ] || { echo "$b: router digest drift $direct -> $routed" >&2; exit 1; }
done
reqs=$(metric modsynd_router_requests_total)
[ "${reqs:-0}" -ge "$(echo $QUICK | wc -w)" ] || { echo "router saw $reqs requests" >&2; exit 1; }

# Run merge: history is shard-local; the router's /v1/runs must union
# both shards' records — one per benchmark routed above — and resolve
# any recorded id by broadcast.
rtotal=$(curl -fsS "$URL/v1/runs?limit=$nquick" | grep -o '"total": *[0-9]*' | grep -o '[0-9]*')
[ "${rtotal:-0}" -eq "$nquick" ] || { echo "router /v1/runs total=$rtotal, want $nquick" >&2; exit 1; }
rid=$(curl -fsS "$URL/v1/runs?limit=1" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(r[^"]*\)"/\1/')
curl -fsS "$URL/v1/runs/$rid" | grep -q '"digest"' || { echo "router /v1/runs/$rid failed" >&2; exit 1; }
echo "ok: router merged $rtotal shard-local runs, $rid fetchable by broadcast"

# Peer exchange: re-asking each shard directly for the whole suite
# must pull any records it does not own from its peer, never resolve.
for b in $QUICK; do
  curl -fsS -o /dev/null -X POST "http://$S1/v1/synthesize" -d "{\"bench\":\"$b\"}"
done
peer1=$(metric asyncsyn_modcache_peer_hits "http://$S1")
[ "${peer1:-0}" -gt 0 ] || { echo "shard 1 reported modcache_peer_hits=$peer1" >&2; exit 1; }

# Failover: kill shard 2; the full suite must still answer 200 with
# the same digests through the router.
kill -TERM "$SHARD2" && wait "$SHARD2" || true
for b in $QUICK; do
  code=$(curl -s -o "$WORK/$b.failover.json" -w '%{http_code}' \
    -X POST "$URL/v1/synthesize" -d "{\"bench\":\"$b\"}")
  [ "$code" = 200 ] || { echo "$b (failover): status $code" >&2; exit 1; }
  direct=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.cold.json")
  failover=$(grep -o '"digest": *"[^"]*"' "$WORK/$b.failover.json")
  [ "$direct" = "$failover" ] || { echo "$b: failover digest drift" >&2; exit 1; }
done
echo "ok: router parity, peer_hits=$peer1, failover survived a dead shard"

kill -TERM "$ROUTER" "$SHARD1" 2>/dev/null
wait "$ROUTER" "$SHARD1" 2>/dev/null || true

echo "server smoke passed"
