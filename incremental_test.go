package asyncsyn

// Parity contract of the incremental SAT path (DESIGN.md §3.12): solving
// a widening chain's formulas as assumption-guarded steps of one
// persistent solver produces bit-identical circuits — and identical
// per-formula statistics — to re-encoding every step from scratch.

import (
	"fmt"
	"testing"
)

// formulaLine flattens one FormulaStat minus its timing (the only field
// allowed to differ between the two paths).
func formulaLine(f FormulaStat) string {
	f.Time = 0
	return fmt.Sprintf("%+v", f)
}

func TestIncrementalMatchesFresh(t *testing.T) {
	names := []string{"vbe4a", "nak-pa", "sbuf-ram-write"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			for _, w := range []int{1, 4} {
				mIncr, mFresh := NewMetrics(), NewMetrics()
				ci := synthWorkers(t, name, Options{Workers: w, Metrics: mIncr})
				cf := synthWorkers(t, name, Options{Workers: w, Metrics: mFresh, DisableIncrementalSAT: true})
				if got, want := fingerprint(ci), fingerprint(cf); got != want {
					t.Fatalf("workers=%d: incremental circuit diverges from fresh:\nincremental:\n%s\nfresh:\n%s", w, got, want)
				}
				if got, want := circuitDigest(ci), circuitDigest(cf); got != want {
					t.Fatalf("workers=%d: digest %s != %s", w, got, want)
				}
				if len(ci.Formulas) != len(cf.Formulas) {
					t.Fatalf("workers=%d: %d formulas incremental, %d fresh", w, len(ci.Formulas), len(cf.Formulas))
				}
				for i := range ci.Formulas {
					if got, want := formulaLine(ci.Formulas[i]), formulaLine(cf.Formulas[i]); got != want {
						t.Fatalf("workers=%d formula %d: %s != %s", w, i, got, want)
					}
				}
				if ci.Counters["sat_assumptions"] == 0 {
					t.Errorf("workers=%d: incremental run reported no assumption steps", w)
				}
				if n := cf.Counters["sat_assumptions"]; n != 0 {
					t.Errorf("workers=%d: DisableIncrementalSAT run reported %d assumption steps", w, n)
				}
				// The SAT search itself must also be step-for-step identical,
				// not just the final circuit.
				for _, k := range []string{"sat_decisions", "sat_conflicts", "sat_propagations", "sat_learned", "sat_restarts", "sat_clauses", "sat_vars"} {
					if gi, gf := ci.Counters[k], cf.Counters[k]; gi != gf {
						t.Errorf("workers=%d: counter %s: incremental %d, fresh %d", w, k, gi, gf)
					}
				}
			}
		})
	}
}

// TestIncrementalMatchesFreshDirect pins the same parity on the Direct
// (whole-graph) method, which reaches the incremental solver through
// csc.Solve instead of the modular partition pass.
func TestIncrementalMatchesFreshDirect(t *testing.T) {
	for _, name := range []string{"vbe4a", "nak-pa"} {
		t.Run(name, func(t *testing.T) {
			mi := NewMetrics()
			ci := synthWorkers(t, name, Options{Method: Direct, Metrics: mi})
			cf := synthWorkers(t, name, Options{Method: Direct, DisableIncrementalSAT: true})
			if got, want := fingerprint(ci), fingerprint(cf); got != want {
				t.Fatalf("incremental Direct circuit diverges from fresh:\nincremental:\n%s\nfresh:\n%s", got, want)
			}
			if ci.Counters["sat_assumptions"] == 0 {
				t.Error("Direct incremental run reported no assumption steps")
			}
		})
	}
}
