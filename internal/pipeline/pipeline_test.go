package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

func TestRunExecutesInOrderAndRecordsStats(t *testing.T) {
	var order []string
	stats, err := Run(context.Background(), []Stage{
		{Name: "a", Run: func(context.Context) error { order = append(order, "a"); return nil }},
		{Name: "b", Run: func(context.Context) error { order = append(order, "b"); return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b" {
		t.Errorf("order = %v", order)
	}
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Errorf("stats = %+v", stats)
	}
	for _, s := range stats {
		if s.Err != "" {
			t.Errorf("unexpected stage error %+v", s)
		}
	}
}

func TestRunStopsOnTypedErrorAndKeepsSentinel(t *testing.T) {
	ran := false
	stats, err := Run(context.Background(), []Stage{
		{Name: "csc", Run: func(context.Context) error {
			return errors.New("direct solve: " + synerr.ErrBacktrackLimit.Error())
		}},
		{Name: "late", Run: func(context.Context) error { ran = true; return nil }},
	})
	if err == nil || ran {
		t.Fatalf("pipeline did not stop: err=%v ran=%v", err, ran)
	}
	if len(stats) != 1 || stats[0].Err == "" {
		t.Errorf("failed stage not recorded: %+v", stats)
	}

	// A wrapped sentinel must survive the driver's own wrapping.
	_, err = Run(context.Background(), []Stage{
		{Name: "expand", Run: func(context.Context) error { return synerr.ErrConflictsPersist }},
	})
	if !errors.Is(err, synerr.ErrConflictsPersist) {
		t.Errorf("sentinel lost through stage wrap: %v", err)
	}
	if !strings.Contains(err.Error(), "stage expand") {
		t.Errorf("stage name missing from error: %v", err)
	}
}

func TestRunChecksContextBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	_, err := Run(ctx, []Stage{
		{Name: "first", Run: func(context.Context) error { cancel(); return nil }},
		{Name: "second", Run: func(context.Context) error { ran = true; return nil }},
	})
	if !errors.Is(err, synerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if ran {
		t.Errorf("stage ran after cancellation")
	}
}

func TestRunEmitsTraceEventsPerStage(t *testing.T) {
	var buf bytes.Buffer
	ctx := trace.With(context.Background(), trace.NewJSON(&buf), "tp", "modular")
	_, err := Run(ctx, []Stage{
		{Name: "elaborate", Run: func(context.Context) error { return nil }},
		{Name: "logic", Run: func(ctx context.Context) error {
			trace.Formula(ctx, trace.FormulaEvent{Status: "SAT", Engine: "dpll"})
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // 2×(start+end) + 1 formula
		t.Fatalf("got %d trace lines:\n%s", len(lines), buf.String())
	}
	var types []string
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad JSON %q: %v", l, err)
		}
		types = append(types, m["type"].(string))
		if m["type"] == "formula" && m["stage"] != "logic" {
			t.Errorf("formula event missing stage scope: %v", m)
		}
	}
	want := "stage_start,stage_end,stage_start,formula,stage_end"
	if strings.Join(types, ",") != want {
		t.Errorf("event order = %v", types)
	}
}
