// Package pipeline is the staged-execution driver of the synthesis
// flow. The paper's algorithm is inherently staged — state graph
// elaboration, per-output partition/CSC, expansion refinement, logic
// derivation — and every method (modular, direct, Lavagno-style) is a
// list of named Stages run by one driver instead of hand-rolled glue.
// The driver owns the cross-cutting concerns: it checks the context
// before each stage so a canceled run stops at the next stage boundary
// (stages additionally poll the context inside their own hot loops),
// emits StageStart/StageEnd trace events, and records per-stage
// wall-clock stats for the caller to surface.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Stage is one named step of a synthesis run. Run receives a context
// already scoped to the stage (trace events emitted under it carry the
// stage name) and reports failure through the error taxonomy of
// internal/synerr; any non-nil error stops the pipeline.
type Stage struct {
	Name string
	Run  func(ctx context.Context) error
}

// StageStat records one executed stage.
type StageStat struct {
	Name     string
	Duration time.Duration
	// Err holds the stage's failure message ("" on success); the
	// typed error itself is returned by Run.
	Err string
	// Counters holds the metrics counters this stage advanced (the delta
	// of the run's collector across the stage, keyed by the stable
	// internal/metrics names); nil when no collector is attached or the
	// stage advanced nothing.
	Counters map[string]int64
}

// Run executes the stages in order. It returns the stats of every
// stage that ran (including a failed final stage) and the first error,
// wrapped with the stage name — sentinel errors from internal/synerr
// remain matchable with errors.Is through the wrapping. A context
// canceled before a stage starts yields synerr.ErrCanceled without
// running the stage.
func Run(ctx context.Context, stages []Stage) ([]StageStat, error) {
	stats := make([]StageStat, 0, len(stages))
	collector := metrics.From(ctx)
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return stats, synerr.Canceled(err)
		}
		sctx := trace.WithStage(ctx, st.Name)
		trace.StageStart(sctx, st.Name)
		before := collector.Snapshot()
		start := time.Now()
		err := st.Run(sctx)
		d := time.Since(start)
		// Stage deltas use the same deterministic restriction as the
		// facade's per-run delta, so the per-stage counters always sum
		// to the run's (and both stay Workers-independent).
		stat := StageStat{Name: st.Name, Duration: d,
			Counters: collector.Snapshot().DeterministicDelta(before)}
		if err != nil {
			stat.Err = err.Error()
		}
		stats = append(stats, stat)
		trace.StageEnd(sctx, st.Name, d, err)
		if err != nil {
			return stats, fmt.Errorf("stage %s: %w", st.Name, err)
		}
	}
	return stats, nil
}
