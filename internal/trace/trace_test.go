package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScopeLabelsFlowIntoEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	ctx := With(context.Background(), tr, "mmu0", "modular")
	ctx = WithStage(ctx, "modules")
	ctx = WithOutput(ctx, "y")

	StageStart(ctx, "modules")
	Formula(ctx, FormulaEvent{Signals: 1, Vars: 10, Clauses: 20, Literals: 44,
		Status: "SAT", Engine: "dpll", Duration: 2 * time.Millisecond})
	StageEnd(ctx, "modules", 5*time.Millisecond, errors.New("boom"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var evs []map[string]any
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		evs = append(evs, m)
	}
	if evs[0]["type"] != "stage_start" || evs[0]["model"] != "mmu0" || evs[0]["method"] != "modular" {
		t.Errorf("stage_start = %v", evs[0])
	}
	if evs[1]["type"] != "formula" || evs[1]["output"] != "y" || evs[1]["stage"] != "modules" ||
		evs[1]["status"] != "SAT" || evs[1]["engine"] != "dpll" {
		t.Errorf("formula = %v", evs[1])
	}
	if evs[2]["type"] != "stage_end" || evs[2]["err"] != "boom" {
		t.Errorf("stage_end = %v", evs[2])
	}
}

func TestNoTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("Enabled on bare context")
	}
	// Must not panic.
	StageStart(ctx, "x")
	StageEnd(ctx, "x", 0, nil)
	Formula(ctx, FormulaEvent{})
	if c := With(ctx, nil, "m", "modular"); Enabled(c) {
		t.Fatal("nil tracer enabled")
	}
}

func TestJSONTracerConcurrentLinesStayWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	ctx := With(context.Background(), tr, "m", "direct")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				Formula(ctx, FormulaEvent{Signals: 1, Status: "SAT", Engine: "dpll"})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 16*50 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("invalid JSON line %q", l)
		}
	}
}

func TestLogTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewLog(&buf)
	ctx := With(context.Background(), tr, "fifo", "modular")
	StageStart(ctx, "logic")
	StageEnd(ctx, "logic", time.Millisecond, nil)
	Formula(ctx, FormulaEvent{Status: "SAT", Engine: "bdd"})
	out := buf.String()
	for _, want := range []string{"fifo/modular", "stage logic start", "stage logic end", "(global)", "bdd"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
