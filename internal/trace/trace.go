// Package trace provides the synthesis pipeline's instrumentation
// interface: a Tracer receives StageStart/StageEnd events from the
// pipeline driver and FormulaSolved events from the SAT layer, giving
// machine-readable evidence of what every run did per stage and per
// formula. The tracer rides on the context.Context that already
// threads through every layer for cancellation, so no internal
// signature carries a tracer explicitly; the default is a no-op.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// StageEvent describes a pipeline stage boundary.
type StageEvent struct {
	Model    string
	Method   string
	Stage    string
	Duration time.Duration // StageEnd only
	Err      string        // StageEnd only; "" on success
}

// FormulaEvent describes one solved SAT instance.
type FormulaEvent struct {
	Model    string
	Method   string
	Stage    string
	Output   string // output whose modular graph produced it; "" = global
	Signals  int    // state signals attempted (the formula's m)
	Vars     int
	Clauses  int
	Literals int
	Status   string
	Engine   string
	Duration time.Duration
}

// Tracer receives pipeline events. Implementations must be safe for
// concurrent use: parallel stages and portfolio races emit from
// multiple goroutines.
type Tracer interface {
	StageStart(e StageEvent)
	StageEnd(e StageEvent)
	FormulaSolved(e FormulaEvent)
}

// scope is the per-run labelling carried alongside the tracer in the
// context: events emitted deep in the stack inherit the run's model,
// method, current stage and current output.
type scope struct {
	tracer Tracer
	model  string
	method string
	stage  string
	output string
}

type ctxKey struct{}

func scopeOf(ctx context.Context) (scope, bool) {
	s, ok := ctx.Value(ctxKey{}).(scope)
	return s, ok && s.tracer != nil
}

// With attaches a tracer plus the run's model and method labels.
func With(ctx context.Context, t Tracer, model, method string) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, scope{tracer: t, model: model, method: method})
}

// WithStage returns a context whose emitted events carry the stage name.
func WithStage(ctx context.Context, stage string) context.Context {
	s, ok := scopeOf(ctx)
	if !ok {
		return ctx
	}
	s.stage = stage
	return context.WithValue(ctx, ctxKey{}, s)
}

// WithOutput returns a context whose formula events carry the output
// signal whose modular pass produced them.
func WithOutput(ctx context.Context, output string) context.Context {
	s, ok := scopeOf(ctx)
	if !ok {
		return ctx
	}
	s.output = output
	return context.WithValue(ctx, ctxKey{}, s)
}

// Enabled reports whether a tracer is attached (lets hot paths skip
// building events).
func Enabled(ctx context.Context) bool {
	_, ok := scopeOf(ctx)
	return ok
}

// StageStart emits a stage_start event for the named stage.
func StageStart(ctx context.Context, stage string) {
	if s, ok := scopeOf(ctx); ok {
		s.tracer.StageStart(StageEvent{Model: s.model, Method: s.method, Stage: stage})
	}
}

// StageEnd emits a stage_end event.
func StageEnd(ctx context.Context, stage string, d time.Duration, err error) {
	if s, ok := scopeOf(ctx); ok {
		e := StageEvent{Model: s.model, Method: s.method, Stage: stage, Duration: d}
		if err != nil {
			e.Err = err.Error()
		}
		s.tracer.StageEnd(e)
	}
}

// Formula emits a formula event, filling the run labels from the
// context scope.
func Formula(ctx context.Context, e FormulaEvent) {
	if s, ok := scopeOf(ctx); ok {
		e.Model, e.Method, e.Stage, e.Output = s.model, s.method, s.stage, s.output
		s.tracer.FormulaSolved(e)
	}
}

// Recording buffers the events a speculative computation emits so they
// can be replayed into the real tracer — in emission order — only if
// the computation commits. A discarded recording is simply dropped, so
// an aborted speculation leaves no trace events, exactly like work that
// never ran. Safe for concurrent use (a lane's portfolio race emits
// from multiple goroutines).
type Recording struct {
	mu     sync.Mutex
	parent Tracer
	events []recordedEvent
}

type recordedEvent struct {
	kind    int // 0 = StageStart, 1 = StageEnd, 2 = FormulaSolved
	stage   StageEvent
	formula FormulaEvent
}

// Record swaps the context's tracer for a Recording, keeping the scope
// labels (model, method, stage, output) so recorded events are
// indistinguishable from directly emitted ones. When ctx carries no
// tracer it is returned unchanged with a nil Recording — nil-safe to
// Replay.
func Record(ctx context.Context) (context.Context, *Recording) {
	s, ok := scopeOf(ctx)
	if !ok {
		return ctx, nil
	}
	rec := &Recording{parent: s.tracer}
	s.tracer = rec
	return context.WithValue(ctx, ctxKey{}, s), rec
}

// Replay emits the recorded events into the tracer that was attached
// when Record was called, in emission order. No-op on nil.
func (r *Recording) Replay() {
	if r == nil {
		return
	}
	r.mu.Lock()
	events := r.events
	r.events = nil
	r.mu.Unlock()
	for _, e := range events {
		switch e.kind {
		case 0:
			r.parent.StageStart(e.stage)
		case 1:
			r.parent.StageEnd(e.stage)
		case 2:
			r.parent.FormulaSolved(e.formula)
		}
	}
}

func (r *Recording) add(e recordedEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *Recording) StageStart(e StageEvent) { r.add(recordedEvent{kind: 0, stage: e}) }
func (r *Recording) StageEnd(e StageEvent)   { r.add(recordedEvent{kind: 1, stage: e}) }
func (r *Recording) FormulaSolved(e FormulaEvent) {
	r.add(recordedEvent{kind: 2, formula: e})
}

// jsonEvent is the wire form of every event: one JSON object per line.
type jsonEvent struct {
	Type     string  `json:"type"`
	Model    string  `json:"model,omitempty"`
	Method   string  `json:"method,omitempty"`
	Stage    string  `json:"stage,omitempty"`
	Output   string  `json:"output,omitempty"`
	Signals  int     `json:"signals,omitempty"`
	Vars     int     `json:"vars,omitempty"`
	Clauses  int     `json:"clauses,omitempty"`
	Literals int     `json:"literals,omitempty"`
	Status   string  `json:"status,omitempty"`
	Engine   string  `json:"engine,omitempty"`
	MS       float64 `json:"ms,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// JSONTracer writes one JSON line per event, safe for concurrent use.
type JSONTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSON returns a tracer emitting JSON lines to w.
func NewJSON(w io.Writer) *JSONTracer { return &JSONTracer{w: w} }

func (t *JSONTracer) emit(e jsonEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w.Write(append(b, '\n'))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (t *JSONTracer) StageStart(e StageEvent) {
	t.emit(jsonEvent{Type: "stage_start", Model: e.Model, Method: e.Method, Stage: e.Stage})
}

func (t *JSONTracer) StageEnd(e StageEvent) {
	t.emit(jsonEvent{Type: "stage_end", Model: e.Model, Method: e.Method, Stage: e.Stage,
		MS: ms(e.Duration), Err: e.Err})
}

func (t *JSONTracer) FormulaSolved(e FormulaEvent) {
	t.emit(jsonEvent{Type: "formula", Model: e.Model, Method: e.Method, Stage: e.Stage,
		Output: e.Output, Signals: e.Signals, Vars: e.Vars, Clauses: e.Clauses,
		Literals: e.Literals, Status: e.Status, Engine: e.Engine, MS: ms(e.Duration)})
}

// BufferTracer collects events in memory as marshalled JSON objects —
// the same wire form JSONTracer writes as lines — for callers that
// return a run's trace inside a larger response (the daemon's ?trace=1
// section). Safe for concurrent use.
type BufferTracer struct {
	mu     sync.Mutex
	events []json.RawMessage
}

// NewBuffer returns an empty buffering tracer.
func NewBuffer() *BufferTracer { return &BufferTracer{} }

func (t *BufferTracer) add(e jsonEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, b)
}

// Events returns the collected events in emission order. The returned
// slice is a copy; the tracer may keep collecting.
func (t *BufferTracer) Events() []json.RawMessage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]json.RawMessage(nil), t.events...)
}

func (t *BufferTracer) StageStart(e StageEvent) {
	t.add(jsonEvent{Type: "stage_start", Model: e.Model, Method: e.Method, Stage: e.Stage})
}

func (t *BufferTracer) StageEnd(e StageEvent) {
	t.add(jsonEvent{Type: "stage_end", Model: e.Model, Method: e.Method, Stage: e.Stage,
		MS: ms(e.Duration), Err: e.Err})
}

func (t *BufferTracer) FormulaSolved(e FormulaEvent) {
	t.add(jsonEvent{Type: "formula", Model: e.Model, Method: e.Method, Stage: e.Stage,
		Output: e.Output, Signals: e.Signals, Vars: e.Vars, Clauses: e.Clauses,
		Literals: e.Literals, Status: e.Status, Engine: e.Engine, MS: ms(e.Duration)})
}

// LogTracer writes human-readable lines, safe for concurrent use.
type LogTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLog returns a tracer writing readable lines to w.
func NewLog(w io.Writer) *LogTracer { return &LogTracer{w: w} }

func (t *LogTracer) line(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, format+"\n", args...)
}

func (t *LogTracer) StageStart(e StageEvent) {
	t.line("trace: %s/%s stage %s start", e.Model, e.Method, e.Stage)
}

func (t *LogTracer) StageEnd(e StageEvent) {
	if e.Err != "" {
		t.line("trace: %s/%s stage %s end %.2fms err=%s", e.Model, e.Method, e.Stage, ms(e.Duration), e.Err)
		return
	}
	t.line("trace: %s/%s stage %s end %.2fms", e.Model, e.Method, e.Stage, ms(e.Duration))
}

func (t *LogTracer) FormulaSolved(e FormulaEvent) {
	out := e.Output
	if out == "" {
		out = "(global)"
	}
	t.line("trace: %s/%s stage %s formula %s m=%d %dv/%dc %s %s %.2fms",
		e.Model, e.Method, e.Stage, out, e.Signals, e.Vars, e.Clauses, e.Status, e.Engine, ms(e.Duration))
}
