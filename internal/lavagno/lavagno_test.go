package lavagno

import (
	"context"
	"errors"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/stg"
)

const twoPulse = `
.model tp
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func load(t *testing.T, src string) *sg.Graph {
	t.Helper()
	g, err := stg.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	sgr, err := sg.FromSTG(g, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sgr
}

func TestSolveSmall(t *testing.T) {
	g := load(t, twoPulse)
	res, err := Solve(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted < 1 {
		t.Fatalf("result %+v", res)
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("%d conflicts remain", conf.N())
	}
	if bad := g.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("phases inconsistent: %v", bad)
	}
	for i, ss := range g.StateSigs {
		if ss.Name == "" {
			t.Fatalf("signal %d unnamed", i)
		}
	}
}

func TestSolveCleanGraphInsertsNothing(t *testing.T) {
	g := load(t, `
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
`)
	res, err := Solve(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 {
		t.Fatalf("clean graph: %+v", res)
	}
}

// TestOneSignalPerIteration: the method inserts signals one at a time,
// so the formula count equals or exceeds the inserted count.
func TestOneSignalPerIteration(t *testing.T) {
	spec, err := bench.Load("pa")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), g, Options{})
	if errors.Is(err, synerr.ErrBacktrackLimit) {
		t.Skip("pa aborted under default budget")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted < 2 {
		t.Fatalf("pa needs ≥2 signals, got %d", res.Inserted)
	}
	if len(res.Formulas) < res.Inserted {
		t.Fatalf("%d formulas for %d signals", len(res.Formulas), res.Inserted)
	}
	for _, f := range res.Formulas {
		if f.Signals != 1 {
			t.Fatalf("iteration attempted %d signals at once", f.Signals)
		}
	}
}

func TestAbortsAtSignalCap(t *testing.T) {
	spec, err := bench.Load("mmu0")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Solve(context.Background(), g, Options{MaxSignals: 2})
	if !errors.Is(err, synerr.ErrBacktrackLimit) {
		t.Fatalf("mmu0 with a 2-signal cap must abort, got %v", err)
	}
}
