// Package lavagno provides the second baseline of the paper's Table 1: a
// state-assignment flow in the spirit of Lavagno, Moon, Brayton and
// Sangiovanni-Vincentelli (DAC'92). Their algorithm works on the whole
// state graph with no decomposition and inserts state signals one at a
// time, each obtained from a global bipartition of the state graph that
// separates coding conflicts while respecting consistency. We reproduce
// that profile: per iteration one new signal is found by a whole-graph
// SAT instance targeting the largest remaining conflict group, repeated
// until complete state coding holds. Compared with the modular method
// this spends full-graph effort per signal (slower on large graphs) and
// usually yields equal-or-more signals with no support reduction.
package lavagno

import (
	"context"
	"fmt"
	"time"

	"asyncsyn/internal/csc"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Options configures the baseline.
type Options struct {
	MaxBacktracks int64 // per SAT instance (default 2,000,000)
	MaxSignals    int   // total insertion cap (default 10)
	NamePrefix    string
}

func (o Options) withDefaults() Options {
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 2000000
	}
	if o.MaxSignals == 0 {
		o.MaxSignals = 10
	}
	if o.NamePrefix == "" {
		o.NamePrefix = "st"
	}
	return o
}

// Result reports the insertion run.
type Result struct {
	Inserted int
	Formulas []csc.FormulaStats
}

// Solve inserts state signals one at a time until the graph satisfies
// CSC. Each iteration builds a whole-graph SAT instance whose separation
// obligation is the largest conflict group (all conflicting pairs sharing
// the most popular code); consistency, semi-modularity and USC
// constraints still span the entire graph, which is what makes the
// method expensive without decomposition.
//
// Budget exhaustion or an insertion cap reached with conflicts left
// returns an error matching synerr.ErrBacktrackLimit (Table 1 reports
// this method aborting on some STGs); a canceled ctx returns one
// matching synerr.ErrCanceled. Both come with the partial Result.
func Solve(ctx context.Context, g *sg.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	res := &Result{}
	solveOne := func(target *sg.Conflicts) (*csc.Encoding, sat.Result, error) {
		enc, err := csc.Encode(g, target, 1, csc.Options{})
		if err != nil {
			return nil, sat.Result{}, err
		}
		start := time.Now()
		r := sat.Solve(enc.F, sat.Limits{MaxBacktracks: opt.MaxBacktracks, Ctx: ctx})
		st := csc.FormulaStats{
			Signals: 1, Vars: enc.F.NumVars, Clauses: enc.F.NumClauses(),
			Literals: enc.F.NumLiterals(), Status: r.Status, SolveTime: time.Since(start),
			Engine: "dpll",
		}
		if r.Status == sat.Canceled {
			return nil, r, synerr.Canceled(ctx.Err())
		}
		res.Formulas = append(res.Formulas, st)
		trace.Formula(ctx, trace.FormulaEvent{
			Signals: 1, Vars: st.Vars, Clauses: st.Clauses, Literals: st.Literals,
			Status: st.Status.String(), Engine: st.Engine, Duration: st.SolveTime,
		})
		return enc, r, nil
	}
	for res.Inserted < opt.MaxSignals {
		conf := sg.Analyze(g)
		if conf.N() == 0 {
			return res, nil
		}
		target := largestGroup(g, conf)
		enc, r, err := solveOne(target)
		if err != nil {
			return res, err
		}
		switch r.Status {
		case sat.BacktrackLimit:
			return res, fmt.Errorf("lavagno: signal %d: %w", res.Inserted, synerr.ErrBacktrackLimit)
		case sat.Unsat:
			// One signal cannot split this group under the global
			// constraints; fall back to separating only its first pair.
			if len(target.CSC) == 1 {
				return res, fmt.Errorf("lavagno: conflict pair %v unresolvable with one signal: %w", target.CSC[0], synerr.ErrConflictsPersist)
			}
			single := &sg.Conflicts{CSC: target.CSC[:1], USC: append(target.USC, target.CSC[1:]...)}
			enc, r, err = solveOne(single)
			if err != nil {
				return res, err
			}
			if r.Status != sat.Sat {
				return res, fmt.Errorf("lavagno: signal %d single-pair fallback: %w", res.Inserted, synerr.ErrBacktrackLimit)
			}
		}
		if r.Status == sat.Sat {
			cols := enc.DecodePhases(r.Model)
			csc.Tighten(g, target, cols)
			col := cols[0]
			g.StateSigs = append(g.StateSigs, sg.StateSignal{
				Name:   fmt.Sprintf("%s%d", opt.NamePrefix, len(g.StateSigs)),
				Phases: col,
			})
			res.Inserted++
		}
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		// Insertion cap exhausted with conflicts left: report the run as
		// aborted (Table 1 reports this method failing on some STGs).
		return res, fmt.Errorf("lavagno: %d conflicts remain at the %d-signal cap: %w", conf.N(), opt.MaxSignals, synerr.ErrBacktrackLimit)
	}
	return res, nil
}

// largestGroup restricts a conflict analysis to the pairs of the code
// group containing the most conflicting pairs; the remaining pairs join
// the USC side so the inserted signal stays well defined everywhere.
func largestGroup(g *sg.Graph, conf *sg.Conflicts) *sg.Conflicts {
	count := make(map[uint64]int)
	for _, p := range conf.CSC {
		count[g.FullCode(p.A)]++
	}
	var bestCode uint64
	best := -1
	for code, n := range count {
		if n > best || (n == best && code < bestCode) {
			bestCode, best = code, n
		}
	}
	out := &sg.Conflicts{LowerBound: 1}
	for _, p := range conf.CSC {
		if g.FullCode(p.A) == bestCode {
			out.CSC = append(out.CSC, p)
		} else {
			out.USC = append(out.USC, p)
		}
	}
	out.USC = append(out.USC, conf.USC...)
	return out
}
