package petri

import (
	"strings"
	"testing"
)

// chain builds p0 → t0 → p1 → t1 → ... → p(n-1) → t(n-1) → p0 with a
// token on p0.
func chain(t *testing.T, n int) *Net {
	t.Helper()
	net := New("chain")
	ps := make([]PlaceID, n)
	ts := make([]TransID, n)
	for i := 0; i < n; i++ {
		ps[i] = net.AddPlace("")
		ts[i] = net.AddTransition(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		net.ConnectPT(ps[i], ts[i])
		net.ConnectTP(ts[i], ps[(i+1)%n])
	}
	net.Initial = net.NewMarking()
	net.Initial[ps[0]] = 1
	return net
}

func TestEnabledAndFire(t *testing.T) {
	net := chain(t, 3)
	m := net.Initial
	if !net.Enabled(m, 0) {
		t.Fatalf("t0 should be enabled initially")
	}
	if net.Enabled(m, 1) {
		t.Fatalf("t1 should be disabled initially")
	}
	m2 := net.Fire(m, 0)
	if m2[0] != 0 || m2[1] != 1 {
		t.Fatalf("firing t0: got marking %v", m2)
	}
	if m[0] != 1 {
		t.Fatalf("Fire must not mutate the input marking")
	}
	if !net.Enabled(m2, 1) {
		t.Fatalf("t1 should be enabled after t0")
	}
}

func TestFireDisabledPanics(t *testing.T) {
	net := chain(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("firing a disabled transition must panic")
		}
	}()
	net.Fire(net.Initial, 1)
}

func TestEnabledSetOrder(t *testing.T) {
	net := New("fork")
	p := net.AddPlace("p")
	a := net.AddTransition("a")
	b := net.AddTransition("b")
	net.ConnectPT(p, a)
	net.ConnectPT(p, b)
	pa := net.AddPlace("pa")
	pb := net.AddPlace("pb")
	net.ConnectTP(a, pa)
	net.ConnectTP(b, pb)
	net.Initial = net.NewMarking()
	net.Initial[p] = 1
	got := net.EnabledSet(net.Initial)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("enabled set = %v, want [a b] in id order", got)
	}
}

func TestReachCycle(t *testing.T) {
	net := chain(t, 5)
	r, err := net.Reach(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.States) != 5 {
		t.Fatalf("cycle of 5 places: %d states, want 5", len(r.States))
	}
	if len(r.Edges) != 5 {
		t.Fatalf("%d edges, want 5", len(r.Edges))
	}
	if dead := net.Live(r); len(dead) != 0 {
		t.Fatalf("dead transitions in a live cycle: %v", dead)
	}
}

func TestReachDiamond(t *testing.T) {
	// fork → two concurrent transitions → join: 4 states.
	net := New("diamond")
	pin := net.AddPlace("in")
	fork := net.AddTransition("fork")
	net.ConnectPT(pin, fork)
	var joinIns []PlaceID
	for i := 0; i < 2; i++ {
		pm := net.AddPlace("")
		tm := net.AddTransition(string(rune('x' + i)))
		pe := net.AddPlace("")
		net.ConnectTP(fork, pm)
		net.ConnectPT(pm, tm)
		net.ConnectTP(tm, pe)
		joinIns = append(joinIns, pe)
	}
	join := net.AddTransition("join")
	for _, p := range joinIns {
		net.ConnectPT(p, join)
	}
	net.ConnectTP(join, pin)
	net.Initial = net.NewMarking()
	net.Initial[pin] = 1
	r, err := net.Reach(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// pre-fork, post-fork, x done, y done, both done = 5.
	if len(r.States) != 5 {
		t.Fatalf("diamond: %d states, want 5", len(r.States))
	}
}

func TestReachUnbounded(t *testing.T) {
	// A transition that only produces tokens.
	net := New("unbounded")
	p := net.AddPlace("p")
	q := net.AddPlace("q")
	tr := net.AddTransition("t")
	net.ConnectPT(p, tr)
	net.ConnectTP(tr, p)
	net.ConnectTP(tr, q) // q grows forever
	net.Initial = net.NewMarking()
	net.Initial[p] = 1
	_, err := net.Reach(3, 0)
	ub, ok := err.(ErrUnbounded)
	if !ok {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
	if ub.Place != "q" || ub.Bound != 3 {
		t.Fatalf("unexpected unbounded report: %+v", ub)
	}
	if safe, err := net.IsSafe(0); err != nil || safe {
		t.Fatalf("IsSafe = %v, %v; want false, nil", safe, err)
	}
}

func TestReachStateCap(t *testing.T) {
	net := chain(t, 10)
	if _, err := net.Reach(1, 3); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want state-cap error, got %v", err)
	}
}

func TestReachBadInitial(t *testing.T) {
	net := chain(t, 3)
	net.Initial = Marking{1} // wrong length
	if _, err := net.Reach(1, 0); err == nil {
		t.Fatalf("want error for short initial marking")
	}
}

func TestMultiTokenMarking(t *testing.T) {
	// 2-bounded place: two tokens allow two firings before exhaustion.
	net := New("2tok")
	p := net.AddPlace("p")
	q := net.AddPlace("q")
	tr := net.AddTransition("t")
	net.ConnectPT(p, tr)
	net.ConnectTP(tr, q)
	back := net.AddTransition("u")
	net.ConnectPT(q, back)
	net.ConnectTP(back, p)
	net.Initial = net.NewMarking()
	net.Initial[p] = 2
	r, err := net.Reach(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (2,0), (1,1), (0,2) = 3 states.
	if len(r.States) != 3 {
		t.Fatalf("%d states, want 3", len(r.States))
	}
}

func TestValidate(t *testing.T) {
	net := New("bad")
	net.AddPlace("p")
	net.AddPlace("p") // duplicate name
	if err := net.Validate(); err == nil {
		t.Fatalf("duplicate place names must fail validation")
	}

	net2 := New("bad2")
	p := net2.AddPlace("p")
	tr := net2.AddTransition("t")
	net2.ConnectPT(p, tr) // no fanout
	if err := net2.Validate(); err == nil || !strings.Contains(err.Error(), "fanout") {
		t.Fatalf("transition without fanout must fail validation, got %v", err)
	}
}

func TestLiveReportsDeadTransitions(t *testing.T) {
	net := chain(t, 3)
	// Add an unconnected-but-valid transition fed by an unmarked place.
	p := net.AddPlace("dead-in")
	d := net.AddTransition("zz")
	net.ConnectPT(p, d)
	pd := net.AddPlace("dead-out")
	net.ConnectTP(d, pd)
	net.Initial = append(net.Initial, 0, 0)
	r, err := net.Reach(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := net.Live(r)
	if len(dead) != 1 || dead[0] != "zz" {
		t.Fatalf("dead = %v, want [zz]", dead)
	}
}

func TestMarkingKeyAndEqual(t *testing.T) {
	a := Marking{0, 1, 2}
	b := Marking{0, 1, 2}
	c := Marking{0, 1, 3}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Fatalf("marking keys broken")
	}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Marking{0, 1}) {
		t.Fatalf("marking equality broken")
	}
	d := a.Clone()
	d[0] = 9
	if a[0] == 9 {
		t.Fatalf("Clone must copy")
	}
}

func TestArcHelper(t *testing.T) {
	net := New("arc")
	a := net.AddTransition("a")
	b := net.AddTransition("b")
	p := net.Arc(a, b)
	if !net.Places[p].Implicit {
		t.Fatalf("Arc must create an implicit place")
	}
	if len(net.Transitions[a].Post) != 1 || len(net.Transitions[b].Pre) != 1 {
		t.Fatalf("arc wiring wrong")
	}
	if _, ok := net.TransitionByLabel("b"); !ok {
		t.Fatalf("TransitionByLabel failed")
	}
	if _, ok := net.PlaceByName(net.Places[p].Name); !ok {
		t.Fatalf("PlaceByName failed")
	}
}
