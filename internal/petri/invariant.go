package petri

import "math/big"

// Incidence returns the |P|×|T| incidence matrix C with C[p][t] =
// (tokens t adds to p) − (tokens t removes from p).
func (n *Net) Incidence() [][]int {
	c := make([][]int, len(n.Places))
	for p := range c {
		c[p] = make([]int, len(n.Transitions))
	}
	for t, tr := range n.Transitions {
		for _, p := range tr.Pre {
			c[p][t]--
		}
		for _, p := range tr.Post {
			c[p][t]++
		}
	}
	return c
}

// TInvariants returns a basis of the right nullspace of the incidence
// matrix: firing-count vectors x with C·x = 0, i.e. firing sequences
// that reproduce a marking. Every live cyclic STG has at least one
// strictly positive T-invariant (one full cycle of the specification).
// Entries are scaled to the smallest integer vector.
func (n *Net) TInvariants() [][]int {
	c := n.Incidence()
	return intNullspace(c, len(n.Transitions))
}

// PInvariants returns a basis of the left nullspace: place weightings y
// with y·C = 0, whose weighted token count is conserved by every firing
// (the classic structural boundedness witness).
func (n *Net) PInvariants() [][]int {
	c := n.Incidence()
	// Transpose, then right-nullspace.
	tr := make([][]int, len(n.Transitions))
	for t := range tr {
		tr[t] = make([]int, len(n.Places))
		for p := range n.Places {
			tr[t][p] = c[p][t]
		}
	}
	return intNullspace(tr, len(n.Places))
}

// intNullspace computes an integer basis of {x : M·x = 0} by exact
// rational Gaussian elimination.
func intNullspace(m [][]int, cols int) [][]int {
	rows := len(m)
	a := make([][]*big.Rat, rows)
	for i := range a {
		a[i] = make([]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			a[i][j] = big.NewRat(int64(m[i][j]), 1)
		}
	}

	pivotCol := make([]int, 0, cols) // pivot column per pivot row
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find a pivot.
		pivot := -1
		for i := r; i < rows; i++ {
			if a[i][c].Sign() != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[r], a[pivot] = a[pivot], a[r]
		inv := new(big.Rat).Inv(a[r][c])
		for j := c; j < cols; j++ {
			a[r][j].Mul(a[r][j], inv)
		}
		for i := 0; i < rows; i++ {
			if i == r || a[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(a[i][c])
			for j := c; j < cols; j++ {
				t := new(big.Rat).Mul(f, a[r][j])
				a[i][j].Sub(a[i][j], t)
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}

	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis [][]int
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		// Solution with x[free] = 1, other free vars 0.
		x := make([]*big.Rat, cols)
		for j := range x {
			x[j] = new(big.Rat)
		}
		x[free].SetInt64(1)
		for i := len(pivotCol) - 1; i >= 0; i-- {
			pc := pivotCol[i]
			sum := new(big.Rat)
			for j := pc + 1; j < cols; j++ {
				t := new(big.Rat).Mul(a[i][j], x[j])
				sum.Add(sum, t)
			}
			x[pc].Neg(sum)
		}
		basis = append(basis, scaleToInt(x))
	}
	return basis
}

// scaleToInt multiplies a rational vector by the LCM of denominators and
// divides by the GCD of numerators, yielding the smallest integer form.
func scaleToInt(x []*big.Rat) []int {
	lcm := big.NewInt(1)
	for _, v := range x {
		d := v.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g)
		lcm.Mul(lcm, d)
	}
	ints := make([]*big.Int, len(x))
	gcd := new(big.Int)
	for i, v := range x {
		n := new(big.Int).Mul(v.Num(), lcm)
		n.Div(n, v.Denom())
		ints[i] = n
		if n.Sign() != 0 {
			abs := new(big.Int).Abs(n)
			if gcd.Sign() == 0 {
				gcd.Set(abs)
			} else {
				gcd.GCD(nil, nil, gcd, abs)
			}
		}
	}
	out := make([]int, len(x))
	for i, n := range ints {
		if gcd.Sign() != 0 {
			n.Div(n, gcd)
		}
		out[i] = int(n.Int64())
	}
	return out
}

// IsTInvariant checks C·x = 0 directly.
func (n *Net) IsTInvariant(x []int) bool {
	if len(x) != len(n.Transitions) {
		return false
	}
	c := n.Incidence()
	for p := range n.Places {
		sum := 0
		for t := range n.Transitions {
			sum += c[p][t] * x[t]
		}
		if sum != 0 {
			return false
		}
	}
	return true
}
