package petri

import "testing"

func TestIncidence(t *testing.T) {
	net := chain(t, 3)
	c := net.Incidence()
	// t0 consumes p0, produces p1.
	if c[0][0] != -1 || c[1][0] != 1 || c[2][0] != 0 {
		t.Fatalf("incidence row: %v", c)
	}
}

func TestTInvariantsCycle(t *testing.T) {
	net := chain(t, 4)
	inv := net.TInvariants()
	if len(inv) != 1 {
		t.Fatalf("cycle should have one T-invariant, got %d", len(inv))
	}
	// Firing every transition once reproduces the marking: (1,1,1,1) up
	// to sign.
	x := inv[0]
	base := x[0]
	if base == 0 {
		t.Fatalf("degenerate invariant %v", x)
	}
	for _, v := range x {
		if v != base {
			t.Fatalf("cycle invariant not uniform: %v", x)
		}
	}
	if !net.IsTInvariant(x) {
		t.Fatalf("basis vector fails the direct check")
	}
	if net.IsTInvariant([]int{1, 0, 0, 0}) {
		t.Fatalf("non-invariant accepted")
	}
	if net.IsTInvariant([]int{1, 1}) {
		t.Fatalf("wrong length accepted")
	}
}

func TestPInvariantsCycle(t *testing.T) {
	net := chain(t, 4)
	inv := net.PInvariants()
	if len(inv) != 1 {
		t.Fatalf("cycle should have one P-invariant, got %d", len(inv))
	}
	// Total token count conserved: uniform weights.
	y := inv[0]
	for _, v := range y {
		if v != y[0] || v == 0 {
			t.Fatalf("P-invariant not uniform: %v", y)
		}
	}
}

func TestInvariantsForkJoin(t *testing.T) {
	// fork → {x, y} → join: T-invariant fires each transition once;
	// two P-invariants (one through each branch).
	net := New("fj")
	pin := net.AddPlace("in")
	fork := net.AddTransition("fork")
	net.ConnectPT(pin, fork)
	join := net.AddTransition("join")
	for i := 0; i < 2; i++ {
		pm := net.AddPlace("")
		tm := net.AddTransition(string(rune('x' + i)))
		pe := net.AddPlace("")
		net.ConnectTP(fork, pm)
		net.ConnectPT(pm, tm)
		net.ConnectTP(tm, pe)
		net.ConnectPT(pe, join)
	}
	net.ConnectTP(join, pin)
	net.Initial = net.NewMarking()
	net.Initial[pin] = 1

	tinv := net.TInvariants()
	if len(tinv) != 1 {
		t.Fatalf("T-invariants: %v", tinv)
	}
	for _, v := range tinv[0] {
		if v != tinv[0][0] {
			t.Fatalf("fork/join T-invariant not uniform: %v", tinv[0])
		}
	}
	pinv := net.PInvariants()
	if len(pinv) != 2 {
		t.Fatalf("P-invariants: want 2 branch invariants, got %d", len(pinv))
	}
	// Each P-invariant must conserve the initial token weight under any
	// firing; verify against a short run.
	weight := func(y []int, m Marking) int {
		s := 0
		for p, k := range m {
			s += y[p] * int(k)
		}
		return s
	}
	r, err := net.Reach(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range pinv {
		w0 := weight(y, net.Initial)
		for _, m := range r.States {
			if weight(y, m) != w0 {
				t.Fatalf("P-invariant %v not conserved", y)
			}
		}
	}
}
