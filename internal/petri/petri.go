// Package petri implements the Petri net kernel underlying signal
// transition graphs: places, transitions, flow relation, markings, the
// firing rule, and bounded reachability analysis.
//
// A net is a bipartite directed graph <P, T, F, M0>. The dynamic behaviour
// is captured by markings (token counts per place) and the firing of
// enabled transitions. The package is deliberately free of any
// interpretation of transitions as signal edges; that layer lives in
// package stg.
package petri

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"asyncsyn/internal/synerr"
)

// PlaceID and TransID index into a Net's place and transition tables.
type (
	PlaceID int
	TransID int
)

// Place is a condition holder. Places created implicitly for
// single-fanin/single-fanout arcs between transitions are flagged so
// writers can render them back as plain arcs.
type Place struct {
	Name     string
	Implicit bool // created for a transition→transition arc
	Pre      []TransID
	Post     []TransID
}

// Transition is a Petri net transition. Label carries the user-level name
// (for STGs, a signal edge such as "a+"); the kernel treats it as opaque.
type Transition struct {
	Label string
	Pre   []PlaceID
	Post  []PlaceID
}

// Net is a Petri net with an initial marking.
type Net struct {
	Name        string
	Places      []Place
	Transitions []Transition
	Initial     Marking
}

// New returns an empty net with the given name.
func New(name string) *Net {
	return &Net{Name: name}
}

// AddPlace appends a place and returns its id. Empty names get a
// generated one.
func (n *Net) AddPlace(name string) PlaceID {
	if name == "" {
		name = fmt.Sprintf("p%d", len(n.Places))
	}
	n.Places = append(n.Places, Place{Name: name})
	return PlaceID(len(n.Places) - 1)
}

// AddTransition appends a transition with the given label and returns its id.
func (n *Net) AddTransition(label string) TransID {
	n.Transitions = append(n.Transitions, Transition{Label: label})
	return TransID(len(n.Transitions) - 1)
}

// ConnectPT adds an arc place→transition.
func (n *Net) ConnectPT(p PlaceID, t TransID) {
	n.Places[p].Post = append(n.Places[p].Post, t)
	n.Transitions[t].Pre = append(n.Transitions[t].Pre, p)
}

// ConnectTP adds an arc transition→place.
func (n *Net) ConnectTP(t TransID, p PlaceID) {
	n.Transitions[t].Post = append(n.Transitions[t].Post, p)
	n.Places[p].Pre = append(n.Places[p].Pre, t)
}

// Arc adds a transition→transition arc through a fresh implicit place and
// returns that place's id.
func (n *Net) Arc(from, to TransID) PlaceID {
	p := n.AddPlace(fmt.Sprintf("<%s,%s>", n.Transitions[from].Label, n.Transitions[to].Label))
	n.Places[p].Implicit = true
	n.ConnectTP(from, p)
	n.ConnectPT(p, to)
	return p
}

// TransitionByLabel returns the first transition with the given label.
func (n *Net) TransitionByLabel(label string) (TransID, bool) {
	for i, t := range n.Transitions {
		if t.Label == label {
			return TransID(i), true
		}
	}
	return -1, false
}

// PlaceByName returns the place with the given name.
func (n *Net) PlaceByName(name string) (PlaceID, bool) {
	for i, p := range n.Places {
		if p.Name == name {
			return PlaceID(i), true
		}
	}
	return -1, false
}

// Marking assigns a token count to every place (indexed by PlaceID).
type Marking []uint8

// NewMarking returns an empty marking sized for net n.
func (n *Net) NewMarking() Marking { return make(Marking, len(n.Places)) }

// Clone returns a copy of m.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Key returns a compact string key identifying the marking, usable as a
// map key during reachability.
func (m Marking) Key() string { return string(m) }

// Equal reports whether two markings are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Enabled reports whether transition t may fire in marking m: every fanin
// place holds at least one token.
func (n *Net) Enabled(m Marking, t TransID) bool {
	for _, p := range n.Transitions[t].Pre {
		if m[p] == 0 {
			return false
		}
	}
	return true
}

// EnabledSet returns the ids of all transitions enabled in m, in id order.
func (n *Net) EnabledSet(m Marking) []TransID {
	var out []TransID
	for t := range n.Transitions {
		if n.Enabled(m, TransID(t)) {
			out = append(out, TransID(t))
		}
	}
	return out
}

// Fire fires transition t in marking m and returns the successor marking.
// It panics if t is not enabled; callers check Enabled first.
func (n *Net) Fire(m Marking, t TransID) Marking {
	if !n.Enabled(m, t) {
		panic(fmt.Sprintf("petri: firing disabled transition %q", n.Transitions[t].Label))
	}
	next := m.Clone()
	for _, p := range n.Transitions[t].Pre {
		next[p]--
	}
	for _, p := range n.Transitions[t].Post {
		next[p]++
	}
	return next
}

// ErrUnbounded is returned by Reach when a place exceeds the bound.
type ErrUnbounded struct {
	Place string
	Bound int
}

func (e ErrUnbounded) Error() string {
	return fmt.Sprintf("petri: net is not %d-bounded at place %q", e.Bound, e.Place)
}

// ReachEdge is one firing in the reachability graph: from state From,
// firing Trans reaches state To (states indexed into Reachability.States).
type ReachEdge struct {
	From, To int
	Trans    TransID
}

// Reachability is the explicit reachability graph of a bounded net.
type Reachability struct {
	States []Marking
	Edges  []ReachEdge
	// Index maps a marking key to its state index.
	Index map[string]int
	// Out[i] lists the indices into Edges of state i's outgoing edges.
	Out [][]int
}

// Reach exhaustively generates all markings reachable from the initial
// marking, failing if any place accumulates more than bound tokens or if
// more than maxStates states are generated (0 means no state cap).
func (n *Net) Reach(bound int, maxStates int) (*Reachability, error) {
	return n.ReachContext(context.Background(), bound, maxStates)
}

// ReachContext is Reach under a cancellation context, polled
// periodically during exploration so a canceled synthesis run stops
// mid-generation (with an error matching synerr.ErrCanceled) instead of
// finishing a large state space first. Exceeding maxStates yields an
// error matching synerr.ErrStateLimit.
func (n *Net) ReachContext(ctx context.Context, bound int, maxStates int) (*Reachability, error) {
	if len(n.Initial) != len(n.Places) {
		return nil, fmt.Errorf("petri: initial marking covers %d of %d places", len(n.Initial), len(n.Places))
	}
	r := &Reachability{Index: make(map[string]int)}
	push := func(m Marking) (int, error) {
		for p, k := range m {
			if int(k) > bound {
				return 0, ErrUnbounded{Place: n.Places[p].Name, Bound: bound}
			}
		}
		key := m.Key()
		if i, ok := r.Index[key]; ok {
			return i, nil
		}
		i := len(r.States)
		if maxStates > 0 && i >= maxStates {
			return 0, fmt.Errorf("petri: reachability exceeds %d states: %w", maxStates, synerr.ErrStateLimit)
		}
		r.States = append(r.States, m)
		r.Out = append(r.Out, nil)
		r.Index[key] = i
		return i, nil
	}
	if _, err := push(n.Initial.Clone()); err != nil {
		return nil, err
	}
	for i := 0; i < len(r.States); i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, synerr.Canceled(err)
			}
		}
		m := r.States[i]
		for _, t := range n.EnabledSet(m) {
			j, err := push(n.Fire(m, t))
			if err != nil {
				return nil, err
			}
			r.Edges = append(r.Edges, ReachEdge{From: i, To: j, Trans: t})
			r.Out[i] = append(r.Out[i], len(r.Edges)-1)
		}
	}
	return r, nil
}

// Validate performs structural sanity checks: every transition has at
// least one fanin and one fanout place, and every place name is unique.
func (n *Net) Validate() error {
	seen := make(map[string]bool, len(n.Places))
	for _, p := range n.Places {
		if seen[p.Name] {
			return fmt.Errorf("petri: duplicate place name %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, t := range n.Transitions {
		if len(t.Pre) == 0 {
			return fmt.Errorf("petri: transition %q has no fanin place (never enabled after start)", t.Label)
		}
		if len(t.Post) == 0 {
			return fmt.Errorf("petri: transition %q has no fanout place", t.Label)
		}
	}
	return nil
}

// IsSafe reports whether the net is 1-bounded, by running reachability
// with bound 1. maxStates caps the exploration.
func (n *Net) IsSafe(maxStates int) (bool, error) {
	_, err := n.Reach(1, maxStates)
	if _, unbounded := err.(ErrUnbounded); unbounded {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Live reports whether every transition fires in at least one reachable
// marking (L1-liveness restricted to the generated graph).
func (n *Net) Live(r *Reachability) []string {
	fired := make([]bool, len(n.Transitions))
	for _, e := range r.Edges {
		fired[e.Trans] = true
	}
	var dead []string
	for i, ok := range fired {
		if !ok {
			dead = append(dead, n.Transitions[i].Label)
		}
	}
	sort.Strings(dead)
	return dead
}

// String renders a short structural summary.
func (n *Net) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net %s: %d places, %d transitions", n.Name, len(n.Places), len(n.Transitions))
	return b.String()
}
