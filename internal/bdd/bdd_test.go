package bdd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// expr is a random boolean expression tree for cross-checking BDD
// semantics against direct evaluation.
type expr struct {
	op       byte // 'v', '&', '|', '^', '!'
	v        int
	lhs, rhs *expr
}

func randExpr(rng *rand.Rand, vars, depth int) *expr {
	if depth == 0 || rng.Intn(4) == 0 {
		return &expr{op: 'v', v: rng.Intn(vars)}
	}
	ops := []byte{'&', '|', '^', '!'}
	op := ops[rng.Intn(len(ops))]
	e := &expr{op: op, lhs: randExpr(rng, vars, depth-1)}
	if op != '!' {
		e.rhs = randExpr(rng, vars, depth-1)
	}
	return e
}

func (e *expr) eval(a []bool) bool {
	switch e.op {
	case 'v':
		return a[e.v]
	case '&':
		return e.lhs.eval(a) && e.rhs.eval(a)
	case '|':
		return e.lhs.eval(a) || e.rhs.eval(a)
	case '^':
		return e.lhs.eval(a) != e.rhs.eval(a)
	default:
		return !e.lhs.eval(a)
	}
}

func (e *expr) build(t *testing.T, p *Pool) Node {
	t.Helper()
	var n Node
	var err error
	switch e.op {
	case 'v':
		n, err = p.Var(e.v)
	case '&':
		n, err = p.And(e.lhs.build(t, p), e.rhs.build(t, p))
	case '|':
		n, err = p.Or(e.lhs.build(t, p), e.rhs.build(t, p))
	case '^':
		n, err = p.Xor(e.lhs.build(t, p), e.rhs.build(t, p))
	default:
		n, err = p.Not(e.lhs.build(t, p))
	}
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTerminalsAndVar(t *testing.T) {
	p := New(0)
	x, err := p.Var(3)
	if err != nil {
		t.Fatal(err)
	}
	nx, err := p.NVar(3)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]bool, 4)
	if p.Eval(x, a) || !p.Eval(nx, a) {
		t.Fatalf("var semantics wrong at 0")
	}
	a[3] = true
	if !p.Eval(x, a) || p.Eval(nx, a) {
		t.Fatalf("var semantics wrong at 1")
	}
	// Hash consing: same variable twice yields the same node.
	x2, _ := p.Var(3)
	if x != x2 {
		t.Fatalf("unique table broken")
	}
	if p.String(x) == "" || p.String(True) != "1" || p.String(False) != "0" {
		t.Fatalf("String broken")
	}
}

// TestSemanticsRandom cross-checks BDD evaluation against the expression
// tree on all assignments, and canonical equality: two builds of the
// same expression give the same node.
func TestSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		vars := 2 + rng.Intn(6)
		e := randExpr(rng, vars, 4)
		p := New(0)
		n := e.build(t, p)
		n2 := e.build(t, p)
		if n != n2 {
			t.Fatalf("canonical form broken")
		}
		a := make([]bool, vars)
		for m := 0; m < 1<<vars; m++ {
			for v := 0; v < vars; v++ {
				a[v] = m&(1<<v) != 0
			}
			if p.Eval(n, a) != e.eval(a) {
				t.Fatalf("case %d: eval mismatch at %b", i, m)
			}
		}
	}
}

func TestSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		vars := 2 + rng.Intn(5)
		e := randExpr(rng, vars, 3)
		p := New(0)
		n := e.build(t, p)
		want := 0
		a := make([]bool, vars)
		for m := 0; m < 1<<vars; m++ {
			for v := 0; v < vars; v++ {
				a[v] = m&(1<<v) != 0
			}
			if e.eval(a) {
				want++
			}
		}
		if got := p.SatCount(n, vars); math.Abs(got-float64(want)) > 1e-9 {
			t.Fatalf("case %d: SatCount = %v, want %d", i, got, want)
		}
	}
}

func TestAnySat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		vars := 3 + rng.Intn(4)
		e := randExpr(rng, vars, 3)
		p := New(0)
		n := e.build(t, p)
		a, ok := p.AnySat(n, vars)
		if n == False {
			if ok {
				t.Fatalf("AnySat on False")
			}
			continue
		}
		if !ok || !p.Eval(n, a) {
			t.Fatalf("AnySat returned a non-model")
		}
	}
}

// TestMinCostSat verifies optimality against exhaustive search.
func TestMinCostSat(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 60; i++ {
		vars := 2 + rng.Intn(5)
		e := randExpr(rng, vars, 3)
		p := New(0)
		n := e.build(t, p)
		cost := make([]float64, vars)
		for v := range cost {
			cost[v] = float64(rng.Intn(5))
		}
		// Exhaustive optimum.
		best := math.Inf(1)
		a := make([]bool, vars)
		for m := 0; m < 1<<vars; m++ {
			for v := 0; v < vars; v++ {
				a[v] = m&(1<<v) != 0
			}
			if !e.eval(a) {
				continue
			}
			c := 0.0
			for v := 0; v < vars; v++ {
				if a[v] {
					c += cost[v]
				}
			}
			if c < best {
				best = c
			}
		}
		got, total, ok := p.MinCostSat(n, vars, cost)
		if math.IsInf(best, 1) {
			if ok {
				t.Fatalf("MinCostSat on UNSAT returned a model")
			}
			continue
		}
		if !ok || !p.Eval(n, got) {
			t.Fatalf("MinCostSat returned a non-model")
		}
		var check float64
		for v := 0; v < vars; v++ {
			if got[v] {
				check += cost[v]
			}
		}
		if math.Abs(total-best) > 1e-9 || math.Abs(check-best) > 1e-9 {
			t.Fatalf("case %d: MinCostSat cost %v (claims %v), optimum %v", i, check, total, best)
		}
	}
}

func TestClause(t *testing.T) {
	p := New(0)
	// (x0 ∨ ¬x2)
	n, err := p.Clause([][2]int{{0, 0}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{false, false, false}, true},
		{[]bool{false, false, true}, false},
		{[]bool{true, false, true}, true},
	}
	for _, c := range cases {
		if p.Eval(n, c.a) != c.want {
			t.Fatalf("clause at %v", c.a)
		}
	}
	empty, err := p.Clause(nil)
	if err != nil || empty != False {
		t.Fatalf("empty clause must be False")
	}
}

func TestNodeLimit(t *testing.T) {
	p := New(8) // absurdly small
	acc := True
	var err error
	for v := 0; v < 32 && err == nil; v++ {
		var x Node
		x, err = p.Var(v)
		if err == nil {
			y, yerr := p.Var((v + 7) % 32)
			if yerr != nil {
				err = yerr
				break
			}
			xy, aerr := p.Xor(x, y)
			if aerr != nil {
				err = aerr
				break
			}
			acc, err = p.And(acc, xy)
		}
	}
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("want ErrNodeLimit, got %v", err)
	}
}

func TestAndN(t *testing.T) {
	p := New(0)
	x0, _ := p.Var(0)
	x1, _ := p.Var(1)
	nx0, _ := p.NVar(0)
	n, err := p.AndN(x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Eval(n, []bool{true, true}) || p.Eval(n, []bool{true, false}) {
		t.Fatalf("AndN semantics")
	}
	n, err = p.AndN(x0, nx0)
	if err != nil || n != False {
		t.Fatalf("contradiction must collapse to False")
	}
}
