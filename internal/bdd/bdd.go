// Package bdd implements reduced ordered binary decision diagrams with
// the operations needed by the BDD-based CSC constraint solver: ite,
// conjunction/disjunction, satisfying-assignment extraction, model
// counting and minimum-cost model extraction. The paper's conclusion
// points to a BDD-based constraint satisfaction approach (Puri & Gu,
// HLSS'94) as the way the implementation area was reduced further; the
// concrete lever reproduced here is MinCostSat, which picks — among all
// satisfying phase assignments — one with the fewest excited states, a
// global optimum the greedy SAT post-pass can only approximate.
package bdd

import (
	"context"
	"errors"
	"fmt"
	"math"

	"asyncsyn/internal/synerr"
)

// Node is a BDD node reference. 0 and 1 are the terminal constants.
type Node int32

const (
	// False is the 0 terminal.
	False Node = 0
	// True is the 1 terminal.
	True Node = 1
)

type nodeData struct {
	level  int32 // variable index; terminals use a sentinel
	lo, hi Node
}

// ErrNodeLimit is returned when an operation would exceed the pool's
// node budget; callers fall back to the SAT engine.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Pool owns the node table and operation caches.
type Pool struct {
	nodes  []nodeData
	unique map[nodeData]Node
	iteC   map[[3]Node]Node
	limit  int

	ctx   context.Context
	polls int
}

const termLevel = int32(1) << 30

// New returns a pool bounded to limit nodes (0 means one million).
func New(limit int) *Pool {
	if limit == 0 {
		limit = 1 << 20
	}
	p := &Pool{
		unique: make(map[nodeData]Node),
		iteC:   make(map[[3]Node]Node),
		limit:  limit,
	}
	p.nodes = append(p.nodes,
		nodeData{level: termLevel}, // False
		nodeData{level: termLevel}, // True
	)
	return p
}

// Size returns the number of live nodes in the pool.
func (p *Pool) Size() int { return len(p.nodes) }

func (p *Pool) level(n Node) int32 { return p.nodes[n].level }

// SetContext attaches a cancellation context to the pool: every BDD
// operation funnels through mk, which polls it periodically, so a long
// apply/conjunction chain stops promptly (with an error matching
// synerr.ErrCanceled) when the synthesis run is canceled.
func (p *Pool) SetContext(ctx context.Context) { p.ctx = ctx }

func (p *Pool) mk(level int32, lo, hi Node) (Node, error) {
	if p.ctx != nil {
		p.polls++
		if p.polls&4095 == 0 {
			if err := p.ctx.Err(); err != nil {
				return 0, synerr.Canceled(err)
			}
		}
	}
	if lo == hi {
		return lo, nil
	}
	key := nodeData{level: level, lo: lo, hi: hi}
	if n, ok := p.unique[key]; ok {
		return n, nil
	}
	if len(p.nodes) >= p.limit {
		return 0, ErrNodeLimit
	}
	n := Node(len(p.nodes))
	p.nodes = append(p.nodes, key)
	p.unique[key] = n
	return n, nil
}

// Var returns the BDD of variable v.
func (p *Pool) Var(v int) (Node, error) {
	return p.mk(int32(v), False, True)
}

// NVar returns the BDD of ¬v.
func (p *Pool) NVar(v int) (Node, error) {
	return p.mk(int32(v), True, False)
}

// Ite computes if-then-else(f, g, h).
func (p *Pool) Ite(f, g, h Node) (Node, error) {
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := [3]Node{f, g, h}
	if n, ok := p.iteC[key]; ok {
		return n, nil
	}
	top := p.level(f)
	if l := p.level(g); l < top {
		top = l
	}
	if l := p.level(h); l < top {
		top = l
	}
	cof := func(n Node, branch bool) Node {
		if p.level(n) != top {
			return n
		}
		if branch {
			return p.nodes[n].hi
		}
		return p.nodes[n].lo
	}
	hiRes, err := p.Ite(cof(f, true), cof(g, true), cof(h, true))
	if err != nil {
		return 0, err
	}
	loRes, err := p.Ite(cof(f, false), cof(g, false), cof(h, false))
	if err != nil {
		return 0, err
	}
	n, err := p.mk(top, loRes, hiRes)
	if err != nil {
		return 0, err
	}
	p.iteC[key] = n
	return n, nil
}

// And computes f ∧ g.
func (p *Pool) And(f, g Node) (Node, error) { return p.Ite(f, g, False) }

// Or computes f ∨ g.
func (p *Pool) Or(f, g Node) (Node, error) { return p.Ite(f, True, g) }

// Not computes ¬f.
func (p *Pool) Not(f Node) (Node, error) { return p.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (p *Pool) Xor(f, g Node) (Node, error) {
	ng, err := p.Not(g)
	if err != nil {
		return 0, err
	}
	return p.Ite(f, ng, g)
}

// AndN conjoins a list of functions.
func (p *Pool) AndN(fs ...Node) (Node, error) {
	acc := True
	for _, f := range fs {
		var err error
		acc, err = p.And(acc, f)
		if err != nil {
			return 0, err
		}
		if acc == False {
			return False, nil
		}
	}
	return acc, nil
}

// Eval evaluates f under a full assignment (indexed by variable).
func (p *Pool) Eval(f Node, assign []bool) bool {
	for f != True && f != False {
		nd := p.nodes[f]
		if assign[nd.level] {
			f = nd.hi
		} else {
			f = nd.lo
		}
	}
	return f == True
}

// SatCount returns the model count of f over variables 0..numVars-1.
func (p *Pool) SatCount(f Node, numVars int) float64 {
	memo := make(map[Node]float64)
	var frac func(n Node) float64 // fraction of assignments satisfying n
	frac = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := p.nodes[n]
		c := 0.5*frac(nd.lo) + 0.5*frac(nd.hi)
		memo[n] = c
		return c
	}
	return frac(f) * math.Pow(2, float64(numVars))
}

// AnySat returns one satisfying assignment over numVars variables
// (unconstrained variables default to false). ok is false for the False
// function.
func (p *Pool) AnySat(f Node, numVars int) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, numVars)
	for f != True {
		nd := p.nodes[f]
		if nd.lo != False {
			f = nd.lo
		} else {
			assign[nd.level] = true
			f = nd.hi
		}
	}
	return assign, true
}

// MinCostSat returns a satisfying assignment minimising the total cost
// of true variables (cost[v] ≥ 0; variables beyond len(cost) cost 0).
// Unconstrained variables are set false. This is a linear-time dynamic
// program over the BDD: the global optimum, not a greedy approximation.
func (p *Pool) MinCostSat(f Node, numVars int, cost []float64) (assign []bool, total float64, ok bool) {
	if f == False {
		return nil, 0, false
	}
	costOf := func(v int32) float64 {
		if int(v) < len(cost) {
			return cost[v]
		}
		return 0
	}
	type entry struct {
		cost float64
		hi   bool
	}
	memo := make(map[Node]entry)
	var best func(n Node) float64
	best = func(n Node) float64 {
		switch n {
		case False:
			return math.Inf(1)
		case True:
			return 0
		}
		if e, ok := memo[n]; ok {
			return e.cost
		}
		nd := p.nodes[n]
		lo := best(nd.lo)
		hi := best(nd.hi) + costOf(nd.level)
		e := entry{cost: lo, hi: false}
		if hi < lo {
			e = entry{cost: hi, hi: true}
		}
		memo[n] = e
		return e.cost
	}
	total = best(f)
	assign = make([]bool, numVars)
	for f != True {
		e := memo[f]
		nd := p.nodes[f]
		if e.hi {
			assign[nd.level] = true
			f = nd.hi
		} else {
			f = nd.lo
		}
	}
	return assign, total, true
}

// Clause builds the BDD of a disjunction of literals given as
// (variable, negated) pairs.
func (p *Pool) Clause(lits [][2]int) (Node, error) {
	acc := False
	for _, l := range lits {
		var lit Node
		var err error
		if l[1] != 0 {
			lit, err = p.NVar(l[0])
		} else {
			lit, err = p.Var(l[0])
		}
		if err != nil {
			return 0, err
		}
		acc, err = p.Or(acc, lit)
		if err != nil {
			return 0, err
		}
	}
	return acc, nil
}

// String renders a small BDD for debugging.
func (p *Pool) String(f Node) string {
	if f == True {
		return "1"
	}
	if f == False {
		return "0"
	}
	nd := p.nodes[f]
	return fmt.Sprintf("(x%d ? %s : %s)", nd.level, p.String(nd.hi), p.String(nd.lo))
}
