package synerr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestClassMappings pins the complete error→class→HTTP-status and
// →exit-code tables shared by the daemon (internal/server) and the CLI
// (cmd/modsyn). Changing any row is a wire/interface break: HTTP
// clients dispatch on the status codes and scripts on the exit codes.
func TestClassMappings(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		class  Class
		status int
		exit   int
	}{
		{"nil", nil, ClassOK, http.StatusOK, 0},
		{"parse", Parse(errors.New("line 3: bad token")), ClassParse, http.StatusBadRequest, 2},
		{"parse-sentinel", ErrParse, ClassParse, http.StatusBadRequest, 2},
		{"timeout", Canceled(context.DeadlineExceeded), ClassTimeout, http.StatusRequestTimeout, 3},
		{"canceled", Canceled(context.Canceled), ClassCanceled, StatusClientClosed, 3},
		{"canceled-bare", ErrCanceled, ClassCanceled, StatusClientClosed, 3},
		{"backtrack-limit", ErrBacktrackLimit, ClassUnsolvable, http.StatusUnprocessableEntity, 4},
		{"state-limit", ErrStateLimit, ClassUnsolvable, http.StatusUnprocessableEntity, 4},
		{"module-unsolvable", ErrModuleUnsolvable, ClassUnsolvable, http.StatusUnprocessableEntity, 4},
		{"conflicts-persist", ErrConflictsPersist, ClassUnsolvable, http.StatusUnprocessableEntity, 4},
		{"internal", errors.New("boom"), ClassInternal, http.StatusInternalServerError, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassOf(tc.err); got != tc.class {
				t.Errorf("ClassOf(%v) = %v, want %v", tc.err, got, tc.class)
			}
			if got := tc.class.HTTPStatus(); got != tc.status {
				t.Errorf("%v.HTTPStatus() = %d, want %d", tc.class, got, tc.status)
			}
			if got := tc.class.ExitCode(); got != tc.exit {
				t.Errorf("%v.ExitCode() = %d, want %d", tc.class, got, tc.exit)
			}
		})
	}
}

// TestClassOfWrapped asserts classification survives fmt.Errorf %w
// wrapping, the way pipeline stages report errors.
func TestClassOfWrapped(t *testing.T) {
	cases := []struct {
		err   error
		class Class
	}{
		{fmt.Errorf("stage csc: %w", ErrBacktrackLimit), ClassUnsolvable},
		{fmt.Errorf("stage elaborate: %w", fmt.Errorf("inner: %w", ErrStateLimit)), ClassUnsolvable},
		{fmt.Errorf("stage logic: %w", Canceled(context.DeadlineExceeded)), ClassTimeout},
		{fmt.Errorf("request body: %w", Parse(errors.New("eof"))), ClassParse},
	}
	for _, tc := range cases {
		if got := ClassOf(tc.err); got != tc.class {
			t.Errorf("ClassOf(%v) = %v, want %v", tc.err, got, tc.class)
		}
	}
}

// TestParseWrap pins that Parse preserves the cause for errors.As and
// returns nil on nil.
func TestParseWrap(t *testing.T) {
	if Parse(nil) != nil {
		t.Fatal("Parse(nil) != nil")
	}
	cause := errors.New("line 7: unexpected token")
	err := Parse(cause)
	if !errors.Is(err, ErrParse) {
		t.Fatal("Parse result does not match ErrParse")
	}
	if !errors.Is(err, cause) {
		t.Fatal("Parse result does not unwrap to its cause")
	}
	if want := ErrParse.Error() + ": " + cause.Error(); err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// TestClassStrings pins the wire names used in HTTP error bodies.
func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassOK: "ok", ClassParse: "parse", ClassTimeout: "timeout",
		ClassCanceled: "canceled", ClassUnsolvable: "unsolvable",
		ClassInternal: "internal",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
