package synerr

import (
	"context"
	"errors"
	"net/http"
)

// ErrParse reports an STG specification that failed to parse or
// validate. The facade wraps every parser and validation error with it
// (see Parse), so transports classify invalid input uniformly: the
// daemon answers 400, the CLI exits 2.
var ErrParse = errors.New("invalid STG specification")

// parseError adapts an arbitrary parser error into the taxonomy: it
// matches ErrParse via Is and unwraps to the cause, so callers can
// still reach the concrete stg.ParseError (line numbers) underneath.
type parseError struct{ cause error }

func (e *parseError) Error() string {
	if e.cause == nil {
		return ErrParse.Error()
	}
	return ErrParse.Error() + ": " + e.cause.Error()
}

func (e *parseError) Is(target error) bool { return target == ErrParse }

func (e *parseError) Unwrap() error { return e.cause }

// Parse wraps a parser or validation error so the result matches
// ErrParse and the original cause. A nil cause returns nil.
func Parse(cause error) error {
	if cause == nil {
		return nil
	}
	return &parseError{cause: cause}
}

// Class is the coarse failure classification shared by every transport:
// the HTTP server maps a Class to a status code, the CLI to an exit
// code. It deliberately has fewer values than the sentinel taxonomy —
// transports care about who is at fault (the input, the deadline, the
// caller, the problem, the implementation), not which pipeline stage
// reported it.
type Class int

const (
	// ClassOK is a completed synthesis.
	ClassOK Class = iota
	// ClassParse is invalid input: the STG failed to parse or validate,
	// or the request options were malformed.
	ClassParse
	// ClassTimeout is a run stopped by an expired deadline
	// (Options.Timeout or a context deadline).
	ClassTimeout
	// ClassCanceled is a run stopped by explicit caller cancellation
	// (context canceled without a deadline having expired).
	ClassCanceled
	// ClassUnsolvable groups the resource/solvability failures: SAT
	// backtrack budget exhausted, state limit exceeded, modular graph
	// unsolvable, CSC conflicts persisting — the specification was
	// understood but no circuit was produced within the configured
	// budgets.
	ClassUnsolvable
	// ClassInternal is everything else: an unexpected failure of the
	// implementation.
	ClassInternal
)

// String returns the class's stable wire name (used in HTTP error
// bodies and logs).
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassParse:
		return "parse"
	case ClassTimeout:
		return "timeout"
	case ClassCanceled:
		return "canceled"
	case ClassUnsolvable:
		return "unsolvable"
	}
	return "internal"
}

// ClassOf classifies an error from the synthesis facade (or nil).
// Cancellation splits on the underlying context error: a deadline that
// expired is ClassTimeout, an explicit cancel is ClassCanceled.
func ClassOf(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, ErrParse):
		return ClassParse
	case errors.Is(err, ErrCanceled):
		if errors.Is(err, context.DeadlineExceeded) {
			return ClassTimeout
		}
		return ClassCanceled
	case errors.Is(err, ErrBacktrackLimit),
		errors.Is(err, ErrStateLimit),
		errors.Is(err, ErrModuleUnsolvable),
		errors.Is(err, ErrConflictsPersist):
		return ClassUnsolvable
	}
	return ClassInternal
}

// StatusClientClosed is the nginx-style non-standard status the daemon
// records when the client went away before the response was written.
const StatusClientClosed = 499

// HTTPStatus maps the class to the daemon's response status code.
func (c Class) HTTPStatus() int {
	switch c {
	case ClassOK:
		return http.StatusOK
	case ClassParse:
		return http.StatusBadRequest
	case ClassTimeout:
		return http.StatusRequestTimeout
	case ClassCanceled:
		return StatusClientClosed
	case ClassUnsolvable:
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// ExitCode maps the class to cmd/modsyn's process exit code:
// 0 = success, 2 = parse/usage, 3 = timeout (the CLI's only
// cancellation source), 4 = unsolvable/budget, 1 = internal.
func (c Class) ExitCode() int {
	switch c {
	case ClassOK:
		return 0
	case ClassParse:
		return 2
	case ClassTimeout, ClassCanceled:
		return 3
	case ClassUnsolvable:
		return 4
	}
	return 1
}
