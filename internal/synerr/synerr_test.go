package synerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCanceledMatchesBothSentinels(t *testing.T) {
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("Canceled does not match ErrCanceled")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Canceled does not match its cause")
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("Canceled matches an unrelated context error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("Error() = %q", err)
	}
}

func TestWrappedSentinelsSurviveFmtErrorf(t *testing.T) {
	base := fmt.Errorf("csc: direct solve: %w", ErrBacktrackLimit)
	outer := fmt.Errorf("stage csc: %w", base)
	if !errors.Is(outer, ErrBacktrackLimit) {
		t.Errorf("double-wrapped sentinel lost")
	}
	both := fmt.Errorf("output %q: %w: %w", "y", ErrModuleUnsolvable, base)
	if !errors.Is(both, ErrModuleUnsolvable) || !errors.Is(both, ErrBacktrackLimit) {
		t.Errorf("multi-%%w wrapping lost a sentinel")
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	all := []error{ErrCanceled, ErrBacktrackLimit, ErrStateLimit, ErrModuleUnsolvable, ErrConflictsPersist}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel identity broken: %v vs %v", a, b)
			}
		}
	}
}
