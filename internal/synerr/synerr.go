// Package synerr defines the synthesis error taxonomy. Every layer of
// the pipeline reports failure through one of these sentinel errors
// (wrapped with context via fmt.Errorf's %w), so callers dispatch with
// errors.Is instead of threading abort booleans through every return
// value or matching message strings.
package synerr

import "errors"

var (
	// ErrCanceled reports that the run's context was canceled or its
	// deadline expired before synthesis finished. Errors produced by
	// Canceled also match the underlying context error
	// (context.Canceled or context.DeadlineExceeded).
	ErrCanceled = errors.New("synthesis canceled")

	// ErrBacktrackLimit reports that a SAT search exhausted its
	// backtrack (or flip) budget before reaching a verdict — the
	// outcome the paper's Table 1 prints as "SAT Backtrack Limit". The
	// facade maps it to Circuit.Aborted.
	ErrBacktrackLimit = errors.New("SAT backtrack limit exhausted")

	// ErrStateLimit reports that state graph generation exceeded its
	// exploration cap (Options.MaxStates).
	ErrStateLimit = errors.New("state graph exceeds the state limit")

	// ErrModuleUnsolvable reports that a per-output modular graph
	// admits no state-signal assignment, even incrementally — the case
	// the widening fallback chain (widenNonInputs → widenAll) exists
	// to repair.
	ErrModuleUnsolvable = errors.New("modular graph unsolvable")

	// ErrConflictsPersist reports that CSC conflicts survived every
	// expansion-refinement round (Options.MaxExpandIters).
	ErrConflictsPersist = errors.New("CSC conflicts persist after expansion refinement")
)

// canceledError adapts a context error into the taxonomy: it matches
// ErrCanceled via Is and unwraps to the context's own error so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded keep
// working.
type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	if e.cause == nil {
		return ErrCanceled.Error()
	}
	return ErrCanceled.Error() + ": " + e.cause.Error()
}

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// Canceled wraps a context error (ctx.Err()) so the result matches both
// ErrCanceled and the original cause.
func Canceled(cause error) error { return &canceledError{cause: cause} }
