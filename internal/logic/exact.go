package logic

import (
	"context"
	"fmt"
	"sort"

	"asyncsyn/internal/synerr"
)

// MinimizeExact computes a minimum-literal prime cover of the ON-set —
// the exact counterpart of Minimize, playing the role of espresso's
// exact strategy (-S1) in the paper's area measurements. It enumerates
// all primes of ON∪DC (maximal cubes avoiding the OFF minterms) and
// solves the covering problem by branch and bound with essential-prime
// extraction and dominance reductions. Exponential in the worst case;
// intended for the function sizes state-graph synthesis produces
// (guarded by MaxPrimes).
func MinimizeExact(spec Spec, opt ExactOptions) (Cover, error) {
	return MinimizeExactContext(context.Background(), spec, opt)
}

// MinimizeExactContext is MinimizeExact under a cancellation context,
// polled between phases and periodically inside the branch-and-bound
// search so a canceled run abandons the covering problem promptly (with
// an error matching synerr.ErrCanceled).
func MinimizeExactContext(ctx context.Context, spec Spec, opt ExactOptions) (Cover, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxPrimes == 0 {
		opt.MaxPrimes = 20000
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 200000
	}
	if len(spec.On) == 0 {
		return Cover{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, synerr.Canceled(err)
	}

	primes, err := AllPrimes(spec.NumVars, spec.Off, opt.MaxPrimes)
	if err != nil {
		return nil, err
	}
	// Keep only primes covering at least one ON minterm.
	var useful Cover
	var covers [][]int
	for _, p := range primes {
		var rows []int
		for mi, m := range spec.On {
			if p.CoversMinterm(m) {
				rows = append(rows, mi)
			}
		}
		if len(rows) > 0 {
			useful = append(useful, p)
			covers = append(covers, rows)
		}
	}
	sel, err := coverExact(ctx, useful, covers, len(spec.On), opt.MaxNodes)
	if err != nil {
		return nil, err
	}
	out := make(Cover, 0, len(sel))
	for _, i := range sel {
		out = append(out, useful[i])
	}
	return out, nil
}

// ExactOptions bounds the exact minimizer.
type ExactOptions struct {
	MaxPrimes int // prime enumeration cap (default 20,000)
	MaxNodes  int // branch-and-bound node cap (default 200,000)
}

// AllPrimes enumerates every prime implicant of the function whose
// OFF-set is the given minterm list (ON∪DC = everything else): the
// maximal cubes intersecting no OFF minterm. It uses iterated sharping:
// start from the universal cube; for every OFF minterm, split each cube
// containing it into the n cubes that exclude it; drop contained cubes.
func AllPrimes(numVars int, off []uint64, maxPrimes int) (Cover, error) {
	cubes := Cover{NewCube(numVars)}
	for _, o := range off {
		var next Cover
		for _, c := range cubes {
			if !c.CoversMinterm(o) {
				next = append(next, c)
				continue
			}
			// Split c: for each free-or-agreeing variable, force the
			// polarity opposite to o's bit.
			for v := 0; v < numVars; v++ {
				if c.Var(v) != VDash {
					continue // literal already set; it must agree with o
				}
				child := c.Clone()
				if o&(1<<v) != 0 {
					child.SetVar(v, VFalse)
				} else {
					child.SetVar(v, VTrue)
				}
				next = append(next, child)
			}
		}
		cubes = removeContained(next)
		if len(cubes) > maxPrimes {
			return nil, fmt.Errorf("logic: more than %d primes", maxPrimes)
		}
	}
	return cubes, nil
}

// removeContained deletes cubes contained in another cube of the list.
func removeContained(cs Cover) Cover {
	// Sort by ascending literal count: containers come first.
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Literals() < cs[j].Literals() })
	var out Cover
	for _, c := range cs {
		kept := true
		for _, o := range out {
			if o.Contains(c) {
				kept = false
				break
			}
		}
		if kept {
			out = append(out, c)
		}
	}
	return out
}

// coverExact solves the minimum-literal set cover: pick prime indices
// covering every ON row. Branch and bound with essentials and row/column
// dominance.
func coverExact(ctx context.Context, primes Cover, covers [][]int, rows int, maxNodes int) ([]int, error) {
	costs := make([]int, len(primes))
	for i, p := range primes {
		costs[i] = p.Literals()
		if costs[i] == 0 {
			costs[i] = 1 // the universal cube still costs a connection
		}
	}
	rowsOf := covers
	colsOf := make([][]int, rows)
	for ci, rs := range rowsOf {
		for _, r := range rs {
			colsOf[r] = append(colsOf[r], ci)
		}
	}
	for r := 0; r < rows; r++ {
		if len(colsOf[r]) == 0 {
			return nil, fmt.Errorf("logic: ON minterm %d not covered by any prime", r)
		}
	}

	best := []int(nil)
	bestCost := 1 << 30
	nodes := 0

	var solve func(uncovered map[int]bool, chosen []int, cost int) error
	solve = func(uncovered map[int]bool, chosen []int, cost int) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("logic: exact covering exceeded %d nodes", maxNodes)
		}
		if nodes&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return synerr.Canceled(err)
			}
		}
		if cost >= bestCost {
			return nil
		}
		if len(uncovered) == 0 {
			best = append([]int(nil), chosen...)
			bestCost = cost
			return nil
		}
		// Lower bound: independent rows (greedy) each need their cheapest column.
		lb := 0
		used := make(map[int]bool)
		for r := range uncovered {
			indep := true
			for _, c := range colsOf[r] {
				if used[c] {
					indep = false
					break
				}
			}
			if !indep {
				continue
			}
			cheapest := 1 << 30
			for _, c := range colsOf[r] {
				used[c] = true
				if costs[c] < cheapest {
					cheapest = costs[c]
				}
			}
			lb += cheapest
		}
		if cost+lb >= bestCost {
			return nil
		}
		// Branch on the most constrained uncovered row.
		br, brDeg := -1, 1<<30
		for r := range uncovered {
			if len(colsOf[r]) < brDeg {
				br, brDeg = r, len(colsOf[r])
			}
		}
		// Try columns covering it, cheapest-per-row first.
		cols := append([]int(nil), colsOf[br]...)
		sort.Slice(cols, func(a, b int) bool {
			ca := float64(costs[cols[a]]) / float64(len(rowsOf[cols[a]]))
			cb := float64(costs[cols[b]]) / float64(len(rowsOf[cols[b]]))
			if ca != cb {
				return ca < cb
			}
			return cols[a] < cols[b]
		})
		for _, c := range cols {
			nu := make(map[int]bool, len(uncovered))
			for r := range uncovered {
				nu[r] = true
			}
			for _, r := range rowsOf[c] {
				delete(nu, r)
			}
			if err := solve(nu, append(chosen, c), cost+costs[c]); err != nil {
				return err
			}
		}
		return nil
	}

	uncovered := make(map[int]bool, rows)
	for r := 0; r < rows; r++ {
		uncovered[r] = true
	}
	if err := solve(uncovered, nil, 0); err != nil {
		return nil, err
	}
	sort.Ints(best)
	return best, nil
}
