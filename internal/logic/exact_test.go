package logic

import (
	"math/rand"
	"testing"
)

func TestAllPrimesSmall(t *testing.T) {
	// OFF = {11} over 2 vars: primes of the rest are a' and b'.
	primes, err := AllPrimes(2, []uint64{0b11}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 2 {
		t.Fatalf("primes = %v", primes)
	}
	for _, p := range primes {
		if p.Literals() != 1 || p.CoversMinterm(0b11) {
			t.Fatalf("bad prime %v", p)
		}
	}
	// No OFF minterms: single universal prime.
	primes, err = AllPrimes(3, nil, 100)
	if err != nil || len(primes) != 1 || primes[0].Literals() != 0 {
		t.Fatalf("tautology primes = %v (%v)", primes, err)
	}
}

// TestAllPrimesComplete: on random functions, the prime list must (a)
// avoid every OFF minterm, (b) cover every non-OFF minterm, and (c)
// contain only maximal cubes.
func TestAllPrimesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(4)
		var off []uint64
		for m := uint64(0); m < 1<<n; m++ {
			if rng.Intn(3) == 0 {
				off = append(off, m)
			}
		}
		primes, err := AllPrimes(n, off, 10000)
		if err != nil {
			t.Fatal(err)
		}
		offSet := make(map[uint64]bool)
		for _, m := range off {
			offSet[m] = true
		}
		cov := Cover(primes)
		for m := uint64(0); m < 1<<n; m++ {
			if offSet[m] {
				if cov.CoversMinterm(m) {
					t.Fatalf("case %d: prime covers OFF minterm %b", i, m)
				}
			} else if !cov.CoversMinterm(m) {
				t.Fatalf("case %d: non-OFF minterm %b uncovered by primes", i, m)
			}
		}
		offCover := make(Cover, len(off))
		for j, m := range off {
			offCover[j] = FromMinterm(n, m)
		}
		for _, p := range primes {
			for v := 0; v < n; v++ {
				val := p.Var(v)
				if val != VTrue && val != VFalse {
					continue
				}
				q := p.Clone()
				q.SetVar(v, VDash)
				if !offCover.IntersectsAny(q) {
					t.Fatalf("case %d: prime %v not maximal at var %d", i, p, v)
				}
			}
		}
	}
}

func TestMinimizeExactKnown(t *testing.T) {
	// XOR: exact cover = 2 cubes, 4 literals.
	spec := Spec{NumVars: 2, On: []uint64{0b01, 0b10}, Off: []uint64{0b00, 0b11}}
	c, err := MinimizeExact(spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c.Literals() != 4 {
		t.Fatalf("xor exact: %v", c)
	}
	if bad := Verify(c, spec); len(bad) != 0 {
		t.Fatalf("exact cover violates contract: %v", bad)
	}
	// Empty ON-set.
	c, err = MinimizeExact(Spec{NumVars: 3}, ExactOptions{})
	if err != nil || len(c) != 0 {
		t.Fatalf("empty: %v %v", c, err)
	}
}

// TestExactNeverWorseThanHeuristic: the exact minimizer's literal count
// lower-bounds the ESPRESSO loop on random functions, and both satisfy
// the cover contract.
func TestExactNeverWorseThanHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	worse := 0
	for i := 0; i < 120; i++ {
		n := 3 + rng.Intn(3)
		var spec Spec
		spec.NumVars = n
		for m := uint64(0); m < 1<<n; m++ {
			switch rng.Intn(3) {
			case 0:
				spec.On = append(spec.On, m)
			case 1:
				spec.Off = append(spec.Off, m)
			}
		}
		h, err := Minimize(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := MinimizeExact(spec, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if bad := Verify(e, spec); len(bad) != 0 {
			t.Fatalf("case %d: exact cover bad: %v", i, bad)
		}
		if e.Literals() > h.Literals() {
			t.Fatalf("case %d: exact %d > heuristic %d literals", i, e.Literals(), h.Literals())
		}
		if e.Literals() < h.Literals() {
			worse++
		}
	}
	t.Logf("heuristic suboptimal on %d/120 random functions", worse)
}

func TestExactLimits(t *testing.T) {
	// Prime cap.
	var off []uint64
	for m := uint64(0); m < 1<<8; m += 3 {
		off = append(off, m)
	}
	if _, err := AllPrimes(8, off, 4); err == nil {
		t.Fatalf("prime cap not enforced")
	}
	spec := Spec{NumVars: 8, On: []uint64{1}, Off: off}
	if _, err := MinimizeExact(spec, ExactOptions{MaxPrimes: 4}); err == nil {
		t.Fatalf("MinimizeExact must propagate the cap")
	}
}
