// Package logic implements two-level logic on the positional cube
// notation and an ESPRESSO-style EXPAND / IRREDUNDANT / REDUCE loop that
// produces prime-irredundant single-output covers, as the paper's area
// evaluation does with `espresso -Dso -S1`. Function ON/OFF sets arrive
// as explicit minterm lists extracted from state graphs; everything else
// is a don't-care.
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// Cube is a product term over n variables in positional cube notation:
// two bits per variable — 01 the complemented literal (variable must be
// 0), 10 the true literal, 11 no literal (don't care), 00 empty.
type Cube struct {
	n     int
	words []uint64
}

const varsPerWord = 32

// NewCube returns the universal cube (no literals) over n variables.
func NewCube(n int) Cube {
	w := make([]uint64, (n+varsPerWord-1)/varsPerWord)
	for i := range w {
		w[i] = ^uint64(0)
	}
	if r := n % varsPerWord; r != 0 {
		w[len(w)-1] = (uint64(1) << (2 * r)) - 1
	}
	return Cube{n: n, words: w}
}

// FromMinterm returns the cube of a single minterm, bit i of m being the
// value of variable i.
func FromMinterm(n int, m uint64) Cube {
	c := NewCube(n)
	for v := 0; v < n; v++ {
		if m&(1<<v) != 0 {
			c.SetVar(v, VTrue)
		} else {
			c.SetVar(v, VFalse)
		}
	}
	return c
}

// VarValue is the per-variable content of a cube.
type VarValue uint8

const (
	// VEmpty marks an impossible requirement (both polarities excluded).
	VEmpty VarValue = iota
	// VFalse requires the variable to be 0 (complemented literal).
	VFalse
	// VTrue requires the variable to be 1 (true literal).
	VTrue
	// VDash places no requirement (no literal).
	VDash
)

// N returns the number of variables.
func (c Cube) N() int { return c.n }

// Var returns the value of variable v.
func (c Cube) Var(v int) VarValue {
	w, s := v/varsPerWord, uint(2*(v%varsPerWord))
	return VarValue((c.words[w] >> s) & 3)
}

// SetVar sets variable v in place.
func (c Cube) SetVar(v int, val VarValue) {
	w, s := v/varsPerWord, uint(2*(v%varsPerWord))
	c.words[w] = c.words[w]&^(3<<s) | uint64(val)<<s
}

// Clone returns a copy of c.
func (c Cube) Clone() Cube {
	return Cube{n: c.n, words: append([]uint64(nil), c.words...)}
}

// Equal reports cube equality.
func (c Cube) Equal(o Cube) bool {
	if c.n != o.n {
		return false
	}
	for i := range c.words {
		if c.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Contains reports whether c ⊇ o (every minterm of o is in c).
func (c Cube) Contains(o Cube) bool {
	for i := range c.words {
		if o.words[i]&^c.words[i] != 0 {
			return false
		}
	}
	return true
}

// emptyPairs returns a mask with 01 set in each variable slot whose two
// bits in w are 00.
func emptyPairs(w uint64) uint64 {
	lo := w & 0x5555555555555555
	hi := (w >> 1) & 0x5555555555555555
	return ^(lo | hi) & 0x5555555555555555
}

// Intersects reports whether c and o share a minterm.
func (c Cube) Intersects(o Cube) bool {
	for i, w := range c.words {
		and := w & o.words[i]
		if emptyPairs(and)&validMask(c.n, i) != 0 {
			return false
		}
	}
	return true
}

// validMask returns the 01-per-variable mask restricted to variables that
// exist in word i for an n-variable cube.
func validMask(n, word int) uint64 {
	lo := word * varsPerWord
	cnt := n - lo
	if cnt >= varsPerWord {
		return 0x5555555555555555
	}
	if cnt <= 0 {
		return 0
	}
	return (uint64(1)<<(2*cnt) - 1) & 0x5555555555555555
}

// Intersection returns c ∩ o and whether it is non-empty.
func (c Cube) Intersection(o Cube) (Cube, bool) {
	out := Cube{n: c.n, words: make([]uint64, len(c.words))}
	for i := range c.words {
		out.words[i] = c.words[i] & o.words[i]
		if emptyPairs(out.words[i])&validMask(c.n, i) != 0 {
			return Cube{}, false
		}
	}
	return out, true
}

// Distance counts variables where c and o have disjoint requirements.
func (c Cube) Distance(o Cube) int {
	d := 0
	for i := range c.words {
		and := c.words[i] & o.words[i]
		d += bits.OnesCount64(emptyPairs(and) & validMask(c.n, i))
	}
	return d
}

// ConflictVars returns the variables at which c and o disagree (where
// their intersection is empty).
func (c Cube) ConflictVars(o Cube) []int {
	return c.AppendConflictVars(o, nil)
}

// AppendConflictVars appends the conflicting variables to dst and
// returns it, letting hot callers (the EXPAND blocking matrix) reuse
// one buffer across cubes instead of allocating per pair.
func (c Cube) AppendConflictVars(o Cube, dst []int) []int {
	for i := range c.words {
		m := emptyPairs(c.words[i]&o.words[i]) & validMask(c.n, i)
		for m != 0 {
			b := bits.TrailingZeros64(m)
			dst = append(dst, i*varsPerWord+b/2)
			m &= m - 1
		}
	}
	return dst
}

// Supercube returns the smallest cube containing both c and o.
func (c Cube) Supercube(o Cube) Cube {
	out := Cube{n: c.n, words: make([]uint64, len(c.words))}
	for i := range c.words {
		out.words[i] = c.words[i] | o.words[i]
	}
	return out
}

// Literals counts the literals of c (variables not don't-care).
func (c Cube) Literals() int {
	lits := 0
	for v := 0; v < c.n; v++ {
		if val := c.Var(v); val == VTrue || val == VFalse {
			lits++
		}
	}
	return lits
}

// CoversMinterm reports whether minterm m (bit per variable) lies in c.
func (c Cube) CoversMinterm(m uint64) bool {
	for v := 0; v < c.n; v++ {
		bit := (m >> v) & 1
		switch c.Var(v) {
		case VFalse:
			if bit != 0 {
				return false
			}
		case VTrue:
			if bit != 1 {
				return false
			}
		case VEmpty:
			return false
		}
	}
	return true
}

// String renders the cube in PLA-style notation: one character per
// variable, '0', '1', '-', or '∅'.
func (c Cube) String() string {
	var b strings.Builder
	for v := 0; v < c.n; v++ {
		switch c.Var(v) {
		case VFalse:
			b.WriteByte('0')
		case VTrue:
			b.WriteByte('1')
		case VDash:
			b.WriteByte('-')
		default:
			b.WriteByte('@')
		}
	}
	return b.String()
}

// Cover is a sum of product terms.
type Cover []Cube

// Literals counts all literals in the cover (the paper's area metric:
// literal count of the unfactored prime-irredundant cover).
func (f Cover) Literals() int {
	n := 0
	for _, c := range f {
		n += c.Literals()
	}
	return n
}

// CoversMinterm reports whether some cube covers m.
func (f Cover) CoversMinterm(m uint64) bool {
	for _, c := range f {
		if c.CoversMinterm(m) {
			return true
		}
	}
	return false
}

// IntersectsAny reports whether cube c intersects any cube of f.
func (f Cover) IntersectsAny(c Cube) bool {
	for _, o := range f {
		if c.Intersects(o) {
			return true
		}
	}
	return false
}

// Clone deep-copies the cover.
func (f Cover) Clone() Cover {
	out := make(Cover, len(f))
	for i, c := range f {
		out[i] = c.Clone()
	}
	return out
}

// Format renders the cover as a sum-of-products expression over the given
// variable names.
func (f Cover) Format(vars []string) string {
	if len(f) == 0 {
		return "0"
	}
	terms := make([]string, 0, len(f))
	for _, c := range f {
		var lits []string
		for v := 0; v < c.N(); v++ {
			switch c.Var(v) {
			case VTrue:
				lits = append(lits, vars[v])
			case VFalse:
				lits = append(lits, vars[v]+"'")
			}
		}
		if len(lits) == 0 {
			terms = append(terms, "1")
		} else {
			terms = append(terms, strings.Join(lits, " "))
		}
	}
	return strings.Join(terms, " + ")
}

// Eval evaluates the cover on a minterm.
func (f Cover) Eval(m uint64) bool { return f.CoversMinterm(m) }

func (f Cover) String() string {
	names := make([]string, 0)
	if len(f) > 0 {
		for v := 0; v < f[0].N(); v++ {
			names = append(names, fmt.Sprintf("x%d", v))
		}
	}
	return f.Format(names)
}
