package logic

// Tautology reports whether the cover contains every minterm, by unate
// reduction and Shannon expansion — the classic recursive check
// underlying espresso's IRREDUNDANT and complementation.
func (f Cover) Tautology() bool {
	if len(f) == 0 {
		return false
	}
	n := f[0].N()
	if n == 0 {
		return true
	}
	return tautRec(f, n)
}

func tautRec(f Cover, n int) bool {
	// A cover containing the universal cube is a tautology.
	for _, c := range f {
		allDash := true
		for v := 0; v < n && allDash; v++ {
			if c.Var(v) != VDash {
				allDash = false
			}
		}
		if allDash {
			return true
		}
	}
	if len(f) == 0 {
		return false
	}

	// Unate reduction: a variable appearing in only one polarity cannot
	// make the cover a tautology; cubes depending on it can be discarded
	// for the branch where the literal is false... more precisely, if f
	// is unate in v, f is a tautology iff the cofactor against the
	// missing polarity is (drop all cubes with a v literal).
	for v := 0; v < n; v++ {
		hasPos, hasNeg := false, false
		for _, c := range f {
			switch c.Var(v) {
			case VTrue:
				hasPos = true
			case VFalse:
				hasNeg = true
			}
		}
		if hasPos && hasNeg {
			continue
		}
		if !hasPos && !hasNeg {
			continue // v unused
		}
		// Unate in v: keep only cubes without a v literal.
		var reduced Cover
		for _, c := range f {
			if c.Var(v) == VDash {
				reduced = append(reduced, c)
			}
		}
		return tautRec(reduced, n)
	}

	// Binate: Shannon-expand on the most binate variable.
	v := mostBinate(f, n)
	if v < 0 {
		// No variable has literals at all: some cube is universal —
		// handled above; otherwise empty.
		return false
	}
	return tautRec(cofactorVar(f, v, true), n) && tautRec(cofactorVar(f, v, false), n)
}

// mostBinate picks the variable appearing in the most cubes with both
// polarities present.
func mostBinate(f Cover, n int) int {
	best, bestCount := -1, -1
	for v := 0; v < n; v++ {
		pos, neg, count := 0, 0, 0
		for _, c := range f {
			switch c.Var(v) {
			case VTrue:
				pos++
				count++
			case VFalse:
				neg++
				count++
			}
		}
		if pos > 0 && neg > 0 && count > bestCount {
			best, bestCount = v, count
		}
	}
	return best
}

// cofactorVar computes the cofactor of the cover against v=value.
func cofactorVar(f Cover, v int, value bool) Cover {
	var out Cover
	for _, c := range f {
		switch c.Var(v) {
		case VDash:
			out = append(out, c)
		case VTrue:
			if value {
				d := c.Clone()
				d.SetVar(v, VDash)
				out = append(out, d)
			}
		case VFalse:
			if !value {
				d := c.Clone()
				d.SetVar(v, VDash)
				out = append(out, d)
			}
		}
	}
	return out
}

// Complement returns a cover of ¬f over the same variables, by Shannon
// expansion with terminal cases (De Morgan on a single cube; empty and
// tautological covers). The result is not necessarily minimal; feed it
// to Minimize for a prime cover.
func (f Cover) Complement(n int) Cover {
	if len(f) == 0 {
		return Cover{NewCube(n)}
	}
	if f.Tautology() {
		return Cover{}
	}
	if len(f) == 1 {
		// De Morgan: complement of one cube = OR of complemented literals.
		var out Cover
		for v := 0; v < n; v++ {
			switch f[0].Var(v) {
			case VTrue:
				c := NewCube(n)
				c.SetVar(v, VFalse)
				out = append(out, c)
			case VFalse:
				c := NewCube(n)
				c.SetVar(v, VTrue)
				out = append(out, c)
			}
		}
		return out
	}
	v := mostBinate(f, n)
	if v < 0 {
		// All cubes have disjoint single... no binate variable: pick the
		// first variable with any literal.
		for u := 0; u < n && v < 0; u++ {
			for _, c := range f {
				if c.Var(u) != VDash {
					v = u
					break
				}
			}
		}
		if v < 0 {
			return Cover{} // universal cube present → tautology (handled)
		}
	}
	pos := cofactorVar(f, v, true).Complement(n)
	neg := cofactorVar(f, v, false).Complement(n)
	var out Cover
	for _, c := range pos {
		d := c.Clone()
		d.SetVar(v, VTrue)
		out = append(out, d)
	}
	for _, c := range neg {
		d := c.Clone()
		d.SetVar(v, VFalse)
		out = append(out, d)
	}
	return out
}

// ContainsCover reports whether g ⊆ f (every minterm of g is covered by
// f), via tautology of f cofactored against each cube of g.
func (f Cover) ContainsCover(g Cover, n int) bool {
	for _, c := range g {
		if !f.cofactorCube(c, n).Tautology() {
			// Special case: the cofactor may be empty yet c itself empty.
			return false
		}
	}
	return true
}

// cofactorCube computes the cofactor of f against cube c.
func (f Cover) cofactorCube(c Cube, n int) Cover {
	var out Cover
	for _, d := range f {
		if d.Distance(c) > 0 {
			continue
		}
		e := NewCube(n)
		for v := 0; v < n; v++ {
			if c.Var(v) == VDash {
				e.SetVar(v, d.Var(v))
			}
		}
		out = append(out, e)
	}
	return out
}
