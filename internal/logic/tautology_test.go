package logic

import (
	"math/rand"
	"testing"
)

func randomCover(rng *rand.Rand, n, maxCubes int) Cover {
	var f Cover
	for i := 0; i < 1+rng.Intn(maxCubes); i++ {
		f = append(f, randomCube(rng, n))
	}
	return f
}

func coverMinterms(f Cover, n int) map[uint64]bool {
	out := make(map[uint64]bool)
	for m := uint64(0); m < 1<<n; m++ {
		if f.CoversMinterm(m) {
			out[m] = true
		}
	}
	return out
}

func TestTautologyKnown(t *testing.T) {
	if (Cover{}).Tautology() {
		t.Fatalf("empty cover is a tautology")
	}
	if !(Cover{NewCube(3)}).Tautology() {
		t.Fatalf("universal cube not a tautology")
	}
	// x + x' is a tautology.
	a := NewCube(2)
	a.SetVar(0, VTrue)
	b := NewCube(2)
	b.SetVar(0, VFalse)
	if !(Cover{a, b}).Tautology() {
		t.Fatalf("x + x' not recognised")
	}
	// x + y is not.
	c := NewCube(2)
	c.SetVar(1, VTrue)
	if (Cover{a, c}).Tautology() {
		t.Fatalf("x + y accepted as tautology")
	}
}

func TestTautologyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(6)
		f := randomCover(rng, n, 6)
		want := len(coverMinterms(f, n)) == 1<<n
		if got := f.Tautology(); got != want {
			t.Fatalf("case %d: Tautology = %v, enumeration %v\n%v", i, got, want, f)
		}
	}
}

func TestComplementRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(5)
		f := randomCover(rng, n, 5)
		comp := f.Complement(n)
		fm := coverMinterms(f, n)
		cm := coverMinterms(comp, n)
		for m := uint64(0); m < 1<<n; m++ {
			if fm[m] == cm[m] {
				t.Fatalf("case %d: minterm %b in both or neither", i, m)
			}
		}
	}
}

func TestComplementEdges(t *testing.T) {
	if got := (Cover{}).Complement(2); len(got) != 1 || got[0].Literals() != 0 {
		t.Fatalf("complement of empty = %v", got)
	}
	if got := (Cover{NewCube(2)}).Complement(2); len(got) != 0 {
		t.Fatalf("complement of tautology = %v", got)
	}
}

func TestContainsCoverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(5)
		f := randomCover(rng, n, 5)
		g := randomCover(rng, n, 3)
		fm := coverMinterms(f, n)
		want := true
		for m := range coverMinterms(g, n) {
			if !fm[m] {
				want = false
				break
			}
		}
		if got := f.ContainsCover(g, n); got != want {
			t.Fatalf("case %d: ContainsCover = %v, want %v", i, got, want)
		}
	}
}

func TestContainsCoverSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(4)
		f := randomCover(rng, n, 4)
		if !f.ContainsCover(f, n) {
			t.Fatalf("cover does not contain itself: %v", f)
		}
	}
}
