package logic

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/synerr"
)

// Spec is a single-output incompletely specified function given by
// explicit ON and OFF minterm lists over NumVars variables; every other
// point is a don't-care. This is exactly the shape produced by state
// graph logic extraction: reachable state codes are care points,
// unreachable codes are free.
type Spec struct {
	NumVars int
	On      []uint64
	Off     []uint64
}

// Validate checks that the spec is well formed (no ON/OFF overlap, all
// minterms within range).
func (s Spec) Validate() error {
	if s.NumVars < 0 || s.NumVars > 63 {
		return fmt.Errorf("logic: %d variables out of range", s.NumVars)
	}
	limit := uint64(1) << s.NumVars
	seen := make(map[uint64]bool, len(s.On))
	for _, m := range s.On {
		if m >= limit {
			return fmt.Errorf("logic: ON minterm %d out of range", m)
		}
		seen[m] = true
	}
	for _, m := range s.Off {
		if m >= limit {
			return fmt.Errorf("logic: OFF minterm %d out of range", m)
		}
		if seen[m] {
			return fmt.Errorf("logic: minterm %d is both ON and OFF", m)
		}
	}
	return nil
}

// Options tunes Minimize.
type Options struct {
	// MaxPasses bounds the EXPAND/IRREDUNDANT/REDUCE iterations (default 8;
	// the loop stops earlier at a fixed point).
	MaxPasses int
}

// Minimize computes a prime, irredundant cover of the ON-set that avoids
// every OFF minterm, using the ESPRESSO strategy: greedy EXPAND of each
// cube against the OFF list, IRREDUNDANT set-covering over the ON
// minterms, then REDUCE + re-EXPAND passes until the literal count stops
// improving.
func Minimize(spec Spec, opt Options) (Cover, error) {
	return MinimizeContext(context.Background(), spec, opt)
}

// MinimizeContext is Minimize under a cancellation context, polled
// between EXPAND/IRREDUNDANT/REDUCE passes so a canceled synthesis run
// abandons the minimization promptly (with an error matching
// synerr.ErrCanceled).
func MinimizeContext(ctx context.Context, spec Spec, opt Options) (Cover, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 8
	}
	if len(spec.On) == 0 {
		return Cover{}, nil
	}
	// Both care sets are explicit minterm lists, so every pass below works
	// on bit-sliced column views: one membership bitset per variable over
	// the minterm index. EXPAND's blocking matrix, the greedy covering
	// counts, the primality checks, and IRREDUNDANT/REDUCE's
	// cube→minterm incidence all reduce to word-parallel AND/ANDNOT plus
	// popcounts — the same counts and tie-breaks as the row-at-a-time
	// scans, 64 minterms per operation.
	off := newMintermMatrix(spec.NumVars, spec.Off)
	on := newMintermMatrix(spec.NumVars, spec.On)

	// Initial cover: one cube per ON minterm, expanded. One scratch
	// buffer set serves every EXPAND call of this minimization (the
	// measured hot path: the blocking matrix used to be rebuilt from
	// fresh allocations for every cube of every pass).
	sc := &expandScratch{}
	mc := metrics.From(ctx)
	mc.Add(metrics.EspressoExpand, 1)
	cover := make(Cover, 0, len(spec.On))
	for _, m := range spec.On {
		cover = append(cover, expand(FromMinterm(spec.NumVars, m), off, 0, sc))
	}
	cover = irredundant(cover, on)

	best := cover
	bestLits := cover.Literals()
	for pass := 1; pass < opt.MaxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, synerr.Canceled(err)
		}
		mc.Add(metrics.EspressoReduce, 1)
		mc.Add(metrics.EspressoExpand, 1)
		reduced := reduce(cover, on)
		next := make(Cover, len(reduced))
		for i, c := range reduced {
			next[i] = expand(c, off, pass, sc)
		}
		next = irredundant(next, on)
		lits := next.Literals()
		if lits >= bestLits {
			break
		}
		best, bestLits = next, lits
		cover = next
	}
	return best, nil
}

// mintermMatrix is a bit-sliced view of a minterm list: cols[v] is the
// membership bitset of variable v over the minterm index (bit i set when
// minterm i has variable v true), full masks the valid index range.
type mintermMatrix struct {
	nvars, n, words int
	ms              []uint64
	cols            [][]uint64
	full            []uint64
}

func newMintermMatrix(nvars int, ms []uint64) *mintermMatrix {
	w := (len(ms) + 63) / 64
	m := &mintermMatrix{nvars: nvars, n: len(ms), words: w, ms: ms,
		cols: make([][]uint64, nvars), full: make([]uint64, w)}
	flat := make([]uint64, nvars*w)
	for v := range m.cols {
		m.cols[v] = flat[v*w : (v+1)*w]
	}
	for i, mt := range ms {
		m.full[i/64] |= 1 << (i % 64)
		for v := 0; v < nvars; v++ {
			if mt&(1<<v) != 0 {
				m.cols[v][i/64] |= 1 << (i % 64)
			}
		}
	}
	return m
}

// coverMask fills dst (words long) with the bitset of minterms cube c
// covers: the conjunction of the matching columns of c's literals.
func (m *mintermMatrix) coverMask(c Cube, dst []uint64) {
	copy(dst, m.full)
	for v := 0; v < m.nvars; v++ {
		switch c.Var(v) {
		case VTrue:
			for w := range dst {
				dst[w] &= m.cols[v][w]
			}
		case VFalse:
			for w := range dst {
				dst[w] &^= m.cols[v][w]
			}
		}
	}
}

// expandScratch holds the EXPAND working set so one allocation batch is
// reused across every cube of every pass of a minimization: the conflict
// columns (one OFF bitset per lowered literal, flat at word stride),
// the covered-rows bitset, and the dense keep table.
type expandScratch struct {
	lowered []int
	srcs    [][]uint64 // per lowered literal, its variable's OFF column
	flips   []uint64   // per lowered literal, ^0 when the literal is positive
	covered []uint64
	cnts    []int
	keep    []bool
}

// expand grows cube c into a prime not intersecting any OFF minterm. The
// variables kept lowered are chosen by greedy column covering of the
// blocking matrix (each OFF minterm must remain excluded by at least one
// kept literal); `rot` rotates tie-breaking so successive passes explore
// different primes. The blocking matrix is held column-wise: conflict
// column li is the bitset of OFF minterms literal lowered[li] excludes,
// so covering counts and primality checks are popcounts and word masks
// rather than per-row scans.
func expand(c Cube, off *mintermMatrix, rot int, sc *expandScratch) Cube {
	n := c.N()
	sc.lowered = sc.lowered[:0]
	for v := 0; v < n; v++ {
		if val := c.Var(v); val == VTrue || val == VFalse {
			sc.lowered = append(sc.lowered, v)
		}
	}
	lowered := sc.lowered
	L, W := len(lowered), off.words
	// The conflict column of literal li — the OFF minterms it excludes —
	// is never materialized: word w is (srcs[li][w]^flips[li]) masked to
	// the valid rows, computed on the fly wherever it is consumed. (A
	// positive literal excludes the rows where its variable is 0, hence
	// the full-word flip; the negative literal excludes the column
	// as stored.)
	if cap(sc.srcs) < L {
		sc.srcs = make([][]uint64, L)
		sc.flips = make([]uint64, L)
	}
	srcs, flips := sc.srcs[:L], sc.flips[:L]
	for li, v := range lowered {
		srcs[li] = off.cols[v]
		if c.Var(v) == VTrue {
			flips[li] = ^uint64(0)
		} else {
			flips[li] = 0
		}
	}
	if cap(sc.covered) < W {
		sc.covered = make([]uint64, W)
	}
	covered := sc.covered[:W]
	// A row no literal excludes intersects c — caller bug, keep the cube.
	for w := 0; w < W; w++ {
		acc := uint64(0)
		for li := 0; li < L; li++ {
			acc |= srcs[li][w] ^ flips[li]
		}
		if off.full[w]&^acc != 0 {
			return c
		}
		covered[w] = 0
	}

	if cap(sc.keep) < n {
		sc.keep = make([]bool, n)
	}
	keep := sc.keep[:n]
	for i := 0; i < n; i++ {
		keep[i] = false
	}
	if cap(sc.cnts) < L {
		sc.cnts = make([]int, L)
	}
	cnts := sc.cnts[:L]

	remaining := off.n
	for remaining > 0 {
		// Count uncovered rows per literal, skipping fully covered words —
		// the totals (and so the greedy choice under the rotated
		// tie-break) match a per-literal scan exactly.
		for li := range cnts {
			cnts[li] = 0
		}
		for w := 0; w < W; w++ {
			cw := off.full[w] &^ covered[w]
			if cw == 0 {
				continue
			}
			for li := 0; li < L; li++ {
				cnts[li] += bits.OnesCount64((srcs[li][w] ^ flips[li]) & cw)
			}
		}
		bestLi, bestC := -1, -1
		for i := 0; i < L; i++ {
			li := (i + rot) % L
			if cnt := cnts[li]; cnt > bestC {
				bestLi, bestC = li, cnt
			}
		}
		keep[lowered[bestLi]] = true
		src, flip := srcs[bestLi], flips[bestLi]
		remaining = 0
		for w := 0; w < W; w++ {
			covered[w] |= (src[w] ^ flip) & off.full[w]
			remaining += bits.OnesCount64(off.full[w] &^ covered[w])
		}
	}
	// Primality pass: try raising each kept literal individually. The
	// lowered cube excludes OFF minterm i through the kept literals whose
	// conflict columns contain i, so raising v preserves exclusion exactly
	// when v's column is within the union of the other kept columns — the
	// same verdict the cube-intersection test gave, without rescanning the
	// OFF set.
	for li, v := range lowered {
		if !keep[v] {
			continue
		}
		raisable := true
		for w := 0; w < W && raisable; w++ {
			other := uint64(0)
			for lj, u := range lowered {
				if u != v && keep[u] {
					other |= srcs[lj][w] ^ flips[lj]
				}
			}
			if (srcs[li][w]^flips[li])&off.full[w]&^other != 0 {
				raisable = false
			}
		}
		if raisable {
			keep[v] = false
		}
	}
	out := c.Clone()
	for _, v := range lowered {
		if !keep[v] {
			out.SetVar(v, VDash)
		}
	}
	return out
}

// irredundant removes cubes until every remaining cube is needed to cover
// some ON minterm: essential cubes (sole cover of a minterm) are kept,
// then the rest are dropped greedily, largest-literal-count first.
//
// The cube→minterm incidence is deliberately NOT materialized: on dense
// instances it is quadratic in |cover|·|on| and dominated the whole
// pipeline's peak heap (a gigabyte on the k=5 scaling point). Each
// candidate instead recomputes its covered-minterm bitset from the
// column view into one shared buffer and tests it against the bitset of
// minterms with at most one cover left. Decisions, and therefore the
// returned cover, are bit-identical to the materialized form.
func irredundant(cover Cover, on *mintermMatrix) Cover {
	W := on.words
	coverCnt := make([]int, len(cover)) // cube → #covered ON minterms
	lits := make([]int, len(cover))
	vc := &vertCounter{W: W} // minterm → #covering cubes, bit-planed
	mask := make([]uint64, W)
	for ci, c := range cover {
		on.coverMask(c, mask)
		cnt := 0
		for _, mw := range mask {
			cnt += bits.OnesCount64(mw)
		}
		coverCnt[ci] = cnt
		lits[ci] = c.Literals()
		vc.add(mask)
	}
	alive := make([]bool, len(cover))
	for i := range alive {
		alive[i] = true
	}
	// Drop order: most literals first (prefer keeping big cubes out?
	// no — keeping FEWER literals total means dropping costly cubes first),
	// ties by fewer covered minterms, then by index for determinism.
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := lits[order[a]], lits[order[b]]
		if la != lb {
			return la > lb
		}
		ca, cb := coverCnt[order[a]], coverCnt[order[b]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	// atMost marks minterms with a single remaining cover: a cube is
	// removable exactly when its mask avoids all of them.
	atMost := make([]uint64, W)
	for w := 0; w < W; w++ {
		atMost[w] = on.full[w] &^ vc.atLeast2(w)
	}
	for _, ci := range order {
		on.coverMask(cover[ci], mask)
		removable := true
		for w := range mask {
			if mask[w]&atMost[w] != 0 {
				removable = false
				break
			}
		}
		if removable {
			alive[ci] = false
			vc.sub(mask)
			for w, mw := range mask {
				if mw != 0 {
					atMost[w] = on.full[w] &^ vc.atLeast2(w)
				}
			}
		}
	}
	out := make(Cover, 0, len(cover))
	for ci, a := range alive {
		if a {
			out = append(out, cover[ci])
		}
	}
	return out
}

// vertCounter keeps one small counter per bitset row, stored vertically
// as bit-planes: planes[p][w] holds bit p of the counts of rows
// w*64..w*64+63. Adding or subtracting a row mask is a ripple
// carry/borrow across planes — amortized a couple of word operations per
// touched word, where per-row updates would cost one indexed
// read-modify-write per set bit.
type vertCounter struct {
	W      int
	planes [][]uint64
}

func (vc *vertCounter) add(mask []uint64) {
	for w, m := range mask {
		for p := 0; m != 0; p++ {
			if p == len(vc.planes) {
				vc.planes = append(vc.planes, make([]uint64, vc.W))
			}
			pl := vc.planes[p]
			carry := pl[w] & m
			pl[w] ^= m
			m = carry
		}
	}
}

// sub decrements the rows in mask; counts must be positive there.
func (vc *vertCounter) sub(mask []uint64) {
	for w, m := range mask {
		for p := 0; m != 0; p++ {
			pl := vc.planes[p]
			borrow := m &^ pl[w]
			pl[w] ^= m
			m = borrow
		}
	}
}

// atLeast2 returns the rows of word w with a count of two or more.
func (vc *vertCounter) atLeast2(w int) uint64 {
	var or uint64
	for p := 1; p < len(vc.planes); p++ {
		or |= vc.planes[p][w]
	}
	return or
}

// reduce sequentially shrinks each cube to the supercube of the ON
// minterms that the rest of the (partially reduced) cover does not
// already cover, giving the following EXPAND a different starting point.
// Unlike a simultaneous shrink, the sequential form preserves coverage
// of every ON minterm; cubes left with no private minterms are dropped.
// It only ever runs on post-IRREDUNDANT covers, so materializing the
// per-cube cover masks is cheap.
func reduce(cover Cover, on *mintermMatrix) Cover {
	W := on.words
	counts := make([]int32, on.n)
	masks := make([][]uint64, len(cover))
	flat := make([]uint64, len(cover)*W)
	for ci, c := range cover {
		m := flat[ci*W : (ci+1)*W]
		on.coverMask(c, m)
		masks[ci] = m
		for w, mw := range m {
			for ; mw != 0; mw &= mw - 1 {
				counts[w*64+bits.TrailingZeros64(mw)]++
			}
		}
	}
	out := make(Cover, 0, len(cover))
	for ci, c := range cover {
		var sup Cube
		first := true
		for w, mw := range masks[ci] {
			for ; mw != 0; mw &= mw - 1 {
				mi := w*64 + bits.TrailingZeros64(mw)
				if counts[mi] == 1 { // only this cube (in its current form) covers it
					mc := FromMinterm(c.N(), on.ms[mi])
					if first {
						sup, first = mc, false
					} else {
						sup = sup.Supercube(mc)
					}
				}
			}
		}
		if first {
			// Fully redundant at this point: drop it (its minterms stay
			// covered by the other cubes' counts).
			for w, mw := range masks[ci] {
				for ; mw != 0; mw &= mw - 1 {
					counts[w*64+bits.TrailingZeros64(mw)]--
				}
			}
			continue
		}
		// Release the minterms the shrunk cube no longer covers.
		for w, mw := range masks[ci] {
			for ; mw != 0; mw &= mw - 1 {
				mi := w*64 + bits.TrailingZeros64(mw)
				if !sup.CoversMinterm(on.ms[mi]) {
					counts[mi]--
				}
			}
		}
		out = append(out, sup)
	}
	return out
}

// Verify checks the fundamental cover contract against a spec: every ON
// minterm covered, no OFF minterm covered, and primality/irredundancy of
// the result. It returns a list of violations (empty = clean).
func Verify(cover Cover, spec Spec) []string {
	var bad []string
	off := make(Cover, len(spec.Off))
	for i, m := range spec.Off {
		off[i] = FromMinterm(spec.NumVars, m)
	}
	for _, m := range spec.On {
		if !cover.CoversMinterm(m) {
			bad = append(bad, fmt.Sprintf("ON minterm %d uncovered", m))
		}
	}
	for i, c := range cover {
		if off.IntersectsAny(c) {
			bad = append(bad, fmt.Sprintf("cube %d intersects OFF-set", i))
		}
		// Primality: no single literal can be raised.
		for v := 0; v < c.N(); v++ {
			val := c.Var(v)
			if val != VTrue && val != VFalse {
				continue
			}
			t := c.Clone()
			t.SetVar(v, VDash)
			if !off.IntersectsAny(t) {
				bad = append(bad, fmt.Sprintf("cube %d not prime at var %d", i, v))
			}
		}
	}
	// Irredundancy over ON minterms.
	for i := range cover {
		rest := make(Cover, 0, len(cover)-1)
		rest = append(rest, cover[:i]...)
		rest = append(rest, cover[i+1:]...)
		needed := false
		for _, m := range spec.On {
			if cover[i].CoversMinterm(m) && !rest.CoversMinterm(m) {
				needed = true
				break
			}
		}
		if !needed {
			bad = append(bad, fmt.Sprintf("cube %d redundant", i))
		}
	}
	return bad
}
