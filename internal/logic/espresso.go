package logic

import (
	"context"
	"fmt"
	"sort"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/synerr"
)

// Spec is a single-output incompletely specified function given by
// explicit ON and OFF minterm lists over NumVars variables; every other
// point is a don't-care. This is exactly the shape produced by state
// graph logic extraction: reachable state codes are care points,
// unreachable codes are free.
type Spec struct {
	NumVars int
	On      []uint64
	Off     []uint64
}

// Validate checks that the spec is well formed (no ON/OFF overlap, all
// minterms within range).
func (s Spec) Validate() error {
	if s.NumVars < 0 || s.NumVars > 63 {
		return fmt.Errorf("logic: %d variables out of range", s.NumVars)
	}
	limit := uint64(1) << s.NumVars
	seen := make(map[uint64]bool, len(s.On))
	for _, m := range s.On {
		if m >= limit {
			return fmt.Errorf("logic: ON minterm %d out of range", m)
		}
		seen[m] = true
	}
	for _, m := range s.Off {
		if m >= limit {
			return fmt.Errorf("logic: OFF minterm %d out of range", m)
		}
		if seen[m] {
			return fmt.Errorf("logic: minterm %d is both ON and OFF", m)
		}
	}
	return nil
}

// Options tunes Minimize.
type Options struct {
	// MaxPasses bounds the EXPAND/IRREDUNDANT/REDUCE iterations (default 8;
	// the loop stops earlier at a fixed point).
	MaxPasses int
}

// Minimize computes a prime, irredundant cover of the ON-set that avoids
// every OFF minterm, using the ESPRESSO strategy: greedy EXPAND of each
// cube against the OFF list, IRREDUNDANT set-covering over the ON
// minterms, then REDUCE + re-EXPAND passes until the literal count stops
// improving.
func Minimize(spec Spec, opt Options) (Cover, error) {
	return MinimizeContext(context.Background(), spec, opt)
}

// MinimizeContext is Minimize under a cancellation context, polled
// between EXPAND/IRREDUNDANT/REDUCE passes so a canceled synthesis run
// abandons the minimization promptly (with an error matching
// synerr.ErrCanceled).
func MinimizeContext(ctx context.Context, spec Spec, opt Options) (Cover, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 8
	}
	if len(spec.On) == 0 {
		return Cover{}, nil
	}
	off := make(Cover, len(spec.Off))
	for i, m := range spec.Off {
		off[i] = FromMinterm(spec.NumVars, m)
	}

	// Initial cover: one cube per ON minterm, expanded. One scratch
	// buffer set serves every EXPAND call of this minimization (the
	// measured hot path: the blocking matrix used to be rebuilt from
	// fresh allocations for every cube of every pass).
	sc := &expandScratch{}
	mc := metrics.From(ctx)
	mc.Add(metrics.EspressoExpand, 1)
	cover := make(Cover, 0, len(spec.On))
	for _, m := range spec.On {
		cover = append(cover, expand(FromMinterm(spec.NumVars, m), off, 0, sc))
	}
	cover = irredundant(cover, spec.On)

	best := cover
	bestLits := cover.Literals()
	for pass := 1; pass < opt.MaxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, synerr.Canceled(err)
		}
		mc.Add(metrics.EspressoReduce, 1)
		mc.Add(metrics.EspressoExpand, 1)
		reduced := reduce(cover, spec.On)
		next := make(Cover, len(reduced))
		for i, c := range reduced {
			next[i] = expand(c, off, pass, sc)
		}
		next = irredundant(next, spec.On)
		lits := next.Literals()
		if lits >= bestLits {
			break
		}
		best, bestLits = next, lits
		cover = next
	}
	return best, nil
}

// expandScratch holds the EXPAND working set so one allocation batch is
// reused across every cube of every pass of a minimization. The
// blocking rows live in one flat slice indexed by rowStart; keep/count
// are dense per-variable tables (a variable index is always < N).
type expandScratch struct {
	lowered  []int
	rowData  []int // concatenated conflict-var lists
	rowStart []int // len(rows)+1 offsets into rowData
	covered  []bool
	keep     []bool
	count    []int
}

// expand grows cube c into a prime not intersecting any OFF cube. The
// variables kept lowered are chosen by greedy column covering of the
// blocking matrix (each OFF cube must remain excluded by at least one
// kept literal); `rot` rotates tie-breaking so successive passes explore
// different primes.
func expand(c Cube, off Cover, rot int, sc *expandScratch) Cube {
	n := c.N()
	sc.lowered = sc.lowered[:0]
	for v := 0; v < n; v++ {
		if val := c.Var(v); val == VTrue || val == VFalse {
			sc.lowered = append(sc.lowered, v)
		}
	}
	lowered := sc.lowered
	// Blocking rows: for each OFF cube, the set of lowered vars excluding it.
	sc.rowData = sc.rowData[:0]
	sc.rowStart = sc.rowStart[:0]
	for _, o := range off {
		start := len(sc.rowData)
		sc.rowData = c.AppendConflictVars(o, sc.rowData)
		if len(sc.rowData) == start {
			// c intersects OFF — caller bug; keep the cube as is.
			return c
		}
		sc.rowStart = append(sc.rowStart, start)
	}
	sc.rowStart = append(sc.rowStart, len(sc.rowData))
	nrows := len(off)
	rowVars := func(ri int) []int { return sc.rowData[sc.rowStart[ri]:sc.rowStart[ri+1]] }

	if cap(sc.covered) < nrows {
		sc.covered = make([]bool, nrows)
	}
	covered := sc.covered[:nrows]
	for i := range covered {
		covered[i] = false
	}
	if cap(sc.keep) < n {
		sc.keep = make([]bool, n)
		sc.count = make([]int, n)
	}
	keep, count := sc.keep[:n], sc.count[:n]
	for i := 0; i < n; i++ {
		keep[i] = false
	}

	remaining := nrows
	for remaining > 0 {
		// Count, per variable, the uncovered rows it blocks.
		for i := 0; i < n; i++ {
			count[i] = 0
		}
		for ri := 0; ri < nrows; ri++ {
			if covered[ri] {
				continue
			}
			for _, v := range rowVars(ri) {
				count[v]++
			}
		}
		bestV, bestC := -1, -1
		for i := 0; i < len(lowered); i++ {
			v := lowered[(i+rot)%len(lowered)]
			if cnt := count[v]; cnt > bestC {
				bestV, bestC = v, cnt
			}
		}
		keep[bestV] = true
		for ri := 0; ri < nrows; ri++ {
			if covered[ri] {
				continue
			}
			for _, v := range rowVars(ri) {
				if v == bestV {
					covered[ri] = true
					remaining--
					break
				}
			}
		}
	}
	out := c.Clone()
	for _, v := range lowered {
		if !keep[v] {
			out.SetVar(v, VDash)
		}
	}
	// Primality pass: try raising each kept literal individually.
	for _, v := range lowered {
		if !keep[v] {
			continue
		}
		saved := out.Var(v)
		out.SetVar(v, VDash)
		if off.IntersectsAny(out) {
			out.SetVar(v, saved)
		}
	}
	return out
}

// irredundant removes cubes until every remaining cube is needed to cover
// some ON minterm: essential cubes (sole cover of a minterm) are kept,
// then the rest are dropped greedily, largest-literal-count first.
func irredundant(cover Cover, on []uint64) Cover {
	covers := make([][]int, len(cover)) // cube → ON minterm indices
	counts := make([]int, len(on))      // minterm → #covering cubes
	for ci, c := range cover {
		for mi, m := range on {
			if c.CoversMinterm(m) {
				covers[ci] = append(covers[ci], mi)
				counts[mi]++
			}
		}
	}
	alive := make([]bool, len(cover))
	for i := range alive {
		alive[i] = true
	}
	// Drop order: most literals first (prefer keeping big cubes out?
	// no — keeping FEWER literals total means dropping costly cubes first),
	// ties by fewer covered minterms, then by index for determinism.
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := cover[order[a]].Literals(), cover[order[b]].Literals()
		if la != lb {
			return la > lb
		}
		ca, cb := len(covers[order[a]]), len(covers[order[b]])
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	for _, ci := range order {
		removable := true
		for _, mi := range covers[ci] {
			if counts[mi] <= 1 {
				removable = false
				break
			}
		}
		if removable {
			alive[ci] = false
			for _, mi := range covers[ci] {
				counts[mi]--
			}
		}
	}
	out := make(Cover, 0, len(cover))
	for ci, a := range alive {
		if a {
			out = append(out, cover[ci])
		}
	}
	return out
}

// reduce sequentially shrinks each cube to the supercube of the ON
// minterms that the rest of the (partially reduced) cover does not
// already cover, giving the following EXPAND a different starting point.
// Unlike a simultaneous shrink, the sequential form preserves coverage
// of every ON minterm; cubes left with no private minterms are dropped.
func reduce(cover Cover, on []uint64) Cover {
	counts := make([]int, len(on))
	coversOf := make([][]int, len(cover))
	for ci, c := range cover {
		for mi, m := range on {
			if c.CoversMinterm(m) {
				coversOf[ci] = append(coversOf[ci], mi)
				counts[mi]++
			}
		}
	}
	out := make(Cover, 0, len(cover))
	for ci, c := range cover {
		var sup Cube
		first := true
		for _, mi := range coversOf[ci] {
			if counts[mi] == 1 { // only this cube (in its current form) covers it
				mc := FromMinterm(c.N(), on[mi])
				if first {
					sup, first = mc, false
				} else {
					sup = sup.Supercube(mc)
				}
			}
		}
		if first {
			// Fully redundant at this point: drop it (its minterms stay
			// covered by the other cubes' counts).
			for _, mi := range coversOf[ci] {
				counts[mi]--
			}
			continue
		}
		// Release the minterms the shrunk cube no longer covers.
		for _, mi := range coversOf[ci] {
			if !sup.CoversMinterm(on[mi]) {
				counts[mi]--
			}
		}
		out = append(out, sup)
	}
	return out
}

// Verify checks the fundamental cover contract against a spec: every ON
// minterm covered, no OFF minterm covered, and primality/irredundancy of
// the result. It returns a list of violations (empty = clean).
func Verify(cover Cover, spec Spec) []string {
	var bad []string
	off := make(Cover, len(spec.Off))
	for i, m := range spec.Off {
		off[i] = FromMinterm(spec.NumVars, m)
	}
	for _, m := range spec.On {
		if !cover.CoversMinterm(m) {
			bad = append(bad, fmt.Sprintf("ON minterm %d uncovered", m))
		}
	}
	for i, c := range cover {
		if off.IntersectsAny(c) {
			bad = append(bad, fmt.Sprintf("cube %d intersects OFF-set", i))
		}
		// Primality: no single literal can be raised.
		for v := 0; v < c.N(); v++ {
			val := c.Var(v)
			if val != VTrue && val != VFalse {
				continue
			}
			t := c.Clone()
			t.SetVar(v, VDash)
			if !off.IntersectsAny(t) {
				bad = append(bad, fmt.Sprintf("cube %d not prime at var %d", i, v))
			}
		}
	}
	// Irredundancy over ON minterms.
	for i := range cover {
		rest := make(Cover, 0, len(cover)-1)
		rest = append(rest, cover[:i]...)
		rest = append(rest, cover[i+1:]...)
		needed := false
		for _, m := range spec.On {
			if cover[i].CoversMinterm(m) && !rest.CoversMinterm(m) {
				needed = true
				break
			}
		}
		if !needed {
			bad = append(bad, fmt.Sprintf("cube %d redundant", i))
		}
	}
	return bad
}
