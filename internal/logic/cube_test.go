package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// cubeMinterms enumerates the minterms of a cube (n ≤ 16).
func cubeMinterms(c Cube) map[uint64]bool {
	out := make(map[uint64]bool)
	n := c.N()
	for m := uint64(0); m < 1<<n; m++ {
		if c.CoversMinterm(m) {
			out[m] = true
		}
	}
	return out
}

// randomCube builds a random cube over n variables.
func randomCube(rng *rand.Rand, n int) Cube {
	c := NewCube(n)
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			c.SetVar(v, VFalse)
		case 1:
			c.SetVar(v, VTrue)
		}
	}
	return c
}

func TestCubeBasics(t *testing.T) {
	c := NewCube(4)
	if c.Literals() != 0 {
		t.Fatalf("universal cube has literals")
	}
	c.SetVar(1, VTrue)
	c.SetVar(3, VFalse)
	if c.Var(1) != VTrue || c.Var(3) != VFalse || c.Var(0) != VDash {
		t.Fatalf("SetVar/Var broken")
	}
	if c.Literals() != 2 {
		t.Fatalf("literals = %d", c.Literals())
	}
	if c.String() != "-1-0" {
		t.Fatalf("String = %q", c.String())
	}
	if !c.CoversMinterm(0b0010) || c.CoversMinterm(0b1010) {
		t.Fatalf("CoversMinterm broken")
	}
	d := c.Clone()
	d.SetVar(0, VTrue)
	if c.Var(0) != VDash {
		t.Fatalf("Clone aliases storage")
	}
	if c.Equal(d) || !c.Equal(c.Clone()) {
		t.Fatalf("Equal broken")
	}
}

func TestFromMinterm(t *testing.T) {
	c := FromMinterm(5, 0b10110)
	if c.Literals() != 5 {
		t.Fatalf("minterm cube must have all literals")
	}
	if !c.CoversMinterm(0b10110) || c.CoversMinterm(0b10111) {
		t.Fatalf("minterm cube covers wrong points")
	}
}

// TestCubeOpsAgainstEnumeration validates Contains, Intersects,
// Intersection, Supercube and Distance against minterm semantics.
func TestCubeOpsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		n := 2 + rng.Intn(6)
		a := randomCube(rng, n)
		b := randomCube(rng, n)
		ma, mb := cubeMinterms(a), cubeMinterms(b)

		wantContains := true
		for m := range mb {
			if !ma[m] {
				wantContains = false
				break
			}
		}
		if got := a.Contains(b); got != wantContains {
			t.Fatalf("Contains(%v,%v) = %v, want %v", a, b, got, wantContains)
		}

		wantIntersects := false
		for m := range ma {
			if mb[m] {
				wantIntersects = true
				break
			}
		}
		if got := a.Intersects(b); got != wantIntersects {
			t.Fatalf("Intersects(%v,%v) = %v, want %v", a, b, got, wantIntersects)
		}

		inter, ok := a.Intersection(b)
		if ok != wantIntersects {
			t.Fatalf("Intersection ok mismatch")
		}
		if ok {
			mi := cubeMinterms(inter)
			for m := uint64(0); m < 1<<n; m++ {
				if mi[m] != (ma[m] && mb[m]) {
					t.Fatalf("Intersection wrong at %b", m)
				}
			}
		}

		sup := a.Supercube(b)
		for m := range ma {
			if !sup.CoversMinterm(m) {
				t.Fatalf("Supercube misses minterm of a")
			}
		}
		for m := range mb {
			if !sup.CoversMinterm(m) {
				t.Fatalf("Supercube misses minterm of b")
			}
		}

		if (a.Distance(b) == 0) != wantIntersects {
			t.Fatalf("Distance(%v,%v)=%d but intersects=%v", a, b, a.Distance(b), wantIntersects)
		}
		if cv := a.ConflictVars(b); len(cv) != a.Distance(b) {
			t.Fatalf("ConflictVars/Distance disagree")
		}
	}
}

func TestCubeManyVariables(t *testing.T) {
	// Exercise the multi-word path (> 32 variables).
	c := NewCube(50)
	c.SetVar(40, VTrue)
	c.SetVar(49, VFalse)
	d := NewCube(50)
	d.SetVar(40, VFalse)
	if c.Intersects(d) {
		t.Fatalf("disjoint at var 40 but Intersects true")
	}
	d.SetVar(40, VTrue)
	if !c.Intersects(d) || !d.Contains(c) || c.Contains(d) {
		t.Fatalf("multi-word ops broken")
	}
	if c.Literals() != 2 {
		t.Fatalf("literals over words = %d", c.Literals())
	}
}

func TestCoverBasics(t *testing.T) {
	f := Cover{}
	if f.CoversMinterm(0) || f.Literals() != 0 {
		t.Fatalf("empty cover misbehaves")
	}
	c1 := NewCube(3)
	c1.SetVar(0, VTrue)
	c2 := NewCube(3)
	c2.SetVar(1, VFalse)
	c2.SetVar(2, VTrue)
	f = Cover{c1, c2}
	if f.Literals() != 3 {
		t.Fatalf("cover literals %d", f.Literals())
	}
	if !f.CoversMinterm(0b001) || !f.CoversMinterm(0b100) || f.CoversMinterm(0b010) {
		t.Fatalf("cover membership broken")
	}
	got := f.Format([]string{"x", "y", "z"})
	if got != "x + y' z" {
		t.Fatalf("Format = %q", got)
	}
	g := f.Clone()
	g[0].SetVar(0, VFalse)
	if f[0].Var(0) != VTrue {
		t.Fatalf("Clone aliases cubes")
	}
}

func TestFormatUniversal(t *testing.T) {
	f := Cover{NewCube(2)}
	if f.Format([]string{"a", "b"}) != "1" {
		t.Fatalf("universal cube formats as %q", f.Format([]string{"a", "b"}))
	}
	if (Cover{}).Format(nil) != "0" {
		t.Fatalf("empty cover formats wrong")
	}
}

// TestQuickSupercubeContains: supercube always contains both operands.
func TestQuickSupercubeContains(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	err := quick.Check(func() bool {
		a := randomCube(rng, 6)
		b := randomCube(rng, 6)
		s := a.Supercube(b)
		return s.Contains(a) && s.Contains(b)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
