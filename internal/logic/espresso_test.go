package logic

import (
	"math/rand"
	"testing"
)

func minimize(t *testing.T, spec Spec) Cover {
	t.Helper()
	cover, err := Minimize(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(cover, spec); len(bad) != 0 {
		t.Fatalf("cover violates contract: %v\ncover: %v", bad, cover)
	}
	return cover
}

func TestMinimizeConstantish(t *testing.T) {
	// Empty ON-set → empty cover.
	c := minimize(t, Spec{NumVars: 3})
	if len(c) != 0 {
		t.Fatalf("empty ON-set gave %v", c)
	}
	// ON everywhere, no OFF → single universal cube.
	c = minimize(t, Spec{NumVars: 2, On: []uint64{0, 1, 2, 3}})
	if len(c) != 1 || c.Literals() != 0 {
		t.Fatalf("tautology not collapsed: %v", c)
	}
}

func TestMinimizeSingleLiteral(t *testing.T) {
	// f = x0 over 3 vars with full care set.
	spec := Spec{NumVars: 3}
	for m := uint64(0); m < 8; m++ {
		if m&1 != 0 {
			spec.On = append(spec.On, m)
		} else {
			spec.Off = append(spec.Off, m)
		}
	}
	c := minimize(t, spec)
	if len(c) != 1 || c.Literals() != 1 {
		t.Fatalf("f=x0 minimized to %v (%d literals)", c, c.Literals())
	}
}

func TestMinimizeXor(t *testing.T) {
	// XOR needs two 2-literal cubes; no smaller SOP exists.
	spec := Spec{NumVars: 2, On: []uint64{0b01, 0b10}, Off: []uint64{0b00, 0b11}}
	c := minimize(t, spec)
	if len(c) != 2 || c.Literals() != 4 {
		t.Fatalf("xor cover %v (%d literals)", c, c.Literals())
	}
}

func TestMinimizeUsesDontCares(t *testing.T) {
	// ON = {00}, OFF = {11}: don't-cares at 01 and 10 allow a single
	// 1-literal cube.
	spec := Spec{NumVars: 2, On: []uint64{0b00}, Off: []uint64{0b11}}
	c := minimize(t, spec)
	if len(c) != 1 || c.Literals() != 1 {
		t.Fatalf("don't-cares unused: %v (%d literals)", c, c.Literals())
	}
}

func TestMinimizeClassic(t *testing.T) {
	// f = a'b' + ab (XNOR) with a don't-care that cannot help.
	spec := Spec{NumVars: 3,
		On:  []uint64{0b000, 0b011, 0b100, 0b111},
		Off: []uint64{0b001, 0b010, 0b101, 0b110},
	}
	c := minimize(t, spec)
	if c.Literals() != 4 {
		t.Fatalf("xnor (var2 irrelevant): %v (%d literals)", c, c.Literals())
	}
}

func TestMinimizeReducesVsInitialCover(t *testing.T) {
	// A function where per-minterm cubes are far from minimal:
	// f = x3 (8 ON minterms over 4 vars).
	spec := Spec{NumVars: 4}
	for m := uint64(0); m < 16; m++ {
		if m&0b1000 != 0 {
			spec.On = append(spec.On, m)
		} else {
			spec.Off = append(spec.Off, m)
		}
	}
	c := minimize(t, spec)
	if len(c) != 1 || c.Literals() != 1 {
		t.Fatalf("f=x3: %v", c)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{NumVars: 2, On: []uint64{5}}).Validate(); err == nil {
		t.Fatalf("out-of-range minterm accepted")
	}
	if err := (Spec{NumVars: 2, On: []uint64{1}, Off: []uint64{1}}).Validate(); err == nil {
		t.Fatalf("overlapping ON/OFF accepted")
	}
	if err := (Spec{NumVars: 64}).Validate(); err == nil {
		t.Fatalf("too many variables accepted")
	}
	if _, err := Minimize(Spec{NumVars: 2, On: []uint64{1}, Off: []uint64{1}}, Options{}); err == nil {
		t.Fatalf("Minimize must validate")
	}
}

// TestMinimizeRandom cross-checks the cover contract on random
// incompletely specified functions, and compares against a weak lower
// bound (at least one cube whenever ON non-empty, correctness checked by
// Verify inside minimize()).
func TestMinimizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		n := 3 + rng.Intn(5)
		var spec Spec
		spec.NumVars = n
		for m := uint64(0); m < 1<<n; m++ {
			switch rng.Intn(3) {
			case 0:
				spec.On = append(spec.On, m)
			case 1:
				spec.Off = append(spec.Off, m)
			}
		}
		c := minimize(t, spec)
		if len(spec.On) > 0 && len(c) == 0 {
			t.Fatalf("non-empty ON-set, empty cover")
		}
		// Each cube prime & cover irredundant is asserted by Verify; also
		// check the cover never exceeds one cube per ON minterm.
		if len(c) > len(spec.On) {
			t.Fatalf("cover larger than the trivial one: %d > %d", len(c), len(spec.On))
		}
	}
}

// TestMinimizeDeterministic: the same spec always yields the same cover.
func TestMinimizeDeterministic(t *testing.T) {
	spec := Spec{NumVars: 4,
		On:  []uint64{0, 3, 5, 9, 14},
		Off: []uint64{1, 2, 8, 15},
	}
	a := minimize(t, spec)
	for i := 0; i < 5; i++ {
		b := minimize(t, spec)
		if len(a) != len(b) {
			t.Fatalf("nondeterministic cover size")
		}
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Fatalf("nondeterministic cube %d", j)
			}
		}
	}
}

func TestVerifyCatchesBadCovers(t *testing.T) {
	spec := Spec{NumVars: 2, On: []uint64{0b01, 0b10}, Off: []uint64{0b00, 0b11}}
	// Missing minterm.
	cube01 := FromMinterm(2, 0b01)
	if bad := Verify(Cover{cube01}, spec); len(bad) == 0 {
		t.Fatalf("uncovered ON minterm not reported")
	}
	// Cover hitting the OFF-set.
	uni := NewCube(2)
	if bad := Verify(Cover{uni}, spec); len(bad) == 0 {
		t.Fatalf("OFF intersection not reported")
	}
	// Redundant cube.
	cube10 := FromMinterm(2, 0b10)
	if bad := Verify(Cover{cube01, cube10, cube01.Clone()}, spec); len(bad) == 0 {
		t.Fatalf("redundant cube not reported")
	}
}

func BenchmarkMinimize12Var(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var spec Spec
	spec.NumVars = 12
	seen := make(map[uint64]int)
	for len(spec.On) < 120 {
		m := uint64(rng.Intn(1 << 12))
		if seen[m] == 0 {
			seen[m] = 1
			spec.On = append(spec.On, m)
		}
	}
	for len(spec.Off) < 120 {
		m := uint64(rng.Intn(1 << 12))
		if seen[m] == 0 {
			seen[m] = 2
			spec.Off = append(spec.Off, m)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(spec, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
