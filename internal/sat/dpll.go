package sat

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
)

// Status is a solver outcome.
type Status int

const (
	// Sat: a model was found.
	Sat Status = iota
	// Unsat: the formula was proven unsatisfiable.
	Unsat
	// BacktrackLimit: the search budget was exhausted before a verdict
	// (the outcome Table 1 reports for the direct method on large
	// instances).
	BacktrackLimit
	// Canceled: the search's context was canceled before a verdict.
	// Callers translate this to synerr.ErrCanceled; it never appears in
	// synthesis output.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	case BacktrackLimit:
		return "BACKTRACK-LIMIT"
	case Canceled:
		return "CANCELED"
	}
	return "?"
}

// Result carries the solver outcome and search statistics.
type Result struct {
	Status     Status
	Model      []bool // valid when Status == Sat
	Decisions  int64
	Backtracks int64 // conflicts encountered
	Props      int64
	Learned    int64
	Restarts   int64
	Flips      int64 // local-search flips (WalkSAT only)
	// StableLearned holds the learned clauses (including learned units)
	// whose derivations used only the formula's stable prefix — and so
	// remain implied by any later formula containing that same prefix.
	// Populated only when Limits.ExportStable is set.
	StableLearned [][]Lit
}

// Limits bounds the search. Zero values mean unlimited.
type Limits struct {
	// MaxBacktracks bounds the number of conflicts (the branch-and-bound
	// backtrack budget of the paper's experimental setup).
	MaxBacktracks int64
	MaxDecisions  int64
	// Cancel, when non-nil, is polled at every decision: a true value
	// stops the search with BacktrackLimit. Used by the portfolio racer
	// to reap losing engines; a cancelled result is always discarded by
	// the caller, so the status choice never reaches synthesis output.
	Cancel *atomic.Bool
	// Ctx, when non-nil, is polled every few branch-loop iterations: a
	// canceled context stops the search promptly with Canceled, so a
	// synthesis run under deadline returns from the middle of a long
	// DPLL search. Polling never changes the search when the context
	// stays live, so results are bit-identical with or without it.
	Ctx context.Context
	// ExportStable collects the stable learned clauses into
	// Result.StableLearned (see Formula.MarkStablePrefix). Tracking is
	// always on — it never changes the search — so enabling the export
	// only pays the final copy.
	ExportStable bool
}

// Solve runs a conflict-driven DPLL procedure: two-watched-literal unit
// propagation, first-UIP clause learning with non-chronological
// backjumping, VSIDS-style activities, phase saving and geometric
// restarts. This plays the role of the SIS branch-and-bound SAT program
// in the paper's flow (which likewise backtracked non-chronologically);
// exceeding the backtrack budget yields BacktrackLimit. The search is
// deterministic.
func Solve(f *Formula, lim Limits) Result {
	if f.hasEmpty {
		return Result{Status: Unsat}
	}
	s := newSolver(f)
	return s.run(lim)
}

type clause struct {
	lits    []Lit
	learned bool
	// stable: the clause is part of the formula's stable prefix, a warm
	// seed derived from it, or a learned clause whose entire derivation
	// (conflict clause, reason clauses, level-0 antecedents) is stable.
	stable bool
	// guarded: the clause's last literal is a group assumption guard
	// (incremental solving, see Incremental). The guard is appended
	// after the core literals and its variable is assumed true at level
	// 0, so the literal is permanently false and inert in propagation;
	// only the unit scan must look through it (a one-literal core behaves
	// as a unit clause, exactly as its unguarded twin would).
	guarded bool
}

type solver struct {
	f       *Formula
	assign  []int8 // -1 unknown, 0 false, 1 true
	level   []int32
	reason  []int32 // clause index or -1
	watches [][]int32
	clauses []*clause
	trail   []Lit
	trailLo int
	limits  []int // trail index where each decision level starts

	activity []float64
	actInc   float64
	phase    []bool
	order    []int // heap-free: sorted scan with lazy skip
	res      Result

	seen    []bool
	tmpLits []Lit

	// stab0[v] records whether variable v's level-0 assignment was
	// derived purely from stable clauses: conflict analysis skips
	// level-0 literals, so a learned clause silently depends on them.
	stab0 []bool
	// analyzeStable is the stability of the most recent analyze() result.
	analyzeStable bool
	// stableUnits collects stable learned unit clauses, which are
	// enqueued directly rather than added to the clause list.
	stableUnits []Lit
}

func newSolver(f *Formula) *solver {
	n := f.NumVars
	s := &solver{
		f:        f,
		assign:   make([]int8, n),
		level:    make([]int32, n),
		reason:   make([]int32, n),
		watches:  make([][]int32, 2*n),
		activity: make([]float64, n),
		actInc:   1,
		phase:    make([]bool, n),
		seen:     make([]bool, n),
		stab0:    make([]bool, n),
	}
	for i := range s.assign {
		s.assign[i] = -1
		s.reason[i] = -1
	}
	posScore := make([]float64, n)
	negScore := make([]float64, n)
	// First pass: branching scores plus a per-literal watch count, so the
	// watch lists can be carved out of one backing array with exact
	// capacities instead of growing by repeated append in the hot loop.
	occ := make([]int32, 2*n)
	totalLits := 0
	for _, c := range f.Clauses {
		totalLits += len(c)
		w := math.Pow(2, -float64(len(c)))
		for _, l := range c {
			if l.Sign() {
				negScore[l.Var()] += w
			} else {
				posScore[l.Var()] += w
			}
		}
		if len(c) >= 2 {
			occ[c[0]]++
			occ[c[1]]++
		}
	}
	total := int32(0)
	for _, o := range occ {
		total += o
	}
	backing := make([]int32, total)
	off := int32(0)
	for l, o := range occ {
		// Full slice expressions cap each list at its initial count: a
		// list that later outgrows it (watch migration, learned clauses)
		// reallocates on append instead of clobbering its neighbor.
		s.watches[l] = backing[off : off : off+o]
		off += o
	}
	s.clauses = make([]*clause, 0, len(f.Clauses))
	stablePrefix := f.StablePrefix()
	// Two batch allocations instead of two per clause: propagation swaps
	// literals in place, so each clause needs its own copy, but the copies
	// can all live in one backing array (exact capacity: append never
	// reallocates, so the carved sub-slices stay valid).
	clBack := make([]clause, len(f.Clauses))
	litBack := make([]Lit, 0, totalLits)
	for i, c := range f.Clauses {
		cl := &clBack[i]
		lo := len(litBack)
		litBack = append(litBack, c...)
		cl.lits = litBack[lo:len(litBack):len(litBack)]
		cl.stable = i < stablePrefix
		ci := int32(len(s.clauses))
		s.clauses = append(s.clauses, cl)
		if len(cl.lits) >= 2 {
			s.watches[cl.lits[0]] = append(s.watches[cl.lits[0]], ci)
			s.watches[cl.lits[1]] = append(s.watches[cl.lits[1]], ci)
		}
	}
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
		s.activity[i] = posScore[i] + negScore[i]
		switch f.Preferred(i) {
		case 0:
			s.phase[i] = false
		case 1:
			s.phase[i] = true
		default:
			s.phase[i] = posScore[i] >= negScore[i]
		}
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		va, vb := s.order[a], s.order[b]
		if s.activity[va] != s.activity[vb] {
			return s.activity[va] > s.activity[vb]
		}
		return va < vb
	})
	return s
}

func (s *solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if v < 0 {
		return -1
	}
	if l.Sign() {
		return 1 - v
	}
	return v
}

func (s *solver) decisionLevel() int { return len(s.limits) }

func (s *solver) enqueue(l Lit, reason int32) bool {
	switch s.value(l) {
	case 1:
		return true
	case 0:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = 0
	} else {
		s.assign[v] = 1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	if s.decisionLevel() == 0 && reason >= 0 {
		// Level-0 assignments are permanent and invisible to analyze();
		// record whether this one rests entirely on stable clauses.
		cl := s.clauses[reason]
		st := cl.stable
		if st {
			for _, q := range cl.lits {
				if q.Var() != v && !s.stab0[q.Var()] {
					st = false
					break
				}
			}
		}
		s.stab0[v] = st
	}
	return true
}

// propagate runs unit propagation; returns the conflicting clause index
// or -1.
func (s *solver) propagate() int32 {
	for s.trailLo < len(s.trail) {
		l := s.trail[s.trailLo]
		s.trailLo++
		s.res.Props++
		falsified := l.Neg()
		ws := s.watches[falsified]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			cl := s.clauses[ci].lits
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if s.value(cl[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != 0 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1]] = append(s.watches[cl[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			if !s.enqueue(cl[0], ci) {
				kept = append(kept, ws[i+1:]...)
				s.watches[falsified] = kept
				return ci
			}
		}
		s.watches[falsified] = kept
	}
	return -1
}

func (s *solver) bump(v int) {
	s.activity[v] += s.actInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.actInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *solver) analyze(confl int32) ([]Lit, int) {
	learned := s.tmpLits[:0]
	learned = append(learned, 0) // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	reason := confl
	stable := true

	for {
		rc := s.clauses[reason]
		stable = stable && rc.stable
		cl := rc.lits
		start := 0
		if p != -1 {
			// Skip the asserting literal of the reason clause.
			start = 1
		}
		for k := start; k < len(cl); k++ {
			q := cl[k]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				if s.level[v] == 0 && !s.seen[v] {
					// The literal is dropped from the learned clause
					// because its level-0 complement justifies it — so
					// the derivation leans on that assignment too.
					stable = stable && s.stab0[v]
				}
				continue
			}
			s.seen[v] = true
			s.bump(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next literal of the current level on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		reason = s.reason[p.Var()]
	}
	learned[0] = p.Neg()

	// Backjump level: highest level among the other literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) > back {
			back = int(s.level[learned[i].Var()])
		}
	}
	// Move one literal of the backjump level to position 1 for watching.
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	for _, l := range learned {
		s.seen[l.Var()] = false
	}
	s.tmpLits = learned
	s.analyzeStable = stable
	return learned, back
}

func (s *solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lo := s.limits[lvl]
	for i := len(s.trail) - 1; i >= lo; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == 1
		s.assign[v] = -1
		s.reason[v] = -1
	}
	s.trail = s.trail[:lo]
	s.trailLo = lo
	s.limits = s.limits[:lvl]
}

func (s *solver) pickVar() int {
	best, bestAct := -1, -1.0
	for _, v := range s.order {
		if s.assign[v] < 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

func (s *solver) addLearned(lits []Lit) int32 {
	cl := &clause{lits: append([]Lit(nil), lits...), learned: true, stable: s.analyzeStable}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	if len(cl.lits) >= 2 {
		s.watches[cl.lits[0]] = append(s.watches[cl.lits[0]], ci)
		s.watches[cl.lits[1]] = append(s.watches[cl.lits[1]], ci)
	}
	s.res.Learned++
	return ci
}

func (s *solver) run(lim Limits) Result {
	res := s.search(lim)
	if lim.ExportStable && res.Status != Canceled {
		for _, cl := range s.clauses {
			if cl.learned && cl.stable {
				res.StableLearned = append(res.StableLearned, append([]Lit(nil), cl.lits...))
			}
		}
		for _, l := range s.stableUnits {
			res.StableLearned = append(res.StableLearned, []Lit{l})
		}
	}
	return res
}

func (s *solver) search(lim Limits) Result {
	// An already-canceled context never starts the search: small formulas
	// can otherwise finish before the branch loop's first poll comes due.
	if lim.Ctx != nil && lim.Ctx.Err() != nil {
		s.res.Status = Canceled
		return s.res
	}
	// Level-0 units.
	for ci, c := range s.clauses {
		u := len(c.lits)
		if c.guarded {
			// The trailing guard literal is already false under the level-0
			// assumption, so the core alone decides unit-ness.
			u--
		}
		if u == 1 {
			if !s.enqueue(c.lits[0], int32(ci)) {
				s.res.Status = Unsat
				return s.res
			}
		}
	}
	if s.propagate() >= 0 {
		s.res.Status = Unsat
		return s.res
	}

	conflictsSinceRestart := int64(0)
	restartLimit := int64(128)

	var loops int64
	for {
		// The branch loop is the search's only unbounded loop, so this
		// is the cancellation point: cheap enough to poll every few
		// iterations (conflicts and decisions both pass through here),
		// frequent enough that a canceled run returns within
		// microseconds, not after the backtrack budget.
		loops++
		if lim.Ctx != nil && loops&127 == 0 && lim.Ctx.Err() != nil {
			s.res.Status = Canceled
			return s.res
		}
		confl := s.propagate()
		if confl >= 0 {
			s.res.Backtracks++
			conflictsSinceRestart++
			if lim.MaxBacktracks > 0 && s.res.Backtracks > lim.MaxBacktracks {
				s.res.Status = BacktrackLimit
				return s.res
			}
			if s.decisionLevel() == 0 {
				s.res.Status = Unsat
				return s.res
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], -1) {
					s.res.Status = Unsat
					return s.res
				}
				// The learned unit holds at level 0 with no recorded
				// reason clause; carry analyze's stability verdict.
				s.stab0[learned[0].Var()] = s.analyzeStable
				if s.analyzeStable {
					s.stableUnits = append(s.stableUnits, learned[0])
				}
			} else {
				ci := s.addLearned(learned)
				s.enqueue(learned[0], ci)
			}
			s.actInc /= 0.95
			continue
		}

		if conflictsSinceRestart >= restartLimit {
			conflictsSinceRestart = 0
			restartLimit += restartLimit / 2
			s.res.Restarts++
			s.cancelUntil(0)
			continue
		}

		v := s.pickVar()
		if v < 0 {
			s.res.Status = Sat
			s.res.Model = make([]bool, s.f.NumVars)
			for i, a := range s.assign {
				s.res.Model[i] = a == 1
			}
			return s.res
		}
		s.res.Decisions++
		if lim.MaxDecisions > 0 && s.res.Decisions > lim.MaxDecisions {
			s.res.Status = BacktrackLimit
			return s.res
		}
		if lim.Cancel != nil && lim.Cancel.Load() {
			s.res.Status = BacktrackLimit
			return s.res
		}
		var dec Lit
		if s.phase[v] {
			dec = PosLit(v)
		} else {
			dec = NegLit(v)
		}
		s.limits = append(s.limits, len(s.trail))
		s.enqueue(dec, -1)
	}
}
