package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// lockstepCompare asserts that an incremental step and its re-encoded
// fresh twin produced identical results: verdict, every search counter,
// the stable exports (which mention only shared prefix variables, so
// their numbering coincides), and the model under the aux-variable
// translation.
func lockstepCompare(t *testing.T, fr, ir Result, nPrefix int, incAux []int) {
	t.Helper()
	if ir.Status != fr.Status {
		t.Fatalf("status: incremental %v, fresh %v", ir.Status, fr.Status)
	}
	if ir.Decisions != fr.Decisions || ir.Backtracks != fr.Backtracks ||
		ir.Props != fr.Props || ir.Learned != fr.Learned || ir.Restarts != fr.Restarts {
		t.Fatalf("counters diverge:\nincremental dec=%d bt=%d prop=%d learn=%d restart=%d\nfresh       dec=%d bt=%d prop=%d learn=%d restart=%d",
			ir.Decisions, ir.Backtracks, ir.Props, ir.Learned, ir.Restarts,
			fr.Decisions, fr.Backtracks, fr.Props, fr.Learned, fr.Restarts)
	}
	if len(ir.StableLearned) != len(fr.StableLearned) {
		t.Fatalf("exports: incremental %d clauses, fresh %d", len(ir.StableLearned), len(fr.StableLearned))
	}
	for i := range fr.StableLearned {
		fc, ic := fr.StableLearned[i], ir.StableLearned[i]
		if len(fc) != len(ic) {
			t.Fatalf("export %d: lengths %d vs %d", i, len(ic), len(fc))
		}
		for j := range fc {
			if fc[j].Var() >= nPrefix {
				t.Fatalf("fresh export %d mentions non-prefix var %d", i, fc[j].Var())
			}
			if fc[j] != ic[j] {
				t.Fatalf("export %d literal %d: incremental %v, fresh %v", i, j, ic[j], fc[j])
			}
		}
	}
	if fr.Status != Sat {
		return
	}
	for v := 0; v < nPrefix; v++ {
		if fr.Model[v] != ir.Model[v] {
			t.Fatalf("model prefix var %d: incremental %v, fresh %v", v, ir.Model[v], fr.Model[v])
		}
	}
	for j, iv := range incAux {
		if fr.Model[nPrefix+j] != ir.Model[iv] {
			t.Fatalf("model aux %d: incremental %v, fresh %v", j, ir.Model[iv], fr.Model[nPrefix+j])
		}
	}
}

// TestIncrementalLockstep drives an Incremental solver through multi-step
// chains — growing permanent prefix, per-step assumption groups with
// auxiliary variables, warm seeds carried between steps, and an active
// prefix that shrinks and regrows — and checks every step against a
// from-scratch re-encode of the same formula. The two paths must agree
// bit for bit: same verdict, same decision/backtrack/propagation/learned
// /restart counters, same stable exports, same model.
func TestIncrementalLockstep(t *testing.T) {
	for trial := 0; trial < 24; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7001 + 37*trial)))
			c0 := 4 + rng.Intn(5) // column-0 prefix vars
			c1 := 3 + rng.Intn(5) // column-1 prefix vars
			n1 := c0 + c1
			pref := make([]int8, n1)
			for v := range pref {
				pref[v] = int8(rng.Intn(3)) - 1
			}
			randClause := func(nv, minW, maxW int) []Lit {
				w := minW + rng.Intn(maxW-minW+1)
				lits := make([]Lit, 0, w)
				for i := 0; i < w; i++ {
					v := rng.Intn(nv)
					if rng.Intn(2) == 0 {
						lits = append(lits, PosLit(v))
					} else {
						lits = append(lits, NegLit(v))
					}
				}
				return lits // duplicates and tautologies allowed: both paths must normalize alike
			}
			col0 := make([][]Lit, 0, 2*c0)
			for i := 0; i < 2*c0; i++ {
				col0 = append(col0, randClause(c0, 2, 3))
			}
			col1 := make([][]Lit, 0, 2*c1)
			for i := 0; i < 2*c1; i++ {
				col1 = append(col1, randClause(n1, 2, 3))
			}

			inc := NewIncremental()
			for v := 0; v < n1; v++ {
				if iv := inc.NewVar(); iv != v {
					t.Fatalf("NewVar = %d, want %d", iv, v)
				}
				if pref[v] >= 0 {
					inc.Prefer(v, pref[v] == 1)
				}
			}
			for _, c := range col0 {
				inc.AddPermanent(c...)
			}
			p0 := inc.NumPermanent()
			for _, c := range col1 {
				inc.AddPermanent(c...)
			}
			p1 := inc.NumPermanent()

			// Step 0 solves both columns, step 1 shrinks back to column 0
			// (the m=2 → m=1 transition of a real widening chain), step 2
			// regrows to both.
			var prevExports [][]Lit
			for si, cols := range []int{2, 1, 2} {
				nPrefix, activePerm, prefixClauses := c0, p0, col0
				if cols == 2 {
					nPrefix, activePerm = n1, p1
					prefixClauses = append(append([][]Lit{}, col0...), col1...)
				}
				for v := c0; v < n1; v++ {
					inc.SetInert(v, cols == 1)
				}

				nAux := 2 + rng.Intn(3)
				nGrpCl := 3 + rng.Intn(6)
				grp := make([][]Lit, 0, nGrpCl+2)
				for i := 0; i < nGrpCl; i++ {
					grp = append(grp, randClause(nPrefix+nAux, 2, 4))
				}
				if si == 1 {
					// Force a likely-UNSAT step so the chain exercises both
					// verdicts: a contradictory unit pair over a prefix var.
					v := rng.Intn(nPrefix)
					grp = append(grp, []Lit{PosLit(v)}, []Lit{NegLit(v)})
				}

				// Seeds: the previous step's exports, restricted to the
				// active prefix (a real chain re-instantiates per active
				// column; out-of-range clauses would be skipped by one path
				// and kept by the other).
				var seeds [][]Lit
				for _, cl := range prevExports {
					ok := true
					for _, l := range cl {
						if l.Var() >= nPrefix {
							ok = false
							break
						}
					}
					if ok {
						seeds = append(seeds, cl)
					}
				}

				// Fresh twin: re-encode from scratch.
				f := NewFormula()
				for v := 0; v < nPrefix; v++ {
					f.NewVar("")
					if pref[v] >= 0 {
						f.Prefer(v, pref[v] == 1)
					}
				}
				for _, c := range prefixClauses {
					f.Add(c...)
				}
				f.MarkStablePrefix()
				for j := 0; j < nAux; j++ {
					if av := f.NewVar(""); av != nPrefix+j {
						t.Fatalf("fresh aux var = %d, want %d", av, nPrefix+j)
					}
				}
				for _, c := range grp {
					f.Add(c...)
				}
				lim := Limits{ExportStable: true}
				fr := DPLLEngine{}.SolveWarm(f, lim, &Warm{Clauses: seeds})

				// Incremental step: same group, aux vars translated.
				inc.BeginGroup()
				incAux := make([]int, nAux)
				for j := range incAux {
					incAux[j] = inc.NewGroupVar()
				}
				for _, c := range grp {
					tc := make([]Lit, len(c))
					for i, l := range c {
						if v := l.Var(); v >= nPrefix {
							if l.Sign() {
								tc[i] = NegLit(incAux[v-nPrefix])
							} else {
								tc[i] = PosLit(incAux[v-nPrefix])
							}
						} else {
							tc[i] = l
						}
					}
					inc.AddGroup(tc...)
				}
				ir := inc.SolveStep(activePerm, lim, &Warm{Clauses: seeds})

				lockstepCompare(t, fr, ir, nPrefix, incAux)
				prevExports = fr.StableLearned
				_ = si
			}
		})
	}
}

// TestIncrementalLockstepBacktrackLimit pins counter parity on the abort
// path: both sides must hit the backtrack budget at the same point.
func TestIncrementalLockstepBacktrackLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const n = 14
	clauses := make([][]Lit, 0, 90)
	for i := 0; i < 90; i++ {
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		clauses = append(clauses, []Lit{
			Lit(2*a + rng.Intn(2)), Lit(2*b + rng.Intn(2)), Lit(2*c + rng.Intn(2)),
		})
	}
	split := 40 // first clauses are the permanent prefix, the rest the group

	inc := NewIncremental()
	for v := 0; v < n; v++ {
		inc.NewVar()
	}
	for _, c := range clauses[:split] {
		inc.AddPermanent(c...)
	}
	inc.BeginGroup()
	for _, c := range clauses[split:] {
		inc.AddGroup(c...)
	}

	f := NewFormula()
	for v := 0; v < n; v++ {
		f.NewVar("")
	}
	for _, c := range clauses[:split] {
		f.Add(c...)
	}
	f.MarkStablePrefix()
	for _, c := range clauses[split:] {
		f.Add(c...)
	}

	for _, maxBT := range []int64{1, 3, 10} {
		lim := Limits{MaxBacktracks: maxBT, ExportStable: true}
		fr := DPLLEngine{}.SolveWarm(f, lim, nil)
		ir := inc.SolveStep(inc.NumPermanent(), lim, nil)
		lockstepCompare(t, fr, ir, n, nil)
	}
}

// TestIncrementalEmptyClauses pins the trivial-UNSAT short circuits: an
// empty group clause and an empty active permanent clause must answer
// Unsat exactly as the fresh formula's hasEmpty check does, and an empty
// permanent clause beyond the active prefix must not.
func TestIncrementalEmptyClauses(t *testing.T) {
	inc := NewIncremental()
	a := inc.NewVar()
	inc.AddPermanent(PosLit(a))
	p0 := inc.NumPermanent()
	inc.BeginGroup()
	inc.AddGroup(PosLit(a), NegLit(a)) // tautology: dropped
	inc.AddGroup()                     // empty: trivially unsat
	if r := inc.SolveStep(p0, Limits{}, nil); r.Status != Unsat || r.Decisions != 0 {
		t.Fatalf("empty group clause: %+v, want immediate Unsat", r)
	}

	inc = NewIncremental()
	a = inc.NewVar()
	inc.AddPermanent(PosLit(a))
	p0 = inc.NumPermanent()
	inc.AddPermanent() // empty, in column 2
	p1 := inc.NumPermanent()
	inc.BeginGroup()
	inc.AddGroup(NegLit(a), PosLit(a), NegLit(a)) // tautology with duplicate
	if r := inc.SolveStep(p0, Limits{}, nil); r.Status != Sat {
		t.Fatalf("active prefix before empty clause: %v, want Sat", r.Status)
	}
	inc.BeginGroup()
	if r := inc.SolveStep(p1, Limits{}, nil); r.Status != Unsat || r.Decisions != 0 {
		t.Fatalf("active prefix covering empty clause: %+v, want immediate Unsat", r)
	}
}
