package sat

// Warm carries learned clauses exported from an earlier, related solve
// (Result.StableLearned) to seed a new search. Every clause must be an
// actual consequence of the new formula — the csc warm chain guarantees
// this by only carrying clauses derived from the stable structural
// prefix shared along a solve chain (Formula.MarkStablePrefix) — or the
// seeded search may wrongly exclude models.
type Warm struct {
	Clauses [][]Lit
}

// Warmable is the optional warm-start extension of a SAT engine:
// engines that can ingest previously learned clauses implement it, and
// callers probe for it with a type assertion, falling back to a cold
// Solve otherwise.
type Warmable interface {
	SolveWarm(f *Formula, lim Limits, w *Warm) Result
}

// DPLLEngine is the conflict-driven DPLL procedure as an engine value.
// Solve(f, lim) and DPLLEngine{}.SolveWarm(f, lim, nil) are the same
// search; a non-nil Warm seeds the clause database before the search
// starts, which prunes refuted subspaces immediately instead of
// re-deriving them.
type DPLLEngine struct{}

var _ Warmable = DPLLEngine{}

// SolveWarm runs the DPLL search with w's clauses pre-loaded as stable
// learned clauses. Seeding is deterministic: clauses are installed in
// the given order before the search begins, so two runs with equal
// (formula, limits, seeds) produce identical results.
func (DPLLEngine) SolveWarm(f *Formula, lim Limits, w *Warm) Result {
	if f.hasEmpty {
		return Result{Status: Unsat}
	}
	s := newSolver(f)
	if w != nil {
		for _, lits := range w.Clauses {
			s.seed(lits)
		}
	}
	return s.run(lim)
}

// seed installs one warm clause as a stable learned clause. Clauses
// with out-of-range literals are ignored (a seed meant for a larger
// formula); empty clauses cannot occur in exports.
func (s *solver) seed(lits []Lit) {
	if len(lits) == 0 {
		return
	}
	for _, l := range lits {
		if l.Var() >= s.f.NumVars {
			return
		}
	}
	cl := &clause{lits: append([]Lit(nil), lits...), learned: true, stable: true}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	if len(cl.lits) >= 2 {
		s.watches[cl.lits[0]] = append(s.watches[cl.lits[0]], ci)
		s.watches[cl.lits[1]] = append(s.watches[cl.lits[1]], ci)
	}
}
