package sat

import (
	"math/rand"
	"testing"
)

// hardFormula builds a deterministic pseudo-random 3-CNF with a marked
// stable prefix: the first half of the clauses form the prefix, the
// second half the "per-attempt" suffix.
func hardFormula(seed int64, vars, clauses int) *Formula {
	rng := rand.New(rand.NewSource(seed))
	f := NewFormula()
	for v := 0; v < vars; v++ {
		f.NewVar("")
	}
	add := func(k int) {
		lits := make([]Lit, 0, 3)
		seen := map[int]bool{}
		for len(lits) < 3 {
			v := rng.Intn(vars)
			if seen[v] {
				continue
			}
			seen[v] = true
			if rng.Intn(2) == 0 {
				lits = append(lits, PosLit(v))
			} else {
				lits = append(lits, NegLit(v))
			}
		}
		f.Add(lits...)
	}
	for i := 0; i < clauses/2; i++ {
		add(i)
	}
	f.MarkStablePrefix()
	for i := clauses / 2; i < clauses; i++ {
		add(i)
	}
	return f
}

// TestSolveWarmNilMatchesSolve: a nil warm seed must be exactly the cold
// search — same verdict, same statistics, same model.
func TestSolveWarmNilMatchesSolve(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := hardFormula(seed, 30, 120)
		cold := Solve(f, Limits{})
		warm := DPLLEngine{}.SolveWarm(f, Limits{}, nil)
		if cold.Status != warm.Status || cold.Decisions != warm.Decisions ||
			cold.Backtracks != warm.Backtracks || cold.Props != warm.Props {
			t.Fatalf("seed %d: nil-seed SolveWarm diverges: cold %+v warm %+v", seed, cold, warm)
		}
		for i := range cold.Model {
			if cold.Model[i] != warm.Model[i] {
				t.Fatalf("seed %d: models differ at %d", seed, i)
			}
		}
	}
}

// TestExportedClausesImpliedByPrefix is the soundness property the warm
// chain rests on: every exported clause must be a logical consequence of
// the stable prefix ALONE, so it stays valid in any later formula that
// shares the prefix. Verified by refutation — prefix ∧ ¬clause is UNSAT.
func TestExportedClausesImpliedByPrefix(t *testing.T) {
	exported := 0
	for seed := int64(0); seed < 20; seed++ {
		f := hardFormula(seed, 25, 100)
		r := Solve(f, Limits{ExportStable: true})
		for _, cl := range r.StableLearned {
			exported++
			ref := NewFormula()
			for v := 0; v < f.NumVars; v++ {
				ref.NewVar("")
			}
			for _, pc := range f.Clauses[:f.StablePrefix()] {
				ref.Add(pc...)
			}
			for _, l := range cl {
				ref.Add(l.Neg())
			}
			if rr := Solve(ref, Limits{}); rr.Status != Unsat {
				t.Fatalf("seed %d: exported clause %v is NOT implied by the stable prefix (%v)",
					seed, cl, rr.Status)
			}
		}
	}
	if exported == 0 {
		t.Skip("no clauses exported across all seeds; property vacuous")
	}
	t.Logf("verified %d exported clauses against their prefixes", exported)
}

// TestSolveWarmSeededVerdict: seeding a search with its own export (the
// chain replay path) must preserve the verdict and produce a genuine
// model; seeds with out-of-range variables are ignored, not misapplied.
func TestSolveWarmSeededVerdict(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := hardFormula(seed, 30, 120)
		cold := Solve(f, Limits{ExportStable: true})
		w := &Warm{Clauses: cold.StableLearned}
		w.Clauses = append(w.Clauses, []Lit{PosLit(999)}) // ignored: out of range
		warm := DPLLEngine{}.SolveWarm(f, Limits{}, w)
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: verdict flipped under warm seeding: %v vs %v", seed, cold.Status, warm.Status)
		}
		if warm.Status == Sat && !f.Check(warm.Model) {
			t.Fatalf("seed %d: seeded model does not satisfy the formula", seed)
		}
	}
}

// TestSolveWarmDeterministic: equal (formula, limits, seeds) must give
// identical results, the property the solve cache keys on via WarmHash.
func TestSolveWarmDeterministic(t *testing.T) {
	f := hardFormula(4, 30, 120)
	cold := Solve(f, Limits{ExportStable: true})
	w := &Warm{Clauses: cold.StableLearned}
	a := DPLLEngine{}.SolveWarm(f, Limits{}, w)
	b := DPLLEngine{}.SolveWarm(f, Limits{}, w)
	if a.Status != b.Status || a.Decisions != b.Decisions || a.Backtracks != b.Backtracks {
		t.Fatalf("seeded search not deterministic: %+v vs %+v", a, b)
	}
}
