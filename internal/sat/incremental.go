package sat

import (
	"fmt"
	"math"
	"sort"
)

// Incremental is an assumption-based incremental front end over the DPLL
// engine for solve chains: many related formulas sharing a growing
// structural prefix (the edge-compatibility clauses of a widening chain)
// plus one short-lived group of per-problem clauses (the CSC pair
// constraints of the current attempt). Instead of re-encoding and
// re-loading the whole formula for every step, the prefix is kept
// resident and each step only swaps the group:
//
//   - Permanent clauses (AddPermanent) accumulate monotonically. A step
//     activates a prefix of them (clauses are appended column by column,
//     so a step solving fewer columns than have been encoded activates a
//     shorter prefix).
//   - Group clauses (AddGroup) each carry a trailing guard literal ¬A
//     for the group's assumption variable A (BeginGroup). A step assumes
//     A true at level 0, which makes the guards inert; retiring the
//     group is equivalent to assuming ¬A forever, which satisfies every
//     group clause — the implementation simply stops assembling them.
//   - Inert variables (SetInert: retired group variables, state
//     variables of inactive columns) are excluded from branching.
//
// SolveStep assembles the active clauses into persistent arenas and runs
// the standard search. The assembly reproduces, bit for bit, the solver
// state newSolver would build for the guard-free re-encoded formula:
// guard literals are excluded from branching scores (a guarded clause
// scores by its core), the guard variable is excluded from the branching
// order and placed on the trail with propagation starting past it, and
// the unit scan treats a one-literal core as a unit clause. The search
// trail, counters, learned clauses, stable exports and model are then
// identical (modulo the caller's variable translation) to a fresh solve
// — which is what lets the csc layer pin the incremental path against
// the re-encode path in tests.
//
// Learned clauses are NOT retained across steps. They persist only
// through the caller's export/absorb/seed cycle (csc.WarmChain), so a
// cached step replayed from the chain leaves the solver in exactly the
// state a cold solve would.
type Incremental struct {
	numVars int
	prefer  []int8
	inert   []bool

	// Permanent clauses, flattened: clause i is permLits[permOff[i]:permOff[i+1]].
	permLits  []Lit
	permOff   []int32
	emptyPerm []int32 // indices of empty permanent clauses

	// Current assumption group. guard is -1 before the first BeginGroup.
	guard    int
	grpLits  []Lit // each clause ends with the ¬guard literal
	grpOff   []int32
	grpVars  []int // auxiliary variables owned by the current group
	grpEmpty bool

	// Reusable solver and assembly arenas.
	f         Formula // carries NumVars into the search core
	sol       solver
	arenaCl   []clause
	arenaPtrs []*clause
	arenaLits []Lit
	occ       []int32
	watchBack []int32
	pos, neg  []float64
	orderBuf  []int
	normBuf   []Lit
}

// NewIncremental returns an empty incremental solver.
func NewIncremental() *Incremental {
	return &Incremental{
		guard:   -1,
		permOff: []int32{0},
		grpOff:  []int32{0},
	}
}

// NumVars returns the number of allocated variables (including guards
// and retired group variables).
func (inc *Incremental) NumVars() int { return inc.numVars }

// NumPermanent returns the number of permanent clauses added so far;
// callers record it per column block to pick SolveStep's active prefix.
func (inc *Incremental) NumPermanent() int { return len(inc.permOff) - 1 }

// NewVar allocates a fresh variable.
func (inc *Incremental) NewVar() int {
	v := inc.numVars
	inc.numVars++
	inc.prefer = append(inc.prefer, -1)
	inc.inert = append(inc.inert, false)
	return v
}

// Prefer records a branching-polarity hint, as Formula.Prefer does.
func (inc *Incremental) Prefer(v int, value bool) {
	if value {
		inc.prefer[v] = 1
	} else {
		inc.prefer[v] = 0
	}
}

// SetInert marks v (not) inert. Inert variables take part in no active
// clause and are excluded from the branching order, so a step behaves as
// if they did not exist.
func (inc *Incremental) SetInert(v int, inert bool) { inc.inert[v] = inert }

// norm applies Formula.Add's literal normalization: duplicates removed,
// tautologies reported. The returned slice is valid until the next call.
func (inc *Incremental) norm(lits []Lit) ([]Lit, bool) {
	out := inc.normBuf[:0]
	for _, l := range lits {
		if l.Var() >= inc.numVars {
			panic(fmt.Sprintf("sat: literal %v beyond %d vars", l, inc.numVars))
		}
		dup := false
		for _, o := range out {
			if o == l.Neg() {
				inc.normBuf = out
				return nil, true
			}
			if o == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	inc.normBuf = out
	return out, false
}

// AddPermanent appends a permanent (structural prefix) clause. It
// returns the normalized core length and whether the clause was kept
// (tautologies are dropped, as Formula.Add drops them), so callers can
// maintain fresh-formula-equivalent size statistics.
func (inc *Incremental) AddPermanent(lits ...Lit) (int, bool) {
	out, taut := inc.norm(lits)
	if taut {
		return 0, false
	}
	if len(out) == 0 {
		inc.emptyPerm = append(inc.emptyPerm, int32(len(inc.permOff)-1))
	}
	inc.permLits = append(inc.permLits, out...)
	inc.permOff = append(inc.permOff, int32(len(inc.permLits)))
	return len(out), true
}

// BeginGroup retires the current assumption group — its guard and
// auxiliary variables become permanently inert, its clauses are dropped
// (equivalently: its guard is assumed false forever, satisfying them) —
// and opens a new one with a fresh guard variable.
func (inc *Incremental) BeginGroup() {
	if inc.guard >= 0 {
		inc.inert[inc.guard] = true
		for _, v := range inc.grpVars {
			inc.inert[v] = true
		}
	}
	inc.grpLits = inc.grpLits[:0]
	inc.grpOff = append(inc.grpOff[:0], 0)
	inc.grpVars = inc.grpVars[:0]
	inc.grpEmpty = false
	inc.guard = inc.NewVar()
}

// NewGroupVar allocates an auxiliary variable owned by the current
// group; it is retired with the group.
func (inc *Incremental) NewGroupVar() int {
	v := inc.NewVar()
	inc.grpVars = append(inc.grpVars, v)
	return v
}

// AddGroup appends a clause to the current group; the guard literal is
// attached internally. Return values as for AddPermanent.
func (inc *Incremental) AddGroup(lits ...Lit) (int, bool) {
	if inc.guard < 0 {
		panic("sat: AddGroup before BeginGroup")
	}
	out, taut := inc.norm(lits)
	if taut {
		return 0, false
	}
	if len(out) == 0 {
		inc.grpEmpty = true
	}
	inc.grpLits = append(inc.grpLits, out...)
	inc.grpLits = append(inc.grpLits, NegLit(inc.guard))
	inc.grpOff = append(inc.grpOff, int32(len(inc.grpLits)))
	return len(out), true
}

// grown returns s resized to n elements, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite.
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// SolveStep solves the conjunction of the first activePerm permanent
// clauses, the current group, and the warm seeds, under the group
// assumption. The result — verdict, model, counters, stable exports —
// is bit-identical to DPLLEngine.SolveWarm on the equivalent re-encoded
// formula (the same clauses without guards, over only the non-inert
// variables, in the same order, with the same seeds).
func (inc *Incremental) SolveStep(activePerm int, lim Limits, w *Warm) Result {
	if inc.grpEmpty {
		return Result{Status: Unsat}
	}
	for _, i := range inc.emptyPerm {
		if int(i) < activePerm {
			return Result{Status: Unsat}
		}
	}

	n := inc.numVars
	inc.f.NumVars = n
	s := &inc.sol
	s.f = &inc.f
	s.res = Result{}
	s.actInc = 1
	s.analyzeStable = false
	s.trail = s.trail[:0]
	s.trailLo = 0
	s.limits = s.limits[:0]
	s.stableUnits = s.stableUnits[:0]

	s.assign = grown(s.assign, n)
	s.level = grown(s.level, n)
	s.reason = grown(s.reason, n)
	s.activity = grown(s.activity, n)
	s.phase = grown(s.phase, n)
	s.seen = grown(s.seen, n)
	s.stab0 = grown(s.stab0, n)
	for v := 0; v < n; v++ {
		s.assign[v] = -1
		s.level[v] = 0
		s.reason[v] = -1
		s.activity[v] = 0
		s.seen[v] = false
		s.stab0[v] = false
	}
	if cap(s.watches) >= 2*n {
		s.watches = s.watches[:2*n]
	} else {
		s.watches = make([][]int32, 2*n)
	}

	// Assemble the active clause lits into one arena: permanent prefix,
	// then the guarded group, then seeds (mirroring solver.seed's skip
	// rules so counts line up before the copy).
	nGrp := len(inc.grpOff) - 1
	if inc.guard < 0 {
		nGrp = 0
	}
	nCl := activePerm + nGrp
	permLits := int(inc.permOff[activePerm])
	coreLits := permLits + len(inc.grpLits)
	nSeed, seedLits := 0, 0
	if w != nil {
		for _, c := range w.Clauses {
			if seedUsable(c, n) {
				nSeed++
				seedLits += len(c)
			}
		}
	}
	inc.arenaCl = grown(inc.arenaCl, nCl+nSeed)
	inc.arenaLits = grown(inc.arenaLits, coreLits+seedLits)
	copy(inc.arenaLits, inc.permLits[:permLits])
	copy(inc.arenaLits[permLits:], inc.grpLits)

	// Branching scores and watch-occurrence counts, exactly as newSolver
	// computes them for the guard-free formula: a guarded clause scores
	// by its core, so the guard variable accumulates no activity.
	pos := grown(inc.pos, n)
	neg := grown(inc.neg, n)
	for v := 0; v < n; v++ {
		pos[v], neg[v] = 0, 0
	}
	inc.pos, inc.neg = pos, neg
	occ := grown(inc.occ, 2*n)
	for i := range occ {
		occ[i] = 0
	}
	inc.occ = occ
	clauseAt := func(i int) ([]Lit, bool) {
		if i < activePerm {
			return inc.arenaLits[inc.permOff[i]:inc.permOff[i+1]], false
		}
		j := i - activePerm
		return inc.arenaLits[permLits+int(inc.grpOff[j]) : permLits+int(inc.grpOff[j+1])], true
	}
	for i := 0; i < nCl; i++ {
		lits, guarded := clauseAt(i)
		core := lits
		if guarded {
			core = lits[:len(lits)-1]
		}
		w := math.Pow(2, -float64(len(core)))
		for _, l := range core {
			if l.Sign() {
				neg[l.Var()] += w
			} else {
				pos[l.Var()] += w
			}
		}
		if len(lits) >= 2 {
			occ[lits[0]]++
			occ[lits[1]]++
		}
	}
	total := int32(0)
	for _, o := range occ {
		total += o
	}
	inc.watchBack = grown(inc.watchBack, int(total))
	off := int32(0)
	for l := 0; l < 2*n; l++ {
		o := occ[l]
		s.watches[l] = inc.watchBack[off : off : off+o]
		off += o
	}

	s.clauses = inc.arenaPtrs[:0]
	for i := 0; i < nCl; i++ {
		lits, guarded := clauseAt(i)
		cl := &inc.arenaCl[i]
		cl.lits = lits
		cl.learned = false
		cl.stable = !guarded
		cl.guarded = guarded
		ci := int32(len(s.clauses))
		s.clauses = append(s.clauses, cl)
		if len(lits) >= 2 {
			s.watches[lits[0]] = append(s.watches[lits[0]], ci)
			s.watches[lits[1]] = append(s.watches[lits[1]], ci)
		}
	}
	if w != nil {
		litOff, seedIdx := coreLits, nCl
		for _, c := range w.Clauses {
			if !seedUsable(c, n) {
				continue
			}
			copy(inc.arenaLits[litOff:], c)
			cl := &inc.arenaCl[seedIdx]
			seedIdx++
			cl.lits = inc.arenaLits[litOff : litOff+len(c) : litOff+len(c)]
			litOff += len(c)
			cl.learned = true
			cl.stable = true
			cl.guarded = false
			ci := int32(len(s.clauses))
			s.clauses = append(s.clauses, cl)
			if len(cl.lits) >= 2 {
				s.watches[cl.lits[0]] = append(s.watches[cl.lits[0]], ci)
				s.watches[cl.lits[1]] = append(s.watches[cl.lits[1]], ci)
			}
		}
	}

	// Branching order over the live variables only — the image, under the
	// chain's variable translation, of the fresh formula's full order.
	order := inc.orderBuf[:0]
	for v := 0; v < n; v++ {
		if inc.inert[v] || v == inc.guard {
			continue
		}
		order = append(order, v)
		s.activity[v] = pos[v] + neg[v]
		switch inc.prefer[v] {
		case 0:
			s.phase[v] = false
		case 1:
			s.phase[v] = true
		default:
			s.phase[v] = pos[v] >= neg[v]
		}
	}
	inc.orderBuf = order
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if s.activity[va] != s.activity[vb] {
			return s.activity[va] > s.activity[vb]
		}
		return va < vb
	})
	s.order = order

	// Assume the guard at level 0 and start propagation past it, so the
	// guard's (inert) watch list is never scanned and the trail beyond
	// this point matches the fresh solve position for position.
	if inc.guard >= 0 {
		s.assign[inc.guard] = 1
		s.level[inc.guard] = 0
		s.reason[inc.guard] = -1
		s.trail = append(s.trail, PosLit(inc.guard))
		s.trailLo = len(s.trail)
	}

	r := s.run(lim)
	inc.arenaPtrs = s.clauses[:0]
	return r
}

// seedUsable mirrors solver.seed's skip rules (empty or out-of-range
// clauses are ignored) so the arena can be sized before installing.
func seedUsable(c []Lit, numVars int) bool {
	if len(c) == 0 {
		return false
	}
	for _, l := range c {
		if l.Var() >= numVars {
			return false
		}
	}
	return true
}
