// Package sat provides a CNF model and two complete/incomplete solvers: a
// DPLL branch-and-bound procedure with a backtrack budget (the role the
// SIS SAT program plays in the paper) and a WalkSAT-style local search
// engine in the spirit of Gu's SAT work.
package sat

import (
	"fmt"
	"strings"
)

// Lit is a literal: variable index v (0-based) encoded as 2v for the
// positive literal and 2v+1 for the negation.
type Lit int32

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return Lit(2 * v) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return Lit(2*v + 1) }

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l) >> 1 }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Formula is a CNF formula under construction.
type Formula struct {
	NumVars  int
	Clauses  [][]Lit
	names    []string
	prefer   []int8 // -1 none, 0 prefer false, 1 prefer true
	hasEmpty bool
	// stablePrefix marks the first clauses as structural: invariant
	// across the related formulas of a widening/insertion chain (see
	// MarkStablePrefix).
	stablePrefix int
}

// MarkStablePrefix declares every clause added so far "stable":
// structural constraints that recur verbatim (modulo signal-column
// instantiation) in every related formula of a solve chain. The DPLL
// engine tracks which learned clauses derive exclusively from stable
// clauses; only those are exported for warm-starting later searches
// (Result.StableLearned), because a clause derived through a
// non-stable constraint is not implied by the next formula in the
// chain. Encoders call this once, after the invariant constraints and
// before the per-problem ones.
func (f *Formula) MarkStablePrefix() { f.stablePrefix = len(f.Clauses) }

// StablePrefix returns the number of leading stable clauses.
func (f *Formula) StablePrefix() int { return f.stablePrefix }

// Prefer records a branching-polarity hint for variable v: the solver
// tries that value first. Encoders use it to steer the search toward
// structurally cheap models (e.g. stable phases over excited ones).
func (f *Formula) Prefer(v int, value bool) {
	for len(f.prefer) < f.NumVars {
		f.prefer = append(f.prefer, -1)
	}
	if value {
		f.prefer[v] = 1
	} else {
		f.prefer[v] = 0
	}
}

// Preferred returns the polarity hint for v (-1 when none).
func (f *Formula) Preferred(v int) int8 {
	if v < len(f.prefer) {
		return f.prefer[v]
	}
	return -1
}

// NewFormula returns an empty formula.
func NewFormula() *Formula { return &Formula{} }

// NewVar allocates a fresh variable, optionally named for diagnostics,
// and returns its index.
func (f *Formula) NewVar(name string) int {
	v := f.NumVars
	f.NumVars++
	f.names = append(f.names, name)
	return v
}

// VarName returns the diagnostic name of variable v.
func (f *Formula) VarName(v int) string {
	if v < len(f.names) && f.names[v] != "" {
		return f.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// Add appends a clause. Duplicate literals are removed; a clause holding
// both a literal and its complement is a tautology and is dropped. An
// empty clause makes the formula trivially unsatisfiable.
func (f *Formula) Add(lits ...Lit) {
	// Clauses are short (edge-compatibility clauses top out at four
	// literals), so dedup by scanning the kept literals instead of
	// allocating a set per call.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= f.NumVars {
			panic(fmt.Sprintf("sat: literal %v beyond %d vars", l, f.NumVars))
		}
		dup := false
		for _, o := range out {
			if o == l.Neg() {
				return // tautology
			}
			if o == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		f.hasEmpty = true
	}
	f.Clauses = append(f.Clauses, out)
}

// NumClauses returns the clause count.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// NumLiterals returns the total literal count across clauses.
func (f *Formula) NumLiterals() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

// Check evaluates the formula under a full assignment.
func (f *Formula) Check(model []bool) bool {
	if f.hasEmpty {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if model[l.Var()] != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// DIMACS renders the formula in DIMACS cnf format.
func (f *Formula) DIMACS() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			v := l.Var() + 1
			if l.Sign() {
				v = -v
			}
			fmt.Fprintf(&b, "%d ", v)
		}
		b.WriteString("0\n")
	}
	return b.String()
}
