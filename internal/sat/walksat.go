package sat

import (
	"context"
	"math/rand"
	"sync/atomic"
)

// LocalSearchOptions tunes the WalkSAT-style solver.
type LocalSearchOptions struct {
	MaxFlips  int64   // total flip budget (default 200000)
	Restarts  int     // random restarts (default 10)
	Noise     float64 // probability of a random walk move (default 0.5)
	Seed      int64   // RNG seed; runs are deterministic for a fixed seed
	BreakTies bool    // pick lowest-index variable among ties instead of random
	// Cancel, when non-nil, is polled periodically: a true value stops
	// the search with BacktrackLimit (used by the portfolio racer to
	// reap a losing engine; the result is then discarded).
	Cancel *atomic.Bool
	// Ctx, when non-nil, is polled on the same cadence as Cancel: a
	// canceled context stops the flip loop promptly with Canceled.
	Ctx context.Context
}

func (o LocalSearchOptions) withDefaults() LocalSearchOptions {
	if o.MaxFlips == 0 {
		o.MaxFlips = 200000
	}
	if o.Restarts == 0 {
		o.Restarts = 10
	}
	if o.Noise == 0 {
		o.Noise = 0.5
	}
	return o
}

// LocalSearch runs WalkSAT with the SKC break-count heuristic. It is an
// incomplete solver: Sat when a model is found, BacktrackLimit when the
// flip budget runs out (it can never prove Unsat). This engine follows
// the local-search line of SAT work by the paper's second author.
func LocalSearch(f *Formula, opt LocalSearchOptions) Result {
	opt = opt.withDefaults()
	// An already-canceled context never starts the search: small formulas
	// can otherwise finish before the flip loop's first poll comes due.
	if opt.Ctx != nil && opt.Ctx.Err() != nil {
		return Result{Status: Canceled}
	}
	if f.hasEmpty {
		return Result{Status: Unsat}
	}
	if f.NumVars == 0 {
		return Result{Status: Sat, Model: nil}
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))

	// occ[l] lists clauses containing literal l.
	occ := make([][]int32, 2*f.NumVars)
	for ci, c := range f.Clauses {
		for _, l := range c {
			occ[l] = append(occ[l], int32(ci))
		}
	}

	var res Result
	model := make([]bool, f.NumVars)
	trueCount := make([]int32, len(f.Clauses)) // satisfied literals per clause
	var unsat []int32                          // indices of unsatisfied clauses
	posInUnsat := make([]int32, len(f.Clauses))

	litTrue := func(l Lit) bool { return model[l.Var()] != l.Sign() }
	addUnsat := func(ci int32) {
		posInUnsat[ci] = int32(len(unsat))
		unsat = append(unsat, ci)
	}
	delUnsat := func(ci int32) {
		p := posInUnsat[ci]
		last := unsat[len(unsat)-1]
		unsat[p] = last
		posInUnsat[last] = p
		unsat = unsat[:len(unsat)-1]
	}
	rebuild := func() {
		unsat = unsat[:0]
		for ci, c := range f.Clauses {
			n := int32(0)
			for _, l := range c {
				if litTrue(l) {
					n++
				}
			}
			trueCount[ci] = n
			if n == 0 {
				addUnsat(int32(ci))
			}
		}
	}
	flip := func(v int) {
		model[v] = !model[v]
		var nowTrue, nowFalse Lit
		if model[v] {
			nowTrue, nowFalse = PosLit(v), NegLit(v)
		} else {
			nowTrue, nowFalse = NegLit(v), PosLit(v)
		}
		for _, ci := range occ[nowTrue] {
			trueCount[ci]++
			if trueCount[ci] == 1 {
				delUnsat(ci)
			}
		}
		for _, ci := range occ[nowFalse] {
			trueCount[ci]--
			if trueCount[ci] == 0 {
				addUnsat(ci)
			}
		}
	}
	breakCount := func(v int) int {
		// Clauses that become unsatisfied if v flips: currently satisfied
		// only by v's current literal.
		var cur Lit
		if model[v] {
			cur = PosLit(v)
		} else {
			cur = NegLit(v)
		}
		n := 0
		for _, ci := range occ[cur] {
			if trueCount[ci] == 1 {
				n++
			}
		}
		return n
	}

	for r := 0; r < opt.Restarts; r++ {
		for v := range model {
			model[v] = rng.Intn(2) == 1
		}
		rebuild()
		budget := opt.MaxFlips / int64(opt.Restarts)
		for fl := int64(0); fl < budget; fl++ {
			if fl&1023 == 0 {
				if opt.Cancel != nil && opt.Cancel.Load() {
					res.Status = BacktrackLimit
					return res
				}
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					res.Status = Canceled
					return res
				}
			}
			if len(unsat) == 0 {
				res.Status = Sat
				res.Model = append([]bool(nil), model...)
				return res
			}
			c := f.Clauses[unsat[rng.Intn(len(unsat))]]
			// SKC: free move if some variable has break count 0.
			bestV, bestB := -1, int(^uint(0)>>1)
			for _, l := range c {
				b := breakCount(l.Var())
				if b < bestB || (b == bestB && opt.BreakTies && l.Var() < bestV) {
					bestV, bestB = l.Var(), b
				}
			}
			var pick int
			if bestB == 0 || rng.Float64() >= opt.Noise {
				pick = bestV
			} else {
				pick = c[rng.Intn(len(c))].Var()
			}
			flip(pick)
			res.Decisions++
			res.Flips++
		}
	}
	res.Status = BacktrackLimit
	return res
}
