package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	p, n := PosLit(5), NegLit(5)
	if p.Var() != 5 || n.Var() != 5 {
		t.Fatalf("Var broken")
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("Sign broken")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatalf("Neg broken")
	}
	if !strings.Contains(n.String(), "x5") {
		t.Fatalf("String broken: %s", n)
	}
}

func TestFormulaTautologyAndDuplicates(t *testing.T) {
	f := NewFormula()
	a := f.NewVar("a")
	b := f.NewVar("b")
	f.Add(PosLit(a), NegLit(a)) // tautology: dropped
	if f.NumClauses() != 0 {
		t.Fatalf("tautology not dropped")
	}
	f.Add(PosLit(a), PosLit(a), PosLit(b))
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 2 {
		t.Fatalf("duplicates not removed")
	}
	if f.NumLiterals() != 2 {
		t.Fatalf("literal count %d", f.NumLiterals())
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	f := NewFormula()
	f.Add()
	if r := Solve(f, Limits{}); r.Status != Unsat {
		t.Fatalf("empty clause must be UNSAT, got %v", r.Status)
	}
	if r := LocalSearch(f, LocalSearchOptions{}); r.Status != Unsat {
		t.Fatalf("local search on empty clause: %v", r.Status)
	}
}

func TestTrivialSat(t *testing.T) {
	f := NewFormula()
	a := f.NewVar("a")
	b := f.NewVar("b")
	f.Add(PosLit(a))
	f.Add(NegLit(b))
	r := Solve(f, Limits{})
	if r.Status != Sat || !r.Model[a] || r.Model[b] {
		t.Fatalf("trivial units: %+v", r)
	}
}

func TestSimpleUnsat(t *testing.T) {
	f := NewFormula()
	a := f.NewVar("a")
	b := f.NewVar("b")
	f.Add(PosLit(a), PosLit(b))
	f.Add(PosLit(a), NegLit(b))
	f.Add(NegLit(a), PosLit(b))
	f.Add(NegLit(a), NegLit(b))
	if r := Solve(f, Limits{}); r.Status != Unsat {
		t.Fatalf("2-var complete falsification must be UNSAT, got %v", r.Status)
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons into n holes — UNSAT.
func pigeonhole(n int) *Formula {
	f := NewFormula()
	v := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		v[p] = make([]int, n)
		for h := 0; h < n; h++ {
			v[p][h] = f.NewVar("")
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(v[p][h])
		}
		f.Add(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.Add(NegLit(v[p1][h]), NegLit(v[p2][h]))
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		if r := Solve(pigeonhole(n), Limits{}); r.Status != Unsat {
			t.Fatalf("PHP(%d+1,%d) = %v, want UNSAT", n, n, r.Status)
		}
	}
}

func TestBacktrackLimit(t *testing.T) {
	r := Solve(pigeonhole(8), Limits{MaxBacktracks: 10})
	if r.Status != BacktrackLimit {
		t.Fatalf("tiny budget on PHP(9,8): %v, want BACKTRACK-LIMIT", r.Status)
	}
	if BacktrackLimit.String() != "BACKTRACK-LIMIT" || Sat.String() != "SAT" || Unsat.String() != "UNSAT" {
		t.Fatalf("status strings broken")
	}
}

// randomCNF builds a random k-CNF instance.
func randomCNF(rng *rand.Rand, vars, clauses, k int) *Formula {
	f := NewFormula()
	for i := 0; i < vars; i++ {
		f.NewVar("")
	}
	for c := 0; c < clauses; c++ {
		lits := make([]Lit, k)
		for j := range lits {
			v := rng.Intn(vars)
			if rng.Intn(2) == 0 {
				lits[j] = PosLit(v)
			} else {
				lits[j] = NegLit(v)
			}
		}
		f.Add(lits...)
	}
	return f
}

// bruteForce decides satisfiability by enumeration (vars ≤ 20).
func bruteForce(f *Formula) bool {
	n := f.NumVars
	model := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for v := 0; v < n; v++ {
			model[v] = m&(1<<v) != 0
		}
		if f.Check(model) {
			return true
		}
	}
	return false
}

// TestSolveMatchesBruteForce cross-checks the CDCL verdict against
// exhaustive enumeration on random small formulas, and validates models.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		f := randomCNF(rng, 4+rng.Intn(8), 3+rng.Intn(30), 2+rng.Intn(2))
		want := bruteForce(f)
		r := Solve(f, Limits{})
		if (r.Status == Sat) != want {
			t.Fatalf("case %d: solver %v, brute force sat=%v\n%s", i, r.Status, want, f.DIMACS())
		}
		if r.Status == Sat && !f.Check(r.Model) {
			t.Fatalf("case %d: returned model does not satisfy the formula", i)
		}
	}
}

// TestLocalSearchFindsModels: WalkSAT must find models for satisfiable
// instances (verified by the complete solver) and never report Unsat on
// a non-empty formula.
func TestLocalSearchFindsModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	found := 0
	for i := 0; i < 100; i++ {
		f := randomCNF(rng, 10, 20, 3)
		if Solve(f, Limits{}).Status != Sat {
			continue
		}
		r := LocalSearch(f, LocalSearchOptions{Seed: int64(i)})
		if r.Status == Sat {
			if !f.Check(r.Model) {
				t.Fatalf("case %d: local search model invalid", i)
			}
			found++
		}
	}
	if found < 50 {
		t.Fatalf("local search solved only %d instances", found)
	}
}

func TestLocalSearchBudgetExhausted(t *testing.T) {
	f := pigeonhole(4) // UNSAT: local search must give up
	r := LocalSearch(f, LocalSearchOptions{MaxFlips: 2000, Restarts: 2, Seed: 3})
	if r.Status != BacktrackLimit {
		t.Fatalf("local search on UNSAT: %v, want budget exhaustion", r.Status)
	}
}

func TestPreferredPolarity(t *testing.T) {
	f := NewFormula()
	a := f.NewVar("a")
	b := f.NewVar("b")
	f.Add(PosLit(a), PosLit(b)) // a ∨ b: both (1,0) and (0,1) work
	f.Prefer(a, false)
	f.Prefer(b, true)
	r := Solve(f, Limits{})
	if r.Status != Sat || r.Model[a] || !r.Model[b] {
		t.Fatalf("polarity hints ignored: %+v", r.Model)
	}
	if f.Preferred(a) != 0 || f.Preferred(b) != 1 {
		t.Fatalf("Preferred getters broken")
	}
}

func TestDIMACS(t *testing.T) {
	f := NewFormula()
	a := f.NewVar("a")
	b := f.NewVar("b")
	f.Add(PosLit(a), NegLit(b))
	out := f.DIMACS()
	if !strings.HasPrefix(out, "p cnf 2 1\n") || !strings.Contains(out, "1 -2 0") {
		t.Fatalf("DIMACS output:\n%s", out)
	}
}

// TestQuickModelCheck: Formula.Check agrees with manual clause
// evaluation for arbitrary assignments.
func TestQuickModelCheck(t *testing.T) {
	f := NewFormula()
	for i := 0; i < 6; i++ {
		f.NewVar("")
	}
	f.Add(PosLit(0), NegLit(1), PosLit(2))
	f.Add(NegLit(3), PosLit(4))
	f.Add(PosLit(5))
	err := quick.Check(func(bits uint8) bool {
		model := make([]bool, 6)
		for v := 0; v < 6; v++ {
			model[v] = bits&(1<<v) != 0
		}
		want := (model[0] || !model[1] || model[2]) && (!model[3] || model[4]) && model[5]
		return f.Check(model) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolverStatistics(t *testing.T) {
	f := pigeonhole(5)
	r := Solve(f, Limits{})
	if r.Decisions == 0 || r.Backtracks == 0 || r.Props == 0 {
		t.Fatalf("statistics not collected: %+v", r)
	}
}
