package csc

import (
	"context"
	"errors"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
)

func TestSolveBDDResolvesTwoPulse(t *testing.T) {
	g := graph(t, twoPulse)
	conf := sg.Analyze(g)
	cols, err := SolveBDD(context.Background(), g, conf, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || len(cols[0]) != g.NumStates() {
		t.Fatalf("shape wrong")
	}
	for _, e := range g.Edges {
		if !sg.EdgeCompatible(cols[0][e.From], cols[0][e.To]) {
			t.Fatalf("edge relation violated")
		}
	}
	for _, p := range conf.CSC {
		a, b := cols[0][p.A], cols[0][p.B]
		if !((a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0)) {
			t.Fatalf("pair %v not separated: %v/%v", p, a, b)
		}
	}
	// Minimum-excitation: the 6-cycle needs exactly one Up and one Down.
	excited := 0
	for _, ph := range cols[0] {
		if ph == sg.PUp || ph == sg.PDown {
			excited++
		}
	}
	if excited != 2 {
		t.Fatalf("excited states = %d, want the optimum 2", excited)
	}
}

func TestSolveBDDUnsatGrowth(t *testing.T) {
	// pa has a code group with three mutually conflicting behaviour
	// classes; one binary signal cannot give three states pairwise
	// stable-complementary values.
	spec, err := bench.Load("pa")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conf := sg.Analyze(g)
	if conf.LowerBound < 2 {
		t.Fatalf("pa lower bound = %d, expected ≥ 2", conf.LowerBound)
	}
	if _, err := SolveBDD(context.Background(), g, conf, 1, 0); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("m=1 should be unsatisfiable, got %v", err)
	}
	cols, err := SolveBDD(context.Background(), g, conf, 2, 0)
	if err != nil {
		t.Fatalf("m=2: %v", err)
	}
	if len(cols) != 2 {
		t.Fatalf("want 2 columns")
	}
}

func TestSolveBDDNodeLimitFallsBackViaAttempt(t *testing.T) {
	g := graph(t, twoPulse)
	conf := sg.Analyze(g)
	// Tiny node limit: SolveBDD must fail with ErrNodeLimit...
	if _, err := SolveBDD(context.Background(), g, conf, 1, 16); err == nil {
		t.Fatalf("tiny node limit should fail")
	}
	// ...and Attempt must transparently fall back to the SAT engine.
	cols, stats, err := Attempt(context.Background(), g, conf, 1, SolveOptions{Engine: BDD, BDDNodeLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Status.String() != "SAT" || cols == nil {
		t.Fatalf("fallback failed: %+v", stats)
	}
}

func TestSolveBDDRejectsBadInput(t *testing.T) {
	g := graph(t, twoPulse)
	if _, err := SolveBDD(context.Background(), g, &sg.Conflicts{CSC: []sg.Pair{{A: 0, B: 0}}}, 1, 0); err == nil {
		t.Fatalf("self pair accepted")
	}
	if _, err := SolveBDD(context.Background(), g, sg.Analyze(g), 0, 0); err == nil {
		t.Fatalf("m=0 accepted")
	}
}

// TestBDDDirectSolve runs the whole direct flow with the BDD engine.
func TestBDDDirectSolve(t *testing.T) {
	g := graph(t, twoPulse)
	res, err := Solve(context.Background(), g, SolveOptions{Engine: BDD})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted < 1 {
		t.Fatalf("%+v", res)
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("conflicts remain")
	}
	if bad := g.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("phases inconsistent: %v", bad)
	}
}
