package csc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
)

// WarmChain accumulates reusable learned clauses across the related
// formulas of one solve chain: the widening attempts of a module, the
// m → m+1 growth of Figure 4's joint loop, and the per-candidate
// formulas of incremental insertion. All of these share the same state
// graph, so their edge-compatibility clauses are identical per signal
// column; learned clauses derived exclusively from that stable prefix
// (sat.Result.StableLearned) are consequences of every formula in the
// chain and can seed later searches.
//
// Clauses are stored in a column-normalized space — variable 2s+bit for
// state s's (a,b) bit pair, signs preserved — because a stable learned
// clause constrains a single signal column and every column is
// symmetric: Seed re-instantiates each clause at every column of the
// next formula.
//
// A chain is bound to one graph (Rebind): reusing clauses across
// different graphs is unsound, since a clause learned from a coarser
// quotient's edges can exclude models of a finer one. A WarmChain is
// not safe for concurrent use; chains are per-module and modules solve
// sequentially. All methods are nil-receiver safe no-ops.
type WarmChain struct {
	fp      string
	clauses [][]sat.Lit
	seen    map[string]struct{}
}

// maxChainClauses bounds a chain so pathological instances cannot make
// every later formula pay an unbounded seeding cost.
const maxChainClauses = 20000

// NewWarmChain returns an empty, unbound chain.
func NewWarmChain() *WarmChain {
	return &WarmChain{seen: make(map[string]struct{})}
}

// Rebind attaches the chain to g, dropping all accumulated clauses if
// the chain was bound to a structurally different graph. Structure
// means exactly what the stable prefix encodes: the state count and the
// labelled edge relation (signal, direction, input-ness per edge).
func (c *WarmChain) Rebind(g *sg.Graph) {
	if c == nil {
		return
	}
	fp := graphFingerprint(g)
	if c.fp == fp {
		return
	}
	c.fp = fp
	c.clauses = c.clauses[:0]
	clear(c.seen)
}

// Reset returns the chain to its just-constructed state — unbound, no
// clauses — while keeping its allocations for reuse. Speculative lanes
// pool one chain per worker and Reset it before every module, so a
// pooled chain behaves exactly like the fresh chain the sequential
// path constructs per module (parity-critical: carried clauses would
// change warm hashes, cache keys, and models whenever two modules'
// quotients share a fingerprint).
func (c *WarmChain) Reset() {
	if c == nil {
		return
	}
	c.fp = ""
	c.clauses = c.clauses[:0]
	clear(c.seen)
}

// graphFingerprint hashes the inputs of the edge-compatibility clauses.
func graphFingerprint(g *sg.Graph) string {
	h := sha256.New()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	w(uint64(len(g.States)), uint64(len(g.Edges)))
	for _, e := range g.Edges {
		in := uint64(0)
		if g.InputEdge(e) {
			in = 1
		}
		w(uint64(e.From), uint64(e.To), uint64(e.Sig+1), uint64(e.Dir), in)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hash fingerprints the chain's current seed state for cache keys. A
// nil chain hashes to "-", distinct from the hash of an empty chain: a
// caller with no chain and a caller with a drained one absorb hits
// differently, so they must not share entries.
func (c *WarmChain) Hash() string {
	if c == nil {
		return "-"
	}
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(len(c.clauses)))
	for _, cl := range c.clauses {
		w(uint64(len(cl)))
		for _, l := range cl {
			w(uint64(l))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Len returns the number of accumulated normalized clauses.
func (c *WarmChain) Len() int {
	if c == nil {
		return 0
	}
	return len(c.clauses)
}

// Seed instantiates the chain's clauses for a formula over numStates
// states and m signal columns, in deterministic (absorption) order:
// each normalized clause yields one concrete clause per column. Returns
// nil when there is nothing to seed.
func (c *WarmChain) Seed(numStates, m int) *sat.Warm {
	if c == nil || len(c.clauses) == 0 {
		return nil
	}
	w := &sat.Warm{Clauses: make([][]sat.Lit, 0, len(c.clauses)*m)}
	for _, cl := range c.clauses {
		for k := 0; k < m; k++ {
			inst := make([]sat.Lit, len(cl))
			for i, l := range cl {
				nv := l.Var() // 2s + bit
				s, bit := nv>>1, nv&1
				v := 2*(k*numStates+s) + bit // column-major Encode layout
				inst[i] = sat.Lit(2*v) | sat.Lit(l&1)
			}
			w.Clauses = append(w.Clauses, inst)
		}
	}
	return w
}

// Normalize maps an exported clause set (sat.Result.StableLearned, in
// the variable layout of Encode for numStates states and m columns)
// into the chain's column-normalized space. Clauses that touch
// auxiliary variables or span more than one column are discarded: only
// single-column state-variable clauses are column-symmetric. The result
// is deduplicated and order-deterministic; it does not depend on the
// chain's current contents (cache entries store it verbatim).
func (c *WarmChain) Normalize(numStates, m int, exported [][]sat.Lit) [][]sat.Lit {
	if c == nil || len(exported) == 0 {
		return nil
	}
	stateVars := 2 * numStates * m
	var out [][]sat.Lit
	var seen map[string]struct{}
	for _, cl := range exported {
		norm := make([]sat.Lit, 0, len(cl))
		col := -1
		ok := true
		for _, l := range cl {
			v := l.Var()
			if v >= stateVars {
				ok = false // auxiliary (d/lex) variable
				break
			}
			// Invert the column-major layout v = 2(k·n + s) + bit.
			rem := v % (2 * numStates)
			s, k, bit := rem>>1, v/(2*numStates), v&1
			if col < 0 {
				col = k
			} else if col != k {
				ok = false // spans columns: not column-symmetric
				break
			}
			nv := 2*s + bit
			norm = append(norm, sat.Lit(2*nv)|(l&1))
		}
		if !ok || len(norm) == 0 {
			continue
		}
		sortLits(norm)
		key := litsKey(norm)
		if _, dup := seen[key]; dup {
			continue
		}
		if seen == nil {
			seen = make(map[string]struct{})
		}
		seen[key] = struct{}{}
		out = append(out, norm)
	}
	return out
}

// AbsorbNormalized merges already-normalized clauses into the chain,
// skipping duplicates, up to the chain cap. Both the miss path (with
// its fresh Normalize result) and the cache-hit path (with the stored
// Entry.Warm) call this, so the chain evolves identically either way.
func (c *WarmChain) AbsorbNormalized(norm [][]sat.Lit) {
	if c == nil {
		return
	}
	for _, cl := range norm {
		if len(c.clauses) >= maxChainClauses {
			return
		}
		key := litsKey(cl)
		if _, dup := c.seen[key]; dup {
			continue
		}
		c.seen[key] = struct{}{}
		c.clauses = append(c.clauses, append([]sat.Lit(nil), cl...))
	}
}

// sortLits orders a clause's literals ascending (insertion sort:
// exported clauses are short).
func sortLits(ls []sat.Lit) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// litsKey renders a (sorted) clause as a dedup map key.
func litsKey(ls []sat.Lit) string {
	b := make([]byte, 4*len(ls))
	for i, l := range ls {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(l))
	}
	return string(b)
}
