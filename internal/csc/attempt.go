package csc

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"asyncsyn/internal/bdd"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/modcache"
	"asyncsyn/internal/par"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Attempt tries to find phase columns for m new state signals resolving
// conf on g, using the configured engine. The outcome is reported
// through the returned FormulaStats.Status: Sat (cols valid), Unsat
// (grow m) or BacktrackLimit (budget exhausted — abort). The BDD engine
// falls back to DPLL transparently when its node limit is hit, and
// returns globally minimum-excitation models, so Tighten is applied only
// to SAT-engine models. The Portfolio engine races DPLL against WalkSAT
// concurrently with a deterministic winner (see Engine).
//
// With opt.Cache set, the solve is answered from the module solve cache
// when an identical problem (same layout signature, options and
// warm-chain state — see modcache.Key) was solved before; a hit replays
// the stored outcome, including the producing solve's warm-chain
// contribution, so cached and cold runs are bit-identical. With
// opt.Chain set, DPLL searches are seeded with the chain's reusable
// learned clauses and contribute their own stable exports back.
//
// ctx cancels the solve mid-formula (every engine polls it); a canceled
// attempt returns an error matching synerr.ErrCanceled. Each completed
// formula is also reported to the tracer carried by ctx, if any.
func Attempt(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, m int, opt SolveOptions) ([][]sg.Phase, FormulaStats, error) {
	opt = opt.withDefaults()
	start := time.Now()
	if opt.Cache == nil {
		cols, stats, _, err := solveUncached(ctx, g, conf, m, opt, start)
		return cols, stats, err
	}

	sig := sg.SignatureOf(g, conf)
	key := modcache.Key{
		Canon:         sig.Canon,
		Layout:        sig.Layout,
		M:             m,
		Engine:        int(opt.Engine),
		ExpandXor:     opt.Encoding.ExpandXor,
		SkipUSC:       opt.Encoding.SkipUSC,
		MaxBacktracks: int(opt.MaxBacktracks),
		BDDNodeLimit:  opt.BDDNodeLimit,
		WarmHash:      opt.Chain.Hash(),
	}
	var missStats FormulaStats
	entry, hit, err := opt.Cache.Do(ctx, key, func() (*modcache.Entry, error) {
		cols, stats, norm, err := solveUncached(ctx, g, conf, m, opt, start)
		if err != nil {
			return nil, err
		}
		missStats = stats
		return &modcache.Entry{
			Cols: cols, Signals: stats.Signals, Vars: stats.Vars,
			Clauses: stats.Clauses, Literals: stats.Literals,
			Status: stats.Status, Engine: stats.Engine, Warm: norm,
		}, nil
	})
	if err != nil {
		return nil, FormulaStats{}, err
	}
	if !hit {
		return entry.Cols, missStats, nil
	}

	// Cache hit: replay the stored outcome. The formula-size counters
	// are recorded from the entry so a cached run reports the same
	// sat_formulas/sat_clauses/sat_vars totals as a cold one; search
	// counters (decisions, conflicts, ...) are genuinely zero — no
	// search ran. The warm-chain contribution is replayed too, so every
	// later solve of this chain sees the seeds it would have seen cold.
	stats := FormulaStats{
		Signals: entry.Signals, Vars: entry.Vars, Clauses: entry.Clauses,
		Literals: entry.Literals, Status: entry.Status,
		SolveTime: time.Since(start), Engine: entry.Engine, Cached: true,
	}
	emitFormula(ctx, stats)
	if mc := metrics.From(ctx); mc != nil {
		mc.Add(metrics.SATFormulas, 1)
		mc.Add(metrics.SATClauses, int64(stats.Clauses))
		mc.Add(metrics.SATVars, int64(stats.Vars))
	}
	opt.Chain.AbsorbNormalized(entry.Warm)
	return entry.Cols, stats, nil
}

// solveUncached is one actual solve: encode, search, decode, tighten.
// norm is the solve's normalized warm-chain contribution (already
// absorbed into opt.Chain); callers that cache the outcome store it so
// hits can replay the absorption.
func solveUncached(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, m int, opt SolveOptions, start time.Time) (cols [][]sg.Phase, stats FormulaStats, norm [][]sat.Lit, err error) {
	if opt.Engine == BDD {
		bcols, berr := SolveBDD(ctx, g, conf, m, opt.BDDNodeLimit)
		stats = FormulaStats{
			Signals: m, Vars: 2 * m * len(g.States),
			SolveTime: time.Since(start), Engine: "bdd",
		}
		switch {
		case berr == nil:
			stats.Status = sat.Sat
			emitFormula(ctx, stats)
			recordFormula(ctx, stats, sat.Result{})
			return bcols, stats, nil, nil
		case errors.Is(berr, ErrUnsatisfiable):
			stats.Status = sat.Unsat
			emitFormula(ctx, stats)
			recordFormula(ctx, stats, sat.Result{})
			return nil, stats, nil, nil
		case errors.Is(berr, bdd.ErrNodeLimit):
			// Fall through to the SAT engine below.
		default:
			return nil, stats, nil, berr
		}
	}

	// The incremental chain solver replaces the encode-and-reload cycle
	// for plain DPLL attempts; its results are bit-identical to this
	// function's re-encode path (pinned by TestIncrementalMatchesFresh),
	// so cache entries and warm-chain state stay interchangeable.
	if opt.Incr != nil && opt.Engine == DPLL && !opt.Encoding.ExpandXor {
		return opt.Incr.solve(ctx, g, conf, m, opt, start)
	}

	enc, err := Encode(g, conf, m, opt.Encoding)
	if err != nil {
		return nil, FormulaStats{}, nil, err
	}
	seeds := opt.Chain.Seed(len(g.States), m)
	if seeds != nil {
		metrics.From(ctx).Add(metrics.SATWarmClauses, int64(len(seeds.Clauses)))
	}
	exportStable := opt.Chain != nil
	var dpll sat.Warmable = sat.DPLLEngine{}
	var r sat.Result
	engine := "dpll"
	switch opt.Engine {
	case WalkSAT:
		r = sat.LocalSearch(enc.F, sat.LocalSearchOptions{Ctx: ctx})
		engine = "walksat"
	case Portfolio:
		// Race the canonical CDCL engine against WalkSAT. The winner is
		// decided by results alone (par.Race prefers the lowest accepted
		// index and always waits for DPLL first), so the model — and
		// every downstream state-signal name and cover — is identical no
		// matter how the goroutines are scheduled. WalkSAT only matters
		// when DPLL hits its backtrack budget; since it ran concurrently
		// the rescue costs no extra wall-clock over the abort itself.
		var cancel atomic.Bool
		var widx int
		r, widx = par.Race(func(i int, res sat.Result) bool {
			if i == 0 {
				return res.Status == sat.Sat || res.Status == sat.Unsat
			}
			return res.Status == sat.Sat
		}, &cancel,
			func() sat.Result {
				return dpll.SolveWarm(enc.F, sat.Limits{
					MaxBacktracks: opt.MaxBacktracks, Cancel: &cancel,
					Ctx: ctx, ExportStable: exportStable,
				}, seeds)
			},
			func() sat.Result {
				return sat.LocalSearch(enc.F, sat.LocalSearchOptions{Cancel: &cancel, Ctx: ctx})
			},
		)
		engine = "portfolio:dpll"
		if widx == 1 {
			engine = "portfolio:walksat"
		}
	default:
		r = dpll.SolveWarm(enc.F, sat.Limits{
			MaxBacktracks: opt.MaxBacktracks, Ctx: ctx, ExportStable: exportStable,
		}, seeds)
	}
	stats = FormulaStats{
		Signals: m, Vars: enc.F.NumVars, Clauses: enc.F.NumClauses(),
		Literals: enc.F.NumLiterals(), Status: r.Status, SolveTime: time.Since(start),
		Engine: engine,
	}
	if r.Status == sat.Canceled {
		return nil, stats, nil, synerr.Canceled(ctx.Err())
	}
	emitFormula(ctx, stats)
	recordFormula(ctx, stats, r)
	if opt.Chain != nil && len(r.StableLearned) > 0 {
		norm = opt.Chain.Normalize(len(g.States), m, r.StableLearned)
		opt.Chain.AbsorbNormalized(norm)
	}
	if r.Status != sat.Sat {
		return nil, stats, norm, nil
	}
	cols = enc.DecodePhases(r.Model)
	Tighten(g, conf, cols)
	return cols, stats, norm, nil
}

// recordFormula accumulates the formula's size and the engine's search
// statistics into the metrics collector carried by ctx, if any. For
// portfolio runs r is the deterministic winner's result, so counter
// totals never depend on goroutine timing under the default engines.
func recordFormula(ctx context.Context, st FormulaStats, r sat.Result) {
	mc := metrics.From(ctx)
	if mc == nil {
		return
	}
	mc.Add(metrics.SATFormulas, 1)
	mc.Add(metrics.SATClauses, int64(st.Clauses))
	mc.Add(metrics.SATVars, int64(st.Vars))
	mc.Add(metrics.SATDecisions, r.Decisions)
	mc.Add(metrics.SATConflicts, r.Backtracks)
	mc.Add(metrics.SATPropagations, r.Props)
	mc.Add(metrics.SATLearned, r.Learned)
	mc.Add(metrics.SATRestarts, r.Restarts)
	mc.Add(metrics.WalkSATFlips, r.Flips)
}

// emitFormula reports a solved formula to the tracer carried by ctx.
func emitFormula(ctx context.Context, st FormulaStats) {
	if !trace.Enabled(ctx) {
		return
	}
	trace.Formula(ctx, trace.FormulaEvent{
		Signals:  st.Signals,
		Vars:     st.Vars,
		Clauses:  st.Clauses,
		Literals: st.Literals,
		Status:   st.Status.String(),
		Engine:   st.Engine,
		Duration: st.SolveTime,
	})
}
