package csc

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"asyncsyn/internal/bdd"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/par"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Attempt tries to find phase columns for m new state signals resolving
// conf on g, using the configured engine. The outcome is reported
// through the returned FormulaStats.Status: Sat (cols valid), Unsat
// (grow m) or BacktrackLimit (budget exhausted — abort). The BDD engine
// falls back to DPLL transparently when its node limit is hit, and
// returns globally minimum-excitation models, so Tighten is applied only
// to SAT-engine models. The Portfolio engine races DPLL against WalkSAT
// concurrently with a deterministic winner (see Engine).
//
// ctx cancels the solve mid-formula (every engine polls it); a canceled
// attempt returns an error matching synerr.ErrCanceled. Each completed
// formula is also reported to the tracer carried by ctx, if any.
func Attempt(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, m int, opt SolveOptions) ([][]sg.Phase, FormulaStats, error) {
	opt = opt.withDefaults()
	start := time.Now()

	if opt.Engine == BDD {
		cols, err := SolveBDD(ctx, g, conf, m, opt.BDDNodeLimit)
		stats := FormulaStats{
			Signals: m, Vars: 2 * m * len(g.States),
			SolveTime: time.Since(start), Engine: "bdd",
		}
		switch {
		case err == nil:
			stats.Status = sat.Sat
			emitFormula(ctx, stats)
			recordFormula(ctx, stats, sat.Result{})
			return cols, stats, nil
		case errors.Is(err, ErrUnsatisfiable):
			stats.Status = sat.Unsat
			emitFormula(ctx, stats)
			recordFormula(ctx, stats, sat.Result{})
			return nil, stats, nil
		case errors.Is(err, bdd.ErrNodeLimit):
			// Fall through to the SAT engine below.
		default:
			return nil, stats, err
		}
	}

	enc, err := Encode(g, conf, m, opt.Encoding)
	if err != nil {
		return nil, FormulaStats{}, err
	}
	var r sat.Result
	engine := "dpll"
	switch opt.Engine {
	case WalkSAT:
		r = sat.LocalSearch(enc.F, sat.LocalSearchOptions{Ctx: ctx})
		engine = "walksat"
	case Portfolio:
		// Race the canonical CDCL engine against WalkSAT. The winner is
		// decided by results alone (par.Race prefers the lowest accepted
		// index and always waits for DPLL first), so the model — and
		// every downstream state-signal name and cover — is identical no
		// matter how the goroutines are scheduled. WalkSAT only matters
		// when DPLL hits its backtrack budget; since it ran concurrently
		// the rescue costs no extra wall-clock over the abort itself.
		var cancel atomic.Bool
		var widx int
		r, widx = par.Race(func(i int, res sat.Result) bool {
			if i == 0 {
				return res.Status == sat.Sat || res.Status == sat.Unsat
			}
			return res.Status == sat.Sat
		}, &cancel,
			func() sat.Result {
				return sat.Solve(enc.F, sat.Limits{MaxBacktracks: opt.MaxBacktracks, Cancel: &cancel, Ctx: ctx})
			},
			func() sat.Result {
				return sat.LocalSearch(enc.F, sat.LocalSearchOptions{Cancel: &cancel, Ctx: ctx})
			},
		)
		engine = "portfolio:dpll"
		if widx == 1 {
			engine = "portfolio:walksat"
		}
	default:
		r = sat.Solve(enc.F, sat.Limits{MaxBacktracks: opt.MaxBacktracks, Ctx: ctx})
	}
	stats := FormulaStats{
		Signals: m, Vars: enc.F.NumVars, Clauses: enc.F.NumClauses(),
		Literals: enc.F.NumLiterals(), Status: r.Status, SolveTime: time.Since(start),
		Engine: engine,
	}
	if r.Status == sat.Canceled {
		return nil, stats, synerr.Canceled(ctx.Err())
	}
	emitFormula(ctx, stats)
	recordFormula(ctx, stats, r)
	if r.Status != sat.Sat {
		return nil, stats, nil
	}
	cols := enc.DecodePhases(r.Model)
	Tighten(g, conf, cols)
	return cols, stats, nil
}

// recordFormula accumulates the formula's size and the engine's search
// statistics into the metrics collector carried by ctx, if any. For
// portfolio runs r is the deterministic winner's result, so counter
// totals never depend on goroutine timing under the default engines.
func recordFormula(ctx context.Context, st FormulaStats, r sat.Result) {
	mc := metrics.From(ctx)
	if mc == nil {
		return
	}
	mc.Add(metrics.SATFormulas, 1)
	mc.Add(metrics.SATClauses, int64(st.Clauses))
	mc.Add(metrics.SATVars, int64(st.Vars))
	mc.Add(metrics.SATDecisions, r.Decisions)
	mc.Add(metrics.SATConflicts, r.Backtracks)
	mc.Add(metrics.SATPropagations, r.Props)
	mc.Add(metrics.SATLearned, r.Learned)
	mc.Add(metrics.SATRestarts, r.Restarts)
	mc.Add(metrics.WalkSATFlips, r.Flips)
}

// emitFormula reports a solved formula to the tracer carried by ctx.
func emitFormula(ctx context.Context, st FormulaStats) {
	if !trace.Enabled(ctx) {
		return
	}
	trace.Formula(ctx, trace.FormulaEvent{
		Signals:  st.Signals,
		Vars:     st.Vars,
		Clauses:  st.Clauses,
		Literals: st.Literals,
		Status:   st.Status.String(),
		Engine:   st.Engine,
		Duration: st.SolveTime,
	})
}
