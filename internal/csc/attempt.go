package csc

import (
	"errors"
	"time"

	"asyncsyn/internal/bdd"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
)

// Attempt tries to find phase columns for m new state signals resolving
// conf on g, using the configured engine. The outcome is reported
// through the returned FormulaStats.Status: Sat (cols valid), Unsat
// (grow m) or BacktrackLimit (budget exhausted — abort). The BDD engine
// falls back to DPLL transparently when its node limit is hit, and
// returns globally minimum-excitation models, so Tighten is applied only
// to SAT-engine models.
func Attempt(g *sg.Graph, conf *sg.Conflicts, m int, opt SolveOptions) ([][]sg.Phase, FormulaStats, error) {
	opt = opt.withDefaults()
	start := time.Now()

	if opt.Engine == BDD {
		cols, err := SolveBDD(g, conf, m, opt.BDDNodeLimit)
		stats := FormulaStats{
			Signals: m, Vars: 2 * m * len(g.States),
			SolveTime: time.Since(start),
		}
		switch {
		case err == nil:
			stats.Status = sat.Sat
			return cols, stats, nil
		case errors.Is(err, ErrUnsatisfiable):
			stats.Status = sat.Unsat
			return nil, stats, nil
		case errors.Is(err, bdd.ErrNodeLimit):
			// Fall through to the SAT engine below.
		default:
			return nil, stats, err
		}
	}

	enc, err := Encode(g, conf, m, opt.Encoding)
	if err != nil {
		return nil, FormulaStats{}, err
	}
	var r sat.Result
	if opt.Engine == WalkSAT {
		r = sat.LocalSearch(enc.F, sat.LocalSearchOptions{})
	} else {
		r = sat.Solve(enc.F, sat.Limits{MaxBacktracks: opt.MaxBacktracks})
	}
	stats := FormulaStats{
		Signals: m, Vars: enc.F.NumVars, Clauses: enc.F.NumClauses(),
		Literals: enc.F.NumLiterals(), Status: r.Status, SolveTime: time.Since(start),
	}
	if r.Status != sat.Sat {
		return nil, stats, nil
	}
	cols := enc.DecodePhases(r.Model)
	Tighten(g, conf, cols)
	return cols, stats, nil
}
