package csc

import (
	"context"
	"fmt"
	"time"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
)

// ChainSolver solves the DPLL attempts of one solve chain on a single
// persistent assumption-based incremental solver (sat.Incremental)
// instead of re-encoding each formula from scratch. The column-major
// variable layout makes chain formulas share a literal prefix: the
// edge-compatibility clauses of column k are identical in every formula
// that has column k, so they are encoded once as permanent clauses and
// only the per-attempt pair/symmetry constraints are re-emitted, into a
// retire-and-replace assumption group. Columns beyond the current
// attempt's m are deactivated rather than discarded, so a chain can
// shrink m (the greedy insertion loop's m=1 attempts after a joint m=2
// try) and grow it again for free.
//
// The incremental path is exact, not approximate: SolveStep's result is
// bit-identical to the re-encode path's (verdict, model, counters,
// stable exports), which the parity tests pin. Like WarmChain, a
// ChainSolver is bound to one graph structure and rebinds (resetting
// the solver) when the chain moves to a structurally different graph;
// it is not safe for concurrent use — chains are per-module and modules
// solve sequentially.
type ChainSolver struct {
	fp     string
	inc    *sat.Incremental
	n      int
	cols   int // columns encoded so far
	aVar   [][]int
	bVar   [][]int
	colLo  []int  // first solver variable of column k's 2n-variable block
	colOff []bool // column k currently deactivated
	colCl  []int  // permanent clauses through column k (cumulative)
	colLit []int  // permanent literals through column k (cumulative)

	// Variable translation between the solver's space and the space of
	// the equivalent one-shot Encode formula, for warm-chain seeds in
	// and stable exports out. Auxiliary and guard variables map to -1.
	incToFresh []int32
	freshToInc []int32

	// Fresh-formula-equivalent sizes of the current assumption group.
	grpAux, grpCl, grpLit int

	seedBuf  [][]sat.Lit
	seedLits []sat.Lit
}

// NewChainSolver returns an empty, unbound chain solver.
func NewChainSolver() *ChainSolver { return &ChainSolver{} }

// Reset unbinds the solver so its next use rebuilds from scratch,
// releasing the persistent incremental solver's clause state. Pooled
// solvers (one per speculative worker) Reset between modules so a
// reused solver is indistinguishable from the fresh one the sequential
// path constructs per module — an incremental solver carrying learned
// state across structurally identical modules would diverge from the
// fresh-per-module search.
func (c *ChainSolver) Reset() {
	if c == nil {
		return
	}
	c.fp = ""
	c.inc = nil
}

// rebind attaches the solver to g's structure, resetting it when the
// chain moves to a structurally different graph (same fingerprint as
// WarmChain.Rebind: appending phase columns does not invalidate it).
func (c *ChainSolver) rebind(g *sg.Graph) {
	fp := graphFingerprint(g)
	if c.fp == fp {
		return
	}
	c.fp = fp
	c.inc = sat.NewIncremental()
	c.n = len(g.States)
	c.cols = 0
	c.aVar = make([][]int, c.n)
	c.bVar = make([][]int, c.n)
	c.colLo = c.colLo[:0]
	c.colOff = c.colOff[:0]
	c.colCl = c.colCl[:0]
	c.colLit = c.colLit[:0]
	c.incToFresh = c.incToFresh[:0]
	c.freshToInc = c.freshToInc[:0]
}

// padTranslation extends incToFresh with "no fresh counterpart" entries
// for solver variables allocated since the last column block (group
// auxiliaries and guards).
func (c *ChainSolver) padTranslation() {
	for len(c.incToFresh) < c.inc.NumVars() {
		c.incToFresh = append(c.incToFresh, -1)
	}
}

// clauseLit is Encode's value-falsifying literal helper.
func clauseLit(v int, val bool) sat.Lit {
	if val {
		return sat.NegLit(v)
	}
	return sat.PosLit(v)
}

// ensureColumns encodes columns c.cols..m-1: their state variables
// (with Encode's phase preference) and their permanent edge-compatibility
// clause blocks, in exactly Encode's emission order.
func (c *ChainSolver) ensureColumns(g *sg.Graph, m int) {
	for k := c.cols; k < m; k++ {
		c.padTranslation()
		c.colLo = append(c.colLo, c.inc.NumVars())
		c.colOff = append(c.colOff, false)
		for s := 0; s < c.n; s++ {
			av := c.inc.NewVar()
			bv := c.inc.NewVar()
			c.inc.Prefer(av, false)
			c.aVar[s] = append(c.aVar[s], av)
			c.bVar[s] = append(c.bVar[s], bv)
			fa := int32(2 * (k*c.n + s))
			c.incToFresh = append(c.incToFresh, fa, fa+1)
			c.freshToInc = append(c.freshToInc, int32(av), int32(bv))
		}
		nCl, nLit := 0, 0
		for _, ed := range g.Edges {
			blocked := blockedOutputEdge
			if g.InputEdge(ed) {
				blocked = blockedInputEdge
			}
			for _, bp := range blocked {
				pa, pb := phaseBits(bp[0])
				qa, qb := phaseBits(bp[1])
				ln, added := c.inc.AddPermanent(
					clauseLit(c.aVar[ed.From][k], pa), clauseLit(c.bVar[ed.From][k], pb),
					clauseLit(c.aVar[ed.To][k], qa), clauseLit(c.bVar[ed.To][k], qb),
				)
				if added {
					nCl++
					nLit += ln
				}
			}
		}
		prevCl, prevLit := 0, 0
		if k > 0 {
			prevCl, prevLit = c.colCl[k-1], c.colLit[k-1]
		}
		c.colCl = append(c.colCl, prevCl+nCl)
		c.colLit = append(c.colLit, prevLit+nLit)
		c.cols++
	}
}

// setActive (de)activates column variable blocks so exactly the first m
// columns take part in the next step's search.
func (c *ChainSolver) setActive(m int) {
	for k := 0; k < c.cols; k++ {
		off := k >= m
		if c.colOff[k] == off {
			continue
		}
		c.colOff[k] = off
		lo := c.colLo[k]
		for v := lo; v < lo+2*c.n; v++ {
			c.inc.SetInert(v, off)
		}
	}
}

// chainSink routes the shared pair/symmetry emission into the solver's
// current assumption group, tracking fresh-formula-equivalent sizes.
type chainSink struct{ c *ChainSolver }

func (s chainSink) newVar() int {
	s.c.grpAux++
	return s.c.inc.NewGroupVar()
}

func (s chainSink) add(lits ...sat.Lit) {
	n, added := s.c.inc.AddGroup(lits...)
	if added {
		s.c.grpCl++
		s.c.grpLit += n
	}
}

// translateSeeds maps warm-chain seed clauses from the fresh Encode
// variable space into the solver's. Buffers are reused across steps.
func (c *ChainSolver) translateSeeds(w *sat.Warm) *sat.Warm {
	if w == nil {
		return nil
	}
	need := 0
	for _, cl := range w.Clauses {
		need += len(cl)
	}
	if cap(c.seedLits) < need {
		c.seedLits = make([]sat.Lit, 0, need)
	}
	c.seedLits = c.seedLits[:0]
	c.seedBuf = c.seedBuf[:0]
	for _, cl := range w.Clauses {
		lo := len(c.seedLits)
		for _, l := range cl {
			iv := c.freshToInc[l.Var()]
			c.seedLits = append(c.seedLits, sat.Lit(2*iv)|(l&1))
		}
		c.seedBuf = append(c.seedBuf, c.seedLits[lo:len(c.seedLits):len(c.seedLits)])
	}
	return &sat.Warm{Clauses: c.seedBuf}
}

// decodePhases is Encoding.DecodePhases over the solver's variables.
func (c *ChainSolver) decodePhases(model []bool, m int) [][]sg.Phase {
	out := make([][]sg.Phase, m)
	for k := 0; k < m; k++ {
		col := make([]sg.Phase, c.n)
		for s := 0; s < c.n; s++ {
			col[s] = bitsPhase(model[c.aVar[s][k]], model[c.bVar[s][k]])
		}
		out[k] = col
	}
	return out
}

// solve is the incremental counterpart of solveUncached's encode-search-
// decode-tighten path, with the same outputs, side effects (metrics,
// tracing, warm-chain absorption) and error contract.
func (c *ChainSolver) solve(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, m int, opt SolveOptions, start time.Time) (cols [][]sg.Phase, stats FormulaStats, norm [][]sat.Lit, err error) {
	// Mirror Encode's error contract before touching solver state.
	if m <= 0 {
		return nil, FormulaStats{}, nil, fmt.Errorf("csc: need at least one state signal")
	}
	for _, p := range conf.CSC {
		if p.A == p.B {
			return nil, FormulaStats{}, nil, fmt.Errorf("csc: state %d conflicts with itself (merged class implies both values); enlarge the input set", p.A)
		}
	}
	c.rebind(g)
	c.ensureColumns(g, m)
	c.setActive(m)

	c.inc.BeginGroup()
	c.grpAux, c.grpCl, c.grpLit = 0, 0, 0
	sink := chainSink{c}
	emitPairsTseitin(sink, c.aVar, c.bVar, m, conf, opt.Encoding)
	emitSymmetry(sink, c.aVar, c.bVar, m)
	c.padTranslation()

	seeds := opt.Chain.Seed(len(g.States), m)
	if seeds != nil {
		metrics.From(ctx).Add(metrics.SATWarmClauses, int64(len(seeds.Clauses)))
	}
	metrics.From(ctx).Add(metrics.SATAssumptions, 1)
	exportStable := opt.Chain != nil
	r := c.inc.SolveStep(c.colCl[m-1], sat.Limits{
		MaxBacktracks: opt.MaxBacktracks, Ctx: ctx, ExportStable: exportStable,
	}, c.translateSeeds(seeds))

	// Map exports back to the fresh variable space; a clause touching a
	// variable with no fresh counterpart cannot occur (stable derivations
	// involve only state variables) but is dropped defensively.
	if len(r.StableLearned) > 0 {
		kept := r.StableLearned[:0]
		for _, cl := range r.StableLearned {
			ok := true
			for i, l := range cl {
				fv := c.incToFresh[l.Var()]
				if fv < 0 {
					ok = false
					break
				}
				cl[i] = sat.Lit(2*fv) | (l & 1)
			}
			if ok {
				kept = append(kept, cl)
			}
		}
		r.StableLearned = kept
	}

	stats = FormulaStats{
		Signals: m, Vars: 2*c.n*m + c.grpAux, Clauses: c.colCl[m-1] + c.grpCl,
		Literals: c.colLit[m-1] + c.grpLit, Status: r.Status,
		SolveTime: time.Since(start), Engine: "dpll",
	}
	if r.Status == sat.Canceled {
		return nil, stats, nil, synerr.Canceled(ctx.Err())
	}
	emitFormula(ctx, stats)
	recordFormula(ctx, stats, r)
	if opt.Chain != nil && len(r.StableLearned) > 0 {
		norm = opt.Chain.Normalize(len(g.States), m, r.StableLearned)
		opt.Chain.AbsorbNormalized(norm)
	}
	if r.Status != sat.Sat {
		return nil, stats, norm, nil
	}
	cols = c.decodePhases(r.Model, m)
	Tighten(g, conf, cols)
	return cols, stats, norm, nil
}
