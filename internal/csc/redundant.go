package csc

import (
	"sort"

	"asyncsyn/internal/sg"
)

// Redundant reports whether state-signal column k of g can be dropped:
// with the remaining columns, every pair of states sharing a full code
// must still satisfy the CSC/USC conditions — conflicting pairs stay
// separated by a stable complementary value of some other signal, and
// non-conflicting pairs avoid the blocked excitation pairs. The
// integration of per-output modular solutions often leaves such
// redundancy (the paper notes the method is not signal-optimal).
func Redundant(g *sg.Graph, k int) bool {
	if k < 0 || k >= len(g.StateSigs) {
		return false
	}
	var rest []int
	for j := range g.StateSigs {
		if j != k {
			rest = append(rest, j)
		}
	}
	// Group states by their code without column k.
	code := func(s int) uint64 {
		c := g.States[s].Code & g.Active
		for bi, j := range rest {
			if g.StateSigs[j].Phases[s].Level() == 1 {
				c |= 1 << (uint(len(g.Base)) + uint(bi))
			}
		}
		return c
	}
	groups := make(map[uint64][]int)
	for s := range g.States {
		groups[code(s)] = append(groups[code(s)], s)
	}
	keys := make([]uint64, 0, len(groups))
	for c := range groups {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	stableComplement := func(a, b sg.Phase) bool {
		return (a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0)
	}
	blocked := func(a, b sg.Phase) bool {
		switch {
		case a == sg.P0 && b == sg.PUp, a == sg.PUp && b == sg.P0:
			return true
		case a == sg.P1 && b == sg.PDown, a == sg.PDown && b == sg.P1:
			return true
		case a == sg.PUp && b == sg.PDown, a == sg.PDown && b == sg.PUp:
			return true
		}
		return false
	}
	for _, c := range keys {
		states := groups[c]
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				a, b := states[i], states[j]
				sep := false
				for _, r := range rest {
					if stableComplement(g.StateSigs[r].Phases[a], g.StateSigs[r].Phases[b]) {
						sep = true
						break
					}
				}
				if sep {
					continue
				}
				if g.EnabledNonInputs(a) != g.EnabledNonInputs(b) {
					return false // a CSC conflict would reappear
				}
				for _, r := range rest {
					if blocked(g.StateSigs[r].Phases[a], g.StateSigs[r].Phases[b]) {
						return false
					}
				}
			}
		}
	}
	return true
}

// Prune removes redundant state-signal columns (latest insertions first)
// and returns the names of the removed signals.
func Prune(g *sg.Graph) []string {
	var removed []string
	for k := len(g.StateSigs) - 1; k >= 0; k-- {
		if Redundant(g, k) {
			removed = append(removed, g.StateSigs[k].Name)
			g.StateSigs = append(g.StateSigs[:k], g.StateSigs[k+1:]...)
		}
	}
	sort.Strings(removed)
	return removed
}
