package csc

import (
	"context"
	"errors"
	"fmt"

	"asyncsyn/internal/bdd"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/sg"
)

// ErrUnsatisfiable reports that the CSC constraints admit no assignment
// with the attempted number of state signals.
var ErrUnsatisfiable = errors.New("csc: constraints unsatisfiable")

// SolveBDD finds phase assignments for m new state signals with a BDD
// instead of SAT — the constraint-satisfaction approach the paper's
// conclusion credits with a further area reduction (Puri & Gu, HLSS'94).
// All constraints (edge compatibility, stable separation of conflicting
// pairs, USC conditions) are conjoined into one BDD; the returned model
// is the one with the FEWEST excited states (minimum-cost model over the
// excitation bits), which directly minimises the expanded state graph
// and hence the derived logic. Returns bdd.ErrNodeLimit when the
// diagram explodes; callers fall back to the SAT engine. ctx cancels
// the conjunction chain mid-apply (an error matching synerr.ErrCanceled).
func SolveBDD(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, m int, nodeLimit int) ([][]sg.Phase, error) {
	if m <= 0 {
		return nil, fmt.Errorf("csc: need at least one state signal")
	}
	for _, p := range conf.CSC {
		if p.A == p.B {
			return nil, fmt.Errorf("csc: state %d conflicts with itself", p.A)
		}
	}
	n := len(g.States)
	numVars := 2 * n * m
	// Variable order: states in index order, signals and (a,b) adjacent —
	// edge constraints are then between nearby levels, keeping the
	// diagram narrow on band-structured graphs.
	aVar := func(s, k int) int { return 2 * (s*m + k) }
	bVar := func(s, k int) int { return 2*(s*m+k) + 1 }

	p := bdd.New(nodeLimit)
	p.SetContext(ctx)
	// The pool's final size is the run's BDD effort — recorded whether
	// the solve succeeds, proves UNSAT, or hits the node limit (the
	// fallback SAT engine then adds its own counters on top).
	defer func() { metrics.From(ctx).Add(metrics.BDDNodes, int64(p.Size())) }()
	acc := bdd.True

	conj := func(f bdd.Node) error {
		var err error
		acc, err = p.And(acc, f)
		if err != nil {
			return err
		}
		if acc == bdd.False {
			return ErrUnsatisfiable
		}
		return nil
	}
	lit := func(v int, val bool) (bdd.Node, error) {
		if val {
			return p.Var(v)
		}
		return p.NVar(v)
	}
	// phaseIs builds the (a,b) conjunction for one phase of (s,k).
	phaseIs := func(s, k int, ph sg.Phase) (bdd.Node, error) {
		a, b := phaseBits(ph)
		la, err := lit(aVar(s, k), a)
		if err != nil {
			return 0, err
		}
		lb, err := lit(bVar(s, k), b)
		if err != nil {
			return 0, err
		}
		return p.And(la, lb)
	}

	// Edge compatibility (with the input-properness restriction).
	for _, ed := range g.Edges {
		inputEdge := g.InputEdge(ed)
		for k := 0; k < m; k++ {
			ok := bdd.False
			for _, ph := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
				for _, qh := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
					if !sg.EdgeCompatibleIO(ph, qh, inputEdge) {
						continue
					}
					f1, err := phaseIs(ed.From, k, ph)
					if err != nil {
						return nil, err
					}
					f2, err := phaseIs(ed.To, k, qh)
					if err != nil {
						return nil, err
					}
					both, err := p.And(f1, f2)
					if err != nil {
						return nil, err
					}
					ok, err = p.Or(ok, both)
					if err != nil {
						return nil, err
					}
				}
			}
			if err := conj(ok); err != nil {
				return nil, err
			}
		}
	}

	// sep(s,t,k): signal k stable at complementary levels in s and t.
	sep := func(s, t, k int) (bdd.Node, error) {
		s0, err := phaseIs(s, k, sg.P0)
		if err != nil {
			return 0, err
		}
		t1, err := phaseIs(t, k, sg.P1)
		if err != nil {
			return 0, err
		}
		c1, err := p.And(s0, t1)
		if err != nil {
			return 0, err
		}
		s1, err := phaseIs(s, k, sg.P1)
		if err != nil {
			return 0, err
		}
		t0, err := phaseIs(t, k, sg.P0)
		if err != nil {
			return 0, err
		}
		c2, err := p.And(s1, t0)
		if err != nil {
			return 0, err
		}
		return p.Or(c1, c2)
	}
	sepAny := func(s, t int) (bdd.Node, error) {
		acc := bdd.False
		for k := 0; k < m; k++ {
			f, err := sep(s, t, k)
			if err != nil {
				return 0, err
			}
			acc, err = p.Or(acc, f)
			if err != nil {
				return 0, err
			}
		}
		return acc, nil
	}

	for _, pr := range conf.CSC {
		f, err := sepAny(pr.A, pr.B)
		if err != nil {
			return nil, err
		}
		if err := conj(f); err != nil {
			return nil, fmt.Errorf("pair (%d,%d): %w", pr.A, pr.B, err)
		}
	}

	// USC pairs: separated, or no blocked phase pair on any k.
	for _, pr := range conf.USC {
		sepF, err := sepAny(pr.A, pr.B)
		if err != nil {
			return nil, err
		}
		okAll := bdd.True
		for k := 0; k < m; k++ {
			bad := bdd.False
			for _, bp := range uscBlockedPairs {
				f1, err := phaseIs(pr.A, k, bp[0])
				if err != nil {
					return nil, err
				}
				f2, err := phaseIs(pr.B, k, bp[1])
				if err != nil {
					return nil, err
				}
				both, err := p.And(f1, f2)
				if err != nil {
					return nil, err
				}
				bad, err = p.Or(bad, both)
				if err != nil {
					return nil, err
				}
			}
			good, err := p.Not(bad)
			if err != nil {
				return nil, err
			}
			okAll, err = p.And(okAll, good)
			if err != nil {
				return nil, err
			}
		}
		cond, err := p.Or(sepF, okAll)
		if err != nil {
			return nil, err
		}
		if err := conj(cond); err != nil {
			return nil, fmt.Errorf("usc pair (%d,%d): %w", pr.A, pr.B, err)
		}
	}

	// Minimum-excitation model: cost 1 on every a bit (excited phase).
	cost := make([]float64, numVars)
	for s := 0; s < n; s++ {
		for k := 0; k < m; k++ {
			cost[aVar(s, k)] = 1
		}
	}
	model, _, ok := p.MinCostSat(acc, numVars, cost)
	if !ok {
		return nil, ErrUnsatisfiable
	}

	cols := make([][]sg.Phase, m)
	for k := 0; k < m; k++ {
		col := make([]sg.Phase, n)
		for s := 0; s < n; s++ {
			col[s] = bitsPhase(model[aVar(s, k)], model[bVar(s, k)])
		}
		cols[k] = col
	}
	return cols, nil
}
