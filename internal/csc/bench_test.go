package csc

import (
	"context"
	"testing"

	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

// BenchmarkSolveChain measures one whole CSC solve chain (conflict
// analysis, encoding, SAT, decoding) on a concurrent handshake graph,
// with the assumption-based incremental solver and with per-attempt
// re-encoding. The two paths produce bit-identical results (pinned by
// TestIncrementalMatchesFresh at the facade); only the work per attempt
// differs.
func BenchmarkSolveChain(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noIncr bool
	}{
		{"incremental", false},
		{"reencode", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			spec, err := stg.Handshakes("", 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			g, err := sg.FromSTG(spec, sg.Options{})
			if err != nil {
				b.Fatal(err)
			}
			base := len(g.StateSigs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.StateSigs = g.StateSigs[:base] // Solve appends; rewind between runs
				if _, err := Solve(context.Background(), g, SolveOptions{NoIncremental: mode.noIncr}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
