package csc

import (
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
)

// TestPredictExact: the executable complexity model matches the real
// expanded encoding bit for bit on the benchmark suite.
func TestPredictExact(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "fifo", "sbuf-read-ctl", "pa", "nouse", "mmu1"} {
		spec, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sg.FromSTG(spec, sg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		conf := sg.Analyze(g)
		for m := 1; m <= 3; m++ {
			want := Predict(g, conf, m)
			enc, err := Encode(g, conf, m, Options{ExpandXor: true})
			if err != nil {
				t.Fatal(err)
			}
			if enc.F.NumVars != want.Vars {
				t.Errorf("%s m=%d: vars %d, predicted %d", name, m, enc.F.NumVars, want.Vars)
			}
			got := enc.F.NumClauses()
			lo := want.EdgeClauses + want.CSCClauses // USC term may collapse
			if got < lo || got > want.Clauses {
				t.Errorf("%s m=%d: clauses %d outside [%d,%d] (edges %d, csc %d, usc ≤ %d)",
					name, m, got, lo, want.Clauses,
					want.EdgeClauses, want.CSCClauses, want.USCClauses)
			}
		}
	}
}

// TestPredictGrowth pins the paper's exponential c^m terms.
func TestPredictGrowth(t *testing.T) {
	spec, _ := bench.Load("pa")
	g, _ := sg.FromSTG(spec, sg.Options{})
	conf := sg.Analyze(g)
	s1 := Predict(g, conf, 1)
	s2 := Predict(g, conf, 2)
	if s2.CSCClauses != 4*s1.CSCClauses {
		t.Errorf("CSC term not 4^m: %d vs %d", s1.CSCClauses, s2.CSCClauses)
	}
	if s2.USCClauses != 8*s1.USCClauses { // 6m·4^m: (6·2·16)/(6·1·4) = 8
		t.Errorf("USC term not 2m·4^m: %d vs %d", s1.USCClauses, s2.USCClauses)
	}
	if s2.EdgeClauses != 2*s1.EdgeClauses {
		t.Errorf("edge term not linear: %d vs %d", s1.EdgeClauses, s2.EdgeClauses)
	}
}
