package csc

import (
	"context"
	"fmt"

	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
)

// InsertIncremental resolves conflicts one state signal at a time: each
// iteration solves a single-signal (m=1) instance targeting as many of
// the remaining conflict pairs as possible — first all of them, then the
// largest same-code group, then individual pairs — inserts the column,
// and re-evaluates. Greedy insertion sidesteps the joint-m cliff: some
// specifications (double-pulse branches) need CASCADED signals, where
// separating one pair is only possible after a companion signal has
// split a blocking same-code pair; a joint encoding must discover the
// whole cascade inside one exponentially symmetric formula, while the
// greedy loop finds it signal by signal. refresh re-analyses the graph
// after each insertion; maxSignals bounds the loop.
//
// Budget exhaustion returns an error matching synerr.ErrBacktrackLimit;
// running out of signal slots with conflicts left returns one matching
// synerr.ErrConflictsPersist. Both come with the inserted count and
// formula stats accumulated so far.
func InsertIncremental(ctx context.Context, g *sg.Graph, refresh func() *sg.Conflicts, opt SolveOptions, maxSignals int) (inserted int, stats []FormulaStats, err error) {
	opt = opt.withDefaults()
	for inserted < maxSignals {
		conf := refresh()
		if conf.N() == 0 {
			return inserted, stats, nil
		}
		candidates := []*sg.Conflicts{conf, LargestGroup(g, conf)}
		for _, p := range conf.CSC {
			candidates = append(candidates, restrictTo(conf, p))
		}
		progressed := false
		for _, cand := range candidates {
			cols, st, aerr := Attempt(ctx, g, cand, 1, opt)
			if aerr != nil {
				return inserted, stats, aerr
			}
			stats = append(stats, st)
			switch st.Status {
			case sat.Sat:
				g.StateSigs = append(g.StateSigs, sg.StateSignal{
					Name:   fmt.Sprintf("%s%d", opt.NamePrefix, len(g.StateSigs)),
					Phases: cols[0],
				})
				inserted++
				progressed = true
			case sat.BacktrackLimit:
				return inserted, stats, fmt.Errorf("csc: incremental signal %d: %w", inserted, synerr.ErrBacktrackLimit)
			}
			if progressed {
				break
			}
		}
		if !progressed {
			return inserted, stats, fmt.Errorf("csc: no conflict pair separable by a single signal (%d remain): %w", conf.N(), synerr.ErrConflictsPersist)
		}
	}
	if refresh().N() != 0 {
		return inserted, stats, fmt.Errorf("csc: conflicts remain after %d incremental signals: %w", maxSignals, synerr.ErrConflictsPersist)
	}
	return inserted, stats, nil
}

// LargestGroup restricts conf to the pairs of the code group with the
// most conflicting pairs; the rest join the USC side so the inserted
// signal stays well defined everywhere.
func LargestGroup(g *sg.Graph, conf *sg.Conflicts) *sg.Conflicts {
	count := make(map[uint64]int)
	for _, p := range conf.CSC {
		count[g.FullCode(p.A)]++
	}
	var bestCode uint64
	best := -1
	for code, n := range count {
		if n > best || (n == best && code < bestCode) {
			bestCode, best = code, n
		}
	}
	out := &sg.Conflicts{LowerBound: 1}
	for _, p := range conf.CSC {
		if g.FullCode(p.A) == bestCode {
			out.CSC = append(out.CSC, p)
		} else {
			out.USC = append(out.USC, p)
		}
	}
	out.USC = append(out.USC, conf.USC...)
	return out
}

// restrictTo keeps a single pair as the separation obligation.
func restrictTo(conf *sg.Conflicts, p sg.Pair) *sg.Conflicts {
	out := &sg.Conflicts{LowerBound: 1, CSC: []sg.Pair{p}}
	for _, q := range conf.CSC {
		if q != p {
			out.USC = append(out.USC, q)
		}
	}
	out.USC = append(out.USC, conf.USC...)
	return out
}
