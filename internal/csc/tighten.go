package csc

import "asyncsyn/internal/sg"

// Tighten post-processes a satisfying phase assignment: it greedily
// converts excited phases (Up/Down) into stable ones wherever the
// consistency, semi-modularity, separation and USC constraints still
// hold. SAT models tend to leave excitation regions far wider than
// necessary, and every needlessly excited state multiplies the expanded
// state graph (an excited signal doubles the state's interleavings), so
// tightening directly shrinks the final state count and the derived
// logic. The columns are modified in place.
func Tighten(g *sg.Graph, conf *sg.Conflicts, cols [][]sg.Phase) {
	if len(cols) == 0 {
		return
	}
	type pairRef struct {
		other      int
		mustDiffer bool
		self       int // index of this pair for dedup (unused; clarity)
	}
	pairsOf := make(map[int][]pairRef)
	addPair := func(p sg.Pair, must bool) {
		pairsOf[p.A] = append(pairsOf[p.A], pairRef{other: p.B, mustDiffer: must})
		if p.A != p.B {
			pairsOf[p.B] = append(pairsOf[p.B], pairRef{other: p.A, mustDiffer: must})
		}
	}
	for _, p := range conf.CSC {
		addPair(p, true)
	}
	for _, p := range conf.USC {
		addPair(p, false)
	}

	stableComplement := func(a, b sg.Phase) bool {
		return (a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0)
	}
	uscBlocked := func(a, b sg.Phase) bool {
		switch {
		case a == sg.P0 && b == sg.PUp, a == sg.PUp && b == sg.P0:
			return true
		case a == sg.P1 && b == sg.PDown, a == sg.PDown && b == sg.P1:
			return true
		case a == sg.PUp && b == sg.PDown, a == sg.PDown && b == sg.PUp:
			return true
		}
		return false
	}
	pairOK := func(a, b int, mustDiffer bool) bool {
		sep := false
		for k := range cols {
			if stableComplement(cols[k][a], cols[k][b]) {
				sep = true
				break
			}
		}
		if sep {
			return true
		}
		if mustDiffer {
			return false
		}
		for k := range cols {
			if uscBlocked(cols[k][a], cols[k][b]) {
				return false
			}
		}
		return true
	}
	edgesOK := func(s, k int) bool {
		for _, ei := range g.Out[s] {
			e := g.Edges[ei]
			if !sg.EdgeCompatibleIO(cols[k][e.From], cols[k][e.To], g.InputEdge(e)) {
				return false
			}
		}
		for _, ei := range g.In[s] {
			e := g.Edges[ei]
			if !sg.EdgeCompatibleIO(cols[k][e.From], cols[k][e.To], g.InputEdge(e)) {
				return false
			}
		}
		return true
	}
	stateOK := func(s, k int) bool {
		if !edgesOK(s, k) {
			return false
		}
		for _, pr := range pairsOf[s] {
			if !pairOK(s, pr.other, pr.mustDiffer) {
				return false
			}
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for k := range cols {
			for s := range g.States {
				ph := cols[k][s]
				var try [2]sg.Phase
				switch ph {
				case sg.PUp:
					// Level-preserving choice first.
					try = [2]sg.Phase{sg.P0, sg.P1}
				case sg.PDown:
					try = [2]sg.Phase{sg.P1, sg.P0}
				default:
					continue
				}
				for _, cand := range try {
					cols[k][s] = cand
					if stateOK(s, k) {
						changed = true
						break
					}
					cols[k][s] = ph
				}
			}
		}
	}
}
