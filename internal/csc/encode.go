// Package csc encodes the complete-state-coding constraint satisfaction
// problem as boolean satisfiability (the paper's Section 2.1 SAT-CSC
// model) and provides the direct whole-graph solver that serves as the
// Vanbekbergen et al. baseline ("no decomposition" in Table 1).
package csc

import (
	"fmt"

	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
)

// Phase bit encoding (the paper's footnote 2): each 4-valued state
// variable n_{i,k} becomes two binary variables (a,b) with
// 00→0, 01→1, 10→Up, 11→Down. The level a state signal contributes to
// the state code equals the b bit (Up keeps level 0, Down keeps level 1).
func phaseBits(p sg.Phase) (a, b bool) {
	switch p {
	case sg.P0:
		return false, false
	case sg.P1:
		return false, true
	case sg.PUp:
		return true, false
	default:
		return true, true
	}
}

func bitsPhase(a, b bool) sg.Phase {
	switch {
	case !a && !b:
		return sg.P0
	case !a && b:
		return sg.P1
	case a && !b:
		return sg.PUp
	default:
		return sg.PDown
	}
}

// Options tunes the encoding.
type Options struct {
	// ExpandXor generates the paper-style direct CNF expansion of the
	// "codes must differ" constraints (2^m clauses per conflicting pair)
	// instead of the default Tseitin encoding with auxiliary difference
	// variables. Used for clause-growth experiments.
	ExpandXor bool
	// SkipUSC omits the constraints on non-conflicting equal-code pairs
	// (which keep the inserted signals' own functions well defined).
	// Only for measurement experiments; synthesis keeps them on.
	SkipUSC bool
}

// Encoding is a SAT-CSC instance for inserting m state signals into a
// state graph.
type Encoding struct {
	F *sat.Formula
	G *sg.Graph
	M int

	aVar [][]int // [state][k]
	bVar [][]int
}

// blockedPairsFor lists the (predecessor, successor) phase pairs
// excluded by the consistency + semi-modularity relation, including the
// input-properness restriction on environment-driven edges (see
// sg.EdgeCompatibleIO).
func blockedPairsFor(inputEdge bool) [][2]sg.Phase {
	var out [][2]sg.Phase
	for _, p := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
		for _, q := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
			if !sg.EdgeCompatibleIO(p, q, inputEdge) {
				out = append(out, [2]sg.Phase{p, q})
			}
		}
	}
	return out
}

var (
	blockedOutputEdge = blockedPairsFor(false)
	blockedInputEdge  = blockedPairsFor(true)
)

// Encode builds the SAT-CSC formula for graph g with m new state signals
// and the given conflict analysis. Pairs with A == B (a merged class
// implying both values of the target signal) cannot be separated by any
// assignment; Encode reports them as an error.
func Encode(g *sg.Graph, conf *sg.Conflicts, m int, opt Options) (*Encoding, error) {
	if m <= 0 {
		return nil, fmt.Errorf("csc: need at least one state signal")
	}
	for _, p := range conf.CSC {
		if p.A == p.B {
			return nil, fmt.Errorf("csc: state %d conflicts with itself (merged class implies both values); enlarge the input set", p.A)
		}
	}
	e := &Encoding{F: sat.NewFormula(), G: g, M: m}
	n := len(g.States)
	e.aVar = make([][]int, n)
	e.bVar = make([][]int, n)
	for s := 0; s < n; s++ {
		e.aVar[s] = make([]int, m)
		e.bVar[s] = make([]int, m)
	}
	// Column-major variable layout: column k's (a,b) pairs for every
	// state precede column k+1's, so a[s][k] = 2(kn+s) and b[s][k] is
	// its successor. The formulas of a widening chain thereby share a
	// variable prefix — formula m's state variables are exactly the
	// first 2nm variables of formula m+1 — which is what lets the
	// incremental solver (ChainSolver) grow columns in place and keeps
	// warm-chain clause instantiation layout-stable along the chain.
	for k := 0; k < m; k++ {
		for s := 0; s < n; s++ {
			e.aVar[s][k] = e.F.NewVar("")
			e.bVar[s][k] = e.F.NewVar("")
			// Prefer stable phases: every needlessly excited state
			// multiplies the expanded state graph.
			e.F.Prefer(e.aVar[s][k], false)
		}
	}

	// Consistency + semi-modularity along every edge, for every signal:
	// block the eight incompatible phase pairs. Emission is grouped by
	// column for the same reason the variables are: column k's clause
	// block is identical in every formula of the chain that has column k.
	lit := func(v int, val bool) sat.Lit {
		if val {
			return sat.NegLit(v) // clause literal that *falsifies* value val
		}
		return sat.PosLit(v)
	}
	for k := 0; k < m; k++ {
		for _, ed := range g.Edges {
			blocked := blockedOutputEdge
			if g.InputEdge(ed) {
				blocked = blockedInputEdge
			}
			for _, bp := range blocked {
				pa, pb := phaseBits(bp[0])
				qa, qb := phaseBits(bp[1])
				e.F.Add(
					lit(e.aVar[ed.From][k], pa), lit(e.bVar[ed.From][k], pb),
					lit(e.aVar[ed.To][k], qa), lit(e.bVar[ed.To][k], qb),
				)
			}
		}
	}
	// The edge-compatibility clauses above are per-column and recur in
	// every formula of a widening/insertion chain on this graph, so
	// learned clauses derived exclusively from them stay valid along
	// the chain (see WarmChain). The pair and symmetry clauses below do
	// not: they change with m and the conflict set.
	e.F.MarkStablePrefix()

	if opt.ExpandXor {
		// Paper-parity mode: no auxiliary variables at all, so no
		// symmetry breaking either (it is an encoding-size experiment,
		// not a solving path).
		e.encodePairsExpanded(conf, opt)
	} else {
		sink := formulaSink{e.F}
		emitPairsTseitin(sink, e.aVar, e.bVar, m, conf, opt)
		emitSymmetry(sink, e.aVar, e.bVar, m)
	}
	return e, nil
}

// encSink receives the per-problem (pair separation and symmetry)
// constraints. Two implementations share the emission code: formulaSink
// appends to a one-shot formula, and the incremental ChainSolver routes
// the same clauses into the solver's current assumption group.
type encSink interface {
	newVar() int
	add(lits ...sat.Lit)
}

type formulaSink struct{ f *sat.Formula }

func (s formulaSink) newVar() int         { return s.f.NewVar("") }
func (s formulaSink) add(lits ...sat.Lit) { s.f.Add(lits...) }

// emitSymmetry adds lexicographic ordering between adjacent signal
// columns. The m inserted signals are fully interchangeable in every
// constraint, so without this the solver explores (and on UNSAT
// instances must refute) all m! permutations of each assignment — joint
// m ≥ 4 UNSAT proofs become intractable. The standard prefix-equality
// chain costs 4 clauses per state bit per adjacent pair.
func emitSymmetry(sink encSink, aVar, bVar [][]int, m int) {
	n := len(aVar)
	for k := 0; k+1 < m; k++ {
		bits := make([][2]int, 0, 2*n)
		for s := 0; s < n; s++ {
			bits = append(bits, [2]int{aVar[s][k], aVar[s][k+1]})
			bits = append(bits, [2]int{bVar[s][k], bVar[s][k+1]})
		}
		prevEq := -1 // -1 means "true"
		for i, xy := range bits {
			x, y := xy[0], xy[1]
			if prevEq < 0 {
				sink.add(sat.NegLit(x), sat.PosLit(y)) // x ≤ y
			} else {
				sink.add(sat.NegLit(prevEq), sat.NegLit(x), sat.PosLit(y))
			}
			if i == len(bits)-1 {
				break
			}
			eq := sink.newVar()
			// eq ← prevEq ∧ (x ↔ y): both directions so the chain
			// propagates and stays consistent.
			if prevEq < 0 {
				sink.add(sat.PosLit(eq), sat.PosLit(x), sat.PosLit(y))
				sink.add(sat.PosLit(eq), sat.NegLit(x), sat.NegLit(y))
			} else {
				sink.add(sat.PosLit(eq), sat.NegLit(prevEq), sat.PosLit(x), sat.PosLit(y))
				sink.add(sat.PosLit(eq), sat.NegLit(prevEq), sat.NegLit(x), sat.NegLit(y))
				sink.add(sat.NegLit(eq), sat.PosLit(prevEq))
			}
			sink.add(sat.NegLit(eq), sat.PosLit(x), sat.NegLit(y))
			sink.add(sat.NegLit(eq), sat.NegLit(x), sat.PosLit(y))
			prevEq = eq
		}
	}
}

// Separation semantics. A state signal with phase Up or Down spans BOTH
// binary levels once its transition is inserted (the state splits into a
// before- and an after-firing half during expansion). Two conflicting
// states are therefore reliably distinguished only by a signal that is
// STABLE at complementary levels in the two states: (0,1) or (1,0).
//
// Non-conflicting equal-code pairs (USC) need no separation, but the
// inserted signal's own behaviour must then look identical from the two
// states wherever their expanded codes overlap: one state must not enable
// n_k+ at a level where the other holds that level stably. The
// phase pairs that violate this are
//
//	(0,Up), (Up,0), (1,Down), (Down,1), (Up,Down), (Down,Up)
//
// — e.g. (Up,0) overlap at level 0 has one state firing n_k+ and the
// other not, a fresh CSC conflict on n_k itself. A USC pair must either
// be separated like a CSC pair or avoid these six pairs for every k.

// uscBlockedPairs are the phase pairs disallowed on unseparated
// equal-code pairs.
var uscBlockedPairs = [][2]sg.Phase{
	{sg.P0, sg.PUp}, {sg.PUp, sg.P0},
	{sg.P1, sg.PDown}, {sg.PDown, sg.P1},
	{sg.PUp, sg.PDown}, {sg.PDown, sg.PUp},
}

// emitPairsTseitin introduces, per pair and signal, an auxiliary
// variable d_k → (signal k stably separates the pair):
// d_k → ¬a_A ∧ ¬a_B ∧ (b_A ⊕ b_B). CSC pairs assert ∨_k d_k; USC pairs
// assert, for every k and blocked phase pair, (∨_k d_k) ∨ ¬blocked.
func emitPairsTseitin(sink encSink, aVar, bVar [][]int, m int, conf *sg.Conflicts, opt Options) {
	sepVars := func(p sg.Pair) []sat.Lit {
		ds := make([]sat.Lit, m)
		for k := 0; k < m; k++ {
			d := sink.newVar()
			ds[k] = sat.PosLit(d)
			ai, aj := aVar[p.A][k], aVar[p.B][k]
			bi, bj := bVar[p.A][k], bVar[p.B][k]
			sink.add(sat.NegLit(d), sat.NegLit(ai))
			sink.add(sat.NegLit(d), sat.NegLit(aj))
			sink.add(sat.NegLit(d), sat.PosLit(bi), sat.PosLit(bj))
			sink.add(sat.NegLit(d), sat.NegLit(bi), sat.NegLit(bj))
		}
		return ds
	}
	lit := func(v int, val bool) sat.Lit {
		if val {
			return sat.NegLit(v)
		}
		return sat.PosLit(v)
	}
	for _, p := range conf.CSC {
		sink.add(sepVars(p)...)
	}
	if opt.SkipUSC {
		return
	}
	for _, p := range conf.USC {
		ds := sepVars(p)
		for k := 0; k < m; k++ {
			for _, bp := range uscBlockedPairs {
				pa, pb := phaseBits(bp[0])
				qa, qb := phaseBits(bp[1])
				sink.add(append(append([]sat.Lit(nil), ds...),
					lit(aVar[p.A][k], pa), lit(bVar[p.A][k], pb),
					lit(aVar[p.B][k], qa), lit(bVar[p.B][k], qb))...)
			}
		}
	}
}

// encodePairsExpanded is the paper-style direct CNF expansion with no
// auxiliary variables: the disjunction over k of the stable-separation
// conjunctions distributes into 4^m clauses per pair (the paper's
// N_csc·c^m and N_usc·c^m clause-count terms).
func (e *Encoding) encodePairsExpanded(conf *sg.Conflicts, opt Options) {
	// CNF(sep_k) has four clauses: (¬a_A), (¬a_B), (b_A ∨ b_B),
	// (¬b_A ∨ ¬b_B). CNF(∨_k sep_k) picks one of them per k.
	clauseOf := func(p sg.Pair, k, choice int) []sat.Lit {
		ai, aj := e.aVar[p.A][k], e.aVar[p.B][k]
		bi, bj := e.bVar[p.A][k], e.bVar[p.B][k]
		switch choice {
		case 0:
			return []sat.Lit{sat.NegLit(ai)}
		case 1:
			return []sat.Lit{sat.NegLit(aj)}
		case 2:
			return []sat.Lit{sat.PosLit(bi), sat.PosLit(bj)}
		default:
			return []sat.Lit{sat.NegLit(bi), sat.NegLit(bj)}
		}
	}
	total := 1
	for k := 0; k < e.M; k++ {
		total *= 4
	}
	build := func(p sg.Pair, idx int) []sat.Lit {
		var lits []sat.Lit
		for k := 0; k < e.M; k++ {
			lits = append(lits, clauseOf(p, k, idx%4)...)
			idx /= 4
		}
		return lits
	}
	lit := func(v int, val bool) sat.Lit {
		if val {
			return sat.NegLit(v)
		}
		return sat.PosLit(v)
	}
	for _, p := range conf.CSC {
		for idx := 0; idx < total; idx++ {
			e.F.Add(build(p, idx)...)
		}
	}
	if opt.SkipUSC {
		return
	}
	for _, p := range conf.USC {
		for idx := 0; idx < total; idx++ {
			base := build(p, idx)
			for k := 0; k < e.M; k++ {
				for _, bp := range uscBlockedPairs {
					pa, pb := phaseBits(bp[0])
					qa, qb := phaseBits(bp[1])
					e.F.Add(append(append([]sat.Lit(nil), base...),
						lit(e.aVar[p.A][k], pa), lit(e.bVar[p.A][k], pb),
						lit(e.aVar[p.B][k], qa), lit(e.bVar[p.B][k], qb))...)
				}
			}
		}
	}
}

// DecodePhases extracts the per-signal phase columns from a model.
func (e *Encoding) DecodePhases(model []bool) [][]sg.Phase {
	out := make([][]sg.Phase, e.M)
	for k := 0; k < e.M; k++ {
		col := make([]sg.Phase, len(e.G.States))
		for s := range e.G.States {
			col[s] = bitsPhase(model[e.aVar[s][k]], model[e.bVar[s][k]])
		}
		out[k] = col
	}
	return out
}
