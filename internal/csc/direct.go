package csc

import (
	"context"
	"fmt"
	"time"

	"asyncsyn/internal/modcache"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
)

// Engine selects the SAT engine used to solve CSC formulas.
type Engine int

const (
	// DPLL is the branch-and-bound solver (default; the role of the SIS
	// SAT program in the paper's experiments).
	DPLL Engine = iota
	// WalkSAT is the incomplete local-search solver. On UNSAT-like
	// exhaustion it behaves as a backtrack-limit abort.
	WalkSAT
	// BDD conjoins all constraints into a binary decision diagram and
	// extracts the minimum-excitation model (the paper's closing pointer
	// to a BDD-based approach with further area reduction). It falls
	// back to DPLL when the diagram exceeds the node limit.
	BDD
	// Portfolio races the complete DPLL engine against WalkSAT in
	// concurrent goroutines per Figure-4 formula. The winner is chosen
	// deterministically, never by timing: DPLL's verdict (Sat or Unsat)
	// always takes precedence, and WalkSAT's model is consulted only
	// when DPLL exhausts its backtrack budget — rescuing instances the
	// bounded branch-and-bound alone would abort, at no wall-clock cost
	// since both engines run concurrently.
	Portfolio
)

// SolveOptions configures direct CSC solving.
type SolveOptions struct {
	Encoding Options
	Engine   Engine
	// MaxBacktracks bounds the DPLL search per formula (default 2,000,000;
	// the paper's direct method aborts at a backtrack limit on mr0/mmu0).
	MaxBacktracks int64
	// MaxSignals bounds state-signal insertion (default 8).
	MaxSignals int
	// NamePrefix names inserted signals (default "csc").
	NamePrefix string
	// StartSignals overrides the initial m (default: the conflict lower
	// bound, at least 1).
	StartSignals int
	// BDDNodeLimit bounds the BDD engine (default one million nodes).
	BDDNodeLimit int
	// Cache, when non-nil, answers repeated solves of signature-equal
	// problems from the module solve cache (see modcache). Hits are
	// bit-identical replays of the producing solve. The Store is the
	// shared *modcache.Cache in sequential runs and a per-lane
	// *modcache.Overlay inside speculative module solves; callers
	// holding a possibly nil *Cache must pass a nil interface, not a
	// typed nil.
	Cache modcache.Store
	// Chain, when non-nil, carries reusable learned clauses across the
	// related formulas of one solve chain: DPLL searches are seeded
	// with the chain's clauses and export their own stable learnings
	// back (see WarmChain).
	Chain *WarmChain
	// Incr, when non-nil, solves plain-DPLL attempts on one persistent
	// assumption-based incremental solver instead of re-encoding every
	// formula (see ChainSolver). Results are bit-identical either way;
	// only the work per attempt changes. Engines other than DPLL and the
	// ExpandXor encoding fall back to re-encoding.
	Incr *ChainSolver
	// NoIncremental keeps the re-encode path even where an Incr solver
	// would be created by default (ablation and parity testing).
	NoIncremental bool
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 2000000
	}
	if o.MaxSignals == 0 {
		o.MaxSignals = 8
	}
	if o.NamePrefix == "" {
		o.NamePrefix = "csc"
	}
	return o
}

// FormulaStats records the size of one solved SAT instance.
type FormulaStats struct {
	Signals   int
	Vars      int
	Clauses   int
	Literals  int
	Status    sat.Status
	SolveTime time.Duration
	// Engine names the engine that produced Status ("dpll", "walksat",
	// "bdd"; "portfolio:dpll" / "portfolio:walksat" record which side of
	// the race won).
	Engine string
	// Cached reports that the outcome was replayed from the module
	// solve cache instead of being computed.
	Cached bool
}

// Result is the outcome of direct CSC constraint satisfaction.
type Result struct {
	// Inserted is the number of state signals added to the graph.
	Inserted int
	// Formulas records every SAT instance attempted, in order.
	Formulas []FormulaStats
}

// Solve resolves all CSC conflicts of g by inserting state signals found
// from a single whole-graph SAT formula — the direct, no-decomposition
// method of Vanbekbergen et al. The graph is modified in place (phase
// columns are appended). Following the paper's Figure 4 loop, m starts
// at the conflict lower bound and grows on UNSAT.
//
// A backtrack-budget exhaustion returns an error matching
// synerr.ErrBacktrackLimit (alongside the partial Result); a canceled
// ctx returns one matching synerr.ErrCanceled.
func Solve(ctx context.Context, g *sg.Graph, opt SolveOptions) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Chain == nil {
		opt.Chain = NewWarmChain()
	}
	opt.Chain.Rebind(g)
	if opt.Incr == nil && !opt.NoIncremental {
		opt.Incr = NewChainSolver()
	}
	res := &Result{}
	conf := sg.Analyze(g)
	if conf.N() == 0 {
		return res, nil
	}
	m := conf.LowerBound
	if opt.StartSignals > 0 {
		m = opt.StartSignals
	}
	if m < 1 {
		m = 1
	}
	// Joint insertion at the lower bound and one above (Figure 4's while
	// loop); beyond that the joint formulas' UNSAT proofs blow up on
	// cascaded-signal instances, so switch to greedy incremental
	// insertion.
	jointCap := m + 1
	if jointCap > opt.MaxSignals {
		jointCap = opt.MaxSignals
	}
	for ; m <= jointCap; m++ {
		cols, stats, err := Attempt(ctx, g, conf, m, opt)
		if err != nil {
			return res, err
		}
		res.Formulas = append(res.Formulas, stats)
		switch stats.Status {
		case sat.Sat:
			for _, col := range cols {
				g.StateSigs = append(g.StateSigs, sg.StateSignal{
					Name:   fmt.Sprintf("%s%d", opt.NamePrefix, len(g.StateSigs)),
					Phases: col,
				})
			}
			res.Inserted += m
			if left := sg.Analyze(g); left.N() != 0 {
				return res, fmt.Errorf("csc: %d conflicts remain after a satisfying assignment", left.N())
			}
			return res, nil
		case sat.BacktrackLimit:
			return res, fmt.Errorf("csc: joint %d-signal formula: %w", m, synerr.ErrBacktrackLimit)
		case sat.Unsat:
			// Grow m, then fall through to incremental insertion.
		}
	}
	inserted, stats, err := InsertIncremental(ctx, g,
		func() *sg.Conflicts { return sg.Analyze(g) }, opt, opt.MaxSignals)
	res.Formulas = append(res.Formulas, stats...)
	res.Inserted += inserted
	if err != nil {
		return res, err
	}
	return res, nil
}
