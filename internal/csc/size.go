package csc

import "asyncsyn/internal/sg"

// Size predicts the dimensions of a SAT-CSC instance without building
// it — the executable form of the paper's §2.1 complexity model
//
//	clauses = m·(c1·E + N_usc·c3^m + N_csc·c4^m),  variables = 2·N·m
//
// with this implementation's constants made explicit. Variables, edge
// and CSC terms are exact for the paper-style expanded encoding; the
// USC term is an upper bound (tests pin the bracket).
type Size struct {
	Vars    int
	Clauses int

	// Components, for reporting.
	EdgeClauses int // m · Σ_edges (8 or 10) — exact
	CSCClauses  int // N_csc · 4^m (c4 = 4) — exact
	USCClauses  int // N_usc · 6m · 4^m (c3 = 4 with a 6m factor) — upper
	// bound: clauses whose base XOR choice subsumes or contradicts a
	// blocked-pair literal collapse or drop as tautologies.
}

// Predict computes the size of the expanded (paper-style) encoding of
// conf on g with m state signals: exact for the variable, edge and CSC
// terms, an upper bound for the USC term. The Tseitin default is
// strictly smaller (linear in m); the expanded form is the one whose
// growth the paper's formula describes.
func Predict(g *sg.Graph, conf *sg.Conflicts, m int) Size {
	var s Size
	s.Vars = 2 * len(g.States) * m

	perEdge := 0
	for _, e := range g.Edges {
		if g.InputEdge(e) {
			perEdge += 10 // 8 blocked pairs + the 2 completion pairs
		} else {
			perEdge += 8
		}
	}
	s.EdgeClauses = m * perEdge

	pow4 := 1
	for i := 0; i < m; i++ {
		pow4 *= 4
	}
	s.CSCClauses = len(conf.CSC) * pow4
	s.USCClauses = len(conf.USC) * 6 * m * pow4
	s.Clauses = s.EdgeClauses + s.CSCClauses + s.USCClauses
	return s
}
