package csc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/stg"
)

// twoPulse: the canonical CSC-violating STG (codes 10 and 00 recur with
// different enabled outputs).
const twoPulse = `
.model tp
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func graph(t *testing.T, src string) *sg.Graph {
	t.Helper()
	g, err := stg.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	sgr, err := sg.FromSTG(g, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sgr
}

func TestPhaseBitsRoundTrip(t *testing.T) {
	for _, p := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
		a, b := phaseBits(p)
		if got := bitsPhase(a, b); got != p {
			t.Fatalf("round trip %v → (%v,%v) → %v", p, a, b, got)
		}
	}
	// The b bit is the level (the paper's footnote-2 encoding).
	for _, p := range []sg.Phase{sg.P0, sg.P1, sg.PUp, sg.PDown} {
		_, b := phaseBits(p)
		lvl := b
		if (p.Level() == 1) != lvl {
			t.Fatalf("b bit of %v is not its level", p)
		}
	}
}

func TestEncodeRejectsSelfConflict(t *testing.T) {
	g := graph(t, twoPulse)
	conf := &sg.Conflicts{CSC: []sg.Pair{{A: 1, B: 1}}}
	if _, err := Encode(g, conf, 1, Options{}); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("self pair must be rejected, got %v", err)
	}
	if _, err := Encode(g, conf, 0, Options{}); err == nil {
		t.Fatalf("m=0 must be rejected")
	}
}

// solveAndDecode encodes, solves and returns tightened phase columns.
func solveAndDecode(t *testing.T, g *sg.Graph, m int, opt Options) [][]sg.Phase {
	t.Helper()
	conf := sg.Analyze(g)
	enc, err := Encode(g, conf, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := sat.Solve(enc.F, sat.Limits{})
	if r.Status != sat.Sat {
		t.Fatalf("encoding unexpectedly %v", r.Status)
	}
	return enc.DecodePhases(r.Model)
}

func TestEncodeSolveDecode(t *testing.T) {
	g := graph(t, twoPulse)
	cols := solveAndDecode(t, g, 1, Options{})
	if len(cols) != 1 || len(cols[0]) != g.NumStates() {
		t.Fatalf("decoded shape wrong")
	}
	// Model must satisfy edge compatibility...
	for _, e := range g.Edges {
		if !sg.EdgeCompatible(cols[0][e.From], cols[0][e.To]) {
			t.Fatalf("edge %d→%d: %v→%v", e.From, e.To, cols[0][e.From], cols[0][e.To])
		}
	}
	// ...and stable separation of both conflict pairs.
	conf := sg.Analyze(g)
	for _, p := range conf.CSC {
		a, b := cols[0][p.A], cols[0][p.B]
		sep := (a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0)
		if !sep {
			t.Fatalf("pair %v not stably separated: %v vs %v", p, a, b)
		}
	}
}

// TestExpandXorEquivalent: the paper-style expansion and the Tseitin
// encoding must agree on satisfiability, and the expanded form must have
// no auxiliary variables.
func TestExpandXorEquivalent(t *testing.T) {
	g := graph(t, twoPulse)
	conf := sg.Analyze(g)
	for m := 1; m <= 2; m++ {
		tse, err := Encode(g, conf, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := Encode(g, conf, m, Options{ExpandXor: true})
		if err != nil {
			t.Fatal(err)
		}
		if exp.F.NumVars != 2*m*g.NumStates() {
			t.Fatalf("expanded encoding has aux vars: %d", exp.F.NumVars)
		}
		rt := sat.Solve(tse.F, sat.Limits{})
		re := sat.Solve(exp.F, sat.Limits{})
		if rt.Status != re.Status {
			t.Fatalf("m=%d: tseitin=%v expanded=%v", m, rt.Status, re.Status)
		}
		// A model of the expanded form decodes to valid phases too.
		if re.Status == sat.Sat {
			cols := exp.DecodePhases(re.Model)
			for _, e := range g.Edges {
				if !sg.EdgeCompatible(cols[0][e.From], cols[0][e.To]) {
					t.Fatalf("expanded model violates edge relation")
				}
			}
		}
	}
}

// TestExpandXorClauseGrowth: the expanded encoding grows exponentially
// with m (the paper's c^m term) while Tseitin grows linearly.
func TestExpandXorClauseGrowth(t *testing.T) {
	g := graph(t, twoPulse)
	conf := sg.Analyze(g)
	var expPair, tsePair [4]int
	edgeClauses := func(m int) int {
		n := 0
		for _, e := range g.Edges {
			if g.InputEdge(e) {
				n += 10 // the two completion pairs are also blocked
			} else {
				n += 8
			}
		}
		return n * m
	}
	for m := 1; m <= 3; m++ {
		e1, _ := Encode(g, conf, m, Options{ExpandXor: true})
		e2, _ := Encode(g, conf, m, Options{})
		expPair[m] = e1.F.NumClauses() - edgeClauses(m)
		tsePair[m] = e2.F.NumClauses() - edgeClauses(m)
	}
	// Expanded pair clauses quadruple with each extra signal (4^m, the
	// paper's c^m term); Tseitin pair clauses grow linearly in m.
	if expPair[2] != 4*expPair[1] || expPair[3] != 4*expPair[2] {
		t.Fatalf("expanded pair-clause growth not 4^m: %v", expPair)
	}
	if tsePair[3]-tsePair[2] != tsePair[2]-tsePair[1] {
		t.Fatalf("tseitin pair-clause growth not linear: %v", tsePair)
	}
}

func TestSolveDirectResolvesConflicts(t *testing.T) {
	g := graph(t, twoPulse)
	res, err := Solve(context.Background(), g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted < 1 {
		t.Fatalf("direct solve: %+v", res)
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("%d conflicts remain", conf.N())
	}
	if bad := g.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("inserted phases inconsistent: %v", bad)
	}
	if len(res.Formulas) == 0 || res.Formulas[len(res.Formulas)-1].Status != sat.Sat {
		t.Fatalf("formula stats missing: %+v", res.Formulas)
	}
}

func TestSolveDirectNoConflicts(t *testing.T) {
	g := graph(t, `
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
`)
	res, err := Solve(context.Background(), g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || len(res.Formulas) != 0 {
		t.Fatalf("clean graph gained signals: %+v", res)
	}
}

func TestSolveDirectBacktrackLimit(t *testing.T) {
	spec, err := bench.Load("mmu1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), g, SolveOptions{MaxBacktracks: 1})
	if !errors.Is(err, synerr.ErrBacktrackLimit) {
		t.Fatalf("1-backtrack budget on mmu1 should abort, got %v", err)
	}
	if len(res.Formulas) == 0 || res.Formulas[len(res.Formulas)-1].Status != sat.BacktrackLimit {
		t.Fatalf("abort not recorded in formula stats")
	}
}

func TestSolveDirectWalkSAT(t *testing.T) {
	g := graph(t, twoPulse)
	_, err := Solve(context.Background(), g, SolveOptions{Engine: WalkSAT})
	if errors.Is(err, synerr.ErrBacktrackLimit) {
		t.Skip("local search missed the model under its default budget")
	}
	if err != nil {
		t.Fatal(err)
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("conflicts remain after WalkSAT solve")
	}
}

func TestTightenPreservesConstraintsAndShrinksRegions(t *testing.T) {
	g := graph(t, twoPulse)
	conf := sg.Analyze(g)
	enc, err := Encode(g, conf, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := sat.Solve(enc.F, sat.Limits{})
	if r.Status != sat.Sat {
		t.Fatal("unsat")
	}
	cols := enc.DecodePhases(r.Model)
	before := countExcited(cols)
	Tighten(g, conf, cols)
	after := countExcited(cols)
	if after > before {
		t.Fatalf("tighten grew excitation: %d → %d", before, after)
	}
	for _, e := range g.Edges {
		if !sg.EdgeCompatible(cols[0][e.From], cols[0][e.To]) {
			t.Fatalf("tighten broke edge relation")
		}
	}
	for _, p := range conf.CSC {
		a, b := cols[0][p.A], cols[0][p.B]
		if !((a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0)) {
			t.Fatalf("tighten broke separation of %v", p)
		}
	}
}

func countExcited(cols [][]sg.Phase) int {
	n := 0
	for _, col := range cols {
		for _, p := range col {
			if p == sg.PUp || p == sg.PDown {
				n++
			}
		}
	}
	return n
}

func TestRedundantAndPrune(t *testing.T) {
	g := graph(t, twoPulse)
	if _, err := Solve(context.Background(), g, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	needed := len(g.StateSigs)
	// Duplicate the first column: the copy must be redundant.
	dup := sg.StateSignal{Name: "dup", Phases: append([]sg.Phase(nil), g.StateSigs[0].Phases...)}
	g.StateSigs = append(g.StateSigs, dup)
	if !Redundant(g, len(g.StateSigs)-1) {
		t.Fatalf("duplicated column not redundant")
	}
	removed := Prune(g)
	if len(removed) != 1 || removed[0] != "dup" {
		t.Fatalf("prune removed %v", removed)
	}
	if len(g.StateSigs) != needed {
		t.Fatalf("prune removed needed signals")
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("prune broke CSC")
	}
	// The remaining signal must not be redundant.
	for k := range g.StateSigs {
		if Redundant(g, k) {
			t.Fatalf("needed signal %d reported redundant", k)
		}
	}
	if Redundant(g, -1) || Redundant(g, 99) {
		t.Fatalf("out-of-range index must not be redundant")
	}
}
