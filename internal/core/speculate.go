package core

// Speculative partition-parallel module solving (DESIGN.md §3.15).
//
// The paper's modular decomposition makes every output's partition an
// independent synthesis problem, but the sequential loop in runModules
// exists for a reason: a module's solve may insert state signals into
// the full graph, and every later module sees them — in its full-code
// groupings, its outputStats baseline, its greedy input-set silencing,
// and its quotient's ε-class joins. Parallelism here must therefore be
// optimistic: workers solve modules speculatively against cheap
// copy-on-write snapshots of the state-signal columns, and a
// deterministic committer applies results strictly in the canonical
// most-conflicted-first order, keeping a speculation only when the
// graph (and cache) state it solved against is still exactly what the
// sequential run would have seen at that point.
//
// The commit predicate is the epoch check: a lane's result commits iff
// no committed predecessor inserted any state signal since the lane's
// snapshot. Conceptually this is conflict detection by dependency
// mask — a speculation is invalidated when a predecessor's insertions
// intersect its input set — with the lane's dependency mask taken
// conservatively as the graph's full Active mask, because an inserted
// column changes the full-code grouping every later module's analysis
// starts from (no narrower static mask is sound; see §3.15). The
// common case — a predecessor that inserted nothing — commits all
// speculation, which is exactly the paper's observation that the
// first (most conflicted) module's signals resolve most of the
// remaining conflicts for free.
//
// Wasted work is bounded by eager abort: every speculative attempt
// runs under its own cancelable context, registered with its snapshot
// epoch, and whenever a commit or inline re-solve inserts signals the
// committer cancels every in-flight attempt whose epoch is now stale.
// The SAT engines poll their context, so a doomed solve stops within
// one poll interval and the worker retries against a fresh snapshot —
// without this, a worker can grind a hopeless epoch-0 solve (which
// must resolve its partition's entire conflict set by itself, instead
// of inheriting the predecessors' insertions) while the commit front
// waits on it. In the insertion-heavy worst case the stage degrades
// to roughly sequential cost plus cancellation latency; in the
// no-insertion common case no attempt is ever canceled.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"asyncsyn/internal/csc"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/modcache"
	"asyncsyn/internal/par"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
	"asyncsyn/internal/trace"
)

// useSpeculation decides whether the module stage runs the speculative
// scheduler. A configured cache must be the concrete shared
// implementation (so per-lane overlays can be layered over it); an
// unknown Store implementation falls back to the sequential loop
// rather than risking out-of-order cache writes.
func useSpeculation(opt Options, nouts int) bool {
	if opt.DisableSpeculation || nouts < 2 || par.Workers(opt.Workers) < 2 {
		return false
	}
	if opt.SAT.Cache != nil {
		if _, ok := modcache.BaseOf(opt.SAT.Cache); !ok {
			return false
		}
	}
	return true
}

// laneResult is one speculative module solve, staged for the committer:
// everything the sequential loop body would have produced, computed
// against the lane's private snapshot, plus the side effects held back
// until commit (counters, trace events, cache writes).
type laneResult struct {
	snap    *sg.Graph // private snapshot; appended signals live in snap.StateSigs[base:]
	base    int       // epoch: len(full.StateSigs) at snapshot time
	is      InputSet
	pr      *PartitionResult
	widened bool
	err     error
	overlay  *modcache.Overlay // lane's cache view; nil when the run has no cache
	counters metrics.Snapshot  // staged lane counters, merged on commit
	rec      *trace.Recording  // staged trace events, replayed on commit
}

// specSched is the shared state of one speculative module stage: the
// live graph, and the registry of in-flight attempts (their epochs and
// cancel functions) that lets epoch advances abort doomed solves. mu
// serializes every access to the live graph's mutable state
// (full.StateSigs) during the stage — snapshot creation and epoch
// reads on the worker side, committed appends and inline re-solves on
// the committer side. Lane solves themselves run lock-free on their
// snapshots.
type specSched struct {
	mu      sync.Mutex
	full    *sg.Graph
	cancels []context.CancelFunc // in-flight attempt cancels, by lane index
	bases   []int                // in-flight attempt epochs, by lane index
}

// snapshot registers a fresh attempt for lane i: a copy-on-write
// snapshot of the live graph, its epoch, and a cancelable context the
// committer can abort if the epoch moves before the attempt finishes.
func (s *specSched) snapshot(ctx context.Context, i int) (*sg.Graph, int, context.Context) {
	actx, acancel := context.WithCancel(ctx)
	s.mu.Lock()
	snap, base := s.full.Snapshot(), len(s.full.StateSigs)
	s.cancels[i], s.bases[i] = acancel, base
	s.mu.Unlock()
	return snap, base, actx
}

// finish deregisters lane i's attempt (releasing its context) and
// reports whether its epoch is still current — i.e. whether the result
// is, at this instant, exactly what a sequential run would compute.
func (s *specSched) finish(i, base int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.cancels[i]; c != nil {
		s.cancels[i] = nil
		c()
	}
	return base == len(s.full.StateSigs)
}

// advanceLocked cancels every in-flight attempt whose snapshot predates
// the live epoch. Callers hold mu and have just appended to
// full.StateSigs (a commit that inserted signals, or an inline
// re-solve).
func (s *specSched) advanceLocked() {
	n := len(s.full.StateSigs)
	for j, c := range s.cancels {
		if c != nil && s.bases[j] < n {
			s.cancels[j] = nil
			c()
		}
	}
}

// runModulesSpeculative is the parallel counterpart of runModules'
// sequential loop. Workers claim outputs from the canonical order and
// solve them speculatively; the calling goroutine is the committer,
// processing results strictly in that same order. A result commits
// as-is when its snapshot epoch still matches the live graph and its
// cache overlay revalidates; otherwise the output is re-solved inline
// on the live graph — the exact sequential code path — so the final
// reports, inserted signal names, counters and digests are
// bit-identical to the sequential loop for every worker count and
// schedule.
func runModulesSpeculative(ctx context.Context, full *sg.Graph, spec *stg.G, opt Options, res *Result,
	outs []int, supports map[int]InputSet, passSigs map[int][]string) error {
	parentMC := metrics.From(ctx)
	var shared *modcache.Cache
	if opt.SAT.Cache != nil {
		shared, _ = modcache.BaseOf(opt.SAT.Cache) // non-nil: useSpeculation checked
	}
	workers := par.Workers(opt.Workers)
	if workers > len(outs) {
		workers = len(outs)
	}

	sched := &specSched{
		full:    full,
		cancels: make([]context.CancelFunc, len(outs)),
		bases:   make([]int, len(outs)),
	}

	lctx, cancel := context.WithCancel(ctx)
	slots := make([]chan laneResult, len(outs))
	for i := range slots {
		slots[i] = make(chan laneResult, 1) // buffered: workers never block on delivery
	}
	var next atomic.Int64
	wait := par.Spawn(workers, func(int) {
		// Each worker owns a pooled warm chain and incremental solver,
		// Reset before every module so warm/incremental SAT keeps
		// working per lane while staying indistinguishable from the
		// fresh-per-module construction of the sequential path.
		chain := csc.NewWarmChain()
		incr := csc.NewChainSolver()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(outs) {
				return
			}
			slots[i] <- speculate(lctx, sched, spec, opt, outs[i], i, shared, chain, incr, parentMC)
		}
	})
	defer func() {
		// Cancel before waiting: an error return leaves workers
		// mid-solve, and the lane context is what unblocks them.
		cancel()
		wait()
	}()

	for i, o := range outs {
		r := <-slots[i]
		name := full.Base[o].Name
		sched.mu.Lock()
		if r.base == len(full.StateSigs) && r.overlay.Commit() {
			// Fresh: the lane solved against exactly the state the
			// sequential run would have seen here, and its cache view
			// revalidated, so its result — including the inserted
			// signal names, which PartitionSAT numbered from the
			// shared prefix length — commits verbatim.
			full.StateSigs = append(full.StateSigs, r.snap.StateSigs[r.base:]...)
			if len(full.StateSigs) > r.base {
				sched.advanceLocked()
			}
			sched.mu.Unlock()
			parentMC.Merge(r.counters)
			parentMC.Add(metrics.ModspecCommits, 1)
			r.rec.Replay()
			recordModulePass(full, o, r.base, r.is, r.pr, r.widened, supports, passSigs, res)
			if r.err != nil {
				// Same contract as the sequential loop: the erroring
				// output's report is recorded, then the stage stops.
				return fmt.Errorf("output %q: %w", name, r.err)
			}
			continue
		}
		// Stale at the commit front (a predecessor inserted signals
		// after the lane's final freshness check, or the lane's cache
		// view failed revalidation): discard the speculation and
		// re-solve inline on the live graph — the exact sequential
		// path, under the real collector, tracer and shared cache. The
		// lock is held across the solve because it appends to
		// full.StateSigs; snapshot-taking workers wait, which is
		// harmless — any snapshot taken mid-resolve would be stale by
		// its end anyway.
		parentMC.Add(metrics.ModspecAborts, 1)
		parentMC.Add(metrics.ModspecResolves, 1)
		before := len(full.StateSigs)
		octx := trace.WithOutput(ctx, name)
		is, pr, widened, err := solveModule(octx, full, DetermineInputSet(full, spec, o), opt.SAT)
		sched.advanceLocked()
		sched.mu.Unlock()
		recordModulePass(full, o, before, is, pr, widened, supports, passSigs, res)
		if err != nil {
			return fmt.Errorf("output %q: %w", name, err)
		}
	}
	return nil
}

// speculate solves one output against a fresh snapshot, retrying with a
// newer snapshot whenever the live graph moved while it solved —
// usually because the committer canceled the attempt on an epoch
// advance, occasionally because a commit landed in the narrow window
// after the final freshness check. All side effects are staged:
// counters in a private collector, trace events in a recording, cache
// reads and writes in an overlay, and inserted signals in the
// snapshot's private StateSigs tail.
func speculate(ctx context.Context, sched *specSched, spec *stg.G, opt Options, o, i int,
	shared *modcache.Cache, chain *csc.WarmChain, incr *csc.ChainSolver,
	parentMC *metrics.Collector) laneResult {
	for {
		snap, base, actx := sched.snapshot(ctx, i)

		lane := metrics.New()
		lanectx := metrics.With(actx, lane)
		lanectx = trace.WithOutput(lanectx, snap.Base[o].Name)
		lanectx, rec := trace.Record(lanectx)

		sopt := opt.SAT
		sopt.Workers = 1 // the lanes are the parallelism; inner fan-out would oversubscribe
		chain.Reset()
		sopt.Chain = chain
		if !sopt.NoIncremental {
			incr.Reset()
			sopt.Incr = incr
		}
		var overlay *modcache.Overlay
		if shared != nil {
			overlay = modcache.NewOverlay(shared)
			sopt.Cache = overlay
		}

		is, pr, widened, err := solveModule(lanectx, snap, DetermineInputSet(snap, spec, o), sopt)
		r := laneResult{snap: snap, base: base, is: is, pr: pr, widened: widened, err: err,
			overlay: overlay, counters: lane.Snapshot(), rec: rec}
		if sched.finish(i, base) || ctx.Err() != nil {
			// Fresh (deliver the result — including a genuine solve
			// error, which the committer surfaces only if it commits),
			// or the whole stage is shutting down.
			return r
		}
		// A committed predecessor inserted state signals this lane did
		// not see; the attempt was (or is about to be) canceled. Retry
		// against a fresh snapshot — the epoch can only advance a
		// bounded number of times (once per inserted signal), so this
		// terminates.
		parentMC.Add(metrics.ModspecAborts, 1)
	}
}
