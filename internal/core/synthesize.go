package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"asyncsyn/internal/csc"
	"asyncsyn/internal/logic"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/par"
	"asyncsyn/internal/pipeline"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Options configures modular synthesis.
type Options struct {
	SAT SATOptions
	// StateGraph tunes reachability generation.
	StateGraph sg.Options
	// Logic tunes the two-level minimizer.
	Logic logic.Options
	// MaxExpandIters bounds the expansion/re-insertion loop that repairs
	// conflicts introduced by state-signal interleavings (default 3).
	MaxExpandIters int
	// FullSupport disables the per-output support restriction and derives
	// every function over all signals (used in ablation experiments; the
	// paper credits part of its area win to the reduced support).
	FullSupport bool
	// ExactLogic uses the exact minimum-literal minimizer (espresso's
	// exact strategy) instead of the ESPRESSO heuristic loop, falling
	// back to the heuristic when prime enumeration explodes.
	ExactLogic bool
	// Workers bounds the worker pool used by the pipeline's independent
	// stages (pre-sort conflict scans, whole-graph CSC analysis, and
	// per-signal logic derivation). 0 means GOMAXPROCS; 1 runs
	// sequentially. The synthesized circuit is bit-for-bit identical for
	// every value — parallel stages always reduce in a fixed order
	// (DESIGN.md §3.8).
	Workers int
	// DisableSpeculation forces the per-output module solves to run
	// strictly sequentially even when Workers > 1. By default the module
	// stage speculates: workers solve outputs in parallel against
	// copy-on-write snapshots of the state-signal columns and results
	// commit strictly in the canonical most-conflicted-first order,
	// discarding (and re-solving) any speculation a committed
	// predecessor invalidated (DESIGN.md §3.15). Results are
	// bit-identical either way; this exists for measurement and
	// debugging.
	DisableSpeculation bool
	// DisableStreaming materializes the expanded state graph (Expand)
	// instead of streaming it in topological waves (ExpandStream): the
	// whole graph — states, edges, adjacency — is built in memory before
	// conflict scanning and logic derivation consume it, and
	// Result.Expanded carries it out. Results are bit-identical either
	// way (the streaming view reproduces the materializing path's
	// interning order, codes and implied values); this exists for
	// measurement and for callers that need the expanded edge structure.
	DisableStreaming bool
}

func (o Options) withDefaults() Options {
	o.SAT = o.SAT.withDefaults()
	if o.SAT.Workers == 0 {
		// The partition passes inherit the pipeline's worker budget
		// unless explicitly overridden.
		o.SAT.Workers = o.Workers
	}
	if o.MaxExpandIters == 0 {
		o.MaxExpandIters = 3
	}
	return o
}

// OutputReport records the modular pass for one output signal.
type OutputReport struct {
	Output       string
	InputSet     []string
	StateSigs    []string
	MergedStates int
	MergedEdges  int
	Ncsc         int
	Lb           int
	NewSignals   int
	// Widened is true when the restricted module was unsolvable and the
	// reported pass ran on a widened input set (non-inputs restored, or
	// the full graph).
	Widened  bool
	Formulas []csc.FormulaStats
}

// Function is one synthesized logic function: a prime-irredundant
// sum-of-products cover over the named support variables.
type Function struct {
	Name  string
	Vars  []string
	Cover logic.Cover
}

// Literals returns the unfactored literal count (the paper's area
// metric).
func (f Function) Literals() int { return f.Cover.Literals() }

// String renders the function as an equation.
func (f Function) String() string {
	return fmt.Sprintf("%s = %s", f.Name, f.Cover.Format(f.Vars))
}

// Result is a completed synthesis run. On error the result still carries
// whatever the completed stages produced (reports, formula stats, stage
// timings); the error's identity is in the synerr taxonomy
// (ErrBacktrackLimit, ErrCanceled, ErrConflictsPersist, ...).
type Result struct {
	Name           string
	InitialStates  int
	InitialSignals int
	FinalStates    int
	FinalSignals   int
	Inserted       int
	ExpandIters    int
	Outputs        []OutputReport
	// Fallback records whole-graph SAT passes needed after the per-output
	// loop (residual conflicts) or after expansion; empty in the common
	// case.
	Fallback  []csc.FormulaStats
	Functions []Function
	Area      int
	Time      time.Duration
	// Stages records the per-stage timings of the pipeline run, including
	// a failed stage (its Err field is set).
	Stages []pipeline.StageStat

	// Full is the complete state graph with inserted phase columns.
	Full *sg.Graph
	// View is the column view of the final binary state graph the logic
	// was derived from — always populated on success, whether the
	// expansion streamed (the default) or materialized.
	View *sg.Stream
	// Expanded is the materialized final state graph; populated only
	// under Options.DisableStreaming (the streaming path never builds
	// it — that is the point).
	Expanded *sg.Graph
}

// Synthesize runs the paper's modular_synthesis (Figure 6) on an STG:
// derive Σ, then for every non-input signal determine the input set,
// build and solve the modular state graph, and propagate the assignments;
// finally expand Σ with the state-signal transitions and derive a
// prime-irredundant cover for every non-input signal.
//
// The run is a pipeline of stages (elaborate → modules → residual →
// expand → logic) executed by the shared pipeline driver: ctx cancels
// between and within stages (an error matching synerr.ErrCanceled), and
// a tracer carried by ctx receives one event per stage and per SAT
// formula. The returned Result is non-nil even on error and carries the
// completed stages' data.
func Synthesize(ctx context.Context, spec *stg.G, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	start := time.Now()
	res := &Result{Name: spec.Name}

	var (
		full     *sg.Graph
		supports map[int]InputSet
		passSigs map[int][]string
	)

	stages := []pipeline.Stage{
		{Name: "elaborate", Run: func(ctx context.Context) error {
			g, err := sg.FromSTGContext(ctx, spec, opt.StateGraph)
			if err != nil {
				return err
			}
			full = g
			res.InitialStates = full.NumStates()
			res.InitialSignals = len(full.Base)
			res.Full = full
			return nil
		}},
		{Name: "modules", Run: func(ctx context.Context) error {
			var err error
			supports, passSigs, err = runModules(ctx, full, spec, opt, res)
			return err
		}},
		{Name: "residual", Run: func(ctx context.Context) error {
			// Residual whole-graph conflicts (the integration of local
			// solutions is not guaranteed optimal or even complete in
			// theory; in practice this pass is a no-op).
			if conf := sg.AnalyzeWorkers(full, opt.Workers); conf.N() > 0 {
				dr, err := csc.Solve(ctx, full, csc.SolveOptions{
					Engine: opt.SAT.Engine, Encoding: opt.SAT.Encoding,
					MaxBacktracks: opt.SAT.MaxBacktracks, NamePrefix: opt.SAT.NamePrefix,
					BDDNodeLimit: opt.SAT.BDDNodeLimit, Cache: opt.SAT.Cache,
				})
				if dr != nil {
					res.Fallback = append(res.Fallback, dr.Formulas...)
					res.Inserted += dr.Inserted
				}
				if err != nil {
					return fmt.Errorf("residual conflicts: %w", err)
				}
			}
			// Drop state signals made redundant by the integration of the
			// local solutions (the paper notes modular synthesis is not
			// signal-optimal; this recovers the obvious waste).
			if removed := csc.Prune(full); len(removed) > 0 {
				res.Inserted -= len(removed)
			}
			return nil
		}},
		{Name: "expand", Run: func(ctx context.Context) error {
			view, expanded, iters, fallback, err := ExpandToCSC(ctx, full, opt)
			res.Fallback = append(res.Fallback, fallback...)
			res.ExpandIters = iters
			if err != nil {
				return err
			}
			res.View = view
			res.Expanded = expanded
			res.FinalStates = view.NumStates()
			res.FinalSignals = len(view.Base)
			return nil
		}},
		{Name: "logic", Run: func(ctx context.Context) error {
			// The materializing path derives logic off the graph it built;
			// the streaming path only ever has the column view. Both run
			// the same table extraction (sg's shared tableOver), so the
			// covers are bit-identical.
			var src LogicSource = res.View
			if res.Expanded != nil {
				src = res.Expanded
			}
			fns, err := DeriveLogic(ctx, src, full, supports, passSigs, opt)
			if err != nil {
				return err
			}
			res.Functions = fns
			for _, f := range fns {
				res.Area += f.Literals()
			}
			return nil
		}},
	}

	stats, err := pipeline.Run(ctx, stages)
	res.Stages = stats
	res.Time = time.Since(start)
	if err != nil {
		return res, err
	}
	return res, nil
}

// runModules executes the per-output modular passes: input-set
// determination, modular CSC solving with the widening fallback chain,
// and global propagation. It fills res.Outputs/res.Inserted and returns
// the per-output supports and pass signals needed by logic derivation.
func runModules(ctx context.Context, full *sg.Graph, spec *stg.G, opt Options, res *Result) (map[int]InputSet, map[int][]string, error) {
	// The most-conflicted output goes first: its module contains the
	// structural core of the coding problem, and the signals inserted for
	// it (propagated globally, the paper's Figure 5) resolve most of the
	// remaining outputs' conflicts for free. The reverse order forces one
	// module to invent several entangled signals at once, which measurably
	// degrades area.
	//
	// Each output's conflict count is computed exactly once, with the
	// independent full-graph scans fanned out over the worker pool (the
	// comparator itself must stay cheap: it runs O(n log n) times).
	outs := nonInputsByName(full)
	counts, err := par.Map(len(outs), opt.Workers, func(i int) (int, error) {
		// outputStats is a pure scan with no failure mode (its second
		// return is a count, not an error), so the closure can only
		// return nil here; the outer error is still propagated so a
		// future failure mode cannot be silently dropped.
		n, _ := outputStats(full, nil, outs[i])
		return n, nil
	})
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(outs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return full.Base[outs[order[i]]].Name < full.Base[outs[order[j]]].Name
	})
	sorted := make([]int, len(outs))
	for i, oi := range order {
		sorted[i] = outs[oi]
	}
	outs = sorted
	supports := make(map[int]InputSet)
	passSigs := make(map[int][]string) // output → state-signal names kept or added in its pass
	if useSpeculation(opt, len(outs)) {
		err := runModulesSpeculative(ctx, full, spec, opt, res, outs, supports, passSigs)
		return supports, passSigs, err
	}
	for _, o := range outs {
		octx := trace.WithOutput(ctx, full.Base[o].Name)
		before := len(full.StateSigs)
		is, pr, widened, err := solveModule(octx, full, DetermineInputSet(full, spec, o), opt.SAT)
		recordModulePass(full, o, before, is, pr, widened, supports, passSigs, res)
		if err != nil {
			return supports, passSigs, fmt.Errorf("output %q: %w", full.Base[o].Name, err)
		}
	}
	return supports, passSigs, nil
}

// recordModulePass appends the bookkeeping of one completed module pass
// — the support map, the pass signal names (kept plus the ones inserted
// from index before on), and the output report. It is shared verbatim
// by the sequential loop and the speculative committer, so the two
// paths cannot drift.
func recordModulePass(full *sg.Graph, o, before int, is InputSet, pr *PartitionResult, widened bool,
	supports map[int]InputSet, passSigs map[int][]string, res *Result) {
	supports[o] = is
	for _, k := range is.StateSigs {
		passSigs[o] = append(passSigs[o], full.StateSigs[k].Name)
	}
	for k := before; k < len(full.StateSigs); k++ {
		passSigs[o] = append(passSigs[o], full.StateSigs[k].Name)
	}
	rep := OutputReport{
		Output:   full.Base[o].Name,
		InputSet: full.SignalNamesIn(is.Mask),
		Widened:  widened,
	}
	if pr != nil {
		rep.MergedStates = pr.MergedStates
		rep.MergedEdges = pr.MergedEdges
		rep.Ncsc = pr.Ncsc
		rep.Lb = pr.Lb
		rep.NewSignals = pr.NewSignals
		rep.Formulas = pr.Formulas
	}
	for _, k := range is.StateSigs {
		rep.StateSigs = append(rep.StateSigs, full.StateSigs[k].Name)
	}
	res.Outputs = append(res.Outputs, rep)
	if pr != nil {
		res.Inserted += pr.NewSignals
	}
}

// solveModule runs partition_sat on the output's input set, widening the
// module when its restricted form is unsolvable: an input set can retain
// too few output edges for the new signals' transitions to complete
// across (the input-properness restriction: excitations cannot finish
// across environment-driven edges). The chain retries first with every
// non-input signal restored, then on the full graph. Budget exhaustion
// and cancellation skip the chain entirely — widening only ever makes
// those formulas harder — and cancellation also breaks out of it.
// widened reports whether the returned result came from a widened set.
func solveModule(ctx context.Context, full *sg.Graph, is InputSet, opt SATOptions) (InputSet, *PartitionResult, bool, error) {
	// One warm chain spans the whole fallback chain. Each PartitionSAT
	// rebinds it to its own quotient, dropping clauses whenever the
	// widened quotient is structurally different — clauses learned on a
	// coarser graph's edges are not implied by a finer one's.
	if opt.Chain == nil {
		opt.Chain = csc.NewWarmChain()
	}
	if opt.Incr == nil && !opt.NoIncremental {
		opt.Incr = csc.NewChainSolver()
	}
	pr, err := PartitionSAT(ctx, full, is, opt)
	if err == nil || errors.Is(err, synerr.ErrBacktrackLimit) || errors.Is(err, synerr.ErrCanceled) {
		return is, pr, false, err
	}
	for _, wider := range []InputSet{widenNonInputs(full, is), widenAll(full, is.Output)} {
		pr, err = PartitionSAT(ctx, full, wider, opt)
		if err == nil {
			return wider, pr, true, nil
		}
		if errors.Is(err, synerr.ErrCanceled) {
			break
		}
	}
	return is, pr, false, err
}

// ExpandToCSC expands the phase columns of g into explicit signals. If
// the serialised interleavings introduce fresh conflicts between
// expanded states, the colliding pairs are mapped back to the states of
// g they came from and an additional state signal separating them is
// found by a SAT formula at the ORIGINAL graph's scale (a
// counterexample-guided refinement: the expansion is the checker, the
// small graph the solver), up to opt.MaxExpandIters rounds. g is
// modified in place when refinement signals are added.
//
// By default each round streams the expansion (sg.ExpandStream): only
// the per-state columns the conflict scan and logic derivation need are
// retained, never the expanded edge structure, so peak heap scales with
// the state count times a few words instead of the full graph. Under
// opt.DisableStreaming the round materializes the graph exactly as the
// pre-streaming pipeline did and additionally returns it as expanded
// (nil otherwise); view is populated either way and is bit-identical
// between the two modes.
//
// iters reports the number of expansion rounds actually run; when
// conflicts survive every round the returned error matches
// synerr.ErrConflictsPersist and iters equals opt.MaxExpandIters (no
// refinement is attempted after the final expansion — its result could
// never be checked).
func ExpandToCSC(ctx context.Context, g *sg.Graph, opt Options) (view *sg.Stream, expanded *sg.Graph, iters int, fallback []csc.FormulaStats, err error) {
	opt = opt.withDefaults()
	// Every refinement round solves formulas on the same graph g (only
	// phase columns are appended between rounds), so one warm chain
	// serves them all.
	opt.SAT.Chain = csc.NewWarmChain()
	opt.SAT.Chain.Rebind(g)
	if !opt.SAT.NoIncremental {
		opt.SAT.Incr = csc.NewChainSolver()
	}
	mc := metrics.From(ctx)
	for iters = 1; ; iters++ {
		var conf *sg.Conflicts
		if opt.DisableStreaming {
			expanded, err = g.Expand()
			if err != nil {
				return nil, nil, iters, fallback, err
			}
			mc.Add(metrics.SGStates, int64(expanded.NumStates()))
			// The expanded graph is the largest object in the pipeline; its
			// conflict scan fans out over the code groups.
			conf = sg.AnalyzeWorkers(expanded, opt.Workers)
			if conf.N() == 0 {
				view, err = sg.StreamOf(expanded)
				return view, expanded, iters, fallback, err
			}
		} else {
			view, err = g.ExpandStream()
			if err != nil {
				return nil, nil, iters, fallback, err
			}
			mc.Add(metrics.SGStates, int64(view.NumStates()))
			mc.Add(metrics.SGStatesStreamed, int64(view.NumStates()))
			mc.Max(metrics.SGPeakFrontier, int64(view.PeakFrontier))
			conf = sg.AnalyzeStream(view, opt.Workers)
			if conf.N() == 0 {
				return view, nil, iters, fallback, nil
			}
		}
		if iters >= opt.MaxExpandIters {
			return nil, nil, iters, fallback, fmt.Errorf("core: CSC conflicts persist after %d expansion rounds: %w",
				opt.MaxExpandIters, synerr.ErrConflictsPersist)
		}
		var origin []int
		if opt.DisableStreaming {
			origin = expanded.Origin
		} else {
			origin = view.Origin
		}
		refined := refinementConflicts(g, origin, conf)
		stats, rerr := solveRefinement(ctx, g, refined, opt, iters)
		fallback = append(fallback, stats...)
		if rerr != nil {
			return nil, nil, iters, fallback, rerr
		}
	}
}

// refinementConflicts maps expanded-graph conflict pairs back to g's
// states through the origin column (expanded state → originating state
// of g, from either the materialized graph or the streamed view) and
// widens the USC side to every pair of g whose expansions could still
// collide (equal base codes with overlapping state-signal level sets).
func refinementConflicts(g *sg.Graph, origin []int, conf *sg.Conflicts) *sg.Conflicts {
	mustSep := make(map[sg.Pair]bool)
	for _, p := range conf.CSC {
		a, b := origin[p.A], origin[p.B]
		if a > b {
			a, b = b, a
		}
		if a != b {
			mustSep[sg.Pair{A: a, B: b}] = true
		}
	}
	out := &sg.Conflicts{LowerBound: 1}
	for p := range mustSep {
		out.CSC = append(out.CSC, p)
	}
	sort.Slice(out.CSC, func(i, j int) bool {
		if out.CSC[i].A != out.CSC[j].A {
			return out.CSC[i].A < out.CSC[j].A
		}
		return out.CSC[i].B < out.CSC[j].B
	})

	out.USC = overlapUSC(g, out.CSC)
	return out
}

// solveRefinement inserts state signals into g separating the refined
// conflict pairs: one joint attempt at m=1, then greedy incremental
// insertion (cascaded instances cannot be reached by growing m jointly).
// Budget exhaustion returns an error matching synerr.ErrBacktrackLimit.
func solveRefinement(ctx context.Context, g *sg.Graph, conf *sg.Conflicts, opt Options, round int) ([]csc.FormulaStats, error) {
	var stats []csc.FormulaStats
	cols, st, err := csc.Attempt(ctx, g, conf, 1, opt.SAT.solveOptions())
	if err != nil {
		return stats, err
	}
	stats = append(stats, st)
	switch st.Status {
	case sat.Sat:
		g.StateSigs = append(g.StateSigs, sg.StateSignal{
			Name:   fmt.Sprintf("%sx%d_%d", opt.SAT.NamePrefix, round, len(g.StateSigs)),
			Phases: cols[0],
		})
		return stats, nil
	case sat.BacktrackLimit:
		return stats, fmt.Errorf("core: expansion refinement round %d: %w", round, synerr.ErrBacktrackLimit)
	}

	// Incremental: re-evaluate which refined pairs remain unseparated
	// after each insertion.
	pairs := append([]sg.Pair(nil), conf.CSC...)
	refresh := func() *sg.Conflicts {
		out := &sg.Conflicts{LowerBound: 1}
		for _, p := range pairs {
			if !stablySeparated(g, p) {
				out.CSC = append(out.CSC, p)
			}
		}
		out.USC = overlapUSC(g, out.CSC)
		return out
	}
	sopt := opt.SAT.solveOptions()
	sopt.NamePrefix = fmt.Sprintf("%sx%d_", opt.SAT.NamePrefix, round)
	_, istats, err := csc.InsertIncremental(ctx, g, refresh, sopt, opt.SAT.MaxSignals)
	stats = append(stats, istats...)
	if err != nil {
		return stats, fmt.Errorf("core: expansion refinement: %w", err)
	}
	return stats, nil
}

// stablySeparated reports whether some state signal holds stable
// complementary values at the pair's states.
func stablySeparated(g *sg.Graph, p sg.Pair) bool {
	for _, ss := range g.StateSigs {
		a, b := ss.Phases[p.A], ss.Phases[p.B]
		if (a == sg.P0 && b == sg.P1) || (a == sg.P1 && b == sg.P0) {
			return true
		}
	}
	return false
}

// overlapUSC lists the pairs with equal base codes whose expansions can
// still collide (every state signal's level sets overlapping), minus the
// given CSC pairs.
func overlapUSC(g *sg.Graph, cscPairs []sg.Pair) []sg.Pair {
	skip := make(map[sg.Pair]bool, len(cscPairs))
	for _, p := range cscPairs {
		skip[p] = true
	}
	overlap := func(a, b sg.Phase) bool {
		if a == sg.PUp || a == sg.PDown || b == sg.PUp || b == sg.PDown {
			return true
		}
		return a == b
	}
	groups := make(map[uint64][]int)
	for s := range g.States {
		c := g.States[s].Code & g.Active
		groups[c] = append(groups[c], s)
	}
	keys := make([]uint64, 0, len(groups))
	for c := range groups {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []sg.Pair
	for _, c := range keys {
		states := groups[c]
		for i := 0; i < len(states); i++ {
		pair:
			for j := i + 1; j < len(states); j++ {
				p := sg.Pair{A: states[i], B: states[j]}
				if skip[p] {
					continue
				}
				for _, ss := range g.StateSigs {
					if !overlap(ss.Phases[p.A], ss.Phases[p.B]) {
						continue pair
					}
				}
				out = append(out, p)
			}
		}
	}
	return out
}

// LogicSource is the read surface logic derivation needs from the
// expanded state space. Both the materialized *sg.Graph and the
// streamed *sg.Stream implement it; their FunctionTable methods share
// one extraction core, so the derived covers are bit-identical whichever
// backs the derivation.
type LogicSource interface {
	BaseSignals() []sg.SignalInfo
	SignalIndex(name string) (int, bool)
	FunctionTable(sig int, supportMask uint64) (*sg.Table, error)
}

// DeriveLogic extracts and minimizes the logic of every non-input signal
// of the expanded state space (a materialized graph or a streamed view).
// Original outputs use their recorded input-set support (plus the state
// signals, identified by name, kept or created in their pass), falling
// back to wider supports if the restricted table is ill defined;
// inserted state signals and any signal without a record use the full
// support.
//
// Every signal's cover is independent of the others, so the table
// extraction and ESPRESSO minimization fan out over the worker pool and
// the functions are collected in sorted-name order — the same order the
// sequential loop produced.
func DeriveLogic(ctx context.Context, expanded LogicSource, full *sg.Graph, supports map[int]InputSet, passSigs map[int][]string, opt Options) ([]Function, error) {
	nb := len(full.Base)
	base := expanded.BaseSignals()
	fullMask := uint64(0)
	for i := range base {
		fullMask |= 1 << i
	}

	sigs := nonInputsOf(base)
	fns, err := par.Map(len(sigs), opt.Workers, func(si int) (Function, error) {
		sigIdx := sigs[si]
		var masks []uint64
		if is, ok := supportFor(full, sigIdx, supports); ok && !opt.FullSupport {
			restricted := is.Mask | 1<<uint(sigIdx)
			for _, name := range passSigs[is.Output] {
				if bi, ok := expanded.SignalIndex(name); ok {
					restricted |= 1 << bi
				}
				// Pruned signals simply drop out of the support.
			}
			// Fallback chain: restricted → restricted + all state signals → full.
			withAll := restricted
			for k := nb; k < len(base); k++ {
				withAll |= 1 << k
			}
			masks = []uint64{restricted, withAll, fullMask}
		} else {
			masks = []uint64{fullMask}
		}

		var tbl *sg.Table
		var err error
		for _, m := range masks {
			tbl, err = expanded.FunctionTable(sigIdx, m)
			if err == nil {
				break
			}
		}
		if err != nil {
			return Function{}, err
		}
		spec := logic.Spec{NumVars: len(tbl.Vars), On: tbl.On, Off: tbl.Off}
		var cover logic.Cover
		if opt.ExactLogic {
			cover, err = logic.MinimizeExactContext(ctx, spec, logic.ExactOptions{})
			if err != nil && errors.Is(err, synerr.ErrCanceled) {
				return Function{}, err
			}
		}
		if !opt.ExactLogic || err != nil {
			// Heuristic path, also the fallback when exact minimization
			// exceeds its prime or search budget.
			cover, err = logic.MinimizeContext(ctx, spec, opt.Logic)
		}
		if err != nil {
			return Function{}, fmt.Errorf("minimizing %q: %w", tbl.Signal, err)
		}
		return Function{Name: tbl.Signal, Vars: tbl.Vars, Cover: cover}, nil
	})
	if err != nil {
		return nil, err
	}
	return fns, nil
}

// supportFor maps an expanded-graph signal index back to its recorded
// input set, when the signal is one of the original outputs.
func supportFor(full *sg.Graph, sigIdx int, supports map[int]InputSet) (InputSet, bool) {
	if sigIdx >= len(full.Base) {
		return InputSet{}, false
	}
	is, ok := supports[sigIdx]
	return is, ok
}

// widenNonInputs returns is with every non-input signal restored to the
// module (their edges can host state-signal completions).
func widenNonInputs(g *sg.Graph, is InputSet) InputSet {
	out := is
	for i, b := range g.Base {
		if !b.Input {
			out.Mask |= 1 << i
		}
	}
	out.Silenced = g.Active &^ out.Mask
	return out
}

// widenAll returns the trivial input set covering the whole graph.
func widenAll(g *sg.Graph, o int) InputSet {
	kept := make([]int, len(g.StateSigs))
	for k := range kept {
		kept[k] = k
	}
	return InputSet{Output: o, Mask: g.Active, StateSigs: kept}
}

// nonInputsByName lists non-input base signal indices sorted by name.
func nonInputsByName(g *sg.Graph) []int { return nonInputsOf(g.Base) }

// nonInputsOf is nonInputsByName over a bare signal list (shared with
// the streamed view, which has no graph).
func nonInputsOf(base []sg.SignalInfo) []int {
	var idx []int
	for i, b := range base {
		if !b.Input {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return base[idx[a]].Name < base[idx[b]].Name })
	return idx
}
