package core

import (
	"context"
	"errors"
	"testing"

	"asyncsyn/internal/csc"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/stg"
)

// TestFuzzSynthesize runs the full modular pipeline over randomly
// generated live-safe STGs and checks the invariants every run must
// satisfy: synthesis completes, the final state graph is CSC-clean,
// every function matches its implied values on every reachable state,
// and the result is deterministic. This is the repo's broadest net for
// interaction bugs between quotients, insertion, tightening, pruning,
// refinement and logic derivation.
func TestFuzzSynthesize(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < seeds; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		res, err := Synthesize(context.Background(), spec, Options{})
		if err != nil {
			t.Fatalf("seed %d (%s): synthesize: %v", seed, spec.Name, err)
		}
		if conf := sg.AnalyzeStream(res.View, 1); conf.N() != 0 {
			t.Fatalf("seed %d: %d conflicts in the final graph", seed, conf.N())
		}
		// Oracle: every function value equals the implied value.
		ex := res.View
		for _, fn := range res.Functions {
			sigIdx, ok := ex.SignalIndex(fn.Name)
			if !ok {
				t.Fatalf("seed %d: function %q names no signal", seed, fn.Name)
			}
			varIdx := make([]int, len(fn.Vars))
			for i, v := range fn.Vars {
				vi, ok := ex.SignalIndex(v)
				if !ok {
					t.Fatalf("seed %d: support %q missing", seed, v)
				}
				varIdx[i] = vi
			}
			for s := range ex.Codes {
				var m uint64
				for i, vi := range varIdx {
					if ex.Codes[s]&(1<<vi) != 0 {
						m |= 1 << i
					}
				}
				want := ex.ImpliedValue(s, sigIdx) == 1
				if got := fn.Cover.Eval(m); got != want {
					t.Fatalf("seed %d: %s wrong in state %d", seed, fn.Name, s)
				}
			}
		}
		// Inserted phases on the full graph stay edge-consistent.
		if bad := res.Full.CheckPhaseConsistency(); len(bad) != 0 {
			t.Fatalf("seed %d: phases inconsistent: %v", seed, bad)
		}
	}
}

// TestFuzzDirect: the direct whole-graph method also resolves every
// random instance, and its expansion passes the same CSC check.
func TestFuzzDirect(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := sg.FromSTG(spec, sg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = csc.Solve(context.Background(), full, csc.SolveOptions{MaxBacktracks: 50000})
		if errors.Is(err, synerr.ErrBacktrackLimit) {
			// The direct method legitimately aborts at its backtrack
			// budget on cascaded instances (the behaviour Table 1 reports
			// for it); the modular method handles them (TestFuzzSynthesize).
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: direct solve: %v", seed, err)
		}
		view, _, _, _, err := ExpandToCSC(context.Background(), full, Options{})
		if err != nil {
			t.Fatalf("seed %d: expansion: %v", seed, err)
		}
		if conf := sg.AnalyzeStream(view, 1); conf.N() != 0 {
			t.Fatalf("seed %d: %d conflicts after direct insertion", seed, conf.N())
		}
	}
}
