// Package core implements the paper's contribution: modular partitioning
// for asynchronous circuit synthesis. For every output signal the
// complete state graph Σ is reduced to a small modular state graph Σ_o by
// greedily removing signals that o's logic does not need
// (determine_input_set, Fig. 2), CSC is satisfied on Σ_o by a small SAT
// formula (partition_sat, Fig. 4), and the new state-signal assignments
// are propagated back to Σ through the cover relation (propagate,
// Fig. 5). After all outputs are processed the state graph is expanded
// with the state-signal transitions and each output's logic is derived as
// a prime-irredundant two-level cover (modular_synthesis, Fig. 6).
package core

import (
	"sort"

	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

// InputSet is the result of determine_input_set for one output: the
// minimal signal support found for the output's logic.
type InputSet struct {
	Output int // base signal index of the output
	// Mask marks the base signals kept (always including Output and its
	// immediate input set).
	Mask uint64
	// Silenced marks the base signals removed (Mask's complement over the
	// graph's active signals).
	Silenced uint64
	// StateSigs indexes the already-inserted state signals kept in the
	// modular graph.
	StateSigs []int
	// Ncsc and Lb are the CSC conflict count and state-signal lower bound
	// of the resulting modular state graph.
	Ncsc int
	Lb   int
}

// DetermineInputSet computes the input signal set of output o (a base
// signal index of g), following the paper's Figure 2: start from the
// immediate input set (signals with a direct causal arc to a transition
// of o in the STG), then greedily remove every other signal whose removal
// does not increase the CSC conflict count or the state-signal lower
// bound and does not break any state-signal phase join; finally drop the
// inserted state signals whose removal does not increase conflicts.
//
// The STG is needed only for the trigger relation; spec may be nil, in
// which case every signal is a removal candidate (the immediate input set
// is approximated by the signals labelling edges into o-transition
// predecessor states — a weaker but STG-free criterion is not available,
// so we simply start from the empty immediate set).
// keepOutputs retains every non-input signal in each module. Removing an
// output signal removes its edges — the only places an inserted signal's
// transitions may complete under the input-properness restriction — and
// measurably degrades the regularity (and hence the area) of the
// solutions found on concurrency-heavy graphs.
const keepOutputs = true

func DetermineInputSet(g *sg.Graph, spec *stg.G, o int) InputSet {
	is := InputSet{Output: o}

	immediate := make(map[int]bool)
	if spec != nil {
		if si, ok := spec.SignalIndex(g.Base[o].Name); ok {
			for _, t := range spec.ImmediateInputs(si) {
				name := spec.Signals[t].Name
				if gi, ok := g.SignalIndex(name); ok {
					immediate[gi] = true
				}
			}
		}
	}

	// Baseline conflict stats on the full graph (no merging).
	nCSC, lb := outputStats(g, nil, o)

	// Candidate removal order: by signal name, inputs considered before
	// non-inputs so environment signals are shed first when possible.
	var candidates []int
	for i := range g.Base {
		if i == o || immediate[i] || g.Active&(1<<i) == 0 {
			continue
		}
		if !g.Base[i].Input && keepOutputs {
			continue
		}
		candidates = append(candidates, i)
	}
	sort.Slice(candidates, func(a, b int) bool {
		ca, cb := candidates[a], candidates[b]
		if g.Base[ca].Input != g.Base[cb].Input {
			return g.Base[ca].Input
		}
		return g.Base[ca].Name < g.Base[cb].Name
	})

	var silenced uint64
	for _, si := range candidates {
		try := silenced | 1<<si
		merged, ok := g.Quotient(try)
		if !ok {
			continue // phase join failed: si carries a state-signal edge
		}
		n2, lb2 := outputStatsMerged(merged, o)
		if n2 < 0 {
			continue // removal created a self-conflicting class
		}
		if n2 <= nCSC && lb2 <= lb {
			silenced = try
			nCSC, lb = n2, lb2
		}
	}
	is.Silenced = silenced
	is.Mask = g.Active &^ silenced

	// State-signal pruning: keep only the inserted signals whose removal
	// would increase the modular conflict count.
	kept := make([]int, 0, len(g.StateSigs))
	for k := range g.StateSigs {
		kept = append(kept, k)
	}
	for k := range g.StateSigs {
		without := make([]int, 0, len(kept))
		for _, j := range kept {
			if j != k {
				without = append(without, j)
			}
		}
		gw := withStateSigs(g, without)
		merged, ok := gw.Quotient(silenced)
		if !ok {
			continue
		}
		n2, lb2 := outputStatsMerged(merged, o)
		if n2 >= 0 && n2 <= nCSC && lb2 <= lb {
			kept = without
			nCSC, lb = n2, lb2
		}
	}
	is.StateSigs = kept
	is.Ncsc, is.Lb = nCSC, lb
	return is
}

// withStateSigs returns a shallow working copy of g keeping only the
// state-signal columns listed in keep.
func withStateSigs(g *sg.Graph, keep []int) *sg.Graph {
	c := *g
	c.StateSigs = make([]sg.StateSignal, 0, len(keep))
	for _, k := range keep {
		c.StateSigs = append(c.StateSigs, g.StateSigs[k])
	}
	return &c
}

// outputStats computes (N_csc, L_b) for output o directly on graph g.
func outputStats(g *sg.Graph, _ []int, o int) (int, int) {
	conf := sg.OutputConflicts(g, func(s int) (bool, bool) {
		return g.ImpliedValue(s, o) == 0, g.ImpliedValue(s, o) == 1
	})
	return conf.N(), conf.LowerBound
}

// outputStatsMerged computes (N_csc, L_b) for output o on a merged graph;
// it returns N_csc = -1 when some merged class implies both values of o
// (a self-conflict that no state-signal assignment can repair).
func outputStatsMerged(m *sg.Merged, o int) (int, int) {
	conf := sg.OutputConflicts(m.Graph, m.ImpliedOf(o))
	for _, p := range conf.CSC {
		if p.A == p.B {
			return -1, 0
		}
	}
	return conf.N(), conf.LowerBound
}
