package core

import (
	"context"
	"errors"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/stg"
)

// twoPulseCore: the canonical CSC-violating STG (codes 10 and 00 recur
// with different enabled outputs).
const twoPulseCore = `
.model tp
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func twoPulseGraph(t *testing.T) *sg.Graph {
	t.Helper()
	spec, err := stg.ParseString(twoPulseCore)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExpandToCSCConflictsPersistIters: when conflicts survive every
// expansion round, the error matches synerr.ErrConflictsPersist and
// iters reports the rounds actually run — exactly MaxExpandIters, not
// one past it (the driver never starts a refinement it could not check).
func TestExpandToCSCConflictsPersistIters(t *testing.T) {
	g := twoPulseGraph(t)
	// The graph's CSC conflicts are unresolved: with a single round
	// allowed, no refinement may be attempted and expansion must fail.
	view, expanded, iters, fallback, err := ExpandToCSC(context.Background(), g, Options{MaxExpandIters: 1})
	if !errors.Is(err, synerr.ErrConflictsPersist) {
		t.Fatalf("conflicted graph must fail with ErrConflictsPersist, got %v", err)
	}
	if view != nil || expanded != nil {
		t.Fatalf("failed expansion returned a view or graph")
	}
	if iters != 1 {
		t.Fatalf("iters = %d, want exactly MaxExpandIters (1)", iters)
	}
	if len(fallback) != 0 {
		t.Fatalf("no refinement may run after the final round, got %d formulas", len(fallback))
	}
	if len(g.StateSigs) != 0 {
		t.Fatalf("failed expansion inserted %d signals into g", len(g.StateSigs))
	}
}

// TestExpandToCSCRefinementResolves: with rounds available, the
// counterexample-guided refinement inserts the separating signal and the
// reported iteration count covers the rounds actually run.
func TestExpandToCSCRefinementResolves(t *testing.T) {
	g := twoPulseGraph(t)
	view, _, iters, fallback, err := ExpandToCSC(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if iters != 2 {
		t.Fatalf("iters = %d, want 2 (one failed check, one clean re-expansion)", iters)
	}
	if len(fallback) == 0 {
		t.Fatalf("refinement solved no formula")
	}
	if conf := sg.AnalyzeStream(view, 1); conf.N() != 0 {
		t.Fatalf("%d conflicts survive refinement", conf.N())
	}
}

// TestWideningFallbackChain (the runModules fallback): an over-restricted
// module whose quotient conflicts with itself is unsolvable at any signal
// count; solveModule must widen the input set until partition_sat
// succeeds, report the widening, and leave the propagated signal on the
// full graph.
func TestWideningFallbackChain(t *testing.T) {
	g := twoPulseGraph(t)
	bIdx, ok := g.SignalIndex("b")
	if !ok {
		t.Fatal("no signal b")
	}
	restricted := InputSet{Output: bIdx, Mask: 1 << bIdx, Silenced: g.Active &^ (1 << bIdx)}

	// The restricted module really is unsolvable (and for a structural
	// reason, not a budget one — the chain must not trigger on budgets).
	if _, err := PartitionSAT(context.Background(), g, restricted, SATOptions{}); err == nil {
		t.Fatal("over-restricted module unexpectedly solvable")
	} else if errors.Is(err, synerr.ErrBacktrackLimit) || errors.Is(err, synerr.ErrCanceled) {
		t.Fatalf("restricted module failed for the wrong reason: %v", err)
	}

	is, pr, widened, err := solveModule(context.Background(), g, restricted, SATOptions{})
	if err != nil {
		t.Fatalf("widening chain failed: %v", err)
	}
	if !widened {
		t.Fatal("successful fallback pass not reported as widened")
	}
	if is.Mask == restricted.Mask {
		t.Fatalf("input set not widened: %b", is.Mask)
	}
	if pr == nil || pr.NewSignals < 1 {
		t.Fatalf("widened pass inserted nothing: %+v", pr)
	}
	if len(g.StateSigs) != pr.NewSignals {
		t.Fatalf("%d signals propagated to the full graph, want %d", len(g.StateSigs), pr.NewSignals)
	}
	if conf := sg.Analyze(g); conf.N() != 0 {
		t.Fatalf("%d conflicts remain after the widened pass", conf.N())
	}
}

// TestWideningSkippedOnBacktrackLimit: budget exhaustion must surface
// unwidened — retrying a formula the budget could not finish on a larger
// graph only wastes the remaining budget.
func TestWideningSkippedOnBacktrackLimit(t *testing.T) {
	spec, err := bench.Load("mmu0")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aIdx, _ := g.SignalIndex("a")
	is := DetermineInputSet(g, spec, aIdx)
	// One backtrack cannot finish output a's 5000-clause joint formula.
	_, _, widened, err := solveModule(context.Background(), g, is, SATOptions{MaxBacktracks: 1})
	if !errors.Is(err, synerr.ErrBacktrackLimit) {
		t.Fatalf("1-backtrack budget on mmu0 output a must exhaust, got %v", err)
	}
	if widened {
		t.Fatal("widening chain ran on a budget exhaustion")
	}
	if len(g.StateSigs) != 0 {
		t.Fatalf("aborted module inserted %d signals", len(g.StateSigs))
	}
}

// TestWideningSkippedOnCancel: a canceled context must stop the chain
// immediately with an error matching both ErrCanceled and the context's
// own error.
func TestWideningSkippedOnCancel(t *testing.T) {
	g := twoPulseGraph(t)
	bIdx, _ := g.SignalIndex("b")
	restricted := InputSet{Output: bIdx, Mask: 1 << bIdx, Silenced: g.Active &^ (1 << bIdx)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, widened, err := solveModule(ctx, g, restricted, SATOptions{})
	if !errors.Is(err, synerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled chain returned %v", err)
	}
	if widened {
		t.Fatal("widening reported under cancellation")
	}
}
