package core

import (
	"context"
	"errors"
	"fmt"

	"asyncsyn/internal/csc"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/modcache"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
)

// SATOptions configures the constraint-satisfaction side of modular
// synthesis.
type SATOptions struct {
	Engine        csc.Engine
	Encoding      csc.Options
	MaxBacktracks int64 // per formula; default 2,000,000
	MaxSignals    int   // per modular graph; default 6
	NamePrefix    string
	BDDNodeLimit  int // BDD engine budget; default one million nodes
	// Workers bounds the worker pool for the conflict scans inside the
	// partition pass (0 = GOMAXPROCS, 1 = sequential); it has no effect
	// on results, only on wall-clock.
	Workers int
	// Cache, when non-nil, is the module solve cache shared across
	// modules (and runs): signature-equal solves are answered by
	// bit-identical replays instead of fresh searches. Speculative
	// module solving replaces it per lane with a *modcache.Overlay over
	// the shared cache; callers holding a possibly nil *modcache.Cache
	// must pass a nil interface, not a typed nil.
	Cache modcache.Store
	// Chain, when non-nil, carries reusable learned clauses across the
	// related SAT formulas of one module's solve chain. PartitionSAT
	// creates one per call when unset; solveModule shares one across
	// the widening fallbacks.
	Chain *csc.WarmChain
	// Incr, when non-nil, solves the chain's plain-DPLL formulas on one
	// persistent incremental solver (see csc.ChainSolver). Created
	// alongside Chain when unset, unless NoIncremental is set.
	Incr *csc.ChainSolver
	// NoIncremental forces the re-encode path (ablation and parity
	// testing); results are bit-identical either way.
	NoIncremental bool
}

// solveOptions adapts SATOptions to the csc attempt interface.
func (o SATOptions) solveOptions() csc.SolveOptions {
	return csc.SolveOptions{
		Engine:        o.Engine,
		Encoding:      o.Encoding,
		MaxBacktracks: o.MaxBacktracks,
		BDDNodeLimit:  o.BDDNodeLimit,
		Cache:         o.Cache,
		Chain:         o.Chain,
		Incr:          o.Incr,
		NoIncremental: o.NoIncremental,
	}
}

func (o SATOptions) withDefaults() SATOptions {
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 2000000
	}
	if o.MaxSignals == 0 {
		o.MaxSignals = 6
	}
	if o.NamePrefix == "" {
		o.NamePrefix = "csc"
	}
	return o
}

// PartitionResult reports one partition_sat invocation.
type PartitionResult struct {
	MergedStates int
	MergedEdges  int
	Ncsc         int
	Lb           int
	NewSignals   int
	Formulas     []csc.FormulaStats
}

// PartitionSAT derives the modular state graph Σ_o for the input set,
// satisfies its CSC constraints with a small SAT formula (growing the
// state-signal count from the lower bound on UNSAT, the paper's
// Figure 4), and propagates the new assignments back to g through the
// cover relation (Figure 5). The graph g is extended in place.
//
// A module whose constraints cannot be satisfied within the signal cap
// returns an error matching synerr.ErrModuleUnsolvable (callers widen
// the input set and retry); budget exhaustion matches
// synerr.ErrBacktrackLimit and a canceled ctx synerr.ErrCanceled, both
// of which are surfaced unwrapped because widening cannot help them.
func PartitionSAT(ctx context.Context, g *sg.Graph, is InputSet, opt SATOptions) (*PartitionResult, error) {
	opt = opt.withDefaults()
	gw := withStateSigs(g, is.StateSigs)
	merged, ok := gw.Quotient(is.Silenced)
	if !ok {
		return nil, fmt.Errorf("core: inconsistent phase join for output %q's modular graph", g.Base[is.Output].Name)
	}
	res := &PartitionResult{
		MergedStates: merged.Graph.NumStates(),
		MergedEdges:  len(merged.Graph.Edges),
	}
	if mc := metrics.From(ctx); mc != nil {
		mc.Add(metrics.Modules, 1)
		mc.Add(metrics.SGStatesMerged, int64(res.MergedStates))
	}
	conf := sg.OutputConflictsWorkers(merged.Graph, merged.ImpliedOf(is.Output), opt.Workers)
	res.Ncsc, res.Lb = conf.N(), conf.LowerBound
	if conf.N() == 0 {
		return res, nil
	}

	// One warm chain serves every formula solved on this quotient: the
	// joint widening loop below and the incremental insertions after
	// it. Rebind drops clauses carried over from a structurally
	// different quotient (a previous widening attempt of this module).
	if opt.Chain == nil {
		opt.Chain = csc.NewWarmChain()
	}
	opt.Chain.Rebind(merged.Graph)
	if opt.Incr == nil && !opt.NoIncremental {
		opt.Incr = csc.NewChainSolver()
	}

	propagate := func(col []sg.Phase) {
		phases := make([]sg.Phase, len(g.States))
		for s := range g.States {
			phases[s] = col[merged.Cover[s]]
		}
		g.StateSigs = append(g.StateSigs, sg.StateSignal{
			Name:   fmt.Sprintf("%s%d", opt.NamePrefix, len(g.StateSigs)),
			Phases: phases,
		})
	}

	// Joint insertion at the lower bound and one above (Figure 4), then
	// greedy incremental insertion for the cascaded cases a joint
	// formula cannot reach.
	m := conf.LowerBound
	if m < 1 {
		m = 1
	}
	jointCap := m + 1
	if jointCap > opt.MaxSignals {
		jointCap = opt.MaxSignals
	}
	for ; m <= jointCap; m++ {
		cols, stats, err := csc.Attempt(ctx, merged.Graph, conf, m, opt.solveOptions())
		if err != nil {
			return res, err
		}
		res.Formulas = append(res.Formulas, stats)
		switch stats.Status {
		case sat.Sat:
			for _, col := range cols {
				propagate(col)
			}
			res.NewSignals = m
			return res, nil
		case sat.BacktrackLimit:
			return res, fmt.Errorf("core: modular graph for %q, joint %d-signal formula: %w",
				g.Base[is.Output].Name, m, synerr.ErrBacktrackLimit)
		}
	}
	implied := merged.ImpliedOf(is.Output)
	before := len(merged.Graph.StateSigs)
	inserted, stats, err := csc.InsertIncremental(ctx, merged.Graph,
		func() *sg.Conflicts { return sg.OutputConflictsWorkers(merged.Graph, implied, opt.Workers) },
		opt.solveOptions(), opt.MaxSignals)
	res.Formulas = append(res.Formulas, stats...)
	if err != nil {
		if errors.Is(err, synerr.ErrBacktrackLimit) || errors.Is(err, synerr.ErrCanceled) {
			return res, err
		}
		return res, fmt.Errorf("core: no modular solution for %q: %w: %w",
			g.Base[is.Output].Name, synerr.ErrModuleUnsolvable, err)
	}
	for k := before; k < len(merged.Graph.StateSigs); k++ {
		propagate(merged.Graph.StateSigs[k].Phases)
	}
	res.NewSignals = inserted
	return res, nil
}
