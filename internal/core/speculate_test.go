package core

// Contract of speculative partition-parallel module solving (DESIGN.md
// §3.15): for any worker count and schedule, the module stage produces
// exactly the sequential loop's outputs — same OutputReport sequence,
// same inserted state-signal names, same supports and pass signals.

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
)

// moduleStageFingerprint flattens everything runModules produces.
func moduleStageFingerprint(full *sg.Graph, supports map[int]InputSet, passSigs map[int][]string, res *Result) string {
	s := fmt.Sprintf("inserted=%d\n", res.Inserted)
	for _, ss := range full.StateSigs {
		s += "sig " + ss.Name + "\n"
	}
	for _, r := range res.Outputs {
		s += fmt.Sprintf("out %s in=%v sigs=%v merged=%d/%d ncsc=%d lb=%d new=%d widened=%v formulas=%d\n",
			r.Output, r.InputSet, r.StateSigs, r.MergedStates, r.MergedEdges, r.Ncsc, r.Lb, r.NewSignals, r.Widened, len(r.Formulas))
	}
	keys := make([]int, 0, len(supports))
	for o := range supports {
		keys = append(keys, o)
	}
	sort.Ints(keys)
	for _, o := range keys {
		is := supports[o]
		s += fmt.Sprintf("support %d mask=%x silenced=%x kept=%v pass=%v\n", o, is.Mask, is.Silenced, is.StateSigs, passSigs[o])
	}
	return s
}

func runModuleStage(t testing.TB, name string, opt Options) string {
	t.Helper()
	spec, err := bench.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt = opt.withDefaults()
	res := &Result{Name: spec.Name}
	supports, passSigs, err := runModules(context.Background(), full, spec, opt, res)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return moduleStageFingerprint(full, supports, passSigs, res)
}

// TestRunModulesSpeculativeParity pins the speculative scheduler
// bit-identical to the sequential loop at the module-stage level, for
// worker counts around and above the output count.
func TestRunModulesSpeculativeParity(t *testing.T) {
	for _, name := range []string{"fifo", "sbuf-read-ctl", "nak-pa", "mmu1"} {
		t.Run(name, func(t *testing.T) {
			want := runModuleStage(t, name, Options{Workers: 1})
			for _, w := range []int{2, 4, 8} {
				if got := runModuleStage(t, name, Options{Workers: w}); got != want {
					t.Errorf("Workers=%d diverges from sequential:\n--- got ---\n%s--- want ---\n%s", w, got, want)
				}
				got := runModuleStage(t, name, Options{Workers: w, DisableSpeculation: true})
				if got != want {
					t.Errorf("Workers=%d DisableSpeculation diverges:\n--- got ---\n%s--- want ---\n%s", w, got, want)
				}
			}
		})
	}
}

// BenchmarkRunModules measures the module-solve stage — the dominant
// cost between the k=6 sweep and million-state graphs — speculative
// versus sequential. The graph build is inside the loop (runModules
// mutates the graph), so treat deltas, not absolutes, as the signal;
// the allocs/op of both variants are gated by cmd/allocheck.
func BenchmarkRunModules(b *testing.B) {
	spec, err := bench.Load("mmu1")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt Options) {
		opt = opt.withDefaults()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			full, err := sg.FromSTG(spec, sg.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res := &Result{Name: spec.Name}
			if _, _, err := runModules(context.Background(), full, spec, opt, res); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("speculative-w4", func(b *testing.B) { run(b, Options{Workers: 4}) })
	b.Run("sequential", func(b *testing.B) { run(b, Options{Workers: 4, DisableSpeculation: true}) })
}
