package core

import (
	"context"
	"testing"

	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

// twoPhase is a minimal STG with CSC violations: the cycle
// a+ → b+ → b− → a− → b+/2 → b−/2 → a+ revisits codes 00 and 10 with
// different enabled outputs, so at least one state signal is required.
const twoPhase = `
.model twophase
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func mustParse(t *testing.T, src string) *stg.G {
	t.Helper()
	g, err := stg.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

func TestSmokeTwoPhase(t *testing.T) {
	spec := mustParse(t, twoPhase)
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatalf("state graph: %v", err)
	}
	if got := full.NumStates(); got != 6 {
		t.Fatalf("states = %d, want 6", got)
	}
	conf := sg.Analyze(full)
	if conf.N() != 2 {
		t.Fatalf("initial conflicts = %d, want 2", conf.N())
	}

	res, err := Synthesize(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if res.Inserted < 1 {
		t.Fatalf("inserted %d state signals, want ≥1", res.Inserted)
	}
	if got := sg.AnalyzeStream(res.View, 1); got.N() != 0 {
		t.Fatalf("expanded graph still has %d conflicts", got.N())
	}
	if len(res.Functions) < 2 { // b plus at least one state signal
		t.Fatalf("got %d functions", len(res.Functions))
	}
	if res.Area <= 0 {
		t.Fatalf("area = %d", res.Area)
	}
	for _, f := range res.Functions {
		t.Logf("%s  (%d literals)", f, f.Literals())
	}
	t.Logf("initial %d states / %d signals → final %d states / %d signals, area %d",
		res.InitialStates, res.InitialSignals, res.FinalStates, res.FinalSignals, res.Area)
}
