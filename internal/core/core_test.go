package core

import (
	"context"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
)

func TestDetermineInputSetInvariants(t *testing.T) {
	for _, name := range []string{"fifo", "sbuf-read-ctl", "mmu1", "nak-pa"} {
		spec, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		full, err := sg.FromSTG(spec, sg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range nonInputsByName(full) {
			is := DetermineInputSet(full, spec, o)
			if is.Mask&(1<<o) == 0 {
				t.Errorf("%s/%s: output not in its own input set", name, full.Base[o].Name)
			}
			if is.Mask&is.Silenced != 0 {
				t.Errorf("%s/%s: mask and silenced overlap", name, full.Base[o].Name)
			}
			if is.Mask|is.Silenced != full.Active {
				t.Errorf("%s/%s: mask ∪ silenced ≠ active", name, full.Base[o].Name)
			}
			// Immediate inputs always kept.
			si, _ := spec.SignalIndex(full.Base[o].Name)
			for _, trig := range spec.ImmediateInputs(si) {
				gi, _ := full.SignalIndex(spec.Signals[trig].Name)
				if is.Silenced&(1<<gi) != 0 {
					t.Errorf("%s/%s: trigger %s silenced", name, full.Base[o].Name, spec.Signals[trig].Name)
				}
			}
			// The paper's guarantee: merging never increases the conflict
			// count beyond the unmerged graph.
			n0, _ := outputStats(full, nil, o)
			if is.Ncsc > n0 {
				t.Errorf("%s/%s: modular conflicts %d > full-graph %d", name, full.Base[o].Name, is.Ncsc, n0)
			}
		}
	}
}

func TestDetermineInputSetRemovesSignals(t *testing.T) {
	// In mmu1, each bank's t-signal is irrelevant to the other bank's
	// select output; the greedy pass must silence something for at least
	// one output.
	spec, err := bench.Load("mmu1")
	if err != nil {
		t.Fatal(err)
	}
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	removedAny := false
	for _, o := range nonInputsByName(full) {
		is := DetermineInputSet(full, spec, o)
		if is.Silenced != 0 {
			removedAny = true
		}
	}
	if !removedAny {
		t.Fatalf("input-set derivation silenced nothing on mmu1")
	}
}

func TestPartitionSATNoConflicts(t *testing.T) {
	spec := mustParse(t, `
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
`)
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := full.SignalIndex("a")
	is := DetermineInputSet(full, spec, o)
	pr, err := PartitionSAT(context.Background(), full, is, SATOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NewSignals != 0 || len(full.StateSigs) != 0 {
		t.Fatalf("clean output gained signals: %+v", pr)
	}
}

func TestPartitionSATInsertsAndPropagates(t *testing.T) {
	spec := mustParse(t, twoPhase)
	full, err := sg.FromSTG(spec, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := full.SignalIndex("b")
	is := DetermineInputSet(full, spec, o)
	pr, err := PartitionSAT(context.Background(), full, is, SATOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NewSignals < 1 {
		t.Fatalf("no signals inserted")
	}
	// Propagated phases must respect the edge relation on the FULL graph
	// (Figure 5's propagation through the cover relation).
	if bad := full.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("propagated phases inconsistent: %v", bad)
	}
	// The output's conflicts are gone on the full graph.
	n, _ := outputStats(full, nil, o)
	if n != 0 {
		t.Fatalf("%d output conflicts remain after partition_sat", n)
	}
}

// TestOracleSuite is the strongest end-to-end check: for every
// reconstructed benchmark, the synthesized next-state functions must
// agree with the implied values of every reachable state of the final
// expanded state graph. This is precisely the correctness condition for
// speed-independent implementation.
func TestOracleSuite(t *testing.T) {
	for _, name := range bench.Available() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			// The edge-consistency check below needs the expanded edge
			// structure, which only the materializing path builds; the
			// streaming path is pinned bit-identical to it by
			// TestStreamingMatchesLegacy.
			res, err := Synthesize(context.Background(), spec, Options{DisableStreaming: true})
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			ex := res.Expanded
			for _, fn := range res.Functions {
				sigIdx, ok := ex.SignalIndex(fn.Name)
				if !ok {
					t.Fatalf("function %q names no signal", fn.Name)
				}
				varIdx := make([]int, len(fn.Vars))
				for i, v := range fn.Vars {
					vi, ok := ex.SignalIndex(v)
					if !ok {
						t.Fatalf("support var %q missing", v)
					}
					varIdx[i] = vi
				}
				for s := range ex.States {
					var m uint64
					for i, vi := range varIdx {
						if ex.States[s].Code&(1<<vi) != 0 {
							m |= 1 << i
						}
					}
					want := ex.ImpliedValue(s, sigIdx) == 1
					if got := fn.Cover.Eval(m); got != want {
						t.Fatalf("%s: state %d code %b: function %v, implied %v",
							fn.Name, s, ex.States[s].Code, got, want)
					}
				}
			}
			// Every expanded state still has a consistent binary code
			// (one-signal edges only flip their own bit).
			for _, e := range ex.Edges {
				d := ex.States[e.From].Code ^ ex.States[e.To].Code
				if d == 0 || d&(d-1) != 0 {
					t.Fatalf("edge flips %b", d)
				}
				if e.Sig < 0 || d != 1<<e.Sig {
					t.Fatalf("edge of %d flips bit pattern %b", e.Sig, d)
				}
			}
		})
	}
}

// TestSynthesizeDeterministic: repeated runs produce identical circuits.
func TestSynthesizeDeterministic(t *testing.T) {
	spec, err := bench.Load("sbuf-read-ctl")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Synthesize(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		spec2, _ := bench.Load("sbuf-read-ctl")
		b, err := Synthesize(context.Background(), spec2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Area != b.Area || a.FinalStates != b.FinalStates || a.Inserted != b.Inserted {
			t.Fatalf("nondeterministic synthesis: %d/%d/%d vs %d/%d/%d",
				a.Area, a.FinalStates, a.Inserted, b.Area, b.FinalStates, b.Inserted)
		}
		for j := range a.Functions {
			if a.Functions[j].String() != b.Functions[j].String() {
				t.Fatalf("function %d differs between runs", j)
			}
		}
	}
}

func TestSynthesizeFullSupportAblation(t *testing.T) {
	spec, err := bench.Load("sbuf-read-ctl")
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Synthesize(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := bench.Load("sbuf-read-ctl")
	full, err := Synthesize(context.Background(), spec2, Options{FullSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	// The support restriction is one of the paper's area mechanisms; it
	// must never hurt here.
	if restricted.Area > full.Area {
		t.Errorf("restricted support area %d > full support %d", restricted.Area, full.Area)
	}
}
