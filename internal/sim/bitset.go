package sim

import (
	"sort"

	"asyncsyn/internal/logic"
	"asyncsyn/internal/petri"
	"asyncsyn/internal/stg"
)

// This file holds the bit-sliced exhaustive runner: a breadth-first
// exploration of the closed-loop product that evaluates the gate covers
// for 64 product configurations per step. Signal levels are packed one
// configuration per bit — column i holds the level of signal i across
// the 64 states of the current batch — so one cube evaluates with a
// handful of word ANDs instead of 64 separate cover walks. The Petri-net
// side (enabled sets, firing, markings) stays scalar per lane: markings
// are sparse objects the bit-slicing cannot help with.
//
// The runner reports the same Violation values as the scalar walker —
// both stop after fully processing the first offending configuration,
// and Run canonicalizes the order either way — it only visits the
// product in breadth-first waves instead of depth-first.

// bitLit is one compiled cover literal: a signal column and its phase.
type bitLit struct {
	idx int
	neg bool
}

// bitGate is a gate compiled against the runner's signal indexing.
type bitGate struct {
	name   string
	out    int       // column of the driven signal
	inSpec bool      // specification knows this signal
	dead   bool      // a support input is unknown: gate never fires
	cubes  [][]bitLit
}

// evalWord computes the gate value for all lanes at once: each cube is
// the AND of its literal columns, the cover is the OR of its cubes.
func (bg *bitGate) evalWord(cols []uint64) uint64 {
	if bg.dead {
		return 0
	}
	var val uint64
	for _, cube := range bg.cubes {
		conj := ^uint64(0)
		for _, l := range cube {
			w := cols[l.idx]
			if l.neg {
				w = ^w
			}
			if conj &= w; conj == 0 {
				break
			}
		}
		val |= conj
	}
	return val
}

// compileGates lowers the circuit's covers into column programs, sorted
// by name so firing order matches the scalar walker's pendingOutputs.
func (r *runner) compileGates() []bitGate {
	gates := make([]bitGate, 0, len(r.circuit.Gates))
	for i := range r.circuit.Gates {
		g := &r.circuit.Gates[i]
		bg := bitGate{name: g.Name, out: r.sigIdx[g.Name]}
		_, bg.inSpec = r.spec.SignalIndex(g.Name)
		for _, in := range g.Inputs {
			if _, ok := r.sigIdx[in]; !ok {
				bg.dead = true // scalar eval is false on unknown support
			}
		}
		if !bg.dead {
			for _, c := range g.Cover {
				var lits []bitLit
				empty := false
				for v := 0; v < c.N() && v < len(g.Inputs); v++ {
					switch c.Var(v) {
					case logic.VTrue:
						lits = append(lits, bitLit{r.sigIdx[g.Inputs[v]], false})
					case logic.VFalse:
						lits = append(lits, bitLit{r.sigIdx[g.Inputs[v]], true})
					case logic.VEmpty:
						empty = true // covers no minterm: drop the cube
					}
				}
				if !empty {
					bg.cubes = append(bg.cubes, lits)
				}
			}
		}
		gates = append(gates, bg)
	}
	sort.Slice(gates, func(i, j int) bool { return gates[i].name < gates[j].name })
	return gates
}

// bstate is one discovered product state. Predecessor links reconstruct
// violation traces without storing a trace per state.
type bstate struct {
	levels  uint64
	marking petri.Marking
	parent  int32
	move    string
}

// bitExhaustive explores the product breadth-first, 64 states per batch.
// Requires len(r.levels) <= 64 (Run falls back to the scalar walker
// otherwise).
func (r *runner) bitExhaustive(opt Options) []Violation {
	gates := r.compileGates()
	nsig := len(r.levels)
	var init uint64
	for i, lv := range r.levels {
		if lv {
			init |= 1 << i
		}
	}

	type skey struct {
		marking string
		levels  uint64
	}
	states := []bstate{{levels: init, marking: r.marking.Clone(), parent: -1}}
	seen := map[skey]bool{{r.marking.Key(), init}: true}

	// traceOf rebuilds the (bounded) move sequence leading to state s —
	// the same suffix the scalar walker would have accumulated.
	traceOf := func(s int32) []string {
		var rev []string
		for cur := s; cur >= 0 && states[cur].parent >= 0 && len(rev) < 25; cur = states[cur].parent {
			rev = append(rev, states[cur].move)
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	var violations []Violation
	report := func(kind, sig string, s int32) {
		if len(violations) < 10 {
			violations = append(violations, Violation{Kind: kind, Signal: sig, Trace: traceOf(s)})
		}
	}

	cols := make([]uint64, nsig)
	excited := make([]uint64, len(gates))
	processed := 0
	for head := 0; head < len(states) && processed < opt.MaxDepth && len(violations) == 0; {
		b := len(states) - head
		if b > 64 {
			b = 64
		}
		if left := opt.MaxDepth - processed; b > left {
			b = left
		}
		// Transpose the batch's level words into per-signal lane columns.
		for i := range cols {
			cols[i] = 0
		}
		for j := 0; j < b; j++ {
			lv := states[head+j].levels
			for i := 0; i < nsig; i++ {
				cols[i] |= ((lv >> i) & 1) << j
			}
		}
		laneMask := ^uint64(0)
		if b < 64 {
			laneMask = 1<<b - 1
		}
		// Vectorized part: which lanes excite each gate.
		for gi := range gates {
			excited[gi] = (gates[gi].evalWord(cols) ^ cols[gates[gi].out]) & laneMask
		}
		// Scalar part: token game and successor generation per lane.
		for j := 0; j < b && len(violations) == 0; j++ {
			s := int32(head + j)
			moves := 0
			enab := r.spec.Net.EnabledSet(states[s].marking)
			for gi := range gates {
				bg := &gates[gi]
				if excited[gi]&(1<<j) == 0 {
					continue
				}
				var tid petri.TransID
				if bg.inSpec {
					ok := false
					for _, t := range enab {
						l := r.spec.Labels[t]
						if !l.IsDummy() && r.spec.Signals[l.Sig].Name == bg.name {
							tid, ok = t, true
							break
						}
					}
					if !ok {
						report("unexpected-output", bg.name, s)
						continue
					}
				}
				moves++
				nl := states[s].levels ^ (1 << bg.out)
				nm := states[s].marking
				if bg.inSpec {
					nm = r.spec.Net.Fire(states[s].marking, tid)
				}
				if k := (skey{nm.Key(), nl}); !seen[k] {
					seen[k] = true
					states = append(states, bstate{nl, nm, s, bg.name + "*"})
				}
			}
			for _, t := range enab {
				l := r.spec.Labels[t]
				if l.IsDummy() || r.spec.Signals[l.Sig].Kind != stg.Input {
					continue
				}
				moves++
				name := r.spec.Signals[l.Sig].Name
				nl := states[s].levels ^ (1 << uint(r.sigIdx[name]))
				nm := r.spec.Net.Fire(states[s].marking, t)
				if k := (skey{nm.Key(), nl}); !seen[k] {
					seen[k] = true
					states = append(states, bstate{nl, nm, s, name + "*"})
				}
			}
			if moves == 0 {
				report("deadlock", "", s)
			}
			processed++
		}
		head += b
	}
	return violations
}
