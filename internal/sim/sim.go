// Package sim provides closed-loop simulation of a synthesized circuit
// against its STG specification: the environment plays the token game on
// the STG's input transitions while the synthesized next-state functions
// drive the non-input signals, firing any output whose function value
// disagrees with its current level. The checker verifies that every
// output transition the circuit produces is one the specification
// enables, and that every enabled output is eventually produced —
// conformance in both directions, under every interleaving up to a
// bounded depth (exhaustive) or along random trajectories (Monte Carlo).
// Exhaustive exploration is bit-sliced: 64 product configurations
// advance per step, with gate covers evaluated as word-wide AND/OR over
// per-signal lane columns (see bitset.go); Options.Scalar reverts to
// the one-configuration-at-a-time depth-first walker.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"asyncsyn/internal/logic"
	"asyncsyn/internal/petri"
	"asyncsyn/internal/stg"
)

// Gate is one driven signal: a cover over named support inputs.
type Gate struct {
	Name   string
	Inputs []string
	Cover  logic.Cover
}

// Circuit is the gate-level view under test.
type Circuit struct {
	Gates []Gate
}

// Violation describes a conformance failure.
type Violation struct {
	Kind   string // "unexpected-output" or "deadlock"
	Signal string
	Trace  []string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s on %q after [%s]", v.Kind, v.Signal, strings.Join(v.Trace, " "))
}

// state is a point of the closed-loop product: the specification marking
// plus the circuit's signal levels.
type state struct {
	marking string
	levels  string
}

type runner struct {
	spec    *stg.G
	circuit *Circuit
	sigIdx  map[string]int
	gateOf  map[string]*Gate

	levels  []bool // current signal levels, indexed like spec.Signals
	marking petri.Marking
}

func newRunner(spec *stg.G, c *Circuit) (*runner, error) {
	r := &runner{
		spec:    spec,
		circuit: c,
		sigIdx:  make(map[string]int),
		gateOf:  make(map[string]*Gate),
	}
	for i, s := range spec.Signals {
		r.sigIdx[s.Name] = i
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if _, ok := r.sigIdx[g.Name]; !ok {
			// State signals invented during synthesis: register them.
			r.sigIdx[g.Name] = -1 // patched below
		}
		r.gateOf[g.Name] = g
	}
	// Re-index with state signals appended after the specification's.
	names := make([]string, 0, len(r.sigIdx))
	for _, s := range spec.Signals {
		names = append(names, s.Name)
	}
	var extra []string
	for i := range c.Gates {
		if _, ok := indexOf(spec, c.Gates[i].Name); !ok {
			extra = append(extra, c.Gates[i].Name)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)
	r.sigIdx = make(map[string]int, len(names))
	for i, n := range names {
		r.sigIdx[n] = i
	}
	r.levels = make([]bool, len(names))
	return r, nil
}

func indexOf(spec *stg.G, name string) (int, bool) { return spec.SignalIndex(name) }

// eval computes the gate output for the current levels.
func (r *runner) eval(g *Gate) bool {
	var m uint64
	for i, in := range g.Inputs {
		idx, ok := r.sigIdx[in]
		if !ok {
			return false
		}
		if r.levels[idx] {
			m |= 1 << i
		}
	}
	return r.Covers(g, m)
}

// Covers is exposed for tests.
func (r *runner) Covers(g *Gate, m uint64) bool { return g.Cover.Eval(m) }

// pendingOutputs lists non-input signals whose gate value differs from
// the current level (excited gates).
func (r *runner) pendingOutputs() []string {
	var out []string
	for i := range r.circuit.Gates {
		g := &r.circuit.Gates[i]
		if r.eval(g) != r.levels[r.sigIdx[g.Name]] {
			out = append(out, g.Name)
		}
	}
	sort.Strings(out)
	return out
}

// enabledSpecInputs lists input transitions enabled in the current
// marking.
func (r *runner) enabledSpecInputs() []petri.TransID {
	var out []petri.TransID
	for _, t := range r.spec.Net.EnabledSet(r.marking) {
		l := r.spec.Labels[t]
		if !l.IsDummy() && r.spec.Signals[l.Sig].Kind == stg.Input {
			out = append(out, t)
		}
	}
	return out
}

// specEnables reports whether the specification currently enables a
// transition of non-input signal name (in the marking).
func (r *runner) specTransition(name string) (petri.TransID, bool) {
	for _, t := range r.spec.Net.EnabledSet(r.marking) {
		l := r.spec.Labels[t]
		if !l.IsDummy() && r.spec.Signals[l.Sig].Name == name {
			return t, true
		}
	}
	return 0, false
}

func (r *runner) key() state {
	var b strings.Builder
	for _, lv := range r.levels {
		if lv {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return state{marking: r.marking.Key(), levels: b.String()}
}

func (r *runner) snapshot() ([]bool, petri.Marking) {
	return append([]bool(nil), r.levels...), r.marking.Clone()
}

func (r *runner) restore(levels []bool, m petri.Marking) {
	copy(r.levels, levels)
	r.marking = m
}

// initLevels derives the initial signal levels from the specification
// (first transition direction determines the starting value) and zeroes
// the state signals (their excitation regions are entered later).
func (r *runner) initLevels(initial map[string]bool) {
	for name, v := range initial {
		if idx, ok := r.sigIdx[name]; ok {
			r.levels[idx] = v
		}
	}
}

// Options configures a simulation run.
type Options struct {
	// MaxDepth bounds the exhaustive exploration (default 20,000 product
	// states).
	MaxDepth int
	// RandomWalks runs Monte-Carlo trajectories instead of exhaustive
	// search when positive; each walk takes RandomSteps steps. Walks are
	// deterministic in Seed: the same seed replays the same trajectories
	// and therefore the same violations (TestSeededWalksDeterministic).
	RandomWalks int
	RandomSteps int
	Seed        int64
	// Scalar reverts exhaustive exploration to the depth-first scalar
	// walker (one product configuration at a time) instead of the
	// 64-lane bit-sliced breadth-first runner. Verdicts agree either way
	// (pinned by TestBitsetMatchesScalar); this exists for measurement
	// and as the fallback when the product has more than 64 signals.
	Scalar bool
}

// Run exhaustively explores the closed-loop product of specification and
// circuit from the initial state, checking conformance. initialLevels
// gives the starting level of every signal (from the synthesized state
// graph's initial code).
func Run(spec *stg.G, c *Circuit, initialLevels map[string]bool, opt Options) []Violation {
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 20000
	}
	r, err := newRunner(spec, c)
	if err != nil {
		return []Violation{{Kind: "setup", Signal: err.Error()}}
	}
	r.marking = spec.Net.Initial.Clone()
	r.initLevels(initialLevels)

	if opt.RandomWalks > 0 {
		return canonicalize(r.randomWalks(opt))
	}
	if opt.Scalar || len(r.levels) > 64 {
		return canonicalize(r.exhaustive(opt))
	}
	return canonicalize(r.bitExhaustive(opt))
}

// canonicalize orders violations deterministically (kind, then signal,
// then trace) so the reported set does not depend on exploration order.
func canonicalize(v []Violation) []Violation {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Kind != v[j].Kind {
			return v[i].Kind < v[j].Kind
		}
		if v[i].Signal != v[j].Signal {
			return v[i].Signal < v[j].Signal
		}
		return strings.Join(v[i].Trace, " ") < strings.Join(v[j].Trace, " ")
	})
	return v
}

func (r *runner) exhaustive(opt Options) []Violation {
	var violations []Violation
	seen := map[state]bool{}
	type frame struct {
		levels  []bool
		marking petri.Marking
		trace   []string
	}
	stack := []frame{{}}
	stack[0].levels, stack[0].marking = r.snapshot()

	report := func(kind, sig string, trace []string) {
		if len(violations) < 10 {
			violations = append(violations, Violation{Kind: kind, Signal: sig, Trace: trace})
		}
	}

	for len(stack) > 0 && len(seen) < opt.MaxDepth && len(violations) == 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r.restore(f.levels, f.marking)
		k := r.key()
		if seen[k] {
			continue
		}
		seen[k] = true

		moves := 0
		// Circuit moves: every excited gate may fire. Gates of signals
		// the specification knows must be enabled by it; gates of
		// inserted state signals fire freely (they are internal to the
		// implementation and invisible to the specification).
		for _, name := range r.pendingOutputs() {
			_, inSpec := r.spec.SignalIndex(name)
			var tid petri.TransID
			if inSpec {
				var ok bool
				tid, ok = r.specTransition(name)
				if !ok {
					report("unexpected-output", name, f.trace)
					continue
				}
			}
			moves++
			lv, mk := r.snapshot()
			r.levels[r.sigIdx[name]] = !r.levels[r.sigIdx[name]]
			if inSpec {
				r.marking = r.spec.Net.Fire(r.marking, tid)
			}
			nl, nm := r.snapshot()
			stack = append(stack, frame{nl, nm, appendTrace(f.trace, name+"*")})
			r.restore(lv, mk)
		}
		// Environment moves: any enabled input transition may fire.
		for _, tid := range r.enabledSpecInputs() {
			moves++
			l := r.spec.Labels[tid]
			name := r.spec.Signals[l.Sig].Name
			lv, mk := r.snapshot()
			r.levels[r.sigIdx[name]] = !r.levels[r.sigIdx[name]]
			r.marking = r.spec.Net.Fire(r.marking, tid)
			nl, nm := r.snapshot()
			stack = append(stack, frame{nl, nm, appendTrace(f.trace, name+"*")})
			r.restore(lv, mk)
		}
		if moves == 0 {
			report("deadlock", "", f.trace)
		}
	}
	return violations
}

func (r *runner) randomWalks(opt Options) []Violation {
	if opt.RandomSteps == 0 {
		opt.RandomSteps = 200
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	startLevels, startMarking := r.snapshot()
	var violations []Violation
	for w := 0; w < opt.RandomWalks && len(violations) == 0; w++ {
		r.restore(append([]bool(nil), startLevels...), startMarking.Clone())
		var trace []string
		for s := 0; s < opt.RandomSteps; s++ {
			type move struct {
				name string
				tid  petri.TransID
				out  bool
			}
			var moves []move
			for _, name := range r.pendingOutputs() {
				_, inSpec := r.spec.SignalIndex(name)
				var tid petri.TransID
				if inSpec {
					var ok bool
					tid, ok = r.specTransition(name)
					if !ok {
						violations = append(violations, Violation{Kind: "unexpected-output", Signal: name, Trace: trace})
						return violations
					}
				}
				moves = append(moves, move{name, tid, inSpec})
			}
			for _, tid := range r.enabledSpecInputs() {
				l := r.spec.Labels[tid]
				moves = append(moves, move{r.spec.Signals[l.Sig].Name, tid, true})
			}
			if len(moves) == 0 {
				violations = append(violations, Violation{Kind: "deadlock", Trace: trace})
				return violations
			}
			mv := moves[rng.Intn(len(moves))]
			r.levels[r.sigIdx[mv.name]] = !r.levels[r.sigIdx[mv.name]]
			if mv.out {
				r.marking = r.spec.Net.Fire(r.marking, mv.tid)
			}
			trace = appendTrace(trace, mv.name+"*")
		}
	}
	return violations
}

func appendTrace(t []string, s string) []string {
	out := make([]string, 0, len(t)+1)
	out = append(out, t...)
	if len(out) > 24 {
		out = out[len(out)-24:]
	}
	return append(out, s)
}
