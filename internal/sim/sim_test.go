package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/core"
	"asyncsyn/internal/logic"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/stg"
)

const handshake = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

// buffer gate: ack = req.
func bufferGate(name, input string, inverted bool) Gate {
	c := logic.NewCube(1)
	if inverted {
		c.SetVar(0, logic.VFalse)
	} else {
		c.SetVar(0, logic.VTrue)
	}
	return Gate{Name: name, Inputs: []string{input}, Cover: logic.Cover{c}}
}

func TestCorrectBufferConforms(t *testing.T) {
	spec, err := stg.ParseString(handshake)
	if err != nil {
		t.Fatal(err)
	}
	c := &Circuit{Gates: []Gate{bufferGate("ack", "req", false)}}
	v := Run(spec, c, map[string]bool{"req": false, "ack": false}, Options{})
	if len(v) != 0 {
		t.Fatalf("correct circuit flagged: %v", v)
	}
}

func TestInvertedBufferViolates(t *testing.T) {
	spec, err := stg.ParseString(handshake)
	if err != nil {
		t.Fatal(err)
	}
	// ack = req': immediately excited at reset, fires ack+ the
	// specification does not enable.
	c := &Circuit{Gates: []Gate{bufferGate("ack", "req", true)}}
	v := Run(spec, c, map[string]bool{"req": false, "ack": false}, Options{})
	if len(v) == 0 {
		t.Fatalf("inverted circuit not flagged")
	}
	if v[0].Kind != "unexpected-output" || v[0].Signal != "ack" {
		t.Fatalf("violation = %v", v[0])
	}
	if v[0].String() == "" {
		t.Fatalf("empty violation description")
	}
}

func TestRandomWalkAgreesWithExhaustive(t *testing.T) {
	spec, _ := stg.ParseString(handshake)
	good := &Circuit{Gates: []Gate{bufferGate("ack", "req", false)}}
	if v := Run(spec, good, map[string]bool{}, Options{RandomWalks: 20, RandomSteps: 100, Seed: 5}); len(v) != 0 {
		t.Fatalf("random walk flagged a correct circuit: %v", v)
	}
	bad := &Circuit{Gates: []Gate{bufferGate("ack", "req", true)}}
	if v := Run(spec, bad, map[string]bool{}, Options{RandomWalks: 5, RandomSteps: 50, Seed: 5}); len(v) == 0 {
		t.Fatalf("random walk missed the broken circuit")
	}
}

// TestBitsetMatchesScalar pins the bit-sliced breadth-first runner to
// the scalar depth-first walker: on conforming circuits both return
// nothing, and on broken circuits both report the same canonical
// violation at the same product state.
func TestBitsetMatchesScalar(t *testing.T) {
	spec, err := stg.ParseString(handshake)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		circuit *Circuit
	}{
		{"conforming", &Circuit{Gates: []Gate{bufferGate("ack", "req", false)}}},
		{"inverted", &Circuit{Gates: []Gate{bufferGate("ack", "req", true)}}},
		// Empty cover: ack never fires, the loop deadlocks after req+.
		{"stuck", &Circuit{Gates: []Gate{{Name: "ack", Inputs: []string{"req"}, Cover: logic.Cover{}}}}},
	}
	levels := map[string]bool{"req": false, "ack": false}
	for _, tc := range cases {
		bit := Run(spec, tc.circuit, levels, Options{})
		sca := Run(spec, tc.circuit, levels, Options{Scalar: true})
		if !reflect.DeepEqual(bit, sca) {
			t.Errorf("%s: bitset %v != scalar %v", tc.name, bit, sca)
		}
	}
}

// TestBitsetMatchesScalarSynthesized runs both exhaustive runners over
// synthesized benchmark circuits (state signals included) and requires
// identical verdicts.
func TestBitsetMatchesScalarSynthesized(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "wrdata", "nousc-ser", "sbuf-read-ctl"} {
		spec, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(context.Background(), spec, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, levels := circuitOf(res)
		bit := Run(spec, c, levels, Options{MaxDepth: 50000})
		sca := Run(spec, c, levels, Options{MaxDepth: 50000, Scalar: true})
		if !reflect.DeepEqual(bit, sca) {
			t.Errorf("%s: bitset %v != scalar %v", name, bit, sca)
		}
	}
}

// TestSeededWalksDeterministic pins the Monte-Carlo runner's
// determinism: the same seed replays the same trajectories and
// therefore the same violations.
func TestSeededWalksDeterministic(t *testing.T) {
	spec, _ := stg.ParseString(handshake)
	bad := &Circuit{Gates: []Gate{bufferGate("ack", "req", true)}}
	opt := Options{RandomWalks: 10, RandomSteps: 60, Seed: 42}
	first := Run(spec, bad, map[string]bool{}, opt)
	if len(first) == 0 {
		t.Fatal("seeded walk missed the broken circuit")
	}
	for i := 0; i < 3; i++ {
		if again := Run(spec, bad, map[string]bool{}, opt); !reflect.DeepEqual(first, again) {
			t.Fatalf("seed %d run %d: %v != %v", opt.Seed, i, again, first)
		}
	}
	good := &Circuit{Gates: []Gate{bufferGate("ack", "req", false)}}
	for _, seed := range []int64{0, 1, 99} {
		if v := Run(spec, good, map[string]bool{}, Options{RandomWalks: 10, RandomSteps: 60, Seed: seed}); len(v) != 0 {
			t.Fatalf("seed %d flagged a correct circuit: %v", seed, v)
		}
	}
}

// circuitOf adapts a synthesis result for simulation.
func circuitOf(res *core.Result) (*Circuit, map[string]bool) {
	c := &Circuit{}
	for _, f := range res.Functions {
		c.Gates = append(c.Gates, Gate{Name: f.Name, Inputs: f.Vars, Cover: f.Cover})
	}
	levels := map[string]bool{}
	init := res.View.InitialCode()
	for i, b := range res.View.Base {
		levels[b.Name] = init&(1<<i) != 0
	}
	return c, levels
}

// TestConformanceSuite closed-loop-simulates the synthesized circuit of
// a representative set of benchmarks against its own specification: the
// circuit may never produce an output the STG does not enable, and the
// closed loop may never deadlock.
func TestConformanceSuite(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "vbe-ex2", "wrdata", "fifo", "sendr-done",
		"nousc-ser", "nouse", "atod", "sbuf-read-ctl", "sbuf-send-ctl", "pa", "alloc-outbound"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(context.Background(), spec, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			c, levels := circuitOf(res)
			if v := Run(spec, c, levels, Options{MaxDepth: 50000}); len(v) != 0 {
				t.Fatalf("conformance violations: %v", v)
			}
		})
	}
}

// benchCircuit synthesizes a mid-size benchmark once for the simulator
// benchmarks.
func benchCircuit(b *testing.B) (*stg.G, *Circuit, map[string]bool) {
	b.Helper()
	spec, err := bench.Load("sbuf-read-ctl")
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(context.Background(), spec, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c, levels := circuitOf(res)
	return spec, c, levels
}

// BenchmarkSimBitset measures the 64-lane exhaustive runner on a
// synthesized circuit. It reports the sampled peak heap (peak-B) for
// the cmd/allocheck heap gate alongside allocs/op.
func BenchmarkSimBitset(b *testing.B) {
	spec, c, levels := benchCircuit(b)
	b.ReportAllocs()
	watch := metrics.WatchHeap(2 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := Run(spec, c, levels, Options{MaxDepth: 50000}); len(v) != 0 {
			b.Fatalf("violations: %v", v)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(watch.Stop()), "peak-B")
}

// BenchmarkSimScalar is the depth-first scalar walker on the same
// product, for the speedup comparison.
func BenchmarkSimScalar(b *testing.B) {
	spec, c, levels := benchCircuit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := Run(spec, c, levels, Options{MaxDepth: 50000, Scalar: true}); len(v) != 0 {
			b.Fatalf("violations: %v", v)
		}
	}
}

// TestConformanceRandomBig samples trajectories on the big benchmarks
// where exhaustive product exploration is too large.
func TestConformanceRandomBig(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"mmu1", "nak-pa", "sbuf-ram-write", "mmu0", "mr1", "mr0",
		"vbe4a", "pe-rcv-ifc-fc", "ram-read-sbuf", "alex-nonfc", "sbuf-send-pkt2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := bench.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(context.Background(), spec, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			c, levels := circuitOf(res)
			if v := Run(spec, c, levels, Options{RandomWalks: 30, RandomSteps: 400, Seed: 7}); len(v) != 0 {
				t.Fatalf("conformance violations: %v", v)
			}
		})
	}
}
