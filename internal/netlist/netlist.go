// Package netlist maps synthesized two-level covers onto a structural
// gate network — one INV per complemented input, one AND per cube, one
// OR per function — and renders it as a structural Verilog module. The
// two-level network is exactly what the paper's area metric (literals of
// the unfactored cover) prices: each literal is one gate input.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"asyncsyn/internal/logic"
)

// Function is one driven signal with its cover (mirrors core.Function
// without importing it, keeping the package reusable).
type Function struct {
	Name   string
	Inputs []string
	Cover  logic.Cover
}

// Gate is one network node.
type Gate struct {
	Op     string // "INV", "AND", "OR", "BUF", "ZERO"
	Out    string
	Inputs []string
}

// Netlist is a flattened gate network.
type Netlist struct {
	Module   string
	Inputs   []string // primary inputs (signals no function drives)
	Outputs  []string // driven signals
	Gates    []Gate
	Literals int // AND-plane literal count — the paper's area metric
}

// Build flattens the functions of a circuit into a two-level gate
// network. Feedback (a function using its own or another function's
// output) is preserved by name: driven signals appear both as outputs
// and as gate inputs, exactly as a speed-independent circuit closes its
// loops.
func Build(module string, fns []Function) *Netlist {
	n := &Netlist{Module: module}
	driven := make(map[string]bool)
	for _, f := range fns {
		driven[f.Name] = true
	}
	inputSet := make(map[string]bool)
	inverted := make(map[string]string)

	needInv := func(sig string) string {
		if w, ok := inverted[sig]; ok {
			return w
		}
		w := sig + "_n"
		inverted[sig] = w
		n.Gates = append(n.Gates, Gate{Op: "INV", Out: w, Inputs: []string{sig}})
		return w
	}

	for _, f := range fns {
		n.Outputs = append(n.Outputs, f.Name)
		for _, in := range f.Inputs {
			if !driven[in] {
				inputSet[in] = true
			}
		}
		var orIns []string
		for ci, cube := range f.Cover {
			var andIns []string
			for v := 0; v < cube.N(); v++ {
				switch cube.Var(v) {
				case logic.VTrue:
					andIns = append(andIns, f.Inputs[v])
				case logic.VFalse:
					andIns = append(andIns, needInv(f.Inputs[v]))
				}
			}
			switch len(andIns) {
			case 0:
				// Universal cube: constant 1 — the function is a tautology
				// over its support; model as a BUF of constant one via OR
				// absorbing everything (handled below by empty OR list).
				orIns = append(orIns, "1'b1")
			case 1:
				orIns = append(orIns, andIns[0])
				n.Literals++
			default:
				w := fmt.Sprintf("%s_and%d", f.Name, ci)
				n.Gates = append(n.Gates, Gate{Op: "AND", Out: w, Inputs: andIns})
				n.Literals += len(andIns)
				orIns = append(orIns, w)
			}
		}
		switch len(orIns) {
		case 0:
			n.Gates = append(n.Gates, Gate{Op: "ZERO", Out: f.Name})
		case 1:
			n.Gates = append(n.Gates, Gate{Op: "BUF", Out: f.Name, Inputs: orIns})
		default:
			n.Gates = append(n.Gates, Gate{Op: "OR", Out: f.Name, Inputs: orIns})
		}
	}
	for in := range inputSet {
		n.Inputs = append(n.Inputs, in)
	}
	sort.Strings(n.Inputs)
	sort.Strings(n.Outputs)
	return n
}

// Verilog renders the netlist as a structural Verilog module using
// continuous assignments. Feedback loops are legal in structural
// Verilog; the module models the speed-independent network directly.
func (n *Netlist) Verilog() string {
	var b strings.Builder
	ports := append(append([]string{}, n.Inputs...), n.Outputs...)
	fmt.Fprintf(&b, "// two-level speed-independent network (%d literals)\n", n.Literals)
	fmt.Fprintf(&b, "module %s(%s);\n", sanitize(n.Module), strings.Join(ports, ", "))
	for _, in := range n.Inputs {
		fmt.Fprintf(&b, "  input  %s;\n", in)
	}
	for _, out := range n.Outputs {
		fmt.Fprintf(&b, "  output %s;\n", out)
	}
	var wires []string
	outSet := make(map[string]bool)
	for _, o := range n.Outputs {
		outSet[o] = true
	}
	for _, g := range n.Gates {
		if !outSet[g.Out] {
			wires = append(wires, g.Out)
		}
	}
	sort.Strings(wires)
	for _, w := range wires {
		fmt.Fprintf(&b, "  wire   %s;\n", w)
	}
	b.WriteString("\n")
	for _, g := range n.Gates {
		switch g.Op {
		case "INV":
			fmt.Fprintf(&b, "  assign %s = ~%s;\n", g.Out, g.Inputs[0])
		case "AND":
			fmt.Fprintf(&b, "  assign %s = %s;\n", g.Out, strings.Join(g.Inputs, " & "))
		case "OR":
			fmt.Fprintf(&b, "  assign %s = %s;\n", g.Out, strings.Join(g.Inputs, " | "))
		case "BUF":
			fmt.Fprintf(&b, "  assign %s = %s;\n", g.Out, g.Inputs[0])
		case "ZERO":
			fmt.Fprintf(&b, "  assign %s = 1'b0;\n", g.Out)
		}
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// sanitize maps model names to legal Verilog identifiers.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return "m"
	}
	return string(out)
}

// Eval evaluates the combinational network for the given signal levels
// (feedback signals read their current levels), returning the value of
// every gate output. It mirrors what one gate-delay step of the circuit
// computes.
func (n *Netlist) Eval(levels map[string]bool) map[string]bool {
	out := make(map[string]bool, len(n.Gates))
	// Feedback semantics: primary signals (inputs and function outputs)
	// read their CURRENT levels; only intermediate wires read the values
	// computed this step.
	primary := make(map[string]bool)
	for _, in := range n.Inputs {
		primary[in] = true
	}
	for _, o := range n.Outputs {
		primary[o] = true
	}
	read := func(name string) bool {
		if name == "1'b1" {
			return true
		}
		if primary[name] {
			return levels[name]
		}
		return out[name]
	}
	// Gates were appended in dependency order per function (INV/AND
	// before OR), so one forward pass settles the two-level network.
	for _, g := range n.Gates {
		switch g.Op {
		case "INV":
			out[g.Out] = !read(g.Inputs[0])
		case "AND":
			v := true
			for _, in := range g.Inputs {
				v = v && read(in)
			}
			out[g.Out] = v
		case "OR":
			v := false
			for _, in := range g.Inputs {
				v = v || read(in)
			}
			out[g.Out] = v
		case "BUF":
			out[g.Out] = read(g.Inputs[0])
		case "ZERO":
			out[g.Out] = false
		}
	}
	return out
}
