package netlist

import (
	"context"
	"strings"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/core"
	"asyncsyn/internal/logic"
)

// xorFunction builds f = a'b + ab'.
func xorFunction() Function {
	c1 := logic.NewCube(2)
	c1.SetVar(0, logic.VFalse)
	c1.SetVar(1, logic.VTrue)
	c2 := logic.NewCube(2)
	c2.SetVar(0, logic.VTrue)
	c2.SetVar(1, logic.VFalse)
	return Function{Name: "f", Inputs: []string{"a", "b"}, Cover: logic.Cover{c1, c2}}
}

func TestBuildStructure(t *testing.T) {
	n := Build("xor", []Function{xorFunction()})
	if len(n.Inputs) != 2 || n.Inputs[0] != "a" || n.Inputs[1] != "b" {
		t.Fatalf("inputs = %v", n.Inputs)
	}
	if len(n.Outputs) != 1 || n.Outputs[0] != "f" {
		t.Fatalf("outputs = %v", n.Outputs)
	}
	// 2 INV + 2 AND + 1 OR.
	var inv, and, or int
	for _, g := range n.Gates {
		switch g.Op {
		case "INV":
			inv++
		case "AND":
			and++
		case "OR":
			or++
		}
	}
	if inv != 2 || and != 2 || or != 1 {
		t.Fatalf("gates: %d INV, %d AND, %d OR", inv, and, or)
	}
	// Literals = 4 AND-plane inputs (the paper's metric).
	if n.Literals != 4 {
		t.Fatalf("literals = %d", n.Literals)
	}
}

func TestEvalMatchesCover(t *testing.T) {
	f := xorFunction()
	n := Build("xor", []Function{f})
	for m := uint64(0); m < 4; m++ {
		levels := map[string]bool{"a": m&1 != 0, "b": m&2 != 0}
		got := n.Eval(levels)["f"]
		want := f.Cover.Eval(m)
		if got != want {
			t.Fatalf("minterm %b: netlist %v, cover %v", m, got, want)
		}
	}
}

func TestVerilogRendering(t *testing.T) {
	n := Build("x or!", []Function{xorFunction()})
	v := n.Verilog()
	for _, want := range []string{
		"module x_or_(", "input  a;", "input  b;", "output f;",
		"assign a_n = ~a;", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestDegenerateCovers(t *testing.T) {
	// Empty cover → constant 0; universal cube → constant 1 wire.
	empty := Function{Name: "z", Inputs: []string{"a"}, Cover: logic.Cover{}}
	uni := Function{Name: "u", Inputs: []string{"a"}, Cover: logic.Cover{logic.NewCube(1)}}
	n := Build("deg", []Function{empty, uni})
	out := n.Eval(map[string]bool{"a": true})
	if out["z"] || !out["u"] {
		t.Fatalf("degenerate eval: z=%v u=%v", out["z"], out["u"])
	}
	v := n.Verilog()
	if !strings.Contains(v, "1'b0") {
		t.Errorf("constant 0 missing:\n%s", v)
	}
}

// TestSynthesizedNetlist flattens a synthesized benchmark circuit and
// cross-checks every gate output against the covers on every reachable
// state code.
func TestSynthesizedNetlist(t *testing.T) {
	spec, err := bench.Load("sbuf-read-ctl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(context.Background(), spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fns []Function
	for _, f := range res.Functions {
		fns = append(fns, Function{Name: f.Name, Inputs: f.Vars, Cover: f.Cover})
	}
	n := Build(res.Name, fns)
	if n.Literals != res.Area {
		t.Errorf("netlist literals %d != area %d", n.Literals, res.Area)
	}
	ex := res.View
	for s := range ex.Codes {
		levels := map[string]bool{}
		for i, b := range ex.Base {
			levels[b.Name] = ex.Codes[s]&(1<<i) != 0
		}
		out := n.Eval(levels)
		for _, f := range res.Functions {
			sigIdx, _ := ex.SignalIndex(f.Name)
			want := ex.ImpliedValue(s, sigIdx) == 1
			if out[f.Name] != want {
				t.Fatalf("state %d: netlist %s = %v, implied %v", s, f.Name, out[f.Name], want)
			}
		}
	}
	// The Verilog must at least parse-ably mention every output.
	v := n.Verilog()
	for _, o := range n.Outputs {
		if !strings.Contains(v, "output "+o+";") {
			t.Errorf("output %s missing from Verilog", o)
		}
	}
}
