package dot

import (
	"strings"
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/sg"
)

func TestSTGDot(t *testing.T) {
	g, err := bench.Load("fifo")
	if err != nil {
		t.Fatal(err)
	}
	out := STG(g)
	for _, want := range []string{"digraph \"fifo\"", "shape=box", "->", "●"} {
		if !strings.Contains(out, want) {
			t.Errorf("STG dot missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Errorf("unterminated digraph")
	}
}

func TestGraphDot(t *testing.T) {
	g, err := bench.Load("vbe-ex1")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := sg.FromSTG(g, sg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Graph(graph)
	// vbe-ex1 has CSC conflicts: the highlight must appear.
	for _, want := range []string{"digraph", "lightcoral", "peripheries=2", "a+"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph dot missing %q:\n%s", want, out)
		}
	}
	// One node per state.
	if got := strings.Count(out, "  s"); got < graph.NumStates() {
		t.Errorf("only %d node/edge lines for %d states", got, graph.NumStates())
	}
	if Legend() == "" {
		t.Error("empty legend")
	}
}

func TestGraphDotWithPhases(t *testing.T) {
	g, _ := bench.Load("vbe-ex1")
	graph, _ := sg.FromSTG(g, sg.Options{})
	phases := make([]sg.Phase, graph.NumStates())
	graph.StateSigs = append(graph.StateSigs, sg.StateSignal{Name: "z", Phases: phases})
	out := Graph(graph)
	if !strings.Contains(out, "\\n0") {
		t.Errorf("phase annotation missing:\n%s", out)
	}
}
