// Package dot renders STGs and state graphs in the Graphviz DOT format
// for inspection of specifications, coding conflicts and modular
// decompositions.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

// STG renders the Petri net view: transitions as boxes, explicit places
// as circles (implicit single-arc places collapse to edges), tokens as
// filled places.
func STG(g *stg.G) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for t := range g.Net.Transitions {
		label := g.Net.Transitions[t].Label
		shape := "box"
		if g.Labels[t].IsDummy() {
			shape = "box, style=dashed"
		}
		fmt.Fprintf(&b, "  t%d [label=%q, shape=%s];\n", t, label, shape)
	}
	for p, pl := range g.Net.Places {
		implicitArc := pl.Implicit && len(pl.Pre) == 1 && len(pl.Post) == 1
		if implicitArc {
			marked := ""
			if len(g.Net.Initial) > p && g.Net.Initial[p] > 0 {
				marked = " [label=\"●\"]"
			}
			fmt.Fprintf(&b, "  t%d -> t%d%s;\n", pl.Pre[0], pl.Post[0], marked)
			continue
		}
		style := ""
		if len(g.Net.Initial) > p && g.Net.Initial[p] > 0 {
			style = ", style=filled, fillcolor=gray80"
		}
		fmt.Fprintf(&b, "  p%d [label=%q, shape=circle%s];\n", p, pl.Name, style)
		for _, t := range pl.Pre {
			fmt.Fprintf(&b, "  t%d -> p%d;\n", t, p)
		}
		for _, t := range pl.Post {
			fmt.Fprintf(&b, "  p%d -> t%d;\n", p, t)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Graph renders a state graph: nodes labelled with binary codes (and
// state-signal phases when present), edges with signal transitions.
// States involved in CSC conflicts are highlighted.
func Graph(g *sg.Graph) string {
	conflicted := make(map[int]bool)
	conf := sg.Analyze(g)
	for _, p := range conf.CSC {
		conflicted[p.A] = true
		conflicted[p.B] = true
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	b.WriteString("  node [fontname=\"Helvetica\", shape=ellipse];\n")
	nb := len(g.Base)
	for s := range g.States {
		var code []byte
		for i := nb - 1; i >= 0; i-- {
			if g.Active&(1<<i) == 0 {
				continue
			}
			if g.States[s].Code&(1<<i) != 0 {
				code = append(code, '1')
			} else {
				code = append(code, '0')
			}
		}
		label := string(code)
		if len(g.StateSigs) > 0 {
			var phases []string
			for _, ss := range g.StateSigs {
				phases = append(phases, ss.Phases[s].String())
			}
			label += "\\n" + strings.Join(phases, ",")
		}
		attrs := ""
		if conflicted[s] {
			attrs = ", style=filled, fillcolor=lightcoral"
		}
		if s == g.Initial {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  s%d [label=%q%s];\n", s, label, attrs)
	}
	for _, e := range g.Edges {
		name := "ε"
		if e.Sig >= 0 {
			name = g.Base[e.Sig].Name + e.Dir.String()
		}
		style := ""
		if e.Sig >= 0 && g.Base[e.Sig].Input {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q%s];\n", e.From, e.To, name, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Legend returns a short explanation of the notation used by Graph.
func Legend() string {
	lines := []string{
		"double ellipse: initial state",
		"red fill: state in a CSC conflict pair",
		"dashed edge: input (environment) transition",
		"node label: state code, msb first (active signals only)",
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
