package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/rundb"
	"asyncsyn/internal/synerr"
)

// RouterConfig tunes the cluster router. Shards is required; every
// other field has a default applied by NewRouter.
type RouterConfig struct {
	// Shards lists the shard daemon base URLs (e.g. "http://host:8713"
	// or bare "host:8713", which defaults to http).
	Shards []string
	// Replicas is the virtual-point count per shard on the hash ring
	// (default 128).
	Replicas int
	// ShardTimeout bounds one forwarded request attempt (default 5m —
	// synthesis is slow work; the per-job deadline inside the shard is
	// the real budget).
	ShardTimeout time.Duration
	// HealthTimeout bounds one /healthz probe of a shard (default 2s).
	HealthTimeout time.Duration
	// MaxBatch bounds the entries of one POST /v1/batch request
	// (default 256).
	MaxBatch int
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = 128
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 5 * time.Minute
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Router is the cluster front: a stateless HTTP proxy that
// consistent-hashes each synthesis request by its canonical problem
// signature onto the shard pool, fails over along the hash ring when
// a shard is down or draining, fans batch requests out shard-wise,
// and aggregates per-shard health and latency on /metrics. It holds
// no cache and runs no synthesis itself, so any number of routers can
// front one pool.
type Router struct {
	cfg    RouterConfig
	shards []string // normalized base URLs, index-aligned with the ring
	ring   *ring
	client *http.Client
	stats  *routerStats
}

// NewRouter builds a Router over the given shard pool.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	shards, err := normalizePeers(cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	return &Router{
		cfg:    cfg,
		shards: shards,
		ring:   newRing(shards, cfg.Replicas),
		client: cfg.Client,
		stats:  newRouterStats(len(shards)),
	}, nil
}

// routerRoutes mirrors shardRoutes for the router front; RouterRoutes
// and Handler both derive from it.
var routerRoutes = []struct {
	pattern string
	handler func(*Router) http.HandlerFunc
}{
	{"POST /v1/synthesize", func(rt *Router) http.HandlerFunc { return rt.handleSynthesize }},
	{"POST /v1/batch", func(rt *Router) http.HandlerFunc { return rt.handleBatch }},
	{"GET /v1/jobs/{id}", func(rt *Router) http.HandlerFunc { return rt.handleJob }},
	{"GET /v1/runs", func(rt *Router) http.HandlerFunc { return rt.handleRuns }},
	{"GET /v1/runs/{id}", func(rt *Router) http.HandlerFunc { return rt.handleRun }},
	{"GET /v1/benchmarks", func(rt *Router) http.HandlerFunc { return rt.handleBenchmarks }},
	{"GET /metrics", func(rt *Router) http.HandlerFunc { return rt.handleMetrics }},
	{"GET /healthz", func(rt *Router) http.HandlerFunc { return rt.handleHealthz }},
}

// RouterRoutes returns every "METHOD /path" pattern the router serves
// (a subset of Routes: the router fronts shards, it does not hold a
// cache of its own, so the /v1/cache exchange stays shard-to-shard).
func RouterRoutes() []string {
	out := make([]string, len(routerRoutes))
	for i, r := range routerRoutes {
		out[i] = r.pattern
	}
	return out
}

// Handler returns the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range routerRoutes {
		mux.HandleFunc(r.pattern, r.handler(rt))
	}
	return mux
}

// routeKey computes the routing key of one request: the canonical
// rendering of its parsed STG. Parsing and re-formatting normalizes
// whitespace, comments and declaration noise, so every spelling of
// one specification lands on one shard — which is what lets that
// shard's solve cache specialize on the signatures the specification
// produces. Options are deliberately excluded: engine or budget
// sweeps over one STG share the shard and therefore the cache.
func routeKey(req Request) (string, error) {
	src := req.STG
	switch {
	case req.STG != "" && req.Bench != "":
		return "", synerr.Parse(fmt.Errorf(`"stg" and "bench" are mutually exclusive`))
	case req.Bench != "":
		b, err := bench.Source(req.Bench)
		if err != nil {
			return "", synerr.Parse(err)
		}
		src = b
	case req.STG == "":
		return "", synerr.Parse(fmt.Errorf(`one of "stg" or "bench" is required`))
	}
	g, err := asyncsyn.ParseSTGString(src)
	if err != nil {
		return "", err
	}
	if err := g.Validate(); err != nil {
		return "", synerr.Parse(err)
	}
	return g.Format(), nil
}

// handleSynthesize decodes enough of the request to route it, then
// forwards the original body to the owner shard, failing over along
// the ring.
func (rt *Router) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBody))
	if err != nil {
		rt.writeError(w, synerr.Parse(fmt.Errorf("request body: %w", err)), start)
		return
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.writeError(w, synerr.Parse(fmt.Errorf("request body: %w", err)), start)
		return
	}
	key, err := routeKey(req)
	if err != nil {
		rt.writeError(w, err, start)
		return
	}
	path := "/v1/synthesize"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	rt.forward(w, r.Context(), rt.ring.sequence(key), http.MethodPost, path, body, start)
}

// handleBatch splits a batch by owner shard, forwards the sub-batches
// concurrently, and reassembles the responses in request order.
// Entries that fail to route (parse errors) answer per-entry 400
// without touching a shard.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		rt.writeError(w, synerr.Parse(fmt.Errorf("request body: %w", err)), start)
		return
	}
	if len(breq.Requests) == 0 {
		rt.writeError(w, synerr.Parse(fmt.Errorf(`"requests" must not be empty`)), start)
		return
	}
	if len(breq.Requests) > rt.cfg.MaxBatch {
		rt.writeError(w, synerr.Parse(
			fmt.Errorf("batch of %d exceeds the %d-entry cap", len(breq.Requests), rt.cfg.MaxBatch)), start)
		return
	}

	entries := make([]BatchEntry, len(breq.Requests))
	groups := make(map[int][]int) // owner shard index → request indices
	keys := make(map[int]string)  // owner shard index → a routing key (for failover order)
	for i, req := range breq.Requests {
		key, err := routeKey(req)
		if err != nil {
			class := synerr.ClassOf(err)
			entries[i] = BatchEntry{Status: class.HTTPStatus(), Response: *errorResponse(err)}
			continue
		}
		owner := rt.ring.sequence(key)[0]
		groups[owner] = append(groups[owner], i)
		if _, ok := keys[owner]; !ok {
			keys[owner] = key
		}
	}

	path := "/v1/batch"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			sub := BatchRequest{Requests: make([]Request, len(idxs))}
			for j, i := range idxs {
				sub.Requests[j] = breq.Requests[i]
			}
			body, _ := json.Marshal(&sub)
			status, respBody, _ := rt.forwardBytes(r.Context(), rt.ring.sequence(keys[owner]), http.MethodPost, path, body)
			var bresp BatchResponse
			ok := status == http.StatusOK && json.Unmarshal(respBody, &bresp) == nil &&
				len(bresp.Responses) == len(idxs)
			mu.Lock()
			for j, i := range idxs {
				if ok {
					entries[i] = bresp.Responses[j]
				} else {
					entries[i] = BatchEntry{Status: http.StatusBadGateway, Response: Response{
						Error: "no shard available", Class: "unavailable",
					}}
				}
			}
			mu.Unlock()
		}(owner, idxs)
	}
	wg.Wait()
	rt.writeJSON(w, http.StatusOK, &BatchResponse{Responses: entries}, start)
}

// handleJob broadcasts GET /v1/jobs/{id} to the pool — job ids are
// shard-local, so the router asks everyone and relays the first
// answer that isn't 404.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	path := "/v1/jobs/" + r.PathValue("id")
	type result struct {
		status int
		body   []byte
		shard  int
	}
	results := make(chan result, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := rt.tryShard(r.Context(), i, http.MethodGet, path, nil)
			if err != nil {
				return
			}
			results <- result{status, body, i}
		}(i)
	}
	wg.Wait()
	close(results)
	var best *result
	for res := range results {
		res := res
		if res.status != http.StatusNotFound {
			best = &res
			break
		}
		if best == nil {
			best = &res
		}
	}
	if best == nil {
		rt.writeJSON(w, http.StatusNotFound, &Response{Error: "no such job", Class: "not_found"}, start)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Modsynd-Shard", rt.shards[best.shard])
	w.WriteHeader(best.status)
	w.Write(best.body)
	rt.stats.record(best.status, start)
}

// handleRuns fans GET /v1/runs out to every shard and merges the
// pages: run history is shard-local (each shard records the jobs it
// executed), so the cluster view is the union. Each shard is asked for
// the window [0, offset+limit) of its own newest-first history; the
// merged result is re-sorted newest first and the requested window
// sliced locally. Total is the sum of the shard totals. Shards without
// a run database (or down) contribute nothing; if no shard has one,
// the 503 is relayed.
func (rt *Router) handleRuns(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := r.URL.Query()
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		rt.writeError(w, synerr.Parse(fmt.Errorf("offset: %w", err)), start)
		return
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		rt.writeError(w, synerr.Parse(fmt.Errorf("limit: %w", err)), start)
		return
	}
	if limit <= 0 {
		limit = rundb.DefaultLimit
	}
	if limit > rundb.MaxLimit {
		limit = rundb.MaxLimit
	}

	// Rewrite the window for the shard fan-out: to assemble the global
	// page [offset, offset+limit) we need each shard's newest
	// offset+limit records.
	sq := r.URL.Query()
	sq.Set("offset", "0")
	sq.Set("limit", strconv.Itoa(min(offset+limit, rundb.MaxLimit)))
	path := "/v1/runs?" + sq.Encode()

	type result struct {
		page RunsResponse
		ok   bool
	}
	results := make([]result, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := rt.tryShard(r.Context(), i, http.MethodGet, path, nil)
			if err != nil || status != http.StatusOK {
				return
			}
			if json.Unmarshal(body, &results[i].page) == nil {
				results[i].ok = true
			}
		}(i)
	}
	wg.Wait()

	total, answered := 0, 0
	var merged []RunSummary
	for _, res := range results {
		if !res.ok {
			continue
		}
		answered++
		total += res.page.Total
		merged = append(merged, res.page.Runs...)
	}
	if answered == 0 {
		rt.writeJSON(w, http.StatusServiceUnavailable, &Response{
			Error: "run database disabled on every shard", Class: "rundb_disabled",
		}, start)
		return
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].UnixMS != merged[j].UnixMS {
			return merged[i].UnixMS > merged[j].UnixMS
		}
		return merged[i].ID > merged[j].ID
	})
	if offset > len(merged) {
		merged = nil
	} else {
		merged = merged[offset:]
	}
	if len(merged) > limit {
		merged = merged[:limit]
	}
	if merged == nil {
		merged = []RunSummary{}
	}
	rt.writeJSON(w, http.StatusOK, &RunsResponse{
		Total: total, Offset: offset, Limit: limit, Runs: merged,
	}, start)
}

// handleRun broadcasts GET /v1/runs/{id} to the pool — run ids are
// shard-local like job ids, so the router asks everyone and relays
// the first answer that is neither 404 nor rundb-disabled 503.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	path := "/v1/runs/" + r.PathValue("id")
	type result struct {
		status int
		body   []byte
		shard  int
	}
	results := make(chan result, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := rt.tryShard(r.Context(), i, http.MethodGet, path, nil)
			if err != nil {
				return
			}
			results <- result{status, body, i}
		}(i)
	}
	wg.Wait()
	close(results)
	var best *result
	for res := range results {
		res := res
		if res.status != http.StatusNotFound && res.status != http.StatusServiceUnavailable {
			best = &res
			break
		}
		if best == nil || (best.status == http.StatusServiceUnavailable && res.status == http.StatusNotFound) {
			best = &res
		}
	}
	if best == nil {
		rt.writeJSON(w, http.StatusNotFound, &Response{Error: "no such run", Class: "not_found"}, start)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Modsynd-Shard", rt.shards[best.shard])
	w.WriteHeader(best.status)
	w.Write(best.body)
	rt.stats.record(best.status, start)
}

// handleBenchmarks answers locally: the embedded suite is compiled
// into every binary, shard or router alike.
func (rt *Router) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.writeJSON(w, http.StatusOK, map[string][]string{"benchmarks": bench.Available()}, start)
}

// handleHealthz probes every shard's /healthz concurrently, refreshes
// the up gauges, and reports the pool: 200 while at least one shard
// is healthy, 503 otherwise.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	states := make([]string, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.shards[i]+"/healthz", nil)
			if err != nil {
				states[i] = "down"
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				states[i] = "down"
				rt.stats.setUp(i, false)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				states[i] = "ok"
				rt.stats.setUp(i, true)
			} else {
				states[i] = "down"
				rt.stats.setUp(i, false)
			}
		}(i)
	}
	wg.Wait()
	healthy := 0
	byShard := make(map[string]string, len(rt.shards))
	for i, st := range states {
		byShard[rt.shards[i]] = st
		if st == "ok" {
			healthy++
		}
	}
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, status, map[string]any{"shards": byShard, "healthy": healthy}, start)
}

// forward relays one request down the failover sequence and writes
// the first usable shard response to w.
func (rt *Router) forward(w http.ResponseWriter, ctx context.Context, seq []int, method, path string, body []byte, start time.Time) {
	status, respBody, shard := rt.forwardBytes(ctx, seq, method, path, body)
	if shard < 0 {
		rt.writeJSON(w, http.StatusBadGateway, &Response{
			Error: "no shard available", Class: "unavailable",
		}, start)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Modsynd-Shard", rt.shards[shard])
	w.WriteHeader(status)
	w.Write(respBody)
	rt.stats.record(status, start)
}

// failoverStatus reports whether a shard response should push the
// request to the next ring position: the shard is overloaded (429),
// draining (503), or behind a dead gateway (502/504). Deterministic
// outcomes — 2xx, parse 400, budget 422, timeout 408 — are relayed:
// another shard would answer the same.
func failoverStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forwardBytes tries each shard of seq in order and returns the first
// non-failover response. shard is -1 when every attempt failed at the
// transport level; when shards answered only failover statuses the
// last such response is returned so the client sees the pool's state
// (e.g. a 429 with its Retry-After semantics).
func (rt *Router) forwardBytes(ctx context.Context, seq []int, method, path string, body []byte) (status int, respBody []byte, shard int) {
	status, shard = 0, -1
	for attempt, idx := range seq {
		if attempt > 0 {
			rt.stats.failover.Add(1)
		}
		st, b, err := rt.tryShard(ctx, idx, method, path, body)
		if err != nil {
			if ctx.Err() != nil {
				return status, respBody, shard
			}
			continue
		}
		if !failoverStatus(st) {
			return st, b, idx
		}
		status, respBody, shard = st, b, idx
	}
	return status, respBody, shard
}

// tryShard performs one attempt against one shard, recording its
// latency and outcome in the per-shard stats.
func (rt *Router) tryShard(ctx context.Context, idx int, method, path string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rt.shards[idx]+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	begin := time.Now()
	resp, err := rt.client.Do(req)
	rt.stats.observe(idx, time.Since(begin))
	if err != nil {
		rt.stats.fail(idx)
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		rt.stats.fail(idx)
		return 0, nil, err
	}
	rt.stats.setUp(idx, true)
	return resp.StatusCode, b, nil
}

func (rt *Router) writeError(w http.ResponseWriter, err error, start time.Time) {
	class := synerr.ClassOf(err)
	rt.writeJSON(w, class.HTTPStatus(), errorResponse(err), start)
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, body any, start time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
	rt.stats.record(status, start)
}

// routerStats holds the router-level counters exposed on /metrics.
type routerStats struct {
	requests atomic.Int64 // finished router responses
	failover atomic.Int64 // attempts pushed past the owner shard

	up        []atomic.Int64 // 1 = last contact ok
	reqs      []atomic.Int64 // forwarded attempts per shard
	fails     []atomic.Int64 // transport-level failures per shard
	latSumUS  []atomic.Int64 // forwarded latency sum, microseconds
	latCount  []atomic.Int64
	latencyUS atomic.Int64 // whole-router response latency sum
}

func newRouterStats(n int) *routerStats {
	st := &routerStats{
		up:       make([]atomic.Int64, n),
		reqs:     make([]atomic.Int64, n),
		fails:    make([]atomic.Int64, n),
		latSumUS: make([]atomic.Int64, n),
		latCount: make([]atomic.Int64, n),
	}
	for i := range st.up {
		st.up[i].Store(1) // optimistic until proven otherwise
	}
	return st
}

func (st *routerStats) record(status int, start time.Time) {
	st.requests.Add(1)
	st.latencyUS.Add(time.Since(start).Microseconds())
}

func (st *routerStats) observe(idx int, d time.Duration) {
	st.reqs[idx].Add(1)
	st.latSumUS[idx].Add(d.Microseconds())
	st.latCount[idx].Add(1)
}

func (st *routerStats) fail(idx int) {
	st.fails[idx].Add(1)
	st.up[idx].Store(0)
}

func (st *routerStats) setUp(idx int, up bool) {
	if up {
		st.up[idx].Store(1)
	} else {
		st.up[idx].Store(0)
	}
}

// handleMetrics is the router's GET /metrics: pool-level counters and
// per-shard health, traffic, failure and latency series.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.stats
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP modsynd_router_requests_total Finished router responses.\n# TYPE modsynd_router_requests_total counter\nmodsynd_router_requests_total %d\n", st.requests.Load())
	fmt.Fprintf(w, "# HELP modsynd_router_failover_total Requests retried past the owner shard.\n# TYPE modsynd_router_failover_total counter\nmodsynd_router_failover_total %d\n", st.failover.Load())
	fmt.Fprintf(w, "# HELP modsynd_router_response_seconds_sum Whole-router response latency sum.\n# TYPE modsynd_router_response_seconds_sum counter\nmodsynd_router_response_seconds_sum %g\n", float64(st.latencyUS.Load())/1e6)

	series := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	series("modsynd_shard_up", "1 while the shard's last contact succeeded.", "gauge")
	for i, s := range rt.shards {
		fmt.Fprintf(w, "modsynd_shard_up{shard=%q} %d\n", s, st.up[i].Load())
	}
	series("modsynd_shard_requests_total", "Forwarded attempts per shard.", "counter")
	for i, s := range rt.shards {
		fmt.Fprintf(w, "modsynd_shard_requests_total{shard=%q} %d\n", s, st.reqs[i].Load())
	}
	series("modsynd_shard_failures_total", "Transport-level failures per shard.", "counter")
	for i, s := range rt.shards {
		fmt.Fprintf(w, "modsynd_shard_failures_total{shard=%q} %d\n", s, st.fails[i].Load())
	}
	series("modsynd_shard_latency_seconds_sum", "Forwarded request latency sum per shard.", "counter")
	for i, s := range rt.shards {
		fmt.Fprintf(w, "modsynd_shard_latency_seconds_sum{shard=%q} %g\n", s, float64(st.latSumUS[i].Load())/1e6)
	}
	series("modsynd_shard_latency_seconds_count", "Forwarded request count per shard.", "counter")
	for i, s := range rt.shards {
		fmt.Fprintf(w, "modsynd_shard_latency_seconds_count{shard=%q} %d\n", s, st.latCount[i].Load())
	}
	st.record(http.StatusOK, time.Now())
}
