package server

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// TestAPIDocCoversRoutes diffs the live route tables against
// docs/API.md: every pattern a shard or the router registers must have
// a `### `METHOD /path`` heading, and the doc must not describe routes
// that no longer exist. This keeps the operator reference from
// drifting as endpoints are added or renamed.
func TestAPIDocCoversRoutes(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md must exist and document every route: %v", err)
	}

	headingRE := regexp.MustCompile("(?m)^###+ `((?:GET|PUT|POST|DELETE|PATCH|HEAD) /[^`]*)`")
	documented := make(map[string]bool)
	for _, m := range headingRE.FindAllStringSubmatch(string(b), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md contains no `### `METHOD /path`` endpoint headings")
	}

	registered := make(map[string]bool)
	for _, p := range Routes() {
		registered[p] = true
	}
	for _, p := range RouterRoutes() {
		registered[p] = true
	}

	for p := range registered {
		if !documented[p] {
			t.Errorf("route %q is registered but has no heading in docs/API.md", p)
		}
	}
	for p := range documented {
		if !registered[p] {
			t.Errorf("docs/API.md documents %q but no shard or router registers it", p)
		}
	}
}
