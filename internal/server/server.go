// Package server implements the synthesis daemon behind cmd/modsynd:
// an HTTP JSON API over the asyncsyn facade that turns the one-shot
// library pipeline into a long-lived service. The pieces the package
// owns are the serving concerns the library deliberately does not:
//
//   - Admission control. Jobs run through a bounded slot pool
//     (Config.MaxInFlight) with a bounded wait queue
//     (Config.QueueDepth); a request that would exceed both is
//     answered 429 with a Retry-After header instead of growing an
//     unbounded goroutine pile.
//   - Request deduplication. Identical concurrent requests — same STG
//     text, same options — are detected by content hash and share one
//     synthesis run (singleflight); only the producer occupies a slot.
//   - Shared solve cache. Every request runs against one
//     asyncsyn.SolveCache (optionally disk-backed), so a warm daemon
//     answers repeat traffic from cache with bit-identical circuits.
//   - Deadlines. Each job runs under SynthesizeContext with a
//     per-request timeout (capped by Config.MaxTimeout), so a stuck
//     request can never hold a slot forever.
//   - Observability. GET /metrics renders the shared internal/metrics
//     counters plus server-level gauges and a latency histogram in
//     Prometheus text format; ?trace=1 returns the per-request
//     JSON-lines trace inside the response.
//   - Graceful shutdown. Shutdown stops admission (new work is
//     answered 503), drains admitted jobs through their contexts, and
//     only cancels them when the drain deadline expires.
//
// Failure classification is shared with cmd/modsyn through
// synerr.ClassOf: parse errors answer 400, expired deadlines 408,
// budget/unsolvable outcomes 422, client-canceled requests 499, and
// everything else 500.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"asyncsyn"
)

// Config tunes the daemon. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxInFlight bounds the synthesis jobs running concurrently
	// (default: GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds the admitted jobs waiting for a free slot
	// (default 64). A request arriving with the queue full is rejected
	// with 429. Zero keeps the default; use NoQueue for a depth of 0.
	QueueDepth int
	// NoQueue disables queueing entirely: a request that cannot run
	// immediately is rejected.
	NoQueue bool
	// DefaultTimeout is the per-job deadline applied when a request
	// does not carry one (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job deadline a request may ask for
	// (default 10m).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Workers is the per-job worker-pool bound passed to the library
	// when the request does not set one (0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, backs the shared solve cache with
	// on-disk records so warm starts survive daemon restarts.
	CacheDir string
	// DisableCache turns the shared solve cache off (measurement only).
	DisableCache bool
	// MaxJobs bounds the finished jobs retained for GET /v1/jobs/{id}
	// (default 256; oldest finished jobs are evicted first).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue {
		c.QueueDepth = 0
	} else if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	return c
}

// Server is the synthesis daemon. Construct with New, expose
// Handler() through an http.Server, and call Shutdown to drain.
type Server struct {
	cfg       Config
	cache     *asyncsyn.SolveCache
	collector *asyncsyn.Metrics
	stats     *stats

	// slots is the running-job semaphore: holding a token = in flight.
	slots chan struct{}

	// baseCtx parents every job context so a forced shutdown can cancel
	// still-running work after the drain deadline.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	jobs *jobStore

	// flights dedups identical concurrent requests: content key → the
	// live job computing it. Entries are removed when the job finishes;
	// after that, repeats are served cheaply by the solve cache instead.
	mu      sync.Mutex
	flights map[string]*job
	seq     int64

	// wg counts admitted jobs (queued and running); Shutdown drains it.
	wg        sync.WaitGroup
	drainOnce sync.Once
	drainCh   chan struct{} // closed when admission stops

	// run executes one admitted job; defaults to (*Server).synthesize.
	// Tests substitute a controllable stub to pin the admission,
	// dedup and drain machinery without real synthesis timing.
	run func(ctx context.Context, j *job) (*Response, int)
}

// New builds a Server from cfg (defaults applied). The error is
// non-nil only when Config.CacheDir cannot be created.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		collector: asyncsyn.NewMetrics(),
		stats:     newStats(),
		slots:     make(chan struct{}, cfg.MaxInFlight),
		jobs:      newJobStore(cfg.MaxJobs),
		flights:   make(map[string]*job),
		drainCh:   make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = s.synthesize
	if !cfg.DisableCache {
		if cfg.CacheDir != "" {
			c, err := asyncsyn.NewDiskSolveCache(cfg.CacheDir)
			if err != nil {
				return nil, err
			}
			s.cache = c
		} else {
			s.cache = asyncsyn.NewSolveCache()
		}
	}
	return s, nil
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// draining reports whether admission has stopped.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Shutdown stops admission and drains: new requests are answered 503
// immediately, admitted jobs (queued and running) finish under their
// own contexts. If ctx expires before the drain completes, every
// remaining job is canceled through the base context and Shutdown
// returns ctx.Err after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Cache exposes the shared solve cache (nil when disabled); tests and
// embedding callers use it to pre-warm or inspect.
func (s *Server) Cache() *asyncsyn.SolveCache { return s.cache }

// Metrics exposes the shared synthesis counter collector.
func (s *Server) Metrics() *asyncsyn.Metrics { return s.collector }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
