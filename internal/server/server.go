// Package server implements the synthesis daemon behind cmd/modsynd:
// an HTTP JSON API over the asyncsyn facade that turns the one-shot
// library pipeline into a long-lived service. The pieces the package
// owns are the serving concerns the library deliberately does not:
//
//   - Admission control. Jobs run through a bounded slot pool
//     (Config.MaxInFlight) with a bounded wait queue
//     (Config.QueueDepth); a request that would exceed both is
//     answered 429 with a Retry-After header instead of growing an
//     unbounded goroutine pile.
//   - Request deduplication. Identical concurrent requests — same STG
//     text, same options — are detected by content hash and share one
//     synthesis run (singleflight); only the producer occupies a slot.
//   - Shared solve cache. Every request runs against one
//     asyncsyn.SolveCache (optionally disk-backed), so a warm daemon
//     answers repeat traffic from cache with bit-identical circuits.
//   - Deadlines. Each job runs under SynthesizeContext with a
//     per-request timeout (capped by Config.MaxTimeout), so a stuck
//     request can never hold a slot forever.
//   - Observability. GET /metrics renders the shared internal/metrics
//     counters plus server-level gauges and a latency histogram in
//     Prometheus text format; ?trace=1 returns the per-request
//     JSON-lines trace inside the response.
//   - Graceful shutdown. Shutdown stops admission (new work is
//     answered 503), drains admitted jobs through their contexts, and
//     only cancels them when the drain deadline expires.
//
// Beyond the single daemon, the package scales the service out to an
// N-node cluster:
//
//   - Batch admission. POST /v1/batch admits a whole STG suite in one
//     request and fans the entries across the in-flight slots,
//     returning per-entry statuses in request order.
//   - Peer cache exchange. GET/PUT /v1/cache/{key} serve and accept
//     the content-addressed modcache record format, and a node
//     configured with Config.Peers pulls missing records from its
//     siblings (modcache.Remote) before solving locally.
//   - Router mode. NewRouter builds a stateless front that
//     consistent-hashes each request by the canonical problem
//     signature (the parsed STG's canonical rendering) onto a shard
//     pool, fails over around dead shards along the hash ring, fans
//     batches out shard-wise, and exposes per-shard health and
//     latency on /metrics. Because routing is signature-based, each
//     shard's solve cache specializes on its slice of the problem
//     space. Digest parity across every topology — one node or N,
//     cold, disk-warmed or peer-warmed, with or without failover —
//     is pinned by the cluster tests.
//
// Failure classification is shared with cmd/modsyn through
// synerr.ClassOf: parse errors answer 400, expired deadlines 408,
// budget/unsolvable outcomes 422, client-canceled requests 499, and
// everything else 500.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"asyncsyn"
	"asyncsyn/internal/rundb"
)

// Config tunes the daemon. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxInFlight bounds the synthesis jobs running concurrently
	// (default: GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds the admitted jobs waiting for a free slot
	// (default 64). A request arriving with the queue full is rejected
	// with 429. Zero keeps the default; use NoQueue for a depth of 0.
	QueueDepth int
	// NoQueue disables queueing entirely: a request that cannot run
	// immediately is rejected.
	NoQueue bool
	// DefaultTimeout is the per-job deadline applied when a request
	// does not carry one (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job deadline a request may ask for
	// (default 10m).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Workers is the per-job worker-pool bound passed to the library
	// when the request does not set one (0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, backs the shared solve cache with
	// on-disk records so warm starts survive daemon restarts.
	CacheDir string
	// DisableCache turns the shared solve cache off (measurement only).
	DisableCache bool
	// MaxJobs bounds the finished jobs retained for GET /v1/jobs/{id}
	// (default 256; oldest finished jobs are evicted first).
	MaxJobs int
	// Peers lists sibling shard base URLs (e.g. "http://host:8713")
	// whose caches this node may pull from on a local solve-cache miss
	// (the /v1/cache exchange). Requires the cache to be enabled.
	Peers []string
	// PeerTimeout bounds one peer cache fetch (default 2s). A fetch
	// that misses, fails, or times out falls through to a local solve.
	PeerTimeout time.Duration
	// MaxBatch bounds the entries of one POST /v1/batch request
	// (default 256).
	MaxBatch int
	// RunDBDir, when non-empty, opens a persistent run database
	// (internal/rundb) under this directory: every completed synthesis
	// is recorded, and history is served by GET /v1/runs and
	// GET /v1/runs/{id}. Cross-run digest divergence under an unchanged
	// key is flagged on the record and counted on /metrics.
	RunDBDir string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue {
		c.QueueDepth = 0
	} else if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server is the synthesis daemon. Construct with New, expose
// Handler() through an http.Server, and call Shutdown to drain.
type Server struct {
	cfg       Config
	cache     *asyncsyn.SolveCache
	collector *asyncsyn.Metrics
	stats     *stats
	// rundb is the persistent run history (nil unless Config.RunDBDir).
	rundb *rundb.DB

	// slots is the running-job semaphore: holding a token = in flight.
	slots chan struct{}

	// baseCtx parents every job context so a forced shutdown can cancel
	// still-running work after the drain deadline.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	jobs *jobStore

	// flights dedups identical concurrent requests: content key → the
	// live job computing it. Entries are removed when the job finishes;
	// after that, repeats are served cheaply by the solve cache instead.
	mu      sync.Mutex
	flights map[string]*job
	seq     int64

	// wg counts admitted jobs (queued and running); Shutdown drains it.
	wg        sync.WaitGroup
	drainOnce sync.Once
	drainCh   chan struct{} // closed when admission stops

	// run executes one admitted job; defaults to (*Server).synthesize.
	// Tests substitute a controllable stub to pin the admission,
	// dedup and drain machinery without real synthesis timing.
	run func(ctx context.Context, j *job) (*Response, int)
}

// New builds a Server from cfg (defaults applied). The error is
// non-nil only when Config.CacheDir cannot be created.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		collector: asyncsyn.NewMetrics(),
		stats:     newStats(),
		slots:     make(chan struct{}, cfg.MaxInFlight),
		jobs:      newJobStore(cfg.MaxJobs),
		flights:   make(map[string]*job),
		drainCh:   make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = s.synthesize
	if !cfg.DisableCache {
		if cfg.CacheDir != "" {
			c, err := asyncsyn.NewDiskSolveCache(cfg.CacheDir)
			if err != nil {
				return nil, err
			}
			s.cache = c
		} else {
			s.cache = asyncsyn.NewSolveCache()
		}
	}
	if cfg.RunDBDir != "" {
		db, err := rundb.Open(cfg.RunDBDir)
		if err != nil {
			return nil, err
		}
		s.rundb = db
	}
	if len(cfg.Peers) > 0 {
		if s.cache == nil {
			return nil, fmt.Errorf("server: peers configured with the cache disabled")
		}
		peers, err := normalizePeers(cfg.Peers)
		if err != nil {
			return nil, err
		}
		s.cache.SetRemote(newPeerClient(peers, cfg.PeerTimeout))
	}
	return s, nil
}

// shardRoutes is the single source of truth for the shard daemon's
// route table: Handler registers exactly these patterns and Routes
// reports them, so the docs/API.md coverage test (TestAPIDocCoversRoutes)
// can diff documentation against registration.
var shardRoutes = []struct {
	pattern string
	handler func(*Server) http.HandlerFunc
}{
	{"POST /v1/synthesize", func(s *Server) http.HandlerFunc { return s.handleSynthesize }},
	{"POST /v1/batch", func(s *Server) http.HandlerFunc { return s.handleBatch }},
	{"GET /v1/jobs/{id}", func(s *Server) http.HandlerFunc { return s.handleJob }},
	{"GET /v1/runs", func(s *Server) http.HandlerFunc { return s.handleRuns }},
	{"GET /v1/runs/{id}", func(s *Server) http.HandlerFunc { return s.handleRun }},
	{"GET /v1/benchmarks", func(s *Server) http.HandlerFunc { return s.handleBenchmarks }},
	{"GET /v1/cache/{key}", func(s *Server) http.HandlerFunc { return s.handleCacheGet }},
	{"PUT /v1/cache/{key}", func(s *Server) http.HandlerFunc { return s.handleCachePut }},
	{"GET /metrics", func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{"GET /healthz", func(s *Server) http.HandlerFunc { return s.handleHealthz }},
}

// Routes returns every "METHOD /path" pattern the shard daemon serves.
func Routes() []string {
	out := make([]string, len(shardRoutes))
	for i, r := range shardRoutes {
		out[i] = r.pattern
	}
	return out
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range shardRoutes {
		mux.HandleFunc(r.pattern, r.handler(s))
	}
	return mux
}

// draining reports whether admission has stopped.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Shutdown stops admission and drains: new requests are answered 503
// immediately, admitted jobs (queued and running) finish under their
// own contexts. If ctx expires before the drain completes, every
// remaining job is canceled through the base context and Shutdown
// returns ctx.Err after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Cache exposes the shared solve cache (nil when disabled); tests and
// embedding callers use it to pre-warm or inspect.
func (s *Server) Cache() *asyncsyn.SolveCache { return s.cache }

// Metrics exposes the shared synthesis counter collector.
func (s *Server) Metrics() *asyncsyn.Metrics { return s.collector }

// RunDB exposes the persistent run database (nil when disabled).
func (s *Server) RunDB() *rundb.DB { return s.rundb }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
