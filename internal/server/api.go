package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/rundb"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// maxBody bounds a request body; .g sources are tiny, so 16 MiB is
// generous headroom for generated STGs.
const maxBody = 16 << 20

// Request is the POST /v1/synthesize body. Exactly one of STG (a ".g"
// source) or Bench (an embedded Table 1 benchmark name) selects the
// specification; the remaining fields mirror asyncsyn.Options.
type Request struct {
	STG   string `json:"stg,omitempty"`
	Bench string `json:"bench,omitempty"`

	Method        string `json:"method,omitempty"`  // modular|direct|lavagno
	Engine        string `json:"engine,omitempty"`  // dpll|walksat|bdd|portfolio
	Workers       int    `json:"workers,omitempty"` // per-job pool bound
	Timeout       string `json:"timeout,omitempty"` // Go duration, capped by MaxTimeout
	MaxBacktracks int64  `json:"max_backtracks,omitempty"`
	ExpandXor     bool   `json:"expand_xor,omitempty"`
	FullSupport   bool   `json:"full_support,omitempty"`
	ExactMinimize bool   `json:"exact_minimize,omitempty"`

	// Async makes the POST return 202 with a job id immediately; poll
	// GET /v1/jobs/{id} for the result. Not part of the dedup key.
	Async bool `json:"async,omitempty"`
}

// FunctionJSON is one synthesized next-state function.
type FunctionJSON struct {
	Name     string   `json:"name"`
	Inputs   []string `json:"inputs"`
	SOP      string   `json:"sop"`
	Literals int      `json:"literals"`
}

// ModuleJSON is one per-output modular pass report.
type ModuleJSON struct {
	Output       string   `json:"output"`
	InputSet     []string `json:"input_set"`
	MergedStates int      `json:"merged_states"`
	Conflicts    int      `json:"conflicts"`
	NewSignals   int      `json:"new_signals"`
	Widened      bool     `json:"widened,omitempty"`
}

// StageJSON is one pipeline stage timing.
type StageJSON struct {
	Name     string           `json:"name"`
	MS       float64          `json:"ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Response is the synthesis result (or failure) envelope. Error
// outcomes carry Error/Class and whatever partial statistics exist; a
// budget abort (HTTP 422) still reports the full partial circuit.
type Response struct {
	Job    string `json:"job,omitempty"`    // async handle
	Status string `json:"status,omitempty"` // queued|running|done (async)

	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"` // synerr.Class wire name

	Model   string `json:"model,omitempty"`
	Method  string `json:"method,omitempty"`
	Aborted bool   `json:"aborted,omitempty"`

	InitialStates  int `json:"initial_states,omitempty"`
	InitialSignals int `json:"initial_signals,omitempty"`
	FinalStates    int `json:"final_states,omitempty"`
	FinalSignals   int `json:"final_signals,omitempty"`
	StateSignals   int `json:"state_signals,omitempty"`
	Area           int `json:"area,omitempty"`

	CPUMS  float64 `json:"cpu_ms,omitempty"`
	Digest string  `json:"digest,omitempty"`
	// Signature is the canonical problem signature: the hex SHA-256 of
	// the canonical rendering of the parsed STG (the cluster routing
	// key and the rundb content hash). Clients correlate synthesize and
	// job responses with GET /v1/runs?signature=... through it without
	// re-deriving anything.
	Signature string `json:"signature,omitempty"`
	// Run is the id of the run-history record this synthesis produced
	// (GET /v1/runs/{id}); present only when the daemon has a run
	// database configured.
	Run string `json:"run,omitempty"`
	// Deduped reports that this response was served by joining an
	// identical concurrent request's run.
	Deduped bool `json:"deduped,omitempty"`

	Functions []FunctionJSON   `json:"functions,omitempty"`
	Modules   []ModuleJSON     `json:"modules,omitempty"`
	Stages    []StageJSON      `json:"stages,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`

	// Trace is the run's JSON-lines trace (?trace=1), one event object
	// per element, in emission order.
	Trace []json.RawMessage `json:"trace,omitempty"`
}

// parsedRequest is a validated request ready for admission.
type parsedRequest struct {
	key   string // content hash of (STG text, options, trace)
	stg   *asyncsyn.STG
	canon string // canonical rendering (stg.Format of the parse)
	sig   string // canonical problem signature (rundb.Signature of canon)
	bench string // embedded benchmark name, when the request used one
	opts  asyncsyn.Options
	trace bool
	async bool
}

// parseRequest validates the body and resolves it to library options.
// All failures are ClassParse (400).
func (s *Server) parseRequest(r *http.Request) (*parsedRequest, error) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, synerr.Parse(fmt.Errorf("request body: %w", err))
	}
	return s.resolveRequest(req, r.URL.Query().Get("trace") == "1")
}

// resolveRequest validates one decoded Request and resolves it to
// library options; shared by the single and batch endpoints. All
// failures are ClassParse (400).
func (s *Server) resolveRequest(req Request, wantTrace bool) (*parsedRequest, error) {
	src := req.STG
	switch {
	case req.STG != "" && req.Bench != "":
		return nil, synerr.Parse(fmt.Errorf(`"stg" and "bench" are mutually exclusive`))
	case req.Bench != "":
		b, err := bench.Source(req.Bench)
		if err != nil {
			return nil, synerr.Parse(err)
		}
		src = b
	case req.STG == "":
		return nil, synerr.Parse(fmt.Errorf(`one of "stg" or "bench" is required`))
	}

	g, err := asyncsyn.ParseSTGString(src)
	if err != nil {
		return nil, err // already matches ErrParse
	}
	if err := g.Validate(); err != nil {
		return nil, synerr.Parse(err)
	}

	method, err := asyncsyn.ParseMethod(req.Method)
	if err != nil {
		return nil, synerr.Parse(err)
	}
	engine, err := asyncsyn.ParseEngine(req.Engine)
	if err != nil {
		return nil, synerr.Parse(err)
	}
	timeout := s.cfg.DefaultTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return nil, synerr.Parse(fmt.Errorf("bad timeout %q", req.Timeout))
		}
		timeout = d
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}

	p := &parsedRequest{
		stg:   g,
		canon: g.Format(),
		bench: req.Bench,
		opts: asyncsyn.Options{
			Method:        method,
			Engine:        engine,
			Workers:       workers,
			Timeout:       timeout,
			MaxBacktracks: req.MaxBacktracks,
			ExpandXor:     req.ExpandXor,
			FullSupport:   req.FullSupport,
			ExactMinimize: req.ExactMinimize,
		},
		trace: wantTrace,
		async: req.Async,
	}
	p.key = contentKey(src, p.opts, p.trace)
	p.sig = rundb.Signature(p.canon)
	return p, nil
}

// contentKey hashes everything a run's outcome (including its trace
// section) depends on, so only truly identical concurrent requests
// share a job.
func contentKey(src string, opt asyncsyn.Options, wantTrace bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%v\x00%v\x00%d\x00%v\x00%d\x00%v%v%v%v\x00", src,
		opt.Method, opt.Engine, opt.Workers, opt.Timeout, opt.MaxBacktracks,
		opt.ExpandXor, opt.FullSupport, opt.ExactMinimize, wantTrace)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// synthesize executes one job through the facade against the shared
// cache and collector; this is the production value of Server.run.
func (s *Server) synthesize(ctx context.Context, j *job) (*Response, int) {
	opts := j.opts
	opts.Cache = s.cache
	opts.DisableSolveCache = s.cache == nil
	opts.Metrics = s.collector
	var buf *trace.BufferTracer
	if j.trace {
		buf = trace.NewBuffer()
		opts.Tracer = buf
	}
	c, err := asyncsyn.SynthesizeContext(ctx, j.stg, opts)
	resp, status := buildResponse(c, err)
	resp.Signature = j.sig
	if buf != nil {
		resp.Trace = buf.Events()
	}
	if s.rundb != nil && c != nil && err == nil {
		resp.Run = s.recordRun(c, j)
	}
	return resp, status
}

// recordRun banks one completed synthesis in the run database and
// returns the record id (empty when the write failed — history is
// best-effort, the response is not). A digest that diverged from the
/// banked record under an unchanged key is a determinism regression:
// it stays flagged on the record and bumps the divergence counter so
// a scrape catches it the moment it appears.
func (s *Server) recordRun(c *asyncsyn.Circuit, j *job) string {
	rec := rundb.RecordOf(c, j.canon, rundb.OptionsOf(j.opts))
	rec.Bench = j.bench
	if _, err := s.rundb.Record(rec); err != nil {
		return ""
	}
	s.stats.runsRecorded.Add(1)
	if rec.Divergent {
		s.stats.runDivergences.Add(1)
	}
	return rec.ID
}

/// buildResponse maps a facade outcome to the wire: errors classify
// through synerr.ClassOf; a budget abort (Circuit.Aborted) answers 422
// with the partial statistics, mirroring the paper's Table 1 rows that
// print aborted runs.
func buildResponse(c *asyncsyn.Circuit, err error) (*Response, int) {
	resp := &Response{}
	status := http.StatusOK
	if err != nil {
		class := synerr.ClassOf(err)
		resp.Error, resp.Class = err.Error(), class.String()
		status = class.HTTPStatus()
	}
	if c == nil {
		return resp, status
	}
	if err == nil && c.Aborted {
		resp.Error = asyncsyn.ErrBacktrackLimit.Error()
		resp.Class = synerr.ClassUnsolvable.String()
		status = synerr.ClassUnsolvable.HTTPStatus()
	}
	resp.Model, resp.Method = c.Name, c.Method.String()
	resp.Aborted = c.Aborted
	resp.InitialStates, resp.InitialSignals = c.InitialStates, c.InitialSignals
	resp.FinalStates, resp.FinalSignals = c.FinalStates, c.FinalSignals
	resp.StateSignals, resp.Area = c.StateSignals, c.Area
	resp.CPUMS = float64(c.CPU) / float64(time.Millisecond)
	resp.Counters = c.Counters
	if !c.Aborted && err == nil {
		resp.Digest = c.Digest()
	}
	for _, f := range c.Functions {
		resp.Functions = append(resp.Functions, FunctionJSON{
			Name: f.Name, Inputs: f.Inputs, SOP: f.SOP(), Literals: f.Literals(),
		})
	}
	for _, m := range c.Modules {
		resp.Modules = append(resp.Modules, ModuleJSON{
			Output: m.Output, InputSet: m.InputSet, MergedStates: m.MergedStates,
			Conflicts: m.Conflicts, NewSignals: m.NewSignals, Widened: m.Widened,
		})
	}
	for _, st := range c.Stages {
		resp.Stages = append(resp.Stages, StageJSON{
			Name: st.Name, MS: float64(st.Duration) / float64(time.Millisecond),
			Counters: st.Counters,
		})
	}
	return resp, status
}

// errorResponse wraps a bare error for the wire.
func errorResponse(err error) *Response {
	class := synerr.ClassOf(err)
	return &Response{Error: err.Error(), Class: class.String()}
}

// handleSynthesize is POST /v1/synthesize.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, err := s.parseRequest(r)
	if err != nil {
		class := synerr.ClassOf(err)
		s.writeJSON(w, class.HTTPStatus(), errorResponse(err), start)
		return
	}

	j, deduped, status := s.admit(req)
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		s.writeJSON(w, status, &Response{
			Error: "synthesis queue full", Class: "overload",
		}, start)
		return
	case http.StatusServiceUnavailable:
		s.writeJSON(w, status, &Response{
			Error: "daemon is draining", Class: "draining",
		}, start)
		return
	}

	if req.async {
		s.writeJSON(w, http.StatusAccepted, &Response{
			Job: j.id, Status: j.getState().String(), Deduped: deduped,
			Signature: j.sig,
		}, start)
		return
	}

	resp, status, werr := j.wait(r.Context())
	if werr != nil {
		// The client went away; the shared run continues for other
		// waiters and the cache. 499 is recorded, nothing useful can be
		// written.
		s.record(synerr.StatusClientClosed, start)
		return
	}
	out := *resp // shallow copy so shared waiters don't race on Deduped
	out.Deduped = deduped
	s.writeJSON(w, status, &out, start)
}

// handleJob is GET /v1/jobs/{id}: 202 with queued/running while the
// job is live, the job's own outcome status with the full response
// once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, &Response{
			Error: "no such job", Class: "not_found",
		}, start)
		return
	}
	if st := j.getState(); st != jobDone {
		s.writeJSON(w, http.StatusAccepted, &Response{Job: j.id, Status: st.String(), Signature: j.sig}, start)
		return
	}
	resp, status := j.outcome()
	out := *resp
	out.Job, out.Status = j.id, jobDone.String()
	s.writeJSON(w, status, &out, start)
}

// handleBenchmarks is GET /v1/benchmarks: the embedded benchmark names
// accepted by Request.Bench.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.writeJSON(w, http.StatusOK, map[string][]string{"benchmarks": bench.Available()}, start)
}

// writeJSON emits one response and records its status and latency.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any, start time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
	s.record(status, start)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
