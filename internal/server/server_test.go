package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"asyncsyn"
	"asyncsyn/internal/bench"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postSynth(t *testing.T, h http.Handler, body string, query string) (*Response, *httptest.ResponseRecorder) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/synthesize"+query, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON (status %d): %v\n%s", w.Code, err, w.Body.String())
	}
	return &resp, w
}

// quickNames is the small Table 1 subset (the bench suite's -quick
// selection): every benchmark whose paper initial state count is ≤ 100.
func quickNames() []string {
	var names []string
	for _, e := range bench.Table1 {
		if e.InitialStates <= 100 {
			names = append(names, e.Name)
		}
	}
	return names
}

func metricValue(t *testing.T, h http.Handler, name string) int64 {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(w.Body.String())
	if m == nil {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDigestParityAndWarmCache is the tentpole acceptance test: a warm
// daemon run of the quick benchmark set returns circuits bit-identical
// (same determinism digests) to the direct library path, and the warm
// pass reports modcache_hits > 0 on /metrics.
func TestDigestParityAndWarmCache(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})
	h := s.Handler()

	names := quickNames()
	if len(names) == 0 {
		t.Fatal("empty quick set")
	}
	// Direct library path: per-benchmark digests with caching disabled,
	// the reference the HTTP responses must reproduce bit for bit.
	want := make(map[string]string, len(names))
	for _, name := range names {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		stg, err := asyncsyn.ParseSTGString(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := asyncsyn.Synthesize(stg, asyncsyn.Options{DisableSolveCache: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = c.Digest()
	}

	for pass := 1; pass <= 2; pass++ {
		for _, name := range names {
			resp, w := postSynth(t, h, fmt.Sprintf(`{"bench":%q}`, name), "")
			if w.Code != http.StatusOK {
				t.Fatalf("pass %d %s: status %d: %s", pass, name, w.Code, w.Body.String())
			}
			if resp.Digest != want[name] {
				t.Errorf("pass %d %s: HTTP digest %s != library digest %s", pass, name, resp.Digest, want[name])
			}
		}
	}
	if hits := metricValue(t, h, "asyncsyn_modcache_hits"); hits == 0 {
		t.Error("warm pass reported no modcache_hits on /metrics")
	}
	if admitted := metricValue(t, h, "modsynd_admitted_total"); admitted != int64(2*len(names)) {
		t.Errorf("admitted_total = %d, want %d", admitted, 2*len(names))
	}
}

// blockingRun substitutes Server.run with a stub that blocks until
// released, so admission/dedup/drain mechanics are pinned without
// real synthesis timing.
type blockingRun struct {
	mu      sync.Mutex
	started chan string   // receives a job key when a run begins
	release chan struct{} // close to let every run finish
	runs    int
}

func newBlockingRun() *blockingRun {
	return &blockingRun{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRun) run(ctx context.Context, j *job) (*Response, int) {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	b.started <- j.key
	select {
	case <-b.release:
		return &Response{Model: "stub", Digest: "stub-" + j.key}, http.StatusOK
	case <-ctx.Done():
		return errorResponse(asyncsyn.ErrCanceled), 499
	}
}

func (b *blockingRun) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

const stubSTG = `{"stg":".model m\n.outputs b\n.graph\nb+ b-\nb- b+\n.marking { <b-,b+> }\n.end"}`

// distinct request bodies: vary workers so content keys differ.
func stubReq(i int) string {
	return fmt.Sprintf(`{"workers":%d,"stg":".model m\n.outputs b\n.graph\nb+ b-\nb- b+\n.marking { <b-,b+> }\n.end"}`, i+1)
}

// TestOverloadReturns429 pins admission control: with one slot and no
// queue, a second distinct request is rejected with 429 and a
// Retry-After header instead of queueing unboundedly.
func TestOverloadReturns429(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true, RetryAfter: 2 * time.Second})
	b := newBlockingRun()
	s.run = b.run
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		_, w := postSynth(t, h, stubReq(0), "")
		done <- w
	}()
	<-b.started // first job occupies the only slot

	resp, w := postSynth(t, h, stubReq(1), "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if resp.Class != "overload" {
		t.Errorf("class = %q, want overload", resp.Class)
	}

	close(b.release)
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", w.Code)
	}
	if rej := metricValue(t, h, "modsynd_rejected_total"); rej != 1 {
		t.Errorf("rejected_total = %d, want 1", rej)
	}
}

// TestQueueAdmitsThenRejects pins the queue bound: MaxInFlight=1 and
// QueueDepth=1 admit two jobs (one running, one queued); the third is
// rejected.
func TestQueueAdmitsThenRejects(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1})
	b := newBlockingRun()
	s.run = b.run
	h := s.Handler()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, w := postSynth(t, h, stubReq(i), "")
			codes[i] = w.Code
		}(i)
	}
	<-b.started // one running; wait until the other is queued
	waitFor(t, func() bool { return s.stats.queued.Load() == 1 })

	_, w := postSynth(t, h, stubReq(2), "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", w.Code)
	}

	close(b.release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d status = %d, want 200", i, c)
		}
	}
}

// TestDedupSharesOneRun pins singleflight: identical concurrent
// requests run once; the joiner's response is flagged deduped.
func TestDedupSharesOneRun(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 4})
	b := newBlockingRun()
	s.run = b.run
	h := s.Handler()

	type out struct {
		resp *Response
		code int
	}
	results := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, w := postSynth(t, h, stubSTG, "")
			results <- out{resp, w.Code}
		}()
		if i == 0 {
			<-b.started // ensure the first is in flight before the second posts
		}
	}
	waitFor(t, func() bool { return s.stats.deduped.Load() == 1 })
	close(b.release)

	var deduped int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("status %d, want 200", r.code)
		}
		if r.resp.Deduped {
			deduped++
		}
	}
	if deduped != 1 {
		t.Errorf("deduped responses = %d, want 1", deduped)
	}
	if b.count() != 1 {
		t.Errorf("runs = %d, want 1", b.count())
	}
	if d := metricValue(t, h, "modsynd_deduped_total"); d != 1 {
		t.Errorf("deduped_total = %d, want 1", d)
	}
}

// TestShutdownDrains pins graceful shutdown: admission stops (503 on
// new work and on healthz), Shutdown blocks until the in-flight job
// finishes, and the job's waiter still receives its 200.
func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	b := newBlockingRun()
	s.run = b.run
	h := s.Handler()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		_, w := postSynth(t, h, stubReq(0), "")
		done <- w
	}()
	<-b.started

	shutdownDone := make(chan error, 1)
	go func() {
		shutdownDone <- s.Shutdown(context.Background())
	}()
	waitFor(t, func() bool { return s.draining() })

	// New work and liveness answer 503 while draining.
	if _, w := postSynth(t, h, stubReq(1), ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", w.Code)
	}
	hw := httptest.NewRecorder()
	h.ServeHTTP(hw, httptest.NewRequest("GET", "/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hw.Code)
	}

	// Shutdown must not complete while the job is still running.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(b.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("drained job status = %d, want 200", w.Code)
	}
}

// TestShutdownForcedCancel pins the drain deadline: a job that never
// finishes is canceled through the base context and Shutdown returns
// the deadline error.
func TestShutdownForcedCancel(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	b := newBlockingRun() // never released
	s.run = b.run
	h := s.Handler()

	go func() {
		req := httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(stubReq(0)))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-b.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
}

// TestStatusMapping exercises the HTTP error paths end to end.
func TestStatusMapping(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})
	h := s.Handler()
	cases := []struct {
		name  string
		body  string
		code  int
		class string
	}{
		{"bad-json", `{`, http.StatusBadRequest, "parse"},
		{"unknown-field", `{"nope":1}`, http.StatusBadRequest, "parse"},
		{"no-spec", `{}`, http.StatusBadRequest, "parse"},
		{"both-specs", `{"stg":"x","bench":"fifo"}`, http.StatusBadRequest, "parse"},
		{"unknown-bench", `{"bench":"zzz"}`, http.StatusBadRequest, "parse"},
		{"bad-stg", `{"stg":".model m\ngarbage"}`, http.StatusBadRequest, "parse"},
		{"bad-method", `{"bench":"fifo","method":"magic"}`, http.StatusBadRequest, "parse"},
		{"bad-engine", `{"bench":"fifo","engine":"oracle"}`, http.StatusBadRequest, "parse"},
		{"bad-timeout", `{"bench":"fifo","timeout":"soon"}`, http.StatusBadRequest, "parse"},
		{"budget", `{"bench":"fifo","max_backtracks":1,"engine":"walksat"}`, http.StatusUnprocessableEntity, "unsolvable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, w := postSynth(t, h, tc.body, "")
			if w.Code != tc.code {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.code, w.Body.String())
			}
			if resp.Class != tc.class {
				t.Errorf("class = %q, want %q", resp.Class, tc.class)
			}
		})
	}
}

// TestTimeoutReturns408 pins the per-request deadline: an
// unrealistically small timeout classifies as timeout (408).
func TestTimeoutReturns408(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	h := s.Handler()
	resp, w := postSynth(t, h, `{"bench":"mr0","timeout":"1ns"}`, "")
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (%s)", w.Code, w.Body.String())
	}
	if resp.Class != "timeout" {
		t.Errorf("class = %q, want timeout", resp.Class)
	}
}

// TestAsyncJobLifecycle pins the async path: 202 with a job id, poll
// to completion, full result with digest.
func TestAsyncJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})
	h := s.Handler()

	resp, w := postSynth(t, h, `{"bench":"fifo","async":true}`, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("async POST status = %d, want 202", w.Code)
	}
	if resp.Job == "" {
		t.Fatal("async POST returned no job id")
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		req := httptest.NewRequest("GET", "/v1/jobs/"+resp.Job, nil)
		jw := httptest.NewRecorder()
		h.ServeHTTP(jw, req)
		var jr Response
		if err := json.Unmarshal(jw.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == "done" {
			if jw.Code != http.StatusOK {
				t.Fatalf("done job status = %d, want 200", jw.Code)
			}
			if jr.Digest == "" || jr.Model != "fifo" {
				t.Fatalf("incomplete async result: %+v", jr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unknown job id answers 404.
	req := httptest.NewRequest("GET", "/v1/jobs/nope", nil)
	jw := httptest.NewRecorder()
	h.ServeHTTP(jw, req)
	if jw.Code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", jw.Code)
	}
}

// TestTraceSection pins ?trace=1: the response carries the run's
// JSON-lines events, absent otherwise.
func TestTraceSection(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	h := s.Handler()

	resp, w := postSynth(t, h, `{"bench":"fifo"}`, "?trace=1")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", w.Code, w.Body.String())
	}
	if len(resp.Trace) == 0 {
		t.Fatal("?trace=1 returned no trace events")
	}
	var ev struct {
		Type  string `json:"type"`
		Stage string `json:"stage"`
	}
	if err := json.Unmarshal(resp.Trace[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != "stage_start" {
		t.Errorf("first trace event type = %q, want stage_start", ev.Type)
	}

	resp, _ = postSynth(t, h, `{"bench":"fifo"}`, "")
	if len(resp.Trace) != 0 {
		t.Error("untraced request returned trace events")
	}
}

// TestDiskCacheWarmRestart pins that a -cachedir daemon restart stays
// warm: a fresh server over the same directory answers with cache hits
// and identical digests.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{MaxInFlight: 1, CacheDir: dir})
	resp1, w1 := postSynth(t, s1.Handler(), `{"bench":"fifo"}`, "")
	if w1.Code != http.StatusOK {
		t.Fatalf("cold status %d", w1.Code)
	}

	s2 := newTestServer(t, Config{MaxInFlight: 1, CacheDir: dir})
	h2 := s2.Handler()
	resp2, w2 := postSynth(t, h2, `{"bench":"fifo"}`, "")
	if w2.Code != http.StatusOK {
		t.Fatalf("warm status %d", w2.Code)
	}
	if resp1.Digest != resp2.Digest {
		t.Errorf("digest drifted across restart: %s != %s", resp1.Digest, resp2.Digest)
	}
	if hits := metricValue(t, h2, "asyncsyn_modcache_hits"); hits == 0 {
		t.Error("restarted daemon answered without disk-cache hits")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
