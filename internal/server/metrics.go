package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/synerr"
)

// statusCodes are the response codes the daemon can produce; each gets
// its own labelled requests_total series (anything else lands in the
// final bucket, labelled "other").
var statusCodes = [...]int{
	http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
	http.StatusNotFound, http.StatusRequestTimeout,
	http.StatusUnprocessableEntity, http.StatusTooManyRequests,
	synerr.StatusClientClosed, http.StatusInternalServerError,
	http.StatusServiceUnavailable,
}

// latencyBounds are the histogram's upper bounds in seconds.
var latencyBounds = [...]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// stats holds the server-level counters exposed on /metrics alongside
// the shared synthesis collector. All fields are atomics; the struct
// is shared by every handler goroutine.
type stats struct {
	inflight atomic.Int64 // jobs currently running
	queued   atomic.Int64 // admitted jobs waiting for a slot
	admitted atomic.Int64 // jobs accepted (running or queued)
	rejected atomic.Int64 // requests answered 429
	deduped  atomic.Int64 // requests that joined an identical in-flight job

	runsRecorded   atomic.Int64 // completed runs banked in the run database
	runDivergences atomic.Int64 // banked runs whose digest moved under an unchanged key

	byStatus [len(statusCodes) + 1]atomic.Int64
	latency  [len(latencyBounds) + 1]atomic.Int64 // +Inf bucket last
	latCount atomic.Int64
	latSumUS atomic.Int64 // microseconds, rendered as seconds
}

func newStats() *stats { return &stats{} }

// record counts one finished HTTP request.
func (s *Server) record(status int, start time.Time) {
	st := s.stats
	idx := len(statusCodes)
	for i, c := range statusCodes {
		if c == status {
			idx = i
			break
		}
	}
	st.byStatus[idx].Add(1)
	d := time.Since(start)
	sec := d.Seconds()
	b := len(latencyBounds)
	for i, ub := range latencyBounds {
		if sec <= ub {
			b = i
			break
		}
	}
	st.latency[b].Add(1)
	st.latCount.Add(1)
	st.latSumUS.Add(d.Microseconds())
}

// handleMetrics is GET /metrics: Prometheus text exposition of the
// server gauges/counters/histogram followed by the shared synthesis
// counters (asyncsyn_* — the internal/metrics schema names).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.stats
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("modsynd_in_flight", "Synthesis jobs currently running.", st.inflight.Load())
	gauge("modsynd_queue_depth", "Admitted jobs waiting for a free slot.", st.queued.Load())
	counter("modsynd_admitted_total", "Jobs admitted (run or queued).", st.admitted.Load())
	counter("modsynd_rejected_total", "Requests rejected with 429 (queue full).", st.rejected.Load())
	counter("modsynd_deduped_total", "Requests that joined an identical in-flight job.", st.deduped.Load())
	counter("modsynd_runs_recorded_total", "Completed runs banked in the run database.", st.runsRecorded.Load())
	counter("modsynd_run_divergences_total", "Banked runs whose digest changed under an unchanged key.", st.runDivergences.Load())

	fmt.Fprintf(w, "# HELP modsynd_requests_total Finished HTTP requests by status code.\n")
	fmt.Fprintf(w, "# TYPE modsynd_requests_total counter\n")
	for i, c := range statusCodes {
		fmt.Fprintf(w, "modsynd_requests_total{code=%q} %d\n", fmt.Sprint(c), st.byStatus[i].Load())
	}
	fmt.Fprintf(w, "modsynd_requests_total{code=\"other\"} %d\n", st.byStatus[len(statusCodes)].Load())

	fmt.Fprintf(w, "# HELP modsynd_request_seconds HTTP request latency.\n")
	fmt.Fprintf(w, "# TYPE modsynd_request_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBounds {
		cum += st.latency[i].Load()
		fmt.Fprintf(w, "modsynd_request_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += st.latency[len(latencyBounds)].Load()
	fmt.Fprintf(w, "modsynd_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "modsynd_request_seconds_sum %g\n", float64(st.latSumUS.Load())/1e6)
	fmt.Fprintf(w, "modsynd_request_seconds_count %d\n", st.latCount.Load())

	// asyncsyn.Metrics is an alias for the internal collector, so the
	// exposition writer takes it directly.
	metrics.WriteProm(w, "asyncsyn_", s.collector)
}
