package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"asyncsyn/internal/modcache"
)

// Cache exchange: the two endpoints that make a shard's solve cache
// addressable by its peers, plus the client half (peerClient) that a
// node configured with Config.Peers plugs into its cache as the
// modcache.Remote tier.
//
// The wire format is exactly the content-addressed on-disk record
// (modcache.EncodeRecord): {key} is modcache.RecordDigest of the
// solve's full cache key, so a record keeps one identity on disk, in
// memory, and on the wire. Both directions re-validate the record —
// schema, parseability, and digest/key agreement — so a corrupt or
// mismatched record is a clean miss (GET 404, PUT 400), never a wrong
// cache entry.

// handleCacheGet is GET /v1/cache/{key}: the encoded solve-cache
// record named by the digest, 404 when this node doesn't hold it.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.cache == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, &Response{
			Error: "solve cache disabled", Class: "cache_disabled",
		}, start)
		return
	}
	rec, ok := s.cache.Export(r.PathValue("key"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, &Response{
			Error: "no such cache record", Class: "not_found",
		}, start)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(rec)
	s.record(http.StatusOK, start)
}

// handleCachePut is PUT /v1/cache/{key}: accept a record pushed by a
// peer (or an operator warming a fresh node). The record must decode
// and its key's digest must match the path.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.cache == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, &Response{
			Error: "solve cache disabled", Class: "cache_disabled",
		}, start)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBody))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, &Response{
			Error: "request body: " + err.Error(), Class: "parse",
		}, start)
		return
	}
	digest, err := s.cache.Import(body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, &Response{
			Error: err.Error(), Class: "parse",
		}, start)
		return
	}
	if want := r.PathValue("key"); digest != want {
		s.writeJSON(w, http.StatusBadRequest, &Response{
			Error: fmt.Sprintf("record digest %s does not match path key %s", digest, want),
			Class: "parse",
		}, start)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"key": digest}, start)
}

// normalizePeers validates peer base URLs, defaulting a bare host:port
// to http.
func normalizePeers(peers []string) ([]string, error) {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		u, err := url.Parse(p)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return nil, fmt.Errorf("server: bad peer %q", p)
		}
		out = append(out, strings.TrimRight(p, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("server: no usable peers")
	}
	return out, nil
}

// peerClient implements modcache.Remote over the cache-exchange
// endpoints of sibling nodes: a fetch tries each peer in order and
// returns the first record that validates against the requested key.
type peerClient struct {
	peers   []string
	timeout time.Duration
	client  *http.Client
}

func newPeerClient(peers []string, timeout time.Duration) *peerClient {
	return &peerClient{
		peers:   peers,
		timeout: timeout,
		client:  &http.Client{Timeout: timeout},
	}
}

// Fetch implements modcache.Remote. Any transport error, non-200
// status, or validation failure on one peer moves on to the next; a
// nil entry with a non-nil error after the last peer reads as a miss.
func (p *peerClient) Fetch(ctx context.Context, key modcache.Key) (*modcache.Entry, error) {
	digest := modcache.RecordDigest(key)
	var lastErr error = fmt.Errorf("no peer holds %s", digest)
	for _, peer := range p.peers {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		e, err := p.fetchOne(ctx, peer, digest, key)
		if err == nil {
			return e, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (p *peerClient) fetchOne(ctx context.Context, peer, digest string, key modcache.Key) (*modcache.Entry, error) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	k, e, err := modcache.DecodeRecord(body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", peer, err)
	}
	if k != key {
		return nil, fmt.Errorf("peer %s: record key mismatch for %s", peer, digest)
	}
	return e, nil
}
