package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"asyncsyn"
)

// jobState tracks a job through its lifecycle.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
)

func (st jobState) String() string {
	switch st {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	}
	return "done"
}

// job is one admitted synthesis run. Several requests may share a job
// (dedup); exactly one goroutine executes it.
type job struct {
	id  string
	key string // content hash of (STG text, options)

	stg   *asyncsyn.STG
	canon string // canonical STG rendering (run-database content key)
	sig   string // canonical problem signature (reported on responses)
	bench string // embedded benchmark name, when the request used one
	opts  asyncsyn.Options
	trace bool

	mu    sync.Mutex
	state jobState
	// resp and status are the outcome, valid once done is closed.
	resp   *Response
	status int
	done   chan struct{}
}

func (j *job) setState(st jobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) getState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) finish(resp *Response, status int) {
	j.mu.Lock()
	j.state = jobDone
	j.resp = resp
	j.status = status
	j.mu.Unlock()
	close(j.done)
}

// outcome returns the finished job's response and status (call only
// after done is closed).
func (j *job) outcome() (*Response, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resp, j.status
}

// admit registers a new job for req or joins an identical in-flight
// one. On success the returned job is (or will be) executing and the
// caller waits on job.done. A zero httpStatus means admitted; 429
// means the queue is full (Retry-After applies), 503 means the daemon
// is draining. deduped reports that an existing job was joined.
func (s *Server) admit(req *parsedRequest) (j *job, deduped bool, httpStatus int) {
	if s.draining() {
		return nil, false, http.StatusServiceUnavailable
	}

	s.mu.Lock()
	if live, ok := s.flights[req.key]; ok {
		s.mu.Unlock()
		s.stats.deduped.Add(1)
		return live, true, 0
	}

	// Admission control under s.mu (serialized with other admissions):
	// take a running slot if one is free, otherwise a queue position if
	// the queue has room, otherwise reject.
	running := false
	select {
	case s.slots <- struct{}{}:
		running = true
	default:
		if int(s.stats.queued.Load()) >= s.cfg.QueueDepth {
			s.mu.Unlock()
			s.stats.rejected.Add(1)
			return nil, false, http.StatusTooManyRequests
		}
		s.stats.queued.Add(1)
	}

	s.seq++
	j = &job{
		id:    fmt.Sprintf("j%06d-%s", s.seq, req.key[:8]),
		key:   req.key,
		stg:   req.stg,
		canon: req.canon,
		sig:   req.sig,
		bench: req.bench,
		opts:  req.opts,
		trace: req.trace,
		done:  make(chan struct{}),
	}
	if running {
		j.state = jobRunning
	}
	s.flights[req.key] = j
	s.jobs.put(j)
	s.stats.admitted.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.execute(j, running)
	return j, false, 0
}

// execute drives one admitted job: wait for a slot if queued, run,
// publish the outcome, release the slot.
func (s *Server) execute(j *job, haveSlot bool) {
	defer s.wg.Done()
	if !haveSlot {
		select {
		case s.slots <- struct{}{}:
			s.stats.queued.Add(-1)
			j.setState(jobRunning)
		case <-s.baseCtx.Done():
			// Forced shutdown while still queued.
			s.stats.queued.Add(-1)
			s.unflight(j)
			j.finish(errorResponse(asyncsyn.ErrCanceled), http.StatusServiceUnavailable)
			return
		}
	}
	s.stats.inflight.Add(1)
	resp, status := s.run(s.baseCtx, j)
	s.unflight(j)
	j.finish(resp, status)
	s.stats.inflight.Add(-1)
	<-s.slots
}

// unflight removes the job from the dedup table; later identical
// requests start fresh runs (answered cheaply by the solve cache).
func (s *Server) unflight(j *job) {
	s.mu.Lock()
	delete(s.flights, j.key)
	s.mu.Unlock()
}

// wait blocks until the job finishes or the waiter's context ends.
// A waiter abandoning a shared job does not cancel it: other waiters —
// and the cache warm-up — still profit from the run.
func (j *job) wait(ctx context.Context) (*Response, int, error) {
	select {
	case <-j.done:
		resp, status := j.outcome()
		return resp, status, nil
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// jobStore retains jobs for GET /v1/jobs/{id}: all live jobs plus the
// most recent cap finished ones (older finished jobs are evicted in
// insertion order).
type jobStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*job
	order []*job
}

func newJobStore(cap int) *jobStore {
	return &jobStore{cap: cap, byID: make(map[string]*job)}
}

func (st *jobStore) put(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byID[j.id] = j
	st.order = append(st.order, j)
	for len(st.order) > st.cap {
		evicted := false
		for i, old := range st.order {
			if old.getState() == jobDone {
				delete(st.byID, old.id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every retained job still live; keep them all
		}
	}
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}
