package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/rundb"
)

func getJSON(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s (status %d): %v\n%s", path, w.Code, err, w.Body.String())
		}
	}
	return w
}

// TestRunsAPI drives the daemon's run-history surface end to end: a
// synthesis on a rundb-enabled server reports its signature and run
// id, the run is listable (filtered and paginated) and fetchable, the
// banked digest matches the response digest, and /metrics counts the
// recording.
func TestRunsAPI(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2, RunDBDir: t.TempDir()})
	h := s.Handler()

	resp, w := postThrough(t, h, "fifo")
	if w.Code != http.StatusOK {
		t.Fatalf("synthesize: status %d: %s", w.Code, w.Body.String())
	}
	src, err := bench.Source("fifo")
	if err != nil {
		t.Fatal(err)
	}
	g, err := asyncsyn.ParseSTGString(src)
	if err != nil {
		t.Fatal(err)
	}
	wantSig := rundb.Signature(g.Format())
	if resp.Signature != wantSig {
		t.Fatalf("response signature %s != canonical %s", resp.Signature, wantSig)
	}
	if resp.Run == "" {
		t.Fatal("rundb-enabled synthesis response carries no run id")
	}

	resp2, w := postThrough(t, h, "nak-pa")
	if w.Code != http.StatusOK {
		t.Fatalf("synthesize nak-pa: status %d", w.Code)
	}

	var page RunsResponse
	if w := getJSON(t, h, "/v1/runs", &page); w.Code != http.StatusOK {
		t.Fatalf("/v1/runs status %d", w.Code)
	}
	if page.Total != 2 || len(page.Runs) != 2 {
		t.Fatalf("/v1/runs: total=%d len=%d, want 2/2", page.Total, len(page.Runs))
	}
	// Newest first: nak-pa ran second.
	if page.Runs[0].ID != resp2.Run || page.Runs[1].ID != resp.Run {
		t.Fatalf("/v1/runs order: got %s, %s; want %s, %s",
			page.Runs[0].ID, page.Runs[1].ID, resp2.Run, resp.Run)
	}

	// Signature filter narrows to the fifo run.
	if w := getJSON(t, h, "/v1/runs?signature="+wantSig, &page); w.Code != http.StatusOK {
		t.Fatalf("filtered /v1/runs status %d", w.Code)
	}
	if page.Total != 1 || len(page.Runs) != 1 || page.Runs[0].ID != resp.Run {
		t.Fatalf("signature filter returned %+v", page)
	}
	if page.Runs[0].Digest != resp.Digest {
		t.Fatalf("banked digest %s != response digest %s", page.Runs[0].Digest, resp.Digest)
	}

	// Bench-name filter matches the recorded Bench field.
	if w := getJSON(t, h, "/v1/runs?model=nak-pa", &page); w.Code != http.StatusOK || page.Total != 1 {
		t.Fatalf("model filter: status %d total %d", w.Code, page.Total)
	}

	// Pagination: limit=1 windows the newest, offset=1 the next.
	if getJSON(t, h, "/v1/runs?limit=1", &page); page.Total != 2 || len(page.Runs) != 1 || page.Runs[0].ID != resp2.Run {
		t.Fatalf("limit=1 page: %+v", page)
	}
	if getJSON(t, h, "/v1/runs?limit=1&offset=1", &page); len(page.Runs) != 1 || page.Runs[0].ID != resp.Run {
		t.Fatalf("offset=1 page: %+v", page)
	}
	if w := getJSON(t, h, "/v1/runs?limit=bogus", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bogus limit answered %d, want 400", w.Code)
	}

	// The full record by id carries the payload the summary omits.
	var rec rundb.Record
	if w := getJSON(t, h, "/v1/runs/"+resp.Run, &rec); w.Code != http.StatusOK {
		t.Fatalf("/v1/runs/{id} status %d", w.Code)
	}
	if rec.Digest != resp.Digest || rec.Signature != wantSig || len(rec.Functions) == 0 {
		t.Fatalf("full record mismatch: %+v", rec)
	}
	if w := getJSON(t, h, "/v1/runs/r999999-nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown run answered %d, want 404", w.Code)
	}

	if n := metricValue(t, h, "modsynd_runs_recorded_total"); n != 2 {
		t.Fatalf("modsynd_runs_recorded_total = %d, want 2", n)
	}
	if n := metricValue(t, h, "modsynd_run_divergences_total"); n != 0 {
		t.Fatalf("modsynd_run_divergences_total = %d, want 0", n)
	}
}

// TestRunsDisabled pins the no-database contract: both endpoints
// answer 503 rundb_disabled, and synthesis responses carry a signature
// but no run id.
func TestRunsDisabled(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	h := s.Handler()

	var resp Response
	if w := getJSON(t, h, "/v1/runs", &resp); w.Code != http.StatusServiceUnavailable || resp.Class != "rundb_disabled" {
		t.Fatalf("/v1/runs without a database: status %d class %q", w.Code, resp.Class)
	}
	if w := getJSON(t, h, "/v1/runs/r000001-x", &resp); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/runs/{id} without a database: status %d", w.Code)
	}

	sresp, w := postThrough(t, h, "fifo")
	if w.Code != http.StatusOK {
		t.Fatalf("synthesize: status %d", w.Code)
	}
	if sresp.Signature == "" {
		t.Fatal("signature missing from response without a run database")
	}
	if sresp.Run != "" {
		t.Fatalf("run id %q reported without a run database", sresp.Run)
	}
}

// TestRunHistorySurvivesRestart pins persistence: a new server over
// the same directory serves the previous server's history.
func TestRunHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{MaxInFlight: 1, RunDBDir: dir})
	resp, w := postThrough(t, s1.Handler(), "fifo")
	if w.Code != http.StatusOK {
		t.Fatalf("synthesize: status %d", w.Code)
	}

	s2 := newTestServer(t, Config{MaxInFlight: 1, RunDBDir: dir})
	var page RunsResponse
	if w := getJSON(t, s2.Handler(), "/v1/runs", &page); w.Code != http.StatusOK {
		t.Fatalf("/v1/runs after restart: status %d", w.Code)
	}
	if page.Total != 1 || page.Runs[0].ID != resp.Run {
		t.Fatalf("history lost across restart: %+v", page)
	}
	var rec rundb.Record
	if w := getJSON(t, s2.Handler(), "/v1/runs/"+resp.Run, &rec); w.Code != http.StatusOK || rec.Digest != resp.Digest {
		t.Fatalf("record fetch after restart: status %d digest %s want %s", w.Code, rec.Digest, resp.Digest)
	}
}

// TestRouterRunsMerge drives the router's cluster view: runs recorded
// on separate shards merge into one newest-first page, and
// /v1/runs/{id} finds the owning shard by broadcast.
func TestRouterRunsMerge(t *testing.T) {
	shardA := startShard(t, Config{MaxInFlight: 1, RunDBDir: t.TempDir()})
	shardB := startShard(t, Config{MaxInFlight: 1, RunDBDir: t.TempDir()})
	rt, err := NewRouter(RouterConfig{Shards: []string{shardA.ts.URL, shardB.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	// Route enough distinct problems through the router that both
	// shards own at least one (the quick set spreads over the ring).
	names := quickNames()
	ids := make(map[string]string, len(names))
	for _, name := range names {
		resp, w := postThrough(t, h, name)
		if w.Code != http.StatusOK {
			t.Fatalf("%s through router: status %d", name, w.Code)
		}
		if resp.Run == "" {
			t.Fatalf("%s through router: no run id", name)
		}
		ids[name] = resp.Run
	}

	var page RunsResponse
	if w := getJSON(t, h, fmt.Sprintf("/v1/runs?limit=%d", len(names)), &page); w.Code != http.StatusOK {
		t.Fatalf("router /v1/runs: status %d", w.Code)
	}
	if page.Total != len(names) || len(page.Runs) != len(names) {
		t.Fatalf("router merge: total=%d len=%d, want %d", page.Total, len(page.Runs), len(names))
	}
	for i := 1; i < len(page.Runs); i++ {
		if page.Runs[i-1].UnixMS < page.Runs[i].UnixMS {
			t.Fatalf("merged page not newest-first at %d", i)
		}
	}

	// Every run resolves through the broadcast, whichever shard owns it.
	for name, id := range ids {
		var rec rundb.Record
		if w := getJSON(t, h, "/v1/runs/"+id, &rec); w.Code != http.StatusOK {
			t.Fatalf("router /v1/runs/%s (%s): status %d", id, name, w.Code)
		}
		if rec.Bench != name {
			t.Fatalf("run %s: bench %q, want %q", id, rec.Bench, name)
		}
	}
	if w := getJSON(t, h, "/v1/runs/r999999-nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("router unknown run: status %d, want 404", w.Code)
	}
}
