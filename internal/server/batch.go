package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"asyncsyn/internal/synerr"
)

// BatchRequest is the POST /v1/batch body: an STG suite admitted in
// one HTTP request. Entries are independent Request values (async is
// ignored — a batch is synchronous by construction; poll jobs
// individually if you need async).
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchEntry is one entry's outcome inside a BatchResponse: the same
// envelope a single POST /v1/synthesize would have returned, plus the
// HTTP status it would have carried.
type BatchEntry struct {
	Status int `json:"status"`
	Response
}

// BatchResponse answers POST /v1/batch; Responses aligns with the
// request's Requests by index.
type BatchResponse struct {
	Responses []BatchEntry `json:"responses"`
}

// handleBatch is POST /v1/batch: parse every entry, admit the valid
// ones through the normal admission path (a full queue rejects an
// entry with a per-entry 429 instead of failing the batch), wait for
// all, and answer per-entry statuses in request order. The batch
// itself answers 200 unless the body is undecodable (400), too large
// (400), over the entry cap (400), or the daemon is draining (503).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse(synerr.Parse(fmt.Errorf("request body: %w", err))), start)
		return
	}
	if len(breq.Requests) == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorResponse(synerr.Parse(fmt.Errorf(`"requests" must not be empty`))), start)
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatch {
		s.writeJSON(w, http.StatusBadRequest, errorResponse(synerr.Parse(
			fmt.Errorf("batch of %d exceeds the %d-entry cap", len(breq.Requests), s.cfg.MaxBatch))), start)
		return
	}
	if s.draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, &Response{
			Error: "daemon is draining", Class: "draining",
		}, start)
		return
	}

	wantTrace := r.URL.Query().Get("trace") == "1"
	type admitted struct {
		j       *job
		deduped bool
	}
	entries := make([]BatchEntry, len(breq.Requests))
	jobs := make([]admitted, len(breq.Requests))
	rejected := false
	for i, req := range breq.Requests {
		p, err := s.resolveRequest(req, wantTrace)
		if err != nil {
			class := synerr.ClassOf(err)
			entries[i] = BatchEntry{Status: class.HTTPStatus(), Response: *errorResponse(err)}
			continue
		}
		p.async = false
		j, deduped, status := s.admit(p)
		switch status {
		case http.StatusTooManyRequests:
			rejected = true
			entries[i] = BatchEntry{Status: status, Response: Response{
				Error: "synthesis queue full", Class: "overload",
			}}
		case http.StatusServiceUnavailable:
			entries[i] = BatchEntry{Status: status, Response: Response{
				Error: "daemon is draining", Class: "draining",
			}}
		default:
			jobs[i] = admitted{j: j, deduped: deduped}
		}
	}

	for i, a := range jobs {
		if a.j == nil {
			continue
		}
		resp, status, err := a.j.wait(r.Context())
		if err != nil {
			// The client went away; remaining shared runs continue for
			// the cache. Nothing useful can be written.
			s.record(synerr.StatusClientClosed, start)
			return
		}
		out := *resp
		out.Deduped = out.Deduped || a.deduped
		entries[i] = BatchEntry{Status: status, Response: out}
	}

	if rejected {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	s.writeJSON(w, http.StatusOK, &BatchResponse{Responses: entries}, start)
}
