package server

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over a fixed shard pool. Each shard
// owns `replicas` virtual points on a 64-bit circle; a key routes to
// the shard owning the first point clockwise of the key's hash.
// Consistent hashing keeps the mapping stable as the pool changes:
// removing one shard remaps only the keys that shard owned, so the
// other shards' caches keep their specialization. The ring is
// immutable after construction and safe for concurrent readers.
type ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// ringHash is the ring's position function: the first 8 bytes of
// SHA-256, big-endian. A cryptographic hash keeps virtual points
// uniformly spread without tuning.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring; replicas <= 0 defaults to 128 virtual
// points per shard.
func newRing(shards []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 128
	}
	r := &ring{shards: shards}
	for i, s := range shards {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(fmt.Sprintf("%s#%d", s, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.shard < q.shard
	})
	return r
}

// sequence returns the shard indices for key in failover order: the
// owner first, then each remaining shard in the order its first
// virtual point is met walking clockwise. Every shard appears exactly
// once, so a router retrying down the sequence visits the whole pool.
func (r *ring) sequence(key string) []int {
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, len(r.shards))
	seen := make([]bool, len(r.shards))
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
