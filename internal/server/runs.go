package server

import (
	"net/http"
	"strconv"
	"time"

	"asyncsyn/internal/rundb"
)

// RunSummary is one GET /v1/runs list entry: the record identity plus
// the headline outcome, without the heavyweight payload (equations,
// counters, stage timings) — fetch GET /v1/runs/{id} for those.
type RunSummary struct {
	ID          string `json:"id"`
	Signature   string `json:"signature"`
	OptionsHash string `json:"options_hash"`
	Model       string `json:"model"`
	Bench       string `json:"bench,omitempty"`
	File        string `json:"file,omitempty"`
	Digest      string `json:"digest,omitempty"`
	Aborted     bool   `json:"aborted,omitempty"`
	Divergent   bool   `json:"divergent,omitempty"`

	Area   int     `json:"area"`
	CPUMS  float64 `json:"cpu_ms"`
	UnixMS int64   `json:"unix_ms"`
}

// RunsResponse is the GET /v1/runs page: Total counts every record
// matching the filter, Runs is the requested window of it, newest
// first.
type RunsResponse struct {
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
	Runs   []RunSummary `json:"runs"`
}

func summarize(rec *rundb.Record) RunSummary {
	return RunSummary{
		ID:          rec.ID,
		Signature:   rec.Signature,
		OptionsHash: rec.OptionsHash,
		Model:       rec.Model,
		Bench:       rec.Bench,
		File:        rec.File,
		Digest:      rec.Digest,
		Aborted:     rec.Aborted,
		Divergent:   rec.Divergent,
		Area:        rec.Area,
		CPUMS:       rec.CPUMS,
		UnixMS:      rec.UnixMS,
	}
}

// rundbDisabled answers 503 when the daemon runs without a run
// database (no -rundb flag), mirroring the cache exchange's
// cache_disabled contract.
func (s *Server) rundbDisabled(w http.ResponseWriter, start time.Time) bool {
	if s.rundb != nil {
		return false
	}
	s.writeJSON(w, http.StatusServiceUnavailable, &Response{
		Error: "run database disabled", Class: "rundb_disabled",
	}, start)
	return true
}

// handleRuns is GET /v1/runs: the run history, newest first, filtered
// by ?signature= (exact canonical problem signature) and ?model=
// (model name, embedded benchmark name or project file), paginated by
// ?offset= and ?limit=.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.rundbDisabled(w, start) {
		return
	}
	q := r.URL.Query()
	f := rundb.Filter{
		Signature: q.Get("signature"),
		Model:     q.Get("model"),
	}
	if f.Model == "" {
		f.Model = q.Get("bench")
	}
	var err error
	if f.Offset, err = queryInt(q.Get("offset"), 0); err != nil {
		s.writeJSON(w, http.StatusBadRequest, &Response{
			Error: "offset: " + err.Error(), Class: "parse",
		}, start)
		return
	}
	if f.Limit, err = queryInt(q.Get("limit"), 0); err != nil {
		s.writeJSON(w, http.StatusBadRequest, &Response{
			Error: "limit: " + err.Error(), Class: "parse",
		}, start)
		return
	}
	page, total := s.rundb.List(f)
	out := &RunsResponse{
		Total: total, Offset: f.Offset, Limit: f.Limit,
		Runs: make([]RunSummary, 0, len(page)),
	}
	if out.Limit <= 0 {
		out.Limit = rundb.DefaultLimit
	}
	if out.Limit > rundb.MaxLimit {
		out.Limit = rundb.MaxLimit
	}
	for _, rec := range page {
		out.Runs = append(out.Runs, summarize(rec))
	}
	s.writeJSON(w, http.StatusOK, out, start)
}

// handleRun is GET /v1/runs/{id}: the full history record — equations,
// counters, per-stage timings and all.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.rundbDisabled(w, start) {
		return
	}
	rec, ok := s.rundb.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, &Response{
			Error: "no such run", Class: "not_found",
		}, start)
		return
	}
	s.writeJSON(w, http.StatusOK, rec, start)
}

// queryInt parses a non-negative integer query parameter, empty
// meaning def.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		n = 0
	}
	return n, nil
}
