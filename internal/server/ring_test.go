package server

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// TestRingSequence pins the failover-order contract: deterministic,
// covers every shard exactly once, owner first.
func TestRingSequence(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(shards, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.sequence(key)
		if !reflect.DeepEqual(seq, r.sequence(key)) {
			t.Fatalf("sequence(%q) not deterministic", key)
		}
		if len(seq) != len(shards) {
			t.Fatalf("sequence(%q) = %v: want every shard once", key, seq)
		}
		sorted := append([]int(nil), seq...)
		sort.Ints(sorted)
		for j, s := range sorted {
			if s != j {
				t.Fatalf("sequence(%q) = %v: not a permutation", key, seq)
			}
		}
	}
}

// TestRingSpread pins that virtual points spread ownership: with the
// default replica count no shard of a 3-pool owns everything and none
// starves across a modest key population.
func TestRingSpread(t *testing.T) {
	r := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	owned := make(map[int]int)
	const keys = 300
	for i := 0; i < keys; i++ {
		owned[r.sequence(fmt.Sprintf("key-%d", i))[0]]++
	}
	for s := 0; s < 3; s++ {
		if owned[s] == 0 {
			t.Fatalf("shard %d owns no keys: %v", s, owned)
		}
		if owned[s] == keys {
			t.Fatalf("shard %d owns every key: %v", s, owned)
		}
	}
}

// TestRingStability pins the consistent-hashing property the cluster's
// cache specialization depends on: removing one shard leaves every key
// not owned by it on its original owner.
func TestRingStability(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	full := newRing(shards, 0)
	reduced := newRing(shards[:3], 0) // drop d

	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.sequence(key)[0]
		after := reduced.sequence(key)[0]
		if before == 3 {
			moved++ // d's keys must land somewhere else; any owner is fine
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %d -> %d though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingFailoverNeighbor pins that the second sequence position is
// exactly where keys of a removed shard land: the router's retry walk
// and a shrunk ring agree.
func TestRingFailoverNeighbor(t *testing.T) {
	shards := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := newRing(shards, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := full.sequence(key)
		if seq[0] != 2 {
			continue
		}
		// Remove shard c: the reduced ring's owner must be the full
		// ring's first failover candidate.
		reduced := newRing(shards[:2], 0)
		if got, want := reduced.sequence(key)[0], seq[1]; got != want {
			t.Fatalf("key %q: reduced owner %d != failover candidate %d", key, got, want)
		}
	}
}
