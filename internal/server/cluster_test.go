package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/modcache"
)

// shardFixture is one in-process shard: the Server and the real HTTP
// listener the router reaches it through.
type shardFixture struct {
	srv *Server
	ts  *httptest.Server
}

func startShard(t *testing.T, cfg Config) *shardFixture {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &shardFixture{srv: s, ts: ts}
}

// startCluster builds n shards (cfg applied to each, with per-shard
// Peers optionally pointing at warm's listener) and a router over them.
func startCluster(t *testing.T, n int, cfg Config) ([]*shardFixture, *Router) {
	t.Helper()
	shards := make([]*shardFixture, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = startShard(t, cfg)
		urls[i] = shards[i].ts.URL
	}
	rt, err := NewRouter(RouterConfig{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	return shards, rt
}

// libraryDigests computes the reference digests every topology must
// reproduce bit for bit: the direct library path with caching off.
func libraryDigests(t *testing.T, names []string) map[string]string {
	t.Helper()
	want := make(map[string]string, len(names))
	for _, name := range names {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		stg, err := asyncsyn.ParseSTGString(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := asyncsyn.Synthesize(stg, asyncsyn.Options{DisableSolveCache: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = c.Digest()
	}
	return want
}

// postThrough posts one benchmark through a handler and returns the
// decoded response.
func postThrough(t *testing.T, h http.Handler, name string) (*Response, *httptest.ResponseRecorder) {
	t.Helper()
	return postSynth(t, h, fmt.Sprintf(`{"bench":%q}`, name), "")
}

// TestClusterDigestParity is the tentpole acceptance test: response
// digests are bit-identical across every distribution topology — one
// shard behind a router, three cold shards, three peer-warmed shards,
// and three shards with one induced failure (router failover) — all
// equal to the direct library path.
func TestClusterDigestParity(t *testing.T) {
	names := quickNames()
	if len(names) < 3 {
		t.Fatal("quick set too small")
	}
	want := libraryDigests(t, names)

	check := func(t *testing.T, h http.Handler, topology string) {
		for _, name := range names {
			resp, w := postThrough(t, h, name)
			if w.Code != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", topology, name, w.Code, w.Body.String())
			}
			if resp.Digest != want[name] {
				t.Errorf("%s %s: digest %s != library %s", topology, name, resp.Digest, want[name])
			}
		}
	}

	// The single shard lives at the parent scope so its listener stays
	// up for the peer-warmed topology: after the one-shard run its
	// cache holds every module record of the quick set.
	warm := startShard(t, Config{MaxInFlight: 2})
	warmed := false
	t.Run("one-shard", func(t *testing.T) {
		rt, err := NewRouter(RouterConfig{Shards: []string{warm.ts.URL}})
		if err != nil {
			t.Fatal(err)
		}
		check(t, rt.Handler(), "1-shard")
		warmed = true
	})

	t.Run("three-shard-cold", func(t *testing.T) {
		shards, rt := startCluster(t, 3, Config{MaxInFlight: 2})
		check(t, rt.Handler(), "3-shard")
		// Signature routing must actually spread the suite: more than
		// one shard's cache ends up populated.
		populated := 0
		for _, sh := range shards {
			if sh.srv.Cache().Len() > 0 {
				populated++
			}
		}
		if populated < 2 {
			t.Errorf("suite landed on %d shards, want >= 2 (ring not spreading)", populated)
		}
	})

	t.Run("three-shard-peer-warmed", func(t *testing.T) {
		if !warmed {
			t.Skip("one-shard topology did not run")
		}
		shards, rt := startCluster(t, 3, Config{MaxInFlight: 2, Peers: []string{warm.ts.URL}})
		check(t, rt.Handler(), "peer-warmed")
		var peerHits int64
		for _, sh := range shards {
			peerHits += metricValue(t, sh.srv.Handler(), "asyncsyn_modcache_peer_hits")
		}
		if peerHits == 0 {
			t.Error("peer-warmed topology reported no modcache_peer_hits")
		}
	})

	t.Run("three-shard-failover", func(t *testing.T) {
		shards, rt := startCluster(t, 3, Config{MaxInFlight: 2})
		// Induce one shard failure before any traffic: every request
		// owned by the dead shard must fail over down the ring.
		shards[1].ts.Close()
		h := rt.Handler()
		check(t, h, "failover")
		req := httptest.NewRequest("GET", "/metrics", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		body := w.Body.String()
		if !strings.Contains(body, "modsynd_router_failover_total") {
			t.Fatal("router /metrics missing failover counter")
		}
		var failovers int64
		fmt.Sscanf(body[strings.LastIndex(body, "modsynd_router_failover_total"):], "modsynd_router_failover_total %d", &failovers)
		if failovers == 0 {
			t.Error("induced shard failure produced no failovers")
		}
		if !strings.Contains(body, fmt.Sprintf("modsynd_shard_up{shard=%q} 0", shards[1].ts.URL)) {
			t.Error("dead shard still reported up on router /metrics")
		}
	})
}

// TestBatchEndpoint pins POST /v1/batch on one shard: per-entry
// statuses in request order, digests identical to single requests,
// parse failures isolated to their entry.
func TestBatchEndpoint(t *testing.T) {
	names := quickNames()[:3]
	want := libraryDigests(t, names)

	s := newTestServer(t, Config{MaxInFlight: 2})
	h := s.Handler()

	var reqs []string
	for _, n := range names {
		reqs = append(reqs, fmt.Sprintf(`{"bench":%q}`, n))
	}
	reqs = append(reqs, `{"bench":"zzz-no-such"}`) // per-entry 400
	body := fmt.Sprintf(`{"requests":[%s]}`, strings.Join(reqs, ","))

	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var bresp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != len(names)+1 {
		t.Fatalf("got %d responses, want %d", len(bresp.Responses), len(names)+1)
	}
	for i, n := range names {
		e := bresp.Responses[i]
		if e.Status != http.StatusOK {
			t.Fatalf("entry %d status %d: %s", i, e.Status, e.Error)
		}
		if e.Digest != want[n] {
			t.Errorf("entry %d (%s): digest %s != library %s", i, n, e.Digest, want[n])
		}
	}
	if last := bresp.Responses[len(names)]; last.Status != http.StatusBadRequest || last.Class != "parse" {
		t.Errorf("invalid entry: status %d class %q, want 400 parse", last.Status, last.Class)
	}

	// Malformed body and empty batch are whole-request 400s.
	for _, bad := range []string{`{`, `{"requests":[]}`} {
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(bad))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, w.Code)
		}
	}
}

// TestBatchThroughRouter pins the router's shard-wise fan-out: a batch
// spanning benchmarks owned by different shards reassembles in request
// order with library-identical digests.
func TestBatchThroughRouter(t *testing.T) {
	names := quickNames()[:6]
	want := libraryDigests(t, names)
	_, rt := startCluster(t, 3, Config{MaxInFlight: 2})
	h := rt.Handler()

	var reqs []string
	for _, n := range names {
		reqs = append(reqs, fmt.Sprintf(`{"bench":%q}`, n))
	}
	reqs = append(reqs, `{"stg":"not an stg"}`)
	body := fmt.Sprintf(`{"requests":[%s]}`, strings.Join(reqs, ","))

	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var bresp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != len(names)+1 {
		t.Fatalf("got %d responses, want %d", len(bresp.Responses), len(names)+1)
	}
	for i, n := range names {
		e := bresp.Responses[i]
		if e.Status != http.StatusOK || e.Digest != want[n] {
			t.Errorf("entry %d (%s): status %d digest %s, want 200 %s", i, n, e.Status, e.Digest, want[n])
		}
	}
	if last := bresp.Responses[len(names)]; last.Status != http.StatusBadRequest {
		t.Errorf("invalid entry status %d, want 400", last.Status)
	}
}

// TestCacheExchangeEndpoints pins the GET/PUT /v1/cache/{key} surface:
// round trip between two shards, 404 on unknown or malformed keys,
// 400 on digest/path mismatch and corrupt records.
func TestCacheExchangeEndpoints(t *testing.T) {
	a := startShard(t, Config{MaxInFlight: 1})
	if _, w := postThrough(t, a.srv.Handler(), "fifo"); w.Code != http.StatusOK {
		t.Fatalf("warm-up status %d", w.Code)
	}
	if a.srv.Cache().Len() == 0 {
		t.Fatal("warm-up stored no cache entries")
	}

	// Find one record digest by probing the shard's own export surface:
	// every stored entry is addressable, so export succeeds for the
	// digest we learn from a peer-style GET of the cache listing — here
	// we reach into the cache via its public Export with a digest taken
	// from a fresh solve on a second shard wired as a peer.
	b := startShard(t, Config{MaxInFlight: 1, Peers: []string{a.ts.URL}})
	if _, w := postThrough(t, b.srv.Handler(), "fifo"); w.Code != http.StatusOK {
		t.Fatalf("peer-warmed solve status %d", w.Code)
	}
	if hits := metricValue(t, b.srv.Handler(), "asyncsyn_modcache_peer_hits"); hits == 0 {
		t.Fatal("shard B answered without pulling from its peer")
	}

	// Unknown and malformed keys answer 404.
	for _, k := range []string{strings.Repeat("0", 64), "not-a-digest", "../../etc/passwd"} {
		resp, err := http.Get(a.ts.URL + "/v1/cache/" + k)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %q: status %d, want 404", k, resp.StatusCode)
		}
	}

	// PUT round trip: encode a synthetic record, push it, read it back.
	key := modcache.Key{Canon: "c", Layout: "l", M: 1, Engine: 1, MaxBacktracks: 10, WarmHash: "-"}
	rec, err := modcache.EncodeRecord(key, &modcache.Entry{Signals: 1, Status: 1, Engine: "dpll"})
	if err != nil {
		t.Fatal(err)
	}
	digest := modcache.RecordDigest(key)
	put := func(path string, body string) int {
		req, err := http.NewRequest(http.MethodPut, a.ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("/v1/cache/"+digest, string(rec)); code != http.StatusOK {
		t.Fatalf("PUT status %d, want 200", code)
	}
	if code := put("/v1/cache/"+strings.Repeat("0", 64), string(rec)); code != http.StatusBadRequest {
		t.Errorf("mismatched PUT status %d, want 400", code)
	}
	if code := put("/v1/cache/"+digest, "garbage"); code != http.StatusBadRequest {
		t.Errorf("corrupt PUT status %d, want 400", code)
	}
	resp, err := http.Get(a.ts.URL + "/v1/cache/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT status %d", resp.StatusCode)
	}
	var back struct {
		Key modcache.Key `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Key != key {
		t.Fatalf("round-tripped key %+v != %+v", back.Key, key)
	}

	// A cache-disabled shard refuses the exchange.
	off := startShard(t, Config{MaxInFlight: 1, DisableCache: true})
	resp2, err := http.Get(off.ts.URL + "/v1/cache/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cache-disabled GET status %d, want 503", resp2.StatusCode)
	}
}

// TestRouterJobBroadcast pins async-through-router: the job id minted
// by a shard resolves through the router's broadcast poll.
func TestRouterJobBroadcast(t *testing.T) {
	_, rt := startCluster(t, 3, Config{MaxInFlight: 2})
	h := rt.Handler()

	resp, w := postSynth(t, h, `{"bench":"fifo","async":true}`, "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("async POST status %d, want 202", w.Code)
	}
	if resp.Job == "" {
		t.Fatal("no job id through router")
	}
	waitFor(t, func() bool {
		req := httptest.NewRequest("GET", "/v1/jobs/"+resp.Job, nil)
		jw := httptest.NewRecorder()
		h.ServeHTTP(jw, req)
		var jr Response
		if err := json.Unmarshal(jw.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		return jr.Status == "done" && jr.Digest != ""
	})

	req := httptest.NewRequest("GET", "/v1/jobs/nope", nil)
	jw := httptest.NewRecorder()
	h.ServeHTTP(jw, req)
	if jw.Code != http.StatusNotFound {
		t.Fatalf("unknown job via router: status %d, want 404", jw.Code)
	}
}

// TestRouterHealthz pins pool health reporting: healthy pool answers
// 200; with every shard dead the router answers 503 and marks the
// shards down.
func TestRouterHealthz(t *testing.T) {
	shards, rt := startCluster(t, 2, Config{MaxInFlight: 1})
	h := rt.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthy pool: status %d, want 200", w.Code)
	}

	for _, sh := range shards {
		sh.ts.Close()
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead pool: status %d, want 503", w.Code)
	}
}
