package bench

import (
	"strings"
	"testing"

	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
)

func TestTable1Metadata(t *testing.T) {
	if len(Table1) != 23 {
		t.Fatalf("Table 1 has %d rows, want 23", len(Table1))
	}
	names := Names()
	if names[0] != "mr0" || names[len(names)-1] != "vbe-ex1" {
		t.Fatalf("paper order broken: %v", names)
	}
	for _, e := range Table1 {
		if e.InitialStates <= 0 || e.InitialSignals <= 0 {
			t.Errorf("%s: missing initial numbers", e.Name)
		}
		if e.Ours.Signals <= e.InitialSignals && e.Ours.Note == "" {
			t.Errorf("%s: paper's final signals %d not above initial %d", e.Name, e.Ours.Signals, e.InitialSignals)
		}
	}
	if _, ok := Find("mr0"); !ok {
		t.Fatalf("Find(mr0) failed")
	}
	if _, ok := Find("nonesuch"); ok {
		t.Fatalf("Find(nonesuch) succeeded")
	}
	if _, err := Source("nonesuch"); err == nil {
		t.Fatalf("Source(nonesuch) succeeded")
	}
	if _, err := Load("nonesuch"); err == nil {
		t.Fatalf("Load(nonesuch) succeeded")
	}
}

func TestEveryTableRowHasAFile(t *testing.T) {
	have := make(map[string]bool)
	for _, n := range Available() {
		have[n] = true
	}
	for _, e := range Table1 {
		if !have[e.Name] {
			t.Errorf("benchmark %s missing from embedded data", e.Name)
		}
	}
	if len(Available()) != len(Table1) {
		t.Errorf("%d files for %d rows", len(Available()), len(Table1))
	}
}

// TestSuiteInvariants: every reconstruction parses, validates, is a safe
// (1-bounded) live net, has a consistent state assignment, at least one
// CSC conflict (all Table 1 rows need state signals), and the signal
// count the paper reports.
func TestSuiteInvariants(t *testing.T) {
	for _, name := range Available() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			entry, ok := Find(name)
			if !ok {
				t.Fatalf("no Table 1 row")
			}
			if len(g.Signals) != entry.InitialSignals {
				t.Errorf("%d signals, paper has %d", len(g.Signals), entry.InitialSignals)
			}
			if safe, err := g.Net.IsSafe(100000); err != nil || !safe {
				t.Fatalf("not a safe net: %v", err)
			}
			graph, err := sg.FromSTG(g, sg.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r, err := g.Net.Reach(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dead := g.Net.Live(r); len(dead) != 0 {
				t.Errorf("dead transitions: %v", dead)
			}
			conf := sg.Analyze(graph)
			if conf.N() == 0 {
				t.Errorf("no CSC conflicts")
			}
			// State count within 40%% of the paper's (reconstruction
			// tolerance; most are exact).
			lo := entry.InitialStates * 6 / 10
			hi := entry.InitialStates * 14 / 10
			if graph.NumStates() < lo || graph.NumStates() > hi {
				t.Errorf("states %d outside [%d,%d] (paper %d)",
					graph.NumStates(), lo, hi, entry.InitialStates)
			}
		})
	}
}

func TestStructuralLandmarks(t *testing.T) {
	// pe-rcv-ifc-fc must contain a free choice (a place with two fanout
	// transitions, both full-place-set-shared).
	g, err := Load("pe-rcv-ifc-fc")
	if err != nil {
		t.Fatal(err)
	}
	foundChoice := false
	for _, p := range g.Net.Places {
		if len(p.Post) >= 2 {
			foundChoice = true
		}
	}
	if !foundChoice {
		t.Errorf("pe-rcv-ifc-fc has no choice place")
	}

	// alex-nonfc must contain a NON-free choice: two transitions sharing
	// a place where one has strictly more input places.
	g, err = Load("alex-nonfc")
	if err != nil {
		t.Fatal(err)
	}
	foundNonFC := false
	for _, p := range g.Net.Places {
		if len(p.Post) < 2 {
			continue
		}
		for i := 0; i < len(p.Post); i++ {
			for j := 0; j < len(p.Post); j++ {
				ti := g.Net.Transitions[p.Post[i]]
				tj := g.Net.Transitions[p.Post[j]]
				if len(ti.Pre) != len(tj.Pre) {
					foundNonFC = true
				}
			}
		}
	}
	if !foundNonFC {
		t.Errorf("alex-nonfc is free choice")
	}

	// Every source carries a descriptive comment header.
	for _, name := range Available() {
		src, _ := Source(name)
		if !strings.HasPrefix(strings.TrimSpace(src), "#") {
			t.Errorf("%s: missing header comment", name)
		}
	}
}

// TestSuiteClasses pins the structural class of the landmark
// reconstructions: the mr/mmu family are marked graphs (pure
// concurrency), pe-rcv-ifc-fc is free choice, alex-nonfc is general
// (non-free-choice) — the properties Table 1's method-applicability
// notes depend on.
func TestSuiteClasses(t *testing.T) {
	want := map[string]stg.Class{
		"mr0":           stg.MarkedGraph,
		"mmu0":          stg.MarkedGraph,
		"mmu1":          stg.MarkedGraph,
		"fifo":          stg.MarkedGraph,
		"pe-rcv-ifc-fc": stg.FreeChoice,
		"alex-nonfc":    stg.General,
	}
	for name, cls := range want {
		g, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Classify(); got != cls {
			t.Errorf("%s: class %v, want %v", name, got, cls)
		}
	}
}
