// Package bench carries the reconstructed STG benchmark suite used to
// reproduce the paper's Table 1, together with the numbers the paper
// reports for each benchmark.
//
// The original HP/SIS benchmark files are not redistributable and were
// unavailable when this suite was built, so every STG here is a
// reconstruction: it keeps the published name and signal count and uses
// handshake/fork/choice structures typical of the original controllers,
// sized so that the reachable state count approaches the published one.
// The synthesis pipeline exercises the same code paths (state explosion,
// CSC conflict analysis, SAT growth); EXPERIMENTS.md records the actual
// counts next to the paper's.
package bench

import (
	"embed"
	"fmt"
	"sort"

	"asyncsyn/internal/stg"
)

//go:embed data/*.g
var dataFS embed.FS

// Paper holds the numbers Table 1 reports for one benchmark and one
// method. Zero-valued fields mean the paper reports no number (aborted
// runs, tool errors).
type Paper struct {
	Signals int     // final signal count
	States  int     // final state count (only given for some methods)
	Area    int     // two-level literals
	CPU     float64 // seconds on a SPARC-2
	Note    string  // "backtrack limit", "internal state error", ...
}

// Entry is one Table 1 row.
type Entry struct {
	Name           string
	InitialStates  int // paper's initial state count
	InitialSignals int // paper's initial signal count
	Ours           Paper
	Vanbekbergen   Paper
	Lavagno        Paper
}

// Table1 lists the paper's rows in the paper's order (largest first).
var Table1 = []Entry{
	{"mr0", 302, 11, Paper{Signals: 14, States: 469, Area: 41, CPU: 2.80}, Paper{Note: "backtrack limit", CPU: 3600}, Paper{Signals: 13, Area: 86, CPU: 1084.5}},
	{"mr1", 190, 8, Paper{Signals: 12, States: 373, Area: 55, CPU: 1.73}, Paper{Note: "backtrack limit", CPU: 872.9}, Paper{Signals: 10, Area: 53, CPU: 237.5}},
	{"mmu0", 174, 8, Paper{Signals: 11, States: 441, Area: 49, CPU: 0.87}, Paper{Note: "backtrack limit", CPU: 406.3}, Paper{Note: "internal state error"}},
	{"mmu1", 82, 8, Paper{Signals: 10, States: 131, Area: 50, CPU: 0.37}, Paper{Note: "backtrack limit", CPU: 101.3}, Paper{Signals: 10, Area: 37, CPU: 47.8}},
	{"sbuf-ram-write", 58, 10, Paper{Signals: 12, States: 93, Area: 59, CPU: 0.36}, Paper{Signals: 12, States: 90, Area: 74, CPU: 5.21}, Paper{Signals: 12, Area: 35, CPU: 54.6}},
	{"vbe4a", 58, 6, Paper{Signals: 8, States: 106, Area: 37, CPU: 0.19}, Paper{Signals: 8, States: 116, Area: 40, CPU: 0.25}, Paper{Signals: 8, Area: 41, CPU: 5.5}},
	{"nak-pa", 56, 9, Paper{Signals: 10, States: 59, Area: 25, CPU: 0.20}, Paper{Signals: 10, States: 58, Area: 32, CPU: 0.08}, Paper{Signals: 10, Area: 41, CPU: 20.8}},
	{"pe-rcv-ifc-fc", 46, 8, Paper{Signals: 9, States: 50, Area: 48, CPU: 0.24}, Paper{Signals: 9, States: 53, Area: 50, CPU: 0.13}, Paper{Signals: 9, Area: 62, CPU: 14.3}},
	{"ram-read-sbuf", 36, 10, Paper{Signals: 11, States: 44, Area: 28, CPU: 0.15}, Paper{Signals: 11, States: 53, Area: 44, CPU: 0.06}, Paper{Signals: 11, Area: 23, CPU: 65.2}},
	{"alex-nonfc", 24, 6, Paper{Signals: 7, States: 31, Area: 26, CPU: 0.05}, Paper{Signals: 7, States: 28, Area: 22, CPU: 0.03}, Paper{Note: "non-free-choice STG"}},
	{"sbuf-send-pkt2", 21, 6, Paper{Signals: 7, States: 26, Area: 20, CPU: 0.04}, Paper{Signals: 7, States: 27, Area: 29, CPU: 0.04}, Paper{Signals: 7, Area: 14, CPU: 8.6}},
	{"sbuf-send-ctl", 20, 6, Paper{Signals: 8, States: 32, Area: 33, CPU: 0.09}, Paper{Signals: 8, States: 28, Area: 35, CPU: 0.03}, Paper{Signals: 8, Area: 43, CPU: 3.4}},
	{"atod", 20, 6, Paper{Signals: 7, States: 26, Area: 15, CPU: 0.02}, Paper{Signals: 7, States: 24, Area: 16, CPU: 0.01}, Paper{Signals: 7, Area: 19, CPU: 2.9}},
	{"pa", 18, 4, Paper{Signals: 6, States: 34, Area: 18, CPU: 0.12}, Paper{Signals: 6, States: 31, Area: 22, CPU: 0.06}, Paper{Note: "internal state error"}},
	{"alloc-outbound", 17, 7, Paper{Signals: 9, States: 29, Area: 33, CPU: 0.09}, Paper{Signals: 9, States: 24, Area: 27, CPU: 0.04}, Paper{Signals: 9, Area: 23, CPU: 2.5}},
	{"wrdata", 16, 4, Paper{Signals: 5, States: 20, Area: 17, CPU: 0.03}, Paper{Signals: 5, States: 19, Area: 18, CPU: 0.01}, Paper{Signals: 5, Area: 21, CPU: 0.9}},
	{"fifo", 16, 4, Paper{Signals: 5, States: 23, Area: 15, CPU: 0.03}, Paper{Signals: 5, States: 20, Area: 17, CPU: 0.02}, Paper{Signals: 5, Area: 15, CPU: 0.7}},
	{"sbuf-read-ctl", 14, 6, Paper{Signals: 7, States: 18, Area: 16, CPU: 0.06}, Paper{Signals: 7, States: 16, Area: 20, CPU: 0.01}, Paper{Signals: 7, Area: 15, CPU: 1.5}},
	{"nouse", 12, 3, Paper{Signals: 4, States: 16, Area: 12, CPU: 0.01}, Paper{Signals: 4, States: 16, Area: 12, CPU: 0.01}, Paper{Signals: 4, Area: 14, CPU: 0.5}},
	{"vbe-ex2", 8, 2, Paper{Signals: 4, States: 12, Area: 18, CPU: 0.08}, Paper{Signals: 4, States: 12, Area: 18, CPU: 0.03}, Paper{Signals: 4, Area: 21, CPU: 0.5}},
	{"nousc-ser", 8, 3, Paper{Signals: 4, States: 10, Area: 9, CPU: 0.02}, Paper{Signals: 4, States: 10, Area: 9, CPU: 0.01}, Paper{Signals: 4, Area: 11, CPU: 0.4}},
	{"sendr-done", 7, 3, Paper{Signals: 4, States: 10, Area: 8, CPU: 0.02}, Paper{Signals: 4, States: 10, Area: 8, CPU: 0.01}, Paper{Signals: 4, Area: 6, CPU: 0.4}},
	{"vbe-ex1", 5, 2, Paper{Signals: 3, States: 8, Area: 7, CPU: 0.01}, Paper{Signals: 3, States: 8, Area: 7, CPU: 0.01}, Paper{Signals: 3, Area: 7, CPU: 0.3}},
}

// Names lists the benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(Table1))
	for i, e := range Table1 {
		out[i] = e.Name
	}
	return out
}

// Find returns the Table 1 entry for a benchmark name.
func Find(name string) (Entry, bool) {
	for _, e := range Table1 {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Source returns the .g text of a benchmark.
func Source(name string) (string, error) {
	b, err := dataFS.ReadFile("data/" + name + ".g")
	if err != nil {
		return "", fmt.Errorf("bench: no benchmark %q", name)
	}
	return string(b), nil
}

// Load parses a benchmark by name.
func Load(name string) (*stg.G, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	g, err := stg.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	return g, nil
}

// Available lists the benchmarks actually present in the embedded data,
// sorted by name.
func Available() []string {
	entries, err := dataFS.ReadDir("data")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		n := e.Name()
		if len(n) > 2 && n[len(n)-2:] == ".g" {
			out = append(out, n[:len(n)-2])
		}
	}
	sort.Strings(out)
	return out
}
