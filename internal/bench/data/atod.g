# Reconstruction of atod: an A/D conversion controller that runs the
# sample handshake twice (acquire, then auto-zero) with a concurrent
# latch pulse; the re-used sampling codes violate CSC.
.model atod
.inputs go cmp
.outputs sample conv latch done
.graph
go+ sample+
sample+ cmp+
cmp+ sample-
sample- cmp-
cmp- conv+
conv+ latch+ sample+/2
sample+/2 cmp+/2
cmp+/2 sample-/2
sample-/2 cmp-/2
cmp-/2 done+
latch+ done+
done+ latch-
latch- conv-
conv- go-
go- done-
done- go+
.marking { <done-,go+> }
.end
