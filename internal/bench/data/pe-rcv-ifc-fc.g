# Reconstruction of pe-rcv-ifc-fc: a receive interface with a free
# choice between a data packet and a control packet; each branch runs a
# read/done handshake concurrently with its acknowledge pulse.
.model pe-rcv-ifc-fc
.inputs req dsel csel done
.outputs dack cack rd ack
.graph
req+ psel
psel dsel+ csel+
dsel+ rd+ dack+
rd+ done+
done+ rd-
rd- done-
dack+ dack-
done- dsel-
dack- dsel-
dsel- pmerge
csel+ rd+/2 cack+
rd+/2 done+/2
done+/2 rd-/2
rd-/2 done-/2
cack+ cack-
done-/2 csel-
cack- csel-
csel- pmerge
pmerge ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
