# Reconstruction of mr1: memory-refresh controller; three concurrent
# row handshakes (row 3 with a double select pulse) plus a serial
# refresh re-run of rows 1 and 2.
.model mr1
.inputs r t1 t2 t3
.outputs a s1 s2 s3
.graph
r+ s1+ s2+ s3+
s1+ t1+
t1+ s1-
s1- t1-
s2+ t2+
t2+ s2-
s2- t2-
s3+ t3+
t3+ s3-
s3- t3-
t3- s3+/2
s3+/2 s3-/2
t1- a+
t2- a+
s3-/2 a+
a+ r-
r- s1+/2
s1+/2 t1+/2
t1+/2 s1-/2
s1-/2 t1-/2
t1-/2 s2+/2
s2+/2 s2-/2
s2-/2 a-
a- r+
.marking { <a-,r+> }
.end
