# Reconstruction of sbuf-send-ctl: the RAM access handshake runs twice
# per packet around a send pulse, with the y strobe concurrent to the
# second access.
.model sbuf-send-ctl
.inputs req done
.outputs ack send ramcs y
.graph
req+ ramcs+
ramcs+ done+
done+ ramcs-
ramcs- done-
done- send+
send+ y+ ramcs+/2
ramcs+/2 done+/2
done+/2 ramcs-/2
ramcs-/2 done-/2
y+ send-
done-/2 send-
send- ack+
ack+ req-
req- y-
y- ack-
ack- req+
.marking { <ack-,req+> }
.end
