# Reconstruction of nouse: one input drives two concurrent outputs, then
# a serial second pulse of each output re-uses earlier codes.
.model nouse
.inputs a
.outputs b c
.graph
a+ b+ c+
b+ a-
c+ a-
a- b- c-
b- c+/2
c- c+/2
c+/2 b+/2
b+/2 b-/2
b-/2 c-/2
c-/2 a+
.marking { <c-/2,a+> }
.end
