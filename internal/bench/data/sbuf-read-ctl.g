# Reconstruction of sbuf-read-ctl: the RAM chip-select handshake runs
# twice per cycle (read, then precharge), re-using the idle codes.
.model sbuf-read-ctl
.inputs req rd pr
.outputs ramcs ack busy
.graph
req+ busy+
busy+ ramcs+
ramcs+ rd+
rd+ ramcs-
ramcs- rd-
rd- ack+
ack+ req-
req- ramcs+/2
ramcs+/2 pr+
pr+ ramcs-/2
ramcs-/2 pr-
pr- busy-
busy- ack-
ack- req+
.marking { <ack-,req+> }
.end
