# Reconstruction of ram-read-sbuf: RAM read into a send buffer; address
# and write-enable set up concurrently, the chip select runs twice
# (read, then precharge), and a data-out pulse precedes completion.
.model ram-read-sbuf
.inputs req rdone pr
.outputs ramcs adr lat ack busy wen dout
.graph
req+ busy+
busy+ adr+ wen+
adr+ ramcs+
wen+ ramcs+
ramcs+ rdone+
rdone+ lat+
lat+ ramcs- adr- wen-
ramcs- rdone-
adr- rdone-
wen- rdone-
rdone- ramcs+/2
ramcs+/2 pr+
pr+ ramcs-/2
ramcs-/2 pr-
pr- dout+
dout+ dout-
dout- lat- ack+
lat- busy-
ack+ req-
req- ack-
busy- ack-
ack- req+
.marking { <ack-,req+> }
.end
