# Reconstruction of nousc-ser: a serial controller where the code 100
# recurs enabling different outputs (a USC/CSC violation in a fully
# serial cycle).
.model nousc-ser
.inputs r
.outputs a d
.graph
r+ a+
a+ r-
r- a-
a- r+/2
r+/2 d+
d+ r-/2
r-/2 d-
d- r+
.marking { <d-,r+> }
.end
