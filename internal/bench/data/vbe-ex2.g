# Reconstruction of vbe-ex2: an eight-state two-signal cycle whose code
# 10 is visited four times with alternating behaviour; two state
# signals are required (as in the paper). Abstract specification with
# both signals as outputs.
.model vbe-ex2
.outputs a b
.graph
a+ b+
b+ b-
b- a-
a- a+/2
a+/2 b+/2
b+/2 b-/2
b-/2 a-/2
a-/2 a+
.marking { <a-/2,a+> }
.end
