# Reconstruction of sbuf-ram-write: concurrent address/data setup, a
# write-enable/chip-select handshake, then a precharge phase in which a
# second write-enable pulse, the data strobe and the address/data
# teardown all run concurrently.
.model sbuf-ram-write
.inputs req wdone pr
.outputs adr dat wen ramcs ack busy y
.graph
req+ busy+
busy+ adr+ dat+
adr+ wen+
dat+ wen+
wen+ ramcs+
ramcs+ wdone+
wdone+ wen-
wen- ramcs-
ramcs- wdone-
wdone- pr+
pr+ wen+/2 y+ adr-
wen+/2 ramcs+/2
ramcs+/2 wen-/2
wen-/2 ramcs-/2
y+ y-
adr- dat-
ramcs-/2 pr-
y- pr-
dat- pr-
pr- ack+
ack+ req-
req- busy-
busy- ack-
ack- req+
.marking { <ack-,req+> }
.end
