# Reconstruction of alex-nonfc: a non-free-choice STG — transitions a+
# and b+ share input place P while b+ needs the extra place Q (an
# asymmetric choice), the construct that Table 1 reports as unsupported
# by the Lavagno flow. Each branch performs its handshake twice.
.model alex-nonfc
.inputs a b
.outputs p q r s
.graph
r+ P
P a+ b+
Q b+
a+ p+
p+ a-
a- p-
p- a+/2
a+/2 p+/2
p+/2 a-/2
a-/2 p-/2
p-/2 M
b+ q+
q+ b-
b- q- Q
q- b+/2
b+/2 q+/2
q+/2 b-/2
b-/2 q-/2
q-/2 M
M s+
s+ r-
r- s-
s- r+
.marking { <s-,r+> Q }
.end
