# Reconstruction of mmu0: memory-management unit with three concurrent
# bank handshakes; bank 1 additionally re-pulses its select line within
# its branch, re-using the branch codes.
.model mmu0
.inputs r t1 t2 t3
.outputs a s1 s2 s3
.graph
r+ s1+ s2+ s3+
s1+ t1+
t1+ s1-
s1- t1-
t1- s1+/2
s1+/2 s1-/2
s2+ t2+
t2+ s2-
s2- t2-
s3+ t3+
t3+ s3-
s3- t3-
s1-/2 a+
t2- a+
t3- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
