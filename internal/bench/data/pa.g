# Reconstruction of pa: one request drives two strobes, concurrently in
# the first round and as independent parallel pulses in the second; the
# all-zero code is visited three ways, forcing two state signals.
.model pa
.inputs r
.outputs a x y
.graph
r+ x+ y+
x+ a+
y+ a+
a+ r-
r- x- y-
x- a-
y- a-
a- x+/2 y+/2
x+/2 x-/2
y+/2 y-/2
x-/2 r+
y-/2 r+
.marking { <x-/2,r+> <y-/2,r+> }
.end
