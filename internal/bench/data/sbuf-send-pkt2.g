# Reconstruction of sbuf-send-pkt2: packet send with the timeout
# handshake concurrent to the first byte strobe, then a second strobe.
.model sbuf-send-pkt2
.inputs req tack
.outputs treq byte ack last
.graph
req+ treq+ byte+
treq+ tack+
tack+ treq-
treq- tack-
byte+ byte-
tack- byte+/2
byte- byte+/2
byte+/2 byte-/2
byte-/2 last+
last+ ack+
ack+ req-
req- last-
last- ack-
ack- req+
.marking { <ack-,req+> }
.end
