# Reconstruction of mmu1: memory-management unit cycle with two
# concurrent bank handshakes plus a translation pulse, and a serial
# re-run of bank 1 for the dirty-bit update.
.model mmu1
.inputs r t1 t2
.outputs a s1 s2 tr
.internal v
.graph
r+ s1+ s2+ tr+
s1+ t1+
t1+ s1-
s1- t1-
s2+ t2+
t2+ s2-
s2- t2-
tr+ tr-
t1- a+
t2- a+
tr- a+
a+ r-
r- v+
v+ s1+/2
s1+/2 t1+/2
t1+/2 s1-/2
s1-/2 t1-/2
t1-/2 v-
v- a-
a- r+
.marking { <a-,r+> }
.end
