# Reconstruction of alloc-outbound: outbound buffer allocation with a
# double grant handshake inside one request cycle.
.model alloc-outbound
.inputs req gnt
.outputs alloc ack free x y
.graph
req+ alloc+
alloc+ gnt+
gnt+ alloc-
alloc- gnt-
gnt- x+
x+ alloc+/2
alloc+/2 gnt+/2
gnt+/2 alloc-/2
alloc-/2 gnt-/2
gnt-/2 y+
y+ ack+
ack+ req-
req- free+
free+ x-
x- y-
y- free-
free- ack-
ack- req+
.marking { <ack-,req+> }
.end
