# Reconstruction of vbe-ex1 (Vanbekbergen ICCAD'92 example 1).
# Two output signals; the code 10 recurs with different enabled
# transitions, so complete state coding needs a state signal. Both
# signals are circuit outputs (an abstract specification): a conflict
# reachable through input-only paths would be unimplementable.
.model vbe-ex1
.outputs a b
.graph
a+ b+
b+ a- b-
a- a+
b- a+
.marking { <a-,a+> <b-,a+> }
.end
