# Reconstruction of vbe4a: two concurrent output handshake pairs run in
# both phases of an a/b environment cycle; the second run re-uses the
# first run's codes.
.model vbe4a
.inputs a b
.outputs c d e f
.graph
a+ c+ d+
c+ e+
e+ c-
c- e-
d+ f+
f+ d-
d- f-
e- b+
f- b+
b+ c+/2 d+/2
c+/2 e+/2
e+/2 c-/2
c-/2 e-/2
d+/2 f+/2
f+/2 d-/2
d-/2 f-/2
e-/2 a-
f-/2 a-
a- b-
b- a+
.marking { <b-,a+> }
.end
