# Reconstruction of sendr-done: request/acknowledge handshake whose
# completion forks into the ack release and a done pulse.
.model sendr-done
.inputs req
.outputs ack done
.graph
req+ ack+
ack+ req-
req- ack- done+
ack- done-
done+ done-
done- req+
.marking { <done-,req+> }
.end
