# Reconstruction of mr0: the largest benchmark. Access phase: three
# concurrent row handshakes, row 1 followed by a refresh pulse in its
# branch. Precharge phase: rows 1 and 2 re-run concurrently with a
# victim/done handshake.
.model mr0
.inputs r t1 t2 t3
.outputs a s1 s2 s3 rf done
.internal v
.graph
r+ s1+ s2+ s3+
s1+ t1+
t1+ s1-
s1- t1-
t1- rf+
rf+ rf-
s2+ t2+
t2+ s2-
s2- t2-
s3+ t3+
t3+ s3-
s3- t3-
rf- a+
t2- a+
t3- a+
a+ r-
r- s1+/2 s2+/2 v+
s1+/2 t1+/2
t1+/2 s1-/2
s1-/2 t1-/2
s2+/2 t2+/2
t2+/2 s2-/2
s2-/2 t2-/2
v+ done+
done+ v-
v- done-
t1-/2 a-
t2-/2 a-
done- a-
a- r+
.marking { <a-,r+> }
.end
