package bench

import (
	"testing"

	"asyncsyn/internal/sg"
)

// TestSuiteShape reports, for every embedded benchmark, the actual state
// count, conflict count and lower bound next to the paper's targets. Run
// with -v while tuning reconstructions.
func TestSuiteShape(t *testing.T) {
	for _, name := range Available() {
		g, err := Load(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		graph, err := sg.FromSTG(g, sg.Options{})
		if err != nil {
			t.Errorf("%s: state graph: %v", name, err)
			continue
		}
		conf := sg.Analyze(graph)
		entry, _ := Find(name)
		t.Logf("%-16s signals %d (paper %d)  states %4d (paper %4d)  csc=%d usc=%d lb=%d",
			name, len(g.Signals), entry.InitialSignals,
			graph.NumStates(), entry.InitialStates, conf.N(), len(conf.USC), conf.LowerBound)
		if conf.N() == 0 {
			t.Errorf("%s: no CSC conflicts; every Table 1 benchmark needs state signals", name)
		}
		if len(g.Signals) != entry.InitialSignals {
			t.Errorf("%s: %d signals, paper has %d", name, len(g.Signals), entry.InitialSignals)
		}
	}
}
