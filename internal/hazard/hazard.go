// Package hazard checks two-level covers derived from state graphs for
// static logic hazards and repairs them by cube insertion — the cleanup
// step the paper's §3.5 delegates to known techniques (Lavagno et al.,
// DAC'91). In a state graph every edge is a single-signal change, so the
// conditions are the classical single-input-change ones: a dynamic
// transition of an AND-OR cover cannot glitch, but a static-1 transition
// (output 1 on both sides of the edge) is hazard-free only when a single
// cube covers both endpoint codes. Static-0 transitions are safe in
// sum-of-products form.
package hazard

import (
	"fmt"
	"sort"

	"asyncsyn/internal/logic"
)

// Transition is one single-variable code change the cover must traverse
// cleanly: minterms From and To over the cover's variables.
type Transition struct {
	From, To uint64
}

// Violation is a static-1 hazard: both endpoints are covered, but by no
// common cube, so the OR output can glitch while cubes hand over.
type Violation struct {
	Transition
}

func (v Violation) String() string {
	return fmt.Sprintf("static-1 hazard on %b→%b", v.From, v.To)
}

// Check finds static-1 hazards of cover f across the given transitions.
// Transitions whose endpoints are not both in the ON-set of f are ignored
// (they are dynamic or static-0, which are single-change safe).
func Check(f logic.Cover, trans []Transition) []Violation {
	var out []Violation
	for _, tr := range trans {
		if !f.CoversMinterm(tr.From) || !f.CoversMinterm(tr.To) {
			continue
		}
		if !coveredTogether(f, tr) {
			out = append(out, Violation{tr})
		}
	}
	return out
}

func coveredTogether(f logic.Cover, tr Transition) bool {
	for _, c := range f {
		if c.CoversMinterm(tr.From) && c.CoversMinterm(tr.To) {
			return true
		}
	}
	return false
}

// Repair adds, for every violation, a cube covering both endpoints —
// the supercube of the two minterms expanded against the OFF-set to a
// prime. The result may be redundant as a cover but is hazard-free for
// the given transitions; it fails if a transition's supercube intersects
// the OFF-set (the function itself then forces the hazard, which cannot
// happen for implied-value functions of semi-modular state graphs).
func Repair(f logic.Cover, trans []Transition, off []uint64, numVars int) (logic.Cover, error) {
	if len(f) == 0 {
		return f, nil
	}
	offCover := make(logic.Cover, len(off))
	for i, m := range off {
		offCover[i] = logic.FromMinterm(numVars, m)
	}
	out := f.Clone()
	for _, v := range Check(f, trans) {
		link := logic.FromMinterm(numVars, v.From).Supercube(logic.FromMinterm(numVars, v.To))
		if offCover.IntersectsAny(link) {
			return nil, fmt.Errorf("hazard: transition %b→%b spans the OFF-set", v.From, v.To)
		}
		out = append(out, expandAgainst(link, offCover))
	}
	return out, nil
}

// expandAgainst raises literals of c (lowest variable first) while the
// cube stays clear of the OFF cover, yielding a prime.
func expandAgainst(c logic.Cube, off logic.Cover) logic.Cube {
	out := c.Clone()
	for v := 0; v < out.N(); v++ {
		val := out.Var(v)
		if val != logic.VTrue && val != logic.VFalse {
			continue
		}
		out.SetVar(v, logic.VDash)
		if off.IntersectsAny(out) {
			out.SetVar(v, val)
		}
	}
	return out
}

// AdjacentOnTransitions enumerates, from a list of reachable state codes
// and edges between them (as index pairs), the single-variable
// transitions relevant to hazard checking. Codes differing in more than
// one variable are skipped (they do not occur on state graph edges).
func AdjacentOnTransitions(codes []uint64, edges [][2]int) []Transition {
	var out []Transition
	seen := make(map[Transition]bool)
	for _, e := range edges {
		a, b := codes[e[0]], codes[e[1]]
		d := a ^ b
		if d == 0 || d&(d-1) != 0 {
			continue
		}
		tr := Transition{From: a, To: b}
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
