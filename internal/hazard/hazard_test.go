package hazard

import (
	"testing"

	"asyncsyn/internal/logic"
)

// hazardCover builds the cover {a'b', ab', ab} over (a=var0, b=var1):
// ON minterms 0b00, 0b01, 0b11, OFF minterm 0b10 (a'b). Every ON-ON
// single-variable transition crosses from one cube to another, so the
// cover is full of static-1 hazards.
func hazardCover() (logic.Cover, []uint64) {
	c1 := logic.NewCube(2) // a'b'
	c1.SetVar(0, logic.VFalse)
	c1.SetVar(1, logic.VFalse)
	c2 := logic.NewCube(2) // a b
	c2.SetVar(0, logic.VTrue)
	c2.SetVar(1, logic.VTrue)
	c3 := logic.NewCube(2) // a b'
	c3.SetVar(0, logic.VTrue)
	c3.SetVar(1, logic.VFalse)
	return logic.Cover{c1, c2, c3}, []uint64{0b10} // OFF = {a'b}
}

func TestCheckFindsStatic1Hazard(t *testing.T) {
	cover, _ := hazardCover()
	trans := []Transition{
		{From: 0b00, To: 0b01}, // both ON, covered by different cubes
		{From: 0b00, To: 0b10}, // 0b10 is OFF: not a static-1 case
	}
	v := Check(cover, trans)
	if len(v) != 1 || v[0].From != 0b00 || v[0].To != 0b01 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].String() == "" {
		t.Fatalf("empty violation string")
	}
}

func TestCheckCleanCover(t *testing.T) {
	// f = a (single cube): no static-1 hazard possible.
	c := logic.NewCube(2)
	c.SetVar(0, logic.VTrue)
	trans := []Transition{{From: 0b01, To: 0b11}, {From: 0b11, To: 0b01}}
	if v := Check(logic.Cover{c}, trans); len(v) != 0 {
		t.Fatalf("single-cube cover flagged: %v", v)
	}
}

func TestRepairAddsLinkCube(t *testing.T) {
	cover, off := hazardCover()
	trans := []Transition{{From: 0b00, To: 0b01}}
	fixed, err := Repair(cover, trans, off, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != len(cover)+1 {
		t.Fatalf("repair added %d cubes", len(fixed)-len(cover))
	}
	if v := Check(fixed, trans); len(v) != 0 {
		t.Fatalf("hazard survives repair: %v", v)
	}
	// The link cube must avoid the OFF-set.
	offCover := logic.Cover{logic.FromMinterm(2, off[0])}
	for _, c := range fixed {
		if offCover.IntersectsAny(c) {
			t.Fatalf("repair intersects OFF-set")
		}
	}
}

func TestRepairImpossible(t *testing.T) {
	// A multi-variable transition whose supercube spans the OFF-set
	// cannot be linked by a single cube: 00→11 has the universal cube as
	// its supercube, which hits the OFF point 0b10.
	cover, off := hazardCover()
	trans := []Transition{{From: 0b00, To: 0b11}}
	if _, err := Repair(cover, trans, off, 2); err == nil {
		t.Fatalf("repair across the OFF-set must fail")
	}
}

func TestRepairEmptyCover(t *testing.T) {
	fixed, err := Repair(logic.Cover{}, nil, nil, 2)
	if err != nil || len(fixed) != 0 {
		t.Fatalf("empty cover repair: %v %v", fixed, err)
	}
}

func TestAdjacentOnTransitions(t *testing.T) {
	codes := []uint64{0b00, 0b01, 0b11, 0b01}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {0, 1}}
	trans := AdjacentOnTransitions(codes, edges)
	// (2,0) differs in two bits → skipped; (1,3) identical codes → skipped;
	// duplicate (0,1) deduplicated.
	if len(trans) != 2 {
		t.Fatalf("transitions = %v", trans)
	}
	if trans[0].From != 0b00 || trans[0].To != 0b01 {
		t.Fatalf("ordering wrong: %v", trans)
	}
}
