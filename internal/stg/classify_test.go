package stg

import "testing"

func classify(t *testing.T, src string) Class {
	t.Helper()
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return g.Classify()
}

func TestClassifyMarkedGraph(t *testing.T) {
	// A pure handshake cycle: every implicit place 1-in/1-out.
	c := classify(t, `
.model mg
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
`)
	if c != MarkedGraph {
		t.Fatalf("class = %v, want marked graph", c)
	}
	if c.String() != "marked graph" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestClassifyMarkedGraphWithFork(t *testing.T) {
	c := classify(t, `
.model fork
.inputs r
.outputs a b
.graph
r+ a+ b+
a+ r-
b+ r-
r- a- b-
a- r+
b- r+
.marking { <a-,r+> <b-,r+> }
.end
`)
	if c != MarkedGraph {
		t.Fatalf("fork/join still a marked graph, got %v", c)
	}
}

func TestClassifyFreeChoice(t *testing.T) {
	// A free choice place plus a fork/join inside one branch (so the net
	// is not also a state machine).
	c := classify(t, `
.model fc
.inputs a b
.outputs r x y
.graph
r+ P
P a+ b+
a+ a- x+
a- y+
x+ y+
y+ x-
x- y-
y- M
b+ b-
b- M
M r-
r- r+
.marking { <r-,r+> }
.end
`)
	if c != FreeChoice {
		t.Fatalf("class = %v, want free choice", c)
	}
}

func TestClassifyGeneral(t *testing.T) {
	// alex-nonfc-style asymmetric choice: P feeds a+ and b+, b+ also
	// needs Q.
	c := classify(t, `
.model nfc
.inputs a b
.outputs r
.graph
r+ P
P a+ b+
Q b+
a+ a-
b+ b-
b- Q
a- M
b- M
M r-
r- r+
.marking { <r-,r+> Q }
.end
`)
	if c != General {
		t.Fatalf("class = %v, want general", c)
	}
}

func TestClassifyStateMachine(t *testing.T) {
	// Pure sequence through explicit places: every transition 1-in/1-out,
	// with a choice place (so not a marked graph).
	c := classify(t, `
.model sm
.inputs a b
.outputs r
.graph
P0 a+ b+
a+ P1
b+ P2
P1 a-
P2 b-
a- P3
b- P3
P3 r+
r+ P4
P4 r-
r- P0
.marking { P0 }
.end
`)
	if c != StateMachine {
		t.Fatalf("class = %v, want state machine", c)
	}
}
