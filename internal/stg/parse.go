package stg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"asyncsyn/internal/petri"
)

// ParseError reports a syntax or semantic error in a .g source with its
// line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e ParseError) Error() string { return fmt.Sprintf("stg: line %d: %s", e.Line, e.Msg) }

// Parse reads an STG in the astg/SIS ".g" text format:
//
//	.model name
//	.inputs a b
//	.outputs c
//	.internal d
//	.dummy e0
//	.graph
//	a+ b+ c+/2        # arcs from a+ to b+ and to c+/2
//	p0 c+             # explicit place p0 feeding c+
//	.marking { p0 <a+,b+> }
//	.end
//
// Lines starting with '#' and blank lines are ignored. Unrecognised dot
// directives (.capacity, .slowenv, ...) are skipped.
func Parse(r io.Reader) (*G, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	g := New("")
	var (
		lineNo    int
		inGraph   bool
		sawEnd    bool
		dummies   = make(map[string]bool)
		trans     = make(map[string]petri.TransID) // canonical transition name → id
		places    = make(map[string]petri.PlaceID)
		arcLines  [][]string // deferred until declarations are complete
		arcLineNo []int
		markLine  string
		markNo    int
	)

	errf := func(n int, format string, args ...any) error {
		return ParseError{Line: n, Msg: fmt.Sprintf(format, args...)}
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch head := fields[0]; {
		case head == ".model" || head == ".name":
			if len(fields) > 1 {
				g.Name = fields[1]
				g.Net.Name = fields[1]
			}
		case head == ".inputs":
			for _, s := range fields[1:] {
				if _, ok := g.AddSignal(s, Input); !ok {
					return nil, errf(lineNo, "signal %q declared twice", s)
				}
			}
		case head == ".outputs":
			for _, s := range fields[1:] {
				if _, ok := g.AddSignal(s, Output); !ok {
					return nil, errf(lineNo, "signal %q declared twice", s)
				}
			}
		case head == ".internal":
			for _, s := range fields[1:] {
				if _, ok := g.AddSignal(s, Internal); !ok {
					return nil, errf(lineNo, "signal %q declared twice", s)
				}
			}
		case head == ".dummy":
			for _, s := range fields[1:] {
				dummies[s] = true
			}
		case head == ".graph":
			inGraph = true
		case head == ".marking":
			inGraph = false
			markLine = strings.TrimSpace(strings.TrimPrefix(strings.Join(fields, " "), ".marking"))
			markNo = lineNo
		case head == ".end":
			sawEnd = true
			inGraph = false
		case strings.HasPrefix(head, "."):
			// Unknown directive (.capacity, .coords, ...): skip.
			inGraph = false
		default:
			if !inGraph {
				return nil, errf(lineNo, "unexpected token %q outside .graph", head)
			}
			arcLines = append(arcLines, fields)
			arcLineNo = append(arcLineNo, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd {
		return nil, fmt.Errorf("stg: missing .end")
	}

	// Node resolution: a token is a transition if it parses as
	// signal{+,-,~}[/k] over a declared signal, or is a declared dummy;
	// otherwise it is a place.
	getTrans := func(tok string, n int) (petri.TransID, bool, error) {
		if t, ok := trans[tok]; ok {
			return t, true, nil
		}
		if dummies[tok] {
			t := g.AddDummy(tok)
			trans[tok] = t
			return t, true, nil
		}
		sig, dir, inst, ok := splitEdge(tok)
		if !ok {
			return 0, false, nil
		}
		si, declared := g.SignalIndex(sig)
		if !declared {
			// Looks like an edge of an undeclared signal: astg treats it
			// as an error rather than a place name.
			return 0, false, errf(n, "transition %q of undeclared signal %q", tok, sig)
		}
		t := g.AddTransition(si, dir, inst)
		trans[tok] = t
		return t, true, nil
	}
	getPlace := func(tok string) petri.PlaceID {
		if p, ok := places[tok]; ok {
			return p
		}
		p := g.Net.AddPlace(tok)
		places[tok] = p
		return p
	}

	// First pass: create every node mentioned at the head of a line so
	// that targets referring forward resolve consistently.
	for k, fields := range arcLines {
		for _, tok := range fields {
			if _, isT, err := getTrans(tok, arcLineNo[k]); err != nil {
				return nil, err
			} else if !isT {
				getPlace(tok)
			}
		}
	}
	// Second pass: arcs from the head node to each remaining node.
	for k, fields := range arcLines {
		n := arcLineNo[k]
		src := fields[0]
		srcT, srcIsT, _ := getTrans(src, n)
		for _, tok := range fields[1:] {
			dstT, dstIsT, _ := getTrans(tok, n)
			switch {
			case srcIsT && dstIsT:
				g.Net.Arc(srcT, dstT)
			case srcIsT && !dstIsT:
				g.Net.ConnectTP(srcT, getPlace(tok))
			case !srcIsT && dstIsT:
				g.Net.ConnectPT(getPlace(src), dstT)
			default:
				return nil, errf(n, "arc between two places %q and %q", src, tok)
			}
		}
	}

	// Marking.
	g.Net.Initial = g.Net.NewMarking()
	if markLine != "" {
		if err := parseMarking(g, markLine, markNo, places); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// parseMarking handles "{ p0 p1=2 <a+,b+> }".
func parseMarking(g *G, s string, lineNo int, places map[string]petri.PlaceID) error {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	for _, tok := range strings.Fields(s) {
		count := 1
		if i := strings.LastIndexByte(tok, '='); i > 0 && !strings.HasPrefix(tok, "<") {
			c, err := strconv.Atoi(tok[i+1:])
			// Token counts are stored in a uint8 marking; reject values
			// that would silently wrap (the parser fronts untrusted
			// input, so an out-of-range count must be an error, not a
			// truncation).
			if err != nil || c < 0 || c > 255 {
				return ParseError{Line: lineNo, Msg: fmt.Sprintf("bad token count in %q", tok)}
			}
			count, tok = c, tok[:i]
		}
		var p petri.PlaceID
		if strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">") {
			inner := tok[1 : len(tok)-1]
			parts := strings.SplitN(inner, ",", 2)
			if len(parts) != 2 {
				return ParseError{Line: lineNo, Msg: fmt.Sprintf("bad implicit place %q", tok)}
			}
			from, okF := g.Net.TransitionByLabel(parts[0])
			to, okT := g.Net.TransitionByLabel(parts[1])
			if !okF || !okT {
				return ParseError{Line: lineNo, Msg: fmt.Sprintf("implicit place %q names unknown transitions", tok)}
			}
			found := false
			for _, pp := range g.Net.Transitions[from].Post {
				if g.Net.Places[pp].Implicit && hasTrans(g.Net.Places[pp].Post, to) {
					p, found = pp, true
					break
				}
			}
			if !found {
				return ParseError{Line: lineNo, Msg: fmt.Sprintf("no arc for implicit place %q", tok)}
			}
		} else {
			pp, ok := places[tok]
			if !ok {
				return ParseError{Line: lineNo, Msg: fmt.Sprintf("marking names unknown place %q", tok)}
			}
			p = pp
		}
		if int(g.Net.Initial[p])+count > 255 {
			return ParseError{Line: lineNo, Msg: fmt.Sprintf("marking of %q exceeds 255 tokens", tok)}
		}
		g.Net.Initial[p] += uint8(count)
	}
	return nil
}

func hasTrans(ts []petri.TransID, want petri.TransID) bool {
	for _, t := range ts {
		if t == want {
			return true
		}
	}
	return false
}

// splitEdge parses "req+", "ack-/2", "d~" into (signal, dir, instance).
func splitEdge(tok string) (sig string, dir Dir, instance int, ok bool) {
	body := tok
	if i := strings.IndexByte(tok, '/'); i >= 0 {
		n, err := strconv.Atoi(tok[i+1:])
		if err != nil || n < 0 {
			return "", 0, 0, false
		}
		instance, body = n, tok[:i]
	}
	if len(body) < 2 {
		return "", 0, 0, false
	}
	switch body[len(body)-1] {
	case '+':
		dir = Rising
	case '-':
		dir = Falling
	case '~':
		dir = Toggle
	default:
		return "", 0, 0, false
	}
	return body[:len(body)-1], dir, instance, true
}

// ParseString parses a .g source held in a string.
func ParseString(src string) (*G, error) { return Parse(strings.NewReader(src)) }
