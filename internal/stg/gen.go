package stg

import "fmt"

// Handshakes builds a master request/acknowledge cycle that forks k
// concurrent slave handshakes once (rounds=1) or twice (rounds=2); with
// two rounds the slave codes repeat across rounds, producing CSC
// conflicts exactly like the mr/mmu benchmarks. The state count grows as
// roughly 5^k per round.
func Handshakes(name string, k, rounds int) (*G, error) {
	if k < 1 || rounds < 1 || rounds > 2 {
		return nil, fmt.Errorf("need 1..16 branches and 1 or 2 rounds")
	}
	if name == "" {
		name = fmt.Sprintf("hs-%dx%d", k, rounds)
	}
	b := NewBuilder(name)
	b.Inputs("r")
	for i := 1; i <= k; i++ {
		b.Inputs(fmt.Sprintf("t%d", i))
	}
	b.Outputs("a")
	for i := 1; i <= k; i++ {
		b.Outputs(fmt.Sprintf("s%d", i))
	}
	// fork runs one round of k concurrent slave handshakes between the
	// master transitions `from` and `to`.
	fork := func(from, to, suffix string) {
		for i := 1; i <= k; i++ {
			sPlus := fmt.Sprintf("s%d+%s", i, suffix)
			tPlus := fmt.Sprintf("t%d+%s", i, suffix)
			sMinus := fmt.Sprintf("s%d-%s", i, suffix)
			tMinus := fmt.Sprintf("t%d-%s", i, suffix)
			b.Arc(from, sPlus)
			b.Chain(sPlus, tPlus, sMinus, tMinus)
			b.Arc(tMinus, to)
		}
	}
	fork("r+", "a+", "")
	if rounds == 1 {
		b.Chain("a+", "r-", "a-")
	} else {
		b.Arc("a+", "r-")
		fork("r-", "a-", "/2")
	}
	b.Arc("a-", "r+")
	b.Token("a-", "r+")
	return b.Build()
}

// Ring builds an n-stage FIFO ring: stage i couples handshake (ri, ai)
// to (r(i+1), a(i+1)); the first request is an input, everything else an
// output. States grow with the product of stage positions.
func Ring(name string, n int) (*G, error) {
	if n < 2 {
		return nil, fmt.Errorf("need at least two stages")
	}
	if name == "" {
		name = fmt.Sprintf("ring-%d", n)
	}
	b := NewBuilder(name)
	b.Inputs("r1")
	for i := 2; i <= n; i++ {
		b.Outputs(fmt.Sprintf("r%d", i))
	}
	for i := 1; i <= n; i++ {
		b.Outputs(fmt.Sprintf("a%d", i))
	}
	for i := 1; i <= n; i++ {
		r := fmt.Sprintf("r%d", i)
		a := fmt.Sprintf("a%d", i)
		b.Chain(r+"+", a+"+", r+"-", a+"-")
		b.Arc(a+"-", r+"+")
		b.Token(a+"-", r+"+")
		if i < n {
			next := fmt.Sprintf("r%d", i+1)
			b.Arc(a+"+", next+"+")
			b.Arc(next+"+", a+"-")
		}
	}
	return b.Build()
}

// Choice builds a free-choice controller: a request place offers k
// alternative input branches, each acknowledged through its own
// handshake before the paths merge.
func Choice(name string, k int) (*G, error) {
	if k < 2 {
		return nil, fmt.Errorf("need at least two branches")
	}
	if name == "" {
		name = fmt.Sprintf("choice-%d", k)
	}
	b := NewBuilder(name)
	b.Outputs("req", "ack")
	froms := make([]string, 0, k)
	tos := make([]string, 0, k)
	for i := 1; i <= k; i++ {
		c := fmt.Sprintf("c%d", i)
		d := fmt.Sprintf("d%d", i)
		b.Inputs(c)
		b.Outputs(d)
		b.Chain(c+"+", d+"+", c+"-", d+"-")
		tos = append(tos, c+"+")
		froms = append(froms, d+"-")
	}
	b.Place("psel", []string{"req+"}, tos)
	b.Place("pmerge", froms, []string{"ack+"})
	b.Chain("ack+", "req-", "ack-")
	b.Arc("ack-", "req+")
	b.Token("ack-", "req+")
	return b.Build()
}
