package stg

import (
	"fmt"
	"math/rand"
)

// RandomOptions shapes random STG generation.
type RandomOptions struct {
	// MaxBranches bounds the concurrent branches per phase (default 3).
	MaxBranches int
	// TwoRounds allows a second phase that re-runs some branches with
	// instance-numbered transitions, the pattern that produces CSC
	// conflicts (default true).
	TwoRounds bool
}

// Random generates a live, safe, consistent STG from a seed by composing
// the structural patterns the benchmark suite is built from: a master
// request/acknowledge cycle forking a random mix of pulse, handshake and
// double-pulse branches, optionally re-run in a second phase. Every
// generated STG is consistent by construction (signal transitions
// alternate along every path); most seeds produce CSC conflicts. Used
// for fuzz-testing the synthesis pipeline.
func Random(seed int64, opt RandomOptions) (*G, error) {
	if opt.MaxBranches == 0 {
		opt.MaxBranches = 3
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("rand%d", seed))
	b.Inputs("r")
	b.Outputs("a")

	k := 1 + rng.Intn(opt.MaxBranches)
	type branch struct {
		kind int // 0 pulse, 1 handshake, 2 double pulse
		sig  string
		tin  string
	}
	branches := make([]branch, k)
	for i := range branches {
		br := branch{kind: rng.Intn(3), sig: fmt.Sprintf("s%d", i)}
		b.Outputs(br.sig)
		if br.kind == 1 {
			br.tin = fmt.Sprintf("t%d", i)
			b.Inputs(br.tin)
		}
		branches[i] = br
	}

	// emit wires one branch run between master transitions from and to;
	// suffix distinguishes the second round's transition instances.
	emit := func(br branch, from, to, suffix string) {
		s := br.sig
		switch br.kind {
		case 0: // pulse
			b.Arc(from, s+"+"+suffix)
			b.Chain(s+"+"+suffix, s+"-"+suffix)
			b.Arc(s+"-"+suffix, to)
		case 1: // full handshake with its input
			b.Arc(from, s+"+"+suffix)
			b.Chain(s+"+"+suffix, br.tin+"+"+suffix, s+"-"+suffix, br.tin+"-"+suffix)
			b.Arc(br.tin+"-"+suffix, to)
		case 2: // double pulse
			i1, i2 := "", "/2"
			if suffix != "" {
				i1, i2 = "/5", "/6"
			}
			b.Arc(from, s+"+"+i1)
			b.Chain(s+"+"+i1, s+"-"+i1, s+"+"+i2, s+"-"+i2)
			b.Arc(s+"-"+i2, to)
		}
	}

	for _, br := range branches {
		emit(br, "r+", "a+", "")
	}
	if opt.TwoRounds && rng.Intn(4) != 0 {
		b.Arc("a+", "r-")
		// Second phase: every branch re-runs (instances keep levels
		// consistent), a subset shuffled into pulses.
		for _, br := range branches {
			if br.kind == 2 {
				// Double pulse already used /2; reuse as single pulse /4-/5
				b.Arc("r-", br.sig+"+/4")
				b.Chain(br.sig+"+/4", br.sig+"-/4")
				b.Arc(br.sig+"-/4", "a-")
				continue
			}
			emit(br, "r-", "a-", "/9")
		}
		b.Arc("a-", "r+")
		b.Token("a-", "r+")
	} else {
		b.Chain("a+", "r-", "a-")
		b.Arc("a-", "r+")
		b.Token("a-", "r+")
	}
	return b.Build()
}
