package stg

import "testing"

// TestRandomWellFormed: every seed yields a valid, consistent STG.
func TestRandomWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		g, err := Random(seed, RandomOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if safe, err := g.Net.IsSafe(100000); err != nil || !safe {
			t.Fatalf("seed %d: not safe (%v)", seed, err)
		}
		r, err := g.Net.Reach(1, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dead := g.Net.Live(r); len(dead) != 0 {
			t.Fatalf("seed %d: dead transitions %v", seed, dead)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, _ := Random(7, RandomOptions{})
	b, _ := Random(7, RandomOptions{})
	if Format(a) != Format(b) {
		t.Fatalf("same seed, different STG")
	}
	c, _ := Random(8, RandomOptions{})
	if Format(a) == Format(c) {
		t.Fatalf("different seeds, same STG")
	}
}
