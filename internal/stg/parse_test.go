package stg

import (
	"strings"
	"testing"
)

const simpleSrc = `
# four-phase handshake
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

func TestParseSimple(t *testing.T) {
	g, err := ParseString(simpleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "hs" {
		t.Errorf("name %q", g.Name)
	}
	st := g.Stat()
	if st.Inputs != 1 || st.Outputs != 1 || st.Transitions != 4 || st.Places != 4 {
		t.Errorf("stats %+v", st)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	// Initial marking: exactly one token, on the place of ack- → req+.
	total := 0
	for _, k := range g.Net.Initial {
		total += int(k)
	}
	if total != 1 {
		t.Errorf("initial tokens = %d", total)
	}
	reqPlus, _ := g.Net.TransitionByLabel("req+")
	if !g.Net.Enabled(g.Net.Initial, reqPlus) {
		t.Errorf("req+ must be initially enabled")
	}
}

func TestParseInstancesAndKinds(t *testing.T) {
	src := `
.model inst
.inputs a
.outputs b
.internal c
.graph
a+ b+
b+ c+
c+ a-
a- b-
b- c-
c- a+/2
a+/2 a-/2
a-/2 a+
.marking { <a-/2,a+> }
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := g.SignalIndex("c")
	if !ok || g.Signals[ci].Kind != Internal {
		t.Fatalf("internal signal c missing")
	}
	a2, ok := g.Net.TransitionByLabel("a+/2")
	if !ok {
		t.Fatalf("instance transition a+/2 missing")
	}
	l := g.Labels[a2]
	if l.Dir != Rising || l.Instance != 2 || g.Signals[l.Sig].Name != "a" {
		t.Fatalf("label of a+/2 = %+v", l)
	}
	if got := g.TransitionName(a2); got != "a+/2" {
		t.Fatalf("TransitionName = %q", got)
	}
	if ts := g.TransitionsOf(l.Sig); len(ts) != 4 {
		t.Fatalf("signal a has %d transitions, want 4", len(ts))
	}
}

func TestParseExplicitPlacesAndChoice(t *testing.T) {
	src := `
.model choice
.inputs a b
.outputs r
.graph
r+ P
P a+ b+
a+ a-
b+ b-
a- M
b- M
M r-
r- r+
.marking { <r-,r+> }
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.Net.PlaceByName("P")
	if !ok {
		t.Fatalf("place P missing")
	}
	if len(g.Net.Places[p].Post) != 2 {
		t.Fatalf("choice place P has %d fanouts, want 2", len(g.Net.Places[p].Post))
	}
	m, _ := g.Net.PlaceByName("M")
	if len(g.Net.Places[m].Pre) != 2 {
		t.Fatalf("merge place M has %d fanins, want 2", len(g.Net.Places[m].Pre))
	}
}

func TestParseDummy(t *testing.T) {
	src := `
.model dum
.inputs a
.outputs b
.dummy e0
.graph
a+ e0
e0 b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stat().Dummies != 1 {
		t.Fatalf("dummy count %d", g.Stat().Dummies)
	}
	e0, _ := g.Net.TransitionByLabel("e0")
	if !g.Labels[e0].IsDummy() {
		t.Fatalf("e0 not labelled dummy")
	}
}

func TestParseMarkingForms(t *testing.T) {
	src := `
.model marks
.inputs a
.outputs b
.graph
a+ p0
p0 b+
b+ a-
a- b-
b- a+
.marking { p0=2 <b-,a+> }
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := g.Net.PlaceByName("p0")
	if g.Net.Initial[p0] != 2 {
		t.Fatalf("p0 tokens = %d, want 2", g.Net.Initial[p0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing end", ".model x\n.inputs a\n.graph\na+ a-\n", "missing .end"},
		{"undeclared", ".model x\n.inputs a\n.graph\na+ b+\n.end\n", "undeclared"},
		{"dup signal", ".model x\n.inputs a\n.outputs a\n.graph\na+ a-\n.end\n", "twice"},
		{"place arc", ".model x\n.inputs a\n.graph\np q\na+ a-\n.end\n", "two places"},
		{"bad marking", ".model x\n.inputs a\n.graph\na+ a-\na- a+\n.marking { nowhere }\n.end\n", "unknown place"},
		{"bad implicit", ".model x\n.inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,b+> }\n.end\n", "unknown transitions"},
		{"token outside graph", ".model x\nfoo bar\n.end\n", "outside .graph"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestImmediateInputs(t *testing.T) {
	src := `
.model trig
.inputs a b
.outputs c d
.graph
a+ c+
b+ c+
c+ d+
d+ a- b-
a- c-
b- c-
c- d-
d- a+ b+
.marking { <d-,a+> <d-,b+> }
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := g.SignalIndex("c")
	di, _ := g.SignalIndex("d")
	ai, _ := g.SignalIndex("a")
	bi, _ := g.SignalIndex("b")
	got := g.ImmediateInputs(ci)
	if len(got) != 2 || got[0] != ai || got[1] != bi {
		t.Fatalf("triggers of c = %v, want [a b]", got)
	}
	got = g.ImmediateInputs(di)
	if len(got) != 1 || got[0] != ci {
		t.Fatalf("triggers of d = %v, want [c]", got)
	}
}

func TestSplitEdge(t *testing.T) {
	cases := []struct {
		tok  string
		sig  string
		dir  Dir
		inst int
		ok   bool
	}{
		{"a+", "a", Rising, 0, true},
		{"req-", "req", Falling, 0, true},
		{"x~", "x", Toggle, 0, true},
		{"ack+/3", "ack", Rising, 3, true},
		{"p0", "", 0, 0, false},
		{"+", "", 0, 0, false},
		{"a+/x", "", 0, 0, false},
	}
	for _, c := range cases {
		sig, dir, inst, ok := splitEdge(c.tok)
		if ok != c.ok || (ok && (sig != c.sig || dir != c.dir || inst != c.inst)) {
			t.Errorf("splitEdge(%q) = %q %v %d %v", c.tok, sig, dir, inst, ok)
		}
	}
}

// TestRoundTrip checks that Format output reparses to a structurally
// identical STG for a variety of constructs.
func TestRoundTrip(t *testing.T) {
	for _, src := range []string{simpleSrc, `
.model rt
.inputs a b
.outputs c
.graph
a+ c+ p1
b+ c+
p1 b+
c+ a- b-
a- c-
b- c-
c- a+
a+ b+
.marking { <c-,a+> }
.end
`} {
		g1, err := ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		out := Format(g1)
		g2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, out)
		}
		if len(g2.Signals) != len(g1.Signals) ||
			len(g2.Net.Transitions) != len(g1.Net.Transitions) ||
			len(g2.Net.Places) != len(g1.Net.Places) {
			t.Fatalf("round trip changed structure:\n%s", out)
		}
		// Same reachable behaviour: equal state counts.
		r1, err1 := g1.Net.Reach(1, 0)
		r2, err2 := g2.Net.Reach(1, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("reach: %v %v", err1, err2)
		}
		if len(r1.States) != len(r2.States) {
			t.Fatalf("round trip changed reachability: %d vs %d states", len(r1.States), len(r2.States))
		}
	}
}

func TestBuilderEquivalentToParser(t *testing.T) {
	built, err := NewBuilder("hs").
		Inputs("req").Outputs("ack").
		Cycle("req+", "ack+", "req-", "ack-").
		Token("ack-", "req+").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseString(simpleSrc)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := built.Net.Reach(1, 0)
	rp, _ := parsed.Net.Reach(1, 0)
	if len(rb.States) != len(rp.States) {
		t.Fatalf("builder graph differs: %d vs %d states", len(rb.States), len(rp.States))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Inputs("a").Arc("a+", "b+").Build(); err == nil {
		t.Fatalf("undeclared signal must fail")
	}
	if _, err := NewBuilder("x").Inputs("a").Arc("junk", "a+").Build(); err == nil {
		t.Fatalf("bad edge name must fail")
	}
	if _, err := NewBuilder("x").Inputs("a", "a").Build(); err == nil {
		t.Fatalf("duplicate signal must fail")
	}
	if _, err := NewBuilder("x").Inputs("a").Chain("a+", "a-").Token("a-", "a+").Build(); err == nil {
		t.Fatalf("marking a missing arc must fail")
	}
}

func TestBuilderPlaces(t *testing.T) {
	g, err := NewBuilder("ch").
		Inputs("a", "b").Outputs("r").
		Place("P", []string{"r+"}, []string{"a+", "b+"}).
		Chain("a+", "a-").
		Chain("b+", "b-").
		Place("M", []string{"a-", "b-"}, []string{"r-"}).
		Arc("r-", "r+").
		Token("r-", "r+").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Net.Reach(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// idle, post-r+ (choice), mid-a, mid-b, merged = 5 markings.
	if len(r.States) != 5 {
		t.Fatalf("choice cycle has %d states, want 5", len(r.States))
	}
}
