package stg

import (
	"fmt"
	"sort"

	"asyncsyn/internal/petri"
)

// Class is the structural Petri net class of an STG's underlying net —
// the property that determines which 1990s synthesis methods apply to it
// (the paper's §1: Lin/Vanbekbergen'92/Yu handle marked graphs, Lavagno
// live-safe free choice, Vanbekbergen'92b and this paper general nets).
type Class int

const (
	// MarkedGraph: every place has exactly one input and one output
	// transition — pure concurrency, no choice.
	MarkedGraph Class = iota
	// StateMachine: every transition has exactly one input and one
	// output place — pure choice, no concurrency.
	StateMachine
	// FreeChoice: whenever a place feeds several transitions, it is the
	// only input place of each of them (choice is never controlled).
	FreeChoice
	// ExtendedFreeChoice: transitions sharing any input place share all
	// of them.
	ExtendedFreeChoice
	// General: none of the above (non-free-choice, e.g. alex-nonfc).
	General
)

func (c Class) String() string {
	switch c {
	case MarkedGraph:
		return "marked graph"
	case StateMachine:
		return "state machine"
	case FreeChoice:
		return "free choice"
	case ExtendedFreeChoice:
		return "extended free choice"
	case General:
		return "general"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify determines the structural class of g's underlying net.
func (g *G) Classify() Class {
	mg, sm := true, true
	for _, p := range g.Net.Places {
		if len(p.Pre) != 1 || len(p.Post) != 1 {
			mg = false
		}
	}
	for _, t := range g.Net.Transitions {
		if len(t.Pre) != 1 || len(t.Post) != 1 {
			sm = false
		}
	}
	switch {
	case mg && sm:
		return MarkedGraph // a simple cycle is both; report the MG view
	case mg:
		return MarkedGraph
	case sm:
		return StateMachine
	}

	fc, efc := true, true
	presetKey := func(t petri.TransID) string {
		pre := append([]petri.PlaceID(nil), g.Net.Transitions[t].Pre...)
		sort.Slice(pre, func(a, b int) bool { return pre[a] < pre[b] })
		return fmt.Sprint(pre)
	}
	for _, p := range g.Net.Places {
		if len(p.Post) < 2 {
			continue
		}
		for _, t := range p.Post {
			if len(g.Net.Transitions[t].Pre) != 1 {
				fc = false
			}
		}
		// EFC: all successors of p have identical presets.
		ref := presetKey(p.Post[0])
		for _, t := range p.Post[1:] {
			if presetKey(t) != ref {
				efc = false
			}
		}
	}
	switch {
	case fc:
		return FreeChoice
	case efc:
		return ExtendedFreeChoice
	}
	return General
}
