package stg

import (
	"fmt"
	"io"
	"strings"

	"asyncsyn/internal/petri"
)

// Write renders g in the astg ".g" format accepted by Parse. Implicit
// places with exactly one fanin and one fanout are rendered as direct
// transition→transition arcs; all other places appear by name.
func Write(w io.Writer, g *G) error {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", g.Name)
	writeDecl := func(dir string, kind Kind) {
		var names []string
		for _, s := range g.Signals {
			if s.Kind == kind {
				names = append(names, s.Name)
			}
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, ".%s %s\n", dir, strings.Join(names, " "))
		}
	}
	writeDecl("inputs", Input)
	writeDecl("outputs", Output)
	writeDecl("internal", Internal)
	var dummies []string
	for t, l := range g.Labels {
		if l.IsDummy() {
			dummies = append(dummies, g.Net.Transitions[t].Label)
		}
	}
	if len(dummies) > 0 {
		fmt.Fprintf(&b, ".dummy %s\n", strings.Join(dummies, " "))
	}

	b.WriteString(".graph\n")
	renderedAsArc := make([]bool, len(g.Net.Places))
	for t := range g.Net.Transitions {
		var targets []string
		for _, p := range g.Net.Transitions[t].Post {
			pl := g.Net.Places[p]
			if pl.Implicit && len(pl.Pre) == 1 && len(pl.Post) == 1 {
				targets = append(targets, g.Net.Transitions[pl.Post[0]].Label)
				renderedAsArc[p] = true
			} else {
				targets = append(targets, pl.Name)
			}
		}
		if len(targets) > 0 {
			fmt.Fprintf(&b, "%s %s\n", g.Net.Transitions[t].Label, strings.Join(targets, " "))
		}
	}
	for p, pl := range g.Net.Places {
		if renderedAsArc[p] {
			continue
		}
		var targets []string
		for _, t := range pl.Post {
			targets = append(targets, g.Net.Transitions[t].Label)
		}
		if len(targets) > 0 {
			fmt.Fprintf(&b, "%s %s\n", pl.Name, strings.Join(targets, " "))
		}
	}

	var marks []string
	for p, k := range g.Net.Initial {
		for i := 0; i < int(k); i++ {
			marks = append(marks, markToken(g, petri.PlaceID(p), renderedAsArc[p]))
		}
	}
	fmt.Fprintf(&b, ".marking { %s }\n.end\n", strings.Join(marks, " "))
	_, err := io.WriteString(w, b.String())
	return err
}

func markToken(g *G, p petri.PlaceID, asArc bool) string {
	pl := g.Net.Places[p]
	if asArc {
		return fmt.Sprintf("<%s,%s>",
			g.Net.Transitions[pl.Pre[0]].Label, g.Net.Transitions[pl.Post[0]].Label)
	}
	return pl.Name
}

// Format renders g as a string in .g format.
func Format(g *G) string {
	var sb strings.Builder
	Write(&sb, g) // strings.Builder never errors
	return sb.String()
}
