package stg

import (
	"fmt"

	"asyncsyn/internal/petri"
)

// Builder constructs STGs programmatically with edge names ("req+",
// "ack-/2") instead of raw ids, collecting errors until Build.
type Builder struct {
	g   *G
	err error
	ts  map[string]petri.TransID
}

// NewBuilder starts a builder for a model with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: New(name), ts: make(map[string]petri.TransID)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("stg builder: "+format, args...)
	}
}

// Inputs declares input signals.
func (b *Builder) Inputs(names ...string) *Builder { return b.declare(Input, names) }

// Outputs declares output signals.
func (b *Builder) Outputs(names ...string) *Builder { return b.declare(Output, names) }

// Internals declares internal signals.
func (b *Builder) Internals(names ...string) *Builder { return b.declare(Internal, names) }

func (b *Builder) declare(kind Kind, names []string) *Builder {
	for _, n := range names {
		if _, ok := b.g.AddSignal(n, kind); !ok {
			b.fail("signal %q declared twice", n)
		}
	}
	return b
}

// trans resolves (creating on first use) the transition for edge name tok.
func (b *Builder) trans(tok string) (petri.TransID, bool) {
	if t, ok := b.ts[tok]; ok {
		return t, true
	}
	sig, dir, inst, ok := splitEdge(tok)
	if !ok {
		b.fail("bad transition name %q", tok)
		return 0, false
	}
	si, declared := b.g.SignalIndex(sig)
	if !declared {
		b.fail("transition %q of undeclared signal %q", tok, sig)
		return 0, false
	}
	t := b.g.AddTransition(si, dir, inst)
	b.ts[tok] = t
	return t, true
}

// Arc adds a causal arc from edge `from` to each edge in `to`.
func (b *Builder) Arc(from string, to ...string) *Builder {
	f, ok := b.trans(from)
	if !ok {
		return b
	}
	for _, dst := range to {
		d, ok := b.trans(dst)
		if !ok {
			return b
		}
		b.g.Net.Arc(f, d)
	}
	return b
}

// Chain adds arcs forming the sequence e1→e2→…→en.
func (b *Builder) Chain(edges ...string) *Builder {
	for i := 0; i+1 < len(edges); i++ {
		b.Arc(edges[i], edges[i+1])
	}
	return b
}

// Cycle adds arcs e1→e2→…→en→e1.
func (b *Builder) Cycle(edges ...string) *Builder {
	if len(edges) < 2 {
		b.fail("cycle needs at least two edges")
		return b
	}
	b.Chain(edges...)
	return b.Arc(edges[len(edges)-1], edges[0])
}

// Place adds an explicit place with arcs from each `from` edge and to
// each `to` edge.
func (b *Builder) Place(name string, from, to []string) *Builder {
	p := b.g.Net.AddPlace(name)
	for _, f := range from {
		if t, ok := b.trans(f); ok {
			b.g.Net.ConnectTP(t, p)
		}
	}
	for _, d := range to {
		if t, ok := b.trans(d); ok {
			b.g.Net.ConnectPT(p, t)
		}
	}
	return b
}

// Token places an initial token on the implicit place of arc from→to.
func (b *Builder) Token(from, to string) *Builder {
	f, okF := b.trans(from)
	d, okT := b.trans(to)
	if !okF || !okT {
		return b
	}
	for _, p := range b.g.Net.Transitions[f].Post {
		pl := b.g.Net.Places[p]
		if pl.Implicit && hasTrans(pl.Post, d) {
			b.ensureMarking()
			b.g.Net.Initial[p]++
			return b
		}
	}
	b.fail("no arc %s→%s to mark", from, to)
	return b
}

// TokenAt places an initial token on the named explicit place.
func (b *Builder) TokenAt(place string) *Builder {
	p, ok := b.g.Net.PlaceByName(place)
	if !ok {
		b.fail("no place %q to mark", place)
		return b
	}
	b.ensureMarking()
	b.g.Net.Initial[p]++
	return b
}

func (b *Builder) ensureMarking() {
	for len(b.g.Net.Initial) < len(b.g.Net.Places) {
		b.g.Net.Initial = append(b.g.Net.Initial, 0)
	}
}

// Build validates and returns the STG.
func (b *Builder) Build() (*G, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.ensureMarking()
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *G {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
