package stg_test

import (
	"testing"

	"asyncsyn/internal/bench"
	"asyncsyn/internal/stg"
)

// FuzzParse hammers the .g parser: it fronts untrusted network input
// through the daemon's POST /v1/synthesize, so it must return errors,
// never panic, on arbitrary bytes. Accepted inputs additionally go
// through Validate, Format, and a re-parse of the formatted output —
// the paths a parsed graph immediately hits in the pipeline.
func FuzzParse(f *testing.F) {
	// Seed with every embedded benchmark (the realistic corpus) ...
	for _, name := range bench.Available() {
		src, err := bench.Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	// ... and malformed fragments probing each parser feature: stray
	// tokens, duplicate declarations, bad markings, implicit places,
	// instance suffixes, dummies, huge counts, truncated files.
	for _, src := range []string{
		"",
		".end",
		".model m\n.end",
		".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end",
		".inputs a a\n.end",
		".inputs a\n.dummy a\n.graph\na a+\n.end",
		".outputs b\n.graph\nb+/999999999 b-\n.end",
		".outputs b\n.graph\np0 p1\n.end",
		".outputs b\n.graph\nb+ b-\n.marking { p7 }\n.end",
		".outputs b\n.graph\nb+ b-\n.marking { <b+,b-> <b-,b+> }\n.end",
		".outputs b\n.graph\nb+ b-\n.marking { p0=99999 }\n.end",
		".outputs b\n.graph\nb+ b-\n.marking { <b+=2 }\n.end",
		".graph\nz+ z-\n.end",
		".model\n.inputs\n.graph\n.marking\n.end",
		".outputs b\n.graph\nb~ b+\nb+ b~/2\n.end",
		"# comment only\n.outputs b\n.graph\nb+ b- # tail\n.end",
		".outputs b\n.capacity p0 2\n.graph\nb+ b-\n.end",
		".marking { p0 }\n.end",
	} {
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src string) {
		g, err := stg.ParseString(src)
		if err != nil {
			if g != nil {
				t.Fatalf("non-nil graph alongside error %v", err)
			}
			return
		}
		// A successfully parsed graph must survive the immediate
		// downstream calls without panicking; their errors are fine.
		_ = g.Validate()
		out := stg.Format(g)
		// The formatter's output is program-generated; re-parsing it
		// must not panic either (errors tolerated: Format can emit
		// names the parser's heuristics read differently).
		_, _ = stg.ParseString(out)
	})
}
