// Package stg implements Signal Transition Graphs: Petri nets whose
// transitions are interpreted as rising (s+) and falling (s−) edges of
// circuit signals. It provides the astg/SIS ".g" text format (parser and
// writer), a programmatic builder, and structural analyses such as the
// immediate-input (trigger) relation used by the modular partitioning
// algorithm.
package stg

import (
	"fmt"
	"sort"

	"asyncsyn/internal/petri"
)

// Kind classifies a signal.
type Kind int

const (
	// Input signals are driven by the environment.
	Input Kind = iota
	// Output signals are driven by the circuit and observable.
	Output
	// Internal signals are driven by the circuit but not observable.
	Internal
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Signal is a circuit wire named in the STG.
type Signal struct {
	Name string
	Kind Kind
}

// Dir is the direction of a signal transition.
type Dir int

const (
	// Rising is a 0→1 edge (s+).
	Rising Dir = iota
	// Falling is a 1→0 edge (s−).
	Falling
	// Toggle is a direction-free edge (s~); accepted on parse, expanded by
	// the state-graph layer during value inference.
	Toggle
)

func (d Dir) String() string {
	switch d {
	case Rising:
		return "+"
	case Falling:
		return "-"
	case Toggle:
		return "~"
	}
	return "?"
}

// Label attaches STG meaning to a Petri net transition.
type Label struct {
	Sig      int // index into G.Signals; -1 for dummy transitions
	Dir      Dir
	Instance int // multiple transitions of the same edge: a+/1, a+/2, ...
}

// IsDummy reports whether the transition carries no signal edge.
func (l Label) IsDummy() bool { return l.Sig < 0 }

// G is a signal transition graph.
type G struct {
	Name    string
	Net     *petri.Net
	Signals []Signal
	Labels  []Label // parallel to Net.Transitions

	sigIndex map[string]int
}

// New returns an empty STG with the given model name.
func New(name string) *G {
	return &G{
		Name:     name,
		Net:      petri.New(name),
		sigIndex: make(map[string]int),
	}
}

// AddSignal declares a signal; redeclaring a name is an error surfaced by
// returning the existing index with ok=false.
func (g *G) AddSignal(name string, kind Kind) (int, bool) {
	if i, dup := g.sigIndex[name]; dup {
		return i, false
	}
	g.Signals = append(g.Signals, Signal{Name: name, Kind: kind})
	g.sigIndex[name] = len(g.Signals) - 1
	return len(g.Signals) - 1, true
}

// SignalIndex returns the index of a declared signal name.
func (g *G) SignalIndex(name string) (int, bool) {
	i, ok := g.sigIndex[name]
	return i, ok
}

// SignalNames returns all signal names in declaration order.
func (g *G) SignalNames() []string {
	out := make([]string, len(g.Signals))
	for i, s := range g.Signals {
		out[i] = s.Name
	}
	return out
}

// NonInputs returns the indices of output and internal signals, sorted by
// name for deterministic iteration.
func (g *G) NonInputs() []int {
	var idx []int
	for i, s := range g.Signals {
		if s.Kind != Input {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return g.Signals[idx[a]].Name < g.Signals[idx[b]].Name })
	return idx
}

// Outputs returns indices of output signals sorted by name.
func (g *G) Outputs() []int {
	var idx []int
	for i, s := range g.Signals {
		if s.Kind == Output {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return g.Signals[idx[a]].Name < g.Signals[idx[b]].Name })
	return idx
}

// AddTransition creates a labelled transition for signal edge sig/dir with
// the given instance number (0 for the unnumbered instance) and returns
// its Petri net id.
func (g *G) AddTransition(sig int, dir Dir, instance int) petri.TransID {
	label := transName(g.Signals[sig].Name, dir, instance)
	t := g.Net.AddTransition(label)
	g.Labels = append(g.Labels, Label{Sig: sig, Dir: dir, Instance: instance})
	return t
}

// AddDummy creates an unlabelled (dummy/ε) transition.
func (g *G) AddDummy(name string) petri.TransID {
	t := g.Net.AddTransition(name)
	g.Labels = append(g.Labels, Label{Sig: -1})
	return t
}

func transName(sig string, dir Dir, instance int) string {
	s := sig + dir.String()
	if instance > 0 {
		s = fmt.Sprintf("%s/%d", s, instance)
	}
	return s
}

// TransitionName renders the canonical name of transition t.
func (g *G) TransitionName(t petri.TransID) string {
	l := g.Labels[t]
	if l.IsDummy() {
		return g.Net.Transitions[t].Label
	}
	return transName(g.Signals[l.Sig].Name, l.Dir, l.Instance)
}

// TransitionsOf returns all transition ids of signal sig, in id order.
func (g *G) TransitionsOf(sig int) []petri.TransID {
	var out []petri.TransID
	for t, l := range g.Labels {
		if l.Sig == sig {
			out = append(out, petri.TransID(t))
		}
	}
	return out
}

// Validate checks STG-level well-formedness on top of the Petri net
// structural checks.
func (g *G) Validate() error {
	if err := g.Net.Validate(); err != nil {
		return err
	}
	if len(g.Labels) != len(g.Net.Transitions) {
		return fmt.Errorf("stg: %d labels for %d transitions", len(g.Labels), len(g.Net.Transitions))
	}
	used := make([]bool, len(g.Signals))
	for _, l := range g.Labels {
		if l.Sig >= 0 {
			used[l.Sig] = true
		}
	}
	for i, u := range used {
		if !u {
			return fmt.Errorf("stg: signal %q has no transitions", g.Signals[i].Name)
		}
	}
	return nil
}

// ImmediateInputs returns, for non-input signal o (by index), the set of
// signal indices whose transitions directly precede (trigger) some
// transition of o through a single place: the STG specifies a causal arc
// s* → o*. The output's own index is excluded. The result is sorted.
func (g *G) ImmediateInputs(o int) []int {
	set := make(map[int]bool)
	for t, l := range g.Labels {
		if l.Sig != o {
			continue
		}
		for _, p := range g.Net.Transitions[t].Pre {
			for _, pred := range g.Net.Places[p].Pre {
				pl := g.Labels[pred]
				if !pl.IsDummy() && pl.Sig != o {
					set[pl.Sig] = true
				}
			}
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Stats summarises the STG structure.
type Stats struct {
	Signals     int
	Inputs      int
	Outputs     int
	Internals   int
	Transitions int
	Places      int
	Dummies     int
}

// Stat computes structural statistics.
func (g *G) Stat() Stats {
	st := Stats{Signals: len(g.Signals), Transitions: len(g.Net.Transitions), Places: len(g.Net.Places)}
	for _, s := range g.Signals {
		switch s.Kind {
		case Input:
			st.Inputs++
		case Output:
			st.Outputs++
		case Internal:
			st.Internals++
		}
	}
	for _, l := range g.Labels {
		if l.IsDummy() {
			st.Dummies++
		}
	}
	return st
}
