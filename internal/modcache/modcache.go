// Package modcache is the cross-output module solve cache: a
// concurrency-safe map from canonical CSC problem signatures
// (sg.SignatureOf) to solved phase columns. Modular synthesis solves
// one quotient per output signal, and distinct outputs of one benchmark
// — or one benchmark re-run under a different engine sweep — routinely
// produce byte-identical quotients; the cache answers those repeats
// without re-encoding or re-searching.
//
// Three properties keep cached and cold runs bit-identical:
//
//   - The key carries the exact Layout hash, every solver-visible
//     option (engine, encoding, budgets), and the warm-chain hash, so a
//     hit guarantees the producing solve saw the same formula, the same
//     search parameters, and the same seed clauses.
//   - The entry stores the solve's outcome wholesale: decoded (and
//     tightened) phase columns, formula statistics, and the normalized
//     learned-clause export. The hit path replays the export into the
//     caller's warm chain, so downstream solves of the chain observe
//     the same seeds whether this solve was computed or replayed.
//   - Only deterministic outcomes are cached (Sat, Unsat, and
//     BacktrackLimit, which is a function of the budget in the key);
//     errors — cancellation, internal failures — are never stored.
//
// Do provides singleflight semantics: concurrent callers with one key
// share a single computation (metrics: modcache_inflight), and a
// producer that fails releases its waiters to retry rather than caching
// the error.
//
// The content-addressed on-disk record is also the cluster wire format:
// EncodeRecord/DecodeRecord serialize one (key, entry) pair, and
// RecordDigest names it, so a record written by one node can be served
// verbatim to another (the daemon's GET/PUT /v1/cache/{key} exchange).
// A Remote attached with SetRemote becomes a third lookup tier: a local
// miss pulls from peers before solving, inside the same singleflight
// guard, so at most one fetch-or-solve runs per key however many
// requests race. Every imported record is re-validated (schema, digest,
// key match) — a corrupt or foreign record reads as a miss, never as a
// wrong answer — which keeps digests bit-identical across every
// distribution topology: cold, disk-warmed, or peer-warmed.
package modcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/synerr"
)

// Key identifies one module solve. Two solves with equal keys produce
// byte-identical results, so every field the solver's outcome depends
// on must appear here.
type Key struct {
	// Canon and Layout are the problem signature (sg.SignatureOf).
	Canon  string `json:"canon"`
	Layout string `json:"layout"`
	// M is the number of state signals attempted.
	M int `json:"m"`
	// Engine and ExpandXor select the solver and encoding.
	Engine    int  `json:"engine"`
	ExpandXor bool `json:"expand_xor"`
	// SkipUSC mirrors SolveOptions restricting the encoded pair set.
	SkipUSC bool `json:"skip_usc,omitempty"`
	// MaxBacktracks and BDDNodeLimit are the search budgets; a
	// BacktrackLimit verdict is only deterministic relative to them.
	MaxBacktracks int `json:"max_backtracks"`
	BDDNodeLimit  int `json:"bdd_node_limit,omitempty"`
	// WarmHash fingerprints the warm-chain state seeded into the
	// search ("-" when the caller has no chain): seeds steer the DPLL
	// variable order, so different seeds can reach different models.
	WarmHash string `json:"warm_hash"`
}

// Entry is one cached solve outcome.
type Entry struct {
	// Cols holds the decoded, tightened phase columns when Status is
	// Sat; nil otherwise.
	Cols [][]sg.Phase `json:"cols"`
	// Formula statistics of the producing solve (FormulaStats fields
	// that survive a replay).
	Signals  int        `json:"signals"`
	Vars     int        `json:"vars"`
	Clauses  int        `json:"clauses"`
	Literals int        `json:"literals"`
	Status   sat.Status `json:"status"`
	Engine   string     `json:"engine"`
	// Warm is the normalized learned-clause export the producing solve
	// contributed to its warm chain; hits replay it so the chain state
	// matches the miss path exactly.
	Warm [][]sat.Lit `json:"warm,omitempty"`
}

// clone deep-copies the mutable slices so callers can own the result.
func (e *Entry) clone() *Entry {
	out := *e
	if e.Cols != nil {
		out.Cols = make([][]sg.Phase, len(e.Cols))
		for i, c := range e.Cols {
			out.Cols[i] = append([]sg.Phase(nil), c...)
		}
	}
	if e.Warm != nil {
		out.Warm = make([][]sat.Lit, len(e.Warm))
		for i, c := range e.Warm {
			out.Warm[i] = append([]sat.Lit(nil), c...)
		}
	}
	return &out
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  *Entry
	err  error
}

// Remote is a further lookup tier behind the local memory and disk
// tiers: typically another node's cache reached over HTTP (the
// daemon's peer cache exchange). Fetch returns the peer's entry for
// key, or (nil, error) on miss or failure — both read as a local
// miss and fall through to a solve. Implementations must be safe for
// concurrent use and must validate what they fetch (DecodeRecord plus
// a key comparison) so a damaged peer record can never corrupt the
// local cache.
type Remote interface {
	Fetch(ctx context.Context, key Key) (*Entry, error)
}

// Store is the lookup surface the SAT layer solves through: Do with
// singleflight-or-equivalent semantics. *Cache is the shared
// implementation; *Overlay is the speculative per-lane view layered
// over it. A nil Store means "no cache" — callers that hold a possibly
// nil *Cache must convert it to a nil interface themselves (a typed nil
// would defeat the nil check).
type Store interface {
	Do(ctx context.Context, key Key, solve func() (*Entry, error)) (entry *Entry, hit bool, err error)
}

// BaseOf returns the concrete shared cache behind a Store, when there
// is one. Speculative module solving needs the concrete type to build
// per-lane overlays; an unknown Store implementation reads as "no
// speculation support" rather than an error.
func BaseOf(s Store) (*Cache, bool) {
	c, ok := s.(*Cache)
	return c, ok && c != nil
}

// Cache is the solve cache. The zero value is not usable; construct
// with New or NewDisk. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*Entry
	byDigest map[string]Key // RecordDigest → key, for Export
	inflight map[Key]*flight
	dir      string // "" = memory only
	remote   Remote // nil = no peer tier
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{
		entries:  make(map[Key]*Entry),
		byDigest: make(map[string]Key),
		inflight: make(map[Key]*flight),
	}
}

// SetRemote attaches (or, with nil, detaches) the peer tier consulted
// on local misses. Safe to call while the cache is serving.
func (c *Cache) SetRemote(r Remote) {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// NewDisk returns a cache backed by content-addressed JSON files under
// dir (created if missing), layered over the in-memory map: lookups try
// memory, then disk; stores write through. Disk I/O failures degrade to
// memory-only behavior, never to a solve error.
func NewDisk(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modcache: %w", err)
	}
	c := New()
	c.dir = dir
	return c, nil
}

// Do returns the cached entry for key, computing it with solve on a
// miss. Concurrent calls with equal keys share one computation. hit
// reports whether the entry was served without running solve (memory,
// disk, or in-flight dedup). The returned entry is the caller's own
// deep copy. solve errors are returned to every waiter but never
// cached; a canceled ctx aborts the wait with synerr.Canceled.
func (c *Cache) Do(ctx context.Context, key Key, solve func() (*Entry, error)) (entry *Entry, hit bool, err error) {
	mc := metrics.From(ctx)
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			mc.Add(metrics.CacheHits, 1)
			return e.clone(), true, nil
		}
		if c.dir != "" {
			if e := c.loadDisk(key); e != nil {
				c.entries[key] = e
				c.byDigest[RecordDigest(key)] = key
				c.mu.Unlock()
				mc.Add(metrics.CacheHits, 1)
				return e.clone(), true, nil
			}
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			mc.Add(metrics.CacheInflight, 1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, synerr.Canceled(ctx.Err())
			}
			if fl.err == nil {
				return fl.val.clone(), true, nil
			}
			// The producer failed (e.g. its context was canceled).
			// Its error may not apply to us — loop and retry.
			if ctx.Err() != nil {
				return nil, false, synerr.Canceled(ctx.Err())
			}
			continue
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		remote := c.remote
		c.mu.Unlock()

		// Peer tier: pull-on-miss, inside the singleflight guard so
		// concurrent callers never issue duplicate fetches. A fetched
		// entry is stored and served exactly like a local hit; any
		// fetch failure falls through to a local solve.
		if remote != nil {
			if e, ferr := remote.Fetch(ctx, key); ferr == nil && e != nil {
				mc.Add(metrics.CachePeerHits, 1)
				c.mu.Lock()
				delete(c.inflight, key)
				stored := e.clone()
				c.store(key, stored)
				fl.val = stored
				c.mu.Unlock()
				close(fl.done)
				return e, true, nil
			}
			mc.Add(metrics.CachePeerMisses, 1)
		}

		mc.Add(metrics.CacheMisses, 1)
		val, solveErr := solve()

		c.mu.Lock()
		delete(c.inflight, key)
		if solveErr == nil {
			// Waiters clone from the cached copy, never from val: the
			// producing caller owns val and may mutate it after return.
			stored := val.clone()
			c.store(key, stored)
			fl.val = stored
		} else {
			fl.err = solveErr
		}
		c.mu.Unlock()
		close(fl.done)
		return val, false, solveErr
	}
}

// peek returns a copy of the entry for key from the local tiers
// (memory, then disk, promoting a disk hit to memory exactly as Do
// does), or nil. Unlike Do it records no counters, joins no
// singleflight, and never solves — the overlay's read path, which must
// observe the shared tiers without perturbing them.
func (c *Cache) peek(key Key) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.clone()
	}
	if c.dir != "" {
		if e := c.loadDisk(key); e != nil {
			c.entries[key] = e
			c.byDigest[RecordDigest(key)] = key
			return e.clone()
		}
	}
	return nil
}

// contains reports whether key is resolvable from the local tiers
// (promoting a disk hit), without copying the entry.
func (c *Cache) contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return true
	}
	if c.dir != "" {
		if e := c.loadDisk(key); e != nil {
			c.entries[key] = e
			c.byDigest[RecordDigest(key)] = key
			return true
		}
	}
	return false
}

// putIfAbsent stores e (which must be a private copy the cache may own)
// under key unless the key is already present — first write wins, and
// entries for one key are byte-identical by construction, so there is
// nothing to reconcile.
func (c *Cache) putIfAbsent(key Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.store(key, e)
}

// remoteTier snapshots the attached peer tier (nil when none).
func (c *Cache) remoteTier() Remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// store inserts e (which must be a private copy the cache owns) under
// key in every local tier. Call with c.mu held.
func (c *Cache) store(key Key, e *Entry) {
	c.entries[key] = e
	c.byDigest[RecordDigest(key)] = key
	if c.dir != "" {
		c.writeDisk(key, e)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// diskSchema versions the on-disk record layout.
const diskSchema = 1

// diskRecord is the on-disk JSON envelope. The full key is stored and
// verified on load, so a content-hash collision or a record written by
// an incompatible build reads as a miss, never as a wrong answer.
type diskRecord struct {
	Schema int    `json:"schema"`
	Key    Key    `json:"key"`
	Entry  *Entry `json:"entry"`
}

// RecordDigest content-addresses a key: the hex SHA-256 of its
// canonical JSON encoding. It names the key's record both on disk
// (<digest>.json under the cache directory) and on the wire (the
// {key} segment of the daemon's /v1/cache/{key} exchange), so a
// record travels between nodes under one stable identity.
func RecordDigest(key Key) string {
	b, _ := json.Marshal(key)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// EncodeRecord serializes one (key, entry) pair in the on-disk /
// wire record format.
func EncodeRecord(key Key, e *Entry) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("modcache: nil entry")
	}
	return json.Marshal(diskRecord{Schema: diskSchema, Key: key, Entry: e})
}

// DecodeRecord parses and validates a record produced by EncodeRecord
// (or read from a cache directory): the envelope must parse, carry the
// current schema version, and hold an entry. Callers that know which
// key they asked for must additionally compare the returned key (or
// its RecordDigest) before trusting the entry.
func DecodeRecord(b []byte) (Key, *Entry, error) {
	var rec diskRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return Key{}, nil, fmt.Errorf("modcache: bad record: %w", err)
	}
	if rec.Schema != diskSchema {
		return Key{}, nil, fmt.Errorf("modcache: record schema %d, want %d", rec.Schema, diskSchema)
	}
	if rec.Entry == nil {
		return Key{}, nil, fmt.Errorf("modcache: record has no entry")
	}
	return rec.Key, rec.Entry, nil
}

// Export returns the encoded record named by digest, from memory or —
// on a disk-backed cache — straight from the cache directory, so a
// node can serve records persisted by earlier processes. The bool is
// false when no valid record by that name exists.
func (c *Cache) Export(digest string) ([]byte, bool) {
	if !validDigest(digest) {
		return nil, false
	}
	c.mu.Lock()
	key, ok := c.byDigest[digest]
	var e *Entry
	if ok {
		e = c.entries[key]
	}
	dir := c.dir
	c.mu.Unlock()
	if e != nil {
		b, err := EncodeRecord(key, e)
		return b, err == nil
	}
	if dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(dir, digest+".json"))
	if err != nil {
		return nil, false
	}
	k, _, derr := DecodeRecord(b)
	if derr != nil || RecordDigest(k) != digest {
		return nil, false
	}
	return b, true
}

// Import validates an encoded record and stores it in every local
// tier, returning its digest. An already-present key is left
// untouched (first write wins — entries for one key are byte-identical
// by construction, so there is nothing to reconcile).
func (c *Cache) Import(b []byte) (string, error) {
	key, e, err := DecodeRecord(b)
	if err != nil {
		return "", err
	}
	d := RecordDigest(key)
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.store(key, e.clone())
	}
	c.mu.Unlock()
	return d, nil
}

// validDigest guards Export's disk path against traversal: a digest is
// exactly 64 lowercase hex characters.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for _, r := range d {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// diskPath content-addresses key under c.dir.
func (c *Cache) diskPath(key Key) string {
	return filepath.Join(c.dir, RecordDigest(key)+".json")
}

// loadDisk reads and verifies the record for key; nil on any mismatch
// or I/O error. Called with c.mu held (file reads under the lock are
// acceptable: records are small and the path is a startup-warming one).
func (c *Cache) loadDisk(key Key) *Entry {
	b, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return nil
	}
	var rec diskRecord
	if json.Unmarshal(b, &rec) != nil || rec.Schema != diskSchema || rec.Key != key || rec.Entry == nil {
		return nil
	}
	return rec.Entry
}

// writeDisk persists the record best-effort via temp file + rename so
// concurrent processes never observe a torn record.
func (c *Cache) writeDisk(key Key, e *Entry) {
	b, err := json.Marshal(diskRecord{Schema: diskSchema, Key: key, Entry: e})
	if err != nil {
		return
	}
	path := c.diskPath(key)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}
