package modcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/sat"
	"asyncsyn/internal/sg"
)

func testKey(layout string) Key {
	return Key{Canon: "canon-" + layout, Layout: layout, M: 1, Engine: 3,
		MaxBacktracks: 1000, WarmHash: "-"}
}

func testEntry() *Entry {
	return &Entry{
		Cols:    [][]sg.Phase{{sg.P0, sg.P1}, {sg.PUp, sg.PDown}},
		Signals: 1, Vars: 8, Clauses: 12, Literals: 30,
		Status: sat.Sat, Engine: "dpll",
		Warm: [][]sat.Lit{{sat.PosLit(0), sat.NegLit(1)}},
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New()
	ctx := context.Background()
	calls := 0
	solve := func() (*Entry, error) { calls++; return testEntry(), nil }

	e1, hit, err := c.Do(ctx, testKey("a"), solve)
	if err != nil || hit {
		t.Fatalf("first Do: hit=%v err=%v", hit, err)
	}
	e2, hit, err := c.Do(ctx, testKey("a"), solve)
	if err != nil || !hit {
		t.Fatalf("second Do: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Fatalf("solve ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// The hit must be a private deep copy: mutating one result must not
	// leak into the other or into the cache.
	e2.Cols[0][0] = sg.P1
	e2.Warm[0][0] = sat.PosLit(9)
	if e1.Cols[0][0] != sg.P0 || e1.Warm[0][0] != sat.PosLit(0) {
		t.Fatal("hit shares slices with the producer's entry")
	}
	e3, _, _ := c.Do(ctx, testKey("a"), solve)
	if e3.Cols[0][0] != sg.P0 {
		t.Fatal("mutating a returned entry corrupted the cache")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New()
	ctx := context.Background()
	var calls atomic.Int64
	release := make(chan struct{})
	solve := func() (*Entry, error) {
		calls.Add(1)
		<-release
		return testEntry(), nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			e, _, err := c.Do(ctx, testKey("sf"), solve)
			if err != nil || e == nil || e.Status != sat.Sat {
				t.Errorf("Do: e=%v err=%v", e, err)
			}
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("solve ran %d times under contention, want 1", n)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New()
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(ctx, testKey("e"), func() (*Entry, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	e, hit, err := c.Do(ctx, testKey("e"), func() (*Entry, error) { calls++; return testEntry(), nil })
	if err != nil || hit || e == nil {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
	if calls != 2 {
		t.Fatalf("solve ran %d times, want 2 (error must not be cached)", calls)
	}
}

func TestDoCanceledWait(t *testing.T) {
	c := New()
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), testKey("c"), func() (*Entry, error) {
		<-release
		return testEntry(), nil
	})
	// Wait until the flight is registered.
	for {
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n == 1 {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, testKey("c"), nil); err == nil {
		t.Fatal("canceled waiter returned no error")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry()
	if _, hit, err := c1.Do(ctx, testKey("d"), func() (*Entry, error) { return want, nil }); err != nil || hit {
		t.Fatalf("populate: hit=%v err=%v", hit, err)
	}

	// A fresh cache over the same directory must hit without solving.
	c2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, hit, err := c2.Do(ctx, testKey("d"), func() (*Entry, error) {
		t.Fatal("solve ran despite a disk record")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("disk lookup: hit=%v err=%v", hit, err)
	}
	if e.Status != want.Status || e.Clauses != want.Clauses ||
		len(e.Cols) != len(want.Cols) || e.Cols[1][1] != want.Cols[1][1] ||
		len(e.Warm) != 1 || e.Warm[0][1] != want.Warm[0][1] {
		t.Fatalf("disk round trip mangled the entry: %+v", e)
	}

	// A different key must miss: the content address covers every field.
	k2 := testKey("d")
	k2.MaxBacktracks++
	ran := false
	if _, hit, _ := c2.Do(ctx, k2, func() (*Entry, error) { ran = true; return testEntry(), nil }); hit || !ran {
		t.Fatal("budget change did not miss")
	}
}

func TestDoCounters(t *testing.T) {
	c := New()
	m := metrics.New()
	ctx := metrics.With(context.Background(), m)
	c.Do(ctx, testKey("m"), func() (*Entry, error) { return testEntry(), nil })
	c.Do(ctx, testKey("m"), nil)
	d := m.Snapshot()
	if d[metrics.CacheMisses] != 1 || d[metrics.CacheHits] != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", d[metrics.CacheHits], d[metrics.CacheMisses])
	}
}
