package modcache

import (
	"context"

	"asyncsyn/internal/metrics"
)

// Overlay is a speculative, lane-private view of a shared Cache. A
// speculative module solve must behave exactly as the sequential run
// would have — same hits, same misses, same counters — but it cannot
// write into the shared cache, because its writes would land out of
// canonical order and change what later (canonically earlier!) modules
// observe. The overlay therefore:
//
//   - answers reads from its own private entries first, then from the
//     shared cache's local tiers (memory and disk, via peek — no
//     counters, no singleflight), then from the shared remote tier;
//   - records every shared-tier miss, in order, for commit-time
//     revalidation;
//   - stores solved (and peer-fetched) entries privately, in solve
//     order.
//
// At the lane's deterministic commit point, Commit revalidates each
// recorded miss against the shared cache: if any key has appeared
// since, the sequential run would have hit where this lane missed (its
// counters, warm absorptions, and solve work differ), so the whole
// lane result is reported as a conflict and the caller re-solves
// inline; otherwise the private entries merge into the shared cache in
// solve order, exactly as the sequential run would have stored them.
// Note the shared cache only ever gains entries from pre-existing state
// and canonically earlier commits, so every hit an overlay observes is
// one the sequential run would also have taken — only misses can be
// invalidated, and those are exactly what Commit revalidates.
//
// Lanes deliberately bypass the shared singleflight: two lanes solving
// the same key concurrently each solve it privately (the sequential run
// would have solved it once and hit the second time — which is exactly
// what revalidation detects, forcing the later lane to re-solve
// inline). An Overlay is not safe for concurrent use; it belongs to
// one speculative lane.
type Overlay struct {
	shared *Cache
	priv   map[Key]*Entry
	order  []Key // private stores, in solve order
	misses []Key // shared-tier misses, for commit-time revalidation
}

// NewOverlay returns an empty overlay over the shared cache.
func NewOverlay(shared *Cache) *Overlay {
	return &Overlay{shared: shared, priv: make(map[Key]*Entry)}
}

// Do implements Store with the overlay semantics above. Counter
// placement mirrors Cache.Do exactly: a private or shared-tier hit is
// a CacheHits, a peer fetch is CachePeerHits (served as a hit, no
// CacheHits) or CachePeerMisses, and a local solve is CacheMisses.
// Errors are never stored.
func (o *Overlay) Do(ctx context.Context, key Key, solve func() (*Entry, error)) (*Entry, bool, error) {
	mc := metrics.From(ctx)
	if e, ok := o.priv[key]; ok {
		mc.Add(metrics.CacheHits, 1)
		return e.clone(), true, nil
	}
	if e := o.shared.peek(key); e != nil {
		mc.Add(metrics.CacheHits, 1)
		return e, true, nil
	}
	o.misses = append(o.misses, key)
	if remote := o.shared.remoteTier(); remote != nil {
		if e, ferr := remote.Fetch(ctx, key); ferr == nil && e != nil {
			o.put(key, e.clone())
			mc.Add(metrics.CachePeerHits, 1)
			return e, true, nil
		}
		mc.Add(metrics.CachePeerMisses, 1)
	}
	mc.Add(metrics.CacheMisses, 1)
	val, err := solve()
	if err != nil {
		return val, false, err
	}
	o.put(key, val.clone())
	return val, false, nil
}

func (o *Overlay) put(key Key, e *Entry) {
	o.priv[key] = e
	o.order = append(o.order, key)
}

// Commit revalidates the overlay against the shared cache and, when
// clean, merges the private entries into it in solve order (first
// write wins). It returns false — merging nothing — when any recorded
// miss has since become resolvable from the shared tiers: the lane's
// observed cache behavior no longer matches what the sequential order
// would have produced, and the caller must discard the lane and
// re-solve inline. Only the deterministic commit loop may call Commit,
// and it must do so in canonical order; the overlay is spent
// afterwards. Nil-safe (a nil overlay commits trivially).
func (o *Overlay) Commit() bool {
	if o == nil {
		return true
	}
	for _, key := range o.misses {
		if o.shared.contains(key) {
			return false
		}
	}
	for _, key := range o.order {
		o.shared.putIfAbsent(key, o.priv[key])
	}
	return true
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*Overlay)(nil)
)
