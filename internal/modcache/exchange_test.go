package modcache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/sat"
)

// TestDiskCorruptionMissesCleanly pins the robustness contract the
// remote tier inherits: a damaged on-disk record — truncated, garbage,
// wrong schema, or swapped with another key's record — reads as a
// miss that recomputes, never as an error or a wrong answer.
func TestDiskCorruptionMissesCleanly(t *testing.T) {
	ctx := context.Background()
	damage := []struct {
		name  string
		wreck func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-schema", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"schema":999,"key":{},"entry":{}}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"key-swap", func(t *testing.T, path string) {
			// A record whose content is valid but belongs to a different
			// key: must fail the stored-key comparison, not be served.
			other, err := EncodeRecord(testKey("other"), testEntry())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, other, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			c1, err := NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("victim")
			if _, _, err := c1.Do(ctx, key, func() (*Entry, error) { return testEntry(), nil }); err != nil {
				t.Fatal(err)
			}
			path := c1.diskPath(key)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("record not written: %v", err)
			}
			d.wreck(t, path)

			// A fresh cache over the damaged directory must recompute
			// without surfacing an error.
			c2, err := NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			ran := false
			e, hit, err := c2.Do(ctx, key, func() (*Entry, error) { ran = true; return testEntry(), nil })
			if err != nil {
				t.Fatalf("corrupt record surfaced an error: %v", err)
			}
			if hit || !ran {
				t.Fatalf("corrupt record served as a hit (hit=%v ran=%v)", hit, ran)
			}
			if e == nil || e.Status != sat.Sat {
				t.Fatalf("recompute returned %+v", e)
			}
		})
	}
}

// TestRecordRoundTrip pins the wire format: Encode → Decode is
// lossless and RecordDigest matches the on-disk content address.
func TestRecordRoundTrip(t *testing.T) {
	key, want := testKey("wire"), testEntry()
	b, err := EncodeRecord(key, want)
	if err != nil {
		t.Fatal(err)
	}
	k, e, err := DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if k != key {
		t.Fatalf("key mangled: %+v != %+v", k, key)
	}
	if !reflect.DeepEqual(e, want) {
		t.Fatalf("entry mangled:\n got %+v\nwant %+v", e, want)
	}

	c, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(context.Background(), key, func() (*Entry, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if got, wantPath := filepath.Base(c.diskPath(key)), RecordDigest(key)+".json"; got != wantPath {
		t.Fatalf("disk name %s != digest name %s", got, wantPath)
	}
}

// TestExportImport pins the exchange surface: Export serves a record
// from memory or straight from disk; Import validates and stores it;
// invalid digests and records are rejected.
func TestExportImport(t *testing.T) {
	ctx := context.Background()
	key := testKey("x")
	digest := RecordDigest(key)

	src := New()
	if _, _, err := src.Do(ctx, key, func() (*Entry, error) { return testEntry(), nil }); err != nil {
		t.Fatal(err)
	}
	rec, ok := src.Export(digest)
	if !ok {
		t.Fatal("Export missed a just-stored record")
	}
	if _, ok := src.Export("zz"); ok {
		t.Fatal("Export served a malformed digest")
	}
	if _, ok := src.Export(RecordDigest(testKey("absent"))); ok {
		t.Fatal("Export served an absent record")
	}

	dst := New()
	d, err := dst.Import(rec)
	if err != nil {
		t.Fatal(err)
	}
	if d != digest {
		t.Fatalf("Import digest %s != %s", d, digest)
	}
	e, hit, err := dst.Do(ctx, key, func() (*Entry, error) {
		t.Fatal("solve ran despite an imported record")
		return nil, nil
	})
	if err != nil || !hit || e.Status != sat.Sat {
		t.Fatalf("imported record not served: hit=%v err=%v", hit, err)
	}

	if _, err := dst.Import([]byte("junk")); err == nil {
		t.Fatal("Import accepted junk")
	}
	if _, err := dst.Import([]byte(`{"schema":999,"key":{},"entry":{}}`)); err == nil {
		t.Fatal("Import accepted a wrong-schema record")
	}
	if _, err := dst.Import([]byte(`{"schema":1,"key":{}}`)); err == nil {
		t.Fatal("Import accepted an entry-less record")
	}

	// A disk-backed cache exports records persisted by an earlier
	// process even before any Do touched them.
	dir := t.TempDir()
	c1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Do(ctx, key, func() (*Entry, error) { return testEntry(), nil }); err != nil {
		t.Fatal(err)
	}
	c2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Export(digest); !ok {
		t.Fatal("restarted cache could not export its persisted record")
	}
}

// fakeRemote is a controllable peer tier.
type fakeRemote struct {
	mu      sync.Mutex
	entries map[Key]*Entry
	err     error
	fetches atomic.Int64
}

func (f *fakeRemote) Fetch(ctx context.Context, key Key) (*Entry, error) {
	f.fetches.Add(1)
	if f.err != nil {
		return nil, f.err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.entries[key]; ok {
		return e.clone(), nil
	}
	return nil, errors.New("miss")
}

// TestRemoteTier pins the pull-on-miss path: a peer hit is served and
// stored locally without solving; a peer miss or failure falls through
// to a solve; counters track both.
func TestRemoteTier(t *testing.T) {
	m := metrics.New()
	ctx := metrics.With(context.Background(), m)
	key := testKey("r")

	rem := &fakeRemote{entries: map[Key]*Entry{key: testEntry()}}
	c := New()
	c.SetRemote(rem)

	e, hit, err := c.Do(ctx, key, func() (*Entry, error) {
		t.Fatal("solve ran despite a peer record")
		return nil, nil
	})
	if err != nil || !hit || e.Status != sat.Sat {
		t.Fatalf("peer hit: hit=%v err=%v", hit, err)
	}
	// Stored locally: a second Do is a plain memory hit, no new fetch.
	if _, hit, _ := c.Do(ctx, key, nil); !hit {
		t.Fatal("peer-warmed entry not stored locally")
	}
	if n := rem.fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1", n)
	}

	// Peer miss falls through to the solve.
	k2 := testKey("r2")
	ran := false
	if _, hit, err := c.Do(ctx, k2, func() (*Entry, error) { ran = true; return testEntry(), nil }); err != nil || hit || !ran {
		t.Fatalf("peer miss: hit=%v ran=%v err=%v", hit, ran, err)
	}

	// Peer failure likewise.
	rem.err = errors.New("peer down")
	k3 := testKey("r3")
	ran = false
	if _, _, err := c.Do(ctx, k3, func() (*Entry, error) { ran = true; return testEntry(), nil }); err != nil || !ran {
		t.Fatalf("peer failure: ran=%v err=%v", ran, err)
	}

	d := m.Snapshot()
	if d[metrics.CachePeerHits] != 1 || d[metrics.CachePeerMisses] != 2 {
		t.Fatalf("peer counters hits=%d misses=%d, want 1/2",
			d[metrics.CachePeerHits], d[metrics.CachePeerMisses])
	}
	if d[metrics.CacheMisses] != 2 {
		t.Fatalf("modcache_misses = %d, want 2 (peer hit must not count as a solve)", d[metrics.CacheMisses])
	}
}

// TestRemoteFetchSingleflight pins that concurrent callers of one key
// issue at most one peer fetch.
func TestRemoteFetchSingleflight(t *testing.T) {
	key := testKey("sf-remote")
	gate := make(chan struct{})
	rem := &fakeRemote{entries: map[Key]*Entry{key: testEntry()}}
	c := New()
	c.SetRemote(remoteFunc(func(ctx context.Context, k Key) (*Entry, error) {
		<-gate
		return rem.Fetch(ctx, k)
	}))

	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := c.Do(context.Background(), key, nil)
			if err != nil || e == nil {
				t.Errorf("Do: e=%v err=%v", e, err)
			}
		}()
	}
	// Wait until every goroutine is either the fetching producer or a
	// flight waiter, then release the fetch.
	waitInflight(t, c)
	close(gate)
	wg.Wait()
	if n := rem.fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1 (singleflight must guard the peer pull)", n)
	}
}

type remoteFunc func(ctx context.Context, key Key) (*Entry, error)

func (f remoteFunc) Fetch(ctx context.Context, key Key) (*Entry, error) { return f(ctx, key) }

func waitInflight(t *testing.T, c *Cache) {
	t.Helper()
	for {
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n >= 1 {
			return
		}
	}
}
