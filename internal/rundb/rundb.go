// Package rundb is the persistent run database: a crash-safe,
// disk-backed record of completed synthesis runs keyed by the pair
// (STG content hash, canonical options hash). Where internal/modcache
// banks individual module solves, rundb banks whole runs — circuit
// digest, equations, shape statistics, counters and per-stage timings
// — so a project suite can skip entries whose specification and
// options have not changed, and a long-lived daemon can serve its run
// history (`GET /v1/runs`) instead of forgetting every result at
// response time.
//
// The key is content-addressed on both axes:
//
//   - Signature is the hex SHA-256 of the *canonical rendering* of the
//     parsed STG (stg.Format of the parse), the same normalization the
//     cluster router hashes for shard placement: whitespace, comments
//     and declaration noise never move it, a semantic edit always
//     does.
//   - OptionsHash is the hex SHA-256 of the canonical JSON of exactly
//     the solver-visible options (method, engine, budgets, encodings).
//     Workers, timeouts, caching and tracing are excluded: the
//     pipeline's determinism contract (DESIGN.md §3.7) guarantees they
//     never change the circuit.
//
// The record layout mirrors modcache's content-addressed files: every
// write goes to a private temp file first and is published by rename,
// so a reader (or a crashed writer) can never observe a torn record.
// Reads validate schema, tool version and the full key before trusting
// a record — truncation, garbage, a foreign schema or a hash collision
// all read as a clean miss, never as a wrong answer. The divergence
// policy follows from the key: two runs with equal keys must produce
// bit-identical digests, so a recorded digest that differs from the
// banked one is a regression by definition and is flagged on the
// record (Record.Divergent) for callers to escalate — the project
// runner hard-fails, the daemon exposes a counter.
//
// On-disk layout under the database directory:
//
//	runs/<id>.json   one immutable record per completed run (history)
//	bank/<key>.json  the latest record per key (the skip predicate),
//	                 <key> = hex SHA-256 of the canonical key JSON
package rundb

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"asyncsyn"
)

// Schema versions the record layout; a record carrying any other value
// reads as a miss.
const Schema = 1

// Tool names the writer; records from an incompatible tool read as a
// miss even when the schema number matches.
const Tool = "asyncsyn/rundb"

// Signature content-addresses a specification: the hex SHA-256 of its
// canonical rendering (STG.Format of the parsed source). It doubles as
// the `signature` field of the daemon's synthesis responses and the
// `?signature=` filter of GET /v1/runs, so clients correlate jobs with
// history without re-deriving anything.
func Signature(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// OptionsKey is the canonical, solver-visible option set: every field
// that can move a circuit, and none that cannot. Hash it with
// (OptionsKey).Hash.
type OptionsKey struct {
	Method        string `json:"method"`
	Engine        string `json:"engine"`
	MaxBacktracks int64  `json:"max_backtracks"`
	ExpandXor     bool   `json:"expand_xor"`
	FullSupport   bool   `json:"full_support"`
	ExactMinimize bool   `json:"exact_minimize"`
	MaxStates     int    `json:"max_states"`
	TokenBound    int    `json:"token_bound"`
}

// OptionsOf projects the canonical option set out of facade options.
// Workers, Timeout, Tracer, Metrics and every cache knob are dropped:
// the determinism contract pins the circuit bit-identical across them.
func OptionsOf(opt asyncsyn.Options) OptionsKey {
	return OptionsKey{
		Method:        opt.Method.String(),
		Engine:        opt.Engine.String(),
		MaxBacktracks: opt.MaxBacktracks,
		ExpandXor:     opt.ExpandXor,
		FullSupport:   opt.FullSupport,
		ExactMinimize: opt.ExactMinimize,
		MaxStates:     opt.MaxStates,
		TokenBound:    opt.TokenBound,
	}
}

// Hash returns the hex SHA-256 of the canonical JSON encoding.
func (o OptionsKey) Hash() string {
	b, _ := json.Marshal(o)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Key identifies one synthesis problem instance: what was synthesized
// (Signature) and how (OptionsHash).
type Key struct {
	Signature   string `json:"signature"`
	OptionsHash string `json:"options_hash"`
}

// KeyOf builds the key for a canonical STG rendering and an option set.
func KeyOf(canonical string, opts OptionsKey) Key {
	return Key{Signature: Signature(canonical), OptionsHash: opts.Hash()}
}

// hash content-addresses the key for the bank filename.
func (k Key) hash() string {
	b, _ := json.Marshal(k)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StageMS is one pipeline stage timing in a record.
type StageMS struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// Record is one completed synthesis run. Records are immutable once
// written; a re-synthesis of the same key appends a new record and
// re-points the bank.
type Record struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	// ID names the record ("r<seq>-<sig prefix>"); Seq orders history.
	ID  string `json:"id"`
	Seq int64  `json:"seq"`

	Signature   string     `json:"signature"`
	OptionsHash string     `json:"options_hash"`
	Options     OptionsKey `json:"options"`

	Model string `json:"model"`
	// Bench is the embedded benchmark name when the run came from one;
	// File is the project-relative path in suite mode.
	Bench string `json:"bench,omitempty"`
	File  string `json:"file,omitempty"`

	// Digest is the canonical circuit digest (Circuit.Digest); empty on
	// aborted runs, which never satisfy the skip predicate.
	Digest  string `json:"digest,omitempty"`
	Aborted bool   `json:"aborted,omitempty"`
	// Divergent marks a record whose digest differs from the banked
	// predecessor for the same key — a determinism regression, set by
	// the database at record time, never by callers.
	Divergent bool `json:"divergent,omitempty"`

	InitialStates  int `json:"initial_states"`
	InitialSignals int `json:"initial_signals"`
	FinalStates    int `json:"final_states"`
	FinalSignals   int `json:"final_signals"`
	StateSignals   int `json:"state_signals"`
	Area           int `json:"area"`

	CPUMS     float64          `json:"cpu_ms"`
	Functions []string         `json:"functions,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Stages    []StageMS        `json:"stages,omitempty"`

	// UnixMS is the record time in milliseconds since the epoch.
	UnixMS int64 `json:"unix_ms"`
}

// RecordOf flattens one completed circuit into a record for key. The
// caller fills Bench or File as appropriate before storing.
func RecordOf(c *asyncsyn.Circuit, canonical string, opts OptionsKey) *Record {
	rec := &Record{
		Schema:      Schema,
		Tool:        Tool,
		Signature:   Signature(canonical),
		OptionsHash: opts.Hash(),
		Options:     opts,
		Model:       c.Name,
		Aborted:     c.Aborted,

		InitialStates:  c.InitialStates,
		InitialSignals: c.InitialSignals,
		FinalStates:    c.FinalStates,
		FinalSignals:   c.FinalSignals,
		StateSignals:   c.StateSignals,
		Area:           c.Area,

		CPUMS:    float64(c.CPU) / float64(time.Millisecond),
		Counters: c.Counters,
	}
	if !c.Aborted {
		rec.Digest = c.Digest()
		for _, f := range c.Functions {
			rec.Functions = append(rec.Functions, f.String())
		}
	}
	for _, st := range c.Stages {
		rec.Stages = append(rec.Stages, StageMS{Name: st.Name, MS: float64(st.Duration) / float64(time.Millisecond)})
	}
	return rec
}

// Key returns the record's database key.
func (r *Record) Key() Key {
	return Key{Signature: r.Signature, OptionsHash: r.OptionsHash}
}

// DB is one open run database. All methods are safe for concurrent
// use; concurrent processes sharing a directory are safe against torn
// reads (rename publication) though their sequence numbers may
// interleave.
type DB struct {
	mu    sync.Mutex
	dir   string
	seq   int64
	index []*Record // history, ascending Seq
	byID  map[string]*Record
}

// Open opens (creating if missing) the database under dir and loads
// the run history. Corrupt or foreign run files are skipped, never
// fatal: a half-written record from a crashed process must not brick
// the database.
func Open(dir string) (*DB, error) {
	for _, d := range []string{dir, filepath.Join(dir, "runs"), filepath.Join(dir, "bank")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("rundb: %w", err)
		}
	}
	db := &DB{dir: dir, byID: make(map[string]*Record)}
	entries, err := os.ReadDir(filepath.Join(dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("rundb: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, "runs", e.Name()))
		if err != nil {
			continue
		}
		rec, err := decode(b)
		if err != nil {
			continue
		}
		db.index = append(db.index, rec)
		db.byID[rec.ID] = rec
		if rec.Seq > db.seq {
			db.seq = rec.Seq
		}
	}
	sort.Slice(db.index, func(i, j int) bool { return db.index[i].Seq < db.index[j].Seq })
	return db, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Len returns the number of history records loaded or appended.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.index)
}

// decode parses and validates one record; any violation of the layout
// contract — malformed JSON, wrong schema or tool, missing identity —
// is an error the callers turn into a miss.
func decode(b []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("rundb: bad record: %w", err)
	}
	if rec.Schema != Schema {
		return nil, fmt.Errorf("rundb: record schema %d, want %d", rec.Schema, Schema)
	}
	if rec.Tool != Tool {
		return nil, fmt.Errorf("rundb: record tool %q, want %q", rec.Tool, Tool)
	}
	if rec.ID == "" || rec.Signature == "" || rec.OptionsHash == "" {
		return nil, fmt.Errorf("rundb: record missing identity")
	}
	return &rec, nil
}

// Record assigns the run an identity, appends it to the history and
// re-points the bank for its key, returning the previously banked
// record (nil when the key is new). When both digests exist and
// differ, the stored record is flagged Divergent — equal keys must
// produce bit-identical circuits, so a digest move without a source
// or option change is a regression, not an update.
func (db *DB) Record(rec *Record) (prev *Record, err error) {
	if rec.Schema == 0 {
		rec.Schema = Schema
	}
	if rec.Tool == "" {
		rec.Tool = Tool
	}
	if rec.Schema != Schema || rec.Tool != Tool {
		return nil, fmt.Errorf("rundb: refusing to store schema %d / tool %q", rec.Schema, rec.Tool)
	}
	if rec.Signature == "" || rec.OptionsHash == "" {
		return nil, fmt.Errorf("rundb: record missing key")
	}
	key := rec.Key()
	prev, _ = db.Lookup(key)

	db.mu.Lock()
	db.seq++
	rec.Seq = db.seq
	rec.ID = fmt.Sprintf("r%06d-%s", rec.Seq, rec.Signature[:8])
	if rec.UnixMS == 0 {
		rec.UnixMS = time.Now().UnixMilli()
	}
	rec.Divergent = prev != nil && prev.Digest != "" && rec.Digest != "" && prev.Digest != rec.Digest
	db.mu.Unlock()

	b, err := json.Marshal(rec)
	if err != nil {
		return prev, fmt.Errorf("rundb: %w", err)
	}
	if err := db.publish(filepath.Join(db.dir, "runs", rec.ID+".json"), b); err != nil {
		return prev, err
	}
	if err := db.publish(filepath.Join(db.dir, "bank", key.hash()+".json"), b); err != nil {
		return prev, err
	}

	db.mu.Lock()
	db.index = append(db.index, rec)
	db.byID[rec.ID] = rec
	db.mu.Unlock()
	return prev, nil
}

// publish writes b to path via temp file + rename, so a reader never
// observes a torn record and a crash leaves at worst an orphan temp.
func (db *DB) publish(path string, b []byte) error {
	tmp, err := os.CreateTemp(db.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("rundb: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("rundb: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rundb: %w", err)
	}
	return nil
}

// Lookup returns the banked (latest) record for key. The record is
// re-read and re-validated from disk every time, so concurrent
// processes sharing the directory observe each other's runs; any
// corruption — truncation, garbage, wrong schema or tool, or a record
// whose key does not match the bank filename's — reads as a miss.
func (db *DB) Lookup(key Key) (*Record, bool) {
	b, err := os.ReadFile(filepath.Join(db.dir, "bank", key.hash()+".json"))
	if err != nil {
		return nil, false
	}
	rec, err := decode(b)
	if err != nil || rec.Key() != key {
		return nil, false
	}
	return rec, true
}

// Get returns the history record by id.
func (db *DB) Get(id string) (*Record, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	return rec, ok
}

// Filter selects and paginates history for List.
type Filter struct {
	// Signature, when non-empty, matches Record.Signature exactly.
	Signature string
	// Model, when non-empty, matches Record.Model, Bench or File.
	Model string
	// Offset and Limit paginate the newest-first result; Limit <= 0
	// means DefaultLimit, capped at MaxLimit.
	Offset int
	Limit  int
}

// DefaultLimit and MaxLimit bound one List page.
const (
	DefaultLimit = 50
	MaxLimit     = 500
)

// List returns one page of history, newest first, and the total number
// of records matching the filter (before pagination).
func (db *DB) List(f Filter) (page []*Record, total int) {
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}
	offset := f.Offset
	if offset < 0 {
		offset = 0
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	for i := len(db.index) - 1; i >= 0; i-- {
		rec := db.index[i]
		if f.Signature != "" && rec.Signature != f.Signature {
			continue
		}
		if f.Model != "" && rec.Model != f.Model && rec.Bench != f.Model && rec.File != f.Model {
			continue
		}
		if total >= offset && len(page) < limit {
			page = append(page, rec)
		}
		total++
	}
	return page, total
}
