package rundb

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"asyncsyn"
	"asyncsyn/internal/synerr"
)

// Entry statuses reported by RunProject.
const (
	StatusSkipped       = "skipped"
	StatusResynthesized = "resynthesized"
)

// Entry is one project file's outcome.
type Entry struct {
	// File is the path relative to the project directory.
	File string
	// Status is StatusSkipped (banked record still valid) or
	// StatusResynthesized (the file was synthesized this run).
	Status string
	// Digest is the circuit digest (banked or fresh); empty for an
	// aborted resynthesis.
	Digest string
	// Run is the recorded run id for resynthesized entries.
	Run string
	// Aborted reports a resynthesis that exhausted its SAT budget.
	Aborted bool
	// Seconds is the synthesis wall-clock (0 for skips).
	Seconds float64
}

// ProjectResult summarizes one suite pass.
type ProjectResult struct {
	Entries       []Entry
	Skipped       int
	Resynthesized int
}

// ErrDivergence reports a re-synthesized digest that differs from the
// banked record under an unchanged key — the hard-fail contract of the
// suite runner: equal (content hash, options hash) keys must reproduce
// bit-identical circuits, so a divergence is a determinism regression,
// never something to silently re-bank.
var ErrDivergence = fmt.Errorf("digest diverged from banked record for unchanged source")

// RunProject walks the project directory's .g files (sorted, top level
// only) and re-synthesizes exactly the entries whose content/options
// key has no valid banked record; everything else is skipped without a
// single solve. With recheck set, banked entries are re-synthesized
// anyway and their digests compared against the bank — a mismatch
// aborts the suite with an error matching ErrDivergence (the same
// check guards every recorded run: Record flags a divergent digest
// under an unchanged key, and the runner escalates it).
//
// opt carries the synthesis options applied to every entry; its cache,
// metrics and tracer fields are used as given. logf, when non-nil,
// receives one line per entry as the suite progresses.
func RunProject(ctx context.Context, db *DB, dir string, opt asyncsyn.Options, recheck bool, logf func(format string, args ...any)) (*ProjectResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	files, err := projectFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("rundb: no .g files under %s", dir)
	}

	opts := OptionsOf(opt)
	res := &ProjectResult{}
	for _, name := range files {
		if err := ctx.Err(); err != nil {
			return res, synerr.Canceled(err)
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return res, fmt.Errorf("rundb: %w", err)
		}
		g, err := asyncsyn.ParseSTGString(string(src))
		if err != nil {
			return res, fmt.Errorf("rundb: %s: %w", name, err)
		}
		canonical := g.Format()
		key := KeyOf(canonical, opts)

		banked, ok := db.Lookup(key)
		if ok && banked.Digest != "" && !recheck {
			res.Entries = append(res.Entries, Entry{File: name, Status: StatusSkipped, Digest: banked.Digest})
			res.Skipped++
			logf("  skip   %-24s digest %.12s", name, banked.Digest)
			continue
		}

		c, err := asyncsyn.SynthesizeContext(ctx, g, opt)
		if err != nil {
			return res, fmt.Errorf("rundb: %s: %w", name, err)
		}
		rec := RecordOf(c, canonical, opts)
		rec.File = name
		prev, err := db.Record(rec)
		if err != nil {
			return res, fmt.Errorf("rundb: %s: %w", name, err)
		}
		entry := Entry{
			File: name, Status: StatusResynthesized, Digest: rec.Digest,
			Run: rec.ID, Aborted: rec.Aborted, Seconds: c.CPU.Seconds(),
		}
		res.Entries = append(res.Entries, entry)
		res.Resynthesized++
		logf("  resyn  %-24s digest %.12s  %.2fs", name, rec.Digest, entry.Seconds)
		if rec.Divergent {
			return res, fmt.Errorf("rundb: %s: %w: banked %s (run %s), got %s (run %s)",
				name, ErrDivergence, prev.Digest, prev.ID, rec.Digest, rec.ID)
		}
	}
	return res, nil
}

// projectFiles lists the .g files directly under dir, sorted by name
// so suite order — and therefore run numbering — is stable.
func projectFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rundb: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".g") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}
