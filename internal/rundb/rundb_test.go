package rundb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRecord fabricates a storable record without running synthesis;
// the durability tests exercise the disk layout, not the pipeline.
func fakeRecord(sig, digest string) *Record {
	opts := OptionsKey{Method: "modular", Engine: "dpll"}
	return &Record{
		Schema:      Schema,
		Tool:        Tool,
		Signature:   sig,
		OptionsHash: opts.Hash(),
		Options:     opts,
		Model:       "fake",
		Digest:      digest,
		Area:        7,
	}
}

func sigOf(s string) string { return Signature(s) }

func TestRecordLookupRoundTrip(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := fakeRecord(sigOf("spec-a"), "digest-a")
	prev, err := db.Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if prev != nil {
		t.Fatalf("fresh key returned prev %v", prev)
	}
	if rec.ID == "" || rec.Seq != 1 {
		t.Fatalf("record identity not assigned: id=%q seq=%d", rec.ID, rec.Seq)
	}

	got, ok := db.Lookup(rec.Key())
	if !ok {
		t.Fatal("banked record missed")
	}
	if got.Digest != "digest-a" || got.ID != rec.ID {
		t.Fatalf("lookup returned %+v", got)
	}
	if byID, ok := db.Get(rec.ID); !ok || byID.Digest != "digest-a" {
		t.Fatalf("Get(%q) = %+v, %v", rec.ID, byID, ok)
	}

	// A second database over the same directory must see the history:
	// this is what lets the project runner resume across processes.
	db2, err := Open(db.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 1 {
		t.Fatalf("reopened db has %d records, want 1", db2.Len())
	}
	if _, ok := db2.Lookup(rec.Key()); !ok {
		t.Fatal("reopened db missed the banked record")
	}
}

func TestDivergenceFlagged(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sig := sigOf("spec-div")
	if _, err := db.Record(fakeRecord(sig, "digest-1")); err != nil {
		t.Fatal(err)
	}

	same := fakeRecord(sig, "digest-1")
	if _, err := db.Record(same); err != nil {
		t.Fatal(err)
	}
	if same.Divergent {
		t.Fatal("identical digest flagged divergent")
	}

	moved := fakeRecord(sig, "digest-2")
	prev, err := db.Record(moved)
	if err != nil {
		t.Fatal(err)
	}
	if !moved.Divergent {
		t.Fatal("digest move under an unchanged key not flagged divergent")
	}
	if prev == nil || prev.Digest != "digest-1" {
		t.Fatalf("prev = %+v, want the banked digest-1 record", prev)
	}
}

// bankPath returns the on-disk bank file for a record's key.
func bankPath(db *DB, rec *Record) string {
	return filepath.Join(db.Dir(), "bank", rec.Key().hash()+".json")
}

// TestCorruptBankMissesCleanly pins the durability contract: whatever
// garbage ends up in a bank file — truncation mid-write, random bytes,
// a foreign schema or tool, a record moved to the wrong filename — the
// read is a clean miss, never a panic or a wrong answer.
func TestCorruptBankMissesCleanly(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := fakeRecord(sigOf("spec-corrupt"), "digest-c")
	if _, err := db.Record(rec); err != nil {
		t.Fatal(err)
	}
	path := bankPath(db, rec)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, b []byte) {
		t.Helper()
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := db.Lookup(rec.Key()); ok {
			t.Fatalf("corrupt bank record read as a hit: %+v", got)
		}
	}

	t.Run("truncated", func(t *testing.T) { mutate(t, valid[:len(valid)/2]) })
	t.Run("garbage", func(t *testing.T) { mutate(t, []byte("\x00\xffnot json at all")) })
	t.Run("empty", func(t *testing.T) { mutate(t, nil) })
	t.Run("wrong_schema", func(t *testing.T) {
		mutate(t, []byte(strings.Replace(string(valid), `"schema":1`, `"schema":999`, 1)))
	})
	t.Run("wrong_tool", func(t *testing.T) {
		mutate(t, []byte(strings.Replace(string(valid), Tool, "other/tool", 1)))
	})
	t.Run("missing_identity", func(t *testing.T) {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "id")
		b, _ := json.Marshal(m)
		mutate(t, b)
	})
	t.Run("foreign_key", func(t *testing.T) {
		// A valid record of a different key published under this bank
		// filename (hash collision, botched copy): the key check rejects it.
		other := fakeRecord(sigOf("some-other-spec"), "digest-x")
		other.ID, other.Seq = "r999999-deadbeef", 999999
		b, _ := json.Marshal(other)
		mutate(t, b)
	})

	// And a missing file, the everyday miss.
	t.Run("absent", func(t *testing.T) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		if _, ok := db.Lookup(rec.Key()); ok {
			t.Fatal("removed bank record read as a hit")
		}
	})
}

// TestOpenSkipsCorruptRunFiles pins that a half-written or foreign file
// under runs/ cannot brick the database: Open loads what validates and
// ignores the rest.
func TestOpenSkipsCorruptRunFiles(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := fakeRecord(sigOf("spec-ok"), "digest-ok")
	if _, err := db.Record(rec); err != nil {
		t.Fatal(err)
	}

	runs := filepath.Join(dir, "runs")
	for name, body := range map[string][]byte{
		"torn.json":    []byte(`{"schema":1,"tool":"asyncsyn/rundb","id":"r0000`),
		"garbage.json": []byte("\x01\x02\x03"),
		"foreign.json": []byte(`{"schema":42,"tool":"elsewhere","id":"x","signature":"s","options_hash":"o"}`),
		"notes.txt":    []byte("not a record at all"),
	} {
		if err := os.WriteFile(filepath.Join(runs, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over corrupt runs dir: %v", err)
	}
	if db2.Len() != 1 {
		t.Fatalf("loaded %d records, want 1 (corrupt files skipped)", db2.Len())
	}
	if _, ok := db2.Get(rec.ID); !ok {
		t.Fatal("valid record lost among corrupt siblings")
	}
}

func TestListFilterAndPagination(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sigA, sigB := sigOf("list-a"), sigOf("list-b")
	for i := 0; i < 5; i++ {
		r := fakeRecord(sigA, "da")
		r.Model = "alpha"
		if _, err := db.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		r := fakeRecord(sigB, "db")
		r.Model = "beta"
		r.Bench = "beta-bench"
		if _, err := db.Record(r); err != nil {
			t.Fatal(err)
		}
	}

	page, total := db.List(Filter{})
	if total != 8 || len(page) != 8 {
		t.Fatalf("unfiltered: total=%d page=%d, want 8/8", total, len(page))
	}
	// Newest first: the beta records were appended last.
	if page[0].Model != "beta" || page[len(page)-1].Model != "alpha" {
		t.Fatalf("page order wrong: first=%s last=%s", page[0].Model, page[len(page)-1].Model)
	}

	if _, total := db.List(Filter{Signature: sigA}); total != 5 {
		t.Fatalf("signature filter: total=%d, want 5", total)
	}
	if _, total := db.List(Filter{Model: "beta-bench"}); total != 3 {
		t.Fatalf("bench-name filter: total=%d, want 3", total)
	}

	page, total = db.List(Filter{Offset: 2, Limit: 3})
	if total != 8 || len(page) != 3 {
		t.Fatalf("offset/limit: total=%d page=%d, want 8/3", total, len(page))
	}
	if page[0].Seq != 6 {
		t.Fatalf("offset 2 newest-first starts at seq %d, want 6", page[0].Seq)
	}

	page, _ = db.List(Filter{Offset: 100})
	if len(page) != 0 {
		t.Fatalf("past-the-end offset returned %d records", len(page))
	}
}

// TestOptionsKeyExcludesNonSemanticKnobs pins the determinism-contract
// boundary: workers, timeouts and cache knobs must not move the key
// (they cannot move the circuit), while every solver-visible option
// must.
func TestOptionsKeyExcludesNonSemanticKnobs(t *testing.T) {
	base := OptionsKey{Method: "modular", Engine: "dpll"}
	if base.Hash() != (OptionsKey{Method: "modular", Engine: "dpll"}).Hash() {
		t.Fatal("equal option keys hash differently")
	}
	moved := base
	moved.ExpandXor = true
	if base.Hash() == moved.Hash() {
		t.Fatal("solver-visible option did not move the hash")
	}
}
