package rundb

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"asyncsyn"
	"asyncsyn/internal/bench"
)

// writeFixture copies an embedded benchmark into the project directory.
func writeFixture(t *testing.T, dir, file, benchName string) {
	t.Helper()
	src, err := bench.Source(benchName)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestProjectIncrementalContract is the suite-mode property test:
//
//   - first pass synthesizes everything;
//   - an unchanged project re-runs with ZERO solves (all skipped, the
//     metrics collector records no modules);
//   - a comment-only edit still skips (the key hashes the canonical
//     rendering, not the bytes);
//   - changing one file's specification re-synthesizes exactly that
//     entry, and its digest matches a from-scratch library run.
func TestProjectIncrementalContract(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "fifo.g", "fifo")
	writeFixture(t, dir, "nak-pa.g", "nak-pa")
	db, err := Open(filepath.Join(dir, ".rundb"))
	if err != nil {
		t.Fatal(err)
	}
	opt := asyncsyn.Options{Method: asyncsyn.Modular, Workers: 1}

	res, err := RunProject(context.Background(), db, dir, opt, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resynthesized != 2 || res.Skipped != 0 {
		t.Fatalf("cold pass: %d resynthesized, %d skipped; want 2/0", res.Resynthesized, res.Skipped)
	}
	digests := map[string]string{}
	for _, e := range res.Entries {
		if e.Digest == "" {
			t.Fatalf("cold pass left %s without a digest", e.File)
		}
		digests[e.File] = e.Digest
	}

	// Unchanged project: zero solves. The collector is the witness — a
	// skip that secretly synthesizes would count its modules.
	m := asyncsyn.NewMetrics()
	opt2 := opt
	opt2.Metrics = m
	res, err = RunProject(context.Background(), db, dir, opt2, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 || res.Resynthesized != 0 {
		t.Fatalf("warm pass: %d skipped, %d resynthesized; want 2/0", res.Skipped, res.Resynthesized)
	}
	if n := m.Map()["modules"]; n != 0 {
		t.Fatalf("warm pass solved %d modules; the skip predicate must avoid synthesis entirely", n)
	}
	for _, e := range res.Entries {
		if e.Digest != digests[e.File] {
			t.Fatalf("warm skip reported digest %s for %s, banked %s", e.Digest, e.File, digests[e.File])
		}
	}

	// Comment-only edit: the canonical rendering is unchanged, so the
	// key — and the skip — must hold.
	fifoPath := filepath.Join(dir, "fifo.g")
	src, err := os.ReadFile(fifoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fifoPath, append([]byte("# a comment the canonical rendering strips\n"), src...), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = RunProject(context.Background(), db, dir, opt, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 2 {
		t.Fatalf("comment-only edit broke the skip: %d skipped, want 2", res.Skipped)
	}

	// Real change: swap fifo's specification for a different one.
	writeFixture(t, dir, "fifo.g", "wrdata")
	res, err = RunProject(context.Background(), db, dir, opt, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resynthesized != 1 || res.Skipped != 1 {
		t.Fatalf("one-file change: %d resynthesized, %d skipped; want 1/1", res.Resynthesized, res.Skipped)
	}
	var changed *Entry
	for i := range res.Entries {
		if res.Entries[i].Status == StatusResynthesized {
			changed = &res.Entries[i]
		}
	}
	if changed == nil || changed.File != "fifo.g" {
		t.Fatalf("wrong entry re-synthesized: %+v", res.Entries)
	}

	// The recorded digest must match a from-scratch library run of the
	// same source — the database reports reality, it does not invent it.
	wr, err := bench.Source("wrdata")
	if err != nil {
		t.Fatal(err)
	}
	g, err := asyncsyn.ParseSTGString(wr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := asyncsyn.Synthesize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() != changed.Digest {
		t.Fatalf("recorded digest %s != direct-run digest %s", changed.Digest, c.Digest())
	}

	// Different options are a different key: a changed engine re-banks
	// rather than skipping against the dpll record.
	optBDD := opt
	optBDD.Engine = asyncsyn.BDD
	res, err = RunProject(context.Background(), db, dir, optBDD, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resynthesized != 2 {
		t.Fatalf("option change reused the old bank: %d resynthesized, want 2", res.Resynthesized)
	}
}

// TestProjectDivergenceHardFails tampers a banked digest and re-checks:
// the re-synthesized digest no longer matches the bank under an
// unchanged key, which must abort the suite with ErrDivergence.
func TestProjectDivergenceHardFails(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "fifo.g", "fifo")
	dbDir := filepath.Join(dir, ".rundb")
	db, err := Open(dbDir)
	if err != nil {
		t.Fatal(err)
	}
	opt := asyncsyn.Options{Method: asyncsyn.Modular, Workers: 1}
	if _, err := RunProject(context.Background(), db, dir, opt, false, nil); err != nil {
		t.Fatal(err)
	}

	// Tamper the banked digest in place, keeping the record valid: the
	// envelope still decodes, the key still matches, only the digest lies.
	src, err := os.ReadFile(filepath.Join(dir, "fifo.g"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := asyncsyn.ParseSTGString(string(src))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf(g.Format(), OptionsOf(opt))
	path := filepath.Join(dbDir, "bank", key.hash()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Digest = "sha256:0000000000000000"
	b, _ = json.Marshal(&rec)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Without recheck the poisoned bank just skips; recheck forces the
	// re-synthesis that exposes the mismatch.
	if _, err := RunProject(context.Background(), db, dir, opt, false, nil); err != nil {
		t.Fatalf("non-recheck pass failed: %v", err)
	}
	_, err = RunProject(context.Background(), db, dir, opt, true, nil)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("recheck over a tampered bank returned %v, want ErrDivergence", err)
	}
}
