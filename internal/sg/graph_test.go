package sg

import (
	"strings"
	"testing"

	"asyncsyn/internal/stg"
)

func parse(t *testing.T, src string) *stg.G {
	t.Helper()
	g, err := stg.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const handshake = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

func TestFromSTGCodes(t *testing.T) {
	g := parse(t, handshake)
	sgr, err := FromSTG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sgr.NumStates() != 4 {
		t.Fatalf("%d states, want 4", sgr.NumStates())
	}
	// Follow the cycle from the initial state and check codes.
	reqIdx, _ := sgr.SignalIndex("req")
	ackIdx, _ := sgr.SignalIndex("ack")
	want := []struct{ req, ack uint64 }{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	s := sgr.Initial
	for i, w := range want {
		code := sgr.States[s].Code
		if (code>>reqIdx)&1 != w.req || (code>>ackIdx)&1 != w.ack {
			t.Fatalf("state %d: code %b, want req=%d ack=%d", i, code, w.req, w.ack)
		}
		if len(sgr.Out[s]) != 1 {
			t.Fatalf("state %d has %d out edges", i, len(sgr.Out[s]))
		}
		s = sgr.Edges[sgr.Out[s][0]].To
	}
	if s != sgr.Initial {
		t.Fatalf("cycle does not close")
	}
}

func TestFromSTGInconsistent(t *testing.T) {
	// a rises twice with no fall in between.
	src := `
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a+/2
a+/2 b-
b- a+
.marking { <b-,a+> }
.end
`
	g := parse(t, src)
	if _, err := FromSTG(g, Options{}); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("want inconsistent-assignment error, got %v", err)
	}
}

func TestFromSTGToggle(t *testing.T) {
	src := `
.model tog
.inputs a
.outputs b
.graph
a+ b~
b~ a-
a- b~/2
b~/2 a+
.marking { <b~/2,a+> }
.end
`
	g := parse(t, src)
	sgr, err := FromSTG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b toggles twice per cycle; values must alternate consistently.
	bIdx, _ := sgr.SignalIndex("b")
	for _, e := range sgr.Edges {
		if e.Sig == bIdx {
			from := (sgr.States[e.From].Code >> bIdx) & 1
			to := (sgr.States[e.To].Code >> bIdx) & 1
			if from == to {
				t.Fatalf("toggle edge does not flip b")
			}
		}
	}
}

func TestImpliedValueAndEnabled(t *testing.T) {
	g := parse(t, handshake)
	sgr, _ := FromSTG(g, Options{})
	ackIdx, _ := sgr.SignalIndex("ack")
	s := sgr.Initial // req=0,ack=0: ack stays 0
	if v := sgr.ImpliedValue(s, ackIdx); v != 0 {
		t.Fatalf("implied ack at idle = %d", v)
	}
	s = sgr.Edges[sgr.Out[s][0]].To // after req+: ack+ enabled → implied 1
	if v := sgr.ImpliedValue(s, ackIdx); v != 1 {
		t.Fatalf("implied ack after req+ = %d", v)
	}
	if m := sgr.EnabledNonInputs(s); m != 1<<ackIdx {
		t.Fatalf("enabled non-inputs = %b", m)
	}
}

// twoPulse revisits code 10 with different enabled outputs.
const twoPulse = `
.model tp
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func TestAnalyzeConflicts(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	conf := Analyze(sgr)
	if conf.N() != 2 {
		t.Fatalf("CSC conflicts = %d, want 2", conf.N())
	}
	if conf.LowerBound != 1 {
		t.Fatalf("lower bound = %d, want 1", conf.LowerBound)
	}
	if conf.MaxGroup != 2 {
		t.Fatalf("max group = %d, want 2", conf.MaxGroup)
	}
	// No USC-only pairs here: both shared codes conflict.
	if len(conf.USC) != 0 {
		t.Fatalf("USC pairs = %d, want 0", len(conf.USC))
	}
}

func TestAnalyzeClean(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	conf := Analyze(sgr)
	if conf.N() != 0 || conf.LowerBound != 0 {
		t.Fatalf("handshake should satisfy CSC: %+v", conf)
	}
}

func TestQuotientMergesSilencedSignal(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	aIdx, _ := sgr.SignalIndex("a")
	m, ok := sgr.Quotient(1 << aIdx)
	if !ok {
		t.Fatalf("quotient failed")
	}
	// Silencing `a` merges states across a± edges: 6 states → 4.
	if m.Graph.NumStates() != 4 {
		t.Fatalf("merged states = %d, want 4", m.Graph.NumStates())
	}
	// Cover must be consistent: same class ⇔ same cover value.
	for s := range sgr.States {
		if m.Cover[s] < 0 || m.Cover[s] >= m.Graph.NumStates() {
			t.Fatalf("cover out of range")
		}
	}
	// Members partition the original states.
	seen := make(map[int]bool)
	for mi, ms := range m.Members {
		for _, s := range ms {
			if seen[s] {
				t.Fatalf("state %d in two classes", s)
			}
			seen[s] = true
			if m.Cover[s] != mi {
				t.Fatalf("cover/members mismatch")
			}
		}
	}
	if len(seen) != sgr.NumStates() {
		t.Fatalf("members cover %d of %d states", len(seen), sgr.NumStates())
	}
	// Active mask excludes a.
	if m.Graph.Active&(1<<aIdx) != 0 {
		t.Fatalf("silenced signal still active")
	}
	// ε edges removed: only b edges remain.
	for _, e := range m.Graph.Edges {
		if e.Sig == aIdx {
			t.Fatalf("silenced edge survived")
		}
	}
}

func TestQuotientPhaseJoin(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	// Hand phases completing only across output (b) edges, as the
	// input-properness restriction requires. States (BFS): 0:idle,
	// 1:a=1, 2:ab=11, 3:a=1 post b-, 4:idle2, 5:b=1.
	phases := []Phase{P1, P1, PDown, P0, P0, PUp}
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: phases})
	if bad := sgr.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("hand phases inconsistent: %v", bad)
	}
	// Silencing b makes ε-classes {1,2,3} (phases {1,Down,0}) and
	// {4,5,0} (phases {0,Up,1}).
	bIdx, _ := sgr.SignalIndex("b")
	m, ok := sgr.Quotient(1 << bIdx)
	if !ok {
		t.Fatalf("quotient failed")
	}
	if len(m.Graph.StateSigs) != 1 {
		t.Fatalf("state signal lost in quotient")
	}
	if m.Cover[1] != m.Cover[2] || m.Cover[2] != m.Cover[3] {
		t.Fatalf("states 1,2,3 should merge")
	}
	if got := m.Graph.StateSigs[0].Phases[m.Cover[2]]; got != PDown {
		t.Fatalf("join{1,Down,0} = %v, want Down (Figure 3 h+i)", got)
	}
	if got := m.Graph.StateSigs[0].Phases[m.Cover[4]]; got != PUp {
		t.Fatalf("join{0,Up,1} = %v, want Up (Figure 3 f+g)", got)
	}
}

func TestQuotientPhaseJoinFails(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	// Up and Down adjacent across the a- edge (states 3 and 4): the
	// quotient silencing `a` must report the inconsistency.
	phases := []Phase{P0, P0, PUp, PUp, PDown, PDown}
	// Check raw edge consistency first (Up→Up, Up→Down? state 3→4 via a-).
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: phases})
	aIdx, _ := sgr.SignalIndex("a")
	_, ok := sgr.Quotient(1 << aIdx)
	if ok {
		t.Fatalf("quotient must fail when a class holds Up and Down")
	}
}

func TestPropagateStateSignal(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	aIdx, _ := sgr.SignalIndex("a")
	m, _ := sgr.Quotient(1 << aIdx)
	mergedPhases := make([]Phase, m.Graph.NumStates())
	for i := range mergedPhases {
		mergedPhases[i] = Phase(i % 4) // arbitrary but well formed per state
	}
	if err := m.PropagateStateSignal("n0", mergedPhases); err != nil {
		t.Fatal(err)
	}
	if len(sgr.StateSigs) != 1 || sgr.StateSigs[0].Name != "n0" {
		t.Fatalf("propagation did not append the signal")
	}
	for s := range sgr.States {
		if sgr.StateSigs[0].Phases[s] != mergedPhases[m.Cover[s]] {
			t.Fatalf("state %d phase not inherited from its cover", s)
		}
	}
	if err := m.PropagateStateSignal("bad", mergedPhases[:1]); err == nil {
		t.Fatalf("short phase vector must fail")
	}
}

func TestFullCodeWithStateSignals(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	phases := []Phase{P0, PUp, P1, PDown}
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: phases})
	nb := len(sgr.Base)
	if sgr.FullCode(0)>>nb != 0 { // P0 → level 0
		t.Fatalf("FullCode state0")
	}
	if sgr.FullCode(1)>>nb != 0 { // Up → level 0
		t.Fatalf("FullCode state1")
	}
	if sgr.FullCode(2)>>nb != 1 || sgr.FullCode(3)>>nb != 1 {
		t.Fatalf("FullCode states 2,3")
	}
}

func TestOutputConflicts(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	bIdx, _ := sgr.SignalIndex("b")
	conf := OutputConflicts(sgr, func(s int) (bool, bool) {
		return sgr.ImpliedValue(s, bIdx) == 0, sgr.ImpliedValue(s, bIdx) == 1
	})
	// Code 10 is implied-1 at state 1 (b+ enabled) and implied-0 at
	// state 3; code 00 is implied-1 at state 4 (b+/2) and implied-0 at 0.
	if conf.N() != 2 {
		t.Fatalf("output conflicts = %d, want 2", conf.N())
	}
	if conf.LowerBound != 1 {
		t.Fatalf("lb = %d", conf.LowerBound)
	}
	// A self-conflicting probe must produce an (s,s) pair.
	conf = OutputConflicts(sgr, func(s int) (bool, bool) { return true, s == 0 })
	found := false
	for _, p := range conf.CSC {
		if p.A == 0 && p.B == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("self conflict not reported")
	}
}

func TestGraphClone(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: make([]Phase, 4)})
	c := sgr.Clone()
	c.StateSigs[0].Phases[0] = PDown
	c.States[0].Code = 99
	if sgr.StateSigs[0].Phases[0] == PDown || sgr.States[0].Code == 99 {
		t.Fatalf("Clone shares mutable state")
	}
}
