package sg

import (
	"math/rand"
	"testing"

	"asyncsyn/internal/stg"
)

// permuteStates renumbers the states of g by perm (perm[old] = new) and
// shuffles the edge order, preserving the graph's meaning exactly.
func permuteStates(g *Graph, perm []int, rng *rand.Rand) *Graph {
	n := len(g.States)
	out := &Graph{
		Name:    g.Name,
		Base:    g.Base,
		Active:  g.Active,
		States:  make([]State, n),
		Out:     make([][]int, n),
		In:      make([][]int, n),
		Initial: perm[g.Initial],
	}
	for s := 0; s < n; s++ {
		out.States[perm[s]] = g.States[s]
	}
	for _, ss := range g.StateSigs {
		ph := make([]Phase, n)
		for s := 0; s < n; s++ {
			ph[perm[s]] = ss.Phases[s]
		}
		out.StateSigs = append(out.StateSigs, StateSignal{Name: ss.Name, Phases: ph})
	}
	order := rng.Perm(len(g.Edges))
	for _, ei := range order {
		e := g.Edges[ei]
		out.addEdge(Edge{From: perm[e.From], To: perm[e.To], Sig: e.Sig, Dir: e.Dir})
	}
	return out
}

// permutePairs remaps conflict pairs through perm, keeping the A < B
// convention and re-sorting so the list stays deterministic.
func permutePairs(ps []Pair, perm []int) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		a, b := perm[p.A], perm[p.B]
		if a > b {
			a, b = b, a
		}
		out[i] = Pair{A: a, B: b}
	}
	return out
}

// TestSignatureCanonInvariantUnderRenumbering is the cache-correctness
// property behind Canon: renumbering the states (and reordering the
// edges) of a problem never changes its Canon hash, while Layout — the
// replay guarantee — tracks the concrete numbering.
func TestSignatureCanonInvariantUnderRenumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 25; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromSTG(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		conf := Analyze(g)
		sig := SignatureOf(g, conf)

		n := len(g.States)
		perm := rng.Perm(n)
		identity := true
		for i, p := range perm {
			identity = identity && i == p
		}
		pg := permuteStates(g, perm, rng)
		psig := SignatureOf(pg, &Conflicts{
			CSC:        permutePairs(conf.CSC, perm),
			USC:        permutePairs(conf.USC, perm),
			LowerBound: conf.LowerBound,
		})
		if psig.Canon != sig.Canon {
			t.Fatalf("seed %d: Canon changed under state renumbering", seed)
		}
		if !identity && n > 1 && psig.Layout == sig.Layout {
			t.Fatalf("seed %d: Layout blind to state renumbering", seed)
		}
		// Both hashes must be reproducible.
		if again := SignatureOf(g, conf); again != sig {
			t.Fatalf("seed %d: SignatureOf not deterministic", seed)
		}
	}
}

// TestSignatureSensitive checks Canon distinguishes genuinely different
// problems: flipping an edge direction, renaming a signal, flipping an
// input flag, or dropping a conflict pair must all move the hash.
func TestSignatureSensitive(t *testing.T) {
	spec, err := stg.Random(3, stg.RandomOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromSTG(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	conf := Analyze(g)
	base := SignatureOf(g, conf)

	mut := func(name string, f func(h *Graph, c *Conflicts)) {
		h := permuteStates(g, identityPerm(len(g.States)), rand.New(rand.NewSource(1)))
		c := &Conflicts{
			CSC:        append([]Pair(nil), conf.CSC...),
			USC:        append([]Pair(nil), conf.USC...),
			LowerBound: conf.LowerBound,
		}
		f(h, c)
		if s := SignatureOf(h, c); s.Canon == base.Canon {
			t.Errorf("%s: Canon blind to the change", name)
		}
	}
	mut("edge direction", func(h *Graph, c *Conflicts) {
		h.Edges[0].Dir ^= 1
	})
	mut("signal name", func(h *Graph, c *Conflicts) {
		b := append([]SignalInfo(nil), h.Base...)
		b[0].Name += "x"
		h.Base = b
	})
	mut("input flag", func(h *Graph, c *Conflicts) {
		b := append([]SignalInfo(nil), h.Base...)
		b[0].Input = !b[0].Input
		h.Base = b
	})
	if len(conf.CSC) > 0 {
		mut("conflict set", func(h *Graph, c *Conflicts) {
			c.CSC = c.CSC[1:]
		})
	}
	if SignatureOf(g, nil).Canon == base.Canon && len(conf.CSC)+len(conf.USC) > 0 {
		t.Error("nil conflicts hash equal to analyzed conflicts")
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// BenchmarkQuotient measures the ε-quotient on a random state graph,
// silencing half the signals — the hot construction of modular
// synthesis (one quotient per output per input-set probe).
func BenchmarkQuotient(b *testing.B) {
	spec, err := stg.Random(11, stg.RandomOptions{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromSTG(spec, Options{})
	if err != nil {
		b.Fatal(err)
	}
	var mask uint64
	for i := 0; i < len(g.Base); i += 2 {
		if g.Base[i].Input {
			mask |= 1 << i
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Quotient(mask); !ok {
			b.Fatal("quotient failed")
		}
	}
}
