package sg

import (
	"sort"

	"asyncsyn/internal/stg"
)

// Region is a maximal connected set of states in which one transition of
// a signal is enabled (an excitation region, ER) — the unit in which
// state-signal insertion theory reasons about where a transition "lives".
type Region struct {
	Sig    int
	Dir    stg.Dir
	States []int
}

// ExcitationRegions returns the excitation regions of base signal sig:
// the connected components (in the underlying undirected state graph) of
// the set of states with an enabled sig-transition, split by direction.
// A well-formed speed-independent specification has one region per
// transition instance of the signal.
func (g *Graph) ExcitationRegions(sig int) []Region {
	// States where sig± is enabled.
	enabled := make(map[int]stg.Dir)
	for _, e := range g.Edges {
		if e.Sig == sig {
			enabled[e.From] = e.Dir
		}
	}
	visited := make(map[int]bool)
	var regions []Region
	keys := make([]int, 0, len(enabled))
	for s := range enabled {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, start := range keys {
		if visited[start] {
			continue
		}
		dir := enabled[start]
		var comp []int
		stack := []int{start}
		visited[start] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, s)
			walk := func(other int) {
				if d, ok := enabled[other]; ok && d == dir && !visited[other] {
					visited[other] = true
					stack = append(stack, other)
				}
			}
			for _, ei := range g.Out[s] {
				walk(g.Edges[ei].To)
			}
			for _, ei := range g.In[s] {
				walk(g.Edges[ei].From)
			}
		}
		sort.Ints(comp)
		regions = append(regions, Region{Sig: sig, Dir: dir, States: comp})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].States[0] < regions[j].States[0] })
	return regions
}

// RegionStats summarises the excitation structure of the whole graph:
// per signal, the number of rising and falling regions and the largest
// region size. Signals whose region count exceeds their transition
// instance count indicate fragmented (hazard-prone) excitation.
type RegionStats struct {
	Signal  string
	Rising  int
	Falling int
	MaxSize int
}

// AllRegionStats computes RegionStats for every base signal.
func (g *Graph) AllRegionStats() []RegionStats {
	var out []RegionStats
	for sig, b := range g.Base {
		if g.Active&(1<<sig) == 0 {
			continue
		}
		rs := g.ExcitationRegions(sig)
		st := RegionStats{Signal: b.Name}
		for _, r := range rs {
			if r.Dir == stg.Rising {
				st.Rising++
			} else {
				st.Falling++
			}
			if len(r.States) > st.MaxSize {
				st.MaxSize = len(r.States)
			}
		}
		out = append(out, st)
	}
	return out
}
