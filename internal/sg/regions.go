package sg

import (
	"sort"

	"asyncsyn/internal/stg"
)

// Region is a maximal connected set of states in which one transition of
// a signal is enabled (an excitation region, ER) — the unit in which
// state-signal insertion theory reasons about where a transition "lives".
type Region struct {
	Sig    int
	Dir    stg.Dir
	States []int
}

// ExcitationRegions returns the excitation regions of base signal sig:
// the connected components (in the underlying undirected state graph) of
// the set of states with an enabled sig-transition, split by direction.
// A well-formed speed-independent specification has one region per
// transition instance of the signal.
//
// The enabled set and the visited set are a pooled direction column and
// a pooled bitset rather than per-call maps: AllRegionStats floods the
// same graph once per signal, so the scratch is recycled across calls.
// Components are discovered by an ascending scan over the direction
// column — the same start order the old sorted-map-keys walk produced.
func (g *Graph) ExcitationRegions(sig int) []Region {
	n := len(g.States)
	sc := scratchPool.Get().(*scratch)
	// enabled[s]: -1 not enabled, else the stg.Dir of the enabled
	// sig-transition in s.
	enabled := sc.dirsFor(n, -1)
	for _, e := range g.Edges {
		if e.Sig == sig {
			enabled[e.From] = int8(e.Dir)
		}
	}
	visited := newBitset(sc.bits, n)
	stack := sc.intsFor(0)

	var regions []Region
	for start := 0; start < n; start++ {
		if enabled[start] < 0 || visited.get(start) {
			continue
		}
		dir := enabled[start]
		var comp []int
		stack = append(stack[:0], start)
		visited.set(start)
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, s)
			walk := func(other int) {
				if enabled[other] == dir && !visited.get(other) {
					visited.set(other)
					stack = append(stack, other)
				}
			}
			for _, ei := range g.Out[s] {
				walk(g.Edges[ei].To)
			}
			for _, ei := range g.In[s] {
				walk(g.Edges[ei].From)
			}
		}
		sort.Ints(comp)
		regions = append(regions, Region{Sig: sig, Dir: stg.Dir(dir), States: comp})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].States[0] < regions[j].States[0] })
	sc.bits, sc.ints = visited, stack
	scratchPool.Put(sc)
	return regions
}

// RegionStats summarises the excitation structure of the whole graph:
// per signal, the number of rising and falling regions and the largest
// region size. Signals whose region count exceeds their transition
// instance count indicate fragmented (hazard-prone) excitation.
type RegionStats struct {
	Signal  string
	Rising  int
	Falling int
	MaxSize int
}

// AllRegionStats computes RegionStats for every base signal.
func (g *Graph) AllRegionStats() []RegionStats {
	var out []RegionStats
	for sig, b := range g.Base {
		if g.Active&(1<<sig) == 0 {
			continue
		}
		rs := g.ExcitationRegions(sig)
		st := RegionStats{Signal: b.Name}
		for _, r := range rs {
			if r.Dir == stg.Rising {
				st.Rising++
			} else {
				st.Falling++
			}
			if len(r.States) > st.MaxSize {
				st.MaxSize = len(r.States)
			}
		}
		out = append(out, st)
	}
	return out
}
