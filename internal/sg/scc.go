package sg

// StronglyConnected reports whether every state can reach every other —
// the liveness shape a cyclic speed-independent specification must have
// (a state graph with dead ends or unreachable strongly connected
// components describes a circuit that can stop responding). Tarjan's
// algorithm, iterative to survive deep graphs.
func (g *Graph) StronglyConnected() bool {
	return len(g.SCCs()) == 1
}

// SCCs returns the strongly connected components as state-index slices,
// in reverse topological order of the condensation.
func (g *Graph) SCCs() [][]int {
	n := len(g.States)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int
		sccs    [][]int
		counter int
	)

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		work := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(g.Out[f.v]) {
				w := g.Edges[g.Out[f.v][f.ei]].To
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// Deadlocks lists states with no outgoing edges.
func (g *Graph) Deadlocks() []int {
	var out []int
	for s := range g.States {
		if len(g.Out[s]) == 0 {
			out = append(out, s)
		}
	}
	return out
}
