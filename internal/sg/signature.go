package sg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Signature identifies a modular CSC problem — a (graph, conflicts) pair
// — for the solve cache (internal/modcache).
//
// Canon is invariant to state renumbering: two quotients that differ
// only in how their merged states happen to be numbered hash equal. It
// is computed by Weisfeiler-Leman-style color refinement over the edge
// relation, so it is what makes modules of different outputs share cache
// entries when their quotients are isomorphic.
//
// Layout is the exact index-ordered hash of the same data. Two problems
// with equal Layout are identical byte for byte — same state numbering,
// same edge order, same conflict lists — so a cached model decoded
// against one is valid, column for column, against the other. Cache
// keys carry both: Canon provides the equivalence class, Layout the
// replay guarantee that keeps cached and cold runs bit-identical.
type Signature struct {
	Canon  string
	Layout string
}

// SignatureOf computes the signature of solving conf on g. conf may be
// nil (no separation obligations).
func SignatureOf(g *Graph, conf *Conflicts) Signature {
	return Signature{Canon: canonHash(g, conf), Layout: layoutHash(g, conf)}
}

// fnv1a folds data into a running 64-bit FNV-1a hash.
func fnv1a(h uint64, data ...uint64) uint64 {
	const prime = 1099511628211
	for _, d := range data {
		for i := 0; i < 8; i++ {
			h ^= d & 0xff
			h *= prime
			d >>= 8
		}
	}
	return h
}

const fnvOffset = 14695981039346656037

// canonHash runs a few rounds of color refinement: each state starts
// colored by its local data (code, phase column values, initial flag)
// and is repeatedly re-colored by the sorted multisets of its labelled
// in- and out-neighborhoods. Renumbering the states permutes the color
// arrays but never the colors themselves, so the final sorted digests
// are invariant.
func canonHash(g *Graph, conf *Conflicts) string {
	n := len(g.States)
	color := make([]uint64, n)
	for s := 0; s < n; s++ {
		c := fnv1a(fnvOffset, 0x5354, g.States[s].Code&g.Active)
		if s == g.Initial {
			c = fnv1a(c, 1)
		}
		for _, ss := range g.StateSigs {
			c = fnv1a(c, uint64(ss.Phases[s]))
		}
		color[s] = c
	}

	edgeLabel := func(e Edge) uint64 {
		l := uint64(e.Sig+1)<<2 | uint64(e.Dir)<<1
		if g.InputEdge(e) {
			l |= 1
		}
		return l
	}

	next := make([]uint64, n)
	var nbr []uint64
	for round := 0; round < 3; round++ {
		for s := 0; s < n; s++ {
			nbr = nbr[:0]
			for _, ei := range g.Out[s] {
				e := g.Edges[ei]
				nbr = append(nbr, fnv1a(fnvOffset, 0x4f55, edgeLabel(e), color[e.To]))
			}
			for _, ei := range g.In[s] {
				e := g.Edges[ei]
				nbr = append(nbr, fnv1a(fnvOffset, 0x494e, edgeLabel(e), color[e.From]))
			}
			sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
			next[s] = fnv1a(color[s], nbr...)
		}
		color, next = next, color
	}

	// Order-independent digests: sorted state colors, sorted edge
	// tuples, sorted conflict tuples.
	states := append([]uint64(nil), color...)
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })

	edges := make([]uint64, 0, len(g.Edges))
	for _, e := range g.Edges {
		edges = append(edges, fnv1a(fnvOffset, color[e.From], color[e.To], edgeLabel(e)))
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })

	pairHash := func(kind uint64, p Pair) uint64 {
		a, b := color[p.A], color[p.B]
		if a > b {
			a, b = b, a
		}
		return fnv1a(fnvOffset, kind, a, b)
	}
	var pairs []uint64
	if conf != nil {
		pairs = make([]uint64, 0, len(conf.CSC)+len(conf.USC))
		for _, p := range conf.CSC {
			pairs = append(pairs, pairHash(0x435343, p))
		}
		for _, p := range conf.USC {
			pairs = append(pairs, pairHash(0x555343, p))
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	}

	h := sha256.New()
	writeU64 := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	writeU64(uint64(n), g.Active, uint64(len(g.Edges)))
	hashContext(h, g, conf)
	writeU64(states...)
	writeU64(edges...)
	writeU64(pairs...)
	return hex.EncodeToString(h.Sum(nil))
}

// layoutHash hashes the problem exactly as laid out: state order, edge
// order, conflict order. Equality means a model's variable layout
// decodes identically against both problems.
func layoutHash(g *Graph, conf *Conflicts) string {
	h := sha256.New()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	w(uint64(len(g.States)), g.Active, uint64(g.Initial))
	hashContext(h, g, conf)
	for s := range g.States {
		w(g.States[s].Code & g.Active)
		for _, ss := range g.StateSigs {
			w(uint64(ss.Phases[s]))
		}
	}
	for _, e := range g.Edges {
		in := uint64(0)
		if g.InputEdge(e) {
			in = 1
		}
		w(uint64(e.From), uint64(e.To), uint64(e.Sig+1), uint64(e.Dir), in)
	}
	if conf != nil {
		w(uint64(len(conf.CSC)), uint64(len(conf.USC)), uint64(conf.LowerBound))
		for _, p := range conf.CSC {
			w(uint64(p.A), uint64(p.B))
		}
		for _, p := range conf.USC {
			w(uint64(p.A), uint64(p.B))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashContext feeds the numbering-independent problem context shared by
// both hashes: the base signal roster (names and input flags decide the
// blocked phase pairs of every edge clause) and the state-signal names.
func hashContext(h interface{ Write([]byte) (int, error) }, g *Graph, conf *Conflicts) {
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(len(g.Base)))
	for _, b := range g.Base {
		h.Write([]byte(b.Name))
		h.Write([]byte{0})
		if b.Input {
			w(1)
		} else {
			w(0)
		}
	}
	w(uint64(len(g.StateSigs)))
	for _, ss := range g.StateSigs {
		h.Write([]byte(ss.Name))
		h.Write([]byte{0})
	}
	if conf == nil {
		w(0)
	} else {
		w(uint64(conf.LowerBound) + 1)
	}
}
