package sg

import "testing"

// TestPooledMapsRecycleEmpty pins the pool hygiene policy: maps are
// cleared before they go back to their pools, so a pool hit always
// yields an empty map (a stale entry would corrupt state interning),
// and oversized maps are dropped so one huge expansion cannot pin its
// bucket arrays in the pool for the life of the process.
func TestPooledMapsRecycleEmpty(t *testing.T) {
	idx := map[xstate]int{{orig: 3, x: 1}: 7, {orig: 0, x: 0}: 0}
	if !putExpandIndex(idx) {
		t.Fatal("small interning map was not pooled")
	}
	if len(idx) != 0 {
		t.Fatalf("pooled interning map kept %d entries", len(idx))
	}
	seen := map[uint64]uint8{42: 1}
	if !putTableSeen(seen) {
		t.Fatal("small projection map was not pooled")
	}
	if len(seen) != 0 {
		t.Fatalf("pooled projection map kept %d entries", len(seen))
	}
	edges := map[uint64]struct{}{7: {}}
	if !putEdgeSeen(edges) {
		t.Fatal("small edge-dedup map was not pooled")
	}
	if len(edges) != 0 {
		t.Fatalf("pooled edge-dedup map kept %d entries", len(edges))
	}

	// Whatever Get returns — recycled or fresh — must be empty.
	got := expandIndexPool.Get().(map[xstate]int)
	if len(got) != 0 {
		t.Fatalf("expandIndexPool.Get returned %d stale entries", len(got))
	}
	putExpandIndex(got)

	big := make(map[uint64]uint8, maxPooledMapEntries+1)
	for i := 0; i <= maxPooledMapEntries; i++ {
		big[uint64(i)] = 1
	}
	if putTableSeen(big) {
		t.Fatal("oversized map was pooled; it should be dropped for the GC")
	}
}
