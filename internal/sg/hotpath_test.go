package sg

import (
	"reflect"
	"sort"
	"testing"

	"asyncsyn/internal/stg"
)

// legacyCodeGroups is the pre-bitset reference implementation of
// codeGroups: FullCode per state, hash-map bucketing, sorted keys. The
// radix-sorted production path must match it bit for bit.
func legacyCodeGroups(g *Graph) ([]uint64, map[uint64][]int) {
	n := len(g.States)
	groups := make(map[uint64][]int)
	for s := 0; s < n; s++ {
		c := g.FullCode(s)
		groups[c] = append(groups[c], s)
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, groups
}

// legacyRegions is the pre-bitset reference implementation of
// ExcitationRegions: map-based enabled set and visited set, sorted-keys
// start order.
func legacyRegions(g *Graph, sig int) []Region {
	enabled := make(map[int]stg.Dir)
	for _, e := range g.Edges {
		if e.Sig == sig {
			enabled[e.From] = e.Dir
		}
	}
	visited := make(map[int]bool)
	var regions []Region
	keys := make([]int, 0, len(enabled))
	for s := range enabled {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	for _, start := range keys {
		if visited[start] {
			continue
		}
		dir := enabled[start]
		var comp []int
		stack := []int{start}
		visited[start] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, s)
			walk := func(other int) {
				if d, ok := enabled[other]; ok && d == dir && !visited[other] {
					visited[other] = true
					stack = append(stack, other)
				}
			}
			for _, ei := range g.Out[s] {
				walk(g.Edges[ei].To)
			}
			for _, ei := range g.In[s] {
				walk(g.Edges[ei].From)
			}
		}
		sort.Ints(comp)
		regions = append(regions, Region{Sig: sig, Dir: dir, States: comp})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].States[0] < regions[j].States[0] })
	return regions
}

// propertyGraphs builds the test corpus: random STGs across seeds (the
// generator mixes all three branch classes — pulse, handshake, double
// pulse — across this seed range) plus handshake ladders, with a state
// signal column appended to exercise FullCode's upper bits.
func propertyGraphs(t *testing.T) []*Graph {
	t.Helper()
	var out []*Graph
	for seed := int64(1); seed <= 40; seed++ {
		sp, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatalf("random %d: %v", seed, err)
		}
		g, err := FromSTG(sp, Options{})
		if err != nil {
			continue // some seeds exceed bounds; plenty remain
		}
		out = append(out, g)
	}
	for k := 1; k <= 3; k++ {
		sp, err := stg.Handshakes("", k, 2)
		if err != nil {
			t.Fatalf("handshakes %d: %v", k, err)
		}
		g, err := FromSTG(sp, Options{})
		if err != nil {
			t.Fatalf("sg handshakes %d: %v", k, err)
		}
		out = append(out, g)
	}
	if len(out) < 20 {
		t.Fatalf("only %d property graphs generated", len(out))
	}
	// Append a synthetic state-signal column to half the graphs so full
	// codes exercise the bits above the base signals.
	for i, g := range out {
		if i%2 == 0 {
			continue
		}
		ph := make([]Phase, len(g.States))
		for s := range ph {
			switch s % 4 {
			case 0:
				ph[s] = P0
			case 1:
				ph[s] = P1
			case 2:
				ph[s] = PUp
			default:
				ph[s] = PDown
			}
		}
		g.StateSigs = append(g.StateSigs, StateSignal{Name: "t0", Phases: ph})
	}
	return out
}

// TestCodeGroupsMatchesLegacy pins the radix-sorted code grouping and
// the one-pass enabled-mask column bit-identical to the legacy map-based
// path on random STGs.
func TestCodeGroupsMatchesLegacy(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		for _, workers := range []int{1, 4} {
			keys, groups := codeGroups(g, workers)
			lkeys, lgroups := legacyCodeGroups(g)
			if !reflect.DeepEqual(keys, lkeys) {
				t.Fatalf("graph %d workers %d: keys diverge\n new %v\n old %v", gi, workers, keys, lkeys)
			}
			for ki, k := range keys {
				if !reflect.DeepEqual(groups[ki], lgroups[k]) {
					t.Fatalf("graph %d workers %d code %b: members diverge\n new %v\n old %v",
						gi, workers, k, groups[ki], lgroups[k])
				}
			}
		}
		enabled := g.enabledNonInputsAll(nil)
		for s := range g.States {
			if want := g.EnabledNonInputs(s); enabled[s] != want {
				t.Fatalf("graph %d state %d: enabled mask %b, want %b", gi, s, enabled[s], want)
			}
		}
	}
}

// TestAnalyzeMatchesLegacyScan pins the full conflict scan (which now
// runs over the shared enabled-mask column and radix groups) against a
// direct reconstruction from the legacy grouping, at both worker counts.
func TestAnalyzeMatchesLegacyScan(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		want := legacyAnalyze(g)
		for _, workers := range []int{1, 4} {
			got := AnalyzeWorkers(g, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d workers %d: conflicts diverge\n new %+v\n old %+v", gi, workers, got, want)
			}
		}
	}
}

// legacyAnalyze is the pre-bitset sequential conflict scan.
func legacyAnalyze(g *Graph) *Conflicts {
	keys, groups := legacyCodeGroups(g)
	res := &Conflicts{}
	for _, k := range keys {
		states := groups[k]
		if len(states) > res.MaxGroup {
			res.MaxGroup = len(states)
		}
		classOf := make([]uint64, len(states))
		classes := make(map[uint64]bool)
		for i, s := range states {
			classOf[i] = g.EnabledNonInputs(s)
			classes[classOf[i]] = true
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if classOf[i] != classOf[j] {
					res.CSC = append(res.CSC, p)
				} else {
					res.USC = append(res.USC, p)
				}
			}
		}
		if lb := ceilLog2(len(classes)); lb > res.LowerBound {
			res.LowerBound = lb
		}
	}
	return res
}

// TestRegionsMatchLegacy pins the pooled-bitset region flooding against
// the legacy map-based implementation on every signal of every graph.
func TestRegionsMatchLegacy(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		for sig := range g.Base {
			got := g.ExcitationRegions(sig)
			want := legacyRegions(g, sig)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d signal %d: regions diverge\n new %+v\n old %+v", gi, sig, got, want)
			}
		}
	}
}
