// Package sg implements state graphs: the reachable-marking automata of
// signal transition graphs with consistent binary state codes, CSC/USC
// conflict analysis, ε-quotients (the paper's modular state graphs) with
// the Figure-3 phase-merge calculus, state-signal expansion and implied
// logic extraction.
package sg

import "fmt"

// Phase is the 4-valued assignment a state signal takes in a state:
// stable low (P0), stable high (P1), excited to rise (PUp: level still 0,
// the + transition is enabled) or excited to fall (PDown: level still 1).
type Phase uint8

const (
	P0 Phase = iota
	P1
	PUp
	PDown
)

func (p Phase) String() string {
	switch p {
	case P0:
		return "0"
	case P1:
		return "1"
	case PUp:
		return "Up"
	case PDown:
		return "Down"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Level is the binary value a phase contributes to the state code:
// an excited signal still holds its pre-transition level.
func (p Phase) Level() uint8 {
	if p == P1 || p == PDown {
		return 1
	}
	return 0
}

// EdgeCompatible reports whether phase b may follow phase a along a state
// graph edge that is not a transition of the state signal itself. The
// allowed relation is
//
//	{(x,x)} ∪ {(0,Up), (Up,1), (1,Down), (Down,0)}
//
// It encodes both consistent state assignment (no 0→1 level jump without
// an Up phase) and semi-modularity (an excited signal stays excited until
// it fires: Up may not revert to 0, Down may not revert to 1). The
// excluded pairs are exactly the paper's Figure 3 cases (j) and (k).
func EdgeCompatible(a, b Phase) bool {
	if a == b {
		return true
	}
	switch a {
	case P0:
		return b == PUp
	case PUp:
		return b == P1
	case P1:
		return b == PDown
	case PDown:
		return b == P0
	}
	return false
}

// EdgeCompatibleIO refines EdgeCompatible for edges the circuit cannot
// delay: input-signal transitions (and dummy events) are fired by the
// environment, so an inserted signal's transition cannot be ordered
// before them. Completing an excitation across such an edge — (Up,1) or
// (Down,0) — would require exactly that ordering and is forbidden;
// becoming excited across it — (0,Up), (1,Down) — is fine.
func EdgeCompatibleIO(a, b Phase, inputEdge bool) bool {
	if !EdgeCompatible(a, b) {
		return false
	}
	if inputEdge && ((a == PUp && b == P1) || (a == PDown && b == P0)) {
		return false
	}
	return true
}

// PhaseSet is a bitmask over the four phases.
type PhaseSet uint8

// Add returns s with phase p included.
func (s PhaseSet) Add(p Phase) PhaseSet { return s | 1<<p }

// Has reports whether p is in s.
func (s PhaseSet) Has(p Phase) bool { return s&(1<<p) != 0 }

// JoinPhases merges the phases of the states of an ε-connected class into
// the single phase of the merged modular-graph state, per the paper's
// Figure 3:
//
//	{x}              → x        (cases a–d)
//	⊆{0,Up,1} with Up → Up       (cases f, g: the signal rises inside the class)
//	⊆{1,Down,0} with Down → Down (cases h, i)
//
// Any other combination — {0,1} with no excitation, or both Up and Down
// present (case e / j / k) — is inconsistent, and the signal whose
// removal produced the class cannot be removed.
func JoinPhases(s PhaseSet) (Phase, bool) {
	if s == 0 {
		return P0, false
	}
	hasUp, hasDown := s.Has(PUp), s.Has(PDown)
	switch {
	case hasUp && hasDown:
		return P0, false
	case hasUp:
		return PUp, true
	case hasDown:
		return PDown, true
	case s.Has(P0) && s.Has(P1):
		return P0, false
	case s.Has(P1):
		return P1, true
	default:
		return P0, true
	}
}
