package sg

import (
	"math/rand"
	"testing"

	"asyncsyn/internal/stg"
)

func TestSCCsHandshake(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	if !sgr.StronglyConnected() {
		t.Fatalf("cyclic handshake must be strongly connected")
	}
	if len(sgr.Deadlocks()) != 0 {
		t.Fatalf("handshake has deadlocks")
	}
}

func TestSCCsDetectsDeadEnd(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	// Graft an artificial dead-end state.
	sgr.States = append(sgr.States, State{Code: 0b11})
	sgr.Out = append(sgr.Out, nil)
	sgr.In = append(sgr.In, nil)
	sgr.addEdge(Edge{From: 0, To: len(sgr.States) - 1, Sig: 0, Dir: stg.Rising})
	if sgr.StronglyConnected() {
		t.Fatalf("dead end not detected")
	}
	if len(sgr.Deadlocks()) != 1 {
		t.Fatalf("deadlock not listed")
	}
	if len(sgr.SCCs()) != 2 {
		t.Fatalf("SCC count = %d", len(sgr.SCCs()))
	}
}

// TestPropertyRandomGraphs checks structural invariants across the
// random STG population:
//   - state graphs are strongly connected and deadlock-free,
//   - quotients by arbitrary signal subsets partition the states and
//     preserve active code bits within classes,
//   - every graph is output persistent (the generator composes only
//     choice-free output structures).
func TestPropertyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 40; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromSTG(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.StronglyConnected() {
			t.Fatalf("seed %d: not strongly connected", seed)
		}
		if len(g.Deadlocks()) != 0 {
			t.Fatalf("seed %d: deadlocks", seed)
		}
		if !g.OutputPersistent() {
			t.Fatalf("seed %d: output persistency violated", seed)
		}

		// Random silencing masks (never the whole signal set).
		for trial := 0; trial < 5; trial++ {
			mask := uint64(rng.Intn(1<<len(g.Base))) & g.Active
			if mask == g.Active {
				mask &^= 1
			}
			m, ok := g.Quotient(mask)
			if !ok {
				continue // no state signals yet, joins cannot fail
			}
			// Partition: every state in exactly one class.
			seen := make(map[int]bool)
			for mi, ms := range m.Members {
				for _, s := range ms {
					if seen[s] {
						t.Fatalf("seed %d: state in two classes", seed)
					}
					seen[s] = true
					if m.Cover[s] != mi {
						t.Fatalf("seed %d: cover mismatch", seed)
					}
					// Active bits agree with the class representative.
					if g.States[s].Code&m.Graph.Active != m.Graph.States[mi].Code {
						t.Fatalf("seed %d: class code mismatch", seed)
					}
				}
			}
			if len(seen) != g.NumStates() {
				t.Fatalf("seed %d: classes cover %d of %d states", seed, len(seen), g.NumStates())
			}
			// Edge images: every merged edge's label is unsilenced.
			for _, e := range m.Graph.Edges {
				if e.Sig < 0 || mask&(1<<e.Sig) != 0 {
					t.Fatalf("seed %d: silenced edge in quotient", seed)
				}
			}
		}
	}
}

// TestPropertyExpansionInvariants: expanding hand-inserted legal phases
// preserves reachability shape — no deadlocks, strong connectivity, and
// every expanded state's origin is valid.
func TestPropertyExpansionInvariants(t *testing.T) {
	for seed := int64(40); seed < 60; seed++ {
		spec, err := stg.Random(seed, stg.RandomOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromSTG(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Insert a constant-0 signal (trivially legal) and a "rising at
		// the end of the a+ phase" style column if legal; fall back to
		// constant.
		phases := make([]Phase, g.NumStates())
		g.StateSigs = append(g.StateSigs, StateSignal{Name: "z", Phases: phases})
		ex, err := g.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if ex.NumStates() != g.NumStates() {
			t.Fatalf("seed %d: constant signal changed state count", seed)
		}
		for s, o := range ex.Origin {
			if o < 0 || o >= g.NumStates() {
				t.Fatalf("seed %d: bad origin for %d", seed, s)
			}
			if ex.States[s].Code&(uint64(1)<<len(g.Base)-1)&g.Active != g.States[o].Code&g.Active {
				t.Fatalf("seed %d: expanded code disagrees with origin", seed)
			}
		}
		if !ex.StronglyConnected() || len(ex.Deadlocks()) != 0 {
			t.Fatalf("seed %d: expansion broke liveness", seed)
		}
	}
}
