package sg

import "testing"

func TestPhaseLevel(t *testing.T) {
	cases := []struct {
		p    Phase
		want uint8
	}{
		{P0, 0}, {P1, 1}, {PUp, 0}, {PDown, 1},
	}
	for _, c := range cases {
		if got := c.p.Level(); got != c.want {
			t.Errorf("Level(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestEdgeCompatible pins the full 16-entry relation: the monotone phase
// progression 0 → Up → 1 → Down → 0 plus stutter.
func TestEdgeCompatible(t *testing.T) {
	allowed := map[[2]Phase]bool{
		{P0, P0}: true, {P1, P1}: true, {PUp, PUp}: true, {PDown, PDown}: true,
		{P0, PUp}: true, {PUp, P1}: true, {P1, PDown}: true, {PDown, P0}: true,
	}
	phases := []Phase{P0, P1, PUp, PDown}
	for _, a := range phases {
		for _, b := range phases {
			want := allowed[[2]Phase{a, b}]
			if got := EdgeCompatible(a, b); got != want {
				t.Errorf("EdgeCompatible(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestFigure3Cases exhaustively checks the ε-merge calculus against the
// paper's Figure 3: cases (a)-(d) merge equal phases, (f)-(i) absorb an
// adjacent stable phase into the excited one, and the remaining
// combinations — (e), (j), (k) — are inconsistent.
func TestFigure3Cases(t *testing.T) {
	mk := func(ps ...Phase) PhaseSet {
		var s PhaseSet
		for _, p := range ps {
			s = s.Add(p)
		}
		return s
	}
	cases := []struct {
		name string
		set  PhaseSet
		want Phase
		ok   bool
	}{
		{"a: {0}", mk(P0), P0, true},
		{"b: {1}", mk(P1), P1, true},
		{"c: {Up}", mk(PUp), PUp, true},
		{"d: {Down}", mk(PDown), PDown, true},
		{"f: {0,Up}", mk(P0, PUp), PUp, true},
		{"g: {Up,1}", mk(PUp, P1), PUp, true},
		{"h: {1,Down}", mk(P1, PDown), PDown, true},
		{"i: {Down,0}", mk(PDown, P0), PDown, true},
		{"chain {0,Up,1}", mk(P0, PUp, P1), PUp, true},
		{"chain {1,Down,0}", mk(P1, PDown, P0), PDown, true},
		{"e: {Up,Down}", mk(PUp, PDown), 0, false},
		{"j: {0,1}", mk(P0, P1), 0, false},
		{"k: {0,1,Up,Down}", mk(P0, P1, PUp, PDown), 0, false},
		{"{Up,Down,0}", mk(PUp, PDown, P0), 0, false},
		{"empty", 0, 0, false},
	}
	for _, c := range cases {
		got, ok := JoinPhases(c.set)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: JoinPhases = %v,%v want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

// TestJoinConsistentWithEdgeRelation: any two phases adjacent under
// EdgeCompatible must join consistently (ε-merging states along a
// compatible edge is always legal), and the join must be one of the two.
func TestJoinConsistentWithEdgeRelation(t *testing.T) {
	phases := []Phase{P0, P1, PUp, PDown}
	for _, a := range phases {
		for _, b := range phases {
			if !EdgeCompatible(a, b) {
				continue
			}
			j, ok := JoinPhases(PhaseSet(0).Add(a).Add(b))
			if !ok {
				t.Errorf("compatible pair (%v,%v) fails to join", a, b)
				continue
			}
			if j != a && j != b {
				t.Errorf("join(%v,%v) = %v, not one of the operands", a, b, j)
			}
		}
	}
}
