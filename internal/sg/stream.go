package sg

import (
	"fmt"

	"asyncsyn/internal/stg"
)

// Stream is the compact column view of an expanded, phase-free state
// graph. The streaming wave expansion (ExpandStream) fills it without
// ever materializing the expanded Graph: per state it keeps only the
// four words every downstream consumer needs — the raw code, the
// enabled non-input mask, the implied-next-value bits and the
// originating pre-expansion state — instead of the edge list and the
// Out/In adjacency, which dominate the materialized graph's footprint.
// Conflict analysis (AnalyzeStream), logic derivation (FunctionTable)
// and refinement-conflict mapping (Origin) all run off these columns
// with results bit-identical to the materialized path.
type Stream struct {
	Name    string
	Base    []SignalInfo // base signals of the expanded graph (original + state signals)
	Active  uint64       // visible-signal mask over Base
	Initial int

	Codes   []uint64 // raw state codes (same bits as Graph.States[s].Code)
	Enabled []uint64 // per-state EnabledNonInputs mask
	Implied []uint64 // per-state implied next value, one bit per Base signal
	Origin  []int    // originating state in the pre-expansion graph

	// Waves is the number of BFS waves the expansion emitted and
	// PeakFrontier the widest single wave; both are zero for a Stream
	// built from an already-materialized graph (StreamOf).
	Waves        int
	PeakFrontier int
}

// NumStates returns the number of expanded states.
func (st *Stream) NumStates() int { return len(st.Codes) }

// BaseSignals returns the base signal list (the core.LogicSource
// surface shared with Graph).
func (st *Stream) BaseSignals() []SignalInfo { return st.Base }

// InitialCode returns the code of the initial state.
func (st *Stream) InitialCode() uint64 { return st.Codes[st.Initial] }

// SignalIndex returns the Base index of the named signal.
func (st *Stream) SignalIndex(name string) (int, bool) {
	for i, b := range st.Base {
		if b.Name == name {
			return i, true
		}
	}
	return -1, false
}

// ImpliedValue returns the next value signal sig must take from state s
// (the Stream counterpart of Graph.ImpliedValue).
func (st *Stream) ImpliedValue(s, sig int) uint8 {
	return uint8((st.Implied[s] >> sig) & 1)
}

// FunctionTable derives the implied-value table of non-input signal sig
// projected onto supportMask, exactly as Graph.FunctionTable does on the
// materialized expanded graph (both share tableOver).
func (st *Stream) FunctionTable(sig int, supportMask uint64) (*Table, error) {
	return tableOver(st.Base, sig, supportMask, len(st.Codes),
		func(s int) uint64 { return st.Codes[s] },
		func(s int) uint8 { return uint8((st.Implied[s] >> sig) & 1) })
}

// AnalyzeStream performs the same full CSC analysis as AnalyzeWorkers,
// but over streamed columns instead of a materialized graph: states are
// grouped by full code (raw code under the Active mask — a streamed
// graph is phase-free, so there are no state-signal columns to add) and
// compared by enabled non-input signal sets. Pair lists come out in the
// identical order for any worker count.
func AnalyzeStream(st *Stream, workers int) *Conflicts {
	n := len(st.Codes)
	if n == 0 {
		return &Conflicts{}
	}
	sc := scratchPool.Get().(*scratch)
	codes := sc.u64sFor(n)
	for i, c := range st.Codes {
		codes[i] = c & st.Active
	}
	_, groups := codeGroupsOf(codes, sc)
	res := analyzeGroups(groups, st.Enabled, workers)
	scratchPool.Put(sc)
	return res
}

// WaveState is one expanded state as the streaming expansion emits it:
// states arrive in ascending Index order (the same interning order the
// materializing Expand assigns), grouped into BFS waves by distance
// from the initial state.
type WaveState struct {
	Index   int
	Origin  int    // originating pre-expansion state
	Wave    int    // BFS wave (0 = initial state)
	Code    uint64 // raw expanded code (original code | state-signal levels)
	Enabled uint64 // enabled non-input signals
	Implied uint64 // implied next value, one bit per signal
}

// ExpandWaves is the frontier iterator underneath ExpandStream: it runs
// the §3.5 expansion as a breadth-first traversal and hands each
// expanded state to emit exactly once, in the same index order the
// materializing Expand would assign (its work-list is a FIFO queue, so
// interning order is BFS order; a wave is one BFS level). Per state it
// retains only the interning map and the frontier queue — no edges, no
// adjacency — so peak heap scales with the state count times a few
// words instead of the full graph. Returns the wave count and the
// widest wave. An emit error aborts the traversal and is returned
// as-is.
//
// When the graph has no state-signal columns there is nothing to
// expand: states are emitted in their existing order as one wave, with
// Origin the identity — mirroring Expand's clone-with-identity-Origin
// fast path without the clone.
func (g *Graph) ExpandWaves(emit func(WaveState) error) (waves, peakFrontier int, err error) {
	m := len(g.StateSigs)
	if len(g.Base)+m > MaxSignals {
		return 0, 0, fmt.Errorf("sg: expansion exceeds %d signals", MaxSignals)
	}
	if m == 0 {
		n := len(g.States)
		for s := 0; s < n; s++ {
			ws := WaveState{
				Index:   s,
				Origin:  s,
				Wave:    0,
				Code:    g.States[s].Code,
				Enabled: g.EnabledNonInputs(s),
				Implied: g.impliedMask(s),
			}
			if err := emit(ws); err != nil {
				return 0, 0, err
			}
		}
		return 1, n, nil
	}

	nb := len(g.Base)
	inputMask := uint64(0)
	for i, b := range g.Base {
		if b.Input {
			inputMask |= 1 << i
		}
	}
	// Inserted state signals are non-input, so inputMask needs no
	// extension past nb.

	// The interning map must span all discovered states (dedup), but the
	// queue only needs the discovered-but-unprocessed window — the BFS
	// frontier. The processed prefix is compacted away once it dominates
	// the slice, so the queue's footprint tracks the frontier width, not
	// the total state count.
	index := expandIndexPool.Get().(map[xstate]int)
	var queue []xstate
	head := 0 // queue[head:] is the frontier; head counts processed entries still in the slice
	next := 0 // total states discovered = next absolute state index
	push := func(s xstate) int {
		if i, ok := index[s]; ok {
			return i
		}
		i := next
		next++
		index[s] = i
		queue = append(queue, s)
		return i
	}

	initLevels := func(st int) uint64 {
		var x uint64
		for k, ss := range g.StateSigs {
			if ss.Phases[st].Level() == 1 {
				x |= 1 << k
			}
		}
		return x
	}
	compat := func(x uint64, st int) bool {
		for k, ss := range g.StateSigs {
			lvl := (x >> k) & 1
			switch ss.Phases[st] {
			case P0:
				if lvl != 0 {
					return false
				}
			case P1:
				if lvl != 1 {
					return false
				}
			}
		}
		return true
	}

	push(xstate{g.Initial, initLevels(g.Initial)})
	waves, peakFrontier = 1, 1
	waveEnd := 1 // absolute index one past the current wave's last state
	for i := 0; head < len(queue); i++ {
		if i == waveEnd {
			if w := next - waveEnd; w > peakFrontier {
				peakFrontier = w
			}
			waveEnd = next
			waves++
		}
		if head >= 4096 && 2*head >= len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		cur := queue[head]
		head++
		code := g.States[cur.orig].Code | (cur.x << nb)
		var enabled, impliedVals, decided uint64
		fire := func(sig int, dir stg.Dir) {
			if sig < 0 {
				return
			}
			bit := uint64(1) << sig
			if decided&bit == 0 {
				decided |= bit
				if dir == stg.Rising {
					impliedVals |= bit
				}
			}
			if inputMask&bit == 0 {
				enabled |= bit
			}
		}
		// State signal firings, then original edges gated by
		// successor-phase compatibility — the exact edge order the
		// materializing Expand generates, so first-edge implied-value
		// semantics match bit for bit.
		for k, ss := range g.StateSigs {
			lvl := (cur.x >> k) & 1
			switch {
			case ss.Phases[cur.orig] == PUp && lvl == 0:
				push(xstate{cur.orig, cur.x | 1<<k})
				fire(nb+k, stg.Rising)
			case ss.Phases[cur.orig] == PDown && lvl == 1:
				push(xstate{cur.orig, cur.x &^ (1 << k)})
				fire(nb+k, stg.Falling)
			}
		}
		for _, ei := range g.Out[cur.orig] {
			e := g.Edges[ei]
			if !compat(cur.x, e.To) {
				continue
			}
			push(xstate{e.To, cur.x})
			fire(e.Sig, e.Dir)
		}
		ws := WaveState{
			Index:   i,
			Origin:  cur.orig,
			Wave:    waves - 1,
			Code:    code,
			Enabled: enabled,
			Implied: impliedVals | (code &^ decided),
		}
		if err := emit(ws); err != nil {
			putExpandIndex(index)
			return 0, 0, err
		}
	}
	putExpandIndex(index)
	return waves, peakFrontier, nil
}

// ExpandStream runs the streaming wave expansion and collects the
// per-state columns into a Stream. This is the streaming counterpart of
// Expand: same interning order, same codes, same implied values — but
// the peak allocation is four words per state plus the interning map,
// instead of the materialized graph's states, edges and adjacency.
func (g *Graph) ExpandStream() (*Stream, error) {
	m := len(g.StateSigs)
	base := g.Base
	active := g.Active
	if m > 0 {
		base = make([]SignalInfo, 0, len(g.Base)+m)
		base = append(base, g.Base...)
		for _, ss := range g.StateSigs {
			base = append(base, SignalInfo{Name: ss.Name, Input: false})
		}
		active |= ((uint64(1) << m) - 1) << len(g.Base)
	}
	st := &Stream{
		Name:   g.Name,
		Base:   base,
		Active: active,
	}
	waves, peak, err := g.ExpandWaves(func(ws WaveState) error {
		st.Codes = append(st.Codes, ws.Code)
		st.Enabled = append(st.Enabled, ws.Enabled)
		st.Implied = append(st.Implied, ws.Implied)
		st.Origin = append(st.Origin, ws.Origin)
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.Waves, st.PeakFrontier = waves, peak
	if m > 0 {
		st.Initial = 0 // the initial state is interned first
	} else {
		st.Initial = g.Initial
	}
	return st, nil
}

// impliedMask packs ImpliedValue for every Base signal of a phase-free
// state into one word: the first out-edge carrying a signal decides its
// bit (Rising→1, Falling→0), undecided signals keep their current code
// level — the same first-matching-edge rule Graph.ImpliedValue applies
// per signal.
func (g *Graph) impliedMask(s int) uint64 {
	var decided, vals uint64
	for _, ei := range g.Out[s] {
		e := g.Edges[ei]
		if e.Sig < 0 {
			continue
		}
		bit := uint64(1) << e.Sig
		if decided&bit != 0 {
			continue
		}
		decided |= bit
		if e.Dir == stg.Rising {
			vals |= bit
		}
	}
	return vals | (g.States[s].Code &^ decided)
}

// StreamOf builds the column view of an already-materialized phase-free
// graph (typically the result of Expand). It exists so consumers can be
// written against Stream alone and still serve the legacy materializing
// path; Waves and PeakFrontier are zero since nothing was streamed.
func StreamOf(g *Graph) (*Stream, error) {
	if len(g.StateSigs) > 0 {
		return nil, fmt.Errorf("sg: StreamOf requires an expanded, phase-free graph")
	}
	n := len(g.States)
	st := &Stream{
		Name:    g.Name,
		Base:    g.Base,
		Active:  g.Active,
		Initial: g.Initial,
		Codes:   make([]uint64, n),
		Enabled: make([]uint64, n),
		Implied: make([]uint64, n),
		Origin:  make([]int, n),
	}
	for s := 0; s < n; s++ {
		st.Codes[s] = g.States[s].Code
		st.Enabled[s] = g.EnabledNonInputs(s)
		st.Implied[s] = g.impliedMask(s)
		if g.Origin != nil {
			st.Origin[s] = g.Origin[s]
		} else {
			st.Origin[s] = s
		}
	}
	return st, nil
}
