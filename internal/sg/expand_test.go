package sg

import (
	"strings"
	"testing"

	"asyncsyn/internal/stg"
)

// insertTwoPulseSignal loads the twoPulse STG and inserts the canonical
// state signal: rising concurrently with the first b pulse, falling
// with the second.
func insertTwoPulseSignal(t *testing.T) *Graph {
	t.Helper()
	sgr, err := FromSTG(parse(t, twoPulse), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// States (BFS): 0 idle, 1 a=1, 2 ab=11, 3 a=1 post b-, 4 idle2,
	// 5 b=1 second pulse.
	phases := []Phase{P0, P0, PUp, P1, P1, PDown}
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: phases})
	if bad := sgr.CheckPhaseConsistency(); len(bad) != 0 {
		t.Fatalf("phases inconsistent: %v", bad)
	}
	return sgr
}

func TestExpandSerializesExcitation(t *testing.T) {
	sgr := insertTwoPulseSignal(t)
	ex, err := sgr.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// z+ fires inside state 2's region, z− inside state 5's: 6 original
	// states, two of them split = 8 expanded states.
	if ex.NumStates() != 8 {
		t.Fatalf("expanded states = %d, want 8", ex.NumStates())
	}
	if len(ex.StateSigs) != 0 {
		t.Fatalf("expansion must clear phase columns")
	}
	zIdx, ok := ex.SignalIndex("z")
	if !ok {
		t.Fatalf("z not a base signal after expansion")
	}
	if ex.Base[zIdx].Input {
		t.Fatalf("state signal must be non-input")
	}
	// Exactly one z+ and one z− edge.
	var rises, falls int
	for _, e := range ex.Edges {
		if e.Sig == zIdx {
			if e.Dir == stg.Rising {
				rises++
			} else {
				falls++
			}
		}
	}
	if rises != 1 || falls != 1 {
		t.Fatalf("z edges: %d rises, %d falls", rises, falls)
	}
	// Expansion resolves the CSC conflicts of this insertion.
	if conf := Analyze(ex); conf.N() != 0 {
		t.Fatalf("expanded graph still has %d conflicts", conf.N())
	}
	// All expanded codes are distinct here.
	seen := make(map[uint64]bool)
	for s := range ex.States {
		c := ex.States[s].Code
		if seen[c] {
			t.Fatalf("duplicate expanded code %b", c)
		}
		seen[c] = true
	}
}

func TestExpandNoStateSigsIsClone(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	ex, err := sgr.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumStates() != sgr.NumStates() || len(ex.Edges) != len(sgr.Edges) {
		t.Fatalf("expansion without state signals must preserve the graph")
	}
}

func TestExpandGatesOriginalEdges(t *testing.T) {
	// Phase 0→1 along an edge is illegal; Up→1 requires z+ before the
	// move. Construct a 4-cycle with z: 0:P0, 1:PUp, 2:P1, 3:PDown.
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	sgr.StateSigs = append(sgr.StateSigs, StateSignal{Name: "z", Phases: []Phase{P0, PUp, P1, PDown}})
	ex, err := sgr.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// In the expanded graph, no edge may jump z's level except z's own.
	zIdx, _ := ex.SignalIndex("z")
	for _, e := range ex.Edges {
		zFrom := (ex.States[e.From].Code >> zIdx) & 1
		zTo := (ex.States[e.To].Code >> zIdx) & 1
		if e.Sig != zIdx && zFrom != zTo {
			t.Fatalf("edge of %s changes z's level", ex.Base[e.Sig].Name)
		}
	}
	// The state with phase 1 must only be reachable after z+ fired.
	if conf := Analyze(ex); conf.N() != 0 {
		t.Fatalf("conflicts after expansion: %d", conf.N())
	}
}

func TestFunctionTable(t *testing.T) {
	sgr := insertTwoPulseSignal(t)
	ex, err := sgr.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bIdx, _ := ex.SignalIndex("b")
	full := uint64(1<<len(ex.Base)) - 1
	tbl, err := ex.FunctionTable(bIdx, full)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Signal != "b" || len(tbl.Vars) != 3 {
		t.Fatalf("table meta %v %v", tbl.Signal, tbl.Vars)
	}
	if len(tbl.On)+len(tbl.Off) != ex.NumStates() {
		t.Fatalf("table covers %d codes, want %d", len(tbl.On)+len(tbl.Off), ex.NumStates())
	}
	// ON and OFF are disjoint and sorted.
	seen := make(map[uint64]bool)
	for _, m := range append(append([]uint64{}, tbl.On...), tbl.Off...) {
		if seen[m] {
			t.Fatalf("minterm %b in both sets", m)
		}
		seen[m] = true
	}
}

func TestFunctionTableIllDefined(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	bIdx, _ := sgr.SignalIndex("b")
	// Without any state signal, b is ill-defined on the full support
	// (codes 10 and 00 each imply both values).
	full := uint64(1<<len(sgr.Base)) - 1
	if _, err := sgr.FunctionTable(bIdx, full); err == nil || !strings.Contains(err.Error(), "ill-defined") {
		t.Fatalf("want ill-defined error, got %v", err)
	}
}

func TestFunctionTableRequiresExpandedGraph(t *testing.T) {
	sgr := insertTwoPulseSignal(t)
	if _, err := sgr.FunctionTable(0, 1); err == nil {
		t.Fatalf("FunctionTable must reject graphs with phase columns")
	}
}

func TestFunctionTableSupportProjection(t *testing.T) {
	sgr := insertTwoPulseSignal(t)
	ex, _ := sgr.Expand()
	bIdx, _ := ex.SignalIndex("b")
	aIdx, _ := ex.SignalIndex("a")
	zIdx, _ := ex.SignalIndex("z")
	// b restricted to {a, z, b}: all bits — fine. Restricted to {b} only:
	// must be ill-defined (b cannot be a function of itself alone).
	if _, err := ex.FunctionTable(bIdx, 1<<bIdx); err == nil {
		t.Fatalf("b over {b} must be ill-defined")
	}
	tbl, err := ex.FunctionTable(bIdx, 1<<aIdx|1<<bIdx|1<<zIdx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Vars) != 3 {
		t.Fatalf("vars %v", tbl.Vars)
	}
}
