package sg

import (
	"fmt"
	"sort"
	"sync"

	"asyncsyn/internal/stg"
)

// xstate is an expansion work-list entry: an original state plus the
// level bits of the inserted state signals.
type xstate struct {
	orig int
	x    uint64
}

// expandIndexPool recycles the Expand state-interning map, and
// tableSeenPool the FunctionTable projection map, across calls (one
// Expand per refinement round, one FunctionTable per output). Maps are
// cleared BEFORE they go back to the pool (putExpandIndex/putTableSeen),
// never on Get: a map sitting in the pool holds no stale entries — and
// therefore no references pinning a dead graph's states live across
// calls — and every Get (recycled or fresh from New) yields an empty
// map, so results are identical with or without a pool hit.
var expandIndexPool = sync.Pool{
	New: func() any { return make(map[xstate]int, 1024) },
}

var tableSeenPool = sync.Pool{
	New: func() any { return make(map[uint64]uint8, 1024) },
}

// maxPooledMapEntries caps the size of maps returned to the interning
// pools. A Go map's bucket array never shrinks, so recycling the map of
// one huge expansion would pin its whole footprint in the pool for the
// life of the process; oversized maps are dropped for the GC instead.
const maxPooledMapEntries = 1 << 16

// putExpandIndex returns an interning map to expandIndexPool, clearing
// it first; oversized maps are dropped. Reports whether the map was
// pooled.
func putExpandIndex(m map[xstate]int) bool {
	if len(m) > maxPooledMapEntries {
		return false
	}
	clear(m)
	expandIndexPool.Put(m)
	return true
}

// putTableSeen is putExpandIndex for the FunctionTable projection map.
func putTableSeen(m map[uint64]uint8) bool {
	if len(m) > maxPooledMapEntries {
		return false
	}
	clear(m)
	tableSeenPool.Put(m)
	return true
}

// Expand converts the 4-valued state-signal phase columns into explicit
// binary signals by inserting their transitions into the state graph
// (the paper's §3.5 expansion step). Each expanded state is an original
// state plus a level vector x for the state signals; n_k+ fires where the
// phase is Up and x_k is still 0, n_k− where Down and x_k is 1, and an
// original edge fires only when every level is compatible with the
// successor's phase (phase 0 needs x=0, phase 1 needs x=1, excited phases
// accept either — the semi-modular serialisation of concurrent firing).
// The result has no phase columns: state signals become non-input base
// signals.
func (g *Graph) Expand() (*Graph, error) {
	m := len(g.StateSigs)
	if len(g.Base)+m > MaxSignals {
		return nil, fmt.Errorf("sg: expansion exceeds %d signals", MaxSignals)
	}
	if m == 0 {
		c := g.Clone()
		c.Origin = make([]int, len(g.States))
		for i := range c.Origin {
			c.Origin[i] = i
		}
		return c, nil
	}

	base := append([]SignalInfo(nil), g.Base...)
	for _, ss := range g.StateSigs {
		base = append(base, SignalInfo{Name: ss.Name, Input: false})
	}
	nb := len(g.Base)

	ex := &Graph{
		Name:   g.Name,
		Base:   base,
		Active: g.Active | (((uint64(1) << m) - 1) << nb),
	}

	index := expandIndexPool.Get().(map[xstate]int)
	defer putExpandIndex(index)
	var pool []xstate
	push := func(s xstate) int {
		if i, ok := index[s]; ok {
			return i
		}
		i := len(pool)
		index[s] = i
		pool = append(pool, s)
		code := g.States[s.orig].Code | (s.x << nb)
		ex.States = append(ex.States, State{Code: code})
		ex.Out = append(ex.Out, nil)
		ex.In = append(ex.In, nil)
		ex.Origin = append(ex.Origin, s.orig)
		return i
	}

	initLevels := func(st int) uint64 {
		var x uint64
		for k, ss := range g.StateSigs {
			if ss.Phases[st].Level() == 1 {
				x |= 1 << k
			}
		}
		return x
	}
	compat := func(x uint64, st int) bool {
		for k, ss := range g.StateSigs {
			lvl := (x >> k) & 1
			switch ss.Phases[st] {
			case P0:
				if lvl != 0 {
					return false
				}
			case P1:
				if lvl != 1 {
					return false
				}
			}
		}
		return true
	}

	ex.Initial = push(xstate{g.Initial, initLevels(g.Initial)})
	for i := 0; i < len(pool); i++ {
		cur := pool[i]
		// State signal firings.
		for k, ss := range g.StateSigs {
			lvl := (cur.x >> k) & 1
			switch {
			case ss.Phases[cur.orig] == PUp && lvl == 0:
				j := push(xstate{cur.orig, cur.x | 1<<k})
				ex.addEdge(Edge{From: i, To: j, Sig: nb + k, Dir: stg.Rising})
			case ss.Phases[cur.orig] == PDown && lvl == 1:
				j := push(xstate{cur.orig, cur.x &^ (1 << k)})
				ex.addEdge(Edge{From: i, To: j, Sig: nb + k, Dir: stg.Falling})
			}
		}
		// Original edges, gated by successor-phase compatibility.
		for _, ei := range g.Out[cur.orig] {
			e := g.Edges[ei]
			if !compat(cur.x, e.To) {
				continue
			}
			j := push(xstate{e.To, cur.x})
			ex.addEdge(Edge{From: i, To: j, Sig: e.Sig, Dir: e.Dir})
		}
	}
	return ex, nil
}

// Table is a single-output truth table extracted from a state graph:
// minterms over the named support variables. Codes not in On or Off are
// don't-cares (unreachable or projected-away states).
type Table struct {
	Signal string
	Vars   []string
	On     []uint64
	Off    []uint64
}

// FunctionTable derives the implied-value table of non-input signal sig
// (an index into Base of an expanded, phase-free graph), projected onto
// the support signals in supportMask (bits over Base). It fails if two
// states project to the same code but imply different values — i.e. CSC
// is not satisfied over that support.
func (g *Graph) FunctionTable(sig int, supportMask uint64) (*Table, error) {
	if len(g.StateSigs) > 0 {
		return nil, fmt.Errorf("sg: FunctionTable requires an expanded graph")
	}
	return tableOver(g.Base, sig, supportMask, len(g.States),
		func(s int) uint64 { return g.States[s].Code },
		func(s int) uint8 { return g.ImpliedValue(s, sig) })
}

// tableOver is the table-extraction core shared by Graph.FunctionTable
// and Stream.FunctionTable: states are projected onto the support vars
// through codeAt, deduplicated by projected code (the first occurrence
// decides), and classified on/off by impliedAt. Both callers therefore
// produce bit-identical tables from the same state sequence.
func tableOver(base []SignalInfo, sig int, supportMask uint64, n int,
	codeAt func(s int) uint64, impliedAt func(s int) uint8) (*Table, error) {
	var vars []int
	for i := range base {
		if supportMask&(1<<i) != 0 {
			vars = append(vars, i)
		}
	}
	t := &Table{Signal: base[sig].Name}
	for _, v := range vars {
		t.Vars = append(t.Vars, base[v].Name)
	}
	seen := tableSeenPool.Get().(map[uint64]uint8) // projected code → implied value
	defer putTableSeen(seen)
	var onSet, offSet []uint64
	for s := 0; s < n; s++ {
		var code uint64
		c := codeAt(s)
		for bi, v := range vars {
			if c&(1<<v) != 0 {
				code |= 1 << bi
			}
		}
		iv := impliedAt(s)
		if prev, ok := seen[code]; ok {
			if prev != iv {
				return nil, fmt.Errorf("sg: signal %q ill-defined on support (code %b implies both 0 and 1)",
					base[sig].Name, code)
			}
			continue
		}
		seen[code] = iv
		if iv == 1 {
			onSet = append(onSet, code)
		} else {
			offSet = append(offSet, code)
		}
	}
	sort.Slice(onSet, func(i, j int) bool { return onSet[i] < onSet[j] })
	sort.Slice(offSet, func(i, j int) bool { return offSet[i] < offSet[j] })
	t.On, t.Off = onSet, offSet
	return t, nil
}
