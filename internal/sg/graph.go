package sg

import (
	"context"
	"fmt"
	"sort"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/petri"
	"asyncsyn/internal/stg"
)

// SignalInfo describes one base signal of a state graph.
type SignalInfo struct {
	Name  string
	Input bool
}

// Edge is a labelled state graph transition. Sig < 0 marks an ε (silent)
// edge; otherwise Sig indexes Graph.Base.
type Edge struct {
	From, To int
	Sig      int
	Dir      stg.Dir
}

// StateSignal is an inserted state signal: a name plus a phase per state.
type StateSignal struct {
	Name   string
	Phases []Phase // indexed by state
}

// State is one state graph node. Code holds the binary levels of the base
// signals (bit i = signal i), masked by the owning graph's Active mask.
// Marking is retained only on graphs generated directly from an STG.
type State struct {
	Code    uint64
	Marking petri.Marking
}

// Graph is a state graph: the reachable-state automaton of an STG with a
// consistent binary state assignment, possibly quotiented (modular) and
// possibly carrying inserted state signals as 4-valued phase columns.
type Graph struct {
	Name    string
	Base    []SignalInfo
	Active  uint64 // mask of base signals participating in state codes
	States  []State
	Edges   []Edge
	Out     [][]int // per-state outgoing edge indices
	In      [][]int // per-state incoming edge indices
	Initial int

	StateSigs []StateSignal

	// Origin maps each state to the state of the pre-expansion graph it
	// came from; nil unless the graph was produced by Expand.
	Origin []int
}

// MaxSignals caps the total signal count so state codes fit in a uint64.
const MaxSignals = 58

// NumBase returns the number of base signals.
func (g *Graph) NumBase() int { return len(g.Base) }

// NumStates returns the number of states.
func (g *Graph) NumStates() int { return len(g.States) }

// addEdge appends an edge and indexes it.
func (g *Graph) addEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.Out[e.From] = append(g.Out[e.From], len(g.Edges)-1)
	g.In[e.To] = append(g.In[e.To], len(g.Edges)-1)
}

// indexEdges (re)builds Out and In from Edges in two counted passes: the
// per-state lists are carved out of two backing arrays with exact sizes
// instead of growing by repeated append. Edge indices appear in each
// list in ascending order — the same order incremental addEdge calls
// produce.
func (g *Graph) indexEdges() {
	n := len(g.States)
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for _, e := range g.Edges {
		outDeg[e.From]++
		inDeg[e.To]++
	}
	if g.Out == nil {
		g.Out = make([][]int, n)
	}
	if g.In == nil {
		g.In = make([][]int, n)
	}
	outBack := make([]int, len(g.Edges))
	inBack := make([]int, len(g.Edges))
	outOff, inOff := 0, 0
	for s := 0; s < n; s++ {
		g.Out[s] = outBack[outOff : outOff : outOff+outDeg[s]]
		g.In[s] = inBack[inOff : inOff : inOff+inDeg[s]]
		outOff += outDeg[s]
		inOff += inDeg[s]
	}
	for ei, e := range g.Edges {
		g.Out[e.From] = append(g.Out[e.From], ei)
		g.In[e.To] = append(g.In[e.To], ei)
	}
}

// FullCode returns the complete binary code of state s: base signal
// levels (masked by Active) plus the levels of all state signal phases,
// packed above the base bits.
func (g *Graph) FullCode(s int) uint64 {
	code := g.States[s].Code & g.Active
	for k, ss := range g.StateSigs {
		if ss.Phases[s].Level() == 1 {
			code |= 1 << (len(g.Base) + k)
		}
	}
	return code
}

// EnabledNonInputs returns the bitmask of non-input base signals with an
// enabled transition in state s.
func (g *Graph) EnabledNonInputs(s int) uint64 {
	var m uint64
	for _, ei := range g.Out[s] {
		e := g.Edges[ei]
		if e.Sig >= 0 && !g.Base[e.Sig].Input {
			m |= 1 << e.Sig
		}
	}
	return m
}

// ImpliedValue returns the next value that non-input base signal sig must
// take from state s: 1 if sig+ is enabled, 0 if sig− is enabled, else the
// current level.
func (g *Graph) ImpliedValue(s, sig int) uint8 {
	for _, ei := range g.Out[s] {
		e := g.Edges[ei]
		if e.Sig == sig {
			if e.Dir == stg.Rising {
				return 1
			}
			return 0
		}
	}
	if g.States[s].Code&(1<<sig) != 0 {
		return 1
	}
	return 0
}

// Options controls state graph generation.
type Options struct {
	Bound     int // token bound per place; default 1 (safe nets)
	MaxStates int // exploration cap; default 100000
}

func (o Options) withDefaults() Options {
	if o.Bound == 0 {
		o.Bound = 1
	}
	if o.MaxStates == 0 {
		o.MaxStates = 100000
	}
	return o
}

// FromSTG generates the complete state graph Σ of an STG: exhaustive
// reachable markings with a consistent binary state assignment inferred
// by propagating the firing constraints of every signal transition
// (si+ requires level 0 before and 1 after, and no other edge may change
// si's level). It fails if the net is unbounded, the assignment is
// inconsistent (the STG violates consistent state coding), or a signal's
// level cannot be determined.
func FromSTG(g *stg.G, opt Options) (*Graph, error) {
	return FromSTGContext(context.Background(), g, opt)
}

// FromSTGContext is FromSTG under a cancellation context: the
// reachability exploration polls ctx and stops early (with an error
// matching synerr.ErrCanceled) when it is canceled.
func FromSTGContext(ctx context.Context, g *stg.G, opt Options) (*Graph, error) {
	opt = opt.withDefaults()
	if len(g.Signals) > MaxSignals {
		return nil, fmt.Errorf("sg: %d signals exceed the %d-signal limit", len(g.Signals), MaxSignals)
	}
	r, err := g.Net.ReachContext(ctx, opt.Bound, opt.MaxStates)
	if err != nil {
		return nil, err
	}
	metrics.From(ctx).Add(metrics.SGStates, int64(len(r.States)))

	sgr := &Graph{
		Name:    g.Name,
		Base:    make([]SignalInfo, len(g.Signals)),
		Active:  (uint64(1) << len(g.Signals)) - 1,
		States:  make([]State, len(r.States)),
		Out:     make([][]int, len(r.States)),
		In:      make([][]int, len(r.States)),
		Initial: 0,
	}
	for i, s := range g.Signals {
		sgr.Base[i] = SignalInfo{Name: s.Name, Input: s.Kind == stg.Input}
	}
	for i, m := range r.States {
		sgr.States[i] = State{Marking: m}
	}
	sgr.Edges = make([]Edge, 0, len(r.Edges))
	for _, e := range r.Edges {
		l := g.Labels[e.Trans]
		sgr.Edges = append(sgr.Edges, Edge{From: e.From, To: e.To, Sig: l.Sig, Dir: l.Dir})
	}
	sgr.indexEdges()

	vals, err := inferValues(g, sgr)
	if err != nil {
		return nil, err
	}
	for i := range sgr.States {
		var code uint64
		for s := 0; s < len(g.Signals); s++ {
			if vals[i][s] == 1 {
				code |= 1 << s
			}
		}
		sgr.States[i].Code = code
	}
	return sgr, nil
}

// inferValues computes the binary level of every signal in every state.
// Values propagate along edges: an edge for signal s fixes s's level on
// both endpoints (0→1 for rising, 1→0 for falling, complement for
// toggle); every other edge preserves s's level. Conflicts mean the STG
// has no consistent state assignment.
func inferValues(g *stg.G, sgr *Graph) ([][]int8, error) {
	n, ns := len(sgr.States), len(g.Signals)
	vals := make([][]int8, n)
	for i := range vals {
		vals[i] = make([]int8, ns)
		for j := range vals[i] {
			vals[i][j] = -1
		}
	}

	type seed struct {
		state int
		sig   int
		v     int8
	}
	var queue []seed
	set := func(st, sig int, v int8) error {
		switch vals[st][sig] {
		case -1:
			vals[st][sig] = v
			queue = append(queue, seed{st, sig, v})
		case v:
		default:
			return fmt.Errorf("sg: inconsistent state assignment for signal %q (marking state %d requires both 0 and 1)",
				g.Signals[sig].Name, st)
		}
		return nil
	}

	// Seed from every non-toggle signal edge.
	for _, e := range sgr.Edges {
		if e.Sig < 0 || e.Dir == stg.Toggle {
			continue
		}
		var before, after int8 = 0, 1
		if e.Dir == stg.Falling {
			before, after = 1, 0
		}
		if err := set(e.From, e.Sig, before); err != nil {
			return nil, err
		}
		if err := set(e.To, e.Sig, after); err != nil {
			return nil, err
		}
	}

	// Propagate: for signal s, a non-s edge preserves the level; an s
	// toggle edge complements it.
	drain := func() error {
		for len(queue) > 0 {
			sd := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			prop := func(ei int, other int) error {
				e := sgr.Edges[ei]
				v := sd.v
				if e.Sig == sd.sig {
					if e.Dir != stg.Toggle {
						return nil // endpoints already seeded
					}
					v = 1 - v
				}
				return set(other, sd.sig, v)
			}
			for _, ei := range sgr.Out[sd.state] {
				if err := prop(ei, sgr.Edges[ei].To); err != nil {
					return err
				}
			}
			for _, ei := range sgr.In[sd.state] {
				if err := prop(ei, sgr.Edges[ei].From); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := drain(); err != nil {
		return nil, err
	}

	// A signal with only toggle transitions has consistent parity but no
	// absolute level; anchor it at 0 in the initial state (the usual
	// astg convention) and re-propagate.
	for sig := range g.Signals {
		if vals[sgr.Initial][sig] == -1 {
			if err := set(sgr.Initial, sig, 0); err != nil {
				return nil, err
			}
		}
	}
	if err := drain(); err != nil {
		return nil, err
	}

	for st := range vals {
		for sig, v := range vals[st] {
			if v == -1 {
				return nil, fmt.Errorf("sg: level of signal %q undetermined in state %d (signal never switches in a reachable marking)",
					g.Signals[sig].Name, st)
			}
		}
	}
	return vals, nil
}

// SignalIndex finds a base signal by name.
// BaseSignals returns the base signal list (the core.LogicSource
// surface shared with Stream).
func (g *Graph) BaseSignals() []SignalInfo { return g.Base }

func (g *Graph) SignalIndex(name string) (int, bool) {
	for i, b := range g.Base {
		if b.Name == name {
			return i, true
		}
	}
	return -1, false
}

// AllSignalNames returns base then state signal names.
func (g *Graph) AllSignalNames() []string {
	out := make([]string, 0, len(g.Base)+len(g.StateSigs))
	for _, b := range g.Base {
		out = append(out, b.Name)
	}
	for _, s := range g.StateSigs {
		out = append(out, s.Name)
	}
	return out
}

// Clone returns a deep copy of the graph (markings are shared; they are
// never mutated).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:    g.Name,
		Base:    append([]SignalInfo(nil), g.Base...),
		Active:  g.Active,
		States:  append([]State(nil), g.States...),
		Edges:   append([]Edge(nil), g.Edges...),
		Out:     make([][]int, len(g.Out)),
		In:      make([][]int, len(g.In)),
		Initial: g.Initial,
	}
	for i := range g.Out {
		c.Out[i] = append([]int(nil), g.Out[i]...)
		c.In[i] = append([]int(nil), g.In[i]...)
	}
	for _, ss := range g.StateSigs {
		c.StateSigs = append(c.StateSigs, StateSignal{Name: ss.Name, Phases: append([]Phase(nil), ss.Phases...)})
	}
	if g.Origin != nil {
		c.Origin = append([]int(nil), g.Origin...)
	}
	return c
}

// Snapshot returns a copy-on-write view of the graph for speculative
// module solving: every structural slice (states, edges, adjacency,
// base signals) is shared with g, and StateSigs is re-sliced with its
// capacity capped at the current length, so an append on the snapshot
// always reallocates instead of writing into g's backing array. The
// snapshot is safe to extend with new state-signal columns while other
// goroutines read g, as long as nothing mutates the shared structure —
// which nothing in the module stage does (quotients build fresh graphs
// and propagation only appends StateSigs).
func (g *Graph) Snapshot() *Graph {
	out := *g
	n := len(g.StateSigs)
	out.StateSigs = g.StateSigs[:n:n]
	return &out
}

// InputEdge reports whether edge e is driven by the environment (an
// input-signal transition or a dummy event), which the circuit cannot
// delay.
func (g *Graph) InputEdge(e Edge) bool {
	return e.Sig < 0 || g.Base[e.Sig].Input
}

// CheckPhaseConsistency verifies every state signal's phases obey the
// edge phase relation (including the input-edge restriction) along every
// edge; returns the violations.
func (g *Graph) CheckPhaseConsistency() []string {
	var bad []string
	for _, ss := range g.StateSigs {
		for _, e := range g.Edges {
			if !EdgeCompatibleIO(ss.Phases[e.From], ss.Phases[e.To], g.InputEdge(e)) {
				bad = append(bad, fmt.Sprintf("%s: %s→%s on edge %d→%d",
					ss.Name, ss.Phases[e.From], ss.Phases[e.To], e.From, e.To))
			}
		}
	}
	sort.Strings(bad)
	return bad
}
