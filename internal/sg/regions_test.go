package sg

import (
	"testing"

	"asyncsyn/internal/stg"
)

func TestExcitationRegionsHandshake(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	ackIdx, _ := sgr.SignalIndex("ack")
	regions := sgr.ExcitationRegions(ackIdx)
	// One rising and one falling region, each a single state.
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	var rising, falling int
	for _, r := range regions {
		if len(r.States) != 1 {
			t.Errorf("region size %d, want 1", len(r.States))
		}
		if r.Dir == stg.Rising {
			rising++
		} else {
			falling++
		}
	}
	if rising != 1 || falling != 1 {
		t.Fatalf("rising %d falling %d", rising, falling)
	}
}

func TestExcitationRegionsTwoPulse(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	bIdx, _ := sgr.SignalIndex("b")
	regions := sgr.ExcitationRegions(bIdx)
	// b has two rising and two falling transitions, all serial: 4 regions.
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	// Regions partition: no state in two regions of the same signal.
	seen := make(map[int]bool)
	for _, r := range regions {
		for _, s := range r.States {
			if seen[s] {
				t.Fatalf("state %d in two regions", s)
			}
			seen[s] = true
		}
	}
}

func TestExcitationRegionsConcurrent(t *testing.T) {
	// Concurrent fork: x+ is enabled across the whole diamond of the
	// other branch — one region spanning several states.
	src := `
.model fork
.inputs r
.outputs x y
.graph
r+ x+ y+
x+ r-
y+ r-
r- x- y-
x- r+
y- r+
.marking { <x-,r+> <y-,r+> }
.end
`
	sgr, err := FromSTG(parse(t, src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	xIdx, _ := sgr.SignalIndex("x")
	regions := sgr.ExcitationRegions(xIdx)
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2 (one ER per transition)", len(regions))
	}
	for _, r := range regions {
		// x+ stays enabled while y+ fires: the region has 2 states.
		if len(r.States) != 2 {
			t.Errorf("concurrent region size %d, want 2", len(r.States))
		}
	}
}

func TestAllRegionStats(t *testing.T) {
	sgr, _ := FromSTG(parse(t, twoPulse), Options{})
	stats := sgr.AllRegionStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d signals", len(stats))
	}
	for _, st := range stats {
		switch st.Signal {
		case "a":
			if st.Rising != 1 || st.Falling != 1 {
				t.Errorf("a: %+v", st)
			}
		case "b":
			if st.Rising != 2 || st.Falling != 2 {
				t.Errorf("b: %+v", st)
			}
		}
		if st.MaxSize < 1 {
			t.Errorf("%s: empty regions", st.Signal)
		}
	}
}
