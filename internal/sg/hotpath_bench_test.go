package sg

import (
	"testing"
	"time"

	"asyncsyn/internal/metrics"
	"asyncsyn/internal/stg"
)

// benchExpandGraph builds the expansion benchmark input: a concurrent
// handshake graph with a synthetic state-signal column, so Expand walks
// the full xstate product construction.
func benchExpandGraph(b *testing.B) *Graph {
	b.Helper()
	spec, err := stg.Handshakes("", 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromSTG(spec, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ph := make([]Phase, len(g.States))
	for s := range ph {
		switch s % 4 {
		case 0:
			ph[s] = P0
		case 1:
			ph[s] = PUp
		case 2:
			ph[s] = P1
		default:
			ph[s] = PDown
		}
	}
	g.StateSigs = append(g.StateSigs, StateSignal{Name: "t0", Phases: ph})
	return g
}

// BenchmarkExpandStream measures the streaming wave expansion on the
// same input as BenchmarkExpand. Besides allocs/op it reports the
// sampled HeapInuse high-water mark (peak-B), which cmd/allocheck gates
// against the committed HEAP_0.json: a streaming path that quietly
// re-materializes the expanded graph shows up as a peak-heap jump here
// long before the scaling sweep would catch it.
func BenchmarkExpandStream(b *testing.B) {
	g := benchExpandGraph(b)
	b.ReportAllocs()
	watch := metrics.WatchHeap(2 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ExpandStream(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(watch.Stop()), "peak-B")
}

// BenchmarkExpand measures the state-signal expansion (the §3.5 product
// construction), the pipeline's other per-refinement-round hot path next
// to the quotient.
func BenchmarkExpand(b *testing.B) {
	g := benchExpandGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Expand(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictScan measures the whole-graph CSC conflict analysis:
// code grouping, enabled-mask columns, and the pairwise scan.
func BenchmarkConflictScan(b *testing.B) {
	spec, err := stg.Handshakes("", 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromSTG(spec, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := Analyze(g); c == nil {
			b.Fatal("nil conflicts")
		}
	}
}
