package sg

import (
	"math/bits"

	"asyncsyn/internal/par"
)

// Pair is an unordered state pair (A < B, or A == B for a merged class
// that is internally inconsistent).
type Pair struct{ A, B int }

// Conflicts is the result of CSC analysis on a state graph.
type Conflicts struct {
	// CSC lists pairs of states with equal full codes whose enabled
	// non-input signal sets differ; their codes must be separated.
	CSC []Pair
	// USC lists the remaining pairs of distinct states with equal full
	// codes (unique-state-coding violations that do not violate CSC).
	USC []Pair
	// LowerBound is the minimum number of state signals that could
	// possibly separate the conflicting states: the maximum over code
	// groups of ceil(log2(number of behaviour classes in the group)).
	LowerBound int
	// MaxGroup is the paper's Max_csc: the largest number of states
	// sharing one code.
	MaxGroup int
}

// N returns the number of CSC conflict pairs (the paper's N_csc).
func (c *Conflicts) N() int { return len(c.CSC) }

// fullCodes fills codes with the full code of every state. The serial
// path runs column-wise (one pass per state-signal column over a packed
// code array) instead of calling FullCode per state; large graphs fan
// the per-state computation out over the worker pool. Both orders
// produce identical codes.
func fullCodes(g *Graph, codes []uint64, workers int) {
	n := len(g.States)
	w := par.Workers(workers)
	if w > 1 && n >= 256 {
		chunk := (n + 4*w - 1) / (4 * w)
		nchunks := (n + chunk - 1) / chunk
		par.ForEachIndexed(nchunks, w, func(ci int) error {
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > n {
				hi = n
			}
			for s := lo; s < hi; s++ {
				codes[s] = g.FullCode(s)
			}
			return nil
		})
		return
	}
	active := g.Active
	for s := 0; s < n; s++ {
		codes[s] = g.States[s].Code & active
	}
	for k := range g.StateSigs {
		bit := uint64(1) << (len(g.Base) + k)
		for s, p := range g.StateSigs[k].Phases {
			if p.Level() == 1 {
				codes[s] |= bit
			}
		}
	}
}

// codeGroups buckets the states of g by full code. Returns parallel
// slices: keys in ascending code order, and groups[i] holding the states
// with code keys[i] in ascending state order — the same fixed order the
// old map-based bucketing produced, for any worker count.
func codeGroups(g *Graph, workers int) ([]uint64, [][]int) {
	n := len(g.States)
	if n == 0 {
		return nil, nil
	}
	sc := scratchPool.Get().(*scratch)
	codes := sc.u64sFor(n)
	fullCodes(g, codes, workers)
	keys, groups := codeGroupsOf(codes, sc)
	scratchPool.Put(sc)
	return keys, groups
}

// codeGroupsOf is the grouping core shared by the materialized path
// (codeGroups) and the streaming path (AnalyzeStream): a stable LSD
// radix sort over the packed codes (byte passes that are constant across
// all codes are skipped), with every group a slice of one shared
// permutation array, so the whole partition costs two flat allocations
// instead of a hash map. sc provides the non-escaping sort scratch.
func codeGroupsOf(codes []uint64, sc *scratch) ([]uint64, [][]int) {
	n := len(codes)
	if n == 0 {
		return nil, nil
	}
	// perm escapes (the returned groups are slices of it); tmp does not.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var orAll uint64
	andAll := ^uint64(0)
	for _, c := range codes {
		orAll |= c
		andAll &= c
	}
	diff := orAll ^ andAll
	tmp := sc.intsFor(n)
	src, dst := perm, tmp
	var counts [256]int
	for b := 0; b < 8; b++ {
		shift := uint(8 * b)
		if (diff>>shift)&0xff == 0 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range src {
			counts[(codes[s]>>shift)&0xff]++
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, s := range src {
			d := (codes[s] >> shift) & 0xff
			dst[counts[d]] = s
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &perm[0] {
		copy(perm, src)
	}

	distinct := 1
	for i := 1; i < n; i++ {
		if codes[perm[i]] != codes[perm[i-1]] {
			distinct++
		}
	}
	keys := make([]uint64, 0, distinct)
	groups := make([][]int, 0, distinct)
	for lo := 0; lo < n; {
		c := codes[perm[lo]]
		hi := lo + 1
		for hi < n && codes[perm[hi]] == c {
			hi++
		}
		keys = append(keys, c)
		groups = append(groups, perm[lo:hi:hi])
		lo = hi
	}
	return keys, groups
}

// enabledNonInputsAll computes EnabledNonInputs for every state in one
// pass over the edge list, filling buf (reused when large enough)
// instead of walking each state's Out adjacency separately.
func (g *Graph) enabledNonInputsAll(buf []uint64) []uint64 {
	n := len(g.States)
	if cap(buf) < n {
		buf = make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	for _, e := range g.Edges {
		if e.Sig >= 0 && !g.Base[e.Sig].Input {
			buf[e.From] |= 1 << e.Sig
		}
	}
	return buf
}

// Analyze performs full CSC analysis: states are grouped by full code
// (base signals under the Active mask plus state-signal levels) and
// compared by enabled non-input signal sets.
func Analyze(g *Graph) *Conflicts { return AnalyzeWorkers(g, 1) }

// AnalyzeWorkers is Analyze with the group scans fanned out over a
// bounded worker pool (workers <= 0 means GOMAXPROCS). Each code group
// is independent, so groups are scanned in parallel and their pair
// lists concatenated in ascending code order — the exact order the
// sequential scan produces, for any worker count.
func AnalyzeWorkers(g *Graph, workers int) *Conflicts {
	_, groups := codeGroups(g, workers)
	// One shared enabled-mask column, filled by a single edge pass; the
	// group closures only read it. The backing is pooled: par.Map joins
	// all workers before returning, so the buffer is quiescent when it
	// goes back to the pool.
	sc := scratchPool.Get().(*scratch)
	enabled := g.enabledNonInputsAll(sc.u64sFor(0))
	res := analyzeGroups(groups, enabled, workers)
	sc.u64s = enabled
	scratchPool.Put(sc)
	return res
}

// analyzeGroups is the CSC group scan shared by AnalyzeWorkers (graph
// states) and AnalyzeStream (streamed columns): groups partition the
// state indices by equal full code, enabled is the per-state enabled
// non-input mask. Groups are scanned in parallel and their pair lists
// concatenated in ascending code order, so the result is identical for
// any worker count.
func analyzeGroups(groups [][]int, enabled []uint64, workers int) *Conflicts {
	type groupRes struct {
		csc, usc []Pair
		classes  int
	}
	results, _ := par.Map(len(groups), workers, func(ki int) (groupRes, error) {
		states := groups[ki]
		var r groupRes
		// Distinct behaviour classes within the group: an insertion scan
		// over the (small) group beats a map allocation per group.
		for i := 0; i < len(states); i++ {
			dup := false
			for j := 0; j < i; j++ {
				if enabled[states[j]] == enabled[states[i]] {
					dup = true
					break
				}
			}
			if !dup {
				r.classes++
			}
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if enabled[states[i]] != enabled[states[j]] {
					r.csc = append(r.csc, p)
				} else {
					r.usc = append(r.usc, p)
				}
			}
		}
		return r, nil
	})

	res := &Conflicts{}
	for ki, r := range results {
		if n := len(groups[ki]); n > res.MaxGroup {
			res.MaxGroup = n
		}
		res.CSC = append(res.CSC, r.csc...)
		res.USC = append(res.USC, r.usc...)
		if lb := ceilLog2(r.classes); lb > res.LowerBound {
			res.LowerBound = lb
		}
	}
	return res
}

// OutputConflicts analyses CSC restricted to one non-input signal o: two
// states conflict when they share a full code but imply different next
// values for o. This is the per-output criterion used on modular state
// graphs: o's logic function must be well defined on the visible code.
// impliedOf gives the set of implied values for a state (a merged state
// may carry both from its members; such a state conflicts with itself).
func OutputConflicts(g *Graph, impliedOf func(state int) (has0, has1 bool)) *Conflicts {
	return OutputConflictsWorkers(g, impliedOf, 1)
}

// OutputConflictsWorkers is OutputConflicts over a bounded worker pool,
// with the same ordered-reduce guarantee as AnalyzeWorkers. impliedOf
// must be safe for concurrent calls (the probes built by Merged.ImpliedOf
// read a precomputed table and are).
func OutputConflictsWorkers(g *Graph, impliedOf func(state int) (has0, has1 bool), workers int) *Conflicts {
	_, groups := codeGroups(g, workers)

	type groupRes struct {
		csc, usc []Pair
		both     bool // group implies both values → lower bound 1
	}
	results, _ := par.Map(len(groups), workers, func(ki int) (groupRes, error) {
		states := groups[ki]
		var r groupRes
		type imp struct{ has0, has1 bool }
		imps := make([]imp, len(states))
		group0, group1 := false, false
		for i, s := range states {
			h0, h1 := impliedOf(s)
			imps[i] = imp{h0, h1}
			group0 = group0 || h0
			group1 = group1 || h1
			if h0 && h1 {
				r.csc = append(r.csc, Pair{s, s})
			}
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if (imps[i].has0 && imps[j].has1) || (imps[i].has1 && imps[j].has0) {
					r.csc = append(r.csc, p)
				} else {
					r.usc = append(r.usc, p)
				}
			}
		}
		r.both = group0 && group1
		return r, nil
	})

	res := &Conflicts{}
	for ki, r := range results {
		if n := len(groups[ki]); n > res.MaxGroup {
			res.MaxGroup = n
		}
		res.CSC = append(res.CSC, r.csc...)
		res.USC = append(res.USC, r.usc...)
		if r.both && res.LowerBound == 0 {
			res.LowerBound = 1
		}
	}
	return res
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
