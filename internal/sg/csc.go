package sg

import (
	"math/bits"
	"sort"

	"asyncsyn/internal/par"
)

// Pair is an unordered state pair (A < B, or A == B for a merged class
// that is internally inconsistent).
type Pair struct{ A, B int }

// Conflicts is the result of CSC analysis on a state graph.
type Conflicts struct {
	// CSC lists pairs of states with equal full codes whose enabled
	// non-input signal sets differ; their codes must be separated.
	CSC []Pair
	// USC lists the remaining pairs of distinct states with equal full
	// codes (unique-state-coding violations that do not violate CSC).
	USC []Pair
	// LowerBound is the minimum number of state signals that could
	// possibly separate the conflicting states: the maximum over code
	// groups of ceil(log2(number of behaviour classes in the group)).
	LowerBound int
	// MaxGroup is the paper's Max_csc: the largest number of states
	// sharing one code.
	MaxGroup int
}

// N returns the number of CSC conflict pairs (the paper's N_csc).
func (c *Conflicts) N() int { return len(c.CSC) }

// codeGroups buckets the states of g by full code. The member order of
// each group and the returned key order are fixed (ascending state,
// ascending code) regardless of the worker count: only the per-state
// FullCode computation fans out, the bucketing itself is a serial
// ordered reduce.
func codeGroups(g *Graph, workers int) ([]uint64, map[uint64][]int) {
	n := len(g.States)
	codes := make([]uint64, n)
	w := par.Workers(workers)
	if w <= 1 || n < 256 {
		for s := 0; s < n; s++ {
			codes[s] = g.FullCode(s)
		}
	} else {
		chunk := (n + 4*w - 1) / (4 * w)
		nchunks := (n + chunk - 1) / chunk
		par.ForEachIndexed(nchunks, w, func(ci int) error {
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > n {
				hi = n
			}
			for s := lo; s < hi; s++ {
				codes[s] = g.FullCode(s)
			}
			return nil
		})
	}
	groups := make(map[uint64][]int)
	for s := 0; s < n; s++ {
		groups[codes[s]] = append(groups[codes[s]], s)
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, groups
}

// Analyze performs full CSC analysis: states are grouped by full code
// (base signals under the Active mask plus state-signal levels) and
// compared by enabled non-input signal sets.
func Analyze(g *Graph) *Conflicts { return AnalyzeWorkers(g, 1) }

// AnalyzeWorkers is Analyze with the group scans fanned out over a
// bounded worker pool (workers <= 0 means GOMAXPROCS). Each code group
// is independent, so groups are scanned in parallel and their pair
// lists concatenated in ascending code order — the exact order the
// sequential scan produces, for any worker count.
func AnalyzeWorkers(g *Graph, workers int) *Conflicts {
	keys, groups := codeGroups(g, workers)

	type groupRes struct {
		csc, usc []Pair
		classes  int
	}
	results, _ := par.Map(len(keys), workers, func(ki int) (groupRes, error) {
		states := groups[keys[ki]]
		var r groupRes
		// Behaviour classes within the group.
		classOf := make([]uint64, len(states))
		classes := make(map[uint64]bool)
		for i, s := range states {
			classOf[i] = g.EnabledNonInputs(s)
			classes[classOf[i]] = true
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if classOf[i] != classOf[j] {
					r.csc = append(r.csc, p)
				} else {
					r.usc = append(r.usc, p)
				}
			}
		}
		r.classes = len(classes)
		return r, nil
	})

	res := &Conflicts{}
	for ki, r := range results {
		if n := len(groups[keys[ki]]); n > res.MaxGroup {
			res.MaxGroup = n
		}
		res.CSC = append(res.CSC, r.csc...)
		res.USC = append(res.USC, r.usc...)
		if lb := ceilLog2(r.classes); lb > res.LowerBound {
			res.LowerBound = lb
		}
	}
	return res
}

// OutputConflicts analyses CSC restricted to one non-input signal o: two
// states conflict when they share a full code but imply different next
// values for o. This is the per-output criterion used on modular state
// graphs: o's logic function must be well defined on the visible code.
// impliedOf gives the set of implied values for a state (a merged state
// may carry both from its members; such a state conflicts with itself).
func OutputConflicts(g *Graph, impliedOf func(state int) (has0, has1 bool)) *Conflicts {
	return OutputConflictsWorkers(g, impliedOf, 1)
}

// OutputConflictsWorkers is OutputConflicts over a bounded worker pool,
// with the same ordered-reduce guarantee as AnalyzeWorkers. impliedOf
// must be safe for concurrent calls (the probes built by Merged.ImpliedOf
// read a precomputed table and are).
func OutputConflictsWorkers(g *Graph, impliedOf func(state int) (has0, has1 bool), workers int) *Conflicts {
	keys, groups := codeGroups(g, workers)

	type groupRes struct {
		csc, usc []Pair
		both     bool // group implies both values → lower bound 1
	}
	results, _ := par.Map(len(keys), workers, func(ki int) (groupRes, error) {
		states := groups[keys[ki]]
		var r groupRes
		type imp struct{ has0, has1 bool }
		imps := make([]imp, len(states))
		group0, group1 := false, false
		for i, s := range states {
			h0, h1 := impliedOf(s)
			imps[i] = imp{h0, h1}
			group0 = group0 || h0
			group1 = group1 || h1
			if h0 && h1 {
				r.csc = append(r.csc, Pair{s, s})
			}
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if (imps[i].has0 && imps[j].has1) || (imps[i].has1 && imps[j].has0) {
					r.csc = append(r.csc, p)
				} else {
					r.usc = append(r.usc, p)
				}
			}
		}
		r.both = group0 && group1
		return r, nil
	})

	res := &Conflicts{}
	for ki, r := range results {
		if n := len(groups[keys[ki]]); n > res.MaxGroup {
			res.MaxGroup = n
		}
		res.CSC = append(res.CSC, r.csc...)
		res.USC = append(res.USC, r.usc...)
		if r.both && res.LowerBound == 0 {
			res.LowerBound = 1
		}
	}
	return res
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
