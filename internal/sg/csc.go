package sg

import (
	"math/bits"
	"sort"
)

// Pair is an unordered state pair (A < B, or A == B for a merged class
// that is internally inconsistent).
type Pair struct{ A, B int }

// Conflicts is the result of CSC analysis on a state graph.
type Conflicts struct {
	// CSC lists pairs of states with equal full codes whose enabled
	// non-input signal sets differ; their codes must be separated.
	CSC []Pair
	// USC lists the remaining pairs of distinct states with equal full
	// codes (unique-state-coding violations that do not violate CSC).
	USC []Pair
	// LowerBound is the minimum number of state signals that could
	// possibly separate the conflicting states: the maximum over code
	// groups of ceil(log2(number of behaviour classes in the group)).
	LowerBound int
	// MaxGroup is the paper's Max_csc: the largest number of states
	// sharing one code.
	MaxGroup int
}

// N returns the number of CSC conflict pairs (the paper's N_csc).
func (c *Conflicts) N() int { return len(c.CSC) }

// Analyze performs full CSC analysis: states are grouped by full code
// (base signals under the Active mask plus state-signal levels) and
// compared by enabled non-input signal sets.
func Analyze(g *Graph) *Conflicts {
	groups := make(map[uint64][]int)
	for s := range g.States {
		c := g.FullCode(s)
		groups[c] = append(groups[c], s)
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	res := &Conflicts{}
	for _, k := range keys {
		states := groups[k]
		if len(states) > res.MaxGroup {
			res.MaxGroup = len(states)
		}
		// Behaviour classes within the group.
		classOf := make([]uint64, len(states))
		classes := make(map[uint64]bool)
		for i, s := range states {
			classOf[i] = g.EnabledNonInputs(s)
			classes[classOf[i]] = true
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if classOf[i] != classOf[j] {
					res.CSC = append(res.CSC, p)
				} else {
					res.USC = append(res.USC, p)
				}
			}
		}
		if lb := ceilLog2(len(classes)); lb > res.LowerBound {
			res.LowerBound = lb
		}
	}
	return res
}

// OutputConflicts analyses CSC restricted to one non-input signal o: two
// states conflict when they share a full code but imply different next
// values for o. This is the per-output criterion used on modular state
// graphs: o's logic function must be well defined on the visible code.
// impliedOf gives the set of implied values for a state (a merged state
// may carry both from its members; such a state conflicts with itself).
func OutputConflicts(g *Graph, impliedOf func(state int) (has0, has1 bool)) *Conflicts {
	groups := make(map[uint64][]int)
	for s := range g.States {
		c := g.FullCode(s)
		groups[c] = append(groups[c], s)
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	res := &Conflicts{}
	for _, k := range keys {
		states := groups[k]
		if len(states) > res.MaxGroup {
			res.MaxGroup = len(states)
		}
		type imp struct{ has0, has1 bool }
		imps := make([]imp, len(states))
		group0, group1 := false, false
		for i, s := range states {
			h0, h1 := impliedOf(s)
			imps[i] = imp{h0, h1}
			group0 = group0 || h0
			group1 = group1 || h1
			if h0 && h1 {
				res.CSC = append(res.CSC, Pair{s, s})
			}
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				p := Pair{states[i], states[j]}
				if (imps[i].has0 && imps[j].has1) || (imps[i].has1 && imps[j].has0) {
					res.CSC = append(res.CSC, p)
				} else {
					res.USC = append(res.USC, p)
				}
			}
		}
		if group0 && group1 && res.LowerBound == 0 {
			res.LowerBound = 1
		}
	}
	return res
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
