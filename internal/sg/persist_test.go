package sg

import "testing"

func TestPersistencyCleanHandshake(t *testing.T) {
	sgr, _ := FromSTG(parse(t, handshake), Options{})
	if v := sgr.CheckPersistency(); len(v) != 0 {
		t.Fatalf("handshake flagged: %v", v)
	}
	if !sgr.OutputPersistent() {
		t.Fatalf("handshake not output persistent")
	}
}

func TestPersistencyInputChoiceAllowed(t *testing.T) {
	// Free choice between two inputs: firing one disables the other —
	// reported, but as an allowed input choice.
	src := `
.model ch
.inputs a b
.outputs r
.graph
r+ P
P a+ b+
a+ a-
b+ b-
a- M
b- M
M r-
r- r+
.marking { <r-,r+> }
.end
`
	sgr, err := FromSTG(parse(t, src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := sgr.CheckPersistency()
	if len(vs) == 0 {
		t.Fatalf("input choice not reported")
	}
	for _, v := range vs {
		if !v.Input {
			t.Fatalf("input choice misclassified: %v", v)
		}
		if v.String() == "" {
			t.Fatalf("empty violation text")
		}
	}
	if !sgr.OutputPersistent() {
		t.Fatalf("input choices must not break output persistency")
	}
}

func TestPersistencyOutputViolation(t *testing.T) {
	// A choice place offering both an output (x+) and an input (b+):
	// the environment firing b+ withdraws x+\'s excitation — a glitch.
	src := `
.model bad
.inputs b
.outputs a x
.graph
a+ P
P x+ b+
x+ a-
a- x-
x- M
b+ a-/2
a-/2 b-
b- M
M a+
.marking { M }
.end
`
	g := parse(t, src)
	sgr, err := FromSTG(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sgr.OutputPersistent() {
		t.Fatalf("output/input race not detected")
	}
	found := false
	for _, v := range sgr.CheckPersistency() {
		if !v.Input && v.Enabled == "x+" && v.Fired == "b+" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected x+ disabled by b+: %v", sgr.CheckPersistency())
	}
}
