package sg

import "sync"

// bitset is a packed set of state indices: one bit per state in []uint64
// columns. The synthesis hot paths (code grouping, region flooding,
// enabled-set scans) use bitsets instead of map[int]bool so membership
// tests are a shift and a mask, and whole-set operations run a word at a
// time.
type bitset []uint64

// newBitset returns a zeroed bitset able to hold n bits, reusing buf's
// storage when it is large enough.
func newBitset(buf bitset, n int) bitset {
	words := (n + 63) / 64
	if cap(buf) < words {
		return make(bitset, words)
	}
	buf = buf[:words]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// scratchPool recycles the per-call integer scratch slices of the sg hot
// paths (quotient union-find arrays, radix-sort buffers). Slices are
// re-sliced and overwritten on reuse, so a pooled buffer never leaks
// state between calls and results are identical with or without a hit.
var scratchPool = sync.Pool{
	New: func() any { return new(scratch) },
}

// scratch is one reusable bundle of hot-path buffers. Only buffers whose
// contents do not escape the call may live here; anything returned to
// the caller (group members, cover arrays) is allocated fresh.
type scratch struct {
	ints  []int
	ints2 []int
	u64s  []uint64
	bits  bitset
	bits2 bitset
	dirs  []int8
}

// intsFor returns s.ints resized to n (contents undefined).
func (s *scratch) intsFor(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	s.ints = s.ints[:n]
	return s.ints
}

// ints2For returns s.ints2 resized to n (contents undefined).
func (s *scratch) ints2For(n int) []int {
	if cap(s.ints2) < n {
		s.ints2 = make([]int, n)
	}
	s.ints2 = s.ints2[:n]
	return s.ints2
}

// u64sFor returns s.u64s resized to n (contents undefined).
func (s *scratch) u64sFor(n int) []uint64 {
	if cap(s.u64s) < n {
		s.u64s = make([]uint64, n)
	}
	s.u64s = s.u64s[:n]
	return s.u64s
}

// dirsFor returns s.dirs resized to n and filled with fill.
func (s *scratch) dirsFor(n int, fill int8) []int8 {
	if cap(s.dirs) < n {
		s.dirs = make([]int8, n)
	}
	s.dirs = s.dirs[:n]
	for i := range s.dirs {
		s.dirs[i] = fill
	}
	return s.dirs
}
