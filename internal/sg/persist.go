package sg

import (
	"fmt"
	"sort"
)

// PersistencyViolation reports a non-semi-modular transition pair: in
// state State both Enabled and Fired were enabled, but after firing
// Fired the Enabled transition was no longer enabled — its excitation
// was withdrawn without firing, which a speed-independent circuit
// realises as a glitch.
type PersistencyViolation struct {
	State   int
	Enabled string // signal edge that lost its excitation
	Fired   string // signal edge whose firing disabled it
	Input   bool   // the disabled signal is an input (an allowed choice)
}

func (v PersistencyViolation) String() string {
	kind := "output"
	if v.Input {
		kind = "input"
	}
	return fmt.Sprintf("state %d: firing %s disables %s (%s)", v.State, v.Fired, v.Enabled, kind)
}

// CheckPersistency verifies the paper's semi-modularity constraint on
// the state graph: a transition enabled in a state must remain enabled
// after any other transition fires (until it fires itself). Disabled
// INPUT transitions are reported but flagged as allowed — they are
// environment choices (free choice between inputs), not circuit
// hazards. Disabled non-input transitions make the specification
// non-speed-independent.
func (g *Graph) CheckPersistency() []PersistencyViolation {
	var out []PersistencyViolation
	edgeName := func(e Edge) string {
		if e.Sig < 0 {
			return "ε"
		}
		return g.Base[e.Sig].Name + e.Dir.String()
	}
	for s := range g.States {
		for _, ei := range g.Out[s] {
			for _, ej := range g.Out[s] {
				if ei == ej {
					continue
				}
				a, b := g.Edges[ei], g.Edges[ej]
				if a.Sig == b.Sig {
					continue // two alternative edges of one signal
				}
				// After firing b, is an edge with a's label still enabled?
				still := false
				for _, ek := range g.Out[b.To] {
					e := g.Edges[ek]
					if e.Sig == a.Sig && e.Dir == a.Dir {
						still = true
						break
					}
				}
				if !still {
					out = append(out, PersistencyViolation{
						State:   s,
						Enabled: edgeName(a),
						Fired:   edgeName(b),
						Input:   a.Sig >= 0 && g.Base[a.Sig].Input,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		if out[i].Enabled != out[j].Enabled {
			return out[i].Enabled < out[j].Enabled
		}
		return out[i].Fired < out[j].Fired
	})
	return out
}

// OutputPersistent reports whether the graph has no non-input
// persistency violations — the precondition for speed-independent
// implementability that the paper's semi-modularity constraint
// preserves when inserting state signals.
func (g *Graph) OutputPersistent() bool {
	for _, v := range g.CheckPersistency() {
		if !v.Input {
			return false
		}
	}
	return true
}
