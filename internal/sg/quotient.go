package sg

import (
	"fmt"
	"sort"
	"sync"
)

// Merged is the result of an ε-quotient: the modular state graph plus the
// cover relation back to the originating graph (the paper's §3.4
// definition: cover(M_k) is the merged state that M_k collapses into).
type Merged struct {
	Graph *Graph
	Orig  *Graph
	// Cover maps each original state index to its merged state index.
	Cover []int
	// Members lists, per merged state, the original states it covers.
	Members [][]int
}

// Quotient silences the transitions of every base signal in silencedMask
// (labelling them ε, together with any dummy edges), merges ε-connected
// states, joins state-signal phases with the Figure-3 calculus, and
// returns the modular state graph. ok is false when some ε-class has an
// inconsistent phase join (the paper's guard: a signal whose removal puts
// an Up and a Down of some state signal in one class cannot be removed).
func (g *Graph) Quotient(silencedMask uint64) (m *Merged, ok bool) {
	isEps := func(e Edge) bool {
		return e.Sig < 0 || silencedMask&(1<<e.Sig) != 0
	}

	// Union-find over ε-connected states. The parent and numbering
	// arrays are pooled: input-set determination quotients the same
	// graph dozens of times in a row, and none of this scratch escapes.
	// Above the spill threshold the arrays are plain heap allocations
	// instead — pooled scratch never shrinks, so quotienting one huge
	// graph would otherwise pin an arena of its size in the pool for the
	// life of the process.
	n := len(g.States)
	var sc *scratch
	var parent, index []int
	if n > quotientSpillStates {
		parent = make([]int, n)
		index = make([]int, n)
	} else {
		sc = scratchPool.Get().(*scratch)
		parent = sc.intsFor(n)
		index = sc.ints2For(n)
	}
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, e := range g.Edges {
		if isEps(e) {
			union(e.From, e.To)
		}
	}

	// Number merged states in order of their smallest member. Roots are
	// state indices, so a slice (-1 = unnumbered) replaces the map, and
	// the member lists are carved out of one backing array sized by a
	// counting pass instead of growing per append.
	size := make([]int, 0, n)
	cover := make([]int, n)
	for i := range index {
		index[i] = -1
	}
	for s := 0; s < n; s++ {
		r := find(s)
		mi := index[r]
		if mi < 0 {
			mi = len(size)
			index[r] = mi
			size = append(size, 0)
		}
		cover[s] = mi
		size[mi]++
	}
	members := make([][]int, len(size))
	backing := make([]int, n)
	off := 0
	for mi, sz := range size {
		members[mi] = backing[off : off : off+sz]
		off += sz
	}
	for s := 0; s < n; s++ {
		mi := cover[s]
		members[mi] = append(members[mi], s)
	}
	if sc != nil {
		scratchPool.Put(sc)
	}

	active := g.Active &^ silencedMask
	mg := &Graph{
		Name:    g.Name,
		Base:    append([]SignalInfo(nil), g.Base...),
		Active:  active,
		States:  make([]State, len(members)),
		Out:     make([][]int, len(members)),
		In:      make([][]int, len(members)),
		Initial: cover[g.Initial],
	}

	// Merged codes: members agree on all active bits because ε edges only
	// move silenced signals.
	for mi, ms := range members {
		mg.States[mi] = State{Code: g.States[ms[0]].Code & active}
	}

	// Phase joins.
	allOK := true
	for _, ss := range g.StateSigs {
		joined := make([]Phase, len(members))
		for mi, ms := range members {
			var set PhaseSet
			for _, s := range ms {
				set = set.Add(ss.Phases[s])
			}
			p, jok := JoinPhases(set)
			if !jok {
				allOK = false
			}
			joined[mi] = p
		}
		mg.StateSigs = append(mg.StateSigs, StateSignal{Name: ss.Name, Phases: joined})
	}

	// Edges: keep non-ε edges, re-pointed and deduplicated. The dedup
	// key packs (from, to, sig, dir) into a uint64 — from and to index
	// merged states (< n) and sig indexes base signals (< MaxSignals) —
	// and the set itself is pooled across calls: input-set determination
	// quotients the same graph dozens of times in a row.
	seen := edgeSeenPool.Get().(map[uint64]struct{})
	nm := uint64(len(members))
	mg.Edges = make([]Edge, 0, len(g.Edges))
	for _, e := range g.Edges {
		if isEps(e) {
			continue
		}
		ne := Edge{From: cover[e.From], To: cover[e.To], Sig: e.Sig, Dir: e.Dir}
		if ne.From == ne.To {
			// Impossible for active signals (the bit flips); defensive.
			continue
		}
		k := (uint64(ne.From)*nm+uint64(ne.To))<<7 | uint64(ne.Sig)<<1 | uint64(ne.Dir)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		mg.Edges = append(mg.Edges, ne)
	}
	putEdgeSeen(seen)
	mg.indexEdges()

	return &Merged{Graph: mg, Orig: g, Cover: cover, Members: members}, allOK
}

// quotientSpillStates is the spill threshold for the Quotient scratch
// arenas: graphs above this state count bypass scratchPool entirely so
// their arenas are released to the GC when the quotient finishes,
// keeping the pool's resident footprint bounded by typical module sizes
// rather than the largest expanded graph of the run.
const quotientSpillStates = 1 << 16

// edgeSeenPool recycles the Quotient edge-dedup sets. Sets are cleared
// before they go back to the pool (putEdgeSeen) and oversized ones are
// dropped, so a pooled set never leaks state between calls, results are
// identical with or without a pool hit, and one huge quotient cannot
// pin its bucket array in the pool.
var edgeSeenPool = sync.Pool{
	New: func() any { return make(map[uint64]struct{}, 256) },
}

func putEdgeSeen(m map[uint64]struct{}) bool {
	if len(m) > maxPooledMapEntries {
		return false
	}
	clear(m)
	edgeSeenPool.Put(m)
	return true
}

// ImpliedOf returns the per-merged-state implied-value probe for signal o
// needed by OutputConflicts: the union of the implied values of the
// covered original states.
func (m *Merged) ImpliedOf(o int) func(state int) (has0, has1 bool) {
	memo := make([][2]bool, len(m.Members))
	for mi, ms := range m.Members {
		for _, s := range ms {
			if m.Orig.ImpliedValue(s, o) == 1 {
				memo[mi][1] = true
			} else {
				memo[mi][0] = true
			}
		}
	}
	return func(state int) (bool, bool) { return memo[state][0], memo[state][1] }
}

// PropagateStateSignal copies the phases solved on the merged graph back
// to every covered state of the original graph (the paper's propagate(),
// Figure 5) and appends the signal to the original graph.
func (m *Merged) PropagateStateSignal(name string, mergedPhases []Phase) error {
	if len(mergedPhases) != len(m.Graph.States) {
		return fmt.Errorf("sg: %d phases for %d merged states", len(mergedPhases), len(m.Graph.States))
	}
	phases := make([]Phase, len(m.Orig.States))
	for s := range m.Orig.States {
		phases[s] = mergedPhases[m.Cover[s]]
	}
	m.Orig.StateSigs = append(m.Orig.StateSigs, StateSignal{Name: name, Phases: phases})
	return nil
}

// SignalNamesIn lists the base signal names selected by mask, sorted.
func (g *Graph) SignalNamesIn(mask uint64) []string {
	var out []string
	for i, b := range g.Base {
		if mask&(1<<i) != 0 {
			out = append(out, b.Name)
		}
	}
	sort.Strings(out)
	return out
}
