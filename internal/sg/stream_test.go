package sg

import (
	"errors"
	"reflect"
	"testing"
)

// TestExpandStreamMatchesMaterialized pins the streaming wave expansion
// bit-identical to the materializing path across the property corpus:
// same interning order, same codes, same enabled masks, same implied
// values, same origins — the invariant TestStreamingMatchesLegacy at
// the facade relies on.
func TestExpandStreamMatchesMaterialized(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		st, err := g.ExpandStream()
		if err != nil {
			t.Fatalf("graph %d: ExpandStream: %v", gi, err)
		}
		ex, err := g.Expand()
		if err != nil {
			t.Fatalf("graph %d: Expand: %v", gi, err)
		}
		want, err := StreamOf(ex)
		if err != nil {
			t.Fatalf("graph %d: StreamOf: %v", gi, err)
		}
		if !reflect.DeepEqual(st.Base, want.Base) || st.Active != want.Active || st.Initial != want.Initial {
			t.Fatalf("graph %d: header diverges: base %v/%v active %b/%b initial %d/%d",
				gi, st.Base, want.Base, st.Active, want.Active, st.Initial, want.Initial)
		}
		if !reflect.DeepEqual(st.Codes, want.Codes) {
			t.Fatalf("graph %d: codes diverge\n stream %v\n materialized %v", gi, st.Codes, want.Codes)
		}
		if !reflect.DeepEqual(st.Enabled, want.Enabled) {
			t.Fatalf("graph %d: enabled masks diverge\n stream %v\n materialized %v", gi, st.Enabled, want.Enabled)
		}
		if !reflect.DeepEqual(st.Implied, want.Implied) {
			t.Fatalf("graph %d: implied masks diverge\n stream %v\n materialized %v", gi, st.Implied, want.Implied)
		}
		if !reflect.DeepEqual(st.Origin, want.Origin) {
			t.Fatalf("graph %d: origins diverge\n stream %v\n materialized %v", gi, st.Origin, want.Origin)
		}
		// Per-signal implied values against the graph's per-edge rule.
		for s := 0; s < ex.NumStates(); s++ {
			for sig := range st.Base {
				if got, want := st.ImpliedValue(s, sig), ex.ImpliedValue(s, sig); got != want {
					t.Fatalf("graph %d state %d sig %d: implied %d, want %d", gi, s, sig, got, want)
				}
			}
		}
		// Function tables through both LogicSource implementations.
		for sig, b := range st.Base {
			if b.Input {
				continue
			}
			for _, mask := range []uint64{st.Active, st.Active & 0b111} {
				ft, err1 := st.FunctionTable(sig, mask)
				wt, err2 := ex.FunctionTable(sig, mask)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("graph %d sig %d mask %b: error mismatch %v / %v", gi, sig, mask, err1, err2)
				}
				if err1 == nil && !reflect.DeepEqual(ft, wt) {
					t.Fatalf("graph %d sig %d mask %b: tables diverge\n stream %+v\n materialized %+v",
						gi, sig, mask, ft, wt)
				}
			}
		}
	}
}

// TestAnalyzeStreamMatchesAnalyzeWorkers pins the streamed conflict scan
// against the materialized one at both worker counts.
func TestAnalyzeStreamMatchesAnalyzeWorkers(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		st, err := g.ExpandStream()
		if err != nil {
			t.Fatalf("graph %d: ExpandStream: %v", gi, err)
		}
		ex, err := g.Expand()
		if err != nil {
			t.Fatalf("graph %d: Expand: %v", gi, err)
		}
		for _, workers := range []int{1, 4} {
			got := AnalyzeStream(st, workers)
			want := AnalyzeWorkers(ex, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d workers %d: conflicts diverge\n stream %+v\n materialized %+v",
					gi, workers, got, want)
			}
		}
	}
}

// TestExpandWavesInvariants checks the frontier iterator's contract:
// states arrive exactly once in ascending index order, waves are
// non-decreasing, the peak frontier is the widest wave, and an emit
// error aborts the traversal and surfaces as-is.
func TestExpandWavesInvariants(t *testing.T) {
	for gi, g := range propertyGraphs(t) {
		var idx, lastWave int
		width := map[int]int{}
		waves, peak, err := g.ExpandWaves(func(ws WaveState) error {
			if ws.Index != idx {
				t.Fatalf("graph %d: index %d, want %d", gi, ws.Index, idx)
			}
			if ws.Wave < lastWave {
				t.Fatalf("graph %d state %d: wave %d after %d", gi, idx, ws.Wave, lastWave)
			}
			lastWave = ws.Wave
			width[ws.Wave]++
			idx++
			return nil
		})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if len(width) != waves {
			t.Fatalf("graph %d: emitted %d distinct waves, reported %d", gi, len(width), waves)
		}
		maxW := 0
		for _, w := range width {
			if w > maxW {
				maxW = w
			}
		}
		if maxW != peak {
			t.Fatalf("graph %d: widest wave %d, reported peak %d", gi, maxW, peak)
		}
		st, err := g.ExpandStream()
		if err != nil {
			t.Fatal(err)
		}
		if idx != st.NumStates() {
			t.Fatalf("graph %d: emitted %d states, stream has %d", gi, idx, st.NumStates())
		}

		stop := errors.New("stop")
		if _, _, err := g.ExpandWaves(func(WaveState) error { return stop }); !errors.Is(err, stop) {
			t.Fatalf("graph %d: emit error not propagated: %v", gi, err)
		}
	}
}
