// Package par is the deterministic-parallelism substrate of the
// synthesis pipeline: a bounded worker pool with ordered result
// collection, and a first-deterministic-winner race for engine
// portfolios. The design rule (DESIGN.md §3.8) is "parallel compute,
// ordered reduce": workers may interleave arbitrarily, but every merge
// happens in index order, so pipeline output is bit-for-bit identical
// for any worker count — including 1, which degrades to a plain loop.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachIndexed runs fn(i) for every i in [0,n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS; workers == 1 runs inline
// with no goroutines). Every index runs regardless of other indices'
// errors, and the error of the lowest failing index is returned — the
// same error a sequential loop collecting all errors would pick — so
// failure behaviour does not depend on scheduling.
func ForEachIndexed(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0,n) on the pool and returns the results in index
// order (the ordered reduce: out[i] is fn(i)'s value no matter which
// worker computed it or when).
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachIndexed(n, workers, func(i int) error {
		v, ferr := fn(i)
		out[i] = v
		return ferr
	})
	return out, err
}

// Spawn starts workers goroutines running worker(0..workers-1) and
// returns a function that blocks until all of them have returned.
// Unlike ForEachIndexed there is no work partitioning and no error
// plumbing: the workers coordinate through their own shared queue.
// This is the substrate of schedulers that overlap a consuming loop on
// the caller's goroutine with producing workers (the speculative
// module scheduler: workers race ahead while the caller commits in
// canonical order). Callers that can block a worker indefinitely must
// unblock them (e.g. cancel a shared context) before calling wait.
func Spawn(workers int, worker func(w int)) (wait func()) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			worker(w)
		}(w)
	}
	return wg.Wait
}

// Pool is a reusable bounded worker pool. The zero value runs
// sequentially; NewPool resolves the worker count once so callers can
// report it.
type Pool struct {
	workers int
}

// NewPool returns a pool of Workers(n) workers.
func NewPool(n int) *Pool { return &Pool{workers: Workers(n)} }

// Size returns the resolved worker count.
func (p *Pool) Size() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// ForEachIndexed runs fn(i) for i in [0,n) on the pool's workers.
func (p *Pool) ForEachIndexed(n int, fn func(i int) error) error {
	return ForEachIndexed(n, p.Size(), fn)
}

// Race runs every candidate concurrently and returns a deterministic
// winner: the lowest-indexed candidate whose result is accepted, with
// that index. Candidates are launched together, so preferring an early
// candidate costs no extra wall-clock over running it alone — later
// candidates are a concurrent fallback, consulted only when every
// earlier one is rejected (the "grace window" for the canonical engine
// is its own full runtime, never a timing cutoff). If no result is
// accepted, candidate 0's result is returned with index 0.
//
// The winner never depends on scheduling or timing, only on the
// candidates' own (deterministic) results. After a winner is chosen,
// cancel — if non-nil — is set so cooperative candidates can stop
// early; losers otherwise run to their own budget in the background,
// and their goroutines exit once they return.
func Race[T any](accept func(i int, r T) bool, cancel *atomic.Bool, candidates ...func() T) (T, int) {
	if len(candidates) == 1 {
		return candidates[0](), 0
	}
	ch := make([]chan T, len(candidates))
	for i, f := range candidates {
		ch[i] = make(chan T, 1)
		go func(i int, f func() T) { ch[i] <- f() }(i, f)
	}
	var fallback T
	for i := range candidates {
		r := <-ch[i]
		if i == 0 {
			fallback = r
		}
		if accept(i, r) {
			if cancel != nil {
				cancel.Store(true)
			}
			return r, i
		}
	}
	if cancel != nil {
		cancel.Store(true)
	}
	return fallback, 0
}
