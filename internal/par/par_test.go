package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 103
		hits := make([]atomic.Int32, n)
		if err := ForEachIndexed(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexedLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 3, 8} {
		err := ForEachIndexed(50, workers, func(i int) error {
			switch i {
			case 7:
				return errB
			case 3:
				return errA
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachIndexedRunsEveryIndexDespiteErrors(t *testing.T) {
	var ran atomic.Int32
	_ = ForEachIndexed(20, 4, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("err %d", i)
	})
	if ran.Load() != 20 {
		t.Errorf("ran %d of 20 indices", ran.Load())
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(40, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(0)
	if p.Size() != runtime.GOMAXPROCS(0) {
		t.Errorf("Size() = %d", p.Size())
	}
	var sum atomic.Int64
	if err := p.ForEachIndexed(10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d", sum.Load())
	}
	var zero *Pool
	if zero.Size() != 1 {
		t.Errorf("nil pool Size() = %d", zero.Size())
	}
}

// TestRacePrefersCanonical: even when a later candidate finishes first
// with an acceptable result, the race waits for candidate 0 and prefers
// it — the winner depends only on results, never on timing.
func TestRacePrefersCanonical(t *testing.T) {
	accept := func(i int, r int) bool { return r >= 0 }
	r, idx := Race(accept, nil,
		func() int { time.Sleep(30 * time.Millisecond); return 100 },
		func() int { return 200 },
	)
	if idx != 0 || r != 100 {
		t.Errorf("got result %d from candidate %d, want 100 from 0", r, idx)
	}
}

func TestRaceFallsBackInIndexOrder(t *testing.T) {
	accept := func(i int, r int) bool { return r >= 0 }
	r, idx := Race(accept, nil,
		func() int { return -1 },
		func() int { time.Sleep(10 * time.Millisecond); return -1 },
		func() int { return 300 },
	)
	if idx != 2 || r != 300 {
		t.Errorf("got %d from candidate %d, want 300 from 2", r, idx)
	}
}

func TestRaceNoAcceptedReturnsCanonical(t *testing.T) {
	accept := func(i int, r int) bool { return false }
	r, idx := Race(accept, nil,
		func() int { return 11 },
		func() int { return 22 },
	)
	if idx != 0 || r != 11 {
		t.Errorf("got %d from candidate %d, want canonical 11 from 0", r, idx)
	}
}

func TestRaceSetsCancel(t *testing.T) {
	var cancel atomic.Bool
	done := make(chan struct{})
	_, idx := Race(func(i int, r int) bool { return true }, &cancel,
		func() int { return 1 },
		func() int {
			// A cooperative loser polling the cancel flag.
			for !cancel.Load() {
				time.Sleep(time.Millisecond)
			}
			close(done)
			return 2
		},
	)
	if idx != 0 {
		t.Fatalf("winner %d", idx)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("loser never observed cancellation")
	}
}
