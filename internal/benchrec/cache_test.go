package benchrec

import (
	"bytes"
	"strings"
	"testing"
)

// cacheRecord is testRecord plus a populated cache sweep.
func cacheRecord() *Record {
	rec := testRecord()
	rec.Cache = []CacheRow{
		{Name: "mr0", ColdSeconds: 0.33, WarmSeconds: 0.12,
			ColdModuleSeconds: 0.21, WarmModuleSeconds: 0.01,
			Hits: 6, Misses: 0, WarmClauses: 42, DigestMatch: true},
		{Name: "vbe-ex1", ColdSeconds: 0.002, WarmSeconds: 0.001,
			ColdModuleSeconds: 0.001, WarmModuleSeconds: 0.0005,
			Hits: 1, Misses: 0, DigestMatch: true},
	}
	return rec
}

func TestCacheRowRoundTrip(t *testing.T) {
	rec := cacheRecord()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cache) != 2 {
		t.Fatalf("cache rows lost: %d", len(got.Cache))
	}
	if got.Cache[0] != rec.Cache[0] || got.Cache[1] != rec.Cache[1] {
		t.Fatalf("cache row drifted in round trip: %+v", got.Cache)
	}
}

func TestCompareCacheDigestMismatchIsHard(t *testing.T) {
	fresh := cacheRecord()
	fresh.Cache[0].DigestMatch = false
	rep := Compare(cacheRecord(), fresh, CompareOptions{})
	if !rep.Failed() {
		t.Fatal("warm-run digest divergence not reported as hard failure")
	}
	found := false
	for _, h := range rep.Hard {
		if strings.Contains(h, "cache mr0") && strings.Contains(h, "digest") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cache digest finding: %v", rep.Hard)
	}
}

func TestCompareCacheHitDriftIsSoft(t *testing.T) {
	fresh := cacheRecord()
	fresh.Cache[0].Hits = 5
	rep := Compare(cacheRecord(), fresh, CompareOptions{})
	if rep.Failed() {
		t.Fatalf("hit-count movement reported as hard drift: %v", rep.Hard)
	}
	found := false
	for _, s := range rep.Soft {
		if strings.Contains(s, "cache mr0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hit-count movement not surfaced as soft finding: %v", rep.Soft)
	}
}

func TestAggregateSectionRendersCache(t *testing.T) {
	body := AggregateSection(cacheRecord())
	for _, want := range []string{"solve cache", "2 benchmarks", "hits/misses 7/0", "bit-identical: true"} {
		if !strings.Contains(body, want) {
			t.Errorf("aggregate section missing %q:\n%s", want, body)
		}
	}
	// A record with no sweep must not mention the cache at all.
	if strings.Contains(AggregateSection(testRecord()), "solve cache") {
		t.Error("cache block rendered for a record without a sweep")
	}
}
