package benchrec

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"asyncsyn/internal/bench"
)

// The generated sections of EXPERIMENTS.md are delimited by marker
// comments; RenderDoc replaces everything between each pair. Text
// outside the markers is never touched, so the surrounding prose stays
// hand-written.
const (
	beginMarker = "<!-- BEGIN GENERATED: %s (do not hand-edit; regenerate with go run ./cmd/bench -render) -->"
	endMarker   = "<!-- END GENERATED: %s -->"
)

// RenderDoc returns doc with every generated section the record covers
// (table1 and aggregate from Rows, clauses from Clauses, scaling from
// Scaling) replaced by content rendered from rec. Rendering is a pure
// function of the record: the same record always produces byte-equal
// output. A section whose markers are missing from doc is an error; a
// section the record has no data for is left untouched.
func RenderDoc(doc []byte, rec *Record) ([]byte, error) {
	sections := map[string]string{
		"table1":    Table1Section(rec),
		"aggregate": AggregateSection(rec),
	}
	if len(rec.Clauses) > 0 {
		sections["clauses"] = ClausesSection(rec)
	}
	if len(rec.Scaling) > 0 {
		sections["scaling"] = ScalingSection(rec)
	}
	for _, name := range []string{"table1", "aggregate", "clauses", "scaling"} {
		body, ok := sections[name]
		if !ok {
			continue
		}
		var err error
		doc, err = replaceSection(doc, name, body)
		if err != nil {
			return nil, err
		}
	}
	return doc, nil
}

func replaceSection(doc []byte, name, body string) ([]byte, error) {
	begin := []byte(fmt.Sprintf(beginMarker, name))
	end := []byte(fmt.Sprintf(endMarker, name))
	i := bytes.Index(doc, begin)
	if i < 0 {
		return nil, fmt.Errorf("benchrec: document has no %q begin marker", name)
	}
	j := bytes.Index(doc, end)
	if j < 0 || j < i {
		return nil, fmt.Errorf("benchrec: document has no %q end marker after the begin marker", name)
	}
	var out bytes.Buffer
	out.Write(doc[:i+len(begin)])
	out.WriteString("\n")
	out.WriteString(body)
	out.Write(doc[j:])
	return out.Bytes(), nil
}

// Table1Section renders the measured-vs-paper Table 1 markdown table.
func Table1Section(rec *Record) string {
	var b strings.Builder
	b.WriteString("| STG | init st/sig | modular (ours) | direct (Vanbekbergen) | Lavagno-style | paper: modular | paper: direct | paper: Lavagno |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, row := range rec.Rows {
		e, _ := bench.Find(row.Name)
		fmt.Fprintf(&b, "| %s | %d/%d | %s | %s | %s | %s | %s | %s |\n",
			row.Name, row.InitialStates, row.InitialSignals,
			methodCell(row.Modular), methodCell(row.Direct), methodCell(row.Lavagno),
			paperOursCell(e.Ours), paperDirectCell(e.Vanbekbergen), paperLavagnoCell(e.Lavagno))
	}
	return b.String()
}

// methodCell renders one measured run as states/signals/area/cpu.
func methodCell(m MethodResult) string {
	switch {
	case m.Error != "":
		return "err"
	case m.Aborted:
		return fmt.Sprintf("**abort** (%.2f)", m.Seconds)
	default:
		return fmt.Sprintf("%d/%d/%d/%.2f", m.States, m.Signals, m.Area, m.Seconds)
	}
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func paperOursCell(p bench.Paper) string {
	return fmt.Sprintf("%d/%d/%d/%s", p.States, p.Signals, p.Area, fmtG(p.CPU))
}

func paperDirectCell(p bench.Paper) string {
	if p.Note != "" {
		return paperNoteCell(p)
	}
	return fmt.Sprintf("%d/%d/%d/%s", p.States, p.Signals, p.Area, fmtG(p.CPU))
}

func paperLavagnoCell(p bench.Paper) string {
	if p.Note != "" {
		return paperNoteCell(p)
	}
	return fmt.Sprintf("%d sig/%d/%s", p.Signals, p.Area, fmtG(p.CPU))
}

func paperNoteCell(p bench.Paper) string {
	switch {
	case strings.Contains(p.Note, "backtrack"):
		if p.CPU > 0 {
			return fmt.Sprintf("**abort** (%s)", fmtG(p.CPU))
		}
		return "**abort**"
	case strings.Contains(p.Note, "non-free-choice"):
		return "non-free-choice"
	default:
		return "internal error"
	}
}

// AggregateSection renders the aggregate area/time comparison (the
// paper's "12% / 9%" claims) computed over the record's completed rows.
func AggregateSection(rec *Record) string {
	var areaMD, areaD, areaML, areaL int
	var cpuMD, cpuD, cpuML, cpuL float64
	var nD, nL int
	for _, row := range rec.Rows {
		m := row.Modular
		if !m.Completed() {
			continue
		}
		if d := row.Direct; d.Completed() {
			areaMD += m.Area
			areaD += d.Area
			cpuMD += m.Seconds
			cpuD += d.Seconds
			nD++
		}
		if l := row.Lavagno; l.Completed() {
			areaML += m.Area
			areaL += l.Area
			cpuML += m.Seconds
			cpuL += l.Seconds
			nL++
		}
	}
	var b strings.Builder
	b.WriteString("```\n")
	fmt.Fprintf(&b, "benchmarks where both modular and direct complete: %d\n", nD)
	if areaD > 0 && cpuMD > 0 {
		fmt.Fprintf(&b, "  area  modular %d vs direct %d  (%.1f%% reduction; paper reports 12%%)\n",
			areaMD, areaD, 100*(1-float64(areaMD)/float64(areaD)))
		fmt.Fprintf(&b, "  cpu   modular %.2fs vs direct %.2fs (%.1fx)\n", cpuMD, cpuD, cpuD/cpuMD)
	}
	fmt.Fprintf(&b, "benchmarks where both modular and lavagno-style complete: %d\n", nL)
	if areaL > 0 && cpuML > 0 {
		fmt.Fprintf(&b, "  area  modular %d vs lavagno %d  (%.1f%% reduction; paper reports 9%%)\n",
			areaML, areaL, 100*(1-float64(areaML)/float64(areaL)))
		fmt.Fprintf(&b, "  cpu   modular %.2fs vs lavagno %.2fs (%.1fx)\n", cpuML, cpuL, cpuL/cpuML)
	}
	if len(rec.Cache) > 0 {
		var cold, warm, coldMod, warmMod float64
		var hits, misses int64
		match := true
		for _, cr := range rec.Cache {
			cold += cr.ColdSeconds
			warm += cr.WarmSeconds
			coldMod += cr.ColdModuleSeconds
			warmMod += cr.WarmModuleSeconds
			hits += cr.Hits
			misses += cr.Misses
			match = match && cr.DigestMatch
		}
		fmt.Fprintf(&b, "solve cache (same suite re-run against a warm cache, %d benchmarks):\n", len(rec.Cache))
		fmt.Fprintf(&b, "  module-solve stage %.3fs cold vs %.3fs warm", coldMod, warmMod)
		if warmMod > 0 {
			fmt.Fprintf(&b, " (%.1fx)", coldMod/warmMod)
		}
		fmt.Fprintf(&b, "; whole run %.2fs vs %.2fs\n", cold, warm)
		fmt.Fprintf(&b, "  warm-run hits/misses %d/%d; digests bit-identical: %v\n", hits, misses, match)
	}
	b.WriteString("```\n")
	return b.String()
}

// ClausesSection renders the formula-size table (paper-style expanded
// CNF: the direct method's one large formula vs the modular formulas).
func ClausesSection(rec *Record) string {
	var b strings.Builder
	b.WriteString("| STG | direct formula | modular formulas (clauses/vars) |\n")
	b.WriteString("|---|---|---|\n")
	for _, cl := range rec.Clauses {
		mods := make([]string, len(cl.Modular))
		for i, f := range cl.Modular {
			mods[i] = fmt.Sprintf("%s/%s", commas(f.Clauses), commas(f.Vars))
		}
		fmt.Fprintf(&b, "| %s | **%s cls / %s vars** | %s |\n",
			cl.Name, commas(cl.DirectClauses), commas(cl.DirectVars), strings.Join(mods, " · "))
	}
	return b.String()
}

// ScalingSection renders the parametric handshake sweep. The spec
// columns are the schema-5 speculative re-run of the modular method
// (module-stage time sequential vs speculative at Workers=4); records
// without ModularSpec cells render dashes there.
func ScalingSection(rec *Record) string {
	var b strings.Builder
	b.WriteString("```\n")
	fmt.Fprintf(&b, "%3s %8s | %11s %9s %8s %9s | %9s %9s | %11s %8s | %11s\n",
		"k", "states", "modular-cpu", "mod-stage", "mod-area", "mod-peak",
		"spec-cpu", "spec-stage", "direct-cpu", "dir-area", "lavagno-cpu")
	for _, s := range rec.Scaling {
		mc, ma := scalCell(s.Modular)
		dc, da := scalCell(s.Direct)
		lc, _ := scalCell(s.Lavagno)
		sc, ss := "-", "-"
		if s.ModularSpec != nil {
			sc, _ = scalCell(*s.ModularSpec)
			ss = stageCell(*s.ModularSpec)
		}
		fmt.Fprintf(&b, "%3d %8d | %11s %9s %8s %9s | %9s %9s | %11s %8s | %11s\n",
			s.K, s.States, mc, stageCell(s.Modular), ma, peakCell(s.Modular),
			sc, ss, dc, da, lc)
	}
	b.WriteString("```\n")
	return b.String()
}

// stageCell renders a cell's module-stage time; pre-schema-5 records
// and aborted cells carry zero and render as a dash.
func stageCell(c ScalCell) string {
	if c.ModuleSeconds == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fs", c.ModuleSeconds)
}

func scalCell(c ScalCell) (cpu, area string) {
	if c.Aborted {
		return "abort", "-"
	}
	return fmt.Sprintf("%.2fs", c.Seconds), fmt.Sprint(c.Area)
}

// peakCell renders a sampled peak heap in MiB; pre-schema-4 records and
// unmeasured cells carry zero and render as a dash.
func peakCell(c ScalCell) string {
	if c.PeakHeapBytes == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fMiB", float64(c.PeakHeapBytes)/(1<<20))
}

// commas formats n with thousands separators.
func commas(n int) string {
	s := strconv.Itoa(n)
	if n < 0 {
		return "-" + commas(-n)
	}
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
