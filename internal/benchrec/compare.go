package benchrec

import "fmt"

// CompareOptions tunes the regression thresholds.
type CompareOptions struct {
	// TimeRatio is the soft-warn threshold for CPU-time regressions:
	// new > old×TimeRatio warns (default 1.25, the ">25% regression"
	// gate). Rows faster than TimeFloor in the baseline are exempt —
	// sub-threshold timings are dominated by scheduler noise.
	TimeRatio float64
	// TimeFloor is the minimum baseline seconds for a time comparison
	// (default 0.05).
	TimeFloor float64
	// HeapRatio is the soft-warn threshold for peak-heap regressions:
	// new > old×HeapRatio warns (default 1.25). Peak heap is sampled and
	// machine-dependent, so it never gates hard — but a large jump is
	// the first symptom of a streaming path quietly re-materializing.
	HeapRatio float64
	// HeapFloor is the minimum baseline peak (bytes) for a heap
	// comparison (default 32 MiB); smaller peaks are dominated by the
	// runtime's own footprint and GC timing.
	HeapFloor uint64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.TimeRatio == 0 {
		o.TimeRatio = 1.25
	}
	if o.TimeFloor == 0 {
		o.TimeFloor = 0.05
	}
	if o.HeapRatio == 0 {
		o.HeapRatio = 1.25
	}
	if o.HeapFloor == 0 {
		o.HeapFloor = 32 << 20
	}
	return o
}

// Report is the outcome of comparing two records. Hard findings are
// behaviour drift — areas, state counts, signals, abort status, digests
// — and fail the comparison; Soft findings are advisory (time
// regressions, counter drift, environment differences).
type Report struct {
	Hard []string
	Soft []string
	// Compared counts the benchmark×method pairs checked.
	Compared int
}

// Failed reports whether the comparison found behaviour drift.
func (r *Report) Failed() bool { return len(r.Hard) > 0 }

// Compare diffs a fresh record (new) against a baseline (old). Rows are
// matched by name; rows present in only one record are skipped (a
// -quick run legitimately covers a subset of the committed baseline).
// Deterministic outputs (states, signals, areas, aborts, digests) must
// match exactly; timings are compared with the soft thresholds of opt.
func Compare(old, new *Record, opt CompareOptions) *Report {
	opt = opt.withDefaults()
	rep := &Report{}
	if old.Schema != new.Schema {
		rep.Hard = append(rep.Hard, fmt.Sprintf("schema: baseline %d vs fresh %d", old.Schema, new.Schema))
		return rep
	}
	if old.Env.GoVersion != new.Env.GoVersion {
		rep.Soft = append(rep.Soft, fmt.Sprintf("env: go version %s vs %s", old.Env.GoVersion, new.Env.GoVersion))
	}
	if old.Env.MaxBacktracks != new.Env.MaxBacktracks {
		rep.Hard = append(rep.Hard, fmt.Sprintf("env: backtrack budget %d vs %d (records are not comparable)",
			old.Env.MaxBacktracks, new.Env.MaxBacktracks))
	}

	for _, nrow := range new.Rows {
		orow, ok := old.Row(nrow.Name)
		if !ok {
			continue
		}
		if orow.InitialStates != nrow.InitialStates || orow.InitialSignals != nrow.InitialSignals {
			rep.Hard = append(rep.Hard, fmt.Sprintf("%s: initial graph %d/%d vs %d/%d",
				nrow.Name, orow.InitialStates, orow.InitialSignals, nrow.InitialStates, nrow.InitialSignals))
		}
		compareMethod(rep, opt, nrow.Name+"/modular", orow.Modular, nrow.Modular)
		compareMethod(rep, opt, nrow.Name+"/direct", orow.Direct, nrow.Direct)
		compareMethod(rep, opt, nrow.Name+"/lavagno", orow.Lavagno, nrow.Lavagno)
	}

	for _, ncl := range new.Clauses {
		for _, ocl := range old.Clauses {
			if ocl.Name != ncl.Name {
				continue
			}
			if ocl.DirectClauses != ncl.DirectClauses || ocl.DirectVars != ncl.DirectVars ||
				!equalFormulas(ocl.Modular, ncl.Modular) {
				rep.Hard = append(rep.Hard, fmt.Sprintf("clauses %s: formula sizes drifted", ncl.Name))
			}
		}
	}

	// Cache sweep: a warm run that fails to reproduce its cold run's
	// digest is behaviour drift in the fresh record itself; hit/miss
	// movement between records is advisory (the cacheable-problem set
	// legitimately moves with the algorithm).
	for _, ncr := range new.Cache {
		if !ncr.DigestMatch {
			rep.Hard = append(rep.Hard, fmt.Sprintf("cache %s: warm run digest diverged from cold run", ncr.Name))
		}
		for _, ocr := range old.Cache {
			if ocr.Name != ncr.Name {
				continue
			}
			if ocr.Hits != ncr.Hits || ocr.Misses != ncr.Misses {
				rep.Soft = append(rep.Soft, fmt.Sprintf("cache %s: hits/misses %d/%d vs %d/%d",
					ncr.Name, ocr.Hits, ocr.Misses, ncr.Hits, ncr.Misses))
			}
		}
	}

	for _, nsc := range new.Scaling {
		for _, osc := range old.Scaling {
			if osc.K != nsc.K {
				continue
			}
			if osc.States != nsc.States {
				rep.Hard = append(rep.Hard, fmt.Sprintf("scaling k=%d: states %d vs %d", nsc.K, osc.States, nsc.States))
			}
			compareScalCell(rep, opt, fmt.Sprintf("scaling k=%d/modular", nsc.K), osc.Modular, nsc.Modular)
			compareScalCell(rep, opt, fmt.Sprintf("scaling k=%d/direct", nsc.K), osc.Direct, nsc.Direct)
			compareScalCell(rep, opt, fmt.Sprintf("scaling k=%d/lavagno", nsc.K), osc.Lavagno, nsc.Lavagno)
		}
	}
	return rep
}

func compareMethod(rep *Report, opt CompareOptions, label string, old, new MethodResult) {
	rep.Compared++
	if old.Aborted != new.Aborted {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: aborted %v vs %v", label, old.Aborted, new.Aborted))
		return
	}
	if old.Error != new.Error {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: error %q vs %q", label, old.Error, new.Error))
		return
	}
	if !new.Completed() {
		compareTime(rep, opt, label, old.Seconds, new.Seconds)
		return
	}
	if old.Area != new.Area {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: area %d vs %d", label, old.Area, new.Area))
	}
	if old.States != new.States {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: final states %d vs %d", label, old.States, new.States))
	}
	if old.Signals != new.Signals || old.StateSignals != new.StateSignals {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: signals %d(+%d) vs %d(+%d)",
			label, old.Signals, old.StateSignals, new.Signals, new.StateSignals))
	}
	if old.Digest != "" && new.Digest != "" && old.Digest != new.Digest {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: digest %s vs %s (covers changed)", label, old.Digest, new.Digest))
	}
	compareCounters(rep, label, old.Counters, new.Counters)
	compareTime(rep, opt, label, old.Seconds, new.Seconds)
	comparePeakHeap(rep, opt, label, old.PeakHeapBytes, new.PeakHeapBytes)
}

// compareCounters reports drift in the deterministic counters as soft
// findings: counter totals are bit-stable for a given code version and
// engine, but a legitimate algorithm change moves them, so they inform
// rather than gate.
func compareCounters(rep *Report, label string, old, new map[string]int64) {
	if old == nil || new == nil {
		return
	}
	for _, k := range []string{"sg_states", "sat_clauses", "modules"} {
		if o, n := old[k], new[k]; o != n {
			rep.Soft = append(rep.Soft, fmt.Sprintf("%s: counter %s %d vs %d", label, k, o, n))
		}
	}
}

func compareScalCell(rep *Report, opt CompareOptions, label string, old, new ScalCell) {
	rep.Compared++
	if old.Aborted != new.Aborted {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: aborted %v vs %v", label, old.Aborted, new.Aborted))
		return
	}
	if !new.Aborted && old.Area != new.Area {
		rep.Hard = append(rep.Hard, fmt.Sprintf("%s: area %d vs %d", label, old.Area, new.Area))
	}
	compareTime(rep, opt, label, old.Seconds, new.Seconds)
	comparePeakHeap(rep, opt, label, old.PeakHeapBytes, new.PeakHeapBytes)
}

func compareTime(rep *Report, opt CompareOptions, label string, old, new float64) {
	if old < opt.TimeFloor {
		return
	}
	if new > old*opt.TimeRatio {
		rep.Soft = append(rep.Soft, fmt.Sprintf("%s: time %.2fs vs %.2fs (>%.0f%% regression)",
			label, old, new, (opt.TimeRatio-1)*100))
	}
}

// comparePeakHeap soft-warns on peak-heap regressions beyond the heap
// ratio. Records from before schema 4 (or rows measured without the
// watcher) carry zero peaks and are skipped.
func comparePeakHeap(rep *Report, opt CompareOptions, label string, old, new uint64) {
	if old < opt.HeapFloor || new == 0 {
		return
	}
	if float64(new) > float64(old)*opt.HeapRatio {
		rep.Soft = append(rep.Soft, fmt.Sprintf("%s: peak heap %.1f MiB vs %.1f MiB (>%.0f%% regression)",
			label, float64(old)/(1<<20), float64(new)/(1<<20), (opt.HeapRatio-1)*100))
	}
}

func equalFormulas(a, b []ClauseFormula) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
