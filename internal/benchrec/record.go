// Package benchrec defines the machine-readable benchmark record that
// cmd/bench emits (BENCH_<n>.json): a versioned, schema-stable snapshot
// of the full Table-1 suite across all three synthesis methods, the
// formula-size sweep, and the scaling sweep, each row carrying areas,
// state counts, timings, metrics counters and a determinism digest. The
// package also provides the regression comparator (Compare: hard fail
// on area/state/digest drift, soft warn on time regression) and the
// markdown renderer that regenerates the generated sections of
// EXPERIMENTS.md from a committed record, keeping the experiment
// documentation provably in sync with the code.
package benchrec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion identifies the record layout. Any breaking change to
// the JSON field set, the counter names, or the digest recipe must bump
// it; Compare refuses records with mismatched versions.
//
// Version 2: added the cache-effectiveness sweep (Record.Cache), the
// modcache_* / sat_warm_clauses counters, and the warm-start DPLL
// seeding that moves SAT models (digests) relative to version 1.
//
// Version 3: added per-method allocation totals (MethodResult.AllocBytes
// / Allocs — machine-facing, never compared), the sat_assumptions
// counter, and the bitset/incremental-SAT hot paths, which move timings
// and allocation profiles but leave digests and deterministic counters
// unchanged relative to version 2.
//
// Version 4: added per-row peak heap (MethodResult.PeakHeapBytes and
// ScalCell.PeakHeapBytes — a sampled HeapInuse high-water mark,
// soft-warned on >25% regression, never hard-gated) and the
// sg_states_streamed / sg_peak_frontier counters of the streaming
// expansion spine. Digests and deterministic counters are unchanged
// relative to version 3 (the streaming and materializing paths are
// pinned bit-identical); memory profiles move.
//
// Version 5: added the speculative partition-parallel module scheduler's
// scaling cells — ScalCell.ModuleSeconds (module-stage time, the part
// speculation parallelizes) and ScalingRow.ModularSpec (the modular
// method re-run at Workers=4 with speculation on) — plus
// Env.NoSpeculation for ablation records and the modspec_* counters in
// the raw collector. Digests and the deterministic counters in
// MethodResult.Counters are unchanged relative to version 4 (the
// speculative scheduler is pinned bit-identical to the sequential loop,
// and scheduling-dependent modspec counters are filtered out of
// Circuit.Counters); timings move.
const SchemaVersion = 5

// Env describes the machine and configuration that produced a record.
type Env struct {
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Commit        string `json:"commit,omitempty"`
	Workers       int    `json:"workers"`
	MaxBacktracks int64  `json:"max_backtracks"`
	Quick         bool   `json:"quick,omitempty"`
	// NoSpeculation marks an ablation record: the speculative
	// partition-parallel module scheduler was disabled for every run.
	NoSpeculation bool `json:"no_speculation,omitempty"`
}

// StageTiming records one pipeline stage of a run.
type StageTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// ModuleStat records one per-output modular pass.
type ModuleStat struct {
	Output    string `json:"output"`
	States    int    `json:"states"`            // merged modular graph states
	Conflicts int    `json:"conflicts"`         // CSC conflict pairs
	Clauses   int    `json:"clauses,omitempty"` // largest formula of the pass
	Vars      int    `json:"vars,omitempty"`
}

// MethodResult is one benchmark × method measurement.
type MethodResult struct {
	States       int     `json:"states,omitempty"`
	Signals      int     `json:"signals,omitempty"`
	StateSignals int     `json:"state_signals,omitempty"`
	Area         int     `json:"area,omitempty"`
	Aborted      bool    `json:"aborted,omitempty"`
	Error        string  `json:"error,omitempty"`
	Seconds      float64 `json:"seconds"`
	// Digest is a short hash of every machine-independent output of the
	// run (states, signals, areas, function covers). Two runs of the
	// same code on any machine and any worker count produce the same
	// digest; a digest drift is a behaviour change.
	Digest   string           `json:"digest,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Stages   []StageTiming    `json:"stages,omitempty"`
	Modules  []ModuleStat     `json:"modules,omitempty"`
	// AllocBytes and Allocs are the run's heap-allocation deltas
	// (runtime.MemStats TotalAlloc / Mallocs). Like Seconds they describe
	// the machine and build, not the algorithm's outputs, so Compare
	// never gates on them; they exist so future records can separate
	// machine drift from code drift. When benchmark rows run
	// concurrently (bench -workers ≠ 1) the per-row numbers include the
	// other rows' allocations; whole-record totals remain meaningful.
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	Allocs     uint64 `json:"allocs,omitempty"`
	// PeakHeapBytes is the run's sampled HeapInuse high-water mark
	// (metrics.WatchHeap). Machine- and build-facing like AllocBytes, but
	// unlike it, Compare soft-warns when it regresses beyond the heap
	// ratio — a peak-heap jump is how a streaming path silently falling
	// back to materialization would first show up. Concurrent rows
	// (bench -workers ≠ 1) share one heap, so per-row peaks include the
	// other rows' footprints.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// Completed reports whether the run finished with a full circuit.
func (m MethodResult) Completed() bool { return m.Error == "" && !m.Aborted }

// Row is one Table-1 benchmark across the three methods.
type Row struct {
	Name           string       `json:"name"`
	InitialStates  int          `json:"initial_states"`
	InitialSignals int          `json:"initial_signals"`
	Modular        MethodResult `json:"modular"`
	Direct         MethodResult `json:"direct"`
	Lavagno        MethodResult `json:"lavagno"`
}

// ClauseFormula is one modular formula of the clause-size sweep.
type ClauseFormula struct {
	Clauses int `json:"clauses"`
	Vars    int `json:"vars"`
}

// ClauseRow records the formula-size comparison (paper-style expanded
// CNF) for one benchmark: the direct method's largest formula against
// the modular method's per-module formulas.
type ClauseRow struct {
	Name          string          `json:"name"`
	DirectClauses int             `json:"direct_clauses"`
	DirectVars    int             `json:"direct_vars"`
	Modular       []ClauseFormula `json:"modular"`
}

// ScalCell is one method's outcome at one scaling point.
type ScalCell struct {
	Seconds float64 `json:"seconds"`
	Area    int     `json:"area,omitempty"`
	Aborted bool    `json:"aborted,omitempty"`
	// PeakHeapBytes is the sampled HeapInuse high-water mark of this
	// point's run (see MethodResult.PeakHeapBytes); the scaling sweep is
	// where the frontier-bounded streaming expansion shows up.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
	// ModuleSeconds isolates the modules pipeline stage — the part the
	// speculative scheduler parallelizes; the expansion and quotient
	// stages are outside its reach. Zero in pre-schema-5 records and in
	// aborted cells.
	ModuleSeconds float64 `json:"module_seconds,omitempty"`
}

// ScalingRow is one point of the parametric handshake sweep.
type ScalingRow struct {
	K       int      `json:"k"`
	States  int      `json:"states"`
	Modular ScalCell `json:"modular"`
	Direct  ScalCell `json:"direct"`
	Lavagno ScalCell `json:"lavagno"`
	// ModularSpec is the modular method re-run with the speculative
	// partition-parallel module scheduler engaged (Workers=4). Its digest
	// equivalence with the sequential cell is enforced by the test suite;
	// the record keeps only the timings. Nil in pre-schema-5 records.
	ModularSpec *ScalCell `json:"modular_spec,omitempty"`
}

// CacheRow records the cache-effectiveness measurement for one
// benchmark: the same modular synthesis run twice against one shared
// solve cache — cold (empty cache) and warm (fully populated).
type CacheRow struct {
	Name string `json:"name"`
	// ColdSeconds and WarmSeconds are the whole-run wall-clock times.
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// ColdModuleSeconds and WarmModuleSeconds isolate the modules
	// pipeline stage, where the cached solves live.
	ColdModuleSeconds float64 `json:"cold_module_seconds"`
	WarmModuleSeconds float64 `json:"warm_module_seconds"`
	// Hits and Misses are the warm run's cache counters.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// WarmClauses is the cold run's sat_warm_clauses counter: learned
	// clauses re-seeded along its widening chains.
	WarmClauses int64 `json:"warm_clauses,omitempty"`
	// DigestMatch asserts the warm run reproduced the cold run's
	// determinism digest bit for bit.
	DigestMatch bool `json:"digest_match"`
}

// Record is one complete benchmark run.
type Record struct {
	Schema  int          `json:"schema"`
	Env     Env          `json:"env"`
	Rows    []Row        `json:"rows"`
	Clauses []ClauseRow  `json:"clauses,omitempty"`
	Scaling []ScalingRow `json:"scaling,omitempty"`
	Cache   []CacheRow   `json:"cache,omitempty"`
}

// Validate checks schema version and structural sanity.
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("benchrec: schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("benchrec: record has no rows")
	}
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		if row.Name == "" {
			return fmt.Errorf("benchrec: row with empty name")
		}
		if seen[row.Name] {
			return fmt.Errorf("benchrec: duplicate row %q", row.Name)
		}
		seen[row.Name] = true
	}
	return nil
}

// Row returns the named row.
func (r *Record) Row(name string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return Row{}, false
}

// Encode writes the record as stable, indented JSON. Map keys are
// sorted by encoding/json, so equal records produce byte-equal output.
func (r *Record) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the record to path.
func (r *Record) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a record.
func Read(rd io.Reader) (*Record, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Record
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchrec: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads and validates a record from path.
func ReadFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Digest hashes the machine-independent outputs of a run into a short
// hex string: the circuit shape (states/signals/areas) plus every
// function equation, sorted for order independence. parts is the
// caller-assembled list; sorting and hashing here keeps the recipe in
// one place.
func Digest(parts []string) string {
	sorted := append([]string(nil), parts...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, p := range sorted {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
