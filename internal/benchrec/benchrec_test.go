package benchrec

import (
	"bytes"
	"strings"
	"testing"
)

// testRecord builds a small but fully populated record.
func testRecord() *Record {
	return &Record{
		Schema: SchemaVersion,
		Env: Env{
			GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 4, GOMAXPROCS: 4, Workers: 0, MaxBacktracks: 300000,
		},
		Rows: []Row{
			{
				Name: "mr0", InitialStates: 302, InitialSignals: 11,
				Modular: MethodResult{
					States: 667, Signals: 17, StateSignals: 6, Area: 186,
					Seconds: 0.33, Digest: "abc123def456",
					Counters: map[string]int64{"sg_states": 969, "sat_clauses": 4200, "modules": 6},
					Stages:   []StageTiming{{Name: "elaborate", Seconds: 0.01}, {Name: "logic", Seconds: 0.2}},
					Modules:  []ModuleStat{{Output: "a", States: 48, Conflicts: 11, Clauses: 420, Vars: 96}},
				},
				Direct: MethodResult{
					States: 722, Signals: 15, StateSignals: 4, Area: 537,
					Seconds: 16.5, Digest: "0011223344aa",
				},
				Lavagno: MethodResult{Aborted: true, Seconds: 30.0},
			},
			{
				Name: "vbe-ex1", InitialStates: 5, InitialSignals: 2,
				Modular: MethodResult{States: 7, Signals: 3, Area: 7, Seconds: 0.001, Digest: "d1"},
				Direct:  MethodResult{States: 7, Signals: 3, Area: 7, Seconds: 0.001, Digest: "d1"},
				Lavagno: MethodResult{States: 7, Signals: 3, Area: 7, Seconds: 0.001, Digest: "d1"},
			},
		},
		Clauses: []ClauseRow{
			{Name: "mmu0", DirectClauses: 157504, DirectVars: 1424,
				Modular: []ClauseFormula{{2448, 132}, {11328, 264}}},
		},
		Scaling: []ScalingRow{
			{K: 3, States: 252,
				Modular:     ScalCell{Seconds: 0.068, Area: 45, ModuleSeconds: 0.05},
				Direct:      ScalCell{Seconds: 1.438, Area: 42},
				Lavagno:     ScalCell{Aborted: true, Seconds: 2.0},
				ModularSpec: &ScalCell{Seconds: 0.04, Area: 45, ModuleSeconds: 0.02}},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rec := testRecord()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("round trip not byte-stable:\n--- first ---\n%s\n--- second ---\n%s", buf.Bytes(), buf2.Bytes())
	}
	// Spot-check structured content survived.
	row, ok := got.Row("mr0")
	if !ok {
		t.Fatal("mr0 row lost in round trip")
	}
	if row.Modular.Counters["sat_clauses"] != 4200 || len(row.Modular.Modules) != 1 ||
		row.Modular.Modules[0].Output != "a" || row.Direct.Area != 537 {
		t.Errorf("round-tripped row lost fields: %+v", row)
	}
}

func TestReadRejectsBadSchema(t *testing.T) {
	rec := testRecord()
	rec.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	rec.Encode(&buf)
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted a record with a future schema version")
	}
	if err := (&Record{Schema: SchemaVersion}).Validate(); err == nil {
		t.Fatal("Validate accepted a record with no rows")
	}
}

func TestCompareCleanBaseline(t *testing.T) {
	rep := Compare(testRecord(), testRecord(), CompareOptions{})
	if rep.Failed() {
		t.Fatalf("identical records reported hard drift: %v", rep.Hard)
	}
	if len(rep.Soft) != 0 {
		t.Fatalf("identical records reported soft drift: %v", rep.Soft)
	}
	if rep.Compared == 0 {
		t.Fatal("comparator checked nothing")
	}
}

func TestCompareCatchesAreaRegression(t *testing.T) {
	fresh := testRecord()
	fresh.Rows[0].Modular.Area = 190 // injected drift: 186 → 190
	rep := Compare(testRecord(), fresh, CompareOptions{})
	if !rep.Failed() {
		t.Fatal("area drift not reported as hard failure")
	}
	found := false
	for _, h := range rep.Hard {
		if strings.Contains(h, "mr0/modular") && strings.Contains(h, "area") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hard findings %v do not name the area drift", rep.Hard)
	}
}

func TestCompareCatchesStateAndDigestDrift(t *testing.T) {
	fresh := testRecord()
	fresh.Rows[0].Direct.States = 700
	fresh.Rows[0].Direct.Digest = "ffffffffffff"
	rep := Compare(testRecord(), fresh, CompareOptions{})
	if len(rep.Hard) < 2 {
		t.Fatalf("expected state and digest hard findings, got %v", rep.Hard)
	}
}

func TestCompareTimeRegressionIsSoft(t *testing.T) {
	fresh := testRecord()
	fresh.Rows[0].Direct.Seconds = 30.0 // 16.5 → 30.0: >25% slower
	rep := Compare(testRecord(), fresh, CompareOptions{})
	if rep.Failed() {
		t.Fatalf("time regression must be soft, got hard: %v", rep.Hard)
	}
	found := false
	for _, s := range rep.Soft {
		if strings.Contains(s, "mr0/direct") && strings.Contains(s, "regression") {
			found = true
		}
	}
	if !found {
		t.Fatalf("soft findings %v do not name the time regression", rep.Soft)
	}

	// Below the floor, timing noise must not warn at all.
	fresh2 := testRecord()
	fresh2.Rows[1].Modular.Seconds = 0.04 // baseline 0.001 < floor
	if rep := Compare(testRecord(), fresh2, CompareOptions{}); len(rep.Soft) != 0 {
		t.Fatalf("sub-floor timing produced warnings: %v", rep.Soft)
	}
}

func TestCompareSkipsRowsMissingFromBaseline(t *testing.T) {
	fresh := testRecord()
	fresh.Rows = append(fresh.Rows, Row{Name: "brand-new", InitialStates: 1, InitialSignals: 1})
	rep := Compare(testRecord(), fresh, CompareOptions{})
	if rep.Failed() {
		t.Fatalf("extra fresh row caused failure: %v", rep.Hard)
	}
}

func TestCompareAbortFlip(t *testing.T) {
	fresh := testRecord()
	fresh.Rows[0].Lavagno = MethodResult{States: 100, Signals: 9, Area: 50, Seconds: 1}
	rep := Compare(testRecord(), fresh, CompareOptions{})
	if !rep.Failed() {
		t.Fatal("abort→complete flip not reported as hard drift")
	}
}

const docSkeleton = `# Title

prose before

<!-- BEGIN GENERATED: table1 (do not hand-edit; regenerate with go run ./cmd/bench -render) -->
stale
<!-- END GENERATED: table1 -->

middle prose

<!-- BEGIN GENERATED: aggregate (do not hand-edit; regenerate with go run ./cmd/bench -render) -->
stale
<!-- END GENERATED: aggregate -->

<!-- BEGIN GENERATED: clauses (do not hand-edit; regenerate with go run ./cmd/bench -render) -->
stale
<!-- END GENERATED: clauses -->

<!-- BEGIN GENERATED: scaling (do not hand-edit; regenerate with go run ./cmd/bench -render) -->
stale
<!-- END GENERATED: scaling -->

prose after
`

func TestRenderDeterministic(t *testing.T) {
	rec := testRecord()
	a, err := RenderDoc([]byte(docSkeleton), rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderDoc([]byte(docSkeleton), rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same record differ")
	}
	// Idempotence: rendering an already-rendered doc changes nothing.
	c, err := RenderDoc(a, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("re-rendering a rendered doc changed it")
	}
	out := string(a)
	for _, want := range []string{
		"| mr0 | 302/11 | 667/17/186/0.33 | 722/15/537/16.50 | **abort** (30.00) |",
		"157,504 cls / 1,424 vars",
		"benchmarks where both modular and direct complete: 2",
		"abort", "prose before", "prose after", "middle prose",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered doc missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "stale") {
		t.Error("stale generated content survived the render")
	}
}

func TestRenderMissingMarkerFails(t *testing.T) {
	if _, err := RenderDoc([]byte("# no markers\n"), testRecord()); err == nil {
		t.Fatal("RenderDoc accepted a doc with no markers")
	}
}

func TestDigestStable(t *testing.T) {
	a := Digest([]string{"b = a", "csc0 = b'"})
	b := Digest([]string{"csc0 = b'", "b = a"}) // order independent
	if a != b {
		t.Fatalf("digest order-dependent: %s vs %s", a, b)
	}
	if len(a) != 12 {
		t.Fatalf("digest length %d, want 12", len(a))
	}
	if Digest([]string{"b = a"}) == a {
		t.Fatal("different inputs produced equal digests")
	}
}
