package metrics

import (
	"context"
	"sync"
	"testing"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Add(SATDecisions, 5) // must not panic
	c.Reset()
	if got := c.Value(SATDecisions); got != 0 {
		t.Fatalf("nil Value = %d, want 0", got)
	}
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil Snapshot = %v, want zero", s)
	}
	if m := c.Map(); m != nil {
		t.Fatalf("nil Map = %v, want nil", m)
	}
}

func TestAddValueAndDelta(t *testing.T) {
	c := New()
	c.Add(SATDecisions, 3)
	c.Add(SATDecisions, 4)
	c.Add(Modules, 1)
	if got := c.Value(SATDecisions); got != 7 {
		t.Fatalf("Value(SATDecisions) = %d, want 7", got)
	}
	before := c.Snapshot()
	c.Add(SGStates, 100)
	d := c.Snapshot().Delta(before)
	if len(d) != 1 || d["sg_states"] != 100 {
		t.Fatalf("Delta = %v, want {sg_states:100}", d)
	}
	m := c.Map()
	if m["sat_decisions"] != 7 || m["modules"] != 1 || m["sg_states"] != 100 {
		t.Fatalf("Map = %v", m)
	}
	c.Reset()
	if m := c.Map(); m != nil {
		t.Fatalf("Map after Reset = %v, want nil", m)
	}
}

func TestKindNamesStable(t *testing.T) {
	// The names are part of the benchrec schema; a rename is a breaking
	// schema change and must bump benchrec.SchemaVersion.
	want := []string{
		"sat_decisions", "sat_conflicts", "sat_propagations", "sat_learned",
		"sat_restarts", "sat_formulas", "sat_clauses", "sat_vars",
		"walksat_flips", "bdd_nodes", "sg_states", "sg_states_merged",
		"espresso_expand", "espresso_reduce", "modules",
		"modcache_hits", "modcache_misses", "modcache_inflight",
		"sat_warm_clauses", "sat_assumptions",
		"sg_states_streamed", "sg_peak_frontier",
		"modcache_peer_hits", "modcache_peer_misses",
		"modspec_commits", "modspec_aborts", "modspec_resolves",
	}
	kinds := Kinds()
	if len(kinds) != len(want) {
		t.Fatalf("got %d kinds, want %d", len(kinds), len(want))
	}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %q, want %q", i, k.String(), want[i])
		}
	}
	if Kind(-1).String() != "unknown" || Kind(999).String() != "unknown" {
		t.Error("out-of-range kinds should stringify as unknown")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("From(empty ctx) != nil")
	}
	if With(ctx, nil) != ctx {
		t.Fatal("With(ctx, nil) should return ctx unchanged")
	}
	c := New()
	ctx = With(ctx, c)
	if From(ctx) != c {
		t.Fatal("From did not recover the attached collector")
	}
}

func TestConcurrentAdd(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(SATPropagations, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(SATPropagations); got != 8000 {
		t.Fatalf("concurrent Value = %d, want 8000", got)
	}
}
